#!/usr/bin/env bash
# Builds the project and regenerates every experiment E1..E14 plus the
# microbenchmarks, collecting output under results/.
#
# With --bench, instead builds Release and refreshes the two tracked
# perf-trajectory artifacts at the repository root:
#   BENCH_core.json   gbench_core (google-benchmark JSON: calibrator
#                     sync, Compact, insert/delete/get microbenchmarks)
#   BENCH_shard.json  shard_scaling (threads x shards throughput sweep)
#
# With --sanitize, instead runs the sanitizer matrix: an
# address,undefined build driving the fault-injection / crash-recovery /
# corruption tests (the error paths ordinary runs rarely execute), then a
# thread build driving the sharded concurrency test.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--sanitize" ]]; then
  cmake -B build-asan -G Ninja -DDSF_SANITIZE=address,undefined
  cmake --build build-asan
  ASAN_OPTIONS=halt_on_error=1 UBSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-asan --output-on-failure \
      -R 'fault_injection_test|crash_recovery_fuzz_test|corruption_test|sharded_file_test|fuzz_all_test'
  cmake -B build-tsan -G Ninja -DDSF_SANITIZE=thread
  cmake --build build-tsan
  ctest --test-dir build-tsan --output-on-failure -R sharded_file_test
  echo "Sanitizer matrix clean"
  exit 0
fi

if [[ "${1:-}" == "--bench" ]]; then
  cmake -B build-bench -G Ninja -DCMAKE_BUILD_TYPE=Release
  cmake --build build-bench --target gbench_core shard_scaling
  ./build-bench/bench/gbench_core \
    --benchmark_format=json \
    --benchmark_min_time=0.2 > BENCH_core.json
  ./build-bench/bench/shard_scaling --out=BENCH_shard.json
  echo "Wrote BENCH_core.json and BENCH_shard.json"
  exit 0
fi

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

mkdir -p results
for bench in build/bench/*; do
  name="$(basename "$bench")"
  [ -x "$bench" ] && [ -f "$bench" ] || continue
  echo "== $name =="
  "$bench" | tee "results/$name.txt"
done
echo "Outputs in results/"
