#!/usr/bin/env bash
# Builds the project and regenerates every experiment E1..E13 plus the
# microbenchmarks, collecting output under results/.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

mkdir -p results
for bench in build/bench/*; do
  name="$(basename "$bench")"
  [ -x "$bench" ] && [ -f "$bench" ] || continue
  echo "== $name =="
  "$bench" | tee "results/$name.txt"
done
echo "Outputs in results/"
