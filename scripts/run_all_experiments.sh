#!/usr/bin/env bash
# Builds the project and regenerates every experiment E1..E16 plus the
# microbenchmarks, collecting output under results/.
#
# With --bench, instead builds Release and refreshes the tracked
# perf-trajectory artifacts at the repository root:
#   BENCH_core.json   gbench_core (google-benchmark JSON: calibrator
#                     sync, Compact, insert/delete/get, page search and
#                     raw page-access microbenchmarks)
#   BENCH_shard.json  shard_scaling (threads x shards throughput sweep)
#   BENCH_cache.json  cache_sweep (buffer-pool size x workload skew:
#                     throughput, hit rate, write amplification)
#   BENCH_obs.json    obs_certify (live BoundCertifier replay: CONTROL 2
#                     vs CONTROL 1 max-per-command access series and
#                     violation counts against the Theorem-5.7 budget)
#   BENCH_ingest.json ingest_sweep (E18: staged vs unstaged write bursts,
#                     physical writes / seeks / drain-step certification,
#                     single-file and sharded replay)
#   BENCH_rwlock.json shard_scaling --mode=rwlock (E19: 90/10 read-mostly
#                     mix, shared read path vs exclusive_reads baseline,
#                     per-config read-throughput speedup)
#   BENCH_adaptive.json adaptive_sweep (E20: adversarial workload suite,
#                     self-tuning controller vs a grid of static
#                     configurations: physical accesses, actuations,
#                     frame conservation, zero certified-bound
#                     violations)
#   BENCH_durable.json durable_sweep (E21: simulated vs MemoryBackend vs
#                     FileBackend buffered/noverify/O_DIRECT — wall
#                     time, preads/pwrites/fdatasyncs, identical
#                     accounted IoStats in every row)
#
# With --sanitize, instead runs the sanitizer matrix: an
# address,undefined build driving the fault-injection / crash-recovery /
# corruption / buffer-pool tests (the error paths ordinary runs rarely
# execute), then a thread build driving the concurrency tests: the
# sharded storms (exclusive and read-mostly shared-lock variants, with
# the pooled storm running one buffer pool per shard mutex), the
# concurrent shared-reader pin test in buffer_pool_test, and the obs
# registry tests.
#
# With --analyze, instead runs the static-analysis gate: the project-rule
# linter, the Clang -Wthread-safety -Werror build, and clang-tidy (layers
# needing clang are skipped with a notice when it is not installed). See
# scripts/run_static_analysis.sh and docs/ANALYSIS.md.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--analyze" ]]; then
  exec ./scripts/run_static_analysis.sh
fi

if [[ "${1:-}" == "--sanitize" ]]; then
  cmake -B build-asan -G Ninja -DDSF_SANITIZE=address,undefined
  cmake --build build-asan
  ASAN_OPTIONS=halt_on_error=1 UBSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-asan --output-on-failure \
      -R 'fault_injection_test|crash_recovery_fuzz_test|corruption_test|sharded_file_test|fuzz_all_test|buffer_pool_test|ingest_test'
  cmake -B build-tsan -G Ninja -DDSF_SANITIZE=thread
  cmake --build build-tsan
  ctest --test-dir build-tsan --output-on-failure \
    -R 'sharded_file_test|obs_test|buffer_pool_test|tune_test'
  echo "Sanitizer matrix clean"
  exit 0
fi

if [[ "${1:-}" == "--bench" ]]; then
  cmake -B build-bench -G Ninja -DCMAKE_BUILD_TYPE=Release
  cmake --build build-bench --target gbench_core shard_scaling cache_sweep \
    obs_certify ingest_sweep adaptive_sweep durable_sweep
  ./build-bench/bench/gbench_core \
    --benchmark_format=json \
    --benchmark_min_time=0.2 > BENCH_core.json
  ./build-bench/bench/shard_scaling --out=BENCH_shard.json
  ./build-bench/bench/cache_sweep --out=BENCH_cache.json
  ./build-bench/bench/obs_certify --out=BENCH_obs.json
  ./build-bench/bench/ingest_sweep --out=BENCH_ingest.json
  ./build-bench/bench/shard_scaling --mode=rwlock --ops=8000 \
    --out=BENCH_rwlock.json
  ./build-bench/bench/adaptive_sweep --out=BENCH_adaptive.json
  ./build-bench/bench/durable_sweep --out=BENCH_durable.json
  echo "Wrote BENCH_core.json, BENCH_shard.json, BENCH_cache.json," \
    "BENCH_obs.json, BENCH_ingest.json, BENCH_rwlock.json," \
    "BENCH_adaptive.json and BENCH_durable.json"
  exit 0
fi

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

mkdir -p results
for bench in build/bench/*; do
  name="$(basename "$bench")"
  [ -x "$bench" ] && [ -f "$bench" ] || continue
  echo "== $name =="
  "$bench" | tee "results/$name.txt"
done
echo "Outputs in results/"
