#!/usr/bin/env bash
# Static-analysis gate: three independent layers, strictest available.
#
#   1. Project-rule linter (pure grep; always runs, no toolchain needed):
#        raw-page-io            PageFile::RawPage is confined to
#                               src/storage/ — everything else goes
#                               through the accounted TryRead/TryWrite
#                               path or the buffer pool. Exemptions carry
#                               a `lint:allow(raw-page-io): reason`
#                               comment on or just above the call.
#        check-on-fault-path    No DSF_CHECK on a Status/StatusOr ok()
#                               in fault-reachable code (src/core,
#                               src/storage, src/shard, src/varsize):
#                               aborting on an injected IoError turns a
#                               recoverable fault into a crash. Same
#                               `lint:allow(check-on-fault-path)` escape.
#        no-naked-mutex         src/ uses dsf::Mutex / dsf::SharedMutex
#                               and their scoped lockers
#                               (util/thread_annotations.h) so Clang's
#                               -Wthread-safety sees every lock; raw
#                               std::mutex / std::shared_mutex /
#                               std::lock_guard / std::shared_lock are
#                               invisible to the analysis and therefore
#                               banned.
#        unregistered-metric-name
#                               MetricsRegistry::FindOrCreate* outside
#                               src/obs/ must name metrics through the
#                               src/obs/metric_names.h catalog constants,
#                               never inline string literals — one closed
#                               catalog keeps the namespace collision-free
#                               and documented (docs/OBSERVABILITY.md).
#                               Same `lint:allow(unregistered-metric-name)`
#                               escape.
#
#   2. DSF_ANALYZE build (needs clang++): full compile under
#      -Wthread-safety -Werror over the DSF_GUARDED_BY annotations.
#
#   3. clang-tidy (needs clang-tidy + compile_commands.json): the
#      .clang-tidy check set with WarningsAsErrors over src/.
#
# Layers 2 and 3 are skipped with a notice when the toolchain is absent
# (the GCC-only container); CI installs clang and runs all three.
set -uo pipefail
cd "$(dirname "$0")/.."

failures=0

# --- Layer 1: project-rule linter -----------------------------------

# lint <rule> <pattern> <paths...>
# Flags every match of <pattern> not excused by a marker comment
# `lint:allow(<rule>)` on the offending line or within the three lines
# above it (markers are written as comments, often two-line).
lint() {
  local rule="$1" pattern="$2"
  shift 2
  local hits
  hits=$(grep -rnE "$pattern" "$@" --include='*.cc' --include='*.h' \
         | grep -vE '^\S+:[0-9]+: *(//|#)' || true)
  local bad=0
  while IFS= read -r hit; do
    [[ -z "$hit" ]] && continue
    local file line lo
    file="${hit%%:*}"
    line="${hit#*:}"; line="${line%%:*}"
    lo=$((line > 3 ? line - 3 : 1))
    if ! sed -n "${lo},${line}p" "$file" | grep -q "lint:allow($rule)"; then
      echo "lint:$rule: $hit"
      bad=1
    fi
  done <<< "$hits"
  if [[ "$bad" -ne 0 ]]; then
    failures=$((failures + 1))
    echo "FAIL [$rule]"
  else
    echo "ok   [$rule]"
  fi
}

echo "== project-rule linter =="
lint raw-page-io '\.RawPage\(' \
    src/core src/shard src/baseline src/varsize src/workload src/analysis \
    src/ingest src/tune
lint check-on-fault-path 'DSF_D?CHECK\([^)]*\.ok\(\)' \
    src/core src/storage src/shard src/varsize src/ingest src/tune
lint no-naked-mutex \
    'std::(mutex|shared_mutex|shared_timed_mutex|lock_guard|scoped_lock|unique_lock|shared_lock)' \
    src/core src/shard src/storage src/workload src/analysis src/baseline \
    src/varsize src/repro src/ingest src/tune
lint unregistered-metric-name 'FindOrCreate(Counter|Gauge|Histogram)\( *"' \
    src/core src/shard src/storage src/workload src/analysis src/baseline \
    src/varsize src/repro src/ingest src/tune bench examples tests

# --- Layer 2: thread-safety analysis build --------------------------

if command -v clang++ >/dev/null 2>&1; then
  echo "== DSF_ANALYZE build (clang -Wthread-safety -Werror) =="
  if CC=clang CXX=clang++ cmake -B build-analyze -DDSF_ANALYZE=ON \
        >/dev/null \
      && cmake --build build-analyze -j "$(nproc)"; then
    echo "ok   [thread-safety]"
  else
    failures=$((failures + 1))
    echo "FAIL [thread-safety]"
  fi
else
  echo "skip [thread-safety]: clang++ not found"
fi

# --- Layer 3: clang-tidy --------------------------------------------

if command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy =="
  # Prefer the analyze build's database (clang flags match the tool);
  # fall back to any configured build dir.
  db=""
  for d in build-analyze build; do
    [[ -f "$d/compile_commands.json" ]] && db="$d" && break
  done
  if [[ -z "$db" ]]; then
    cmake -B build >/dev/null
    db=build
  fi
  if find src -name '*.cc' -print0 \
      | xargs -0 -P "$(nproc)" -n 8 clang-tidy -p "$db" --quiet; then
    echo "ok   [clang-tidy]"
  else
    failures=$((failures + 1))
    echo "FAIL [clang-tidy]"
  fi
else
  echo "skip [clang-tidy]: clang-tidy not found"
fi

# ---------------------------------------------------------------------

if [[ "$failures" -ne 0 ]]; then
  echo "static analysis: $failures layer(s) FAILED"
  exit 1
fi
echo "static analysis: all available layers passed"
