#!/usr/bin/env bash
# Static-analysis gate: three independent layers, strictest available.
#
#   dsflint        The project-native analyzer (tools/dsflint/): typed
#                  findings over its own tokenizer + scope tracker, no
#                  compiler frontend needed, so this layer ALWAYS runs —
#                  in the GCC-only container it is the whole locking and
#                  catalog gate. Rules (see docs/ANALYSIS.md):
#                    guarded-by           DSF_GUARDED_BY fields touched
#                                         without their mutex in scope
#                    lock-order           acquisition edges vs the declared
#                                         hierarchy in
#                                         tools/dsflint/lock_hierarchy.txt,
#                                         plus cycle detection
#                    discarded-status     Status/StatusOr results dropped
#                                         at call sites
#                    metric-catalog       metric names outside the
#                                         src/obs/metric_names.h catalog
#                                         (also swept over bench/examples/
#                                         tests, where only this rule runs)
#                    spankind-catalog     SpanKind enumerators unhandled in
#                                         exporters
#                    raw-page-io          PageFile::RawPage confined to
#                                         src/storage/
#                    check-on-fault-path  no DSF_CHECK over a Status in
#                                         fault-reachable code
#                    no-naked-mutex       std:: lock primitives outside the
#                                         annotated dsf:: wrappers
#                  Escape hatch: `lint:allow(<rule>): reason` on the line
#                  or within three lines above.
#
#   thread-safety  DSF_ANALYZE build (needs clang++): full compile under
#                  -Wthread-safety -Werror over the DSF_GUARDED_BY
#                  annotations.
#
#   clang-tidy     (needs clang-tidy + compile_commands.json): the
#                  .clang-tidy check set with WarningsAsErrors over src/.
#
# Usage:
#   run_static_analysis.sh [--layers=LIST] [--summary=FILE]
#
#   --layers=auto (default) runs dsflint and whichever clang layers the
#   toolchain supports, skipping the rest with a notice. An explicit
#   list (e.g. --layers=dsflint,thread-safety) makes every named layer
#   mandatory: a missing toolchain is then reported as `unavailable`
#   and the script exits nonzero instead of silently passing.
#
#   The run always ends with one machine-readable JSON line on stdout
#   (and into FILE with --summary) describing every layer:
#     {"layers":[{"name":"dsflint","status":"ok"},...],"failures":0}
#   Statuses: ok | failed | skipped | unavailable.
set -uo pipefail
cd "$(dirname "$0")/.."

requested="auto"
summary_file=""
for arg in "$@"; do
  case "$arg" in
    --layers=*) requested="${arg#--layers=}" ;;
    --summary=*) summary_file="${arg#--summary=}" ;;
    *) echo "usage: $0 [--layers=auto|dsflint,thread-safety,clang-tidy]" \
            "[--summary=FILE]" >&2
       exit 2 ;;
  esac
done

layer_names=()
layer_status=()
failures=0

record() {  # record <layer> <status>
  layer_names+=("$1")
  layer_status+=("$2")
  case "$2" in
    failed|unavailable) failures=$((failures + 1)) ;;
  esac
}

wants() {  # wants <layer>: is this layer requested?
  [[ "$requested" == "auto" ]] && return 0
  [[ ",$requested," == *",$1,"* ]]
}

# In auto mode a missing toolchain downgrades the layer to a skip; in an
# explicit --layers list it is a hard failure.
missing_status() {
  [[ "$requested" == "auto" ]] && echo "skipped" || echo "unavailable"
}

# --- Layer 1: dsflint ------------------------------------------------

if wants dsflint; then
  echo "== dsflint =="
  # Prefer the cmake-built binary; otherwise compile standalone — the
  # analyzer is four translation units of plain C++20, so this works in
  # any container with a host compiler, no build dir needed.
  DSFLINT=""
  if [[ -x build/tools/dsflint/dsflint ]]; then
    DSFLINT=build/tools/dsflint/dsflint
  else
    cxx=""
    for candidate in c++ g++ clang++; do
      command -v "$candidate" >/dev/null 2>&1 && cxx="$candidate" && break
    done
    if [[ -n "$cxx" ]]; then
      DSFLINT=$(mktemp -d)/dsflint
      if ! "$cxx" -std=c++20 -O1 -I tools/dsflint -o "$DSFLINT" \
           tools/dsflint/lexer.cc tools/dsflint/report.cc \
           tools/dsflint/analyzer.cc tools/dsflint/main.cc; then
        DSFLINT=""
      fi
    fi
  fi
  if [[ -z "$DSFLINT" ]]; then
    echo "$(missing_status) [dsflint]: no C++ compiler to build it"
    record dsflint "$(missing_status)"
  else
    ok=1
    # Full rule set over the enforced tree, against the declared lock
    # hierarchy. tests/dsflint_fixtures/ holds seeded violations for
    # dsflint's own tests and must never enter the repo gate.
    "$DSFLINT" --hierarchy=tools/dsflint/lock_hierarchy.txt \
        --exclude=dsflint_fixtures src tools || ok=0
    # The metric catalog is closed repo-wide: benches, examples and
    # tests register metrics through src/obs/metric_names.h constants
    # too. Only the catalog rule runs out there.
    "$DSFLINT" --rules=metric-catalog --exclude=dsflint_fixtures \
        --strict-dir=src/ --strict-dir=tools/ --strict-dir=bench/ \
        --strict-dir=examples/ --strict-dir=tests/ \
        src bench examples tests || ok=0
    if [[ "$ok" -eq 1 ]]; then
      echo "ok   [dsflint]"
      record dsflint ok
    else
      echo "FAIL [dsflint]"
      record dsflint failed
    fi
  fi
fi

# --- Layer 2: thread-safety analysis build --------------------------

if wants thread-safety; then
  if command -v clang++ >/dev/null 2>&1; then
    echo "== DSF_ANALYZE build (clang -Wthread-safety -Werror) =="
    if CC=clang CXX=clang++ cmake -B build-analyze -DDSF_ANALYZE=ON \
          >/dev/null \
        && cmake --build build-analyze -j "$(nproc)"; then
      echo "ok   [thread-safety]"
      record thread-safety ok
    else
      echo "FAIL [thread-safety]"
      record thread-safety failed
    fi
  else
    echo "$(missing_status) [thread-safety]: clang++ not found"
    record thread-safety "$(missing_status)"
  fi
fi

# --- Layer 3: clang-tidy --------------------------------------------

if wants clang-tidy; then
  if command -v clang-tidy >/dev/null 2>&1; then
    echo "== clang-tidy =="
    # Prefer the analyze build's database (clang flags match the tool);
    # fall back to any configured build dir.
    db=""
    for d in build-analyze build; do
      [[ -f "$d/compile_commands.json" ]] && db="$d" && break
    done
    if [[ -z "$db" ]]; then
      cmake -B build >/dev/null
      db=build
    fi
    if find src -name '*.cc' -print0 \
        | xargs -0 -P "$(nproc)" -n 8 clang-tidy -p "$db" --quiet; then
      echo "ok   [clang-tidy]"
      record clang-tidy ok
    else
      echo "FAIL [clang-tidy]"
      record clang-tidy failed
    fi
  else
    echo "$(missing_status) [clang-tidy]: clang-tidy not found"
    record clang-tidy "$(missing_status)"
  fi
fi

# --- Summary ---------------------------------------------------------

if [[ "${#layer_names[@]}" -eq 0 ]]; then
  echo "static analysis: no known layer in --layers=$requested" >&2
  exit 2
fi

summary='{"layers":['
for i in "${!layer_names[@]}"; do
  [[ "$i" -gt 0 ]] && summary+=','
  summary+="{\"name\":\"${layer_names[$i]}\",\"status\":\"${layer_status[$i]}\"}"
done
summary+="],\"failures\":$failures}"
echo "$summary"
[[ -n "$summary_file" ]] && echo "$summary" > "$summary_file"

if [[ "$failures" -ne 0 ]]; then
  echo "static analysis: $failures layer(s) failed or unavailable"
  exit 1
fi
echo "static analysis: all requested layers passed"
