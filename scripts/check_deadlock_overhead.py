#!/usr/bin/env python3
"""Gate the runtime lock-order detector's overhead.

Reads google-benchmark JSON containing BM_DeadlockDetectOverhead/0
(detector off) and /1 (detector on), compares median items_per_second,
and exits nonzero when the throughput loss exceeds the given percentage
(CI uses 5.0; see .github/workflows/ci.yml and docs/ANALYSIS.md).

Usage: check_deadlock_overhead.py <benchmark.json> [max_loss_pct]
"""

import json
import sys


def median_items_per_second(benchmarks, suffix):
    # Prefer the median aggregate; fall back to the median of raw
    # iterations when aggregates were not requested.
    name = "BM_DeadlockDetectOverhead/" + suffix
    aggregates = [
        b["items_per_second"]
        for b in benchmarks
        if b["name"] == name + "_median"
    ]
    if aggregates:
        return aggregates[0]
    raw = sorted(
        b["items_per_second"]
        for b in benchmarks
        if b.get("run_type", "iteration") == "iteration" and b["name"] == name
    )
    if not raw:
        sys.exit(f"no {name} results in the benchmark JSON")
    return raw[len(raw) // 2]


def main():
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    with open(sys.argv[1]) as f:
        benchmarks = json.load(f)["benchmarks"]
    max_loss_pct = float(sys.argv[2]) if len(sys.argv) > 2 else 5.0

    off = median_items_per_second(benchmarks, "0")
    on = median_items_per_second(benchmarks, "1")
    loss_pct = 100.0 * (off - on) / off
    print(
        f"detector off: {off:.0f} items/s, on: {on:.0f} items/s, "
        f"loss {loss_pct:+.2f}% (gate {max_loss_pct:.1f}%)"
    )
    if loss_pct > max_loss_pct:
        sys.exit("deadlock detector overhead gate FAILED")
    print("deadlock detector overhead gate passed")


if __name__ == "__main__":
    main()
