// Differential testing of the calibrator: every query is compared against
// a brute-force reference over plain arrays, across random page-count
// shapes and random SyncLeaf sequences.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/calibrator.h"
#include "util/random.h"

namespace dsf {
namespace {

// Plain-array mirror of the calibrator's leaf state.
struct Reference {
  std::vector<int64_t> count;
  std::vector<Key> min_key;
  std::vector<Key> max_key;

  explicit Reference(int64_t pages)
      : count(pages, 0), min_key(pages, 0), max_key(pages, 0) {}

  Address FirstNonEmptyWithMaxGE(Key key) const {
    for (size_t i = 0; i < count.size(); ++i) {
      if (count[i] > 0 && max_key[i] >= key) {
        return static_cast<Address>(i + 1);
      }
    }
    return 0;
  }
  Address FirstNonEmptyIn(Address lo, Address hi) const {
    for (Address p = std::max<Address>(lo, 1);
         p <= std::min<Address>(hi, static_cast<Address>(count.size()));
         ++p) {
      if (count[static_cast<size_t>(p - 1)] > 0) return p;
    }
    return 0;
  }
  Address LastNonEmptyIn(Address lo, Address hi) const {
    for (Address p = std::min<Address>(hi, static_cast<Address>(count.size()));
         p >= std::max<Address>(lo, 1); --p) {
      if (count[static_cast<size_t>(p - 1)] > 0) return p;
    }
    return 0;
  }
  int64_t CountInRange(Address lo, Address hi) const {
    int64_t total = 0;
    for (Address p = std::max<Address>(lo, 1);
         p <= std::min<Address>(hi, static_cast<Address>(count.size()));
         ++p) {
      total += count[static_cast<size_t>(p - 1)];
    }
    return total;
  }
};

class CalibratorPropertyTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(CalibratorPropertyTest, AllQueriesMatchBruteForce) {
  const int64_t pages = GetParam();
  Calibrator cal(pages);
  Reference ref(pages);
  Rng rng(static_cast<uint64_t>(pages) * 7919);

  for (int step = 0; step < 400; ++step) {
    // Mutate a random leaf. Keys are chosen so that per-page key windows
    // never overlap (page p owns [p*1000, p*1000+999]), keeping the file
    // logically ordered as real usage would.
    const Address page = static_cast<Address>(rng.Uniform(pages)) + 1;
    const int64_t new_count = static_cast<int64_t>(rng.Uniform(6));
    if (new_count == 0) {
      cal.SyncLeaf(page, 0, 0, 0);
      ref.count[static_cast<size_t>(page - 1)] = 0;
    } else {
      const Key lo = static_cast<Key>(page) * 1000 + rng.Uniform(100);
      const Key hi = lo + rng.Uniform(100) + 1;
      cal.SyncLeaf(page, new_count, lo, hi);
      ref.count[static_cast<size_t>(page - 1)] = new_count;
      ref.min_key[static_cast<size_t>(page - 1)] = lo;
      ref.max_key[static_cast<size_t>(page - 1)] = hi;
    }

    ASSERT_TRUE(cal.ValidateAggregates().ok());

    // Probe with random queries.
    const Key probe = rng.Uniform(static_cast<uint64_t>(pages + 2) * 1000);
    ASSERT_EQ(cal.FirstNonEmptyPageWithMaxGE(probe),
              ref.FirstNonEmptyWithMaxGE(probe))
        << "probe " << probe << " at step " << step;

    const Address a = static_cast<Address>(rng.Uniform(pages)) + 1;
    const Address b = static_cast<Address>(rng.Uniform(pages)) + 1;
    const Address lo = std::min(a, b);
    const Address hi = std::max(a, b);
    ASSERT_EQ(cal.FirstNonEmptyPageIn(lo, hi), ref.FirstNonEmptyIn(lo, hi));
    ASSERT_EQ(cal.LastNonEmptyPageIn(lo, hi), ref.LastNonEmptyIn(lo, hi));
    ASSERT_EQ(cal.CountInRange(lo, hi), ref.CountInRange(lo, hi));

    // Structural queries.
    const Address page_probe = static_cast<Address>(rng.Uniform(pages)) + 1;
    const std::vector<int> path = cal.PathToLeaf(page_probe);
    ASSERT_EQ(path.back(), cal.LeafOf(page_probe));
    for (const int v : path) {
      ASSERT_GE(page_probe, cal.RangeLo(v));
      ASSERT_LE(page_probe, cal.RangeHi(v));
    }
    const int lca = cal.LowestCommonAncestor(lo, hi);
    ASSERT_LE(cal.RangeLo(lca), lo);
    ASSERT_GE(cal.RangeHi(lca), hi);
    if (!cal.IsLeaf(lca)) {
      // Deepest: one child must exclude lo or hi.
      const int left = cal.Left(lca);
      ASSERT_TRUE(hi > cal.RangeHi(left) || lo < cal.RangeLo(left));
    }
  }

  // Total record count agrees at the end.
  int64_t total = 0;
  for (const int64_t c : ref.count) total += c;
  EXPECT_EQ(cal.TotalRecords(), total);
}

INSTANTIATE_TEST_SUITE_P(Shapes, CalibratorPropertyTest,
                         ::testing::Values(1, 2, 3, 7, 8, 13, 16, 31, 64,
                                           100, 127, 255),
                         [](const ::testing::TestParamInfo<int64_t>& param_info) {
                           return "M" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace dsf
