// dsflint's own tests: every seeded fixture in tests/dsflint_fixtures/
// must be flagged with exactly the right rule kind at the right line,
// the clean fixture and the lint:allow escape must stay silent, and the
// real tree (src/ + tools/ against tools/dsflint/lock_hierarchy.txt)
// must lint clean — the same gate scripts/run_static_analysis.sh and CI
// enforce, kept in ctest so a plain `ctest` run catches regressions.

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "analyzer.h"
#include "gtest/gtest.h"
#include "report.h"

namespace dsflint {
namespace {

namespace fs = std::filesystem;

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot read " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

std::string FixturePath(const std::string& name) {
  return std::string(DSFLINT_FIXTURE_DIR) + "/" + name;
}

// Options under which the fixture directory is fully enforced.
AnalyzerOptions FixtureOptions() {
  AnalyzerOptions options;
  options.strict_dirs = {"dsflint_fixtures/"};
  options.fault_dirs = {"dsflint_fixtures/"};
  return options;
}

LintReport RunOnFixtures(AnalyzerOptions options,
                         const std::vector<std::string>& names) {
  Analyzer analyzer(std::move(options));
  for (const std::string& name : names) {
    analyzer.AddFile(FixturePath(name), ReadFile(FixturePath(name)));
  }
  return analyzer.Run();
}

TEST(DsflintFixtures, GuardedByViolationPinned) {
  const LintReport report = RunOnFixtures(FixtureOptions(), {"guarded_by.cc"});
  ASSERT_EQ(report.findings.size(), 1u) << report.ToString();
  EXPECT_EQ(report.findings[0].kind, RuleKind::kGuardedByViolation);
  EXPECT_EQ(report.findings[0].line, 14);
}

TEST(DsflintFixtures, LockOrderInversionPinned) {
  AnalyzerOptions options = FixtureOptions();
  options.hierarchy_file = FixturePath("fixture_hierarchy.txt");
  const LintReport report =
      RunOnFixtures(std::move(options), {"lock_order.cc"});
  ASSERT_EQ(report.findings.size(), 1u) << report.ToString();
  EXPECT_EQ(report.findings[0].kind, RuleKind::kLockOrderViolation);
  EXPECT_EQ(report.findings[0].line, 19);
}

TEST(DsflintFixtures, LockCyclePinned) {
  const LintReport report = RunOnFixtures(FixtureOptions(), {"lock_cycle.cc"});
  ASSERT_EQ(report.findings.size(), 1u) << report.ToString();
  EXPECT_EQ(report.findings[0].kind, RuleKind::kLockCycle);
  EXPECT_EQ(report.findings[0].line, 24);
}

TEST(DsflintFixtures, DiscardedStatusPinned) {
  const LintReport report =
      RunOnFixtures(FixtureOptions(), {"discarded_status.cc"});
  ASSERT_EQ(report.findings.size(), 1u) << report.ToString();
  EXPECT_EQ(report.findings[0].kind, RuleKind::kDiscardedStatus);
  EXPECT_EQ(report.findings[0].line, 14);
}

TEST(DsflintFixtures, MetricCatalogPinned) {
  // Three seeded violations across the pair: an undeclared constant, a
  // raw literal registration (multiline — the old grep linter's blind
  // spot), and a stale catalog entry.
  const LintReport report = RunOnFixtures(
      FixtureOptions(), {"metric_names.h", "metric_rogue.cc"});
  ASSERT_EQ(report.findings.size(), 3u) << report.ToString();
  // Sorted by (file, line): the stale catalog constant first.
  EXPECT_EQ(report.findings[0].kind, RuleKind::kStaleMetricConstant);
  EXPECT_EQ(report.findings[0].line, 8);
  EXPECT_EQ(report.findings[1].kind, RuleKind::kUnknownMetricName);
  EXPECT_EQ(report.findings[1].line, 9);
  EXPECT_EQ(report.findings[2].kind, RuleKind::kUnknownMetricName);
  EXPECT_EQ(report.findings[2].line, 11);
}

TEST(DsflintFixtures, UnhandledSpanKindPinned) {
  const LintReport report = RunOnFixtures(FixtureOptions(), {"spankind.cc"});
  ASSERT_EQ(report.findings.size(), 1u) << report.ToString();
  EXPECT_EQ(report.findings[0].kind, RuleKind::kUnhandledSpanKind);
  EXPECT_EQ(report.findings[0].line, 12);
  EXPECT_NE(report.findings[0].message.find("kBeta"), std::string::npos);
}

TEST(DsflintFixtures, RawPageIoPinned) {
  const LintReport report = RunOnFixtures(FixtureOptions(), {"raw_page.cc"});
  ASSERT_EQ(report.findings.size(), 1u) << report.ToString();
  EXPECT_EQ(report.findings[0].kind, RuleKind::kRawPageIo);
  EXPECT_EQ(report.findings[0].line, 12);
}

TEST(DsflintFixtures, RawSyscallIoPinned) {
  const LintReport report =
      RunOnFixtures(FixtureOptions(), {"raw_syscall.cc"});
  ASSERT_EQ(report.findings.size(), 1u) << report.ToString();
  EXPECT_EQ(report.findings[0].kind, RuleKind::kRawSyscallIo);
  EXPECT_EQ(report.findings[0].line, 15);
}

TEST(DsflintFixtures, CheckOnFaultPathPinned) {
  const LintReport report =
      RunOnFixtures(FixtureOptions(), {"fault_check.cc"});
  ASSERT_EQ(report.findings.size(), 1u) << report.ToString();
  EXPECT_EQ(report.findings[0].kind, RuleKind::kCheckOnFaultPath);
  EXPECT_EQ(report.findings[0].line, 10);
}

TEST(DsflintFixtures, NakedMutexPinned) {
  const LintReport report =
      RunOnFixtures(FixtureOptions(), {"naked_mutex.cc"});
  ASSERT_EQ(report.findings.size(), 1u) << report.ToString();
  EXPECT_EQ(report.findings[0].kind, RuleKind::kNakedMutex);
  EXPECT_EQ(report.findings[0].line, 8);
}

TEST(DsflintFixtures, CleanFixtureStaysClean) {
  const LintReport report = RunOnFixtures(FixtureOptions(), {"clean.cc"});
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(DsflintFixtures, LintAllowEscapesAFinding) {
  Analyzer analyzer(FixtureOptions());
  analyzer.AddFile("dsflint_fixtures/allowed.cc",
                   "namespace fixture {\n"
                   "class Cache {\n"
                   " private:\n"
                   "  // lint:allow(no-naked-mutex) justified here\n"
                   "  std::mutex mu_;\n"
                   "};\n"
                   "}  // namespace fixture\n");
  EXPECT_TRUE(analyzer.Run().ok());
}

TEST(DsflintFixtures, LintAllowOnlyReachesThreeLines) {
  Analyzer analyzer(FixtureOptions());
  analyzer.AddFile("dsflint_fixtures/too_far.cc",
                   "namespace fixture {\n"
                   "// lint:allow(no-naked-mutex) too far away\n"
                   "class Cache {\n"
                   " private:\n"
                   "\n"
                   "\n"
                   "  std::mutex mu_;\n"
                   "};\n"
                   "}  // namespace fixture\n");
  const LintReport report = analyzer.Run();
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].kind, RuleKind::kNakedMutex);
}

// The repo gate: src/ and tools/ lint clean against the declared
// hierarchy, with the analyzer's conservative defaults. This is the
// tier-1 ctest twin of scripts/run_static_analysis.sh layer 1.
TEST(DsflintRepo, TreeLintsClean) {
  const std::string root = DSF_REPO_ROOT;
  AnalyzerOptions options;
  options.hierarchy_file = root + "/tools/dsflint/lock_hierarchy.txt";
  Analyzer analyzer(std::move(options));
  int added = 0;
  for (const char* dir : {"/src", "/tools"}) {
    for (fs::recursive_directory_iterator it(root + dir), end; it != end;
         ++it) {
      if (!it->is_regular_file()) continue;
      const std::string p = it->path().generic_string();
      if (p.size() > 3 && (p.compare(p.size() - 3, 3, ".cc") == 0 ||
                           p.compare(p.size() - 2, 2, ".h") == 0)) {
        analyzer.AddFile(p, ReadFile(p));
        ++added;
      }
    }
  }
  ASSERT_GT(added, 50);
  const LintReport report = analyzer.Run();
  EXPECT_TRUE(report.ok()) << report.ToString();
}

}  // namespace
}  // namespace dsflint
