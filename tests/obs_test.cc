// Tests for the observability subsystem (src/obs/): histogram bucket
// geometry, striped-counter exactness under a thread storm (run under
// -DDSF_SANITIZE=thread for the race check), registry handle identity,
// exporters, tracer ring semantics, the BoundCertifier report, the
// null-registry zero-overhead guarantee, and the single-source
// simulated-time accounting shared by IoStats and the latency sleep.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "core/dense_file.h"
#include "gtest/gtest.h"
#include "obs/bound_certifier.h"
#include "obs/export.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "shard/sharded_dense_file.h"
#include "storage/disk_model.h"
#include "storage/io_stats.h"
#include "storage/page_file.h"
#include "util/random.h"
#include "workload/parallel_replayer.h"
#include "workload/workload.h"

namespace dsf {
namespace {

// ---------------------------------------------------------------------
// Histogram bucket geometry

TEST(HistogramTest, BucketEdges) {
  // Bucket 0 holds [0, 2), including clamped negatives.
  EXPECT_EQ(Histogram::BucketOf(-1000), 0);
  EXPECT_EQ(Histogram::BucketOf(0), 0);
  EXPECT_EQ(Histogram::BucketOf(1), 0);
  // Bucket i >= 1 holds [2^i, 2^(i+1)).
  EXPECT_EQ(Histogram::BucketOf(2), 1);
  EXPECT_EQ(Histogram::BucketOf(3), 1);
  EXPECT_EQ(Histogram::BucketOf(4), 2);
  EXPECT_EQ(Histogram::BucketOf(7), 2);
  EXPECT_EQ(Histogram::BucketOf(8), 3);
  EXPECT_EQ(Histogram::BucketOf(1023), 9);
  EXPECT_EQ(Histogram::BucketOf(1024), 10);
  // The top bucket absorbs everything up to int64 max: no observation is
  // ever dropped.
  EXPECT_EQ(Histogram::BucketOf(std::numeric_limits<int64_t>::max()),
            kHistogramBuckets - 1);

  // Inclusive upper edges: 2^(bucket+1) - 1, saturating at the top.
  EXPECT_EQ(Histogram::BucketUpperEdge(0), 1);
  EXPECT_EQ(Histogram::BucketUpperEdge(1), 3);
  EXPECT_EQ(Histogram::BucketUpperEdge(9), 1023);
  EXPECT_EQ(Histogram::BucketUpperEdge(kHistogramBuckets - 1),
            std::numeric_limits<int64_t>::max());

  // Every value's bucket contains it: value <= upper edge, and above the
  // previous bucket's edge.
  for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{5}, int64_t{100},
                    int64_t{1} << 40}) {
    const int b = Histogram::BucketOf(v);
    EXPECT_LE(v, Histogram::BucketUpperEdge(b)) << v;
    if (b > 0) {
      EXPECT_GT(v, Histogram::BucketUpperEdge(b - 1)) << v;
    }
  }
}

TEST(HistogramTest, ObserveMergesStripes) {
  Histogram h;
  h.Observe(0);
  h.Observe(1);
  h.Observe(2);
  h.Observe(3);
  h.Observe(1024);
  EXPECT_EQ(h.TotalCount(), 5);
  EXPECT_EQ(h.Sum(), 1030);
  EXPECT_EQ(h.Max(), 1024);
  const auto buckets = h.BucketCounts();
  EXPECT_EQ(buckets[0], 2);   // 0, 1
  EXPECT_EQ(buckets[1], 2);   // 2, 3
  EXPECT_EQ(buckets[10], 1);  // 1024
}

// ---------------------------------------------------------------------
// Thread-storm exactness (the TSan config of this test is the race check)

TEST(MetricsTest, CounterStormIsExact) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c]() {
      for (int64_t i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (auto& t : threads) t.join();
  // Relaxed striped adds lose nothing; after the join the merge is exact.
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

TEST(MetricsTest, HistogramStormIsExact) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h]() {
      for (int64_t i = 0; i < kPerThread; ++i) h.Observe(i % 1000);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.TotalCount(), kThreads * kPerThread);
  EXPECT_EQ(h.Max(), 999);
  int64_t bucket_total = 0;
  for (int64_t count : h.BucketCounts()) bucket_total += count;
  EXPECT_EQ(bucket_total, h.TotalCount());
}

// ---------------------------------------------------------------------
// Registry semantics

TEST(MetricsTest, RegistryReturnsStableHandles) {
  MetricsRegistry registry;
  Counter* a = registry.FindOrCreateCounter(kMetricShifts);
  Counter* b = registry.FindOrCreateCounter(kMetricShifts);
  EXPECT_EQ(a, b);
  // A label makes a distinct series under the same catalog name.
  Counter* labeled = registry.FindOrCreateCounter(kMetricShifts, "shard=\"1\"");
  EXPECT_NE(a, labeled);
  a->Increment(3);
  labeled->Increment(5);

  Gauge* g = registry.FindOrCreateGauge(kMetricShardImbalance);
  g->Set(1250);
  EXPECT_EQ(g->Value(), 1250);
  g->Add(-250);
  EXPECT_EQ(g->Value(), 1000);

  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  // std::map order: the rendered label form sorts after the bare name.
  EXPECT_EQ(snapshot.counters[0].name, std::string(kMetricShifts));
  EXPECT_EQ(snapshot.counters[0].value, 3);
  EXPECT_EQ(snapshot.counters[1].name,
            std::string(kMetricShifts) + "{shard=\"1\"}");
  EXPECT_EQ(snapshot.counters[1].value, 5);
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_EQ(snapshot.gauges[0].value, 1000);
}

// ---------------------------------------------------------------------
// Exporters

TEST(ExportTest, PrometheusTextFormat) {
  MetricsRegistry registry;
  registry.FindOrCreateCounter(kMetricCommands)->Increment(3);
  Histogram* h = registry.FindOrCreateHistogram(kMetricCommandAccesses);
  h->Observe(1);    // bucket 0, upper edge 1
  h->Observe(100);  // bucket 6, upper edge 127
  const std::string text = ToPrometheusText(registry.Snapshot());

  EXPECT_NE(text.find("dsf_commands_total 3\n"), std::string::npos) << text;
  EXPECT_NE(text.find("dsf_command_accesses_bucket{le=\"1\"} 1\n"),
            std::string::npos)
      << text;
  // Cumulative: the 100-observation bucket includes the earlier one.
  EXPECT_NE(text.find("dsf_command_accesses_bucket{le=\"127\"} 2\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("dsf_command_accesses_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("dsf_command_accesses_sum 101\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("dsf_command_accesses_count 2\n"), std::string::npos)
      << text;
}

TEST(ExportTest, PrometheusSaturatedTopBucketFoldsIntoInf) {
  // Regression: a sample landing in the saturated top bucket used to
  // emit a finite le="<int64 max>" series next to +Inf — two series
  // claiming the same cumulative count, one of them asserting a finite
  // bound the catch-all bucket does not enforce. The top bucket must
  // surface only through the mandatory +Inf series.
  MetricsRegistry registry;
  Histogram* h = registry.FindOrCreateHistogram(kMetricCommandAccesses);
  h->Observe(2);                                     // bucket 1, edge 3
  h->Observe(std::numeric_limits<int64_t>::max());   // top bucket
  const std::string text = ToPrometheusText(registry.Snapshot());

  EXPECT_EQ(text.find("le=\"9223372036854775807\""), std::string::npos)
      << text;
  EXPECT_NE(text.find("dsf_command_accesses_bucket{le=\"3\"} 1\n"),
            std::string::npos)
      << text;
  // +Inf still reports the full count, top-bucket sample included.
  EXPECT_NE(text.find("dsf_command_accesses_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("dsf_command_accesses_count 2\n"), std::string::npos)
      << text;
}

TEST(ExportTest, PrometheusExactPowerOfTwoLandsInItsOwnBucket) {
  // An exact power of two belongs to the bucket it opens: 128 is in
  // [128, 255], so the emitted edge must be le="255" — not the previous
  // bucket's le="127".
  MetricsRegistry registry;
  Histogram* h = registry.FindOrCreateHistogram(kMetricCommandAccesses);
  h->Observe(128);
  const std::string text = ToPrometheusText(registry.Snapshot());
  EXPECT_NE(text.find("dsf_command_accesses_bucket{le=\"255\"} 1\n"),
            std::string::npos)
      << text;
  EXPECT_EQ(text.find("le=\"127\""), std::string::npos) << text;
}

TEST(ExportTest, PrometheusEmptyHistogramStillEmitsInf) {
  // The +Inf series is mandatory even when no bucket has a sample.
  MetricsRegistry registry;
  registry.FindOrCreateHistogram(kMetricCommandAccesses);
  const std::string text = ToPrometheusText(registry.Snapshot());
  EXPECT_NE(text.find("dsf_command_accesses_bucket{le=\"+Inf\"} 0\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("dsf_command_accesses_count 0\n"), std::string::npos)
      << text;
}

TEST(ExportTest, JsonSnapshotFormat) {
  MetricsRegistry registry;
  registry.FindOrCreateCounter(kMetricCommands)->Increment(7);
  registry.FindOrCreateGauge(kMetricShardImbalance)->Set(1000);
  registry.FindOrCreateHistogram(kMetricReplayOpNs, "thread=\"0\"")
      ->Observe(5);
  const std::string json = ToJsonSnapshot(registry.Snapshot());

  EXPECT_NE(json.find("\"counters\":{\"dsf_commands_total\":7}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"gauges\":{\"dsf_shard_imbalance_x1000\":1000}"),
            std::string::npos)
      << json;
  // Histogram keyed by its rendered (labelled) name; buckets keyed by
  // inclusive upper edge (5 lands in [4, 8), edge 7).
  EXPECT_NE(json.find("\"dsf_replay_op_ns{thread=\\\"0\\\"}\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"buckets\":{\"7\":1}"), std::string::npos) << json;
}

// ---------------------------------------------------------------------
// Tracer ring buffer

TEST(TracerTest, RingKeepsNewestAndCountsDropped) {
  CommandTracer tracer(/*capacity=*/4);
  for (int64_t i = 0; i < 6; ++i) {
    SpanEvent event;
    event.kind = SpanKind::kCommand;
    event.seq = i;
    tracer.Record(event);
  }
  const std::vector<SpanEvent> events = tracer.Events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest first, newest retained: seq 2..5 survive, 0 and 1 dropped.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, static_cast<int64_t>(i + 2));
  }
  EXPECT_EQ(tracer.dropped(), 2);

  const std::string dump = tracer.DumpJsonLines();
  EXPECT_NE(dump.find("\"seq\":5"), std::string::npos) << dump;
  EXPECT_NE(dump.find("{\"dropped\":2}"), std::string::npos) << dump;

  tracer.Clear();
  EXPECT_TRUE(tracer.Events().empty());
  EXPECT_EQ(tracer.dropped(), 0);
}

// ---------------------------------------------------------------------
// BoundCertifier

TEST(BoundCertifierTest, SeededViolationPinsExactReport) {
  // budget = K * (4J + 2) = 1 * 14 = 14.
  EXPECT_EQ(BoundCertifier::BudgetFor(/*block_size=*/1, /*j=*/3), 14);
  BoundCertifier certifier(/*num_pages=*/64, /*d=*/4, /*D=*/20,
                           /*block_size=*/1, /*j=*/3);
  MetricsRegistry registry;
  Counter* violations =
      registry.FindOrCreateCounter(kMetricBoundViolations);
  certifier.set_violations_counter(violations);
  EXPECT_EQ(certifier.budget(), 14);

  certifier.Observe(CommandKind::kInsert, 10);    // within budget
  certifier.Observe(CommandKind::kRange, 1000);   // exempt, never flagged
  certifier.Observe(CommandKind::kCompact, 500);  // exempt
  certifier.Observe(CommandKind::kDelete, 20);    // the seeded breach

  const BoundReport& report = certifier.report();
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.budget, 14);
  EXPECT_EQ(report.commands_checked, 2);
  EXPECT_EQ(report.commands_exempt, 2);
  EXPECT_EQ(report.max_accesses, 20);
  ASSERT_EQ(report.violations.size(), 1u);
  const BoundViolation& v = report.violations[0];
  EXPECT_EQ(v.command_index, 1);  // second *checked* command
  EXPECT_EQ(v.kind, CommandKind::kDelete);
  EXPECT_EQ(v.accesses, 20);
  EXPECT_EQ(v.budget, 14);
  EXPECT_EQ(violations->Value(), 1);

  const Status status = report.ToStatus();
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.ToString().find("DELETE command #1 used 20"),
            std::string::npos)
      << status.ToString();
}

// ---------------------------------------------------------------------
// Cross-layer wiring

DenseFile::Options BaseOptions(DenseFile::Policy policy) {
  DenseFile::Options options;
  options.num_pages = 64;
  options.d = 4;
  options.D = 20;
  options.policy = policy;
  options.cache_frames = 8;  // exercise the pool instrumentation too
  return options;
}

// Drives the same seeded mixed workload against a file; returns the
// number of applied ops (identical across calls by construction).
void DriveWorkload(DenseFile& file) {
  ASSERT_TRUE(file.BulkLoad(MakeAscendingRecords(100, 2, 2)).ok());
  Rng rng(20260807);
  const Trace trace = UniformMix(400, 0.45, 0.35, 300, rng);
  std::vector<Record> scan_out;
  for (const Op& op : trace) {
    switch (op.kind) {
      case Op::Kind::kInsert:
        IgnoreStatus(file.Insert(op.record));
        break;
      case Op::Kind::kDelete:
        IgnoreStatus(file.Delete(op.record.key));
        break;
      case Op::Kind::kGet:
        IgnoreStatus(file.Get(op.record.key));
        break;
      case Op::Kind::kScan:
        scan_out.clear();
        IgnoreStatus(file.Scan(op.record.key, op.scan_hi, &scan_out));
        break;
    }
  }
}

TEST(ObsWiringTest, NullRegistryLeavesIoStatsIdentical) {
  // The zero-overhead contract: with no registry installed the
  // instrumented build must do exactly the page accesses an
  // uninstrumented one would — byte-identical IoStats, including the
  // logical/physical split and the pool counters.
  auto plain = DenseFile::Create(BaseOptions(DenseFile::Policy::kControl2));
  ASSERT_TRUE(plain.ok());

  MetricsRegistry registry;
  CommandTracer tracer;
  DenseFile::Options instrumented_options =
      BaseOptions(DenseFile::Policy::kControl2);
  instrumented_options.metrics = &registry;
  instrumented_options.tracer = &tracer;
  instrumented_options.certify_bound = true;
  auto instrumented = DenseFile::Create(instrumented_options);
  ASSERT_TRUE(instrumented.ok());

  DriveWorkload(**plain);
  DriveWorkload(**instrumented);

  const IoStats a = (*plain)->io_stats();
  const IoStats b = (*instrumented)->io_stats();
  EXPECT_EQ(a.page_reads, b.page_reads);
  EXPECT_EQ(a.page_writes, b.page_writes);
  EXPECT_EQ(a.seeks, b.seeks);
  EXPECT_EQ(a.sequential_accesses, b.sequential_accesses);
  EXPECT_EQ(a.logical_reads, b.logical_reads);
  EXPECT_EQ(a.logical_writes, b.logical_writes);
  EXPECT_EQ(a.sim_elapsed_ns, b.sim_elapsed_ns);

  const BufferPool::Stats ca = (*plain)->cache_stats();
  const BufferPool::Stats cb = (*instrumented)->cache_stats();
  EXPECT_EQ(ca.hits, cb.hits);
  EXPECT_EQ(ca.misses, cb.misses);

  // And the instrumented run actually observed the work.
  const MetricsSnapshot snapshot = registry.Snapshot();
  int64_t commands = -1;
  for (const auto& c : snapshot.counters) {
    if (c.name == kMetricCommands) commands = c.value;
  }
  EXPECT_EQ(commands, (*instrumented)->command_stats().commands);
  EXPECT_FALSE(tracer.Events().empty());
}

TEST(ObsWiringTest, Control2RunIsCertifiedClean) {
  MetricsRegistry registry;
  CommandTracer tracer;
  DenseFile::Options options = BaseOptions(DenseFile::Policy::kControl2);
  options.metrics = &registry;
  options.tracer = &tracer;
  options.certify_bound = true;
  options.audit_every_command = true;
  auto file = DenseFile::Create(options);
  ASSERT_TRUE(file.ok());

  DriveWorkload(**file);

  // The paper's contract, certified live: no CONTROL 2 point command
  // exceeded the K*(4J+2) envelope.
  const BoundReport* report = (*file)->bound_report();
  ASSERT_NE(report, nullptr);
  EXPECT_TRUE(report->ok()) << report->ToString();
  EXPECT_GT(report->commands_checked, 0);
  EXPECT_GT((*file)->bound_budget(), 0);
  EXPECT_LE(report->max_accesses, report->budget);

  // Every phase span shares its enclosing command's seq, and command
  // spans carry the command's IoStats delta.
  bool saw_command_span = false;
  for (const SpanEvent& event : tracer.Events()) {
    if (event.kind == SpanKind::kCommand) {
      saw_command_span = true;
      EXPECT_GE(event.io.TotalLogical(), 0);
    }
  }
  EXPECT_TRUE(saw_command_span);
}

TEST(ObsWiringTest, SimTimeHasOneSourceOfTruth) {
  // Uniform latency: every access charges exactly the flat value into
  // sim_elapsed_ns — the same number the real sleep consumes.
  PageFile file(/*num_pages=*/16, /*page_capacity=*/4);
  file.set_access_latency(std::chrono::nanoseconds(100));
  ASSERT_TRUE(file.TryRead(1).ok());
  ASSERT_TRUE(file.TryRead(2).ok());
  ASSERT_TRUE(file.TryWrite(10).ok());
  EXPECT_EQ(file.stats().TotalAccesses(), 3);
  EXPECT_EQ(file.stats().sim_elapsed_ns, 300);

  // Seek-aware model: a seek access pays seek + transfer, a sequential
  // one transfer only, so a coalesced run of R consecutive pages costs
  // one seek charge plus R-1 transfer charges.
  PageFile modeled(/*num_pages=*/16, /*page_capacity=*/4);
  DiskModel model;
  model.seek_ms = 2.0;
  model.transfer_ms = 1.0;
  modeled.set_disk_model(model);  // accounting only, no real sleep
  ASSERT_TRUE(modeled.TryRead(5).ok());  // first access: seek
  ASSERT_TRUE(modeled.TryRead(6).ok());  // adjacent: sequential
  ASSERT_TRUE(modeled.TryRead(7).ok());  // adjacent: sequential
  ASSERT_TRUE(modeled.TryRead(1).ok());  // jump: seek
  EXPECT_EQ(modeled.stats().seeks, 2);
  EXPECT_EQ(modeled.stats().sequential_accesses, 2);
  EXPECT_EQ(modeled.stats().sim_elapsed_ns,
            2 * model.SeekChargeNs() + 2 * model.SequentialChargeNs());
  // The per-access charges reconcile with the aggregate LatencyMs model.
  EXPECT_DOUBLE_EQ(
      static_cast<double>(modeled.stats().sim_elapsed_ns) * 1e-6,
      model.LatencyMs(modeled.stats()));
}

TEST(ObsWiringTest, ShardMetricsPublishPerShardSeries) {
  MetricsRegistry registry;
  ShardedDenseFile::Options options;
  options.num_shards = 4;
  options.key_space = 4000;
  options.shard.num_pages = 64;
  options.shard.d = 4;
  options.shard.D = 20;
  options.shard.metrics = &registry;
  auto file = ShardedDenseFile::Create(options);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->BulkLoad(MakeAscendingRecords(400, 1, 10)).ok());

  (*file)->PublishMetrics();

  const MetricsSnapshot snapshot = registry.Snapshot();
  int shard_series = 0;
  int64_t imbalance = -1;
  int64_t published_total = 0;
  for (const auto& g : snapshot.gauges) {
    if (g.name.rfind(kMetricShardRecords, 0) == 0) {
      ++shard_series;
      published_total += g.value;
    }
    if (g.name == kMetricShardImbalance) imbalance = g.value;
  }
  EXPECT_EQ(shard_series, 4);
  EXPECT_EQ(published_total, (*file)->size());
  // 1000 = perfectly balanced; the uniform ascending load is close.
  EXPECT_GE(imbalance, 1000);
  EXPECT_LT(imbalance, 1500);
}

TEST(ObsWiringTest, ReplayerRecordsPerThreadLatencies) {
  MetricsRegistry registry;
  ShardedDenseFile::Options options;
  options.num_shards = 2;
  options.key_space = 2000;
  options.shard.num_pages = 64;
  options.shard.d = 8;
  options.shard.D = 36;
  auto file = ShardedDenseFile::Create(options);
  ASSERT_TRUE(file.ok());

  constexpr int kThreads = 2;
  constexpr int64_t kOpsPerThread = 200;
  const std::vector<Trace> traces = ParallelReplayer::DisjointUniformMixes(
      kThreads, kOpsPerThread, /*insert_fraction=*/0.5,
      /*delete_fraction=*/0.2, /*scan_fraction=*/0.1, /*key_space=*/2000,
      /*scan_span=*/16, /*seed=*/42);
  ParallelReplayer::Options replay_options;
  replay_options.num_threads = kThreads;
  replay_options.metrics = &registry;
  ParallelReplayer replayer(replay_options);
  const ReplayResult result = replayer.Replay(**file, traces);
  ASSERT_TRUE(result.ok()) << result.first_unexpected_error.ToString();

  // One histogram series per thread, each holding exactly that thread's
  // op count.
  for (int t = 0; t < kThreads; ++t) {
    Histogram* h = registry.FindOrCreateHistogram(
        kMetricReplayOpNs, "thread=\"" + std::to_string(t) + "\"");
    EXPECT_EQ(h->TotalCount(), kOpsPerThread) << "thread " << t;
  }

  // The replay's IoStats delta keeps the logical/physical split intact:
  // with no buffer pool every logical access reached the device.
  EXPECT_GT(result.io.TotalLogical(), 0);
  EXPECT_EQ(result.io.TotalLogical(), result.io.TotalAccesses());
  EXPECT_GT(result.LogicalAccessesPerOp(), 0.0);
  EXPECT_DOUBLE_EQ(result.LogicalAccessesPerOp(),
                   result.PhysicalAccessesPerOp());
}

}  // namespace
}  // namespace dsf
