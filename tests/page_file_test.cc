#include "storage/page_file.h"

#include <gtest/gtest.h>

#include "storage/disk_model.h"

namespace dsf {
namespace {

TEST(PageFile, ConstructsEmptyPages) {
  PageFile f(4, 8);
  EXPECT_EQ(f.num_pages(), 4);
  EXPECT_EQ(f.page_capacity(), 8);
  for (Address a = 1; a <= 4; ++a) {
    EXPECT_TRUE(f.Peek(a).empty());
  }
  EXPECT_EQ(f.TotalRecords(), 0);
}

TEST(PageFile, ReadAndWriteAreAccounted) {
  PageFile f(4, 8);
  f.Read(1);
  f.Read(2);
  f.Write(3);
  EXPECT_EQ(f.stats().page_reads, 2);
  EXPECT_EQ(f.stats().page_writes, 1);
  EXPECT_EQ(f.stats().TotalAccesses(), 3);
}

TEST(PageFile, PeekAndRawPageAreFree) {
  PageFile f(4, 8);
  f.Peek(1);
  f.RawPage(2);
  EXPECT_EQ(f.stats().TotalAccesses(), 0);
}

TEST(PageFile, SeekVersusSequentialClassification) {
  PageFile f(10, 4);
  f.Read(5);   // first access: seek
  f.Read(6);   // adjacent: sequential
  f.Read(6);   // same: sequential
  f.Read(5);   // adjacent (backward): sequential
  f.Read(9);   // jump: seek
  f.Write(9);  // same: sequential
  EXPECT_EQ(f.stats().seeks, 2);
  EXPECT_EQ(f.stats().sequential_accesses, 4);
}

TEST(PageFile, ResetStatsClearsAndRestartsSeekTracking) {
  PageFile f(4, 4);
  f.Read(1);
  f.Read(2);
  f.ResetStats();
  EXPECT_EQ(f.stats().TotalAccesses(), 0);
  f.Read(3);  // first access after reset counts as a seek again
  EXPECT_EQ(f.stats().seeks, 1);
}

TEST(PageFile, GloballyOrderedAcceptsGapsAndOrder) {
  PageFile f(4, 4);
  ASSERT_TRUE(f.RawPage(1).Insert(Record{1, 0}).ok());
  ASSERT_TRUE(f.RawPage(1).Insert(Record{5, 0}).ok());
  // page 2 left empty
  ASSERT_TRUE(f.RawPage(3).Insert(Record{7, 0}).ok());
  EXPECT_TRUE(f.GloballyOrdered());
  EXPECT_EQ(f.TotalRecords(), 3);
}

TEST(PageFile, GloballyOrderedRejectsInversionAcrossPages) {
  PageFile f(3, 4);
  ASSERT_TRUE(f.RawPage(1).Insert(Record{10, 0}).ok());
  ASSERT_TRUE(f.RawPage(2).Insert(Record{3, 0}).ok());
  EXPECT_FALSE(f.GloballyOrdered());
}

TEST(PageFile, GloballyOrderedRejectsEqualBoundaryKeys) {
  PageFile f(3, 4);
  ASSERT_TRUE(f.RawPage(1).Insert(Record{10, 0}).ok());
  ASSERT_TRUE(f.RawPage(2).Insert(Record{10, 1}).ok());
  EXPECT_FALSE(f.GloballyOrdered());
}

TEST(IoStats, DifferenceAndAccumulate) {
  IoStats a;
  a.page_reads = 10;
  a.page_writes = 4;
  a.seeks = 3;
  a.sequential_accesses = 11;
  IoStats b;
  b.page_reads = 6;
  b.page_writes = 1;
  b.seeks = 2;
  b.sequential_accesses = 5;
  const IoStats d = a - b;
  EXPECT_EQ(d.page_reads, 4);
  EXPECT_EQ(d.page_writes, 3);
  EXPECT_EQ(d.seeks, 1);
  EXPECT_EQ(d.sequential_accesses, 6);
  IoStats c = b;
  c += d;
  EXPECT_EQ(c.page_reads, a.page_reads);
  EXPECT_EQ(c.TotalAccesses(), a.TotalAccesses());
}

TEST(DiskModel, LatencyChargesSeeksAndTransfers) {
  DiskModel disk;
  disk.seek_ms = 30.0;
  disk.transfer_ms = 1.0;
  IoStats s;
  s.page_reads = 10;   // 10 total accesses
  s.seeks = 2;
  s.sequential_accesses = 8;
  EXPECT_DOUBLE_EQ(disk.LatencyMs(s), 2 * 30.0 + 10 * 1.0);
  EXPECT_DOUBLE_EQ(disk.LatencyMs(0, 5), 5.0);
}

}  // namespace
}  // namespace dsf
