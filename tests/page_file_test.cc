#include "storage/page_file.h"

#include <gtest/gtest.h>

#include <memory>

#include "storage/disk_model.h"

namespace dsf {
namespace {

TEST(PageFile, ConstructsEmptyPages) {
  PageFile f(4, 8);
  EXPECT_EQ(f.num_pages(), 4);
  EXPECT_EQ(f.page_capacity(), 8);
  for (Address a = 1; a <= 4; ++a) {
    EXPECT_TRUE(f.Peek(a).empty());
  }
  EXPECT_EQ(f.TotalRecords(), 0);
}

TEST(PageFile, ReadAndWriteAreAccounted) {
  PageFile f(4, 8);
  f.Read(1);
  f.Read(2);
  f.Write(3);
  EXPECT_EQ(f.stats().page_reads, 2);
  EXPECT_EQ(f.stats().page_writes, 1);
  EXPECT_EQ(f.stats().TotalAccesses(), 3);
}

TEST(PageFile, PeekAndRawPageAreFree) {
  PageFile f(4, 8);
  f.Peek(1);
  f.RawPage(2);
  EXPECT_EQ(f.stats().TotalAccesses(), 0);
}

TEST(PageFile, SeekVersusSequentialClassification) {
  PageFile f(10, 4);
  f.Read(5);   // first access: seek
  f.Read(6);   // adjacent: sequential
  f.Read(6);   // same: sequential
  f.Read(5);   // adjacent (backward): sequential
  f.Read(9);   // jump: seek
  f.Write(9);  // same: sequential
  EXPECT_EQ(f.stats().seeks, 2);
  EXPECT_EQ(f.stats().sequential_accesses, 4);
}

TEST(PageFile, ResetStatsClearsAndRestartsSeekTracking) {
  PageFile f(4, 4);
  f.Read(1);
  f.Read(2);
  f.ResetStats();
  EXPECT_EQ(f.stats().TotalAccesses(), 0);
  f.Read(3);  // first access after reset counts as a seek again
  EXPECT_EQ(f.stats().seeks, 1);
}

TEST(PageFile, LogicalAndPhysicalCountersSplit) {
  PageFile f(8, 4);
  // The classic accessors charge both sides (an unpooled caller always
  // pays the device)...
  ASSERT_TRUE(f.TryRead(1).ok());
  ASSERT_TRUE(f.TryWrite(2).ok());
  EXPECT_EQ(f.stats().logical_reads, 1);
  EXPECT_EQ(f.stats().logical_writes, 1);
  EXPECT_EQ(f.stats().page_reads, 1);
  EXPECT_EQ(f.stats().page_writes, 1);
  // ...the pool's device accessors charge physical only...
  ASSERT_TRUE(f.TryDeviceRead(3).ok());
  ASSERT_TRUE(f.TryDeviceWrite(4).ok());
  EXPECT_EQ(f.stats().page_reads, 2);
  EXPECT_EQ(f.stats().page_writes, 2);
  EXPECT_EQ(f.stats().TotalLogical(), 2);
  // ...and CountLogical charges logical only (a cache hit).
  f.CountLogical(/*is_write=*/false);
  EXPECT_EQ(f.stats().logical_reads, 2);
  EXPECT_EQ(f.stats().TotalAccesses(), 4);
}

TEST(PageFile, FaultAndLatencyStillFireAfterSlowPathToggling) {
  // The fault/latency checks sit behind a single precomputed slow-path
  // flag; toggling the policy on, off, and on again must keep injection
  // exact (a stale flag would silently disable faults).
  PageFile f(8, 4);
  auto policy = std::make_shared<FaultPolicy>();
  policy->FailAddressRange(2, 2);
  f.set_fault_policy(policy);
  EXPECT_FALSE(f.TryRead(2).ok());
  f.set_fault_policy(nullptr);
  EXPECT_TRUE(f.TryRead(2).ok());
  f.set_fault_policy(policy);
  EXPECT_FALSE(f.TryWrite(2).ok());
  // Faulted accesses were still charged (attempted-access accounting).
  EXPECT_EQ(f.stats().TotalAccesses(), 3);
}

// Satellite guarantee documented in io_stats.h: each PageFile owns its
// own AccessTracker, so interleaved traffic to another file never breaks
// this file's sequential-run detection — exactly as two disks each keep
// their own arm position (the sharded file relies on this).
TEST(PageFile, SequentialRunsSurviveCrossFileInterleaving) {
  PageFile a(16, 4);
  PageFile b(16, 4);
  a.Read(7);   // seek (first access on a)
  b.Read(13);  // far-away traffic on the other device
  a.Read(8);   // sequential on a, despite b's access in between
  b.Read(2);
  a.Read(9);    // still sequential on a
  EXPECT_EQ(a.stats().seeks, 1);
  EXPECT_EQ(a.stats().sequential_accesses, 2);
  EXPECT_EQ(b.stats().seeks, 2);  // 13 then 2: both arm movements
}

TEST(PageFile, GloballyOrderedAcceptsGapsAndOrder) {
  PageFile f(4, 4);
  ASSERT_TRUE(f.RawPage(1).Insert(Record{1, 0}).ok());
  ASSERT_TRUE(f.RawPage(1).Insert(Record{5, 0}).ok());
  // page 2 left empty
  ASSERT_TRUE(f.RawPage(3).Insert(Record{7, 0}).ok());
  EXPECT_TRUE(f.GloballyOrdered());
  EXPECT_EQ(f.TotalRecords(), 3);
}

TEST(PageFile, GloballyOrderedRejectsInversionAcrossPages) {
  PageFile f(3, 4);
  ASSERT_TRUE(f.RawPage(1).Insert(Record{10, 0}).ok());
  ASSERT_TRUE(f.RawPage(2).Insert(Record{3, 0}).ok());
  EXPECT_FALSE(f.GloballyOrdered());
}

TEST(PageFile, GloballyOrderedRejectsEqualBoundaryKeys) {
  PageFile f(3, 4);
  ASSERT_TRUE(f.RawPage(1).Insert(Record{10, 0}).ok());
  ASSERT_TRUE(f.RawPage(2).Insert(Record{10, 1}).ok());
  EXPECT_FALSE(f.GloballyOrdered());
}

TEST(IoStats, DifferenceAndAccumulate) {
  IoStats a;
  a.page_reads = 10;
  a.page_writes = 4;
  a.seeks = 3;
  a.sequential_accesses = 11;
  IoStats b;
  b.page_reads = 6;
  b.page_writes = 1;
  b.seeks = 2;
  b.sequential_accesses = 5;
  const IoStats d = a - b;
  EXPECT_EQ(d.page_reads, 4);
  EXPECT_EQ(d.page_writes, 3);
  EXPECT_EQ(d.seeks, 1);
  EXPECT_EQ(d.sequential_accesses, 6);
  IoStats c = b;
  c += d;
  EXPECT_EQ(c.page_reads, a.page_reads);
  EXPECT_EQ(c.TotalAccesses(), a.TotalAccesses());
}

TEST(DiskModel, LatencyChargesSeeksAndTransfers) {
  DiskModel disk;
  disk.seek_ms = 30.0;
  disk.transfer_ms = 1.0;
  IoStats s;
  s.page_reads = 10;   // 10 total accesses
  s.seeks = 2;
  s.sequential_accesses = 8;
  EXPECT_DOUBLE_EQ(disk.LatencyMs(s), 2 * 30.0 + 10 * 1.0);
  EXPECT_DOUBLE_EQ(disk.LatencyMs(0, 5), 5.0);
}

}  // namespace
}  // namespace dsf
