// The keystone correctness test: replays the paper's Example 5.2 through
// the real CONTROL 2 implementation and diffs every flag-stable moment
// against Figure 4, plus the flag/pointer narration in the prose
// (activation of L8 and v3, the DEST(v3) roll-back, the final all-calm
// state).

#include "repro/example52.h"

#include <gtest/gtest.h>

namespace dsf::repro {
namespace {

TEST(Example52, Figure4RowsMatchExactly) {
  StatusOr<Example52Result> run = RunExample52();
  ASSERT_TRUE(run.ok()) << run.status();
  const auto& expected = Figure4Expected();
  ASSERT_EQ(run->moments.size(), expected.size());
  for (size_t t = 0; t < expected.size(); ++t) {
    EXPECT_EQ(run->moments[t].occupancy, expected[t])
        << "occupancies diverge from Figure 4 at t" << t;
  }
}

TEST(Example52, FlagAndPointerNarrationMatchesPaper) {
  StatusOr<Example52Result> run = RunExample52();
  ASSERT_TRUE(run.ok()) << run.status();
  const std::vector<Example52Snapshot>& m = run->moments;

  // t0: "all calibration tree nodes are in a non-warning state".
  EXPECT_FALSE(m[0].warn_l1);
  EXPECT_FALSE(m[0].warn_l8);
  EXPECT_FALSE(m[0].warn_v3);

  // t1: "step 3 will raise L8 and v3 into warning states and assign
  // DEST(L8) and DEST(v3) the initial values of 7 and 1".
  EXPECT_TRUE(m[1].warn_l8);
  EXPECT_TRUE(m[1].warn_v3);
  EXPECT_EQ(m[1].dest_v3, 1);

  // t2: SHIFT(L8) moved six records and L8 left the warning state.
  EXPECT_FALSE(m[2].warn_l8);
  EXPECT_TRUE(m[2].warn_v3);

  // t3: SHIFT(v3) moved nothing but "sets DEST(v3) = 2".
  EXPECT_EQ(m[3].dest_v3, 2);

  // t4: command Z1 complete; v3 still warning with DEST(v3) = 2.
  EXPECT_TRUE(m[4].warn_v3);
  EXPECT_EQ(m[4].dest_v3, 2);

  // t5: ACTIVATE(L1) raised L1 and roll-back rule 1 "sets DEST(v3) = 1" —
  // the example's first roll-back.
  EXPECT_TRUE(m[5].warn_l1);
  EXPECT_EQ(m[5].dest_v3, 1);

  // t6: thirteen records moved 1 -> 2 and L1 calmed down.
  EXPECT_FALSE(m[6].warn_l1);

  // t7: eleven records moved 2 -> 1; "a second action of SHIFT(v3)
  // consists of setting DEST(v3) = 2".
  EXPECT_TRUE(m[7].warn_v3);
  EXPECT_EQ(m[7].dest_v3, 2);

  // t8: "all nodes in the calibration tree have returned to a
  // non-warning state".
  EXPECT_FALSE(m[8].warn_l1);
  EXPECT_FALSE(m[8].warn_l8);
  EXPECT_FALSE(m[8].warn_v3);
}

}  // namespace
}  // namespace dsf::repro
