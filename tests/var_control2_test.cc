#include "varsize/var_control2.h"

#include <map>

#include <gtest/gtest.h>

#include "util/random.h"

namespace dsf {
namespace {

VarControl2::Options SmallOptions() {
  VarControl2::Options options;
  options.num_pages = 32;  // L = 5
  options.d = 16;
  options.D = 16 + 61;  // gap 61 > 3*4*5 = 60
  options.max_record_size = 4;
  return options;
}

std::unique_ptr<VarControl2> Make(const VarControl2::Options& options) {
  StatusOr<std::unique_ptr<VarControl2>> c = VarControl2::Create(options);
  EXPECT_TRUE(c.ok()) << c.status();
  return std::move(*c);
}

TEST(VarControl2, CreateEnforcesWidenedGap) {
  VarControl2::Options options = SmallOptions();
  options.D = options.d + 60;  // == 3*S*L
  EXPECT_TRUE(VarControl2::Create(options).status().IsInvalidArgument());
  options.D = options.d + 61;
  EXPECT_TRUE(VarControl2::Create(options).ok());
}

TEST(VarControl2, BasicRoundtrip) {
  std::unique_ptr<VarControl2> c = Make(SmallOptions());
  ASSERT_TRUE(c->Insert(VarRecord{10, 3, 100}).ok());
  ASSERT_TRUE(c->Insert(VarRecord{20, 1, 200}).ok());
  EXPECT_EQ(c->record_count(), 2);
  EXPECT_EQ(c->total_units(), 4);
  StatusOr<VarRecord> r = c->Get(10);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size, 3);
  EXPECT_TRUE(c->Insert(VarRecord{10, 1, 0}).IsAlreadyExists());
  EXPECT_TRUE(c->Delete(11).IsNotFound());
  EXPECT_TRUE(c->Delete(10).ok());
  EXPECT_TRUE(c->ValidateInvariants().ok());
}

TEST(VarControl2, DescendingHotspotKeepsAllInvariants) {
  std::unique_ptr<VarControl2> c = Make(SmallOptions());
  Rng rng(8);
  Key key = 1ull << 30;
  int64_t step = 0;
  for (;;) {
    const int64_t size = static_cast<int64_t>(rng.Uniform(4)) + 1;
    const Status s = c->Insert(VarRecord{key--, size, 0});
    if (s.IsCapacityExceeded()) break;
    ASSERT_TRUE(s.ok()) << s;
    ASSERT_TRUE(c->ValidateInvariants().ok()) << "step " << step;
    ++step;
  }
  EXPECT_GT(c->maintenance_stats().shifts, 0);
  EXPECT_GT(c->maintenance_stats().units_shifted, 0);
}

TEST(VarControl2, WorstCaseCommandCostBoundedByJ) {
  VarControl2::Options options;
  options.num_pages = 256;  // L = 8
  options.d = 16;
  options.D = 16 + 97;  // gap 97 > 96
  options.max_record_size = 4;
  std::unique_ptr<VarControl2> c = Make(options);
  Rng rng(9);
  Key key = 1ull << 30;
  for (;;) {
    const int64_t size = static_cast<int64_t>(rng.Uniform(4)) + 1;
    const Status s = c->Insert(VarRecord{key--, size, 0});
    if (s.IsCapacityExceeded()) break;
    ASSERT_TRUE(s.ok()) << s;
  }
  ASSERT_TRUE(c->ValidateInvariants().ok());
  // Each command: 1 read + 1 write for the insert, <= 4 accesses per
  // SHIFT cycle.
  EXPECT_LE(c->command_cost().max_accesses, 4 * (c->J() + 1) + 2);
}

TEST(VarControl2, RandomizedChurnMatchesModel) {
  std::unique_ptr<VarControl2> c = Make(SmallOptions());
  std::map<Key, VarRecord> model;
  Rng rng(44);
  for (int step = 0; step < 3000; ++step) {
    const Key k = rng.Uniform(400) + 1;
    if (rng.Bernoulli(0.6)) {
      const VarRecord r{k, static_cast<int64_t>(rng.Uniform(4)) + 1, k};
      const Status s = c->Insert(r);
      if (model.count(k) > 0) {
        ASSERT_TRUE(s.IsAlreadyExists()) << s;
      } else if (s.ok()) {
        model.emplace(k, r);
      } else {
        ASSERT_TRUE(s.IsCapacityExceeded()) << s;
      }
    } else {
      const Status s = c->Delete(k);
      ASSERT_EQ(s.ok(), model.erase(k) > 0);
    }
    ASSERT_TRUE(c->ValidateInvariants().ok()) << "step " << step;
  }
  const std::vector<VarRecord> contents = c->ScanAll();
  ASSERT_EQ(contents.size(), model.size());
  size_t i = 0;
  for (const auto& [k, r] : model) {
    EXPECT_EQ(contents[i++], r);
  }
}

TEST(VarControl2, BulkLoadThenScan) {
  std::unique_ptr<VarControl2> c = Make(SmallOptions());
  std::vector<VarRecord> records;
  for (Key k = 10; k <= 800; k += 10) {
    records.push_back(VarRecord{k, 1 + static_cast<int64_t>(k % 4), k});
  }
  ASSERT_TRUE(c->BulkLoad(records).ok());
  ASSERT_TRUE(c->ValidateInvariants().ok());
  std::vector<VarRecord> out;
  ASSERT_TRUE(c->Scan(100, 300, &out).ok());
  EXPECT_EQ(out.size(), 21u);
  EXPECT_EQ(c->ScanAll(), records);
}

}  // namespace
}  // namespace dsf
