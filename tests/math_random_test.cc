#include <gtest/gtest.h>

#include "util/math.h"
#include "util/random.h"

namespace dsf {
namespace {

TEST(Math, CeilLog2) {
  EXPECT_EQ(CeilLog2(1), 0);
  EXPECT_EQ(CeilLog2(2), 1);
  EXPECT_EQ(CeilLog2(3), 2);
  EXPECT_EQ(CeilLog2(4), 2);
  EXPECT_EQ(CeilLog2(5), 3);
  EXPECT_EQ(CeilLog2(8), 3);
  EXPECT_EQ(CeilLog2(9), 4);
  EXPECT_EQ(CeilLog2(1 << 20), 20);
  EXPECT_EQ(CeilLog2((1 << 20) + 1), 21);
}

TEST(Math, FloorLog2) {
  EXPECT_EQ(FloorLog2(1), 0);
  EXPECT_EQ(FloorLog2(2), 1);
  EXPECT_EQ(FloorLog2(3), 1);
  EXPECT_EQ(FloorLog2(4), 2);
  EXPECT_EQ(FloorLog2(1023), 9);
  EXPECT_EQ(FloorLog2(1024), 10);
}

TEST(Math, DivCeil) {
  EXPECT_EQ(DivCeil(0, 5), 0);
  EXPECT_EQ(DivCeil(1, 5), 1);
  EXPECT_EQ(DivCeil(5, 5), 1);
  EXPECT_EQ(DivCeil(6, 5), 2);
  EXPECT_EQ(DivCeil(10, 3), 4);
}

TEST(Math, IsPowerOfTwo) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_TRUE(IsPowerOfTwo(64));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_FALSE(IsPowerOfTwo(96));
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 90);
}

TEST(Rng, UniformStaysInBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(Rng, UniformCoversAllResidues) {
  Rng rng(11);
  std::array<int, 8> hits{};
  for (int i = 0; i < 8000; ++i) ++hits[rng.Uniform(8)];
  for (const int h : hits) {
    EXPECT_GT(h, 800);  // expectation 1000; crude uniformity bound
    EXPECT_LT(h, 1200);
  }
}

TEST(Rng, UniformInRangeInclusive) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(Zipf, ThetaZeroIsUniform) {
  Rng rng(13);
  ZipfGenerator zipf(10, 0.0);
  std::array<int, 10> hits{};
  for (int i = 0; i < 20000; ++i) ++hits[zipf.Sample(rng)];
  for (const int h : hits) {
    EXPECT_GT(h, 1600);
    EXPECT_LT(h, 2400);
  }
}

TEST(Zipf, HighThetaConcentratesOnSmallRanks) {
  Rng rng(17);
  ZipfGenerator zipf(1000, 1.2);
  int64_t head = 0;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    if (zipf.Sample(rng) < 10) ++head;
  }
  // Under uniform the head would get ~1%; Zipf(1.2) concentrates hard.
  EXPECT_GT(head, kDraws / 3);
}

TEST(Zipf, SampleAlwaysBelowN) {
  Rng rng(23);
  ZipfGenerator zipf(5, 0.8);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Sample(rng), 5u);
}

}  // namespace
}  // namespace dsf
