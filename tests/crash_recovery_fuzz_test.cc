// Deterministic crash-after-k sweep.
//
// For every accounted access index k in a mixed insert/delete trace, crash
// the device at k (all later accesses fail), then restart (ClearCrash),
// run CheckAndRepair, and require: repair succeeds, the full invariant
// sweep passes, and the contents equal the reference model — where the
// single in-flight command is allowed to have either committed or cleanly
// aborted (the model is aligned by asking the recovered file). The rest of
// the trace then replays fault-free and must stay in lockstep.
//
// The ambiguity protocol mirrors real recovery: after a crash the caller
// cannot know whether the interrupted command took effect, but the file
// must be SOME consistent state that reflects either outcome — never a
// torn half-state, never a lost unrelated record.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "core/control_base.h"
#include "core/dense_file.h"
#include "gtest/gtest.h"
#include "shard/sharded_dense_file.h"
#include "storage/fault_injection.h"
#include "storage/record.h"
#include "util/random.h"
#include "util/status.h"
#include "workload/reference_model.h"
#include "workload/workload.h"

namespace dsf {
namespace {

DenseFile::Options FileOptions(DenseFile::Policy policy,
                               int64_t cache_frames = 0) {
  DenseFile::Options options;
  options.num_pages = 32;
  options.d = 4;
  options.D = 20;
  options.policy = policy;
  options.cache_frames = cache_frames;
  // Every command in the sweep runs under the structural auditor: any
  // state the repair (or a fault-free replay step) leaves behind must be
  // auditor-certified, not merely ValidateInvariants-clean. Commands
  // that die on the injected fault are exempt (see DenseFile::Audit).
  options.audit_every_command = true;
  return options;
}

Status ApplyToFile(DenseFile& file, const Op& op) {
  switch (op.kind) {
    case Op::Kind::kInsert:
      return file.Insert(op.record);
    case Op::Kind::kDelete:
      return file.Delete(op.record.key);
    case Op::Kind::kGet:
      return file.Get(op.record.key).status();
    case Op::Kind::kScan: {
      std::vector<Record> out;
      return file.Scan(op.record.key, op.scan_hi, &out);
    }
  }
  return Status::OK();
}

Status ApplyToModel(ReferenceModel& model, const Op& op) {
  switch (op.kind) {
    case Op::Kind::kInsert:
      return model.Insert(op.record);
    case Op::Kind::kDelete:
      return model.Delete(op.record.key);
    case Op::Kind::kGet:
      return model.Get(op.record.key).status();
    case Op::Kind::kScan:
      return Status::OK();
  }
  return Status::OK();
}

// The crashed command may or may not have committed; both outcomes are
// valid recoveries. Resolve the ambiguity by asking the repaired file.
template <typename File>
void AlignModelAfterCrash(const Op& op, File& file, ReferenceModel& model) {
  if (op.kind == Op::Kind::kInsert) {
    if (file.Contains(op.record.key) && !model.Contains(op.record.key)) {
      ASSERT_TRUE(model.Insert(op.record).ok());
    }
  } else if (op.kind == Op::Kind::kDelete) {
    if (!file.Contains(op.record.key) && model.Contains(op.record.key)) {
      ASSERT_TRUE(model.Delete(op.record.key).ok());
    }
  }
}

// Accounted *physical* accesses of a fault-free replay: the sweep's
// upper bound. With a buffer pool this is the device traffic (hits are
// absorbed), so the sweep still visits every flush boundary.
int64_t CleanRunAccesses(DenseFile::Policy policy, int64_t cache_frames,
                         const std::vector<Record>& initial,
                         const Trace& trace) {
  std::unique_ptr<DenseFile> file =
      *DenseFile::Create(FileOptions(policy, cache_frames));
  EXPECT_TRUE(file->BulkLoad(initial).ok());
  for (const Op& op : trace) IgnoreStatus(ApplyToFile(*file, op));
  return file->io_stats().TotalAccesses();
}

void RunCrashPoint(DenseFile::Policy policy_kind, int64_t cache_frames,
                   const std::vector<Record>& initial, const Trace& trace,
                   int64_t k, bool* fault_fired) {
  StatusOr<std::unique_ptr<DenseFile>> created =
      DenseFile::Create(FileOptions(policy_kind, cache_frames));
  ASSERT_TRUE(created.ok()) << created.status();
  DenseFile& file = **created;
  ASSERT_TRUE(file.BulkLoad(initial).ok());
  ReferenceModel model(file.capacity());
  ASSERT_TRUE(model.Load(initial).ok());

  auto policy = std::make_shared<FaultPolicy>();
  policy->CrashAfterAccesses(k);
  file.set_fault_policy(policy);

  bool crashed = false;
  for (size_t i = 0; i < trace.size(); ++i) {
    const Op& op = trace[i];
    const Status file_status = ApplyToFile(file, op);
    if (!crashed && file_status.IsIoError()) {
      crashed = true;
      *fault_fired = true;
      // Full restart: the cache (including any dirty frames the failed
      // EndCommand flush left behind) is RAM and dies with the process.
      file.DiscardCache();
      policy->ClearCrash();  // restart
      StatusOr<RepairReport> report = file.CheckAndRepair();
      ASSERT_TRUE(report.ok())
          << "k=" << k << " op=" << i << ": " << report.status();
      ASSERT_TRUE(file.ValidateInvariants().ok())
          << "k=" << k << " op=" << i;
      AlignModelAfterCrash(op, file, model);
      if (::testing::Test::HasFatalFailure()) return;
      ASSERT_EQ(*file.ScanAll(), model.ScanAll())
          << "k=" << k << " diverged at op " << i << " after repair";
      continue;
    }
    // At most one command may observe the crash: everything after
    // ClearCrash runs clean.
    ASSERT_FALSE(file_status.IsIoError()) << "k=" << k << " op=" << i;
    const Status model_status = ApplyToModel(model, op);
    ASSERT_EQ(file_status.code(), model_status.code())
        << "k=" << k << " op=" << i << " file=" << file_status
        << " model=" << model_status;
  }
  // The trace may have finished inside the access budget with the crash
  // still armed; lift it so the verification scans run clean.
  policy->ClearCrash();
  ASSERT_TRUE(file.ValidateInvariants().ok()) << "k=" << k;
  ASSERT_EQ(*file.ScanAll(), model.ScanAll()) << "k=" << k;
}

// Sweep parameter: (maintenance policy, buffer-pool frames). frames = 0
// is the direct-to-device seed configuration; frames > 0 runs the same
// sweep through the pool, where the interesting crash points fall inside
// EndCommand's ordered FlushAll (the flush boundaries) instead of inside
// the command body.
class CrashRecoverySweep
    : public ::testing::TestWithParam<std::tuple<DenseFile::Policy, int64_t>> {
};

TEST_P(CrashRecoverySweep, EveryCrashPointRecovers) {
  const DenseFile::Policy policy = std::get<0>(GetParam());
  const int64_t cache_frames = std::get<1>(GetParam());
  // Wide key stride (30) leaves each block's fence span wider than D
  // consecutive integer keys, so the ascending burst below piles into a
  // single block until it overflows past D and forces real maintenance
  // (SHIFT cycles / redistribution / chain shifts) — the sweep then
  // crashes through those multi-page rewrites, not just 2-access updates.
  Rng rng(20260807);
  const std::vector<Record> initial = MakeAscendingRecords(80, 30, 30);
  Trace trace = AscendingInserts(24, 601, 1);
  const Trace tail = UniformMix(60, 0.35, 0.55, 2700, rng);
  trace.insert(trace.end(), tail.begin(), tail.end());
  const int64_t total =
      CleanRunAccesses(policy, cache_frames, initial, trace);
  ASSERT_GT(total, 0);

  bool fault_fired = false;
  for (int64_t k = 0; k <= total; ++k) {
    RunCrashPoint(policy, cache_frames, initial, trace, k, &fault_fired);
    if (HasFatalFailure()) return;
  }
  EXPECT_TRUE(fault_fired);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, CrashRecoverySweep,
    ::testing::Combine(::testing::Values(DenseFile::Policy::kControl2,
                                         DenseFile::Policy::kControl1,
                                         DenseFile::Policy::kLocalShift),
                       ::testing::Values(int64_t{0}, int64_t{4})),
    [](const auto& param_info) {
      std::string name;
      switch (std::get<0>(param_info.param)) {
        case DenseFile::Policy::kControl2: name = "Control2"; break;
        case DenseFile::Policy::kControl1: name = "Control1"; break;
        case DenseFile::Policy::kLocalShift: name = "LocalShift"; break;
      }
      const int64_t frames = std::get<1>(param_info.param);
      return name + (frames == 0 ? "Direct"
                                 : "Pool" + std::to_string(frames));
    });

// ---------------------------------------------------------------------
// Staged-ingest crash sweep.
//
// With a memtable in front of the file, per-command durability is gone by
// design: staged entries are RAM, and drained-but-unflushed entries sit in
// a deferred buffer pool whose write-back order the volatile-key exemption
// deliberately relaxes. A crash therefore loses an arbitrary *suffix of
// effects* since the last durability point, not just the in-flight
// command. The single-op AlignModelAfterCrash is unsound here.
//
// The widened ambiguity protocol: track every key mutated since the last
// durability point together with every state (absent / present-with-value)
// it legitimately passed through in that window. After crash + repair,
// each tracked key must be in SOME state from its own history — anything
// else is a torn write — and the model adopts the file's verdict. Keys
// outside the window must be byte-identical, which the final ScanAll
// equality enforces. Periodic Flush() calls create durability points
// mid-trace (and are themselves crash targets), so the window stays small
// and the sweep exercises the flush path too.

// One key's permitted post-crash states: absent is modeled as nullopt.
using KeyStates = std::set<std::optional<Value>>;

std::optional<Value> ModelState(const ReferenceModel& model, Key key) {
  if (!model.Contains(key)) return std::nullopt;
  return model.Get(key)->value;
}

// Seeds the key's window entry with its pre-op state (first touch in this
// window only), to be followed by RecordState after the op lands.
void TouchKey(std::map<Key, KeyStates>& window, const ReferenceModel& model,
              Key key) {
  auto [it, inserted] = window.try_emplace(key);
  if (inserted) it->second.insert(ModelState(model, key));
}

void RunStagedCrashPoint(DenseFile::Policy policy_kind, int64_t cache_frames,
                         int64_t staging_entries, int64_t flush_every,
                         const std::vector<Record>& initial,
                         const Trace& trace, int64_t k, bool* fault_fired) {
  DenseFile::Options options = FileOptions(policy_kind, cache_frames);
  options.staging_entries = staging_entries;
  StatusOr<std::unique_ptr<DenseFile>> created = DenseFile::Create(options);
  ASSERT_TRUE(created.ok()) << created.status();
  DenseFile& file = **created;
  ASSERT_TRUE(file.BulkLoad(initial).ok());
  ReferenceModel model(file.capacity());
  ASSERT_TRUE(model.Load(initial).ok());

  auto policy = std::make_shared<FaultPolicy>();
  policy->CrashAfterAccesses(k);
  file.set_fault_policy(policy);

  std::map<Key, KeyStates> window;

  // Crash landed (inside op i, or inside a periodic Flush when i names the
  // op just before it): discard all volatile state, repair, then resolve
  // the whole window against the repaired file.
  const auto recover = [&](size_t i) {
    *fault_fired = true;
    file.DiscardStaging();  // the memtable is RAM and dies first
    file.DiscardCache();
    policy->ClearCrash();  // restart
    StatusOr<RepairReport> report = file.CheckAndRepair();
    ASSERT_TRUE(report.ok())
        << "k=" << k << " op=" << i << ": " << report.status();
    ASSERT_TRUE(file.ValidateInvariants().ok()) << "k=" << k << " op=" << i;
    for (const auto& [key, states] : window) {
      std::optional<Value> got;
      if (file.Contains(key)) got = *file.Get(key);
      ASSERT_TRUE(states.count(got) > 0)
          << "k=" << k << " op=" << i << " key=" << key
          << ": recovered state is outside the key's mutation history "
          << "(torn write)";
      // Adopt the file's verdict.
      if (model.Contains(key)) {
        ASSERT_TRUE(model.Delete(key).ok());
      }
      if (got.has_value()) {
        ASSERT_TRUE(model.Insert(Record{key, *got}).ok());
      }
    }
    ASSERT_EQ(*file.ScanAll(), model.ScanAll())
        << "k=" << k << " diverged at op " << i << " after repair";
    // Post-repair the device alone holds the state: a durability point.
    window.clear();
  };

  bool crashed = false;
  for (size_t i = 0; i < trace.size(); ++i) {
    const Op& op = trace[i];
    // Seed the pre-op state and the op's intended outcome BEFORE touching
    // the file: if the command crashes mid-drain, its effect (and any
    // older staged effect) may or may not have reached the device. An op
    // the model would reject (duplicate insert, missing delete) changes
    // nothing and must not widen the permitted set — file and model are
    // in lockstep up to here, so the model predicts the rejection.
    if (op.kind == Op::Kind::kInsert) {
      TouchKey(window, model, op.record.key);
      if (!model.Contains(op.record.key)) {
        window[op.record.key].insert(op.record.value);
      }
    } else if (op.kind == Op::Kind::kDelete) {
      TouchKey(window, model, op.record.key);
      if (model.Contains(op.record.key)) {
        window[op.record.key].insert(std::nullopt);
      }
    }
    const Status file_status = ApplyToFile(file, op);
    if (!crashed && file_status.IsIoError()) {
      crashed = true;
      recover(i);
      if (::testing::Test::HasFatalFailure()) return;
      continue;
    }
    ASSERT_FALSE(file_status.IsIoError()) << "k=" << k << " op=" << i;
    const Status model_status = ApplyToModel(model, op);
    ASSERT_EQ(file_status.code(), model_status.code())
        << "k=" << k << " op=" << i << " file=" << file_status
        << " model=" << model_status;
    if ((i + 1) % static_cast<size_t>(flush_every) == 0) {
      const Status flushed = file.Flush();
      if (!crashed && flushed.IsIoError()) {
        crashed = true;
        recover(i);
        if (::testing::Test::HasFatalFailure()) return;
        continue;
      }
      ASSERT_TRUE(flushed.ok()) << "k=" << k << " flush after op " << i;
      window.clear();  // durability point
    }
  }
  policy->ClearCrash();
  // The merged view (device + whatever is still staged) must match the
  // model exactly — the sweep's clean-completion check.
  ASSERT_TRUE(file.ValidateInvariants().ok()) << "k=" << k;
  ASSERT_EQ(*file.ScanAll(), model.ScanAll()) << "k=" << k;
}

// Clean-run access budget for the staged sweep (same trace, same periodic
// flush schedule, no faults).
int64_t StagedCleanRunAccesses(DenseFile::Policy policy, int64_t cache_frames,
                               int64_t staging_entries, int64_t flush_every,
                               const std::vector<Record>& initial,
                               const Trace& trace) {
  DenseFile::Options options = FileOptions(policy, cache_frames);
  options.staging_entries = staging_entries;
  std::unique_ptr<DenseFile> file = *DenseFile::Create(options);
  EXPECT_TRUE(file->BulkLoad(initial).ok());
  for (size_t i = 0; i < trace.size(); ++i) {
    IgnoreStatus(ApplyToFile(*file, trace[i]));
    if ((i + 1) % static_cast<size_t>(flush_every) == 0) {
      EXPECT_TRUE(file->Flush().ok());
    }
  }
  EXPECT_TRUE(file->Flush().ok());
  return file->io_stats().TotalAccesses();
}

// Sweep parameter: (policy, pool frames, staging entries). The staged
// configurations crash through drain steps, deferred flush windows, and
// the volatile-key reordered write-back — every place the ingest layer
// bends the seed's per-command durability.
class StagedCrashRecoverySweep
    : public ::testing::TestWithParam<
          std::tuple<DenseFile::Policy, int64_t, int64_t>> {};

TEST_P(StagedCrashRecoverySweep, EveryCrashPointRecovers) {
  const DenseFile::Policy policy = std::get<0>(GetParam());
  const int64_t cache_frames = std::get<1>(GetParam());
  const int64_t staging_entries = std::get<2>(GetParam());
  const int64_t flush_every = 25;
  // Same shape as the unstaged sweep: an ascending burst that piles into
  // one block (the staging layer's best case — and its riskiest drain,
  // since every drained insert lands in the same rewrite neighborhood),
  // then a uniform mix with deletes.
  Rng rng(20260807);
  const std::vector<Record> initial = MakeAscendingRecords(80, 30, 30);
  Trace trace = AscendingInserts(24, 601, 1);
  const Trace tail = UniformMix(60, 0.35, 0.55, 2700, rng);
  trace.insert(trace.end(), tail.begin(), tail.end());
  const int64_t total = StagedCleanRunAccesses(
      policy, cache_frames, staging_entries, flush_every, initial, trace);
  ASSERT_GT(total, 0);

  bool fault_fired = false;
  for (int64_t k = 0; k <= total; ++k) {
    RunStagedCrashPoint(policy, cache_frames, staging_entries, flush_every,
                        initial, trace, k, &fault_fired);
    if (HasFatalFailure()) return;
  }
  EXPECT_TRUE(fault_fired);
}

INSTANTIATE_TEST_SUITE_P(
    Staging, StagedCrashRecoverySweep,
    ::testing::Values(
        // Staging without a pool: drains write straight to the device.
        std::make_tuple(DenseFile::Policy::kControl2, int64_t{0}, int64_t{6}),
        // Staging + pool: the full deferral + volatile-key write-back path.
        std::make_tuple(DenseFile::Policy::kControl2, int64_t{4}, int64_t{6}),
        std::make_tuple(DenseFile::Policy::kLocalShift, int64_t{4},
                        int64_t{6})),
    [](const auto& param_info) {
      std::string name;
      switch (std::get<0>(param_info.param)) {
        case DenseFile::Policy::kControl2: name = "Control2"; break;
        case DenseFile::Policy::kControl1: name = "Control1"; break;
        case DenseFile::Policy::kLocalShift: name = "LocalShift"; break;
      }
      name += std::get<1>(param_info.param) == 0
                  ? "Direct"
                  : "Pool" + std::to_string(std::get<1>(param_info.param));
      return name + "Staged" + std::to_string(std::get<2>(param_info.param));
    });

// A transient read fault (not a crash) must abort the command cleanly:
// invariants intact, contents untouched, nothing for repair to fix, and
// the retried command succeeds.
TEST(TransientFault, ReadFaultAbortsCommandCleanly) {
  for (const DenseFile::Policy policy_kind :
       {DenseFile::Policy::kControl2, DenseFile::Policy::kControl1,
        DenseFile::Policy::kLocalShift}) {
    std::unique_ptr<DenseFile> file =
        *DenseFile::Create(FileOptions(policy_kind));
    Rng rng(7);
    const std::vector<Record> initial = MakeUniformRecords(48, 400, rng);
    ASSERT_TRUE(file->BulkLoad(initial).ok());
    ReferenceModel model;
    ASSERT_TRUE(model.Load(initial).ok());

    auto policy = std::make_shared<FaultPolicy>();
    policy->FailNthAccess(1);  // the command's first read
    file->set_fault_policy(policy);

    EXPECT_TRUE(file->Insert(Record{401, 1}).IsIoError());
    EXPECT_TRUE(file->ValidateInvariants().ok());
    EXPECT_EQ(*file->ScanAll(), model.ScanAll());

    StatusOr<RepairReport> report = file->CheckAndRepair();
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_FALSE(report->AnythingRepaired()) << report->ToString();

    // The schedule is spent; the retry goes through.
    EXPECT_TRUE(file->Insert(Record{401, 1}).ok());
    EXPECT_TRUE(model.Insert(Record{401, 1}).ok());
    EXPECT_EQ(*file->ScanAll(), model.ScanAll());
  }
}

// Compaction is the heaviest rewrite; sweep a crash through every access
// of the pack-then-spread and require zero record loss.
TEST(CrashRecoveryCompact, CompactionCrashNeverLosesARecord) {
  const std::vector<Record> load = MakeAscendingRecords(120, 1, 3);
  std::vector<Record> expected;
  int64_t total = 0;
  {
    std::unique_ptr<DenseFile> file =
        *DenseFile::Create(FileOptions(DenseFile::Policy::kControl2));
    ASSERT_TRUE(file->BulkLoad(load).ok());
    ASSERT_TRUE(file->DeleteRange(1, 200).ok());
    expected = *file->ScanAll();
    file->ResetIoStats();
    ASSERT_TRUE(file->Compact().ok());
    total = file->io_stats().TotalAccesses();
  }
  ASSERT_GT(total, 0);

  for (int64_t k = 0; k <= total; ++k) {
    std::unique_ptr<DenseFile> file =
        *DenseFile::Create(FileOptions(DenseFile::Policy::kControl2));
    ASSERT_TRUE(file->BulkLoad(load).ok());
    ASSERT_TRUE(file->DeleteRange(1, 200).ok());
    auto policy = std::make_shared<FaultPolicy>();
    policy->CrashAfterAccesses(k);
    file->set_fault_policy(policy);

    const Status s = file->Compact();
    policy->ClearCrash();
    if (s.IsIoError()) {
      StatusOr<RepairReport> report = file->CheckAndRepair();
      ASSERT_TRUE(report.ok()) << "k=" << k << ": " << report.status();
    } else {
      ASSERT_TRUE(s.ok()) << "k=" << k << ": " << s;
    }
    ASSERT_TRUE(file->ValidateInvariants().ok()) << "k=" << k;
    ASSERT_EQ(*file->ScanAll(), expected) << "k=" << k;
  }
}

// Sharded: crash one shard's device mid-trace; the whole-file repair must
// bring the file back while the other shard rides through untouched.
// Runs once direct-to-device and once with a per-shard buffer pool (the
// crash then also lands inside pooled flush boundaries, and recovery must
// drop every shard's cache first).
class CrashRecoverySharded : public ::testing::TestWithParam<int64_t> {};

TEST_P(CrashRecoverySharded, EveryCrashPointOnShardZeroRecovers) {
  ShardedDenseFile::Options options;
  options.num_shards = 2;
  options.key_space = 2700;
  options.shard.num_pages = 24;
  options.shard.d = 4;
  options.shard.D = 20;
  options.shard.cache_frames = GetParam();

  // Same wide-stride + ascending-burst shape as the single-file sweep;
  // the burst keys (601..624) sit below the midpoint splitter, so the
  // maintenance they force lands on the faulted shard 0.
  Rng rng(20260808);
  const std::vector<Record> initial = MakeAscendingRecords(80, 30, 30);
  Trace trace = AscendingInserts(24, 601, 1);
  const Trace tail = UniformMix(60, 0.35, 0.55, 2700, rng);
  trace.insert(trace.end(), tail.begin(), tail.end());

  const auto apply_to_file = [](ShardedDenseFile& file,
                                const Op& op) -> Status {
    switch (op.kind) {
      case Op::Kind::kInsert:
        return file.Insert(op.record);
      case Op::Kind::kDelete:
        return file.Delete(op.record.key);
      case Op::Kind::kGet:
        return file.Get(op.record.key).status();
      case Op::Kind::kScan: {
        std::vector<Record> out;
        return file.Scan(op.record.key, op.scan_hi, &out);
      }
    }
    return Status::OK();
  };

  // Access budget of shard 0 on a clean replay.
  int64_t total = 0;
  {
    std::unique_ptr<ShardedDenseFile> file =
        *ShardedDenseFile::Create(options);
    ASSERT_TRUE(file->BulkLoad(initial).ok());
    for (const Op& op : trace) IgnoreStatus(apply_to_file(*file, op));
    total = file->shard_io_stats(0).TotalAccesses();
  }
  ASSERT_GT(total, 0);

  bool fault_fired = false;
  for (int64_t k = 0; k <= total; ++k) {
    std::unique_ptr<ShardedDenseFile> file =
        *ShardedDenseFile::Create(options);
    ASSERT_TRUE(file->BulkLoad(initial).ok());
    ReferenceModel model;
    ASSERT_TRUE(model.Load(initial).ok());

    auto policy = std::make_shared<FaultPolicy>();
    policy->CrashAfterAccesses(k);
    file->SetFaultPolicy(0, policy);

    bool crashed = false;
    for (size_t i = 0; i < trace.size(); ++i) {
      const Op& op = trace[i];
      const Status file_status = apply_to_file(*file, op);
      if (!crashed && file_status.IsIoError()) {
        crashed = true;
        fault_fired = true;
        file->DiscardCaches();  // RAM loss spans every shard's pool
        policy->ClearCrash();
        StatusOr<RepairReport> report = file->CheckAndRepair();
        ASSERT_TRUE(report.ok())
            << "k=" << k << " op=" << i << ": " << report.status();
        ASSERT_TRUE(file->ValidateInvariants().ok())
            << "k=" << k << " op=" << i;
        AlignModelAfterCrash(op, *file, model);
        if (HasFatalFailure()) return;
        ASSERT_EQ(*file->ScanAll(), model.ScanAll())
            << "k=" << k << " diverged at op " << i << " after repair";
        continue;
      }
      ASSERT_FALSE(file_status.IsIoError()) << "k=" << k << " op=" << i;
      const Status model_status = ApplyToModel(model, op);
      ASSERT_EQ(file_status.code(), model_status.code())
          << "k=" << k << " op=" << i;
    }
    policy->ClearCrash();
    ASSERT_TRUE(file->ValidateInvariants().ok()) << "k=" << k;
    ASSERT_EQ(*file->ScanAll(), model.ScanAll()) << "k=" << k;
  }
  EXPECT_TRUE(fault_fired);
}

INSTANTIATE_TEST_SUITE_P(Caches, CrashRecoverySharded,
                         ::testing::Values(int64_t{0}, int64_t{4}),
                         [](const ::testing::TestParamInfo<int64_t>& param) {
                           return param.param == 0
                                      ? "Direct"
                                      : "Pool" + std::to_string(param.param);
                         });

}  // namespace
}  // namespace dsf
