// Runtime lock-order detector tests (src/util/deadlock.h): a seeded
// inversion must surface as a LockOrderReport cycle naming both locks,
// consistent-order storms must stay clean under the detector (these run
// under TSan via the strict-test wiring in tests/CMakeLists.txt), and
// the address-reuse and disabled paths must be inert.

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "util/deadlock.h"
#include "util/thread_annotations.h"

namespace dsf {
namespace {

// Every test runs with a fresh detector state and leaves it disabled,
// so ordering between tests (and other suites in a shared binary)
// cannot leak graph edges.
class DeadlockTest : public ::testing::Test {
 protected:
  void SetUp() override { deadlock::Enable(true); }
  void TearDown() override { deadlock::Enable(false); }
};

TEST_F(DeadlockTest, SeededInversionReportsCycle) {
  Mutex a;
  Mutex b;
  deadlock::RegisterName(&a, "fixture::a");
  deadlock::RegisterName(&b, "fixture::b");
  {
    MutexLock hold_a(a);
    MutexLock hold_b(b);  // edge a -> b
  }
  {
    MutexLock hold_b(b);
    MutexLock hold_a(a);  // edge b -> a closes the cycle
  }
  const deadlock::LockOrderReport report = deadlock::Report();
  ASSERT_EQ(report.violation_count, 1) << report.ToString();
  ASSERT_EQ(report.violations.size(), 1u);
  const deadlock::LockOrderViolation& v = report.violations[0];
  // cycle[0] is the lock being acquired (a), cycle.back() a held lock
  // (b) with an edge back to it.
  ASSERT_EQ(v.cycle.size(), 2u) << v.ToString();
  EXPECT_EQ(v.cycle[0], &a);
  EXPECT_EQ(v.cycle[1], &b);
  EXPECT_NE(v.ToString().find("fixture::a"), std::string::npos);
  EXPECT_NE(v.ToString().find("fixture::b"), std::string::npos);
}

TEST_F(DeadlockTest, EachOrderingBugReportedOnce) {
  Mutex a;
  Mutex b;
  {
    MutexLock hold_a(a);
    MutexLock hold_b(b);
  }
  for (int i = 0; i < 3; ++i) {
    MutexLock hold_b(b);
    MutexLock hold_a(a);
  }
  EXPECT_EQ(deadlock::Report().violation_count, 1);
}

TEST_F(DeadlockTest, SharedHoldsParticipateInCycles) {
  // Readers block behind waiting writers in dsf::SharedMutex, so a
  // shared hold is order-relevant like an exclusive one.
  SharedMutex s;
  Mutex m;
  {
    ReaderMutexLock hold_s(s);
    MutexLock hold_m(m);  // edge s -> m
  }
  {
    MutexLock hold_m(m);
    ReaderMutexLock hold_s(s);  // edge m -> s closes the cycle
  }
  const deadlock::LockOrderReport report = deadlock::Report();
  EXPECT_EQ(report.violation_count, 1) << report.ToString();
}

TEST_F(DeadlockTest, ConsistentOrderStormStaysClean) {
  // The MultiShardLock pattern: many instances, always ascending.
  // Run it from several threads under the detector; no ordering bug,
  // so the report must stay clean (and TSan must stay quiet).
  constexpr int kLocks = 8;
  constexpr int kThreads = 4;
  constexpr int kIters = 200;
  std::vector<std::unique_ptr<Mutex>> locks;
  for (int i = 0; i < kLocks; ++i) locks.push_back(std::make_unique<Mutex>());
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&locks, t] {
      for (int i = 0; i < kIters; ++i) {
        // Ascending spans of varying width, like multi-shard commands.
        const int lo = (t + i) % (kLocks - 2);
        const int hi = lo + 2;
        for (int j = lo; j <= hi; ++j) locks[j]->Lock();
        for (int j = hi; j >= lo; --j) locks[j]->Unlock();
      }
    });
  }
  for (std::thread& th : threads) th.join();
  const deadlock::LockOrderReport report = deadlock::Report();
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST_F(DeadlockTest, DestroyedLockDoesNotPoisonReusedAddress) {
  Mutex a;
  auto* b = new Mutex;
  {
    MutexLock hold_a(a);
    MutexLock hold_b(*b);  // edge a -> b
  }
  delete b;  // purges b's node; a recycled address starts clean
  // Allocate until the address recurs (usually immediately); bounded so
  // an exotic allocator cannot hang the test — the assertion below
  // holds either way, reuse just makes it a real regression probe.
  auto* c = new Mutex;
  for (int i = 0; c != static_cast<void*>(b) && i < 64; ++i) {
    auto* next = new Mutex;
    delete c;
    c = next;
  }
  {
    MutexLock hold_c(*c);
    MutexLock hold_a(a);  // c -> a: a cycle only if b's edges leaked
  }
  const deadlock::LockOrderReport report = deadlock::Report();
  EXPECT_TRUE(report.ok()) << report.ToString();
  delete c;
}

TEST_F(DeadlockTest, DisabledDetectorIsInert) {
  deadlock::Enable(false);
  Mutex a;
  Mutex b;
  {
    MutexLock hold_a(a);
    MutexLock hold_b(b);
  }
  {
    MutexLock hold_b(b);
    MutexLock hold_a(a);  // inversion, but nobody is watching
  }
  EXPECT_TRUE(deadlock::Report().ok());
}

TEST_F(DeadlockTest, EnableResetsPriorState) {
  Mutex a;
  Mutex b;
  {
    MutexLock hold_a(a);
    MutexLock hold_b(b);
  }
  {
    MutexLock hold_b(b);
    MutexLock hold_a(a);
  }
  ASSERT_EQ(deadlock::Report().violation_count, 1);
  deadlock::Enable(true);  // clears edges, names and violations
  EXPECT_TRUE(deadlock::Report().ok());
}

TEST_F(DeadlockTest, FailedTryLockRecordsNoEdge) {
  Mutex a;
  Mutex b;
  {
    MutexLock hold_b(b);  // keep b held while the other thread probes it
    std::thread prober([&a, &b] {
      MutexLock hold_a(a);
      // Fails — b is held by the main thread. A failed try holds
      // nothing and must not record edge a -> b.
      ASSERT_FALSE(b.TryLock());
    });
    prober.join();
  }
  {
    MutexLock hold_b(b);
    MutexLock hold_a(a);  // b -> a: a cycle only if the failed try leaked
  }
  const deadlock::LockOrderReport report = deadlock::Report();
  EXPECT_TRUE(report.ok()) << report.ToString();
}

}  // namespace
}  // namespace dsf
