#include "varsize/var_file.h"

#include <map>

#include <gtest/gtest.h>

#include "util/random.h"

namespace dsf {
namespace {

VarFile::Options SmallOptions() {
  VarFile::Options options;
  options.num_pages = 32;  // L = 5
  options.d = 16;
  options.D = 16 + 36;  // gap 36 > (2 + 4) * 5 = 30
  options.max_record_size = 4;
  return options;
}

std::unique_ptr<VarFile> Make(const VarFile::Options& options) {
  StatusOr<std::unique_ptr<VarFile>> f = VarFile::Create(options);
  EXPECT_TRUE(f.ok()) << f.status();
  return std::move(*f);
}

TEST(VarFile, CreateEnforcesWidenedGapCondition) {
  VarFile::Options options = SmallOptions();
  options.D = options.d + 30;  // == (2 + max) * L: strict inequality fails
  EXPECT_TRUE(VarFile::Create(options).status().IsInvalidArgument());
  options.D = options.d + 31;
  EXPECT_TRUE(VarFile::Create(options).ok());
  options = SmallOptions();
  options.max_record_size = 0;
  EXPECT_FALSE(VarFile::Create(options).ok());
}

TEST(VarFile, BasicRoundtripWithMixedSizes) {
  std::unique_ptr<VarFile> f = Make(SmallOptions());
  ASSERT_TRUE(f->Insert(VarRecord{10, 3, 100}).ok());
  ASSERT_TRUE(f->Insert(VarRecord{20, 1, 200}).ok());
  ASSERT_TRUE(f->Insert(VarRecord{15, 4, 150}).ok());
  EXPECT_EQ(f->record_count(), 3);
  EXPECT_EQ(f->total_units(), 8);
  StatusOr<VarRecord> r = f->Get(15);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size, 4);
  EXPECT_EQ(r->value, 150u);
  EXPECT_TRUE(f->Delete(15).ok());
  EXPECT_EQ(f->total_units(), 4);
  EXPECT_TRUE(f->ValidateInvariants().ok());
}

TEST(VarFile, RejectsBadSizesAndDuplicates) {
  std::unique_ptr<VarFile> f = Make(SmallOptions());
  EXPECT_TRUE(f->Insert(VarRecord{1, 0, 0}).IsInvalidArgument());
  EXPECT_TRUE(f->Insert(VarRecord{1, 5, 0}).IsInvalidArgument());
  ASSERT_TRUE(f->Insert(VarRecord{1, 2, 0}).ok());
  EXPECT_TRUE(f->Insert(VarRecord{1, 1, 0}).IsAlreadyExists());
  EXPECT_TRUE(f->Delete(2).IsNotFound());
}

TEST(VarFile, CapacityIsMeasuredInUnits) {
  VarFile::Options options = SmallOptions();
  std::unique_ptr<VarFile> f = Make(options);
  const int64_t max_units = f->MaxUnits();
  // Fill with 4-unit records until no 4-unit record fits.
  Key k = 1;
  while (f->total_units() + 4 <= max_units) {
    ASSERT_TRUE(f->Insert(VarRecord{k++, 4, 0}).ok());
  }
  EXPECT_TRUE(f->Insert(VarRecord{k, 4, 0}).IsCapacityExceeded());
  // A smaller record can still fit if units remain.
  const int64_t slack = max_units - f->total_units();
  if (slack >= 1) {
    EXPECT_TRUE(f->Insert(VarRecord{k, slack, 0}).ok());
  }
  EXPECT_TRUE(f->ValidateInvariants().ok());
}

TEST(VarFile, HotspotTriggersRedistribution) {
  std::unique_ptr<VarFile> f = Make(SmallOptions());
  Key k = 1u << 20;
  for (int i = 0; i < 150; ++i) {
    ASSERT_TRUE(f->Insert(VarRecord{k--, 1 + (i % 4), 0}).ok());
    ASSERT_TRUE(f->ValidateInvariants().ok()) << "after insert " << i;
  }
  EXPECT_GT(f->maintenance_stats().rebalances, 0);
}

TEST(VarFile, ScanReturnsSliceInOrder) {
  std::unique_ptr<VarFile> f = Make(SmallOptions());
  std::vector<VarRecord> records;
  for (Key k = 10; k <= 400; k += 10) {
    records.push_back(VarRecord{k, 1 + static_cast<int64_t>(k % 4), k});
  }
  ASSERT_TRUE(f->BulkLoad(records).ok());
  EXPECT_TRUE(f->ValidateInvariants().ok());
  std::vector<VarRecord> out;
  ASSERT_TRUE(f->Scan(100, 200, &out).ok());
  ASSERT_EQ(out.size(), 11u);
  EXPECT_EQ(out.front().key, 100u);
  EXPECT_EQ(out.back().key, 200u);
  EXPECT_EQ(f->ScanAll(), records);
}

TEST(VarFile, BulkLoadValidation) {
  std::unique_ptr<VarFile> f = Make(SmallOptions());
  EXPECT_TRUE(f->BulkLoad({VarRecord{2, 1, 0}, VarRecord{1, 1, 0}})
                  .IsInvalidArgument());
  EXPECT_TRUE(
      f->BulkLoad({VarRecord{1, 9, 0}}).IsInvalidArgument());
  std::vector<VarRecord> too_big;
  for (Key k = 1; k <= static_cast<Key>(f->MaxUnits()) / 4 + 1; ++k) {
    too_big.push_back(VarRecord{k, 4, 0});
  }
  EXPECT_TRUE(f->BulkLoad(too_big).IsCapacityExceeded());
}

TEST(VarFile, RandomizedChurnMatchesModel) {
  std::unique_ptr<VarFile> f = Make(SmallOptions());
  std::map<Key, VarRecord> model;
  Rng rng(99);
  for (int step = 0; step < 3000; ++step) {
    const Key k = rng.Uniform(500) + 1;
    if (rng.Bernoulli(0.6)) {
      const VarRecord r{k, static_cast<int64_t>(rng.Uniform(4)) + 1, k};
      const Status s = f->Insert(r);
      if (model.count(k) > 0) {
        EXPECT_TRUE(s.IsAlreadyExists());
      } else if (s.ok()) {
        model.emplace(k, r);
      } else {
        EXPECT_TRUE(s.IsCapacityExceeded()) << s;
      }
    } else {
      const Status s = f->Delete(k);
      EXPECT_EQ(s.ok(), model.erase(k) > 0);
    }
    ASSERT_TRUE(f->ValidateInvariants().ok()) << "step " << step;
  }
  const std::vector<VarRecord> contents = f->ScanAll();
  ASSERT_EQ(contents.size(), model.size());
  size_t i = 0;
  for (const auto& [k, r] : model) {
    EXPECT_EQ(contents[i], r) << "index " << i;
    ++i;
  }
}

TEST(VarFile, LargeRecordsTransientOverflowIsRepaired) {
  // Hammer one key neighbourhood with max-size records: pages around the
  // hotspot repeatedly exceed D mid-command and must end every command
  // back at or below D (checked by ValidateInvariants).
  std::unique_ptr<VarFile> f = Make(SmallOptions());
  std::vector<VarRecord> base;
  for (Key k = 1; k <= 100; ++k) base.push_back(VarRecord{k * 10, 4, 0});
  ASSERT_TRUE(f->BulkLoad(base).ok());
  // 25 * 4 = 100 extra units on top of the 400 loaded stay under the
  // 512-unit capacity.
  for (Key k = 0; k < 25; ++k) {
    ASSERT_TRUE(f->Insert(VarRecord{505 + 10 * k, 4, 0}).ok()) << k;
    ASSERT_TRUE(f->ValidateInvariants().ok()) << "after insert " << k;
  }
}

}  // namespace
}  // namespace dsf
