// Long-trace multi-seed differential fuzz across every structure in the
// repository: dense file under all three policies, B+-tree, overflow
// file, naive sequential file — each replaying the same randomized trace
// against the oracle, with invariant audits at checkpoints. This is the
// heavyweight companion to tests/property_dense_file_test.cc (which
// audits after every command on shorter traces).

#include <gtest/gtest.h>

#include <memory>

#include "baseline/btree.h"
#include "baseline/naive_sequential.h"
#include "baseline/overflow_file.h"
#include "core/dense_file.h"
#include "workload/reference_model.h"
#include "workload/workload.h"

namespace dsf {
namespace {

constexpr int64_t kPages = 128;
constexpr int64_t kDLow = 4;
constexpr int64_t kDHigh = 4 + 33;  // gap 33 > 21
constexpr int64_t kOps = 12000;
constexpr int64_t kAuditEvery = 500;

// Mixed trace phases: churn, surge, drain, ascending run, churn again.
Trace FuzzTrace(uint64_t seed, int64_t capacity) {
  // Key budget: churn over capacity/2 distinct keys plus two bursts of
  // capacity/16 each keeps the population well below the dense file's
  // hard cap, so all structures see identical status codes.
  Rng rng(seed);
  Trace trace = UniformMix(kOps / 3, 0.55, 0.3,
                           static_cast<Key>(capacity / 2), rng);
  const Trace surge =
      HotspotSurge(capacity / 16, 1u << 24, (1u << 24) + capacity, rng);
  trace.insert(trace.end(), surge.begin(), surge.end());
  for (const Op& op : surge) {
    Op del = op;
    del.kind = Op::Kind::kDelete;
    trace.push_back(del);
  }
  const Trace run = AscendingInserts(capacity / 16, 1u << 26, 3);
  trace.insert(trace.end(), run.begin(), run.end());
  const Trace tail = UniformMix(kOps / 3, 0.35, 0.45,
                                static_cast<Key>(capacity / 2), rng);
  trace.insert(trace.end(), tail.begin(), tail.end());
  return trace;
}

class FuzzAllTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzAllTest, EveryStructureTracksTheOracle) {
  DenseFile::Options options;
  options.num_pages = kPages;
  options.d = kDLow;
  options.D = kDHigh;
  options.policy = DenseFile::Policy::kControl2;
  std::unique_ptr<DenseFile> c2 = std::move(*DenseFile::Create(options));
  options.policy = DenseFile::Policy::kControl1;
  std::unique_ptr<DenseFile> c1 = std::move(*DenseFile::Create(options));
  options.policy = DenseFile::Policy::kLocalShift;
  std::unique_ptr<DenseFile> ls = std::move(*DenseFile::Create(options));

  BTree::Options btree_options;
  btree_options.leaf_capacity = kDHigh;
  btree_options.internal_fanout = 16;
  std::unique_ptr<BTree> btree = std::move(*BTree::Create(btree_options));

  OverflowFile::Options ovfl_options;
  ovfl_options.num_primary_pages = kPages;
  ovfl_options.page_capacity = kDHigh;
  std::unique_ptr<OverflowFile> ovfl =
      std::move(*OverflowFile::Create(ovfl_options));

  NaiveSequentialFile::Options naive_options;
  naive_options.num_pages = kPages;
  naive_options.page_capacity = kDHigh;
  std::unique_ptr<NaiveSequentialFile> naive =
      std::move(*NaiveSequentialFile::Create(naive_options));

  ReferenceModel model(c2->capacity());
  const Trace trace = FuzzTrace(GetParam(), c2->capacity());

  int64_t step = 0;
  for (const Op& op : trace) {
    switch (op.kind) {
      case Op::Kind::kInsert: {
        const StatusCode expected = model.Insert(op.record).code();
        ASSERT_EQ(c2->Insert(op.record).code(), expected) << step;
        ASSERT_EQ(c1->Insert(op.record).code(), expected) << step;
        ASSERT_EQ(ls->Insert(op.record).code(), expected) << step;
        ASSERT_EQ(btree->Insert(op.record).code(), expected) << step;
        ASSERT_EQ(ovfl->Insert(op.record).code(), expected) << step;
        ASSERT_EQ(naive->Insert(op.record).code(), expected) << step;
        break;
      }
      case Op::Kind::kDelete: {
        const StatusCode expected = model.Delete(op.record.key).code();
        ASSERT_EQ(c2->Delete(op.record.key).code(), expected) << step;
        ASSERT_EQ(c1->Delete(op.record.key).code(), expected) << step;
        ASSERT_EQ(ls->Delete(op.record.key).code(), expected) << step;
        ASSERT_EQ(btree->Delete(op.record.key).code(), expected) << step;
        ASSERT_EQ(ovfl->Delete(op.record.key).code(), expected) << step;
        ASSERT_EQ(naive->Delete(op.record.key).code(), expected) << step;
        break;
      }
      default: {
        const bool expected = model.Contains(op.record.key);
        ASSERT_EQ(c2->Contains(op.record.key), expected) << step;
        ASSERT_EQ(btree->Contains(op.record.key), expected) << step;
        break;
      }
    }
    if (step % kAuditEvery == 0) {
      ASSERT_TRUE(c2->ValidateInvariants().ok()) << step;
      ASSERT_TRUE(c1->ValidateInvariants().ok()) << step;
      ASSERT_TRUE(ls->ValidateInvariants().ok()) << step;
      ASSERT_TRUE(btree->ValidateInvariants().ok()) << step;
      ASSERT_TRUE(ovfl->ValidateInvariants().ok()) << step;
      ASSERT_TRUE(naive->ValidateInvariants().ok()) << step;
    }
    ++step;
  }

  const std::vector<Record> expected = model.ScanAll();
  EXPECT_EQ(*c2->ScanAll(), expected);
  EXPECT_EQ(*c1->ScanAll(), expected);
  EXPECT_EQ(*ls->ScanAll(), expected);
  EXPECT_EQ(btree->ScanAll(), expected);
  EXPECT_EQ(ovfl->ScanAll(), expected);
  EXPECT_EQ(*naive->ScanAll(), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzAllTest,
                         ::testing::Values(1u, 42u, 777u, 31337u, 999983u),
                         [](const ::testing::TestParamInfo<uint64_t>& param_info) {
                           return "seed" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace dsf
