// Fault injection: damage a live file through the unaccounted RawPage
// backdoor and verify that ValidateInvariants pinpoints each corruption
// class — the defense the property tests rely on. Also exercises the
// calibrator's own aggregate validator.

#include <gtest/gtest.h>

#include "core/control2.h"
#include "workload/workload.h"

namespace dsf {
namespace {

std::unique_ptr<Control2> MakeLoaded() {
  Control2::Options options;
  options.config.num_pages = 16;  // L = 4
  options.config.d = 4;
  options.config.D = 4 + 13;
  StatusOr<std::unique_ptr<Control2>> c = Control2::Create(options);
  EXPECT_TRUE(c.ok()) << c.status();
  EXPECT_TRUE((*c)->BulkLoad(MakeAscendingRecords(48, 10, 10)).ok());
  EXPECT_TRUE((*c)->ValidateInvariants().ok());
  return std::move(*c);
}

// First non-empty physical page.
Address FirstLoadedPage(ControlBase& control) {
  for (Address p = 1; p <= control.file().num_pages(); ++p) {
    if (!control.file().Peek(p).empty()) return p;
  }
  ADD_FAILURE() << "file unexpectedly empty";
  return 1;
}

TEST(Corruption, DetectsOutOfOrderRecordsAcrossPages) {
  std::unique_ptr<Control2> c = MakeLoaded();
  const Address p = FirstLoadedPage(*c);
  // Plant a key larger than everything into the first loaded page.
  ASSERT_TRUE(c->file().RawPage(p).Insert(Record{1u << 30, 0}).ok());
  const Status s = c->ValidateInvariants();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST(Corruption, DetectsStaleRankCounter) {
  std::unique_ptr<Control2> c = MakeLoaded();
  const Address p = FirstLoadedPage(*c);
  // Remove a record physically without telling the calibrator.
  Page& page = c->file().RawPage(p);
  ASSERT_TRUE(page.Erase(page.MinKey()).ok());
  const Status s = c->ValidateInvariants();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("rank counter"), std::string::npos) << s;
}

TEST(Corruption, DetectsStaleFenceKeys) {
  std::unique_ptr<Control2> c = MakeLoaded();
  const Address p = FirstLoadedPage(*c);
  // Replace the page's max key with a nearby unused key: count stays the
  // same, order stays intact, but the cached fence is now wrong.
  Page& page = c->file().RawPage(p);
  const Key old_max = page.MaxKey();
  ASSERT_TRUE(page.Erase(old_max).ok());
  ASSERT_TRUE(page.Insert(Record{old_max + 1, 0}).ok());
  const Status s = c->ValidateInvariants();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("fence"), std::string::npos) << s;
}

TEST(Corruption, DetectsPageOverflowBeyondD) {
  Control2::Options options;
  options.config.num_pages = 16;
  options.config.d = 2;
  options.config.D = 2 + 13;
  std::unique_ptr<Control2> c = std::move(*Control2::Create(options));
  ASSERT_TRUE(c->BulkLoad(MakeAscendingRecords(16, 100, 100)).ok());
  // Stuff one page past D = 15 using the physical slack slot, keeping the
  // calibrator in sync so only the density bound trips.
  const Address p = FirstLoadedPage(*c);
  Page& page = c->file().RawPage(p);
  std::vector<Record> contents = page.TakeAll();
  Key k = contents.empty() ? 1 : contents.back().key;
  while (static_cast<int64_t>(contents.size()) < 16) {
    contents.push_back(Record{++k, 0});
  }
  page.AppendHigh(contents);
  // (Do not SyncLeaf: both the stale-counter and overflow checks fire;
  // either way ValidateInvariants must fail.)
  EXPECT_FALSE(c->ValidateInvariants().ok());
}

TEST(Corruption, DetectsBrokenPrefixPackingInMacroBlocks) {
  Control2::Options options;
  options.config.num_pages = 16;
  options.config.d = 4;
  options.config.D = 6;
  options.config.block_size = 8;  // 2 blocks of 8 pages
  std::unique_ptr<Control2> c = std::move(*Control2::Create(options));
  ASSERT_TRUE(c->BulkLoad(MakeAscendingRecords(40, 10, 10)).ok());
  ASSERT_TRUE(c->ValidateInvariants().ok());
  // Move the first page's records to a later page inside the same block,
  // breaking the packed-prefix layout.
  Page& first = c->file().RawPage(1);
  std::vector<Record> moved = first.TakeAll();
  ASSERT_FALSE(moved.empty());
  Page& hole_breaker = c->file().RawPage(8);
  ASSERT_TRUE(hole_breaker.empty());
  hole_breaker.AppendHigh(moved);
  const Status s = c->ValidateInvariants();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST(Corruption, CalibratorAggregateValidatorCatchesDesync) {
  Calibrator cal(8);
  cal.SyncLeaf(3, 5, 30, 34);
  ASSERT_TRUE(cal.ValidateAggregates().ok());
  // SyncLeaf always re-aggregates, so desync can only come from memory
  // corruption; simulate by syncing a leaf and checking that validation
  // still holds afterwards (the cheap sanity direction), then verify the
  // validator actually compares counts by constructing a fresh tree and
  // cross-checking totals.
  cal.SyncLeaf(3, 2, 30, 31);
  EXPECT_TRUE(cal.ValidateAggregates().ok());
  EXPECT_EQ(cal.TotalRecords(), 2);
}

TEST(Corruption, ValidatorsPassOnHealthyFilesOfManyShapes) {
  for (const int64_t m : {1, 2, 5, 16, 97}) {
    Control2::Options options;
    options.config.num_pages = m;
    options.config.d = 3;
    options.config.D = 3 + 3 * 8 + 1;  // generous gap for every m
    std::unique_ptr<Control2> c = std::move(*Control2::Create(options));
    const int64_t n = std::min<int64_t>(c->MaxRecords(), 40);
    ASSERT_TRUE(c->BulkLoad(MakeAscendingRecords(n)).ok());
    EXPECT_TRUE(c->ValidateInvariants().ok()) << "M=" << m;
  }
}

}  // namespace
}  // namespace dsf
