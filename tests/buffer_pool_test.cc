// Buffer-pool unit and integration tests.
//
// Pool level: hit/miss accounting against the logical/physical IoStats
// split, pinning (all-pinned returns ResourceExhausted, never aborts),
// dirty-order write-back rules (tail combining, rule-3 prefix flushes),
// flush-run coalescing, fault-injected write-back, and RAM-loss DropAll.
//
// File level: pooled-vs-unpooled differential replay, command-granularity
// durability (EndCommand flush), crash-at-flush recovery back to the
// reference model, and the sharded byte-budget split.

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "core/dense_file.h"
#include "gtest/gtest.h"
#include "shard/sharded_dense_file.h"
#include "storage/buffer_pool.h"
#include "storage/fault_injection.h"
#include "storage/page_file.h"
#include "util/random.h"
#include "workload/reference_model.h"
#include "workload/workload.h"

namespace dsf {
namespace {

// ---------------------------------------------------------------------------
// Pool-level tests against a raw PageFile.

class BufferPoolTest : public ::testing::Test {
 protected:
  BufferPoolTest() : file_(/*num_pages=*/64, /*page_capacity=*/8) {}

  std::unique_ptr<BufferPool> MakePool(
      int64_t frames, BufferPool::Eviction eviction = BufferPool::Eviction::kClock) {
    BufferPool::Options options;
    options.num_frames = frames;
    options.eviction = eviction;
    return std::make_unique<BufferPool>(&file_, options);
  }

  // Seeds a device page directly (unaccounted), one record key=value=k.
  void SeedPage(Address address, Key k) {
    file_.RawPage(address).Clear();
    ASSERT_TRUE(file_.RawPage(address).Insert(Record{k, k}).ok());
  }

  PageFile file_;
};

TEST_F(BufferPoolTest, HitsServeFromResidentFrames) {
  SeedPage(1, 10);
  SeedPage(2, 20);
  auto pool = MakePool(4);

  for (int round = 0; round < 3; ++round) {
    StatusOr<PageGuard> g = pool->PinRead(1);
    ASSERT_TRUE(g.ok());
    EXPECT_EQ(g->page().MinKey(), 10);
  }
  ASSERT_TRUE(pool->PinRead(2).ok());

  // 4 logical reads, but only 2 reached the device (one fill per page).
  EXPECT_EQ(pool->stats().hits, 2);
  EXPECT_EQ(pool->stats().misses, 2);
  EXPECT_DOUBLE_EQ(pool->stats().HitRate(), 0.5);
  EXPECT_EQ(file_.stats().logical_reads, 4);
  EXPECT_EQ(file_.stats().page_reads, 2);
  EXPECT_EQ(file_.stats().page_writes, 0);
}

TEST_F(BufferPoolTest, WriteBackIsDeferredUntilFlush) {
  auto pool = MakePool(4);
  {
    StatusOr<PageGuard> g = pool->PinWrite(1);
    ASSERT_TRUE(g.ok());
    ASSERT_TRUE(g->mutable_page()->Insert(Record{7, 70}).ok());
  }
  // The mutation lives only in the frame so far.
  EXPECT_TRUE(file_.Peek(1).empty());
  EXPECT_EQ(pool->dirty_pages(), 1);
  EXPECT_EQ(file_.stats().logical_writes, 1);
  EXPECT_EQ(file_.stats().page_writes, 0);

  ASSERT_TRUE(pool->FlushAll().ok());
  EXPECT_EQ(pool->dirty_pages(), 0);
  EXPECT_EQ(pool->stats().writebacks, 1);
  EXPECT_EQ(file_.stats().page_writes, 1);
  EXPECT_EQ(file_.Peek(1).MinKey(), 7);
}

TEST_F(BufferPoolTest, TailWriteCombiningAbsorbsRepeatedWrites) {
  auto pool = MakePool(4);
  for (Key k = 1; k <= 5; ++k) {
    StatusOr<PageGuard> g = pool->PinWrite(3);
    ASSERT_TRUE(g.ok());
    ASSERT_TRUE(g->mutable_page()->Insert(Record{k, k}).ok());
  }
  // Five logical writes collapsed into one dirty frame at the tail of L.
  EXPECT_EQ(pool->stats().write_combines, 4);
  EXPECT_EQ(pool->dirty_pages(), 1);
  ASSERT_TRUE(pool->FlushAll().ok());
  EXPECT_EQ(file_.stats().logical_writes, 5);
  EXPECT_EQ(file_.stats().page_writes, 1);
  EXPECT_EQ(file_.Peek(3).size(), 5);
}

TEST_F(BufferPoolTest, NonTailRedirtyFlushesPrefixInOrder) {
  auto pool = MakePool(4);
  {
    StatusOr<PageGuard> g = pool->PinWrite(1);
    ASSERT_TRUE(g.ok());
    ASSERT_TRUE(g->mutable_page()->Insert(Record{1, 1}).ok());
  }
  {
    StatusOr<PageGuard> g = pool->PinWrite(2);
    ASSERT_TRUE(g.ok());
    ASSERT_TRUE(g->mutable_page()->Insert(Record{2, 2}).ok());
  }
  // Re-dirtying page 1 (now the FRONT of L, not the tail) must not let the
  // second version commute before the write of page 2: rule 3 flushes the
  // old version of page 1 to the device first.
  {
    StatusOr<PageGuard> g = pool->PinWrite(1);
    ASSERT_TRUE(g.ok());
    EXPECT_EQ(pool->stats().ordered_flushes, 1);
    EXPECT_EQ(file_.Peek(1).size(), 1);  // old version already on device
    ASSERT_TRUE(g->mutable_page()->Insert(Record{3, 3}).ok());
  }
  ASSERT_TRUE(pool->FlushAll().ok());
  EXPECT_EQ(file_.Peek(1).size(), 2);
  EXPECT_EQ(file_.Peek(2).size(), 1);
  EXPECT_EQ(pool->stats().writebacks, 3);
}

TEST_F(BufferPoolTest, AllPinnedReturnsResourceExhausted) {
  SeedPage(1, 1);
  SeedPage(2, 2);
  SeedPage(3, 3);
  auto pool = MakePool(2);

  StatusOr<PageGuard> g1 = pool->PinRead(1);
  StatusOr<PageGuard> g2 = pool->PinRead(2);
  ASSERT_TRUE(g1.ok());
  ASSERT_TRUE(g2.ok());

  StatusOr<PageGuard> g3 = pool->PinRead(3);
  ASSERT_FALSE(g3.ok());
  EXPECT_TRUE(g3.status().IsResourceExhausted()) << g3.status().ToString();
  // The pool stays intact: both residents still pinned and readable.
  EXPECT_EQ(pool->resident_pages(), 2);
  EXPECT_EQ(g1->page().MinKey(), 1);

  // Releasing any pin makes the same request succeed.
  g1->Release();
  StatusOr<PageGuard> retry = pool->PinRead(3);
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry->page().MinKey(), 3);
}

// Eviction must preserve every written record regardless of policy: the
// logical view (frame if resident, else device) never loses data.
class EvictionPolicyTest
    : public ::testing::TestWithParam<BufferPool::Eviction> {};

TEST_P(EvictionPolicyTest, EvictionWritesBackDirtyVictims) {
  PageFile file(/*num_pages=*/64, /*page_capacity=*/8);
  BufferPool::Options options;
  options.num_frames = 2;
  options.eviction = GetParam();
  BufferPool pool(&file, options);

  for (Address a = 1; a <= 8; ++a) {
    StatusOr<PageGuard> g = pool.PinWrite(a);
    ASSERT_TRUE(g.ok());
    const Key k = static_cast<Key>(a);
    ASSERT_TRUE(g->mutable_page()->Insert(Record{k, k * 10}).ok());
  }
  EXPECT_EQ(pool.stats().evictions, 6);
  EXPECT_EQ(pool.resident_pages(), 2);

  ASSERT_TRUE(pool.FlushAll().ok());
  for (Address a = 1; a <= 8; ++a) {
    ASSERT_EQ(file.Peek(a).size(), 1) << "page " << a;
    EXPECT_EQ(file.Peek(a).MinKey(), static_cast<Key>(a));
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, EvictionPolicyTest,
                         ::testing::Values(BufferPool::Eviction::kClock,
                                           BufferPool::Eviction::kLru),
                         [](const ::testing::TestParamInfo<
                             BufferPool::Eviction>& param) {
                           return param.param == BufferPool::Eviction::kClock
                                      ? "Clock"
                                      : "Lru";
                         });

TEST_F(BufferPoolTest, LruEvictsLeastRecentlyUsed) {
  SeedPage(1, 1);
  SeedPage(2, 2);
  SeedPage(3, 3);
  auto pool = MakePool(2, BufferPool::Eviction::kLru);

  ASSERT_TRUE(pool->PinRead(1).ok());
  ASSERT_TRUE(pool->PinRead(2).ok());
  ASSERT_TRUE(pool->PinRead(1).ok());  // page 1 now the most recent
  ASSERT_TRUE(pool->PinRead(3).ok());  // must evict page 2

  EXPECT_NE(pool->PeekFrame(1), nullptr);
  EXPECT_EQ(pool->PeekFrame(2), nullptr);
  EXPECT_NE(pool->PeekFrame(3), nullptr);
}

TEST_F(BufferPoolTest, WriteBackFaultLeavesFrameDirtyAndPoolConsistent) {
  auto pool = MakePool(4);
  {
    StatusOr<PageGuard> g = pool->PinWrite(5);
    ASSERT_TRUE(g.ok());
    ASSERT_TRUE(g->mutable_page()->Insert(Record{50, 500}).ok());
  }
  auto policy = std::make_shared<FaultPolicy>();
  policy->FailAddressRange(5, 5, /*writes_only=*/true);
  file_.set_fault_policy(policy);

  const Status flush = pool->FlushAll();
  ASSERT_FALSE(flush.ok());
  EXPECT_TRUE(flush.IsIoError()) << flush.ToString();
  // The frame keeps its dirty content and its place in L; the device page
  // is untouched (a failed write never tears a page).
  EXPECT_EQ(pool->dirty_pages(), 1);
  ASSERT_NE(pool->PeekFrame(5), nullptr);
  EXPECT_EQ(pool->PeekFrame(5)->MinKey(), 50);
  EXPECT_TRUE(file_.Peek(5).empty());
  EXPECT_EQ(pool->stats().writebacks, 0);

  // Clearing the fault makes the same FlushAll retry succeed.
  file_.set_fault_policy(nullptr);
  ASSERT_TRUE(pool->FlushAll().ok());
  EXPECT_EQ(pool->dirty_pages(), 0);
  EXPECT_EQ(pool->stats().writebacks, 1);
  EXPECT_EQ(file_.Peek(5).MinKey(), 50);
}

TEST_F(BufferPoolTest, FlushStopsAtFaultPreservingOrder) {
  auto pool = MakePool(4);
  for (Address a = 1; a <= 3; ++a) {
    StatusOr<PageGuard> g = pool->PinWrite(a);
    ASSERT_TRUE(g.ok());
    const Key k = static_cast<Key>(a);
    ASSERT_TRUE(g->mutable_page()->Insert(Record{k, k}).ok());
  }
  auto policy = std::make_shared<FaultPolicy>();
  policy->FailNthAccess(2);  // the flush's second device write
  file_.set_fault_policy(policy);

  ASSERT_FALSE(pool->FlushAll().ok());
  // Page 1 landed, pages 2 and 3 stay dirty in their original order.
  EXPECT_EQ(file_.Peek(1).size(), 1);
  EXPECT_TRUE(file_.Peek(2).empty());
  EXPECT_TRUE(file_.Peek(3).empty());
  EXPECT_EQ(pool->dirty_pages(), 2);

  ASSERT_TRUE(pool->FlushAll().ok());  // retry completes the suffix
  EXPECT_EQ(file_.Peek(2).size(), 1);
  EXPECT_EQ(file_.Peek(3).size(), 1);
}

TEST_F(BufferPoolTest, SequentialFlushCoalescesIntoRuns) {
  auto pool = MakePool(8);
  // Two address runs dirtied in flush order: {3,4,5,6} and {10}.
  for (Address a : {3, 4, 5, 6, 10}) {
    StatusOr<PageGuard> g = pool->PinForOverwrite(a);
    ASSERT_TRUE(g.ok());
    const Key k = static_cast<Key>(a);
    ASSERT_TRUE(g->mutable_page()->Insert(Record{k, k}).ok());
  }
  const IoStats before = file_.stats();
  ASSERT_TRUE(pool->FlushAll().ok());
  const IoStats delta = file_.stats() - before;

  EXPECT_EQ(pool->stats().flush_runs, 2);
  EXPECT_EQ(pool->stats().flushed_pages, 5);
  // One arm movement per run; everything else streams sequentially.
  EXPECT_EQ(delta.seeks, 2);
  EXPECT_EQ(delta.sequential_accesses, 3);
  EXPECT_EQ(delta.page_writes, 5);
}

TEST_F(BufferPoolTest, MarkFreeRidesDirtyOrderUnaccounted) {
  auto pool = MakePool(4);
  {
    StatusOr<PageGuard> g = pool->PinForOverwrite(2);
    ASSERT_TRUE(g.ok());
    ASSERT_TRUE(g->mutable_page()->Insert(Record{9, 9}).ok());
  }
  ASSERT_TRUE(pool->FlushAll().ok());
  ASSERT_EQ(file_.Peek(2).size(), 1);

  // "Move" the record to page 3 and free page 2, as a shrinking
  // macro-block would.
  {
    StatusOr<PageGuard> g = pool->PinForOverwrite(3);
    ASSERT_TRUE(g.ok());
    ASSERT_TRUE(g->mutable_page()->Insert(Record{9, 9}).ok());
  }
  ASSERT_TRUE(pool->MarkFree(2).ok());

  const IoStats before = file_.stats();
  ASSERT_TRUE(pool->FlushAll().ok());
  const IoStats delta = file_.stats() - before;

  EXPECT_TRUE(file_.Peek(2).empty());
  EXPECT_EQ(file_.Peek(3).size(), 1);
  EXPECT_EQ(pool->stats().free_writes, 1);
  // The freed-page clear is layout bookkeeping, not an accounted write.
  EXPECT_EQ(delta.page_writes, 1);
}

// --- Content-aware write-back: rules 2' and 3† (PinForRewrite) ---

TEST_F(BufferPoolTest, RewriteSupersetAbsorbsWithoutFlush) {
  SeedPage(3, 30);
  auto pool = MakePool(4);
  { ASSERT_TRUE(pool->PinRead(3).ok()); }  // resident: exact ledger
  const std::vector<Record> v1 = {{30, 30}, {40, 40}};
  {
    StatusOr<PageGuard> g = pool->PinForRewrite(3, v1.data(), v1.data() + 2);
    ASSERT_TRUE(g.ok());
    for (const Record& r : v1) ASSERT_TRUE(g->mutable_page()->Insert(r).ok());
  }
  // A second dirty frame makes page 3 non-tail.
  {
    StatusOr<PageGuard> g = pool->PinForOverwrite(5);
    ASSERT_TRUE(g.ok());
    ASSERT_TRUE(g->mutable_page()->Insert(Record{50, 50}).ok());
  }
  // Rule 2': the rewrite only adds a record, so it absorbs at page 3's
  // original position in L — no flush, no device traffic.
  const IoStats before = file_.stats();
  const std::vector<Record> v2 = {{30, 30}, {35, 35}, {40, 40}};
  {
    StatusOr<PageGuard> g = pool->PinForRewrite(3, v2.data(), v2.data() + 3);
    ASSERT_TRUE(g.ok());
    for (const Record& r : v2) ASSERT_TRUE(g->mutable_page()->Insert(r).ok());
  }
  EXPECT_EQ(pool->stats().additive_absorbs, 1);
  EXPECT_EQ(pool->stats().ordered_flushes, 0);
  EXPECT_EQ((file_.stats() - before).page_writes, 0);
  ASSERT_TRUE(pool->FlushAll().ok());
  EXPECT_EQ(file_.Peek(3).size(), 3);
}

TEST_F(BufferPoolTest, RewriteRelocatesWhenNothingDependsOnIt) {
  SeedPage(3, 30);
  SeedPage(5, 50);
  auto pool = MakePool(4);
  { ASSERT_TRUE(pool->PinRead(3).ok()); }
  { ASSERT_TRUE(pool->PinRead(5).ok()); }
  const std::vector<Record> p3 = {{30, 30}, {40, 40}};
  {
    StatusOr<PageGuard> g = pool->PinForRewrite(3, p3.data(), p3.data() + 2);
    ASSERT_TRUE(g.ok());
    for (const Record& r : p3) ASSERT_TRUE(g->mutable_page()->Insert(r).ok());
  }
  const std::vector<Record> p5 = {{50, 50}, {60, 60}};
  {
    StatusOr<PageGuard> g = pool->PinForRewrite(5, p5.data(), p5.data() + 2);
    ASSERT_TRUE(g.ok());
    for (const Record& r : p5) ASSERT_TRUE(g->mutable_page()->Insert(r).ok());
  }
  // Rule 3†: dropping key 40 from non-tail page 3 is safe to relocate to
  // the tail — no later frame's ledger lists a key page 3 still holds.
  const IoStats before = file_.stats();
  const std::vector<Record> p3b = {{30, 30}};
  {
    StatusOr<PageGuard> g = pool->PinForRewrite(3, p3b.data(), p3b.data() + 1);
    ASSERT_TRUE(g.ok());
    ASSERT_TRUE(g->mutable_page()->Insert(p3b[0]).ok());
  }
  EXPECT_EQ(pool->stats().relocations, 1);
  EXPECT_EQ(pool->stats().ordered_flushes, 0);
  EXPECT_EQ((file_.stats() - before).page_writes, 0);
  ASSERT_TRUE(pool->FlushAll().ok());
  EXPECT_EQ(file_.Peek(3).size(), 1);
  EXPECT_EQ(file_.Peek(5).size(), 2);
}

TEST_F(BufferPoolTest, RewriteRefusesRelocationWhenRemovalDependsOnIt) {
  // The record-hop chain: key 10 lives on page 2 (device), duplicates to
  // page 3, then page 2's removal enters L. Rewriting page 3 to drop key
  // 10 again must NOT relocate past page 2's pending removal — a crash
  // after the removal landed would lose the key's only durable copy. The
  // old image is order-free (pure addition), so the minimal rule 3 lands
  // it alone: exactly one accounted device write, no full prefix flush.
  SeedPage(2, 10);
  SeedPage(3, 30);
  auto pool = MakePool(4);
  { ASSERT_TRUE(pool->PinRead(2).ok()); }
  { ASSERT_TRUE(pool->PinRead(3).ok()); }
  const std::vector<Record> dup = {{10, 10}, {30, 30}};
  {
    StatusOr<PageGuard> g = pool->PinForRewrite(3, dup.data(), dup.data() + 2);
    ASSERT_TRUE(g.ok());
    for (const Record& r : dup) ASSERT_TRUE(g->mutable_page()->Insert(r).ok());
  }
  {
    StatusOr<PageGuard> g = pool->PinForRewrite(2, nullptr, nullptr);
    ASSERT_TRUE(g.ok());
  }
  const IoStats before = file_.stats();
  const std::vector<Record> drop = {{30, 30}};
  {
    StatusOr<PageGuard> g =
        pool->PinForRewrite(3, drop.data(), drop.data() + 1);
    ASSERT_TRUE(g.ok());
    ASSERT_TRUE(g->mutable_page()->Insert(drop[0]).ok());
  }
  EXPECT_EQ(pool->stats().relocations, 0);
  EXPECT_EQ(pool->stats().ordered_flushes, 1);
  EXPECT_EQ((file_.stats() - before).page_writes, 1);
  ASSERT_TRUE(pool->FlushAll().ok());
  EXPECT_EQ(file_.Peek(3).size(), 1);
  EXPECT_TRUE(file_.Peek(2).empty());
}

TEST_F(BufferPoolTest, VolatileKeyLiftsRelocationConstraint) {
  // Same chain as above, but key 10 is declared volatile (never
  // durability-promised): its removal imposes no ordering, so the
  // rewrite relocates for free.
  SeedPage(2, 10);
  SeedPage(3, 30);
  auto pool = MakePool(4);
  { ASSERT_TRUE(pool->PinRead(2).ok()); }
  { ASSERT_TRUE(pool->PinRead(3).ok()); }
  const std::vector<Record> dup = {{10, 10}, {30, 30}};
  {
    StatusOr<PageGuard> g = pool->PinForRewrite(3, dup.data(), dup.data() + 2);
    ASSERT_TRUE(g.ok());
    for (const Record& r : dup) ASSERT_TRUE(g->mutable_page()->Insert(r).ok());
  }
  {
    StatusOr<PageGuard> g = pool->PinForRewrite(2, nullptr, nullptr);
    ASSERT_TRUE(g.ok());
  }
  pool->NoteVolatile(10);
  const IoStats before = file_.stats();
  const std::vector<Record> drop = {{30, 30}};
  {
    StatusOr<PageGuard> g =
        pool->PinForRewrite(3, drop.data(), drop.data() + 1);
    ASSERT_TRUE(g.ok());
    ASSERT_TRUE(g->mutable_page()->Insert(drop[0]).ok());
  }
  EXPECT_EQ(pool->stats().relocations, 1);
  EXPECT_EQ(pool->stats().ordered_flushes, 0);
  EXPECT_EQ((file_.stats() - before).page_writes, 0);
  ASSERT_TRUE(pool->FlushAll().ok());
  EXPECT_EQ(file_.Peek(3).size(), 1);
  EXPECT_TRUE(file_.Peek(2).empty());
}

TEST_F(BufferPoolTest, FlushAllSweepsOrderFreeFramesByAddress) {
  // Three adjacent pages dirtied out of address order, all pure
  // additions: the safe-order scheduler sorts them into one sequential
  // run instead of two L-order runs.
  SeedPage(5, 50);
  SeedPage(6, 60);
  SeedPage(7, 70);
  auto pool = MakePool(4);
  for (const Address a : {Address{7}, Address{5}, Address{6}}) {
    { ASSERT_TRUE(pool->PinRead(a).ok()); }
    // Values match the seeded records: a changed value would count as a
    // removal and pin the frame to L order.
    const std::vector<Record> v = {
        {static_cast<Key>(10 * a), static_cast<Key>(10 * a)},
        {static_cast<Key>(10 * a + 1), static_cast<Key>(10 * a + 1)}};
    StatusOr<PageGuard> g = pool->PinForRewrite(a, v.data(), v.data() + 2);
    ASSERT_TRUE(g.ok());
    for (const Record& r : v) ASSERT_TRUE(g->mutable_page()->Insert(r).ok());
  }
  ASSERT_TRUE(pool->FlushAll().ok());
  EXPECT_EQ(pool->stats().flush_runs, 1);
  EXPECT_EQ(file_.Peek(5).size(), 2);
  EXPECT_EQ(file_.Peek(6).size(), 2);
  EXPECT_EQ(file_.Peek(7).size(), 2);
}

TEST_F(BufferPoolTest, DropAllLosesDirtyDataByDesign) {
  SeedPage(1, 1);
  auto pool = MakePool(4);
  {
    StatusOr<PageGuard> g = pool->PinWrite(2);
    ASSERT_TRUE(g.ok());
    ASSERT_TRUE(g->mutable_page()->Insert(Record{2, 2}).ok());
  }
  pool->DropAll();
  EXPECT_EQ(pool->resident_pages(), 0);
  EXPECT_EQ(pool->dirty_pages(), 0);
  EXPECT_TRUE(file_.Peek(2).empty());  // the dirty write is gone (RAM loss)
  EXPECT_EQ(file_.Peek(1).MinKey(), 1);  // device state untouched

  // The pool is fully reusable afterwards.
  StatusOr<PageGuard> g = pool->PinRead(1);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->page().MinKey(), 1);
}

TEST_F(BufferPoolTest, OutOfRangeAddressRejected) {
  auto pool = MakePool(2);
  EXPECT_EQ(pool->PinRead(0).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(pool->PinRead(65).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(pool->PinWrite(65).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(pool->resident_pages(), 0);
}

// ---------------------------------------------------------------------------
// DenseFile-level integration.

DenseFile::Options SmallFileOptions(int64_t cache_frames,
                                    DenseFile::Policy policy =
                                        DenseFile::Policy::kControl2) {
  DenseFile::Options options;
  options.num_pages = 64;
  options.d = 8;
  options.D = 8 + 4 * 6 + 1;  // gap condition holds at M = 64
  options.policy = policy;
  options.cache_frames = cache_frames;
  return options;
}

Status Apply(DenseFile& file, const Op& op) {
  switch (op.kind) {
    case Op::Kind::kInsert:
      return file.Insert(op.record);
    case Op::Kind::kDelete:
      return file.Delete(op.record.key);
    case Op::Kind::kGet:
      return file.Get(op.record.key).status();
    case Op::Kind::kScan: {
      std::vector<Record> out;
      return file.Scan(op.record.key, op.scan_hi, &out);
    }
  }
  return Status::OK();
}

TEST(BufferPoolDenseFileTest, PooledReplayMatchesUnpooled) {
  auto pooled = DenseFile::Create(SmallFileOptions(/*cache_frames=*/8));
  auto unpooled = DenseFile::Create(SmallFileOptions(/*cache_frames=*/0));
  ASSERT_TRUE(pooled.ok());
  ASSERT_TRUE(unpooled.ok());
  EXPECT_TRUE((*pooled)->cache_enabled());
  EXPECT_FALSE((*unpooled)->cache_enabled());

  Rng rng(20260807);
  const Trace trace = UniformMix(/*num_ops=*/3000, /*insert_fraction=*/0.4,
                                 /*delete_fraction=*/0.3, /*key_space=*/300,
                                 rng);
  for (const Op& op : trace) {
    const Status sp = Apply(**pooled, op);
    const Status su = Apply(**unpooled, op);
    ASSERT_EQ(sp.code(), su.code()) << sp.ToString() << " vs " << su.ToString();
  }

  ASSERT_TRUE((*pooled)->ValidateInvariants().ok());
  ASSERT_TRUE((*unpooled)->ValidateInvariants().ok());
  EXPECT_EQ(*(*pooled)->ScanAll(), *(*unpooled)->ScanAll());

  // Both sides requested the same logical traffic; the pool served part
  // of it from frames, so physical <= logical on reads.
  const IoStats p = (*pooled)->io_stats();
  const IoStats u = (*unpooled)->io_stats();
  EXPECT_EQ(p.logical_reads, u.logical_reads);
  EXPECT_EQ(p.logical_writes, u.logical_writes);
  EXPECT_LE(p.page_reads, p.logical_reads);
  EXPECT_GT((*pooled)->cache_stats().hits, 0);
}

TEST(BufferPoolDenseFileTest, CompletedCommandsSurviveCacheLoss) {
  auto created = DenseFile::Create(SmallFileOptions(/*cache_frames=*/8));
  ASSERT_TRUE(created.ok());
  DenseFile& file = **created;

  std::vector<Record> initial;
  for (Key k = 10; k <= 200; k += 10) initial.push_back(Record{k, k});
  ASSERT_TRUE(file.BulkLoad(initial).ok());
  for (Key k = 1; k <= 9; ++k) ASSERT_TRUE(file.Insert(k, k * 100).ok());
  ASSERT_TRUE(file.Delete(100).ok());

  // Every command flushed at EndCommand, so losing the cache (RAM half of
  // a crash) and repairing loses nothing.
  file.DiscardCache();
  ASSERT_TRUE(file.CheckAndRepair().ok());
  ASSERT_TRUE(file.ValidateInvariants().ok());
  for (Key k = 1; k <= 9; ++k) {
    ASSERT_TRUE(file.Contains(k)) << "lost committed insert " << k;
  }
  EXPECT_FALSE(file.Contains(100));
  EXPECT_EQ(file.size(), static_cast<int64_t>(initial.size()) + 9 - 1);
}

TEST(BufferPoolDenseFileTest, CrashAtFlushBoundaryRepairsToModel) {
  // Deterministic crash sweep: arm CrashAfterAccesses(k) for a spread of
  // k, replay until the crash fires mid-command (possibly mid-flush),
  // then recover exactly as a restarted process would: drop the cache,
  // clear the crash, CheckAndRepair. The file must match the committed
  // reference model, modulo the single ambiguous in-flight command.
  for (int64_t crash_at : {20, 35, 50, 75, 110, 160}) {
    SCOPED_TRACE("crash_at=" + std::to_string(crash_at));
    auto created = DenseFile::Create(SmallFileOptions(/*cache_frames=*/6));
    ASSERT_TRUE(created.ok());
    DenseFile& file = **created;

    std::vector<Record> initial;
    for (Key k = 2; k <= 300; k += 2) initial.push_back(Record{k, k});
    ASSERT_TRUE(file.BulkLoad(initial).ok());

    ReferenceModel model;
    ASSERT_TRUE(model.Load(initial).ok());

    auto policy = std::make_shared<FaultPolicy>();
    policy->CrashAfterAccesses(crash_at);
    file.set_fault_policy(policy);

    Rng rng(99 + crash_at);
    const Trace trace =
        UniformMix(/*num_ops=*/400, /*insert_fraction=*/0.5,
                   /*delete_fraction=*/0.35, /*key_space=*/300, rng);
    bool crashed = false;
    Op in_flight;
    for (const Op& op : trace) {
      const Status s = Apply(file, op);
      if (s.IsIoError()) {
        crashed = true;
        in_flight = op;
        break;
      }
      // Committed: mirror into the model (same no-op semantics).
      if (op.kind == Op::Kind::kInsert) (void)model.Insert(op.record);
      if (op.kind == Op::Kind::kDelete) (void)model.Delete(op.record.key);
    }
    ASSERT_TRUE(crashed) << "trace finished before the crash point";

    file.DiscardCache();  // RAM half of the crash
    policy->ClearCrash();  // restart
    ASSERT_TRUE(file.CheckAndRepair().ok());
    ASSERT_TRUE(file.ValidateInvariants().ok());

    // The in-flight command either fully applied or fully rolled away.
    ReferenceModel applied;
    ASSERT_TRUE(applied.Load(model.ScanAll()).ok());
    if (in_flight.kind == Op::Kind::kInsert) (void)applied.Insert(in_flight.record);
    if (in_flight.kind == Op::Kind::kDelete) (void)applied.Delete(in_flight.record.key);

    const std::vector<Record> got = *file.ScanAll();
    EXPECT_TRUE(got == model.ScanAll() || got == applied.ScanAll())
        << "recovered state matches neither the pre- nor post-command model";
  }
}

TEST(BufferPoolDenseFileTest, ExplicitFlushIsDurabilityPoint) {
  auto created = DenseFile::Create(SmallFileOptions(/*cache_frames=*/8));
  ASSERT_TRUE(created.ok());
  DenseFile& file = **created;
  ASSERT_TRUE(file.Insert(42, 420).ok());
  ASSERT_TRUE(file.Flush().ok());  // idempotent: EndCommand already flushed
  file.DiscardCache();
  ASSERT_TRUE(file.CheckAndRepair().ok());
  EXPECT_EQ(*file.Get(42), 420u);
}

TEST(BufferPoolDenseFileTest, CreateRejectsNegativeCacheFrames) {
  DenseFile::Options options = SmallFileOptions(/*cache_frames=*/-1);
  EXPECT_TRUE(DenseFile::Create(options).status().IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Sharded integration: byte budget split and crash recovery across pools.

TEST(BufferPoolShardedTest, CacheBytesSplitEvenlyAcrossShards) {
  ShardedDenseFile::Options options;
  options.num_shards = 4;
  options.key_space = 4000;
  options.shard.num_pages = 64;
  options.shard.d = 8;
  options.shard.D = 8 + 4 * 6 + 1;
  const int64_t frame_bytes =
      (options.shard.D + 1) * static_cast<int64_t>(sizeof(Record));
  options.cache_bytes = options.num_shards * 16 * frame_bytes;

  auto created = ShardedDenseFile::Create(options);
  ASSERT_TRUE(created.ok());
  ShardedDenseFile& file = **created;
  EXPECT_EQ(file.options().shard.cache_frames, 16);

  Rng rng(7);
  const Trace trace = UniformMix(/*num_ops=*/4000, /*insert_fraction=*/0.45,
                                 /*delete_fraction=*/0.25,
                                 /*key_space=*/options.key_space, rng);
  ReferenceModel model;
  for (const Op& op : trace) {
    switch (op.kind) {
      case Op::Kind::kInsert:
        ASSERT_EQ(file.Insert(op.record).code(), model.Insert(op.record).code());
        break;
      case Op::Kind::kDelete:
        ASSERT_EQ(file.Delete(op.record.key).code(),
                  model.Delete(op.record.key).code());
        break;
      default:
        (void)file.Contains(op.record.key);
        break;
    }
  }

  const BufferPool::Stats cache = file.cache_stats();
  EXPECT_GT(cache.hits, 0);
  EXPECT_GT(cache.misses, 0);

  // Whole-machine crash across all shards: drop every pool, repair every
  // shard, and the committed state survives intact.
  ASSERT_TRUE(file.Flush().ok());
  file.DiscardCaches();
  ASSERT_TRUE(file.CheckAndRepair().ok());
  ASSERT_TRUE(file.ValidateInvariants().ok());
  EXPECT_EQ(*file.ScanAll(), model.ScanAll());
}

// Pin-leak diagnostics: a PageGuard held past its command shows up in
// PinLeakReport() with the owner tag its pinner declared, and vanishes
// once released. (The destructor logs this report in debug builds, so a
// guard leaked across a pool's lifetime is attributed, not silent.)
TEST_F(BufferPoolTest, PinLeakReportNamesOwnerTags) {
  auto pool = MakePool(4);
  EXPECT_EQ(pool->PinLeakReport(), "");

  StatusOr<PageGuard> read = pool->PinRead(2, "leak_test_reader");
  ASSERT_TRUE(read.ok()) << read.status();
  StatusOr<PageGuard> write = pool->PinWrite(5, "leak_test_writer");
  ASSERT_TRUE(write.ok()) << write.status();

  const std::string report = pool->PinLeakReport();
  EXPECT_NE(report.find("leak_test_reader"), std::string::npos) << report;
  EXPECT_NE(report.find("leak_test_writer"), std::string::npos) << report;
  EXPECT_NE(report.find("page 2"), std::string::npos) << report;
  EXPECT_NE(report.find("page 5"), std::string::npos) << report;
  EXPECT_EQ(pool->live_guards(), 2);

  read->Release();
  const std::string remaining = pool->PinLeakReport();
  EXPECT_EQ(remaining.find("leak_test_reader"), std::string::npos);
  EXPECT_NE(remaining.find("leak_test_writer"), std::string::npos);

  write->Release();
  EXPECT_EQ(pool->PinLeakReport(), "");
  EXPECT_EQ(pool->live_guards(), 0);
  ASSERT_TRUE(pool->FlushAll().ok());
}

TEST_F(BufferPoolTest, TryEpochGetServesResidentStableFrames) {
  SeedPage(1, 10);
  SeedPage(2, 20);
  auto pool = MakePool(4);
  Record r{0, 0};
  // Nothing resident yet: the epoch read answers nothing and never
  // touches the device.
  EXPECT_FALSE(pool->TryEpochGet(10, &r));
  EXPECT_EQ(file_.stats().page_reads, 0);

  ASSERT_TRUE(pool->PinRead(1).ok());
  const int64_t device_reads = file_.stats().page_reads;
  EXPECT_TRUE(pool->TryEpochGet(10, &r));
  EXPECT_EQ(r.key, 10u);
  EXPECT_EQ(r.value, 10u);
  EXPECT_EQ(file_.stats().page_reads, device_reads);  // RAM only
  // Positive hits only: an absent key — or a key on a non-resident page
  // — is "don't know", never "not found".
  EXPECT_FALSE(pool->TryEpochGet(11, &r));
  EXPECT_FALSE(pool->TryEpochGet(20, &r));
}

TEST_F(BufferPoolTest, TryEpochGetSkipsFramesUnderWriteGuard) {
  SeedPage(1, 10);
  auto pool = MakePool(4);
  Record r{0, 0};
  {
    StatusOr<PageGuard> g = pool->PinWrite(1);
    ASSERT_TRUE(g.ok());
    // The frame's version is odd while a write guard is outstanding:
    // the epoch read must refuse it even though the key is present.
    EXPECT_FALSE(pool->TryEpochGet(10, &r));
  }
  // Guard released — version even again — so the frame is readable.
  EXPECT_TRUE(pool->TryEpochGet(10, &r));
  EXPECT_EQ(r.value, 10u);
}

TEST_F(BufferPoolTest, ConcurrentSharedReadersLeakNoPins) {
  // Readers hammer overlapping pages through guarded pins and epoch
  // reads; after they join, not a single pin may remain and every read
  // must have seen its page's seeded contents. Run under TSan this is
  // the reader-vs-reader race check for the pool's pin accounting.
  for (Address a = 1; a <= 8; ++a) {
    SeedPage(a, static_cast<Key>(10 * static_cast<Key>(a)));
  }
  auto pool = MakePool(4);
  std::atomic<bool> wrong_contents{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) + 1);
      for (int i = 0; i < 500; ++i) {
        const Address a = static_cast<Address>(rng.Uniform(8) + 1);
        const Key k = static_cast<Key>(10 * static_cast<Key>(a));
        StatusOr<PageGuard> g = pool->PinRead(a);
        if (g.ok() && g->page().MinKey() != k) wrong_contents.store(true);
        Record r{0, 0};
        if (pool->TryEpochGet(k, &r) && r.value != k) {
          wrong_contents.store(true);
        }
      }
    });
  }
  for (auto& thread : readers) thread.join();
  EXPECT_FALSE(wrong_contents.load());
  EXPECT_EQ(pool->live_guards(), 0) << pool->PinLeakReport();
  EXPECT_EQ(pool->PinLeakReport(), "");
}

TEST(BufferPoolShardedTest, NegativeCacheBytesRejected) {
  ShardedDenseFile::Options options;
  options.num_shards = 2;
  options.key_space = 100;
  options.shard.num_pages = 64;
  options.shard.d = 8;
  options.shard.D = 8 + 4 * 6 + 1;
  options.cache_bytes = -5;
  EXPECT_TRUE(ShardedDenseFile::Create(options).status().IsInvalidArgument());
}

}  // namespace
}  // namespace dsf
