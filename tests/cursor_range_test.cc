// Tests for the Cursor streaming API, DeleteRange/InsertBatch, and
// Compact/ScanEfficiency — across maintenance policies.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/dense_file.h"
#include "workload/reference_model.h"
#include "workload/workload.h"

namespace dsf {
namespace {

std::unique_ptr<DenseFile> Make(
    DenseFile::Policy policy = DenseFile::Policy::kControl2,
    int64_t num_pages = 64) {
  DenseFile::Options options;
  options.num_pages = num_pages;
  options.d = 4;
  options.D = 44;
  options.policy = policy;
  StatusOr<std::unique_ptr<DenseFile>> f = DenseFile::Create(options);
  EXPECT_TRUE(f.ok()) << f.status();
  return std::move(*f);
}

TEST(Cursor, WalksEntireFileInOrder) {
  std::unique_ptr<DenseFile> f = Make();
  const std::vector<Record> records = MakeAscendingRecords(200, 3, 3);
  ASSERT_TRUE(f->BulkLoad(records).ok());
  std::vector<Record> seen;
  for (Cursor cur = f->NewCursor(); cur.Valid(); cur.Next()) {
    seen.push_back(cur.record());
  }
  EXPECT_EQ(seen, records);
}

TEST(Cursor, StartsAtFirstKeyAtOrAfterStart) {
  std::unique_ptr<DenseFile> f = Make();
  ASSERT_TRUE(f->BulkLoad(MakeAscendingRecords(100, 10, 10)).ok());
  Cursor cur = f->NewCursor(95);
  ASSERT_TRUE(cur.Valid());
  EXPECT_EQ(cur.record().key, 100u);  // 95 itself absent
  Cursor exact = f->NewCursor(100);
  ASSERT_TRUE(exact.Valid());
  EXPECT_EQ(exact.record().key, 100u);
}

TEST(Cursor, EmptyFileAndPastEndAreInvalid) {
  std::unique_ptr<DenseFile> f = Make();
  EXPECT_FALSE(f->NewCursor().Valid());
  ASSERT_TRUE(f->Insert(5, 5).ok());
  EXPECT_FALSE(f->NewCursor(6).Valid());
  EXPECT_TRUE(f->NewCursor(5).Valid());
}

TEST(Cursor, CrossesEmptyBlocks) {
  std::unique_ptr<DenseFile> f = Make();
  // Two clusters far apart in key space leave empty pages between them.
  ASSERT_TRUE(f->Insert(1, 1).ok());
  ASSERT_TRUE(f->Insert(1u << 30, 2).ok());
  std::vector<Key> keys;
  for (Cursor cur = f->NewCursor(); cur.Valid(); cur.Next()) {
    keys.push_back(cur.record().key);
  }
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], 1u);
  EXPECT_EQ(keys[1], 1u << 30);
}

TEST(Cursor, LiveCursorSuspendsPiggybackDrains) {
  // Regression: a piggybacked MaybeDrain between Next() calls used to
  // move staged entries into the file mid-iteration; the drain's SHIFTs
  // can push records across the cursor's block frontier, so a record
  // could be visited twice or skipped. Drains now park while any cursor
  // is live and resume once it is destroyed. (Explicit DrainStep /
  // FlushStaging and the full-buffer force drain are intentionally NOT
  // suspended — see DenseFile::NewCursor.)
  DenseFile::Options options;
  options.num_pages = 64;
  options.d = 4;
  options.D = 44;
  options.staging_entries = 16;
  options.drain_batch = 2;  // drain trigger = max(2, 16 / 2) = 8
  StatusOr<std::unique_ptr<DenseFile>> created = DenseFile::Create(options);
  ASSERT_TRUE(created.ok()) << created.status();
  std::unique_ptr<DenseFile> f = std::move(*created);
  ASSERT_TRUE(f->BulkLoad(MakeAscendingRecords(40, 10, 10)).ok());

  // Stage up to just below the drain trigger: no drain has run yet.
  for (Key k = 11; k <= 23; k += 2) ASSERT_TRUE(f->Insert(k, k).ok());
  ASSERT_EQ(f->staging_stats().drain_steps, 0);
  ASSERT_EQ(f->staging_stats().entries, 7);

  std::vector<Record> seen;
  {
    Cursor cur = f->NewCursor();
    // Push the buffer past its trigger while the cursor lives: before
    // the fix every one of these inserts piggybacked a drain step.
    for (Key k = 31; k <= 37; k += 2) ASSERT_TRUE(f->Insert(k, k).ok());
    EXPECT_EQ(f->staging_stats().drain_steps, 0);
    EXPECT_EQ(f->staging_stats().entries, 11);
    for (; cur.Valid(); cur.Next()) seen.push_back(cur.record());
    EXPECT_TRUE(cur.status().ok());
  }
  // With drains parked the walk is exactly the durable records merged
  // with the overlay snapshot taken at open — each key once, in strict
  // ascending order (the mid-iteration inserts stayed staged and are
  // invisible to the snapshot).
  std::vector<Record> expected = MakeAscendingRecords(40, 10, 10);
  for (Key k = 11; k <= 23; k += 2) expected.push_back(Record{k, k});
  std::sort(expected.begin(), expected.end(), RecordKeyLess);
  EXPECT_EQ(seen, expected);

  // Cursor destroyed: the very next command's piggyback drain fires.
  ASSERT_TRUE(f->Insert(41, 41).ok());
  EXPECT_GT(f->staging_stats().drain_steps, 0);
}

TEST(Cursor, MatchesScanOnChurnedFile) {
  std::unique_ptr<DenseFile> f = Make();
  Rng rng(17);
  const Trace trace = UniformMix(1000, 0.6, 0.2, 400, rng);
  for (const Op& op : trace) {
    if (op.kind == Op::Kind::kInsert) {
      (void)f->Insert(op.record);
    } else if (op.kind == Op::Kind::kDelete) {
      (void)f->Delete(op.record.key);
    }
  }
  std::vector<Record> via_cursor;
  for (Cursor cur = f->NewCursor(); cur.Valid(); cur.Next()) {
    via_cursor.push_back(cur.record());
  }
  EXPECT_EQ(via_cursor, *f->ScanAll());
}

class RangeOpsTest : public ::testing::TestWithParam<DenseFile::Policy> {};

TEST_P(RangeOpsTest, DeleteRangeRemovesExactlyTheSlice) {
  std::unique_ptr<DenseFile> f = Make(GetParam());
  ReferenceModel model(f->capacity());
  const std::vector<Record> records = MakeAscendingRecords(200, 5, 5);
  ASSERT_TRUE(f->BulkLoad(records).ok());
  ASSERT_TRUE(model.Load(records).ok());

  StatusOr<int64_t> removed = f->DeleteRange(100, 500);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 81);  // 100,105,...,500
  for (const Record& r : model.Scan(100, 500)) {
    ASSERT_TRUE(model.Delete(r.key).ok());
  }
  EXPECT_EQ(*f->ScanAll(), model.ScanAll());
  EXPECT_TRUE(f->ValidateInvariants().ok());
}

TEST_P(RangeOpsTest, DeleteRangeEdgeCases) {
  std::unique_ptr<DenseFile> f = Make(GetParam());
  ASSERT_TRUE(f->BulkLoad(MakeAscendingRecords(50, 10, 10)).ok());
  // Empty slice, inverted range, whole file.
  StatusOr<int64_t> none = f->DeleteRange(501, 502);
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(*none, 0);
  StatusOr<int64_t> inverted = f->DeleteRange(400, 100);
  ASSERT_TRUE(inverted.ok());
  EXPECT_EQ(*inverted, 0);
  StatusOr<int64_t> all = f->DeleteRange(0, 1u << 30);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, 50);
  EXPECT_EQ(f->size(), 0);
  EXPECT_TRUE(f->ValidateInvariants().ok());
}

TEST_P(RangeOpsTest, DeleteRangeThenKeepOperating) {
  std::unique_ptr<DenseFile> f = Make(GetParam());
  ASSERT_TRUE(f->BulkLoad(MakeAscendingRecords(200, 2, 2)).ok());
  ASSERT_TRUE(f->DeleteRange(100, 300).ok());
  // The maintenance machinery must be consistent afterwards.
  for (Key k = 101; k <= 299; k += 2) {
    ASSERT_TRUE(f->Insert(k, k).ok());
    ASSERT_TRUE(f->ValidateInvariants().ok());
  }
}

TEST_P(RangeOpsTest, InsertBatchValidatesAndInserts) {
  std::unique_ptr<DenseFile> f = Make(GetParam());
  EXPECT_TRUE(
      f->InsertBatch({Record{3, 0}, Record{2, 0}}).IsInvalidArgument());
  EXPECT_TRUE(f->InsertBatch(MakeAscendingRecords(f->capacity() + 1))
                  .IsCapacityExceeded());
  ASSERT_TRUE(f->InsertBatch(MakeAscendingRecords(100, 7, 7)).ok());
  EXPECT_EQ(f->size(), 100);
  // A batch overlapping an existing key stops at the duplicate.
  EXPECT_TRUE(
      f->InsertBatch({Record{1, 0}, Record{7, 0}, Record{9, 0}})
          .IsAlreadyExists());
  EXPECT_TRUE(f->Contains(1));  // the prefix before the dup went in
  EXPECT_TRUE(f->ValidateInvariants().ok());
}

INSTANTIATE_TEST_SUITE_P(
    Policies, RangeOpsTest,
    ::testing::Values(DenseFile::Policy::kControl2,
                      DenseFile::Policy::kControl1,
                      DenseFile::Policy::kLocalShift),
    [](const ::testing::TestParamInfo<DenseFile::Policy>& param_info) {
      switch (param_info.param) {
        case DenseFile::Policy::kControl2: return std::string("Control2");
        case DenseFile::Policy::kControl1: return std::string("Control1");
        case DenseFile::Policy::kLocalShift: return std::string("LocalShift");
      }
      return std::string("Unknown");
    });

TEST(Compact, RestoresUniformDensityAfterSkewedDeletes) {
  std::unique_ptr<DenseFile> f = Make(DenseFile::Policy::kControl2, 64);
  ASSERT_TRUE(f->BulkLoad(MakeAscendingRecords(f->capacity())).ok());
  // Delete everything except one dense clump at the high end.
  const int64_t cap = f->capacity();
  ASSERT_TRUE(f->DeleteRange(1, static_cast<Key>(cap - 60)).ok());
  const std::vector<Record> before = *f->ScanAll();
  ASSERT_TRUE(f->Compact().ok());
  // Contents unchanged; occupancy now even across the whole file: no
  // block more than one record above the global average.
  EXPECT_EQ(*f->ScanAll(), before);
  const Calibrator& cal = f->control().calibrator();
  const int64_t blocks = f->control().num_blocks();
  const int64_t average = f->size() / blocks;
  for (Address b = 1; b <= blocks; ++b) {
    EXPECT_LE(cal.Count(cal.LeafOf(b)), average + 1) << "block " << b;
  }
  EXPECT_TRUE(f->ValidateInvariants().ok());
}

TEST(Compact, FileKeepsWorkingAfterCompaction) {
  std::unique_ptr<DenseFile> f = Make();
  ASSERT_TRUE(f->BulkLoad(MakeAscendingRecords(100, 4, 4)).ok());
  const std::vector<Record> before = *f->ScanAll();
  ASSERT_TRUE(f->Compact().ok());
  EXPECT_EQ(*f->ScanAll(), before);
  for (Key k = 2; k <= 100; k += 4) {
    ASSERT_TRUE(f->Insert(k, k).ok());
  }
  EXPECT_TRUE(f->ValidateInvariants().ok());
}

TEST(Compact, EmptyFileIsANoop) {
  std::unique_ptr<DenseFile> f = Make();
  ASSERT_TRUE(f->Compact().ok());
  EXPECT_EQ(f->size(), 0);
  EXPECT_TRUE(f->ValidateInvariants().ok());
}

}  // namespace
}  // namespace dsf
