// dsflint fixture: metric-catalog violations. The multiline raw-literal
// registration is exactly the shape the old single-line grep linter
// could not see. Never compiled — lint fodder only.

namespace fixture {

void RegisterFixtureMetrics() {
  FindOrCreateCounter(kMetricFixtureOk);     // clean: declared constant
  FindOrCreateCounter(kMetricFixtureRogue);  // SEEDED VIOLATION: unknown metric (line 9)
  FindOrCreateCounter(
      "dsf_fixture_raw_total");  // SEEDED VIOLATION: raw literal string (line 11)
}

}  // namespace fixture
