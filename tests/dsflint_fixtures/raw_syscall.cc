// dsflint fixture: a raw file-I/O syscall outside the storage backend.
// Never compiled — lint fodder only.

namespace fixture {

struct Stream {
  void open(const char* path);  // member named open: NOT a syscall
};

void Load(Stream& s) {
  s.open("/tmp/x");  // member call, exempt
}

int Persist(const void* buf, unsigned long n, long off, int fd) {
  return pwrite(fd, buf, n, off);  // SEEDED VIOLATION: raw-syscall-io (line 15)
}

}  // namespace fixture
