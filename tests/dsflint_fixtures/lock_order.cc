// dsflint fixture: a nested acquisition that contradicts the declared
// hierarchy in fixture_hierarchy.txt (PoolA::mu_a ranks above
// PoolB::mu_b). Never compiled — lint fodder only.

namespace fixture {

class PoolA {
 public:
  Mutex mu_a;
};

class PoolB {
 public:
  Mutex mu_b;
};

void Inverted(PoolA& a, PoolB& b) {
  MutexLock hold_b(b.mu_b);
  MutexLock hold_a(a.mu_a);  // SEEDED VIOLATION: lock-order (line 19)
}

}  // namespace fixture
