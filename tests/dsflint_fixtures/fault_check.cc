// dsflint fixture: DSF_CHECK over a Status in fault-reachable code
// (the test maps this directory into fault_dirs). Never compiled —
// lint fodder only.

namespace fixture {

class Status;

void Verify(const Status& st) {
  DSF_CHECK(st.ok());  // SEEDED VIOLATION: check-on-fault-path (line 10)
}

}  // namespace fixture
