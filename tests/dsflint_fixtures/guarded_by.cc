// dsflint fixture: one seeded guarded-by violation (see dsflint_test.cc
// for the pinned rule kind and line). Never compiled — lint fodder only.

namespace fixture {

class Account {
 public:
  void Deposit(long amount) {
    MutexLock lock(mu_);
    balance_ += amount;  // clean: hold in scope
  }

  long Peek() const {
    return balance_;  // SEEDED VIOLATION: guarded-by (line 14)
  }

 private:
  mutable Mutex mu_;
  long balance_ DSF_GUARDED_BY(mu_);
};

}  // namespace fixture
