// dsflint fixture: a std:: synchronization primitive outside the
// annotated wrapper layer. Never compiled — lint fodder only.

namespace fixture {

class Cache {
 private:
  std::mutex mu_;  // SEEDED VIOLATION: no-naked-mutex (line 8)
};

}  // namespace fixture
