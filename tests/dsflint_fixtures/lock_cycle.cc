// dsflint fixture: two functions whose nesting directions close a cycle
// in the extracted acquisition graph (no hierarchy file needed). Never
// compiled — lint fodder only.

namespace fixture {

class RingA {
 public:
  Mutex ring_a;
};

class RingB {
 public:
  Mutex ring_b;
};

void Forward(RingA& a, RingB& b) {
  MutexLock first(a.ring_a);
  MutexLock second(b.ring_b);
}

void Backward(RingA& a, RingB& b) {
  MutexLock first(b.ring_b);
  MutexLock second(a.ring_a);  // SEEDED VIOLATION: lock-order cycle (line 24)
}

}  // namespace fixture
