// dsflint fixture: a Status-returning call used as a bare expression
// statement. Never compiled — lint fodder only.

namespace fixture {

class Status {
 public:
  bool ok() const { return true; }
};

Status FlushFixture() { return Status(); }

void Caller() {
  FlushFixture();  // SEEDED VIOLATION: discarded-status (line 14)
}

}  // namespace fixture
