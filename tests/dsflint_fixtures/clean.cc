// dsflint fixture: a file every rule passes — guards held where
// required, no raw primitives, no raw page access, no bare Status
// calls. Never compiled — lint fodder only.

namespace fixture {

class CleanCounter {
 public:
  void Bump() {
    MutexLock lock(mu_);
    ++value_;
  }

  long Read() {
    MutexLock lock(mu_);
    return value_;
  }

 private:
  Mutex mu_;
  long value_ DSF_GUARDED_BY(mu_);
};

}  // namespace fixture
