// dsflint fixture: a SpanKind exporter missing an enumerator. Never
// compiled — lint fodder only.

namespace fixture {

enum class SpanKind {
  kAlpha,
  kBeta,
};

// SEEDED VIOLATION: spankind-catalog — kBeta unhandled (line 12).
const char* SpanKindToString(SpanKind kind) {
  switch (kind) {
    case SpanKind::kAlpha:
      return "alpha";
    default:
      return "?";
  }
}

}  // namespace fixture
