// dsflint fixture catalog (basename matches the real catalog so the
// metric-catalog rule treats it as the closed set). Never compiled.

namespace fixture {

inline constexpr char kMetricFixtureOk[] = "dsf_fixture_ok_total";
// SEEDED VIOLATION: stale catalog constant, never referenced (line 8).
inline constexpr char kMetricFixtureStale[] = "dsf_fixture_stale_total";

}  // namespace fixture
