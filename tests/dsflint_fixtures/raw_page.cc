// dsflint fixture: raw page access outside the storage layer. Never
// compiled — lint fodder only.

namespace fixture {

class PageFileLike {
 public:
  char* RawPage(int page_index);
};

void Touch(PageFileLike& pf) {
  pf.RawPage(0);  // SEEDED VIOLATION: raw-page-io (line 12)
}

}  // namespace fixture
