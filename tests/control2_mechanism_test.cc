// Mechanism-level tests of CONTROL 2's subroutines, driven through
// LoadLayout-constructed states on the paper's 8-page geometry
// (d=9, D=18, L=3 — thresholds: g(leaf,0)=15, g(leaf,2/3)=17,
// g(depth1,2/3)=11 per 4 pages).
//
// Example 5.2 (tests/example52_test.cc) exercises ACTIVATE's roll-back
// rule 1; the mirrored scenario here exercises rule 0. Further scenarios
// pin SELECT's deepest-first order, SHIFT's stop conditions, initial DEST
// placement, and the transient page overflow drain.

#include <gtest/gtest.h>

#include "core/control2.h"

namespace dsf {
namespace {

std::unique_ptr<Control2> MakeExampleGeometry(int64_t j) {
  Control2::Options options;
  options.config.num_pages = 8;
  options.config.d = 9;
  options.config.D = 18;
  options.J = j;
  options.allow_gap_violation_for_testing = true;  // D-d == 3*ceil(log M)
  StatusOr<std::unique_ptr<Control2>> c = Control2::Create(options);
  EXPECT_TRUE(c.ok()) << c.status();
  return std::move(*c);
}

// Loads per-page occupancies with keys p*1000+i.
void Load(Control2& control, const std::array<int64_t, 8>& occupancy) {
  std::vector<std::vector<Record>> layout(8);
  for (Address p = 1; p <= 8; ++p) {
    for (int64_t i = 0; i < occupancy[static_cast<size_t>(p - 1)]; ++i) {
      layout[static_cast<size_t>(p - 1)].push_back(
          Record{static_cast<Key>(p * 1000 + i), 0});
    }
  }
  ASSERT_TRUE(control.LoadLayout(layout).ok());
}

int NodeWithRange(const Calibrator& cal, Address lo, Address hi) {
  for (int v = 0; v < cal.node_count(); ++v) {
    if (cal.RangeLo(v) == lo && cal.RangeHi(v) == hi) return v;
  }
  ADD_FAILURE() << "no node with range [" << lo << "," << hi << "]";
  return Calibrator::kNoNode;
}

std::array<int64_t, 8> Occupancies(const Control2& control) {
  std::array<int64_t, 8> out{};
  const Calibrator& cal = control.calibrator();
  for (Address p = 1; p <= 8; ++p) {
    out[static_cast<size_t>(p - 1)] = cal.Count(cal.LeafOf(p));
  }
  return out;
}

// The mirror image of Example 5.2: occupancies reversed, inserts at the
// low end first, then the high end — exercising DIR=0 nodes, leftward
// DEST walks, and roll-back rule 0.
TEST(Control2Mechanism, MirroredExampleFiresRollbackRule0) {
  std::unique_ptr<Control2> control = MakeExampleGeometry(3);
  Load(*control, {16, 9, 9, 9, 1, 0, 1, 16});
  const Calibrator& cal = control->calibrator();
  const int v2 = NodeWithRange(cal, 1, 4);   // left son of root, DIR=0
  const int l8 = cal.LeafOf(8);

  // Z1': insert below every key -> page 1. Mirrors Z1: raises L1 and v2.
  ASSERT_TRUE(control->Insert(Record{1, 0}).ok());
  EXPECT_TRUE(control->warning(v2));
  // DIR(v2)=0: DEST starts at the right end of the root's range and has
  // walked left past the saturated far end during this command's cycles.
  EXPECT_LE(control->dest(v2), 8);
  EXPECT_EQ(control->stats().rollbacks, 0);

  // Z2': insert above every key -> page 8: ACTIVATE(L8) must roll
  // DEST(v2) back to the right end of RANGE(father(L8)) = [7,8] if the
  // pointer sits inside [7,7] (roll-back rule 0).
  const Address dest_before = control->dest(v2);
  ASSERT_EQ(dest_before, 7);  // mirror of the paper's t4 state
  ASSERT_TRUE(control->Insert(Record{9999, 0}).ok());
  EXPECT_EQ(control->stats().rollbacks, 1);
  EXPECT_FALSE(control->warning(l8));  // drained within the command
  EXPECT_TRUE(control->ValidateInvariants().ok());
}

TEST(Control2Mechanism, MirroredExampleMirrorsFigure4Occupancies) {
  std::unique_ptr<Control2> control = MakeExampleGeometry(3);
  Load(*control, {16, 9, 9, 9, 1, 0, 1, 16});
  ASSERT_TRUE(control->Insert(Record{1, 0}).ok());
  // Mirror of Figure 4's t4 row {16,2,0,0,9,9,15,11}.
  const std::array<int64_t, 8> t4 = Occupancies(*control);
  const std::array<int64_t, 8> expected = {11, 15, 9, 9, 0, 0, 2, 16};
  EXPECT_EQ(t4, expected);
  ASSERT_TRUE(control->Insert(Record{9999, 0}).ok());
  // Mirror of Figure 4's t8 row {15,9,0,0,4,9,15,11}.
  const std::array<int64_t, 8> t8 = Occupancies(*control);
  const std::array<int64_t, 8> mirrored_t8 = {11, 15, 9, 4, 0, 0, 9, 15};
  EXPECT_EQ(t8, mirrored_t8);
}

TEST(Control2Mechanism, ActivateInitialDestIsFarEndOfFathersRange) {
  std::unique_ptr<Control2> control = MakeExampleGeometry(0);
  // J=0 would be rejected; use J=1 but observe state after step 3 via the
  // callback instead.
  control = MakeExampleGeometry(1);
  Load(*control, {16, 1, 0, 1, 9, 9, 9, 16});
  const Calibrator& cal = control->calibrator();
  const int l8 = cal.LeafOf(8);
  const int v3 = NodeWithRange(cal, 5, 8);

  Address dest_l8_at_step3 = -1;
  Address dest_v3_at_step3 = -1;
  control->SetStepCallback([&](Control2::StablePoint point, int64_t) {
    if (point == Control2::StablePoint::kAfterStep3) {
      dest_l8_at_step3 = control->warning(l8) ? control->dest(l8) : -1;
      dest_v3_at_step3 = control->warning(v3) ? control->dest(v3) : -1;
    }
  });
  ASSERT_TRUE(control->Insert(Record{8999, 0}).ok());
  // DIR(L8)=1 (right son of [7,8]): DEST starts at RangeLo([7,8]) = 7.
  EXPECT_EQ(dest_l8_at_step3, 7);
  // DIR(v3)=1 (right son of root): DEST starts at RangeLo(root) = 1.
  EXPECT_EQ(dest_v3_at_step3, 1);
}

TEST(Control2Mechanism, SelectServesDeepestWarningsFirst) {
  std::unique_ptr<Control2> control = MakeExampleGeometry(4);
  // L2 and L3 both warn at load (17 >= g(leaf,2/3) = 17); pages 1 and 4
  // are empty so each can drain into its neighbor.
  Load(*control, {0, 17, 17, 0, 9, 0, 0, 0});
  const Calibrator& cal = control->calibrator();
  const int l2 = cal.LeafOf(2);
  const int l3 = cal.LeafOf(3);
  ASSERT_TRUE(control->warning(l2));
  ASSERT_TRUE(control->warning(l3));

  // A command far away: its J=4 cycles must still serve the deepest
  // warning nodes (the two leaves), draining both.
  ASSERT_TRUE(control->Delete(5000).ok());
  EXPECT_FALSE(control->warning(l2));
  EXPECT_FALSE(control->warning(l3));
  // L2 drained leftward into page 1 (DIR=1), L3 rightward into page 4.
  const std::array<int64_t, 8> occ = Occupancies(*control);
  EXPECT_GT(occ[0], 0);
  EXPECT_GT(occ[3], 0);
  EXPECT_TRUE(control->ValidateInvariants().ok());
}

TEST(Control2Mechanism, ShiftStopsExactlyAtGZeroOfTheTightestUpNode) {
  std::unique_ptr<Control2> control = MakeExampleGeometry(1);
  // L8 warns after one insert; its SHIFT moves records into L7 and must
  // stop exactly when L7 reaches g(L7,0) = 15.
  Load(*control, {1, 1, 1, 1, 1, 1, 9, 16});
  ASSERT_TRUE(control->Insert(Record{8999, 0}).ok());
  const std::array<int64_t, 8> occ = Occupancies(*control);
  EXPECT_EQ(occ[6], 15);  // filled to the threshold, not beyond
  EXPECT_EQ(occ[7], 11);  // 17 - 6 moved
}

TEST(Control2Mechanism, TransientOverflowIsDrainedWithinTheCommand) {
  std::unique_ptr<Control2> control = MakeExampleGeometry(8);
  // Page 4 is exactly at D = 18 (legal at a command boundary); a 19th
  // record targeted at it overflows into the physical slack page slot and
  // the same command's SHIFT cycles must restore p <= D.
  Load(*control, {9, 9, 1, 18, 0, 9, 9, 9});
  ASSERT_TRUE(control->Insert(Record{4500, 0}).ok());
  const Calibrator& cal = control->calibrator();
  EXPECT_LE(cal.Count(cal.LeafOf(4)), 18);
  EXPECT_TRUE(control->ValidateInvariants().ok());
}

TEST(Control2Mechanism, NoWarningsMeansIdleMaintenanceCycles) {
  std::unique_ptr<Control2> control = MakeExampleGeometry(5);
  Load(*control, {4, 4, 4, 4, 4, 4, 4, 4});
  ASSERT_TRUE(control->Insert(Record{4500, 0}).ok());
  EXPECT_EQ(control->stats().shifts, 0);
  EXPECT_EQ(control->stats().idle_cycles, 5);
}

TEST(Control2Mechanism, DeletionLowersWarningOnItsPath) {
  std::unique_ptr<Control2> control = MakeExampleGeometry(1);
  Load(*control, {0, 0, 0, 0, 0, 0, 0, 17});
  const Calibrator& cal = control->calibrator();
  const int l8 = cal.LeafOf(8);
  ASSERT_TRUE(control->warning(l8));
  // One deletion brings p(L8) to 16 = g(L8,1/3): step 2 lowers the flag
  // before any SHIFT runs.
  ASSERT_TRUE(control->Delete(8000).ok());
  EXPECT_FALSE(control->warning(l8));
}

}  // namespace
}  // namespace dsf
