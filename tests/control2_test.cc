#include "core/control2.h"

#include <gtest/gtest.h>

#include "workload/reference_model.h"
#include "workload/workload.h"

namespace dsf {
namespace {

Control2::Options SmallOptions() {
  Control2::Options options;
  options.config.num_pages = 64;  // L = 6
  options.config.d = 4;
  options.config.D = 44;  // D - d = 40 > 18 = 3L
  options.config.block_size = 1;
  return options;
}

std::unique_ptr<Control2> Make(const Control2::Options& options) {
  StatusOr<std::unique_ptr<Control2>> c = Control2::Create(options);
  EXPECT_TRUE(c.ok()) << c.status();
  return std::move(*c);
}

TEST(Control2, CreateRejectsNarrowGapUnlessOverridden) {
  Control2::Options options = SmallOptions();
  options.config.D = options.config.d + 18;  // == 3L
  EXPECT_TRUE(Control2::Create(options).status().IsInvalidArgument());
  options.allow_gap_violation_for_testing = true;
  EXPECT_TRUE(Control2::Create(options).ok());
}

TEST(Control2, CreateValidatesJAndThreshold) {
  Control2::Options options = SmallOptions();
  options.J = -1;
  EXPECT_FALSE(Control2::Create(options).ok());
  options = SmallOptions();
  options.lower_threshold_thirds = kThirds1;
  EXPECT_FALSE(Control2::Create(options).ok());
}

TEST(Control2, DefaultJFollowsRecommendation) {
  Control2::Options options = SmallOptions();
  std::unique_ptr<Control2> c = Make(options);
  // ceil(8 * 6^2 / 40) = 8.
  EXPECT_EQ(c->J(), 8);
  options.J = 21;
  std::unique_ptr<Control2> explicit_j = Make(options);
  EXPECT_EQ(explicit_j->J(), 21);
}

TEST(Control2, InsertGetDeleteRoundtrip) {
  std::unique_ptr<Control2> c = Make(SmallOptions());
  EXPECT_TRUE(c->Insert(Record{10, 100}).ok());
  EXPECT_TRUE(c->Insert(Record{20, 200}).ok());
  EXPECT_TRUE(c->Insert(Record{15, 150}).ok());
  EXPECT_EQ(c->size(), 3);
  StatusOr<Record> r = c->Get(15);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->value, 150u);
  EXPECT_TRUE(c->Delete(15).ok());
  EXPECT_TRUE(c->Get(15).status().IsNotFound());
  EXPECT_TRUE(c->ValidateInvariants().ok());
}

TEST(Control2, StatusContracts) {
  std::unique_ptr<Control2> c = Make(SmallOptions());
  EXPECT_TRUE(c->Delete(1).IsNotFound());           // empty file
  EXPECT_TRUE(c->Get(1).status().IsNotFound());
  ASSERT_TRUE(c->Insert(Record{1, 1}).ok());
  EXPECT_TRUE(c->Insert(Record{1, 2}).IsAlreadyExists());
  EXPECT_EQ(c->size(), 1);
}

TEST(Control2, CapacityBoundAtDTimesM) {
  Control2::Options options;
  options.config.num_pages = 16;  // L = 4
  options.config.d = 2;
  options.config.D = 2 + 13;
  std::unique_ptr<Control2> c = Make(options);
  for (int64_t i = 0; i < c->MaxRecords(); ++i) {
    ASSERT_TRUE(c->Insert(Record{static_cast<Key>(i + 1), 0}).ok()) << i;
    ASSERT_TRUE(c->ValidateInvariants().ok()) << "after insert " << i;
  }
  EXPECT_TRUE(c->Insert(Record{9999, 0}).IsCapacityExceeded());
}

TEST(Control2, HotspotRaisesWarningsAndShifts) {
  std::unique_ptr<Control2> c = Make(SmallOptions());
  const Trace trace = DescendingInserts(150, 1 << 20);
  for (const Op& op : trace) {
    ASSERT_TRUE(c->Insert(op.record).ok());
    ASSERT_TRUE(c->ValidateInvariants().ok());
  }
  EXPECT_GT(c->stats().activations, 0);
  EXPECT_GT(c->stats().shifts, 0);
  EXPECT_GT(c->stats().records_shifted, 0);
  EXPECT_GT(c->stats().warnings_lowered, 0);
}

TEST(Control2, WorstCaseCommandCostIsBoundedByJ) {
  // The headline property: unlike CONTROL 1, no single command exceeds
  // a few block accesses per SHIFT cycle.
  Control2::Options options;
  options.config.num_pages = 256;  // L = 8
  options.config.d = 4;
  options.config.D = 4 + 25;
  std::unique_ptr<Control2> c = Make(options);
  const Trace trace = DescendingInserts(c->MaxRecords(), 1 << 30);
  for (const Op& op : trace) {
    ASSERT_TRUE(c->Insert(op.record).ok());
  }
  ASSERT_TRUE(c->ValidateInvariants().ok());
  const int64_t k = c->block_size();
  EXPECT_LE(c->command_stats().max_command_accesses,
            4 * k * (c->J() + 1) + 2);
}

TEST(Control2, MatchesReferenceModelOnUniformMix) {
  std::unique_ptr<Control2> c = Make(SmallOptions());
  ReferenceModel model(c->MaxRecords());
  Rng rng(123);
  const Trace trace = UniformMix(2000, 0.55, 0.25, 500, rng);
  for (const Op& op : trace) {
    switch (op.kind) {
      case Op::Kind::kInsert:
        EXPECT_EQ(c->Insert(op.record).code(),
                  model.Insert(op.record).code());
        break;
      case Op::Kind::kDelete:
        EXPECT_EQ(c->Delete(op.record.key).code(),
                  model.Delete(op.record.key).code());
        break;
      default:
        EXPECT_EQ(c->Contains(op.record.key), model.Contains(op.record.key));
        break;
    }
  }
  EXPECT_EQ(*c->ScanAll(), model.ScanAll());
  EXPECT_TRUE(c->ValidateInvariants().ok());
}

TEST(Control2, ScanReturnsOrderedSlice) {
  std::unique_ptr<Control2> c = Make(SmallOptions());
  ASSERT_TRUE(c->BulkLoad(MakeAscendingRecords(128, 2, 2)).ok());
  std::vector<Record> out;
  ASSERT_TRUE(c->Scan(10, 20, &out).ok());
  ASSERT_EQ(out.size(), 6u);  // 10,12,...,20
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].key, 10 + 2 * i);
  }
  out.clear();
  ASSERT_TRUE(c->Scan(1000, 2000, &out).ok());
  EXPECT_TRUE(out.empty());
  out.clear();
  ASSERT_TRUE(c->Scan(20, 10, &out).ok());  // inverted range: empty
  EXPECT_TRUE(out.empty());
}

TEST(Control2, ScanTouchesConsecutiveAddresses) {
  std::unique_ptr<Control2> c = Make(SmallOptions());
  ASSERT_TRUE(c->BulkLoad(MakeAscendingRecords(c->MaxRecords())).ok());
  c->file().ResetStats();
  std::vector<Record> out;
  ASSERT_TRUE(c->Scan(1, static_cast<Key>(c->MaxRecords()), &out).ok());
  EXPECT_EQ(static_cast<int64_t>(out.size()), c->MaxRecords());
  // Stream retrieval from a dense file: at most one real seek.
  EXPECT_LE(c->file().stats().seeks, 1);
  EXPECT_GT(c->file().stats().sequential_accesses, 0);
}

TEST(Control2, MacroBlockModeOperatesBelowGapCondition) {
  Control2::Options options;
  options.config.num_pages = 64;
  options.config.d = 4;
  options.config.D = 6;  // D - d = 2 <= 3*ceil(log 64): needs blocks
  options.config.block_size = 8;  // K*(D-d) = 16 > 3*ceil(log 8) = 9
  std::unique_ptr<Control2> c = Make(options);
  EXPECT_EQ(c->num_blocks(), 8);
  ReferenceModel model(c->MaxRecords());
  Rng rng(5);
  const Trace trace = UniformMix(1200, 0.6, 0.2, 300, rng);
  for (const Op& op : trace) {
    switch (op.kind) {
      case Op::Kind::kInsert:
        ASSERT_EQ(c->Insert(op.record).code(),
                  model.Insert(op.record).code());
        break;
      case Op::Kind::kDelete:
        ASSERT_EQ(c->Delete(op.record.key).code(),
                  model.Delete(op.record.key).code());
        break;
      default:
        ASSERT_EQ(c->Contains(op.record.key), model.Contains(op.record.key));
        break;
    }
    ASSERT_TRUE(c->ValidateInvariants().ok());
  }
  EXPECT_EQ(*c->ScanAll(), model.ScanAll());
}

TEST(Control2, StepCallbackFiresAtFlagStableMoments) {
  Control2::Options options = SmallOptions();
  options.J = 4;
  std::unique_ptr<Control2> c = Make(options);
  int after_step3 = 0;
  int after_cycle = 0;
  c->SetStepCallback([&](Control2::StablePoint point, int64_t) {
    if (point == Control2::StablePoint::kAfterStep3) {
      ++after_step3;
    } else {
      ++after_cycle;
    }
  });
  ASSERT_TRUE(c->Insert(Record{1, 1}).ok());
  EXPECT_EQ(after_step3, 1);
  EXPECT_LE(after_cycle, 4);  // cycles stop early when nothing warns
}

TEST(Control2, DeleteDrainsWarnings) {
  std::unique_ptr<Control2> c = Make(SmallOptions());
  // Build a hotspot, then delete it all; warnings must clear and the file
  // must stay valid throughout.
  const Trace inserts = DescendingInserts(120, 1 << 16);
  for (const Op& op : inserts) ASSERT_TRUE(c->Insert(op.record).ok());
  for (const Op& op : inserts) {
    ASSERT_TRUE(c->Delete(op.record.key).ok());
    ASSERT_TRUE(c->ValidateInvariants().ok());
  }
  EXPECT_EQ(c->size(), 0);
  for (int v = 0; v < c->calibrator().node_count(); ++v) {
    EXPECT_FALSE(c->warning(v)) << "node " << v << " warns on empty file";
  }
}

TEST(Control2, SinglePageFileDegenerateCase) {
  Control2::Options options;
  options.config.num_pages = 1;
  options.config.d = 4;
  options.config.D = 16;  // L = 1; gap 12 > 3
  std::unique_ptr<Control2> c = Make(options);
  for (Key k = 1; k <= 4; ++k) {
    ASSERT_TRUE(c->Insert(Record{k, k}).ok());
  }
  EXPECT_TRUE(c->Insert(Record{5, 5}).IsCapacityExceeded());  // d*M = 4
  EXPECT_TRUE(c->Delete(2).ok());
  EXPECT_TRUE(c->ValidateInvariants().ok());
}

TEST(Control2, ChurnAtHotspotStaysValid) {
  std::unique_ptr<Control2> c = Make(SmallOptions());
  const Trace trace = HotspotChurn(30, 20, 1 << 20);
  for (const Op& op : trace) {
    if (op.kind == Op::Kind::kInsert) {
      ASSERT_TRUE(c->Insert(op.record).ok());
    } else {
      ASSERT_TRUE(c->Delete(op.record.key).ok());
    }
    ASSERT_TRUE(c->ValidateInvariants().ok());
  }
  EXPECT_EQ(c->size(), 0);
}

}  // namespace
}  // namespace dsf
