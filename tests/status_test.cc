#include "util/status.h"

#include <gtest/gtest.h>

namespace dsf {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  const Status s = Status::NotFound("missing key 7");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing key 7");
  EXPECT_EQ(s.ToString(), "NotFound: missing key 7");
}

TEST(Status, EachFactoryMapsToItsCode) {
  EXPECT_EQ(Status::InvalidArgument("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::CapacityExceeded("").code(),
            StatusCode::kCapacityExceeded);
  EXPECT_EQ(Status::OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Corruption("").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
}

TEST(Status, EqualityComparesCodesOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Corruption("a"));
}

TEST(Status, CodeToStringCoversAllCodes) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCapacityExceeded),
               "CapacityExceeded");
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

TEST(StatusOr, HoldsValueOnSuccess) {
  StatusOr<int> r = ParsePositive(5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 5);
  EXPECT_EQ(r.value(), 5);
}

TEST(StatusOr, HoldsStatusOnFailure) {
  StatusOr<int> r = ParsePositive(-1);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOr, WorksWithMoveOnlyTypes) {
  StatusOr<std::unique_ptr<int>> r(std::make_unique<int>(9));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).value();
  EXPECT_EQ(*p, 9);
}

TEST(StatusOr, ArrowOperatorReachesMembers) {
  StatusOr<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

TEST(StatusOr, ReturnIfErrorPropagates) {
  auto inner = []() -> Status { return Status::Corruption("boom"); };
  auto outer = [&]() -> Status {
    DSF_RETURN_IF_ERROR(inner());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace dsf
