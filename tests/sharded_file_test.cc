// ShardedDenseFile tests: routing, splitter learning, cross-shard
// stitching, and the concurrent differential storm — T threads of mixed
// insert/delete/get/scan traffic through ParallelReplayer, cross-checked
// against the single-threaded ReferenceModel. Thread key sets are
// disjoint (keys congruent to t mod T), so the final contents are
// independent of the interleaving and a serial replay of the same traces
// is an exact oracle; every shard's invariant battery and the exactness
// of stats aggregation are validated after the storm.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "analysis/auditor.h"
#include "ingest/memtable.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "shard/sharded_dense_file.h"
#include "util/deadlock.h"
#include "workload/parallel_replayer.h"
#include "workload/reference_model.h"
#include "workload/workload.h"

namespace dsf {
namespace {

ShardedDenseFile::Options SmallOptions(int num_shards, Key key_space) {
  ShardedDenseFile::Options options;
  options.num_shards = num_shards;
  options.key_space = key_space;
  options.shard.num_pages = 64;
  options.shard.d = 8;
  options.shard.D = 8 + 4 * 6 + 1;  // gap condition at M = 64
  return options;
}

std::unique_ptr<ShardedDenseFile> MakeFile(
    const ShardedDenseFile::Options& options) {
  StatusOr<std::unique_ptr<ShardedDenseFile>> file =
      ShardedDenseFile::Create(options);
  EXPECT_TRUE(file.ok()) << file.status();
  return std::move(*file);
}

TEST(ShardedDenseFileTest, CreateValidatesOptions) {
  ShardedDenseFile::Options options = SmallOptions(4, 1000);
  options.num_shards = 0;
  EXPECT_TRUE(ShardedDenseFile::Create(options).status().IsInvalidArgument());

  options = SmallOptions(4, 1000);
  options.splitters = {100, 100, 300};  // not strictly ascending
  EXPECT_TRUE(ShardedDenseFile::Create(options).status().IsInvalidArgument());

  options = SmallOptions(4, 1000);
  options.splitters = {100, 200};  // wrong count for 4 shards
  EXPECT_TRUE(ShardedDenseFile::Create(options).status().IsInvalidArgument());

  options = SmallOptions(8, 4);  // key space smaller than shard count
  EXPECT_TRUE(ShardedDenseFile::Create(options).status().IsInvalidArgument());
}

TEST(ShardedDenseFileTest, RoutingRespectsSplitters) {
  ShardedDenseFile::Options options = SmallOptions(4, 0);
  options.splitters = {100, 200, 300};
  std::unique_ptr<ShardedDenseFile> file = MakeFile(options);
  EXPECT_EQ(file->ShardOf(1), 0);
  EXPECT_EQ(file->ShardOf(99), 0);
  EXPECT_EQ(file->ShardOf(100), 1);  // boundary key starts the next shard
  EXPECT_EQ(file->ShardOf(199), 1);
  EXPECT_EQ(file->ShardOf(200), 2);
  EXPECT_EQ(file->ShardOf(300), 3);
  EXPECT_EQ(file->ShardOf(1u << 30), 3);

  ASSERT_TRUE(file->Insert(99, 1).ok());
  ASSERT_TRUE(file->Insert(100, 2).ok());
  ASSERT_TRUE(file->Insert(350, 3).ok());
  EXPECT_EQ(file->shard_size(0), 1);
  EXPECT_EQ(file->shard_size(1), 1);
  EXPECT_EQ(file->shard_size(2), 0);
  EXPECT_EQ(file->shard_size(3), 1);
  EXPECT_TRUE(file->ValidateInvariants().ok());
}

TEST(ShardedDenseFileTest, PointOpsMatchSingleFileSemantics) {
  std::unique_ptr<ShardedDenseFile> file = MakeFile(SmallOptions(4, 1000));
  EXPECT_TRUE(file->Insert(42, 420).ok());
  EXPECT_TRUE(file->Insert(42, 421).IsAlreadyExists());
  EXPECT_TRUE(file->Contains(42));
  StatusOr<Value> got = file->Get(42);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 420u);
  EXPECT_TRUE(file->Get(43).status().IsNotFound());
  EXPECT_TRUE(file->Delete(43).IsNotFound());
  EXPECT_TRUE(file->Delete(42).ok());
  EXPECT_EQ(file->size(), 0);
}

TEST(ShardedDenseFileTest, StagingBudgetTooSmallPerShardIsRejected) {
  // Regression: a byte budget whose per-shard share cannot hold one
  // staged entry used to be silently rounded UP to one entry per shard,
  // quietly multiplying the caller's budget by up to S. It must be a
  // configuration error instead.
  ShardedDenseFile::Options options = SmallOptions(4, 1000);
  options.staging_bytes = 2 * static_cast<int64_t>(sizeof(StagedEntry));
  EXPECT_TRUE(ShardedDenseFile::Create(options).status().IsInvalidArgument());
}

TEST(ShardedDenseFileTest, StagingBudgetRemainderGoesToFirstShards) {
  // Regression: the even split used to drop the remainder, losing up to
  // S-1 entries of the budget. 14 entries over 4 shards must come out
  // as 4+4+3+3, not 3+3+3+3.
  ShardedDenseFile::Options options = SmallOptions(4, 1000);
  const int64_t entry = static_cast<int64_t>(sizeof(StagedEntry));
  options.staging_bytes = 14 * entry;
  std::unique_ptr<ShardedDenseFile> file = MakeFile(options);
  EXPECT_EQ(file->shard_staging_stats(0).capacity, 4);
  EXPECT_EQ(file->shard_staging_stats(1).capacity, 4);
  EXPECT_EQ(file->shard_staging_stats(2).capacity, 3);
  EXPECT_EQ(file->shard_staging_stats(3).capacity, 3);
  EXPECT_EQ(file->staging_stats().capacity, 14);

  // An exactly-even budget still splits evenly.
  options.staging_bytes = 8 * entry;
  file = MakeFile(options);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(file->shard_staging_stats(i).capacity, 2) << "shard " << i;
  }
}

TEST(ShardedDenseFileTest, ReadBranchCountersAccountEveryPointRead) {
  MetricsRegistry registry;
  ShardedDenseFile::Options options = SmallOptions(4, 1000);
  options.shard.metrics = &registry;
  std::unique_ptr<ShardedDenseFile> file = MakeFile(options);
  ASSERT_TRUE(file->Insert(10, 1).ok());
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(file->Get(10).ok());
    EXPECT_FALSE(file->Contains(11));
  }
  // Single-threaded there is never a writer to contend with, so every
  // point read takes the uncontended shared-lock branch.
  int64_t shared = 0;
  int64_t epoch_hits = 0;
  int64_t fallbacks = 0;
  for (const auto& c : registry.Snapshot().counters) {
    if (c.name == kMetricReadLockShared) shared = c.value;
    if (c.name == kMetricReadLockEpochHits) epoch_hits = c.value;
    if (c.name == kMetricReadLockEpochFallbacks) fallbacks = c.value;
  }
  EXPECT_EQ(shared, 10);
  EXPECT_EQ(epoch_hits, 0);
  EXPECT_EQ(fallbacks, 0);
}

TEST(ShardedDenseFileTest, ExclusiveReadsKnobBypassesSharedPath) {
  MetricsRegistry registry;
  ShardedDenseFile::Options options = SmallOptions(4, 1000);
  options.shard.metrics = &registry;
  options.exclusive_reads = true;
  std::unique_ptr<ShardedDenseFile> file = MakeFile(options);
  ASSERT_TRUE(file->Insert(10, 1).ok());
  EXPECT_TRUE(file->Get(10).ok());
  EXPECT_TRUE(file->Contains(10));
  for (const auto& c : registry.Snapshot().counters) {
    if (c.name == kMetricReadLockShared ||
        c.name == kMetricReadLockEpochHits ||
        c.name == kMetricReadLockEpochFallbacks) {
      EXPECT_EQ(c.value, 0) << c.name;
    }
  }
}

TEST(ShardedDenseFileTest, LearnSplittersBalancesSkewedSample) {
  // A heavily skewed sample: 90% of keys in [1, 100], the rest spread out.
  std::vector<Record> sample;
  for (Key k = 1; k <= 90; ++k) sample.push_back(Record{k, k});
  for (Key k = 1000; k < 1010; ++k) sample.push_back(Record{k, k});
  const std::vector<Key> splitters =
      ShardedDenseFile::LearnSplitters(sample, 4);
  ASSERT_EQ(splitters.size(), 3u);
  for (size_t i = 1; i < splitters.size(); ++i) {
    EXPECT_LT(splitters[i - 1], splitters[i]);
  }
  // Equi-depth boundaries land inside the dense region, not at uniform
  // key-space positions.
  EXPECT_LT(splitters[0], 100u);
  EXPECT_LT(splitters[1], 100u);

  ShardedDenseFile::Options options = SmallOptions(4, 0);
  options.splitters = splitters;
  std::unique_ptr<ShardedDenseFile> file = MakeFile(options);
  ASSERT_TRUE(file->BulkLoad(sample).ok());
  // No shard got more than half the records (uniform splitters would put
  // 90% into shard 0).
  for (int i = 0; i < 4; ++i) {
    EXPECT_LE(file->shard_size(i), 50) << "shard " << i;
  }
  EXPECT_TRUE(file->ValidateInvariants().ok());
}

TEST(ShardedDenseFileTest, CrossShardScanStitchesInKeyOrder) {
  std::unique_ptr<ShardedDenseFile> file = MakeFile(SmallOptions(4, 1000));
  ReferenceModel model;
  Rng rng(7);
  const std::vector<Record> records = MakeUniformRecords(400, 1000, rng);
  ASSERT_TRUE(file->BulkLoad(records).ok());
  ASSERT_TRUE(model.Load(records).ok());

  // Ranges chosen to span 0, 1, 2 and all 4 shards (splitters at
  // 251, 501, 751 for key_space 1000).
  const std::pair<Key, Key> ranges[] = {
      {1, 50}, {200, 300}, {240, 760}, {1, 1000}, {997, 1500}, {600, 10}};
  for (const auto& [lo, hi] : ranges) {
    std::vector<Record> got;
    ASSERT_TRUE(file->Scan(lo, hi, &got).ok());
    EXPECT_EQ(got, model.Scan(lo, hi)) << "range [" << lo << "," << hi << "]";
  }
  EXPECT_EQ(*file->ScanAll(), model.ScanAll());
}

TEST(ShardedDenseFileTest, CrossShardDeleteRangeMatchesModel) {
  std::unique_ptr<ShardedDenseFile> file = MakeFile(SmallOptions(4, 1000));
  ReferenceModel model;
  Rng rng(11);
  const std::vector<Record> records = MakeUniformRecords(400, 1000, rng);
  ASSERT_TRUE(file->BulkLoad(records).ok());
  ASSERT_TRUE(model.Load(records).ok());

  // Spans shards 1-3; compare removed counts and remaining contents.
  const int64_t model_removed =
      static_cast<int64_t>(model.Scan(300, 900).size());
  for (const Record& r : model.Scan(300, 900)) {
    ASSERT_TRUE(model.Delete(r.key).ok());
  }
  StatusOr<int64_t> removed = file->DeleteRange(300, 900);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, model_removed);
  EXPECT_EQ(*file->ScanAll(), model.ScanAll());
  EXPECT_TRUE(file->ValidateInvariants().ok());
}

TEST(ShardedDenseFileTest, DeleteRangeWithStagingMatchesModel) {
  // Differential check for the range op over the staged+durable union:
  // half the records are still in per-shard memtables when the
  // cross-shard range delete lands.
  ShardedDenseFile::Options options = SmallOptions(4, 1000);
  options.shard.staging_entries = 32;
  std::unique_ptr<ShardedDenseFile> file = MakeFile(options);
  ReferenceModel model;
  Rng rng(17);
  const std::vector<Record> records = MakeUniformRecords(300, 1000, rng);
  ASSERT_TRUE(file->BulkLoad(records).ok());
  ASSERT_TRUE(model.Load(records).ok());
  for (Key k = 3; k <= 1000; k += 9) {
    const Record r{k, k + 1};
    const Status s = file->Insert(r);
    ASSERT_TRUE(s.ok() || s.IsAlreadyExists());
    if (s.ok()) ASSERT_TRUE(model.Insert(r).ok());
  }

  const int64_t expected =
      static_cast<int64_t>(model.Scan(200, 800).size());
  for (const Record& r : model.Scan(200, 800)) {
    ASSERT_TRUE(model.Delete(r.key).ok());
  }
  StatusOr<int64_t> removed = file->DeleteRange(200, 800);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, expected);
  EXPECT_EQ(*file->ScanAll(), model.ScanAll());
  ASSERT_TRUE(file->FlushStaging().ok());
  EXPECT_EQ(*file->ScanAll(), model.ScanAll());
  EXPECT_TRUE(file->ValidateInvariants().ok());
}

TEST(ShardedDenseFileTest, DeleteRangeIsAtomicAgainstConcurrentScan) {
  // Regression: the range delete used to tombstone shard-by-shard, one
  // lock at a time, so a concurrent scan over the same range could see
  // a half-deleted prefix. Now the delete holds every affected shard
  // exclusive and scans hold them all shared: each scan observes either
  // the full pre-delete contents or the empty post-delete state, never
  // a torn middle.
  std::unique_ptr<ShardedDenseFile> file = MakeFile(SmallOptions(4, 1000));
  std::vector<Record> initial;
  for (Key k = 1; k <= 1000; k += 2) initial.push_back(Record{k, k});
  ASSERT_TRUE(file->BulkLoad(initial).ok());
  const int64_t full = static_cast<int64_t>(initial.size());
  // Widen the race window: every page access sleeps, so the shard-by-
  // shard pre-fix interleaving is all but guaranteed to be observed.
  file->SetAccessLatency(std::chrono::microseconds(20));

  std::atomic<bool> stop{false};
  std::atomic<int64_t> scans_done{0};
  std::atomic<int64_t> torn{0};
  std::atomic<bool> scan_failed{false};
  std::thread scanner([&] {
    std::vector<Record> out;
    while (!stop.load(std::memory_order_acquire)) {
      out.clear();
      if (!file->Scan(1, 1000, &out).ok()) {
        scan_failed.store(true);
        break;
      }
      const int64_t n = static_cast<int64_t>(out.size());
      if (n != 0 && n != full) torn.fetch_add(1);
      scans_done.fetch_add(1);
    }
  });
  while (scans_done.load() < 2) std::this_thread::yield();
  StatusOr<int64_t> removed = file->DeleteRange(1, 1000);
  const int64_t after_delete = scans_done.load();
  while (scans_done.load() < after_delete + 2) std::this_thread::yield();
  stop.store(true, std::memory_order_release);
  scanner.join();

  ASSERT_FALSE(scan_failed.load());
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, full);
  EXPECT_EQ(torn.load(), 0) << torn.load() << " torn scans";
  EXPECT_EQ(file->size(), 0);
}

TEST(ShardedDenseFileTest, InsertBatchRoutesAcrossShards) {
  std::unique_ptr<ShardedDenseFile> file = MakeFile(SmallOptions(4, 1000));
  const std::vector<Record> batch = MakeAscendingRecords(100, 5, 10);
  ASSERT_TRUE(file->InsertBatch(batch).ok());
  EXPECT_EQ(file->size(), 100);
  EXPECT_EQ(*file->ScanAll(), batch);
  // Every shard received its slice.
  for (int i = 0; i < 4; ++i) {
    EXPECT_GT(file->shard_size(i), 0) << "shard " << i;
  }
  EXPECT_TRUE(
      file->InsertBatch({{9, 9}, {9, 9}}).IsInvalidArgument());
}

TEST(ShardedDenseFileTest, StatsAggregateBySummation) {
  std::unique_ptr<ShardedDenseFile> file = MakeFile(SmallOptions(4, 1000));
  Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    const Key k = rng.Uniform(1000) + 1;
    (void)file->Insert(k, k);
  }
  const IoStats total = file->io_stats();
  const CommandStats commands = file->command_stats();
  IoStats summed;
  int64_t summed_commands = 0;
  int64_t max_command = 0;
  for (int i = 0; i < file->num_shards(); ++i) {
    summed += file->shard_io_stats(i);
    summed_commands += file->shard_command_stats(i).commands;
    max_command = std::max(max_command,
                           file->shard_command_stats(i).max_command_accesses);
  }
  EXPECT_EQ(total.page_reads, summed.page_reads);
  EXPECT_EQ(total.page_writes, summed.page_writes);
  EXPECT_EQ(total.seeks, summed.seeks);
  EXPECT_EQ(total.sequential_accesses, summed.sequential_accesses);
  EXPECT_EQ(commands.commands, summed_commands);
  EXPECT_EQ(commands.max_command_accesses, max_command);
  EXPECT_EQ(commands.commands, 200);

  file->ResetStats();
  EXPECT_EQ(file->io_stats().TotalAccesses(), 0);
  EXPECT_EQ(file->command_stats().commands, 0);
}

TEST(ParallelReplayerTest, RangeMixesPartitionTheKeySpace) {
  const int num_threads = 4;
  const Key key_space = 1000;
  const std::vector<Trace> traces = ParallelReplayer::DisjointRangeMixes(
      num_threads, /*ops_per_thread=*/500, /*insert_fraction=*/0.35,
      /*delete_fraction=*/0.30, /*scan_fraction=*/0.05, key_space,
      /*scan_span=*/16, /*seed=*/3);
  ASSERT_EQ(traces.size(), 4u);
  int64_t scans = 0;
  for (int t = 0; t < num_threads; ++t) {
    const Key lo = static_cast<Key>(t) * 250;
    ASSERT_EQ(traces[static_cast<size_t>(t)].size(), 500u);
    for (const Op& op : traces[static_cast<size_t>(t)]) {
      // Every key stays inside the thread's contiguous slice.
      EXPECT_GT(op.record.key, lo);
      EXPECT_LE(op.record.key, lo + 250);
      if (op.kind == Op::Kind::kScan) {
        EXPECT_EQ(op.scan_hi, op.record.key + 16);
        ++scans;
      }
    }
  }
  // The mix produces some of everything (loose sanity on the fractions).
  EXPECT_GT(scans, 25);
  EXPECT_LT(scans, 200);

  // Disjoint ranges replay race-free: concurrent run, then invariants.
  std::unique_ptr<ShardedDenseFile> file = MakeFile(SmallOptions(4, 1000));
  ParallelReplayer replayer({num_threads});
  const ReplayResult result = replayer.Replay(*file, traces);
  EXPECT_TRUE(result.ok()) << result.first_unexpected_error.ToString();
  EXPECT_EQ(result.Aggregate().ops, 2000);
  EXPECT_TRUE(file->ValidateInvariants().ok());
}

// The storm: T threads of mixed traffic against S shards, then a full
// differential and invariant audit. The third parameter is per-shard
// buffer-pool frames (0 = direct to device); with pools the storm also
// exercises concurrent pin/flush cycles, one pool per shard mutex. The
// fourth is per-shard staging entries (0 = staging off); staged storms
// drive concurrent memtable puts, piggybacked drain steps, and the
// merged read view under contention, and must FlushStaging before the
// differential compare so the device+staging union is fully drained.
// The fifth parameter selects the read-mostly shared-path storm: ~90%
// point reads exercising all three read branches (shared lock, epoch
// pool read, blocking fallback) against concurrent writers and drains,
// with audit_every_command and certify_bound on so every interleaving
// is auditor- and bound-certified. Run under TSan this is the data-race
// battery for the reader-writer lock split.
class ShardedStormTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, int, bool>> {
};

TEST_P(ShardedStormTest, ConcurrentMixedTrafficMatchesReference) {
  const int num_shards = std::get<0>(GetParam());
  const int num_threads = std::get<1>(GetParam());
  const int cache_frames = std::get<2>(GetParam());
  const int staging_entries = std::get<3>(GetParam());
  const bool read_mostly = std::get<4>(GetParam());
  const Key key_space = 4000;
  const int64_t ops_per_thread = read_mostly ? 1500 : 4000;

  // Total capacity held constant across configurations: 512 pages split
  // evenly over the shards, same (d, D) everywhere.
  ShardedDenseFile::Options options;
  options.num_shards = num_shards;
  options.key_space = key_space;
  options.shard.num_pages = 512 / num_shards;
  options.shard.d = 8;
  options.shard.D = 8 + 4 * 9 + 1;
  options.shard.cache_frames = cache_frames;
  options.shard.staging_entries = staging_entries;
  MetricsRegistry registry;
  if (read_mostly) {
    options.shard.metrics = &registry;
    options.shard.audit_every_command = true;
    options.shard.certify_bound = true;
  }
  // Aggregate capacity comfortably above the number of distinct keys, so
  // no interleaving can hit CapacityExceeded and per-key outcomes stay
  // deterministic.
  ASSERT_GE(static_cast<Key>(options.num_shards * options.shard.num_pages *
                             options.shard.d),
            key_space);
  std::unique_ptr<ShardedDenseFile> file = MakeFile(options);

  // Warm start: half the key space pre-loaded.
  std::vector<Record> initial;
  for (Key k = 2; k <= key_space; k += 2) initial.push_back(Record{k, k ^ 5});
  ASSERT_TRUE(file->BulkLoad(initial).ok());

  const std::vector<Trace> traces = ParallelReplayer::DisjointUniformMixes(
      num_threads, ops_per_thread,
      /*insert_fraction=*/read_mostly ? 0.05 : 0.35,
      /*delete_fraction=*/read_mostly ? 0.04 : 0.30,
      /*scan_fraction=*/read_mostly ? 0.01 : 0.05, key_space,
      /*scan_span=*/64, /*seed=*/42);

  ParallelReplayer replayer({num_threads});
  const ReplayResult result = replayer.Replay(*file, traces);
  ASSERT_TRUE(result.ok()) << result.unexpected_errors
                           << " unexpected errors, first: "
                           << result.first_unexpected_error.ToString();

  const ReplayThreadStats agg = result.Aggregate();
  EXPECT_EQ(agg.ops, static_cast<int64_t>(num_threads) * ops_per_thread);
  EXPECT_EQ(agg.inserts + agg.deletes + agg.gets + agg.scans, agg.ops);
  EXPECT_GT(result.wall_seconds, 0.0);

  // Oracle: the same traces replayed serially. Keys are disjoint across
  // threads, so the serial order within each trace fixes every key's
  // final state regardless of the concurrent interleaving.
  ReferenceModel model;
  ASSERT_TRUE(model.Load(initial).ok());
  for (const Trace& trace : traces) {
    for (const Op& op : trace) {
      switch (op.kind) {
        case Op::Kind::kInsert: (void)model.Insert(op.record); break;
        case Op::Kind::kDelete: (void)model.Delete(op.record.key); break;
        case Op::Kind::kGet: case Op::Kind::kScan: break;
      }
    }
  }
  EXPECT_EQ(file->size(), model.size());
  EXPECT_EQ(*file->ScanAll(), model.ScanAll());

  // Every shard survived the storm with its invariants intact (this
  // includes BALANCE(d,D) per shard), and the typed auditor certifies
  // the full catalog — density, order, counters, algorithm state, pool
  // frames and shard boundaries.
  EXPECT_TRUE(file->ValidateInvariants().ok());
  const AuditReport audit = file->Audit();
  EXPECT_TRUE(audit.ok()) << audit.ToString();

  // Stats aggregation is exact: the per-shard sums equal the aggregate.
  IoStats summed;
  int64_t summed_commands = 0;
  for (int i = 0; i < file->num_shards(); ++i) {
    summed += file->shard_io_stats(i);
    summed_commands += file->shard_command_stats(i).commands;
  }
  const IoStats total = file->io_stats();
  EXPECT_EQ(total.page_reads, summed.page_reads);
  EXPECT_EQ(total.page_writes, summed.page_writes);
  EXPECT_EQ(file->command_stats().commands, summed_commands);

  if (staging_entries > 0) {
    // The replayer's end-of-run FlushStaging drained every shard: the
    // staged storm saw real memtable traffic, nothing lingers staged,
    // and the per-shard counters sum to the aggregate.
    const StagingStats staged = file->staging_stats();
    EXPECT_GT(staged.puts, 0);
    EXPECT_GT(staged.drained_entries, 0);
    EXPECT_EQ(staged.entries, 0);
    StagingStats summed_staging;
    for (int i = 0; i < file->num_shards(); ++i) {
      summed_staging += file->shard_staging_stats(i);
    }
    EXPECT_EQ(staged.puts, summed_staging.puts);
    EXPECT_EQ(staged.drain_steps, summed_staging.drain_steps);
    EXPECT_EQ(staged.drained_entries, summed_staging.drained_entries);
  }

  if (cache_frames > 0) {
    // The pools saw traffic, and after the final per-command flushes no
    // dirty page may linger: the device alone must hold the full state.
    const BufferPool::Stats cache = file->cache_stats();
    EXPECT_GT(cache.hits + cache.misses, 0);
    file->DiscardCaches();
    EXPECT_EQ(*file->ScanAll(), model.ScanAll());
    EXPECT_TRUE(file->ValidateInvariants().ok());
  }

  if (read_mostly) {
    // Every point read took exactly one of the three branches, and the
    // live bound certificate saw no violation on any interleaving.
    int64_t shared = 0;
    int64_t epoch_hits = 0;
    int64_t fallbacks = 0;
    int64_t bound_violations = 0;
    for (const auto& c : registry.Snapshot().counters) {
      if (c.name == kMetricReadLockShared) shared = c.value;
      if (c.name == kMetricReadLockEpochHits) epoch_hits = c.value;
      if (c.name == kMetricReadLockEpochFallbacks) fallbacks = c.value;
      if (c.name.rfind(kMetricBoundViolations, 0) == 0) {
        bound_violations += c.value;
      }
    }
    EXPECT_EQ(shared + epoch_hits + fallbacks, agg.gets);
    EXPECT_EQ(bound_violations, 0);
  }

  // Under -DDSF_DEADLOCK_DETECT=ON (the default in TSan builds) the
  // runtime lock-order detector watched every acquisition this storm
  // made — shard mutexes, pool mutexes, the metrics registry — and its
  // graph must have stayed acyclic.
  if (deadlock::EverEnabled()) {
    const deadlock::LockOrderReport lock_order = deadlock::Report();
    EXPECT_TRUE(lock_order.ok()) << lock_order.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Storms, ShardedStormTest,
    ::testing::Values(std::make_tuple(1, 4, 0, 0, false),
                      std::make_tuple(4, 1, 0, 0, false),
                      std::make_tuple(4, 4, 0, 0, false),
                      std::make_tuple(8, 4, 0, 0, false),
                      std::make_tuple(8, 8, 0, 0, false),
                      std::make_tuple(4, 4, 8, 0, false),
                      std::make_tuple(8, 8, 8, 0, false),
                      // Staged storms: memtable + drain under contention,
                      // without and with a per-shard pool (the latter runs
                      // the deferred-flush + volatile-key path too).
                      std::make_tuple(4, 4, 0, 16, false),
                      std::make_tuple(8, 8, 8, 16, false),
                      // Read-mostly shared-path storms: readers racing
                      // writers racing drains, audited and certified per
                      // command; the epoch pool-read branch needs frames
                      // to hit, so both pool-less and pooled shapes run.
                      std::make_tuple(4, 4, 0, 16, true),
                      std::make_tuple(8, 8, 8, 16, true)),
    [](const ::testing::TestParamInfo<std::tuple<int, int, int, int, bool>>&
           param) {
      std::string base = "S" + std::to_string(std::get<0>(param.param)) + "T" +
                         std::to_string(std::get<1>(param.param));
      const int frames = std::get<2>(param.param);
      const int staged = std::get<3>(param.param);
      if (frames > 0) base += "Pool" + std::to_string(frames);
      if (staged > 0) base += "Staged" + std::to_string(staged);
      if (std::get<4>(param.param)) base += "ReadMostly";
      return base;
    });

}  // namespace
}  // namespace dsf
