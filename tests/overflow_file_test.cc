#include "baseline/overflow_file.h"

#include <gtest/gtest.h>

#include "workload/reference_model.h"
#include "workload/workload.h"

namespace dsf {
namespace {

std::unique_ptr<OverflowFile> Make(int64_t pages = 8, int64_t capacity = 8) {
  OverflowFile::Options options;
  options.num_primary_pages = pages;
  options.page_capacity = capacity;
  StatusOr<std::unique_ptr<OverflowFile>> f = OverflowFile::Create(options);
  EXPECT_TRUE(f.ok()) << f.status();
  return std::move(*f);
}

TEST(OverflowFile, CreateValidatesOptions) {
  OverflowFile::Options options;
  options.num_primary_pages = 0;
  options.page_capacity = 4;
  EXPECT_FALSE(OverflowFile::Create(options).ok());
  options.num_primary_pages = 4;
  options.page_capacity = 0;
  EXPECT_FALSE(OverflowFile::Create(options).ok());
}

TEST(OverflowFile, InsertGetDeleteWithoutOverflow) {
  std::unique_ptr<OverflowFile> f = Make();
  ASSERT_TRUE(f->BulkLoad(MakeAscendingRecords(32, 10, 10)).ok());
  EXPECT_EQ(f->size(), 32);
  ASSERT_TRUE(f->Insert(Record{15, 150}).ok());
  StatusOr<Record> r = f->Get(15);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->value, 150u);
  EXPECT_TRUE(f->Insert(Record{15, 1}).IsAlreadyExists());
  EXPECT_TRUE(f->Delete(15).ok());
  EXPECT_TRUE(f->Delete(15).IsNotFound());
  EXPECT_TRUE(f->ValidateInvariants().ok());
  EXPECT_EQ(f->chain_stats().overflow_pages, 0);
}

TEST(OverflowFile, SurgeGrowsOneChain) {
  std::unique_ptr<OverflowFile> f = Make(8, 8);
  ASSERT_TRUE(f->BulkLoad(MakeAscendingRecords(48, 1000, 1000)).ok());
  // Surge 64 inserts into one bucket's key range.
  Rng rng(3);
  const Trace surge = HotspotSurge(64, 8001, 8800, rng);
  for (const Op& op : surge) {
    ASSERT_TRUE(f->Insert(op.record).ok());
  }
  const OverflowFile::ChainStats cs = f->chain_stats();
  EXPECT_GE(cs.max_chain_length, 8);   // 64 records / 8 per page
  EXPECT_GT(cs.overflow_records, 0);
  EXPECT_TRUE(f->ValidateInvariants().ok());
  // Lookups in the surged bucket now walk the chain.
  f->ResetStats();
  ASSERT_TRUE(f->Contains(surge.back().record.key));
  EXPECT_GE(f->stats().page_reads, 1);
}

TEST(OverflowFile, ChainedRecordsRemainFindableAndScannable) {
  std::unique_ptr<OverflowFile> f = Make(4, 4);
  ReferenceModel model;
  ASSERT_TRUE(f->BulkLoad(MakeAscendingRecords(12, 100, 100)).ok());
  ASSERT_TRUE(model.Load(MakeAscendingRecords(12, 100, 100)).ok());
  // Push 20 extra records into bucket ranges.
  for (Key k = 101; k <= 120; ++k) {
    ASSERT_TRUE(f->Insert(Record{k, k}).ok());
    ASSERT_TRUE(model.Insert(Record{k, k}).ok());
  }
  EXPECT_EQ(f->ScanAll(), model.ScanAll());
  std::vector<Record> got;
  ASSERT_TRUE(f->Scan(105, 115, &got).ok());
  EXPECT_EQ(got, model.Scan(105, 115));
  for (Key k = 101; k <= 120; ++k) EXPECT_TRUE(f->Contains(k));
}

TEST(OverflowFile, DeleteFromChainLeavesHole) {
  std::unique_ptr<OverflowFile> f = Make(2, 2);
  ASSERT_TRUE(f->BulkLoad(MakeAscendingRecords(4, 10, 10)).ok());
  for (Key k = 11; k <= 16; ++k) {
    ASSERT_TRUE(f->Insert(Record{k, k}).ok());
  }
  EXPECT_GT(f->chain_stats().overflow_pages, 0);
  ASSERT_TRUE(f->Delete(12).ok());
  EXPECT_FALSE(f->Contains(12));
  // Chain pages are never reclaimed (classic overflow decay).
  EXPECT_GT(f->chain_stats().overflow_pages, 0);
  EXPECT_TRUE(f->ValidateInvariants().ok());
}

TEST(OverflowFile, RandomizedChurnMatchesModel) {
  std::unique_ptr<OverflowFile> f = Make(16, 8);
  ReferenceModel model;
  Rng rng(29);
  const std::vector<Record> base = MakeUniformRecords(64, 1000, rng);
  ASSERT_TRUE(f->BulkLoad(base).ok());
  ASSERT_TRUE(model.Load(base).ok());
  const Trace trace = UniformMix(2000, 0.5, 0.3, 1000, rng);
  for (const Op& op : trace) {
    switch (op.kind) {
      case Op::Kind::kInsert:
        ASSERT_EQ(f->Insert(op.record).code(),
                  model.Insert(op.record).code());
        break;
      case Op::Kind::kDelete:
        ASSERT_EQ(f->Delete(op.record.key).code(),
                  model.Delete(op.record.key).code());
        break;
      default:
        ASSERT_EQ(f->Contains(op.record.key), model.Contains(op.record.key));
        break;
    }
  }
  ASSERT_TRUE(f->ValidateInvariants().ok());
  EXPECT_EQ(f->ScanAll(), model.ScanAll());
}

TEST(OverflowFile, ScanOverChainsPaysSeeks) {
  std::unique_ptr<OverflowFile> f = Make(8, 8);
  ASSERT_TRUE(f->BulkLoad(MakeAscendingRecords(48, 1000, 1000)).ok());
  Rng rng(7);
  for (const Op& op : HotspotSurge(64, 8001, 8800, rng)) {
    ASSERT_TRUE(f->Insert(op.record).ok());
  }
  f->ResetStats();
  std::vector<Record> out;
  ASSERT_TRUE(f->Scan(1, 1 << 20, &out).ok());
  EXPECT_EQ(out.size(), 48u + 64u);
  // The surged bucket's chain forces jumps into the overflow area.
  EXPECT_GT(f->stats().seeks, 2);
}

}  // namespace
}  // namespace dsf
