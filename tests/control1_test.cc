#include "core/control1.h"

#include <gtest/gtest.h>

#include "workload/reference_model.h"
#include "workload/workload.h"

namespace dsf {
namespace {

ControlBase::Config SmallConfig() {
  ControlBase::Config config;
  config.num_pages = 64;  // L = 6
  config.d = 4;
  config.D = 44;  // D - d = 40 > 18 = 3L
  config.block_size = 1;
  return config;
}

std::unique_ptr<Control1> Make(const ControlBase::Config& config) {
  StatusOr<std::unique_ptr<Control1>> c = Control1::Create(config);
  EXPECT_TRUE(c.ok()) << c.status();
  return std::move(*c);
}

TEST(Control1, CreateRejectsNarrowGap) {
  ControlBase::Config config = SmallConfig();
  config.D = config.d + 18;  // D - d == 3L: strict inequality fails
  EXPECT_TRUE(Control1::Create(config).status().IsInvalidArgument());
}

TEST(Control1, CreateRejectsBadGeometry) {
  ControlBase::Config config = SmallConfig();
  config.num_pages = 0;
  EXPECT_FALSE(Control1::Create(config).ok());
  config = SmallConfig();
  config.d = 0;
  EXPECT_FALSE(Control1::Create(config).ok());
  config = SmallConfig();
  config.block_size = 3;  // does not divide 64
  EXPECT_FALSE(Control1::Create(config).ok());
}

TEST(Control1, InsertGetDeleteRoundtrip) {
  std::unique_ptr<Control1> c = Make(SmallConfig());
  EXPECT_TRUE(c->Insert(Record{10, 100}).ok());
  EXPECT_TRUE(c->Insert(Record{20, 200}).ok());
  EXPECT_EQ(c->size(), 2);
  StatusOr<Record> r = c->Get(10);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->value, 100u);
  EXPECT_TRUE(c->Contains(20));
  EXPECT_FALSE(c->Contains(15));
  EXPECT_TRUE(c->Delete(10).ok());
  EXPECT_FALSE(c->Contains(10));
  EXPECT_EQ(c->size(), 1);
  EXPECT_TRUE(c->ValidateInvariants().ok());
}

TEST(Control1, DuplicateInsertAndMissingDelete) {
  std::unique_ptr<Control1> c = Make(SmallConfig());
  ASSERT_TRUE(c->Insert(Record{5, 1}).ok());
  EXPECT_TRUE(c->Insert(Record{5, 2}).IsAlreadyExists());
  EXPECT_TRUE(c->Delete(6).IsNotFound());
  EXPECT_TRUE(c->Get(6).status().IsNotFound());
  EXPECT_EQ(c->size(), 1);
}

TEST(Control1, CapacityBoundAtDTimesM) {
  ControlBase::Config config;
  config.num_pages = 16;  // L = 4
  config.d = 2;
  config.D = 2 + 13;  // gap: 13 > 12
  std::unique_ptr<Control1> c = Make(config);
  const int64_t cap = c->MaxRecords();
  EXPECT_EQ(cap, 32);
  for (int64_t i = 0; i < cap; ++i) {
    ASSERT_TRUE(c->Insert(Record{static_cast<Key>(i + 1), 0}).ok()) << i;
  }
  EXPECT_TRUE(c->Insert(Record{9999, 0}).IsCapacityExceeded());
  EXPECT_TRUE(c->ValidateInvariants().ok());
}

TEST(Control1, DescendingHotspotTriggersRedistributions) {
  std::unique_ptr<Control1> c = Make(SmallConfig());
  const Trace trace = DescendingInserts(200, 1000000);
  for (const Op& op : trace) {
    ASSERT_TRUE(c->Insert(op.record).ok());
    ASSERT_TRUE(c->ValidateInvariants().ok());
  }
  EXPECT_GT(c->stats().rebalances, 0);
  EXPECT_GT(c->stats().pages_redistributed, 0);
}

TEST(Control1, WorstCaseCommandCostGrowsWithFileSize) {
  // The deamortization motivation: some single CONTROL 1 command pays for
  // a redistribution spanning a large fraction of the file.
  ControlBase::Config config;
  config.num_pages = 256;  // L = 8
  config.d = 4;
  config.D = 4 + 25;  // gap: 25 > 24
  std::unique_ptr<Control1> c = Make(config);
  const Trace trace = DescendingInserts(c->MaxRecords(), 1 << 30);
  for (const Op& op : trace) {
    ASSERT_TRUE(c->Insert(op.record).ok());
  }
  // At least one command redistributed a region of >= M/4 pages (in page
  // accesses: reads + writes of that region).
  EXPECT_GT(c->command_stats().max_command_accesses, config.num_pages / 4);
  EXPECT_TRUE(c->ValidateInvariants().ok());
}

TEST(Control1, MatchesReferenceModelOnUniformMix) {
  std::unique_ptr<Control1> c = Make(SmallConfig());
  ReferenceModel model(c->MaxRecords());
  Rng rng(77);
  const Trace trace = UniformMix(1500, 0.55, 0.25, 400, rng);
  for (const Op& op : trace) {
    switch (op.kind) {
      case Op::Kind::kInsert:
        EXPECT_EQ(c->Insert(op.record).code(),
                  model.Insert(op.record).code());
        break;
      case Op::Kind::kDelete:
        EXPECT_EQ(c->Delete(op.record.key).code(),
                  model.Delete(op.record.key).code());
        break;
      default:
        EXPECT_EQ(c->Contains(op.record.key), model.Contains(op.record.key));
        break;
    }
  }
  EXPECT_EQ(*c->ScanAll(), model.ScanAll());
  EXPECT_TRUE(c->ValidateInvariants().ok());
}

TEST(Control1, BulkLoadThenOperate) {
  std::unique_ptr<Control1> c = Make(SmallConfig());
  const std::vector<Record> records = MakeAscendingRecords(200, 10, 10);
  ASSERT_TRUE(c->BulkLoad(records).ok());
  EXPECT_EQ(c->size(), 200);
  EXPECT_TRUE(c->ValidateInvariants().ok());
  // Interleave inserts between loaded keys.
  for (Key k = 15; k < 500; k += 10) {
    ASSERT_TRUE(c->Insert(Record{k, k}).ok());
  }
  EXPECT_TRUE(c->ValidateInvariants().ok());
  std::vector<Record> out;
  ASSERT_TRUE(c->Scan(10, 60, &out).ok());
  ASSERT_EQ(out.size(), 11u);  // 10,15,20,...,60
  EXPECT_EQ(out.front().key, 10u);
  EXPECT_EQ(out.back().key, 60u);
}

TEST(Control1, BulkLoadValidation) {
  std::unique_ptr<Control1> c = Make(SmallConfig());
  EXPECT_TRUE(c->BulkLoad(MakeAscendingRecords(c->MaxRecords() + 1))
                  .IsCapacityExceeded());
  EXPECT_TRUE(
      c->BulkLoad({Record{5, 0}, Record{5, 1}}).IsInvalidArgument());
  EXPECT_TRUE(
      c->BulkLoad({Record{5, 0}, Record{4, 1}}).IsInvalidArgument());
}

}  // namespace
}  // namespace dsf
