// Property-based sweeps: for a grid of file geometries, policies and
// workload shapes, replay a trace against the dense file and the
// reference model, checking after every command
//
//   * identical Status codes and contents (differential correctness),
//   * the full invariant battery I1-I7 (ValidateInvariants), which
//     includes BALANCE(d,D) at command end — Theorem 5.5 —
//   * and, for CONTROL 2, the worst-case per-command page-access bound
//     max <= 4*K*(J+1) + 2 (Corollary 5.6's O(J) cost).

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/control2.h"
#include "core/dense_file.h"
#include "workload/reference_model.h"
#include "workload/workload.h"

namespace dsf {
namespace {

struct Geometry {
  int64_t num_pages;
  int64_t d;
  int64_t D;
  int64_t block_size;  // 0 = auto
};

enum class Shape {
  kUniformMix,
  kDescending,
  kAscending,
  kSurge,
  kChurn,
  kZipf,
};

// Non-default algorithm knobs under test. Both trade performance, never
// correctness — the sweep must hold every invariant for them too. (The
// collapsed-hysteresis variant drops Fact 5.1's flag guarantee by design;
// Control2::ValidateInvariants skips that one check for it.)
enum class Variant {
  kDefault,
  kSmartPlacement,
  kCollapsedHysteresis,  // CONTROL 2 only
};

struct Case {
  Geometry geometry;
  DenseFile::Policy policy;
  Shape shape;
  uint64_t seed;
  Variant variant = Variant::kDefault;
};

std::string ShapeName(Shape shape) {
  switch (shape) {
    case Shape::kUniformMix: return "UniformMix";
    case Shape::kDescending: return "Descending";
    case Shape::kAscending: return "Ascending";
    case Shape::kSurge: return "Surge";
    case Shape::kChurn: return "Churn";
    case Shape::kZipf: return "Zipf";
  }
  return "?";
}

std::string PolicyTag(DenseFile::Policy policy) {
  switch (policy) {
    case DenseFile::Policy::kControl2: return "C2";
    case DenseFile::Policy::kControl1: return "C1";
    case DenseFile::Policy::kLocalShift: return "LS";
  }
  return "??";
}

std::string CaseName(const ::testing::TestParamInfo<Case>& info) {
  const Case& c = info.param;
  std::string name = PolicyTag(c.policy);
  name += "_M" + std::to_string(c.geometry.num_pages);
  name += "d" + std::to_string(c.geometry.d);
  name += "D" + std::to_string(c.geometry.D);
  if (c.geometry.block_size > 1) {
    name += "K" + std::to_string(c.geometry.block_size);
  }
  name += "_" + ShapeName(c.shape);
  if (c.variant == Variant::kSmartPlacement) name += "_Smart";
  if (c.variant == Variant::kCollapsedHysteresis) name += "_NoHyst";
  return name;
}

Trace MakeTrace(Shape shape, int64_t capacity, uint64_t seed) {
  Rng rng(seed);
  const int64_t ops = std::min<int64_t>(800, 3 * capacity);
  switch (shape) {
    case Shape::kUniformMix:
      return UniformMix(ops, 0.5, 0.3, static_cast<Key>(2 * capacity), rng);
    case Shape::kDescending:
      return DescendingInserts(std::min<int64_t>(ops, capacity), 1 << 28);
    case Shape::kAscending:
      return AscendingInserts(std::min<int64_t>(ops, capacity), 1000, 7);
    case Shape::kSurge:
      return HotspotSurge(std::min<int64_t>(ops, capacity), 1 << 20,
                          (1 << 20) + 8 * capacity, rng);
    case Shape::kChurn:
      return HotspotChurn(ops / 40, 20, 1 << 24);
    case Shape::kZipf:
      return ZipfInserts(ops, static_cast<Key>(4 * capacity), 0.9, rng);
  }
  return {};
}

class DenseFilePropertyTest : public ::testing::TestWithParam<Case> {};

TEST_P(DenseFilePropertyTest, TraceReplayKeepsAllInvariants) {
  const Case& c = GetParam();
  std::unique_ptr<DenseFile> dense_file;
  std::unique_ptr<Control2> raw_control2;
  ControlBase* control = nullptr;
  if (c.variant == Variant::kCollapsedHysteresis) {
    // The hysteresis knob lives on Control2 directly.
    Control2::Options options;
    options.config.num_pages = c.geometry.num_pages;
    options.config.d = c.geometry.d;
    options.config.D = c.geometry.D;
    options.config.block_size =
        c.geometry.block_size == 0 ? 1 : c.geometry.block_size;
    options.lower_threshold_thirds = kThirds2Of3;
    StatusOr<std::unique_ptr<Control2>> made = Control2::Create(options);
    ASSERT_TRUE(made.ok()) << made.status();
    raw_control2 = std::move(*made);
    control = raw_control2.get();
  } else {
    DenseFile::Options options;
    options.num_pages = c.geometry.num_pages;
    options.d = c.geometry.d;
    options.D = c.geometry.D;
    options.block_size = c.geometry.block_size;
    options.policy = c.policy;
    options.smart_placement = c.variant == Variant::kSmartPlacement;
    StatusOr<std::unique_ptr<DenseFile>> made = DenseFile::Create(options);
    ASSERT_TRUE(made.ok()) << made.status();
    dense_file = std::move(*made);
    control = &dense_file->control();
  }
  ControlBase& file = *control;
  ReferenceModel model(file.MaxRecords());

  const Trace trace = MakeTrace(c.shape, file.MaxRecords(), c.seed);
  int64_t step = 0;
  for (const Op& op : trace) {
    switch (op.kind) {
      case Op::Kind::kInsert:
        ASSERT_EQ(file.Insert(op.record).code(),
                  model.Insert(op.record).code())
            << "insert key " << op.record.key << " at step " << step;
        break;
      case Op::Kind::kDelete:
        ASSERT_EQ(file.Delete(op.record.key).code(),
                  model.Delete(op.record.key).code())
            << "delete key " << op.record.key << " at step " << step;
        break;
      case Op::Kind::kGet:
        ASSERT_EQ(file.Contains(op.record.key),
                  model.Contains(op.record.key))
            << "get key " << op.record.key << " at step " << step;
        break;
      case Op::Kind::kScan:
        break;
    }
    const Status invariants = file.ValidateInvariants();
    ASSERT_TRUE(invariants.ok())
        << invariants << " at step " << step << " ("
        << ShapeName(c.shape) << ")";
    ++step;
  }
  EXPECT_EQ(*file.ScanAll(), model.ScanAll());
  EXPECT_EQ(file.size(), model.size());

  if (c.policy == DenseFile::Policy::kControl2) {
    const auto& c2 = static_cast<const Control2&>(file);
    const int64_t bound = 4 * file.block_size() * (c2.J() + 1) + 2;
    EXPECT_LE(file.command_stats().max_command_accesses, bound)
        << "worst-case command cost exceeds the O(J) bound";
  }
}

constexpr Geometry kWide{64, 4, 44, 0};        // gap 40 > 18, K = 1
constexpr Geometry kTight{128, 3, 3 + 22, 0};  // gap 22 > 21, K = 1
constexpr Geometry kMacro{64, 4, 6, 8};        // gap 2: macro-blocks K = 8
constexpr Geometry kOdd{96, 2, 2 + 32, 0};     // non-power-of-two M

std::vector<Case> AllCases() {
  std::vector<Case> cases;
  uint64_t seed = 1000;
  constexpr Shape kAllShapes[] = {Shape::kUniformMix, Shape::kDescending,
                                  Shape::kAscending,  Shape::kSurge,
                                  Shape::kChurn,      Shape::kZipf};
  for (const Geometry& g : {kWide, kTight, kMacro, kOdd}) {
    for (const DenseFile::Policy policy :
         {DenseFile::Policy::kControl2, DenseFile::Policy::kControl1,
          DenseFile::Policy::kLocalShift}) {
      for (const Shape shape : kAllShapes) {
        cases.push_back(Case{g, policy, shape, ++seed, Variant::kDefault});
      }
    }
  }
  // Ablation variants on the wide geometry: they must preserve every
  // correctness invariant across all workload shapes.
  for (const Shape shape : kAllShapes) {
    cases.push_back(Case{kWide, DenseFile::Policy::kControl2, shape, ++seed,
                         Variant::kSmartPlacement});
    cases.push_back(Case{kWide, DenseFile::Policy::kControl2, shape, ++seed,
                         Variant::kCollapsedHysteresis});
    cases.push_back(Case{kWide, DenseFile::Policy::kLocalShift, shape,
                         ++seed, Variant::kSmartPlacement});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, DenseFilePropertyTest,
                         ::testing::ValuesIn(AllCases()), CaseName);

}  // namespace
}  // namespace dsf
