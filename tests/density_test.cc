// DensitySpec is the exact-arithmetic heart of the algorithms; these
// tests pin its thresholds to the concrete numbers the paper's Example
// 5.2 narrates (g values for d=9, D=18, M=8, L=3).

#include "core/density.h"

#include <gtest/gtest.h>

namespace dsf {
namespace {

DensitySpec Example52Spec() {
  StatusOr<DensitySpec> s = DensitySpec::Create(8, 9, 18);
  EXPECT_TRUE(s.ok());
  return *s;
}

TEST(DensitySpec, CreateValidatesArguments) {
  EXPECT_FALSE(DensitySpec::Create(0, 1, 2).ok());
  EXPECT_FALSE(DensitySpec::Create(8, 0, 2).ok());
  EXPECT_FALSE(DensitySpec::Create(8, 5, 5).ok());
  EXPECT_FALSE(DensitySpec::Create(8, 5, 4).ok());
  EXPECT_TRUE(DensitySpec::Create(1, 1, 2).ok());
}

TEST(DensitySpec, BasicAccessors) {
  const DensitySpec s = Example52Spec();
  EXPECT_EQ(s.num_pages(), 8);
  EXPECT_EQ(s.d(), 9);
  EXPECT_EQ(s.D(), 18);
  EXPECT_EQ(s.L(), 3);  // ceil(log2 8)
  EXPECT_EQ(s.MaxRecords(), 72);
}

TEST(DensitySpec, LIsFlooredAtOneForSinglePage) {
  StatusOr<DensitySpec> s = DensitySpec::Create(1, 2, 9);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->L(), 1);
}

TEST(DensitySpec, GapCondition) {
  // Example 5.2: D-d = 9 = 3L exactly — the strict inequality fails.
  EXPECT_FALSE(Example52Spec().SatisfiesGapCondition());
  StatusOr<DensitySpec> wide = DensitySpec::Create(8, 9, 19);
  ASSERT_TRUE(wide.ok());
  EXPECT_TRUE(wide->SatisfiesGapCondition());
}

TEST(DensitySpec, GMatchesPaperValuesAtLeaves) {
  const DensitySpec s = Example52Spec();
  // Leaf depth 3, L=3: g(leaf,0) = 9 + (2/3)*9 = 15; g(leaf,1/3) = 16;
  // g(leaf,2/3) = 17; g(leaf,1) = 18 = D.
  EXPECT_DOUBLE_EQ(s.G(3, 0.0), 15.0);
  EXPECT_DOUBLE_EQ(s.G(3, 1.0 / 3.0), 16.0);
  EXPECT_DOUBLE_EQ(s.G(3, 2.0 / 3.0), 17.0);
  EXPECT_DOUBLE_EQ(s.G(3, 1.0), 18.0);
  // Root: g(0,1) = d.
  EXPECT_DOUBLE_EQ(s.G(0, 1.0), 9.0);
}

TEST(DensitySpec, ExactLeafThresholdsFromExample52) {
  const DensitySpec s = Example52Spec();
  // p(L8)=17 >= g(L8,2/3)=17 raised L8's warning in the paper.
  EXPECT_TRUE(s.DensityAtLeast(17, 1, 3, kThirds2Of3));
  EXPECT_FALSE(s.DensityAtLeast(16, 1, 3, kThirds2Of3));
  // p(L8)=11 <= g(L8,1/3)=16 lowered it after the first SHIFT.
  EXPECT_TRUE(s.DensityAtMost(11, 1, 3, kThirds1Of3));
  EXPECT_TRUE(s.DensityAtMost(16, 1, 3, kThirds1Of3));
  EXPECT_FALSE(s.DensityAtMost(17, 1, 3, kThirds1Of3));
}

TEST(DensitySpec, ExactInternalThresholdsFromExample52) {
  const DensitySpec s = Example52Spec();
  // v3: depth 1, 4 pages. g(v3,2/3) = 11, g(v3,1/3) = 10, g(v3,1) = 12.
  EXPECT_TRUE(s.DensityAtLeast(44, 4, 1, kThirds2Of3));   // p = 11
  EXPECT_FALSE(s.DensityAtLeast(43, 4, 1, kThirds2Of3));  // p = 10.75
  EXPECT_TRUE(s.DensityAtMost(40, 4, 1, kThirds1Of3));    // p = 10
  EXPECT_FALSE(s.DensityAtMost(41, 4, 1, kThirds1Of3));   // p = 10.25
  EXPECT_TRUE(s.DensityAtMost(48, 4, 1, kThirds1));       // p = 12 = g(v3,1)
  EXPECT_FALSE(s.DensityAtMost(49, 4, 1, kThirds1));
}

TEST(DensitySpec, RootBalanceBoundIsD) {
  const DensitySpec s = Example52Spec();
  // Root depth 0: g(root,1) = d = 9 => N <= 72 over 8 pages.
  EXPECT_TRUE(s.DensityAtMost(72, 8, 0, kThirds1));
  EXPECT_FALSE(s.DensityAtMost(73, 8, 0, kThirds1));
}

TEST(DensitySpec, MovesUntilAtLeastMatchesExample52Shifts) {
  const DensitySpec s = Example52Spec();
  // SHIFT(L8) moved 6 records into L7 (9 -> 15 = g(leaf,0)).
  EXPECT_EQ(s.MovesUntilAtLeast(9, 1, 3, kThirds0), 6);
  // SHIFT(L1) moved 13 into L2 (2 -> 15).
  EXPECT_EQ(s.MovesUntilAtLeast(2, 1, 3, kThirds0), 13);
  // SHIFT(v3) stopped after 5 because p(v4) hit g(v4,0) = 12 (N 19 -> 24
  // over 2 pages at depth 2).
  EXPECT_EQ(s.MovesUntilAtLeast(19, 2, 2, kThirds0), 5);
  // Already at/above the threshold: zero moves allowed.
  EXPECT_EQ(s.MovesUntilAtLeast(16, 1, 3, kThirds0), 0);
  EXPECT_EQ(s.MovesUntilAtLeast(15, 1, 3, kThirds0), 0);
}

TEST(DensitySpec, ThresholdsAreMonotoneInR) {
  StatusOr<DensitySpec> s = DensitySpec::Create(64, 4, 40);
  ASSERT_TRUE(s.ok());
  for (int64_t depth = 0; depth <= s->L(); ++depth) {
    for (int64_t count = 0; count <= 40; ++count) {
      // If p >= g(r) for larger r, then certainly for smaller r.
      if (s->DensityAtLeast(count, 1, depth, kThirds1)) {
        EXPECT_TRUE(s->DensityAtLeast(count, 1, depth, kThirds2Of3));
        EXPECT_TRUE(s->DensityAtLeast(count, 1, depth, kThirds1Of3));
        EXPECT_TRUE(s->DensityAtLeast(count, 1, depth, kThirds0));
      }
    }
  }
}

TEST(DensitySpec, AtLeastAndAtMostAgreeOnBoundary) {
  StatusOr<DensitySpec> s = DensitySpec::Create(16, 3, 30);
  ASSERT_TRUE(s.ok());
  for (int64_t depth = 0; depth <= 4; ++depth) {
    for (int r3 : {kThirds0, kThirds1Of3, kThirds2Of3, kThirds1}) {
      for (int64_t count = 0; count <= 60; ++count) {
        const bool ge = s->DensityAtLeast(count, 2, depth, r3);
        const bool le = s->DensityAtMost(count, 2, depth, r3);
        // p is either < g, == g (both true), or > g.
        EXPECT_TRUE(ge || le);
      }
    }
  }
}

TEST(DensitySpec, RecommendedJScaling) {
  StatusOr<DensitySpec> s = DensitySpec::Create(1024, 10, 10 + 31);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->L(), 10);
  // ceil(90 * 100 / 31) = 291.
  EXPECT_EQ(s->RecommendedJ(90.0), 291);
  EXPECT_GE(s->RecommendedJ(0.001), 1);  // floored at 1
}

}  // namespace
}  // namespace dsf
