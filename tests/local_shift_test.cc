#include "core/local_shift.h"

#include <gtest/gtest.h>

#include "core/dense_file.h"
#include "workload/reference_model.h"
#include "workload/workload.h"

namespace dsf {
namespace {

ControlBase::Config SmallConfig() {
  ControlBase::Config config;
  config.num_pages = 16;
  config.d = 4;
  config.D = 8;  // narrow gap is fine: no gap condition here
  config.block_size = 1;
  return config;
}

std::unique_ptr<LocalShift> Make(const ControlBase::Config& config) {
  StatusOr<std::unique_ptr<LocalShift>> c = LocalShift::Create(config);
  EXPECT_TRUE(c.ok()) << c.status();
  return std::move(*c);
}

TEST(LocalShift, BasicRoundtrip) {
  std::unique_ptr<LocalShift> c = Make(SmallConfig());
  ASSERT_TRUE(c->Insert(Record{5, 50}).ok());
  ASSERT_TRUE(c->Insert(Record{3, 30}).ok());
  ASSERT_TRUE(c->Insert(Record{9, 90}).ok());
  EXPECT_EQ(c->size(), 3);
  StatusOr<Record> r = c->Get(3);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->value, 30u);
  EXPECT_TRUE(c->Insert(Record{3, 0}).IsAlreadyExists());
  EXPECT_TRUE(c->Delete(4).IsNotFound());
  EXPECT_TRUE(c->Delete(3).ok());
  EXPECT_TRUE(c->ValidateInvariants().ok());
}

TEST(LocalShift, DisplacesIntoRightGap) {
  std::unique_ptr<LocalShift> c = Make(SmallConfig());
  // Pack pages so one page is solid with a gap further right, then hit
  // the solid page.
  std::vector<std::vector<Record>> layout(16);
  for (int64_t i = 0; i < 8; ++i) {
    layout[4].push_back(Record{static_cast<Key>(100 + 2 * i), 0});
  }
  layout[6].push_back(Record{500, 0});
  ASSERT_TRUE(c->LoadLayout(layout).ok());
  ASSERT_TRUE(c->Insert(Record{101, 0}).ok());  // lands inside page 5
  EXPECT_EQ(c->stats().displaced_inserts, 1);
  EXPECT_GT(c->stats().blocks_traversed, 0);
  EXPECT_TRUE(c->ValidateInvariants().ok());
  EXPECT_TRUE(c->Contains(101));
  EXPECT_TRUE(c->Contains(114));  // the shifted boundary record survived
}

TEST(LocalShift, DisplacesIntoLeftGap) {
  std::unique_ptr<LocalShift> c = Make(SmallConfig());
  std::vector<std::vector<Record>> layout(16);
  // Solid pages 10..16; the only gaps are to the left.
  Key k = 1000;
  for (int64_t p = 9; p < 16; ++p) {
    for (int64_t i = 0; i < 8; ++i) layout[p].push_back(Record{k++, 0});
  }
  ASSERT_TRUE(c->LoadLayout(layout).ok());
  const int64_t before = c->size();
  EXPECT_TRUE(c->Insert(Record{1055, 1}).IsAlreadyExists());
  EXPECT_EQ(c->size(), before);
  ASSERT_TRUE(c->Insert(Record{999, 1}).ok());  // new min, page 10 full
  EXPECT_GE(c->stats().displaced_inserts, 1);
  EXPECT_TRUE(c->ValidateInvariants().ok());
  EXPECT_EQ(c->ScanAll()->front().key, 999u);
}

TEST(LocalShift, SolidPrefixShiftPreservesEveryRecord) {
  std::unique_ptr<LocalShift> c = Make(SmallConfig());
  ReferenceModel model(c->MaxRecords());
  // Descending inserts force repeated displacement through a solid run.
  const Trace trace = DescendingInserts(c->MaxRecords(), 1 << 20);
  for (const Op& op : trace) {
    ASSERT_TRUE(c->Insert(op.record).ok());
    ASSERT_TRUE(model.Insert(op.record).ok());
    ASSERT_TRUE(c->ValidateInvariants().ok());
  }
  EXPECT_TRUE(c->Insert(Record{1, 1}).IsCapacityExceeded());
  EXPECT_EQ(*c->ScanAll(), model.ScanAll());
  EXPECT_GT(c->stats().max_distance, 0);
}

TEST(LocalShift, MatchesReferenceModelOnUniformMix) {
  ControlBase::Config config;
  config.num_pages = 64;
  config.d = 6;
  config.D = 10;
  config.block_size = 1;
  std::unique_ptr<LocalShift> c = Make(config);
  ReferenceModel model(c->MaxRecords());
  Rng rng(55);
  const Trace trace = UniformMix(3000, 0.55, 0.25, 700, rng);
  for (const Op& op : trace) {
    switch (op.kind) {
      case Op::Kind::kInsert:
        ASSERT_EQ(c->Insert(op.record).code(),
                  model.Insert(op.record).code());
        break;
      case Op::Kind::kDelete:
        ASSERT_EQ(c->Delete(op.record.key).code(),
                  model.Delete(op.record.key).code());
        break;
      default:
        ASSERT_EQ(c->Contains(op.record.key), model.Contains(op.record.key));
        break;
    }
    ASSERT_TRUE(c->ValidateInvariants().ok());
  }
  EXPECT_EQ(*c->ScanAll(), model.ScanAll());
}

TEST(LocalShift, ExpectedCostSmallUnderStationaryUniformChurn) {
  // The [Fr79]/[HKW86] regime: a uniformly loaded file under uniformly
  // placed insert/delete churn keeps displacements short on average.
  ControlBase::Config config;
  config.num_pages = 256;
  config.d = 6;
  config.D = 12;
  config.block_size = 1;
  std::unique_ptr<LocalShift> c = Make(config);
  Rng rng(77);
  std::vector<Record> base =
      MakeUniformRecords(c->MaxRecords() / 2, 1 << 22, rng);
  for (Record& r : base) r.key *= 2;
  ASSERT_TRUE(c->BulkLoad(base).ok());
  std::vector<Key> live;
  for (int64_t i = 0; i < 4000; ++i) {
    const Key k = 2 * rng.Uniform(1 << 22) + 1;
    if (c->Insert(Record{k, k}).ok()) live.push_back(k);
    if (static_cast<int64_t>(live.size()) > 4) {
      const size_t victim = rng.Uniform(live.size());
      if (c->Delete(live[victim]).ok()) {
        live[victim] = live.back();
        live.pop_back();
      }
    }
  }
  EXPECT_LT(c->command_stats().MeanAccessesPerCommand(), 6.0);
  EXPECT_TRUE(c->ValidateInvariants().ok());
}

TEST(LocalShift, ClumpsWithoutInitialSpread) {
  // Filling from empty clumps records around the first insertion point —
  // the behaviour that motivates bulk-loading padded lists at uniform
  // density. Displacement distance grows with the clump.
  ControlBase::Config config;
  config.num_pages = 256;
  config.d = 6;
  config.D = 12;
  config.block_size = 1;
  std::unique_ptr<LocalShift> c = Make(config);
  Rng rng(78);
  std::vector<Record> records = MakeUniformRecords(c->MaxRecords(), 1 << 24,
                                                   rng);
  for (size_t i = records.size(); i > 1; --i) {
    std::swap(records[i - 1], records[rng.Uniform(i)]);
  }
  for (const Record& r : records) ASSERT_TRUE(c->Insert(r).ok());
  EXPECT_TRUE(c->ValidateInvariants().ok());
  EXPECT_GT(c->stats().max_distance, 8);  // long shifts through the clump
}

TEST(LocalShift, AvailableThroughDenseFileFacade) {
  DenseFile::Options options;
  options.num_pages = 32;
  options.d = 4;
  options.D = 6;  // would need macro-blocks under CONTROL 2; fine here
  options.policy = DenseFile::Policy::kLocalShift;
  StatusOr<std::unique_ptr<DenseFile>> f = DenseFile::Create(options);
  ASSERT_TRUE(f.ok()) << f.status();
  EXPECT_EQ((*f)->PolicyName(), "LOCALSHIFT");
  EXPECT_EQ((*f)->block_size(), 1);
  for (Key k = 1; k <= 100; ++k) {
    ASSERT_TRUE((*f)->Insert(k, k).ok());
  }
  EXPECT_TRUE((*f)->ValidateInvariants().ok());
}

}  // namespace
}  // namespace dsf
