// Kill-test sweep against the durable FileBackend.
//
// The crash_recovery_fuzz_test sweep proves recovery under *simulated*
// crashes (fault injection cuts off the in-memory device). This suite
// proves the same contract against the real OS-file backend with a real
// dead process: a forked child replays a seeded workload with
// FileBackend::Options::kill_after_writes = k, so the child SIGKILLs
// itself at the k-th physical pwrite boundary — no destructors, no
// flush-on-exit, exactly what a power cut leaves behind (modulo the
// kernel page cache, which survives process death; fdatasync ordering is
// what the barrier placement is for). The parent then reopens the file
// pair with DenseFile::Open (which runs CheckAndRepair), aligns the
// single ambiguous in-flight command against the repaired file, verifies
// contents match a reference model, and replays the rest of the trace in
// lockstep.
//
// Kill points are scheduled at write counts recorded from a clean run:
// EndCommand flushes the pending slot and issues an fdatasync, so the
// cumulative pwrite count at each op boundary is exact and deterministic.
// Points below W0 (the BulkLoad watermark) are skipped — a file killed
// mid-bulk-load never promised anything; the per-command crash contract
// starts at the first command.

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "analysis/auditor.h"
#include "core/dense_file.h"
#include "gtest/gtest.h"
#include "storage/file_backend.h"
#include "util/random.h"
#include "util/status.h"
#include "util/temp_dir.h"
#include "workload/reference_model.h"
#include "workload/workload.h"

namespace dsf {
namespace {

struct Config {
  DenseFile::Policy policy;
  int64_t cache_frames;
  bool direct_io;
};

DenseFile::Options FileOptions(const Config& config) {
  DenseFile::Options options;
  options.num_pages = 32;
  options.d = 4;
  options.D = 20;
  options.policy = config.policy;
  options.cache_frames = config.cache_frames;
  options.audit_every_command = true;
  return options;
}

FileBackend::Options BackendOptions(const std::string& dir,
                                    const Config& config,
                                    int64_t kill_after_writes = -1) {
  FileBackend::Options fb;
  fb.directory = dir;
  fb.direct_io = config.direct_io;
  fb.kill_after_writes = kill_after_writes;
  return fb;
}

Status ApplyToFile(DenseFile& file, const Op& op) {
  switch (op.kind) {
    case Op::Kind::kInsert:
      return file.Insert(op.record);
    case Op::Kind::kDelete:
      return file.Delete(op.record.key);
    case Op::Kind::kGet:
      return file.Get(op.record.key).status();
    case Op::Kind::kScan: {
      std::vector<Record> out;
      return file.Scan(op.record.key, op.scan_hi, &out);
    }
  }
  return Status::OK();
}

Status ApplyToModel(ReferenceModel& model, const Op& op) {
  switch (op.kind) {
    case Op::Kind::kInsert:
      return model.Insert(op.record);
    case Op::Kind::kDelete:
      return model.Delete(op.record.key);
    case Op::Kind::kGet:
      return model.Get(op.record.key).status();
    case Op::Kind::kScan:
      return Status::OK();
  }
  return Status::OK();
}

// The killed command may or may not have reached the device; both
// outcomes are valid. Resolve by asking the repaired file.
void AlignModelAfterKill(const Op& op, DenseFile& file,
                         ReferenceModel& model) {
  if (op.kind == Op::Kind::kInsert) {
    if (file.Contains(op.record.key) && !model.Contains(op.record.key)) {
      ASSERT_TRUE(model.Insert(op.record).ok());
    }
  } else if (op.kind == Op::Kind::kDelete) {
    if (!file.Contains(op.record.key) && model.Contains(op.record.key)) {
      ASSERT_TRUE(model.Delete(op.record.key).ok());
    }
  }
}

struct Workload {
  std::vector<Record> initial;
  Trace trace;
};

Workload MakeWorkload() {
  Workload w;
  // Same shape as the simulated crash sweep: a wide-stride load, an
  // ascending burst that overflows one block and forces multi-page
  // maintenance (the writes worth killing inside), then a uniform mix.
  Rng rng(20260807);
  w.initial = MakeAscendingRecords(80, 30, 30);
  w.trace = AscendingInserts(24, 601, 1);
  const Trace tail = UniformMix(60, 0.35, 0.55, 2700, rng);
  w.trace.insert(w.trace.end(), tail.begin(), tail.end());
  return w;
}

// Clean run: cumulative physical pwrites at BulkLoad and at every op
// boundary. Exact because EndCommand flushes the pending slot and syncs
// before returning.
struct WriteSchedule {
  int64_t after_load = 0;              // W0
  std::vector<int64_t> after_op;       // cumulative, one per trace op
  int64_t total() const { return after_op.empty() ? after_load
                                                  : after_op.back(); }
};

WriteSchedule CleanRunSchedule(const Config& config, const Workload& w,
                               const std::string& dir) {
  WriteSchedule schedule;
  DenseFile::Options options = FileOptions(config);
  options.backend_factory =
      FileBackend::CreateFactory(BackendOptions(dir, config));
  std::unique_ptr<DenseFile> file = *DenseFile::Create(options);
  const FileBackend* backend =
      static_cast<const FileBackend*>(file->storage_backend());
  EXPECT_TRUE(file->BulkLoad(w.initial).ok());
  schedule.after_load = backend->stats().pwrites;
  for (const Op& op : w.trace) {
    IgnoreStatus(ApplyToFile(*file, op));
    schedule.after_op.push_back(backend->stats().pwrites);
  }
  return schedule;
}

// Child half of one kill point. Never returns through gtest: _exit(0) on
// clean completion, SIGKILL (from inside WritePage) at the scheduled
// write, _exit(3) on unexpected setup failure.
[[noreturn]] void ChildReplay(const Config& config, const Workload& w,
                              const std::string& dir, int64_t kill_k) {
  DenseFile::Options options = FileOptions(config);
  options.backend_factory =
      FileBackend::CreateFactory(BackendOptions(dir, config, kill_k));
  StatusOr<std::unique_ptr<DenseFile>> created = DenseFile::Create(options);
  if (!created.ok()) ::_exit(3);
  DenseFile& file = **created;
  if (!file.BulkLoad(w.initial).ok()) ::_exit(3);
  for (const Op& op : w.trace) IgnoreStatus(ApplyToFile(file, op));
  ::_exit(0);
}

// Parent half: wait for the child's death, reopen + repair, resolve the
// ambiguous command, then finish the trace in lockstep with the model.
void VerifyAfterKill(const Config& config, const Workload& w,
                     const WriteSchedule& schedule, const std::string& dir,
                     int64_t kill_k, pid_t child, bool* kill_fired) {
  int wstatus = 0;
  ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
  if (WIFSIGNALED(wstatus)) {
    ASSERT_EQ(WTERMSIG(wstatus), SIGKILL) << "k=" << kill_k;
    *kill_fired = true;
  } else {
    // k at/after the last write: the child ran out of trace first.
    ASSERT_TRUE(WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0)
        << "k=" << kill_k << " wstatus=" << wstatus;
    ASSERT_GE(kill_k, schedule.total());
  }

  DenseFile::Options options = FileOptions(config);
  options.backend_factory =
      FileBackend::OpenFactory(BackendOptions(dir, config));
  StatusOr<std::unique_ptr<DenseFile>> reopened = DenseFile::Open(options);
  ASSERT_TRUE(reopened.ok()) << "k=" << kill_k << ": " << reopened.status();
  DenseFile& file = **reopened;
  // SIGKILL between two pwrites never tears a page: every completed
  // pwrite is all-or-nothing in the page cache. (Torn-page handling is
  // covered by storage_backend_test's CRC corruption cases.)
  EXPECT_TRUE(file.corrupt_pages_at_open().empty()) << "k=" << kill_k;
  ASSERT_TRUE(file.ValidateInvariants().ok()) << "k=" << kill_k;

  // Ops whose write watermark is <= k were fully durable before the kill
  // (their EndCommand flush completed); the first op past the watermark
  // is the single ambiguous command.
  ReferenceModel model(file.capacity());
  ASSERT_TRUE(model.Load(w.initial).ok());
  size_t resume = w.trace.size();
  for (size_t i = 0; i < w.trace.size(); ++i) {
    if (schedule.after_op[i] > kill_k) {
      resume = i;
      break;
    }
    IgnoreStatus(ApplyToModel(model, w.trace[i]));
  }
  if (resume < w.trace.size()) {
    AlignModelAfterKill(w.trace[resume], file, model);
    if (::testing::Test::HasFatalFailure()) return;
    ++resume;
  }
  ASSERT_EQ(*file.ScanAll(), model.ScanAll())
      << "k=" << kill_k << " diverged after repair (resume op " << resume
      << ")";

  // The survivor must keep honoring the contract: replay the unreached
  // tail in lockstep.
  for (size_t i = resume; i < w.trace.size(); ++i) {
    const Status file_status = ApplyToFile(file, w.trace[i]);
    const Status model_status = ApplyToModel(model, w.trace[i]);
    ASSERT_EQ(file_status.code(), model_status.code())
        << "k=" << kill_k << " tail op=" << i << " file=" << file_status
        << " model=" << model_status;
  }
  ASSERT_EQ(*file.ScanAll(), model.ScanAll()) << "k=" << kill_k;
  ASSERT_TRUE(file.Audit().ok()) << "k=" << kill_k;
}

class DurableKillSweep : public ::testing::TestWithParam<Config> {};

TEST_P(DurableKillSweep, EveryScheduledKillPointRecovers) {
  const Config config = GetParam();
  const Workload w = MakeWorkload();

  WriteSchedule schedule;
  {
    ScopedTempDir dir("dsf-kill-clean");
    schedule = CleanRunSchedule(config, w, dir.path());
  }
  ASSERT_GT(schedule.total(), schedule.after_load)
      << "trace produced no post-load writes";

  // ~30 points per config, spread across (W0, T], always including the
  // first post-load write and the clean-completion boundary. Four-plus
  // configs x 30 comfortably clears the 100-point acceptance floor.
  const int64_t first = schedule.after_load;
  const int64_t last = schedule.total();
  const int64_t stride = std::max<int64_t>(1, (last - first) / 28);
  std::vector<int64_t> kill_points;
  for (int64_t k = first; k < last; k += stride) kill_points.push_back(k);
  kill_points.push_back(last);  // child finishes; reopen of a clean close

  int64_t points_run = 0;
  bool kill_fired = false;
  for (const int64_t k : kill_points) {
    ScopedTempDir dir("dsf-kill");
    const pid_t child = ::fork();
    ASSERT_GE(child, 0) << "fork failed";
    if (child == 0) {
      ChildReplay(config, w, dir.path(), k);  // never returns
    }
    VerifyAfterKill(config, w, schedule, dir.path(), k, child, &kill_fired);
    if (HasFatalFailure()) return;
    ++points_run;
  }
  EXPECT_TRUE(kill_fired);
  EXPECT_GE(points_run, 26);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, DurableKillSweep,
    ::testing::Values(Config{DenseFile::Policy::kControl2, 0, false},
                      Config{DenseFile::Policy::kControl1, 0, false},
                      Config{DenseFile::Policy::kLocalShift, 0, false},
                      Config{DenseFile::Policy::kControl2, 4, false},
                      Config{DenseFile::Policy::kControl2, 0, true}),
    [](const ::testing::TestParamInfo<Config>& param_info) {
      std::string name;
      switch (param_info.param.policy) {
        case DenseFile::Policy::kControl2: name = "Control2"; break;
        case DenseFile::Policy::kControl1: name = "Control1"; break;
        case DenseFile::Policy::kLocalShift: name = "LocalShift"; break;
      }
      name += param_info.param.cache_frames == 0
                  ? "Direct"
                  : "Pool" + std::to_string(param_info.param.cache_frames);
      if (param_info.param.direct_io) name += "Odirect";
      return name;
    });

// Determinism guard for the schedule itself: two clean runs against two
// fresh directories must produce identical write watermarks, or the
// sweep's op attribution is fiction.
TEST(DurableKillSchedule, CleanRunWritesAreDeterministic) {
  const Config config{DenseFile::Policy::kControl2, 0, false};
  const Workload w = MakeWorkload();
  ScopedTempDir a("dsf-sched-a");
  ScopedTempDir b("dsf-sched-b");
  const WriteSchedule sa = CleanRunSchedule(config, w, a.path());
  const WriteSchedule sb = CleanRunSchedule(config, w, b.path());
  EXPECT_EQ(sa.after_load, sb.after_load);
  EXPECT_EQ(sa.after_op, sb.after_op);
}

}  // namespace
}  // namespace dsf
