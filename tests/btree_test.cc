#include "baseline/btree.h"

#include <gtest/gtest.h>

#include "workload/reference_model.h"
#include "workload/workload.h"

namespace dsf {
namespace {

std::unique_ptr<BTree> Make(int64_t leaf_capacity = 8,
                            int64_t fanout = 4) {
  BTree::Options options;
  options.leaf_capacity = leaf_capacity;
  options.internal_fanout = fanout;
  StatusOr<std::unique_ptr<BTree>> t = BTree::Create(options);
  EXPECT_TRUE(t.ok()) << t.status();
  return std::move(*t);
}

TEST(BTree, CreateValidatesOptions) {
  BTree::Options options;
  options.leaf_capacity = 1;
  options.internal_fanout = 4;
  EXPECT_FALSE(BTree::Create(options).ok());
  options.leaf_capacity = 8;
  options.internal_fanout = 2;
  EXPECT_FALSE(BTree::Create(options).ok());
}

TEST(BTree, EmptyTreeQueries) {
  std::unique_ptr<BTree> t = Make();
  EXPECT_EQ(t->size(), 0);
  EXPECT_EQ(t->height(), 0);
  EXPECT_TRUE(t->Get(1).status().IsNotFound());
  EXPECT_TRUE(t->Delete(1).IsNotFound());
  std::vector<Record> out;
  EXPECT_TRUE(t->Scan(1, 100, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(BTree, InsertSearchSmall) {
  std::unique_ptr<BTree> t = Make();
  for (Key k : {5, 1, 9, 3, 7}) {
    ASSERT_TRUE(t->Insert(Record{k, k * 10}).ok());
  }
  EXPECT_EQ(t->size(), 5);
  StatusOr<Record> r = t->Get(3);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->value, 30u);
  EXPECT_TRUE(t->Insert(Record{3, 99}).IsAlreadyExists());
  EXPECT_TRUE(t->ValidateInvariants().ok());
}

TEST(BTree, SplitsGrowHeight) {
  std::unique_ptr<BTree> t = Make(4, 4);
  for (Key k = 1; k <= 200; ++k) {
    ASSERT_TRUE(t->Insert(Record{k, k}).ok());
    ASSERT_TRUE(t->ValidateInvariants().ok()) << "after insert " << k;
  }
  EXPECT_GE(t->height(), 3);
  EXPECT_EQ(t->size(), 200);
}

TEST(BTree, DeleteShrinksToEmpty) {
  std::unique_ptr<BTree> t = Make(4, 4);
  for (Key k = 1; k <= 100; ++k) ASSERT_TRUE(t->Insert(Record{k, k}).ok());
  for (Key k = 1; k <= 100; ++k) {
    ASSERT_TRUE(t->Delete(k).ok()) << k;
    ASSERT_TRUE(t->ValidateInvariants().ok()) << "after delete " << k;
  }
  EXPECT_EQ(t->size(), 0);
}

TEST(BTree, DeleteInterleavedOrders) {
  std::unique_ptr<BTree> t = Make(4, 4);
  for (Key k = 1; k <= 128; ++k) ASSERT_TRUE(t->Insert(Record{k, k}).ok());
  // Delete evens descending, then odds ascending.
  for (Key k = 128; k >= 2; k -= 2) {
    ASSERT_TRUE(t->Delete(k).ok());
    ASSERT_TRUE(t->ValidateInvariants().ok());
  }
  for (Key k = 1; k <= 127; k += 2) {
    ASSERT_TRUE(t->Delete(k).ok());
    ASSERT_TRUE(t->ValidateInvariants().ok());
  }
  EXPECT_EQ(t->size(), 0);
}

TEST(BTree, ScanMatchesModel) {
  std::unique_ptr<BTree> t = Make(6, 5);
  ReferenceModel model;
  Rng rng(31);
  for (const Record& r : MakeUniformRecords(300, 5000, rng)) {
    ASSERT_TRUE(t->Insert(r).ok());
    ASSERT_TRUE(model.Insert(r).ok());
  }
  EXPECT_EQ(t->ScanAll(), model.ScanAll());
  std::vector<Record> got;
  ASSERT_TRUE(t->Scan(1000, 3000, &got).ok());
  EXPECT_EQ(got, model.Scan(1000, 3000));
}

TEST(BTree, RandomizedChurnMatchesModel) {
  std::unique_ptr<BTree> t = Make(8, 6);
  ReferenceModel model;
  Rng rng(47);
  const Trace trace = UniformMix(4000, 0.5, 0.3, 600, rng);
  for (const Op& op : trace) {
    switch (op.kind) {
      case Op::Kind::kInsert:
        ASSERT_EQ(t->Insert(op.record).code(),
                  model.Insert(op.record).code());
        break;
      case Op::Kind::kDelete:
        ASSERT_EQ(t->Delete(op.record.key).code(),
                  model.Delete(op.record.key).code());
        break;
      default:
        ASSERT_EQ(t->Contains(op.record.key), model.Contains(op.record.key));
        break;
    }
  }
  ASSERT_TRUE(t->ValidateInvariants().ok());
  EXPECT_EQ(t->ScanAll(), model.ScanAll());
}

TEST(BTree, BulkLoadBuildsValidTree) {
  std::unique_ptr<BTree> t = Make(8, 6);
  const std::vector<Record> records = MakeAscendingRecords(500);
  ASSERT_TRUE(t->BulkLoad(records).ok());
  EXPECT_EQ(t->size(), 500);
  EXPECT_TRUE(t->ValidateInvariants().ok());
  EXPECT_EQ(t->ScanAll(), records);
  // Bulk-loaded trees answer point queries too.
  EXPECT_TRUE(t->Contains(250));
  EXPECT_FALSE(t->Contains(501));
  // And accept further updates.
  ASSERT_TRUE(t->Insert(Record{100000, 1}).ok());
  ASSERT_TRUE(t->Delete(250).ok());
  EXPECT_TRUE(t->ValidateInvariants().ok());
}

TEST(BTree, BulkLoadRejectsUnsortedInput) {
  std::unique_ptr<BTree> t = Make();
  EXPECT_TRUE(t->BulkLoad({Record{2, 0}, Record{1, 0}}).IsInvalidArgument());
}

TEST(BTree, AccountingChargesDescents) {
  std::unique_ptr<BTree> t = Make(4, 4);
  for (Key k = 1; k <= 64; ++k) ASSERT_TRUE(t->Insert(Record{k, k}).ok());
  t->ResetStats();
  ASSERT_TRUE(t->Contains(32));
  // A lookup costs exactly height() node reads.
  EXPECT_EQ(t->stats().page_reads, t->height());
  EXPECT_EQ(t->stats().page_writes, 0);
}

TEST(BTree, RandomInsertionOrderScattersLeavesForScans) {
  // The paper's disk-arm argument: after random inserts, logically
  // adjacent leaves sit at scattered node addresses, so a long scan pays
  // roughly one seek per leaf.
  std::unique_ptr<BTree> t = Make(8, 8);
  Rng rng(91);
  std::vector<Record> records = MakeUniformRecords(2000, 1 << 20, rng);
  // MakeUniformRecords returns sorted records; shuffle so the *insertion
  // order* is random and splits allocate leaf ids out of key order.
  for (size_t i = records.size(); i > 1; --i) {
    std::swap(records[i - 1], records[rng.Uniform(i)]);
  }
  for (const Record& r : records) {
    ASSERT_TRUE(t->Insert(r).ok());
  }
  t->ResetStats();
  std::vector<Record> out;
  ASSERT_TRUE(t->Scan(1, 1 << 20, &out).ok());
  EXPECT_EQ(out.size(), 2000u);
  const int64_t leaves_touched = t->stats().page_reads - t->height() + 1;
  // Most leaf hops are seeks (not adjacent addresses).
  EXPECT_GT(t->stats().seeks, leaves_touched / 2);
}

}  // namespace
}  // namespace dsf
