// Cross-structure integration: the same workload driven through every
// structure in the repository — dense file under both controls, B+-tree,
// overflow file, naive sequential file — must end in identical logical
// contents, and each structure's own invariants must hold throughout.
//
// The dense files run fully instrumented (one shared MetricsRegistry,
// `policy="..."` labels), and the first scenario dumps the end-of-run
// snapshot as JSON — CI uploads it as the `integration-metrics`
// artifact, so every push leaves an inspectable metrics trace of the
// cross-structure run ($DSF_METRICS_SNAPSHOT_PATH overrides the
// default integration_metrics.json in the test's working directory).

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>

#include "baseline/btree.h"
#include "baseline/naive_sequential.h"
#include "baseline/overflow_file.h"
#include "core/dense_file.h"
#include "obs/export.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "workload/reference_model.h"
#include "workload/workload.h"

namespace dsf {
namespace {

class Fixture {
 public:
  Fixture() {
    DenseFile::Options dense;
    dense.num_pages = 64;
    dense.d = 4;
    dense.D = 44;
    dense.metrics = &registry_;
    dense.policy = DenseFile::Policy::kControl2;
    dense.metrics_label = "policy=\"control2\"";
    control2_ = std::move(*DenseFile::Create(dense));
    dense.policy = DenseFile::Policy::kControl1;
    dense.metrics_label = "policy=\"control1\"";
    control1_ = std::move(*DenseFile::Create(dense));

    BTree::Options btree;
    btree.leaf_capacity = 44;
    btree.internal_fanout = 16;
    btree_ = std::move(*BTree::Create(btree));

    OverflowFile::Options overflow;
    overflow.num_primary_pages = 64;
    overflow.page_capacity = 44;
    overflow_ = std::move(*OverflowFile::Create(overflow));

    NaiveSequentialFile::Options naive;
    naive.num_pages = 64;
    naive.page_capacity = 44;
    naive_ = std::move(*NaiveSequentialFile::Create(naive));

    model_ = std::make_unique<ReferenceModel>(control2_->capacity());
  }

  void Load(const std::vector<Record>& records) {
    ASSERT_TRUE(control2_->BulkLoad(records).ok());
    ASSERT_TRUE(control1_->BulkLoad(records).ok());
    ASSERT_TRUE(btree_->BulkLoad(records).ok());
    ASSERT_TRUE(overflow_->BulkLoad(records).ok());
    ASSERT_TRUE(naive_->BulkLoad(records).ok());
    ASSERT_TRUE(model_->Load(records).ok());
  }

  void Apply(const Op& op) {
    switch (op.kind) {
      case Op::Kind::kInsert: {
        const StatusCode expected = model_->Insert(op.record).code();
        ASSERT_EQ(control2_->Insert(op.record).code(), expected);
        ASSERT_EQ(control1_->Insert(op.record).code(), expected);
        ASSERT_EQ(btree_->Insert(op.record).code(), expected);
        ASSERT_EQ(overflow_->Insert(op.record).code(), expected);
        ASSERT_EQ(naive_->Insert(op.record).code(), expected);
        break;
      }
      case Op::Kind::kDelete: {
        const StatusCode expected = model_->Delete(op.record.key).code();
        ASSERT_EQ(control2_->Delete(op.record.key).code(), expected);
        ASSERT_EQ(control1_->Delete(op.record.key).code(), expected);
        ASSERT_EQ(btree_->Delete(op.record.key).code(), expected);
        ASSERT_EQ(overflow_->Delete(op.record.key).code(), expected);
        ASSERT_EQ(naive_->Delete(op.record.key).code(), expected);
        break;
      }
      default: {
        const bool expected = model_->Contains(op.record.key);
        ASSERT_EQ(control2_->Contains(op.record.key), expected);
        ASSERT_EQ(control1_->Contains(op.record.key), expected);
        ASSERT_EQ(btree_->Contains(op.record.key), expected);
        ASSERT_EQ(overflow_->Contains(op.record.key), expected);
        ASSERT_EQ(naive_->Contains(op.record.key), expected);
        break;
      }
    }
  }

  void CheckAllStructuresAgree() {
    const std::vector<Record> expected = model_->ScanAll();
    EXPECT_EQ(*control2_->ScanAll(), expected);
    EXPECT_EQ(*control1_->ScanAll(), expected);
    EXPECT_EQ(btree_->ScanAll(), expected);
    EXPECT_EQ(overflow_->ScanAll(), expected);
    EXPECT_EQ(*naive_->ScanAll(), expected);
    EXPECT_TRUE(control2_->ValidateInvariants().ok());
    EXPECT_TRUE(control1_->ValidateInvariants().ok());
    EXPECT_TRUE(btree_->ValidateInvariants().ok());
    EXPECT_TRUE(overflow_->ValidateInvariants().ok());
    EXPECT_TRUE(naive_->ValidateInvariants().ok());
  }

  void CheckRangeScansAgree(Key lo, Key hi) {
    const std::vector<Record> expected = model_->Scan(lo, hi);
    std::vector<Record> got;
    ASSERT_TRUE(control2_->Scan(lo, hi, &got).ok());
    EXPECT_EQ(got, expected);
    got.clear();
    ASSERT_TRUE(btree_->Scan(lo, hi, &got).ok());
    EXPECT_EQ(got, expected);
    got.clear();
    ASSERT_TRUE(overflow_->Scan(lo, hi, &got).ok());
    EXPECT_EQ(got, expected);
    got.clear();
    ASSERT_TRUE(naive_->Scan(lo, hi, &got).ok());
    EXPECT_EQ(got, expected);
  }

  // Cross-checks the per-policy metric series against the files' own
  // command accounting, then writes the snapshot JSON for CI to pick up.
  void WriteMetricsSnapshot() {
    const MetricsSnapshot snapshot = registry_.Snapshot();
    int64_t c2_commands = -1;
    int64_t c1_commands = -1;
    for (const auto& c : snapshot.counters) {
      if (c.name == std::string(kMetricCommands) + "{policy=\"control2\"}") {
        c2_commands = c.value;
      }
      if (c.name == std::string(kMetricCommands) + "{policy=\"control1\"}") {
        c1_commands = c.value;
      }
    }
    EXPECT_EQ(c2_commands, control2_->command_stats().commands);
    EXPECT_EQ(c1_commands, control1_->command_stats().commands);

    const char* env = std::getenv("DSF_METRICS_SNAPSHOT_PATH");
    const std::string path =
        (env != nullptr) ? env : "integration_metrics.json";
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot open " << path;
    out << ToJsonSnapshot(snapshot) << "\n";
    ASSERT_TRUE(out.good()) << "write failed: " << path;
  }

  MetricsRegistry registry_;
  std::unique_ptr<DenseFile> control2_;
  std::unique_ptr<DenseFile> control1_;
  std::unique_ptr<BTree> btree_;
  std::unique_ptr<OverflowFile> overflow_;
  std::unique_ptr<NaiveSequentialFile> naive_;
  std::unique_ptr<ReferenceModel> model_;
};

TEST(Integration, MixedChurnAfterBulkLoad) {
  Fixture fx;
  Rng rng(2024);
  fx.Load(MakeUniformRecords(100, 2000, rng));
  // Churn keys drawn from a 150-key space: with the 100 loaded records the
  // population stays below the dense file's hard d*M = 256 capacity, so
  // every structure sees identical status codes.
  const Trace trace = UniformMix(1200, 0.45, 0.35, 150, rng);
  for (const Op& op : trace) fx.Apply(op);
  fx.CheckAllStructuresAgree();
  fx.CheckRangeScansAgree(500, 1500);
  fx.CheckRangeScansAgree(1, 10);
  fx.CheckRangeScansAgree(5000, 9000);  // empty range
  fx.WriteMetricsSnapshot();
}

TEST(Integration, SurgeThenDrain) {
  Fixture fx;
  Rng rng(7);
  fx.Load(MakeAscendingRecords(96, 1000, 1000));
  const Trace surge = HotspotSurge(120, 50001, 52000, rng);
  for (const Op& op : surge) fx.Apply(op);
  fx.CheckAllStructuresAgree();
  // Drain the surge again.
  for (const Op& op : surge) {
    Op del = op;
    del.kind = Op::Kind::kDelete;
    fx.Apply(del);
  }
  fx.CheckAllStructuresAgree();
}

TEST(Integration, AppendHeavyPhaseThenPointChurn) {
  Fixture fx;
  Rng rng(99);
  for (const Op& op : AscendingInserts(150, 10, 10)) fx.Apply(op);
  fx.CheckAllStructuresAgree();
  const Trace churn = UniformMix(600, 0.3, 0.5, 100, rng);
  for (const Op& op : churn) fx.Apply(op);
  fx.CheckAllStructuresAgree();
  fx.CheckRangeScansAgree(100, 900);
}

}  // namespace
}  // namespace dsf
