// The auditor's contract, pinned from both sides.
//
// Positive: long random workloads under every configuration (CONTROL 1 /
// CONTROL 2, direct / pooled, sharded) stay audit-clean after every
// command, and the report proves it looked (checks_run, pages_walked).
// Negative: each seeded corruption — a bumped rank counter, records
// swapped across a page boundary, a dangling DEST pointer, a reordered
// dirty list, a leaked pin — is caught with the exact violation kind and
// location, not just "something is wrong". That precision is what makes
// the audit_every_command hook a usable debugging tool: the report names
// the broken invariant and where it broke.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analysis/auditor.h"
#include "core/control2.h"
#include "core/dense_file.h"
#include "shard/sharded_dense_file.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"
#include "util/random.h"
#include "workload/workload.h"

namespace dsf {
namespace {

// --- Control2 fixture, mirroring tests/corruption_test.cc -------------

std::unique_ptr<Control2> MakeLoaded() {
  Control2::Options options;
  options.config.num_pages = 16;  // block_size 1 -> 16 blocks, L = 4
  options.config.d = 4;
  options.config.D = 17;
  StatusOr<std::unique_ptr<Control2>> c = Control2::Create(options);
  EXPECT_TRUE(c.ok()) << c.status();
  EXPECT_TRUE((*c)->BulkLoad(MakeAscendingRecords(48, 10, 10)).ok());
  return std::move(*c);
}

Address FirstLoadedPage(const ControlBase& control) {
  for (Address p = 1; p <= control.file().num_pages(); ++p) {
    if (!control.file().Peek(p).empty()) return p;
  }
  ADD_FAILURE() << "file unexpectedly empty";
  return 1;
}

Address NextLoadedPageAfter(const ControlBase& control, Address p) {
  for (Address q = p + 1; q <= control.file().num_pages(); ++q) {
    if (!control.file().Peek(q).empty()) return q;
  }
  ADD_FAILURE() << "no second loaded page";
  return p;
}

// --- Positive: clean runs that demonstrably covered the file ----------

TEST(Auditor, CleanAuditCountsItsWork) {
  std::unique_ptr<Control2> c = MakeLoaded();
  const AuditReport report = Auditor::AuditControl(*c);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.pages_walked, 16);
  // Rough floor: page checks + leaf checks + per-node checks all ticked.
  EXPECT_GT(report.checks_run, 16 * 2 + 16 + 31);
  EXPECT_TRUE(report.ToStatus().ok());
}

Status ApplyOp(DenseFile& file, const Op& op) {
  switch (op.kind) {
    case Op::Kind::kInsert:
      return file.Insert(op.record);
    case Op::Kind::kDelete:
      return file.Delete(op.record.key);
    case Op::Kind::kGet:
      return file.Get(op.record.key).status();
    case Op::Kind::kScan: {
      std::vector<Record> out;
      return file.Scan(op.record.key, op.scan_hi, &out);
    }
  }
  return Status::OK();
}

bool ExpectedOutcome(const Status& s) {
  return s.ok() || s.IsAlreadyExists() || s.IsNotFound() ||
         s.IsCapacityExceeded();
}

// Every command of a mixed random workload runs under the auditor
// (audit_every_command): the first command to leave any invariant broken
// would surface Corruption here. Covers both controls, direct and pooled.
TEST(Auditor, EveryCommandAuditsCleanAcrossConfigurations) {
  const struct {
    DenseFile::Policy policy;
    int64_t cache_frames;
  } configs[] = {
      {DenseFile::Policy::kControl1, 0},
      {DenseFile::Policy::kControl1, 8},
      {DenseFile::Policy::kControl2, 0},
      {DenseFile::Policy::kControl2, 8},
  };
  for (const auto& config : configs) {
    SCOPED_TRACE("policy=" + std::to_string(static_cast<int>(config.policy)) +
                 " frames=" + std::to_string(config.cache_frames));
    DenseFile::Options options;
    options.num_pages = 32;
    options.d = 4;
    options.D = 20;
    options.policy = config.policy;
    options.cache_frames = config.cache_frames;
    options.audit_every_command = true;
    StatusOr<std::unique_ptr<DenseFile>> file = DenseFile::Create(options);
    ASSERT_TRUE(file.ok()) << file.status();
    ASSERT_TRUE((*file)->BulkLoad(MakeAscendingRecords(60, 2, 3)).ok());

    Rng rng(20260807);
    const Trace trace = UniformMix(/*num_ops=*/2500, /*insert_fraction=*/0.45,
                                   /*delete_fraction=*/0.35,
                                   /*key_space=*/200, rng);
    for (const Op& op : trace) {
      const Status s = ApplyOp(**file, op);
      ASSERT_TRUE(ExpectedOutcome(s)) << s.ToString();
    }
    const AuditReport report = (*file)->Audit();
    EXPECT_TRUE(report.ok()) << report.ToString();
    EXPECT_GT(report.pages_walked, 0);
  }
}

TEST(Auditor, ShardedWorkloadAuditsClean) {
  ShardedDenseFile::Options options;
  options.num_shards = 4;
  options.key_space = 400;
  options.shard.num_pages = 32;
  options.shard.d = 4;
  options.shard.D = 20;
  options.shard.audit_every_command = true;
  StatusOr<std::unique_ptr<ShardedDenseFile>> file =
      ShardedDenseFile::Create(options);
  ASSERT_TRUE(file.ok()) << file.status();

  Rng rng(7);
  const Trace trace = UniformMix(/*num_ops=*/2000, /*insert_fraction=*/0.5,
                                 /*delete_fraction=*/0.3, /*key_space=*/400,
                                 rng);
  for (const Op& op : trace) {
    Status s = Status::OK();
    switch (op.kind) {
      case Op::Kind::kInsert: s = (*file)->Insert(op.record); break;
      case Op::Kind::kDelete: s = (*file)->Delete(op.record.key); break;
      case Op::Kind::kGet: s = (*file)->Get(op.record.key).status(); break;
      case Op::Kind::kScan: break;
    }
    ASSERT_TRUE(ExpectedOutcome(s)) << s.ToString();
  }
  const AuditReport report = (*file)->Audit();
  EXPECT_TRUE(report.ok()) << report.ToString();
  // All four shards were walked.
  EXPECT_EQ(report.pages_walked, 4 * 32);
}

// --- Negative: seeded corruptions, exact diagnoses --------------------

TEST(Auditor, DetectsBumpedRankCounter) {
  std::unique_ptr<Control2> c = MakeLoaded();
  const Address block = 1;
  const int leaf = c->calibrator().LeafOf(block);
  const int64_t true_count = c->calibrator().Count(leaf);
  // Lie to the calibrator: one phantom record (ancestor aggregates are
  // re-derived by SyncLeaf, so the lie is internally consistent — only
  // the physical walk can expose it).
  c->mutable_calibrator_for_testing().SyncLeaf(
      block, true_count + 1, c->calibrator().MinKeyOf(leaf),
      c->calibrator().MaxKeyOf(leaf));

  const AuditReport report = Auditor::AuditControl(*c);
  ASSERT_TRUE(report.Has(AuditViolationKind::kRankCounterStale))
      << report.ToString();
  const AuditViolation* v =
      report.Find(AuditViolationKind::kRankCounterStale);
  EXPECT_EQ(v->block, block);
  EXPECT_EQ(v->node, leaf);
  EXPECT_EQ(v->expected, true_count);      // physical truth
  EXPECT_EQ(v->found, true_count + 1);     // the stale counter
}

TEST(Auditor, DetectsStaleFenceKeys) {
  std::unique_ptr<Control2> c = MakeLoaded();
  const Address block = 1;
  const int leaf = c->calibrator().LeafOf(block);
  c->mutable_calibrator_for_testing().SyncLeaf(
      block, c->calibrator().Count(leaf), c->calibrator().MinKeyOf(leaf),
      c->calibrator().MaxKeyOf(leaf) + 1);

  const AuditReport report = Auditor::AuditControl(*c);
  ASSERT_TRUE(report.Has(AuditViolationKind::kFenceKeysStale))
      << report.ToString();
  EXPECT_EQ(report.Find(AuditViolationKind::kFenceKeysStale)->block, block);
  EXPECT_FALSE(report.Has(AuditViolationKind::kRankCounterStale));
}

TEST(Auditor, DetectsRecordSwapAcrossPageBoundary) {
  std::unique_ptr<Control2> c = MakeLoaded();
  const Address p = FirstLoadedPage(*c);
  const Address q = NextLoadedPageAfter(*c, p);
  Page& lo_page = c->file().RawPage(p);
  Page& hi_page = c->file().RawPage(q);
  const Record lo = lo_page.records().back();   // max of p
  const Record hi = hi_page.records().front();  // min of q
  ASSERT_LT(lo.key, hi.key);
  ASSERT_TRUE(lo_page.Erase(lo.key).ok());
  ASSERT_TRUE(hi_page.Erase(hi.key).ok());
  ASSERT_TRUE(lo_page.Insert(hi).ok());
  ASSERT_TRUE(hi_page.Insert(lo).ok());

  const AuditReport report = Auditor::AuditControl(*c);
  ASSERT_TRUE(report.Has(AuditViolationKind::kGlobalOrderViolation))
      << report.ToString();
  // Pinpointed at the page whose minimum dips below its predecessor.
  EXPECT_EQ(report.Find(AuditViolationKind::kGlobalOrderViolation)->page, q);
  // Counts were untouched, so the rank counters still agree.
  EXPECT_FALSE(report.Has(AuditViolationKind::kRankCounterStale));
}

TEST(Auditor, DetectsStaleWarningFlag) {
  std::unique_ptr<Control2> c = MakeLoaded();
  // 3 records on one page is far below g(v,1/3): a raised flag violates
  // Fact 5.1a. Give it a legal DEST so only the flag itself is wrong.
  const int leaf = c->calibrator().LeafOf(1);
  const int father = c->calibrator().Parent(leaf);
  c->CorruptWarningForTesting(leaf, true);
  c->CorruptDestForTesting(leaf, c->calibrator().RangeLo(father));

  const AuditReport report = Auditor::AuditControl(*c);
  ASSERT_TRUE(report.Has(AuditViolationKind::kWarningStale))
      << report.ToString();
  EXPECT_EQ(report.Find(AuditViolationKind::kWarningStale)->node, leaf);
  EXPECT_FALSE(report.Has(AuditViolationKind::kDestOutOfRange));
  // SetWarning maintains SELECT's subtree aggregates, so the corruption
  // hook must not trip that check.
  EXPECT_FALSE(report.Has(AuditViolationKind::kSelectAggregateStale));
}

TEST(Auditor, DetectsDanglingDestPointer) {
  std::unique_ptr<Control2> c = MakeLoaded();
  const int leaf = c->calibrator().LeafOf(1);
  const int father = c->calibrator().Parent(leaf);
  const Address outside = c->calibrator().RangeHi(father) + 1;
  c->CorruptWarningForTesting(leaf, true);
  c->CorruptDestForTesting(leaf, outside);

  const AuditReport report = Auditor::AuditControl(*c);
  ASSERT_TRUE(report.Has(AuditViolationKind::kDestOutOfRange))
      << report.ToString();
  const AuditViolation* v = report.Find(AuditViolationKind::kDestOutOfRange);
  EXPECT_EQ(v->node, leaf);
  EXPECT_EQ(v->found, static_cast<int64_t>(outside));
}

TEST(Auditor, DetectsRootWarning) {
  std::unique_ptr<Control2> c = MakeLoaded();
  c->CorruptWarningForTesting(c->calibrator().root(), true);
  const AuditReport report = Auditor::AuditControl(*c);
  EXPECT_TRUE(report.Has(AuditViolationKind::kRootWarning))
      << report.ToString();
}

// --- Buffer-pool audits ------------------------------------------------

TEST(Auditor, DetectsReorderedDirtyList) {
  PageFile file(/*num_pages=*/8, /*page_capacity=*/4);
  BufferPool pool(&file, {.num_frames = 4});
  // Dirty two frames in a known order...
  for (Address a : {Address{1}, Address{2}}) {
    StatusOr<PageGuard> guard = pool.PinWrite(a, "auditor_test");
    ASSERT_TRUE(guard.ok()) << guard.status();
    ASSERT_TRUE(guard->mutable_page()
                    ->Insert(Record{static_cast<Key>(a * 10), static_cast<Value>(a)})
                    .ok());
  }
  ASSERT_TRUE(Auditor::AuditPool(pool).ok());
  // ...then swap them, simulating a write-back reordering bug. The list
  // now runs against the first-dirtied order crash recovery requires.
  pool.ReorderDirtyListForTesting();
  const AuditReport report = Auditor::AuditPool(pool);
  ASSERT_TRUE(report.Has(AuditViolationKind::kDirtyOrderViolation))
      << report.ToString();
  EXPECT_FALSE(report.Has(AuditViolationKind::kDirtyListCorrupt));
}

TEST(Auditor, DetectsPinnedFrameAtQuiescence) {
  PageFile file(/*num_pages=*/8, /*page_capacity=*/4);
  BufferPool pool(&file, {.num_frames = 4});
  StatusOr<PageGuard> held = pool.PinRead(3, "auditor_test_leak");
  ASSERT_TRUE(held.ok()) << held.status();

  // Mid-operation (pins legitimate): accounting must balance, no leak.
  AuditOptions mid;
  mid.expect_quiescent_pool = false;
  EXPECT_TRUE(Auditor::AuditPool(pool, mid).ok());

  // Between commands the same pin is a leak, attributed to its owner.
  const AuditReport report = Auditor::AuditPool(pool);
  ASSERT_TRUE(report.Has(AuditViolationKind::kPinnedFrameAtQuiescence))
      << report.ToString();
  const AuditViolation* v =
      report.Find(AuditViolationKind::kPinnedFrameAtQuiescence);
  EXPECT_EQ(v->page, 3);
  EXPECT_NE(v->detail.find("auditor_test_leak"), std::string::npos);

  held->Release();
  EXPECT_TRUE(Auditor::AuditPool(pool).ok());
}

// --- The audit_every_command hook surfaces corruption as a Status ------

TEST(Auditor, AuditEveryCommandSurfacesCorruption) {
  DenseFile::Options options;
  options.num_pages = 32;
  options.d = 4;
  options.D = 20;
  options.policy = DenseFile::Policy::kControl2;
  options.audit_every_command = true;
  StatusOr<std::unique_ptr<DenseFile>> file = DenseFile::Create(options);
  ASSERT_TRUE(file.ok()) << file.status();
  ASSERT_TRUE((*file)->BulkLoad(MakeAscendingRecords(60, 2, 3)).ok());
  ASSERT_TRUE((*file)->Insert(Record{1, 1}).ok());

  // Poison a fence far from where the next insert lands; the command
  // itself succeeds, the post-command audit does not.
  ControlBase& control = (*file)->control();
  const Address far_block = control.num_blocks();
  const int leaf = control.calibrator().LeafOf(far_block);
  ASSERT_GT(control.calibrator().Count(leaf), 0) << "far block empty";
  control.mutable_calibrator_for_testing().SyncLeaf(
      far_block, control.calibrator().Count(leaf),
      control.calibrator().MinKeyOf(leaf),
      control.calibrator().MaxKeyOf(leaf) + 1000);

  const Status s = (*file)->Insert(Record{3, 3});
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption) << s.ToString();
  EXPECT_NE(s.message().find("FenceKeysStale"), std::string::npos) << s;
}

}  // namespace
}  // namespace dsf
