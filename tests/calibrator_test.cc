#include "core/calibrator.h"

#include <gtest/gtest.h>

namespace dsf {
namespace {

TEST(Calibrator, EightPageStructureMatchesFigure3) {
  Calibrator cal(8);
  EXPECT_EQ(cal.num_pages(), 8);
  EXPECT_EQ(cal.node_count(), 15);
  const int root = cal.root();
  EXPECT_EQ(cal.RangeLo(root), 1);
  EXPECT_EQ(cal.RangeHi(root), 8);
  EXPECT_EQ(cal.Depth(root), 0);
  const int v2 = cal.Left(root);
  const int v3 = cal.Right(root);
  EXPECT_EQ(cal.RangeLo(v2), 1);
  EXPECT_EQ(cal.RangeHi(v2), 4);
  EXPECT_EQ(cal.RangeLo(v3), 5);
  EXPECT_EQ(cal.RangeHi(v3), 8);
  EXPECT_EQ(cal.Depth(v3), 1);
  EXPECT_FALSE(cal.IsRightChild(v2));
  EXPECT_TRUE(cal.IsRightChild(v3));
  // Leaves cover single pages at depth 3.
  for (Address p = 1; p <= 8; ++p) {
    const int leaf = cal.LeafOf(p);
    EXPECT_TRUE(cal.IsLeaf(leaf));
    EXPECT_EQ(cal.RangeLo(leaf), p);
    EXPECT_EQ(cal.RangeHi(leaf), p);
    EXPECT_EQ(cal.Depth(leaf), 3);
    EXPECT_EQ(cal.PagesIn(leaf), 1);
  }
}

TEST(Calibrator, NonPowerOfTwoSplitsPerPaperRule) {
  // [1,5] -> [1,3] + [4,5]; [1,3] -> [1,2] + [3,3].
  Calibrator cal(5);
  EXPECT_EQ(cal.node_count(), 9);
  const int left = cal.Left(cal.root());
  const int right = cal.Right(cal.root());
  EXPECT_EQ(cal.RangeHi(left), 3);
  EXPECT_EQ(cal.RangeLo(right), 4);
  const int ll = cal.Left(left);
  const int lr = cal.Right(left);
  EXPECT_EQ(cal.RangeHi(ll), 2);
  EXPECT_EQ(cal.RangeLo(lr), 3);
  EXPECT_TRUE(cal.IsLeaf(lr));
}

TEST(Calibrator, SinglePageIsRootLeaf) {
  Calibrator cal(1);
  EXPECT_EQ(cal.node_count(), 1);
  EXPECT_TRUE(cal.IsLeaf(cal.root()));
  EXPECT_EQ(cal.LeafOf(1), cal.root());
}

TEST(Calibrator, SyncLeafPropagatesCounts) {
  Calibrator cal(8);
  cal.SyncLeaf(3, 5, 30, 34);
  cal.SyncLeaf(7, 2, 70, 71);
  EXPECT_EQ(cal.TotalRecords(), 7);
  EXPECT_EQ(cal.Count(cal.LeafOf(3)), 5);
  const int v2 = cal.Left(cal.root());
  const int v3 = cal.Right(cal.root());
  EXPECT_EQ(cal.Count(v2), 5);
  EXPECT_EQ(cal.Count(v3), 2);
  EXPECT_TRUE(cal.ValidateAggregates().ok());
  // Update in place.
  cal.SyncLeaf(3, 1, 30, 30);
  EXPECT_EQ(cal.TotalRecords(), 3);
  EXPECT_EQ(cal.Count(v2), 1);
}

TEST(Calibrator, FenceKeysAggregateMinAndMax) {
  Calibrator cal(8);
  cal.SyncLeaf(2, 3, 20, 25);
  cal.SyncLeaf(6, 4, 60, 66);
  const int root = cal.root();
  EXPECT_EQ(cal.MinKeyOf(root), 20u);
  EXPECT_EQ(cal.MaxKeyOf(root), 66u);
  cal.SyncLeaf(2, 0, 0, 0);  // empty page 2
  EXPECT_EQ(cal.MinKeyOf(root), 60u);
  EXPECT_TRUE(cal.ValidateAggregates().ok());
}

TEST(Calibrator, FirstNonEmptyPageWithMaxGE) {
  Calibrator cal(8);
  cal.SyncLeaf(2, 3, 20, 25);
  cal.SyncLeaf(5, 2, 50, 55);
  cal.SyncLeaf(8, 1, 80, 80);
  EXPECT_EQ(cal.FirstNonEmptyPageWithMaxGE(1), 2);
  EXPECT_EQ(cal.FirstNonEmptyPageWithMaxGE(25), 2);
  EXPECT_EQ(cal.FirstNonEmptyPageWithMaxGE(26), 5);
  EXPECT_EQ(cal.FirstNonEmptyPageWithMaxGE(55), 5);
  EXPECT_EQ(cal.FirstNonEmptyPageWithMaxGE(56), 8);
  EXPECT_EQ(cal.FirstNonEmptyPageWithMaxGE(81), 0);
}

TEST(Calibrator, FirstAndLastNonEmptyInRange) {
  Calibrator cal(8);
  cal.SyncLeaf(2, 1, 20, 20);
  cal.SyncLeaf(5, 1, 50, 50);
  cal.SyncLeaf(6, 1, 60, 60);
  EXPECT_EQ(cal.FirstNonEmptyPageIn(1, 8), 2);
  EXPECT_EQ(cal.FirstNonEmptyPageIn(3, 8), 5);
  EXPECT_EQ(cal.FirstNonEmptyPageIn(3, 4), 0);
  EXPECT_EQ(cal.LastNonEmptyPageIn(1, 8), 6);
  EXPECT_EQ(cal.LastNonEmptyPageIn(1, 5), 5);
  EXPECT_EQ(cal.LastNonEmptyPageIn(1, 4), 2);
  EXPECT_EQ(cal.LastNonEmptyPageIn(3, 4), 0);
  EXPECT_EQ(cal.FirstNonEmptyPageIn(7, 3), 0);  // inverted range
}

TEST(Calibrator, CountInRange) {
  Calibrator cal(8);
  cal.SyncLeaf(1, 4, 10, 13);
  cal.SyncLeaf(4, 2, 40, 41);
  cal.SyncLeaf(8, 7, 80, 86);
  EXPECT_EQ(cal.CountInRange(1, 8), 13);
  EXPECT_EQ(cal.CountInRange(1, 4), 6);
  EXPECT_EQ(cal.CountInRange(2, 7), 2);
  EXPECT_EQ(cal.CountInRange(5, 7), 0);
  EXPECT_EQ(cal.CountInRange(8, 8), 7);
}

TEST(Calibrator, PathToLeafWalksRootDown) {
  Calibrator cal(8);
  const std::vector<int> path = cal.PathToLeaf(6);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path.front(), cal.root());
  EXPECT_EQ(path.back(), cal.LeafOf(6));
  for (size_t i = 1; i < path.size(); ++i) {
    EXPECT_EQ(cal.Parent(path[i]), path[i - 1]);
    EXPECT_GE(6, cal.RangeLo(path[i]));
    EXPECT_LE(6, cal.RangeHi(path[i]));
  }
}

TEST(Calibrator, LowestCommonAncestor) {
  Calibrator cal(8);
  EXPECT_EQ(cal.LowestCommonAncestor(1, 8), cal.root());
  EXPECT_EQ(cal.LowestCommonAncestor(5, 8), cal.Right(cal.root()));
  EXPECT_EQ(cal.LowestCommonAncestor(3, 3), cal.LeafOf(3));
  const int lca12 = cal.LowestCommonAncestor(1, 2);
  EXPECT_EQ(cal.RangeLo(lca12), 1);
  EXPECT_EQ(cal.RangeHi(lca12), 2);
}

TEST(Calibrator, DepthsAndParentsConsistentForLargeTrees) {
  Calibrator cal(100);
  EXPECT_EQ(cal.node_count(), 199);
  for (int v = 1; v < cal.node_count(); ++v) {
    const int p = cal.Parent(v);
    EXPECT_EQ(cal.Depth(v), cal.Depth(p) + 1);
    EXPECT_GE(cal.RangeLo(v), cal.RangeLo(p));
    EXPECT_LE(cal.RangeHi(v), cal.RangeHi(p));
    if (!cal.IsLeaf(v)) {
      EXPECT_EQ(cal.Parent(cal.Left(v)), v);
      EXPECT_EQ(cal.Parent(cal.Right(v)), v);
      // Children partition the parent's range.
      EXPECT_EQ(cal.RangeHi(cal.Left(v)) + 1, cal.RangeLo(cal.Right(v)));
    }
  }
}

TEST(Calibrator, SearchQueriesScanCorrectlyOnBigSparseFile) {
  Calibrator cal(97);
  // Populate a few scattered pages.
  cal.SyncLeaf(13, 1, 130, 130);
  cal.SyncLeaf(55, 1, 550, 550);
  cal.SyncLeaf(96, 1, 960, 960);
  EXPECT_EQ(cal.FirstNonEmptyPageIn(1, 97), 13);
  EXPECT_EQ(cal.FirstNonEmptyPageIn(14, 97), 55);
  EXPECT_EQ(cal.LastNonEmptyPageIn(1, 95), 55);
  EXPECT_EQ(cal.FirstNonEmptyPageWithMaxGE(131), 55);
  EXPECT_EQ(cal.FirstNonEmptyPageWithMaxGE(961), 0);
  EXPECT_EQ(cal.CountInRange(13, 55), 2);
}

}  // namespace
}  // namespace dsf
