// Ingest staging tests: the memtable itself, the merged read view a
// staged DenseFile must present (shadowing, tombstone hiding, cursor and
// DeleteRange across the staging/file boundary), the bounded drain
// scheduler (forced drains, tombstone credit at capacity, certified
// steps), the dsf_staging_* metric flow, staging volatility across a
// simulated crash, and the per-shard staging split in ShardedDenseFile.
//
// The differential test replays a UniformMix against the ReferenceModel
// with audit_every_command + certify_bound on and periodic FlushStaging
// durability points — the strictest harness the repo has: every command
// is certified against the Theorem-5.7 budget and every mutation is
// followed by a full invariant audit of file + staging.

#include "ingest/memtable.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "analysis/auditor.h"
#include "core/dense_file.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "shard/sharded_dense_file.h"
#include "util/random.h"
#include "workload/reference_model.h"
#include "workload/workload.h"

namespace dsf {
namespace {

DenseFile::Options StagedOptions(int64_t staging_entries = 16,
                                 int64_t cache_frames = 0) {
  DenseFile::Options options;
  options.num_pages = 64;
  options.d = 4;
  options.D = 44;
  options.staging_entries = staging_entries;
  options.cache_frames = cache_frames;
  return options;
}

std::unique_ptr<DenseFile> Make(const DenseFile::Options& options) {
  StatusOr<std::unique_ptr<DenseFile>> f = DenseFile::Create(options);
  EXPECT_TRUE(f.ok()) << f.status();
  return std::move(*f);
}

// ---------------------------------------------------------------------------
// Memtable unit tests.

TEST(Memtable, KeepsStrictKeyOrderAndCounts) {
  Memtable table({/*max_entries=*/8, /*max_bytes=*/0});
  EXPECT_EQ(table.capacity(), 8);
  ASSERT_TRUE(table.Add(Record{5, 50}, StagedEntry::Kind::kInsert).ok());
  ASSERT_TRUE(table.Add(Record{1, 10}, StagedEntry::Kind::kTombstone).ok());
  ASSERT_TRUE(table.Add(Record{3, 30}, StagedEntry::Kind::kUpdate).ok());
  ASSERT_TRUE(table.ValidateOrder().ok());
  EXPECT_EQ(table.size(), 3);
  EXPECT_EQ(table.insert_count(), 1);
  EXPECT_EQ(table.update_count(), 1);
  EXPECT_EQ(table.tombstone_count(), 1);
  EXPECT_EQ(table.net_size(), 0);  // one insert, one tombstone
  EXPECT_EQ(table.entries()[0].record.key, 1);
  EXPECT_EQ(table.entries()[1].record.key, 3);
  EXPECT_EQ(table.entries()[2].record.key, 5);
  ASSERT_NE(table.Find(3), nullptr);
  EXPECT_EQ(table.Find(3)->record.value, 30);
  EXPECT_EQ(table.Find(4), nullptr);
}

TEST(Memtable, CapacityIsSmallerOfTheTwoBudgets) {
  const int64_t entry_bytes = static_cast<int64_t>(sizeof(StagedEntry));
  Memtable byte_bound({/*max_entries=*/100, /*max_bytes=*/4 * entry_bytes});
  EXPECT_EQ(byte_bound.capacity(), 4);
  for (Key k = 1; k <= 4; ++k) {
    ASSERT_TRUE(byte_bound.Add(Record{k, k}, StagedEntry::Kind::kInsert).ok());
  }
  EXPECT_TRUE(byte_bound.full());
  EXPECT_TRUE(byte_bound.Add(Record{5, 5}, StagedEntry::Kind::kInsert)
                  .IsCapacityExceeded());
}

TEST(Memtable, ReassignAndEraseKeepCountsHonest) {
  Memtable table({/*max_entries=*/8, /*max_bytes=*/0});
  ASSERT_TRUE(table.Add(Record{2, 20}, StagedEntry::Kind::kInsert).ok());
  EXPECT_TRUE(table.Reassign(2, Record{2, 21}, StagedEntry::Kind::kUpdate));
  EXPECT_EQ(table.insert_count(), 0);
  EXPECT_EQ(table.update_count(), 1);
  EXPECT_EQ(table.Find(2)->record.value, 21);
  EXPECT_FALSE(table.Reassign(9, Record{9, 90}, StagedEntry::Kind::kInsert));
  EXPECT_TRUE(table.Erase(2));
  EXPECT_FALSE(table.Erase(2));
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.update_count(), 0);
}

// ---------------------------------------------------------------------------
// Merged read view.

TEST(IngestStaging, StagedInsertShadowsDurableFile) {
  std::unique_ptr<DenseFile> f = Make(StagedOptions());
  ASSERT_TRUE(f->BulkLoad(MakeAscendingRecords(20, 2, 2)).ok());  // evens
  const int64_t durable = f->control().size();
  ASSERT_TRUE(f->Insert(5, 55).ok());
  EXPECT_EQ(f->staging_size(), 1);
  EXPECT_EQ(f->control().size(), durable);  // not in the file yet
  EXPECT_EQ(f->size(), durable + 1);        // but in the merged view
  StatusOr<Value> got = f->Get(5);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 55);
  EXPECT_TRUE(f->Contains(5));
  // Duplicate insert must fail against the merged view, staged or not.
  EXPECT_TRUE(f->Insert(5, 56).IsAlreadyExists());
  EXPECT_TRUE(f->Insert(4, 44).IsAlreadyExists());
}

TEST(IngestStaging, StagedTombstoneHidesDurableRecord) {
  std::unique_ptr<DenseFile> f = Make(StagedOptions());
  ASSERT_TRUE(f->BulkLoad(MakeAscendingRecords(20, 2, 2)).ok());
  ASSERT_TRUE(f->Delete(8).ok());
  EXPECT_TRUE(f->control().Contains(8));  // still durable
  EXPECT_FALSE(f->Contains(8));           // hidden in the merged view
  EXPECT_TRUE(f->Get(8).status().IsNotFound());
  EXPECT_TRUE(f->Delete(8).IsNotFound());  // double delete
  std::vector<Record> out;
  ASSERT_TRUE(f->Scan(2, 12, &out).ok());
  for (const Record& r : out) EXPECT_NE(r.key, 8u);
  // Draining applies the tombstone for real.
  ASSERT_TRUE(f->FlushStaging().ok());
  EXPECT_FALSE(f->control().Contains(8));
}

TEST(IngestStaging, StagedDeleteOfStagedInsertAnnihilates) {
  std::unique_ptr<DenseFile> f = Make(StagedOptions());
  ASSERT_TRUE(f->Insert(7, 70).ok());
  ASSERT_EQ(f->staging_size(), 1);
  ASSERT_TRUE(f->Delete(7).ok());
  EXPECT_EQ(f->staging_size(), 0);  // insert and delete cancelled in RAM
  EXPECT_GE(f->staging_stats().annihilations, 1);
  EXPECT_FALSE(f->Contains(7));
  EXPECT_EQ(f->size(), 0);
}

TEST(IngestStaging, CursorMergesAcrossStagingBoundary) {
  std::unique_ptr<DenseFile> f = Make(StagedOptions(32));
  ASSERT_TRUE(f->BulkLoad(MakeAscendingRecords(20, 2, 2)).ok());  // 2..40
  // Stage odd keys interleaving the durable evens, plus a tombstone and
  // an update, without tripping the drain trigger.
  ASSERT_TRUE(f->Insert(5, 55).ok());
  ASSERT_TRUE(f->Insert(11, 111).ok());
  ASSERT_TRUE(f->Insert(41, 411).ok());  // beyond the durable tail
  ASSERT_TRUE(f->Delete(6).ok());
  ASSERT_TRUE(f->Delete(10).ok());
  ASSERT_TRUE(f->Insert(10, 100).ok());  // re-insert: staged update
  ASSERT_GT(f->staging_size(), 0);

  ReferenceModel model;
  ASSERT_TRUE(model.Load(MakeAscendingRecords(20, 2, 2)).ok());
  ASSERT_TRUE(model.Insert(Record{5, 55}).ok());
  ASSERT_TRUE(model.Insert(Record{11, 111}).ok());
  ASSERT_TRUE(model.Insert(Record{41, 411}).ok());
  ASSERT_TRUE(model.Delete(6).ok());
  ASSERT_TRUE(model.Delete(10).ok());
  ASSERT_TRUE(model.Insert(Record{10, 100}).ok());

  std::vector<Record> walked;
  for (Cursor cur = f->NewCursor(); cur.Valid(); cur.Next()) {
    walked.push_back(cur.record());
  }
  EXPECT_EQ(walked, model.ScanAll());
  // A cursor starting inside the staged overlay.
  Cursor mid = f->NewCursor(11);
  ASSERT_TRUE(mid.Valid());
  EXPECT_EQ(mid.record().key, 11u);
  EXPECT_EQ(mid.record().value, 111u);
}

TEST(IngestStaging, DeleteRangeSpansStagedAndDurable) {
  std::unique_ptr<DenseFile> f = Make(StagedOptions(32));
  ASSERT_TRUE(f->BulkLoad(MakeAscendingRecords(20, 2, 2)).ok());  // 2..40
  ASSERT_TRUE(f->Insert(7, 70).ok());
  ASSERT_TRUE(f->Insert(13, 130).ok());
  ASSERT_TRUE(f->Delete(12).ok());  // staged tombstone inside the range
  // Range [6, 14] holds durable 6, 8, 10, 14 (12 tombstoned) and staged
  // 7, 13: six merged-visible records.
  StatusOr<int64_t> removed = f->DeleteRange(6, 14);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 6);
  std::vector<Record> out;
  ASSERT_TRUE(f->Scan(6, 14, &out).ok());
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(f->Contains(4));
  EXPECT_TRUE(f->Contains(16));
  ASSERT_TRUE(f->ValidateInvariants().ok());
}

// ---------------------------------------------------------------------------
// Drain scheduler.

TEST(IngestStaging, TinyCapacityForcesDrainsAndLosesNothing) {
  std::unique_ptr<DenseFile> f = Make(StagedOptions(/*staging_entries=*/4));
  for (Key k = 1; k <= 200; ++k) {
    ASSERT_TRUE(f->Insert(k, k * 10).ok()) << "key " << k;
  }
  EXPECT_GT(f->staging_stats().drain_steps, 0);
  ASSERT_TRUE(f->FlushStaging().ok());
  EXPECT_EQ(f->staging_size(), 0);
  EXPECT_EQ(f->control().size(), 200);
  ASSERT_TRUE(f->ValidateInvariants().ok());
  for (Key k = 1; k <= 200; ++k) {
    StatusOr<Value> got = f->Get(k);
    ASSERT_TRUE(got.ok()) << "key " << k;
    EXPECT_EQ(*got, k * 10);
  }
}

TEST(IngestStaging, DrainedStepsStayInsideCertifiedBudget) {
  DenseFile::Options options = StagedOptions(/*staging_entries=*/32,
                                             /*cache_frames=*/16);
  options.certify_bound = true;
  std::unique_ptr<DenseFile> f = Make(options);
  for (Key k = 1; k <= 150; ++k) {
    ASSERT_TRUE(f->Insert(k, k).ok());
  }
  ASSERT_TRUE(f->FlushStaging().ok());
  ASSERT_NE(f->bound_report(), nullptr);
  EXPECT_TRUE(f->bound_report()->ok()) << "bound violations recorded";
  EXPECT_GT(f->bound_budget(), 0);
  EXPECT_LE(f->command_stats().max_command_accesses, f->bound_budget());
}

TEST(IngestStaging, TombstoneCreditAdmitsInsertAtCapacity) {
  std::unique_ptr<DenseFile> f = Make(StagedOptions(/*staging_entries=*/8));
  const int64_t capacity = f->capacity();
  std::vector<Record> full;
  for (Key k = 1; k <= capacity; ++k) full.push_back(Record{2 * k, k});
  ASSERT_TRUE(f->BulkLoad(full).ok());
  // Merged-capacity accounting: a staged tombstone frees the slot the
  // staged insert needs, even though the durable file is still full when
  // the insert drains.
  ASSERT_TRUE(f->Delete(2).ok());       // staged tombstone
  ASSERT_TRUE(f->Insert(3, 33).ok());   // staged insert into the credit
  EXPECT_TRUE(f->Insert(5, 55).IsCapacityExceeded());
  ASSERT_TRUE(f->FlushStaging().ok());
  EXPECT_EQ(f->control().size(), capacity);
  EXPECT_FALSE(f->Contains(2));
  EXPECT_TRUE(f->Contains(3));
  ASSERT_TRUE(f->ValidateInvariants().ok());
}

// ---------------------------------------------------------------------------
// Differential storm under the strictest harness.

TEST(IngestStaging, DifferentialMixWithAuditAndCertification) {
  DenseFile::Options options = StagedOptions(/*staging_entries=*/32,
                                             /*cache_frames=*/32);
  options.audit_every_command = true;
  options.certify_bound = true;
  std::unique_ptr<DenseFile> f = Make(options);
  ReferenceModel model(f->capacity());
  Rng rng(271828);
  const Key key_space = f->capacity();
  const Trace trace = UniformMix(/*num_ops=*/1200, /*insert_fraction=*/0.45,
                                 /*delete_fraction=*/0.35, key_space, rng);
  int64_t step = 0;
  for (const Op& op : trace) {
    switch (op.kind) {
      case Op::Kind::kInsert:
        ASSERT_EQ(f->Insert(op.record).code(), model.Insert(op.record).code())
            << "insert key " << op.record.key << " at step " << step;
        break;
      case Op::Kind::kDelete:
        ASSERT_EQ(f->Delete(op.record.key).code(),
                  model.Delete(op.record.key).code())
            << "delete key " << op.record.key << " at step " << step;
        break;
      case Op::Kind::kGet:
        ASSERT_EQ(f->Contains(op.record.key), model.Contains(op.record.key))
            << "get key " << op.record.key << " at step " << step;
        break;
      case Op::Kind::kScan: {
        std::vector<Record> out;
        ASSERT_TRUE(f->Scan(op.record.key, op.scan_hi, &out).ok());
        ASSERT_EQ(out, model.Scan(op.record.key, op.scan_hi))
            << "scan at step " << step;
        break;
      }
    }
    if (step % 150 == 149) {
      // Periodic durability point: drain everything, then the merged
      // view and the durable view must agree with the model.
      ASSERT_TRUE(f->FlushStaging().ok()) << "at step " << step;
      ASSERT_EQ(f->staging_size(), 0);
      ASSERT_EQ(*f->ScanAll(), model.ScanAll()) << "at step " << step;
    }
    ++step;
  }
  ASSERT_TRUE(f->Flush().ok());
  EXPECT_EQ(*f->ScanAll(), model.ScanAll());
  EXPECT_EQ(f->size(), model.size());
  ASSERT_NE(f->bound_report(), nullptr);
  EXPECT_TRUE(f->bound_report()->ok());
  EXPECT_TRUE(f->Audit().ok()) << "final audit";
}

// ---------------------------------------------------------------------------
// Metrics, volatility, sharding.

TEST(IngestStaging, StagingMetricsFlow) {
  MetricsRegistry registry;
  DenseFile::Options options = StagedOptions(/*staging_entries=*/8);
  options.metrics = &registry;
  std::unique_ptr<DenseFile> f = Make(options);
  ASSERT_TRUE(f->Insert(1, 1).ok());
  ASSERT_TRUE(f->Insert(2, 2).ok());
  ASSERT_TRUE(f->Get(1).ok());  // staged hit
  ASSERT_TRUE(f->Delete(2).ok());  // annihilation
  ASSERT_TRUE(f->FlushStaging().ok());
  EXPECT_EQ(registry.FindOrCreateCounter(kMetricStagingPuts)->Value(),
            f->staging_stats().puts);
  EXPECT_GE(registry.FindOrCreateCounter(kMetricStagingHits)->Value(), 1);
  EXPECT_GE(
      registry.FindOrCreateCounter(kMetricStagingAnnihilations)->Value(), 1);
  EXPECT_GE(
      registry.FindOrCreateCounter(kMetricStagingDrainSteps)->Value(), 1);
  EXPECT_EQ(registry.FindOrCreateCounter(kMetricStagingDrainedEntries)->Value(),
            f->staging_stats().drained_entries);
  EXPECT_EQ(registry.FindOrCreateGauge(kMetricStagingEntries)->Value(), 0);
}

TEST(IngestStaging, CrashLosesStagedEntriesOnly) {
  DenseFile::Options options = StagedOptions(/*staging_entries=*/16,
                                             /*cache_frames=*/16);
  std::unique_ptr<DenseFile> f = Make(options);
  ASSERT_TRUE(f->BulkLoad(MakeAscendingRecords(20, 2, 2)).ok());
  ASSERT_TRUE(f->Flush().ok());  // durability point: evens are promised
  ASSERT_TRUE(f->Insert(5, 55).ok());  // staged, volatile
  ASSERT_TRUE(f->Delete(4).ok());      // staged tombstone, volatile
  // The crash: RAM contents vanish — memtable and cache together.
  f->DiscardStaging();
  f->DiscardCache();
  ASSERT_TRUE(f->CheckAndRepair().ok());
  EXPECT_FALSE(f->Contains(5));  // staged insert lost with the RAM
  EXPECT_TRUE(f->Contains(4));   // staged tombstone lost too
  for (Key k = 2; k <= 40; k += 2) {
    EXPECT_TRUE(f->Contains(k)) << "durable key " << k;
  }
  ASSERT_TRUE(f->ValidateInvariants().ok());
}

TEST(IngestStaging, ShardedSplitsStagingAndAggregatesStats) {
  ShardedDenseFile::Options options;
  options.num_shards = 4;
  options.key_space = 4 * 64 * 4;
  options.shard.num_pages = 64;
  options.shard.d = 4;
  options.shard.D = 44;
  options.staging_bytes =
      4 * 8 * static_cast<int64_t>(sizeof(StagedEntry));  // 8 entries/shard
  StatusOr<std::unique_ptr<ShardedDenseFile>> made =
      ShardedDenseFile::Create(options);
  ASSERT_TRUE(made.ok()) << made.status();
  ShardedDenseFile& f = **made;
  for (Key k = 1; k <= 400; ++k) {
    ASSERT_TRUE(f.Insert(k, k).ok()) << "key " << k;
  }
  ASSERT_TRUE(f.FlushStaging().ok());
  ASSERT_TRUE(f.ValidateInvariants().ok());
  StagingStats summed;
  for (int s = 0; s < f.num_shards(); ++s) {
    summed += f.shard_staging_stats(s);
  }
  const StagingStats total = f.staging_stats();
  EXPECT_EQ(total.puts, summed.puts);
  EXPECT_EQ(total.drained_entries, summed.drained_entries);
  EXPECT_EQ(total.puts, 400);
  EXPECT_EQ(total.drained_entries, 400);
  EXPECT_EQ(total.entries, 0);
  for (Key k = 1; k <= 400; ++k) {
    ASSERT_TRUE(f.Get(k).ok()) << "key " << k;
  }
}

}  // namespace
}  // namespace dsf
