#include "workload/workload.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "workload/reference_model.h"
#include "workload/trace.h"

namespace dsf {
namespace {

TEST(Workload, AscendingRecordsShape) {
  const std::vector<Record> r = MakeAscendingRecords(5, 10, 3);
  ASSERT_EQ(r.size(), 5u);
  EXPECT_EQ(r.front().key, 10u);
  EXPECT_EQ(r.back().key, 22u);
  for (size_t i = 1; i < r.size(); ++i) {
    EXPECT_EQ(r[i].key - r[i - 1].key, 3u);
  }
}

TEST(Workload, UniformRecordsDistinctSortedInRange) {
  Rng rng(1);
  const std::vector<Record> r = MakeUniformRecords(200, 1000, rng);
  ASSERT_EQ(r.size(), 200u);
  std::set<Key> keys;
  for (const Record& rec : r) {
    EXPECT_GE(rec.key, 1u);
    EXPECT_LE(rec.key, 1000u);
    keys.insert(rec.key);
  }
  EXPECT_EQ(keys.size(), 200u);
  EXPECT_TRUE(std::is_sorted(r.begin(), r.end(), RecordKeyLess));
}

TEST(Workload, UniformMixRespectsFractions) {
  Rng rng(2);
  const Trace t = UniformMix(10000, 0.5, 0.3, 100, rng);
  int64_t inserts = 0;
  int64_t deletes = 0;
  int64_t gets = 0;
  for (const Op& op : t) {
    switch (op.kind) {
      case Op::Kind::kInsert: ++inserts; break;
      case Op::Kind::kDelete: ++deletes; break;
      default: ++gets; break;
    }
  }
  EXPECT_NEAR(inserts / 10000.0, 0.5, 0.03);
  EXPECT_NEAR(deletes / 10000.0, 0.3, 0.03);
  EXPECT_NEAR(gets / 10000.0, 0.2, 0.03);
}

TEST(Workload, DescendingInsertsDescend) {
  const Trace t = DescendingInserts(4, 100);
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[0].record.key, 100u);
  EXPECT_EQ(t[3].record.key, 97u);
  for (const Op& op : t) EXPECT_EQ(op.kind, Op::Kind::kInsert);
}

TEST(Workload, HotspotSurgeStaysInRangeAndDistinct) {
  Rng rng(3);
  const Trace t = HotspotSurge(50, 200, 400, rng);
  ASSERT_EQ(t.size(), 50u);
  std::set<Key> keys;
  for (const Op& op : t) {
    EXPECT_EQ(op.kind, Op::Kind::kInsert);
    EXPECT_GE(op.record.key, 200u);
    EXPECT_LE(op.record.key, 400u);
    keys.insert(op.record.key);
  }
  EXPECT_EQ(keys.size(), 50u);
}

TEST(Workload, ZipfInsertsSkewTowardSmallKeys) {
  Rng rng(4);
  const Trace t = ZipfInserts(5000, 10000, 1.1, rng);
  int64_t head = 0;
  for (const Op& op : t) {
    if (op.record.key <= 100) ++head;
  }
  EXPECT_GT(head, 1500);  // uniform would give ~50
}

TEST(Workload, HotspotChurnBalancesInsertsAndDeletes) {
  const Trace t = HotspotChurn(3, 5, 1000);
  ASSERT_EQ(t.size(), 30u);
  ReferenceModel model;
  for (const Op& op : t) {
    if (op.kind == Op::Kind::kInsert) {
      ASSERT_TRUE(model.Insert(op.record).ok());
    } else {
      ASSERT_TRUE(model.Delete(op.record.key).ok());
    }
  }
  EXPECT_EQ(model.size(), 0);
}

TEST(Trace, SerializeParseRoundTrip) {
  Trace t;
  t.push_back(Op{Op::Kind::kInsert, Record{1, 10}, 0});
  t.push_back(Op{Op::Kind::kDelete, Record{2, 0}, 0});
  t.push_back(Op{Op::Kind::kGet, Record{3, 0}, 0});
  t.push_back(Op{Op::Kind::kScan, Record{4, 0}, 9});
  const std::string text = SerializeTrace(t);
  StatusOr<Trace> parsed = ParseTrace(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->size(), t.size());
  for (size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ((*parsed)[i].kind, t[i].kind);
    EXPECT_EQ((*parsed)[i].record.key, t[i].record.key);
  }
  EXPECT_EQ((*parsed)[0].record.value, 10u);
  EXPECT_EQ((*parsed)[3].scan_hi, 9u);
}

TEST(Trace, ParseSkipsCommentsAndBlanks) {
  StatusOr<Trace> parsed = ParseTrace("# header\n\nI 5 50\n# tail\nD 5\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 2u);
}

TEST(Trace, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseTrace("X 1 2\n").ok());
  EXPECT_FALSE(ParseTrace("I 1\n").ok());
  EXPECT_FALSE(ParseTrace("S 1\n").ok());
}

TEST(Trace, FileRoundTrip) {
  const Trace t = AscendingInserts(10);
  const std::string path = ::testing::TempDir() + "/dsf_trace_test.txt";
  ASSERT_TRUE(WriteTraceFile(t, path).ok());
  StatusOr<Trace> parsed = ReadTraceFile(path);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), t.size());
  EXPECT_FALSE(ReadTraceFile("/nonexistent/dir/trace.txt").ok());
}

TEST(ReferenceModel, ContractMirrorsDenseFile) {
  ReferenceModel model(2);
  EXPECT_TRUE(model.Insert(Record{1, 1}).ok());
  EXPECT_TRUE(model.Insert(Record{1, 2}).IsAlreadyExists());
  EXPECT_TRUE(model.Insert(Record{2, 2}).ok());
  EXPECT_TRUE(model.Insert(Record{3, 3}).IsCapacityExceeded());
  EXPECT_TRUE(model.Delete(9).IsNotFound());
  EXPECT_TRUE(model.Delete(1).ok());
  StatusOr<Record> r = model.Get(2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->value, 2u);
  EXPECT_EQ(model.Scan(0, 10).size(), 1u);
}

}  // namespace
}  // namespace dsf
