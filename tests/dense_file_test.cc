#include "core/dense_file.h"

#include <gtest/gtest.h>

#include "workload/workload.h"

namespace dsf {
namespace {

DenseFile::Options SmallOptions() {
  DenseFile::Options options;
  options.num_pages = 64;
  options.d = 4;
  options.D = 44;
  return options;
}

std::unique_ptr<DenseFile> Make(const DenseFile::Options& options) {
  StatusOr<std::unique_ptr<DenseFile>> f = DenseFile::Create(options);
  EXPECT_TRUE(f.ok()) << f.status();
  return std::move(*f);
}

TEST(DenseFile, AutoBlockSizePicksOneWhenGapHolds) {
  StatusOr<int64_t> k = DenseFile::AutoBlockSize(64, 4, 44);
  ASSERT_TRUE(k.ok());
  EXPECT_EQ(*k, 1);
}

TEST(DenseFile, AutoBlockSizeLiftsNarrowGap) {
  // D - d = 2, M = 64: K = 1 gives 2 <= 18; K = 2 gives 4 <= 15;
  // K = 4 gives 8 <= 12; K = 8 gives 16 > 9.
  StatusOr<int64_t> k = DenseFile::AutoBlockSize(64, 4, 6);
  ASSERT_TRUE(k.ok());
  EXPECT_EQ(*k, 8);
}

TEST(DenseFile, AutoBlockSizeFallsBackToWholeFile) {
  // D - d = 1 on 4 pages: only K = M = 4 works (log of one block is 0).
  StatusOr<int64_t> k = DenseFile::AutoBlockSize(4, 1, 2);
  ASSERT_TRUE(k.ok());
  EXPECT_EQ(*k, 4);
}

TEST(DenseFile, AutoBlockSizeValidatesArguments) {
  EXPECT_FALSE(DenseFile::AutoBlockSize(0, 1, 2).ok());
  EXPECT_FALSE(DenseFile::AutoBlockSize(8, 2, 2).ok());
}

TEST(DenseFile, CreateHonorsExplicitBlockSize) {
  DenseFile::Options options;
  options.num_pages = 64;
  options.d = 4;
  options.D = 6;
  options.block_size = 16;
  std::unique_ptr<DenseFile> f = Make(options);
  EXPECT_EQ(f->block_size(), 16);
}

TEST(DenseFile, CreateRejectsIndivisibleBlockSize) {
  DenseFile::Options options = SmallOptions();
  options.block_size = 5;
  EXPECT_FALSE(DenseFile::Create(options).ok());
}

TEST(DenseFile, PolicySelection) {
  DenseFile::Options options = SmallOptions();
  std::unique_ptr<DenseFile> c2 = Make(options);
  EXPECT_EQ(c2->PolicyName(), "CONTROL2");
  options.policy = DenseFile::Policy::kControl1;
  std::unique_ptr<DenseFile> c1 = Make(options);
  EXPECT_EQ(c1->PolicyName(), "CONTROL1");
}

TEST(DenseFile, BasicLifecycle) {
  std::unique_ptr<DenseFile> f = Make(SmallOptions());
  EXPECT_TRUE(f->empty());
  EXPECT_EQ(f->capacity(), 256);
  EXPECT_EQ(f->num_pages(), 64);
  ASSERT_TRUE(f->Insert(7, 70).ok());
  ASSERT_TRUE(f->Insert(Record{9, 90}).ok());
  EXPECT_EQ(f->size(), 2);
  StatusOr<Value> v = f->Get(7);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 70u);
  EXPECT_TRUE(f->Contains(9));
  EXPECT_TRUE(f->Delete(7).ok());
  EXPECT_FALSE(f->Contains(7));
  EXPECT_TRUE(f->ValidateInvariants().ok());
}

TEST(DenseFile, IoAndCommandStatsAccumulateAndReset) {
  std::unique_ptr<DenseFile> f = Make(SmallOptions());
  ASSERT_TRUE(f->Insert(1, 1).ok());
  ASSERT_TRUE(f->Insert(2, 2).ok());
  EXPECT_GT(f->io_stats().TotalAccesses(), 0);
  EXPECT_EQ(f->command_stats().commands, 2);
  EXPECT_GT(f->command_stats().max_command_accesses, 0);
  f->ResetIoStats();
  f->ResetCommandStats();
  EXPECT_EQ(f->io_stats().TotalAccesses(), 0);
  EXPECT_EQ(f->command_stats().commands, 0);
}

TEST(DenseFile, BulkLoadAndScan) {
  std::unique_ptr<DenseFile> f = Make(SmallOptions());
  ASSERT_TRUE(f->BulkLoad(MakeAscendingRecords(100, 5, 5)).ok());
  EXPECT_EQ(f->size(), 100);
  std::vector<Record> out;
  ASSERT_TRUE(f->Scan(5, 50, &out).ok());
  EXPECT_EQ(out.size(), 10u);
  EXPECT_EQ(f->ScanAll()->size(), 100u);
  EXPECT_TRUE(f->ValidateInvariants().ok());
}

TEST(DenseFile, Control1PolicyFullLifecycle) {
  DenseFile::Options options = SmallOptions();
  options.policy = DenseFile::Policy::kControl1;
  std::unique_ptr<DenseFile> f = Make(options);
  for (Key k = 1; k <= 200; ++k) {
    ASSERT_TRUE(f->Insert(k, k).ok());
  }
  for (Key k = 1; k <= 200; k += 2) {
    ASSERT_TRUE(f->Delete(k).ok());
  }
  EXPECT_EQ(f->size(), 100);
  EXPECT_TRUE(f->ValidateInvariants().ok());
}

}  // namespace
}  // namespace dsf
