#include "storage/page.h"

#include <gtest/gtest.h>

namespace dsf {
namespace {

Record R(Key k) { return Record{k, k * 10}; }

TEST(Page, StartsEmpty) {
  Page p(4);
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.size(), 0);
  EXPECT_EQ(p.capacity(), 4);
  EXPECT_TRUE(p.WellFormed());
}

TEST(Page, InsertKeepsKeyOrder) {
  Page p(8);
  ASSERT_TRUE(p.Insert(R(5)).ok());
  ASSERT_TRUE(p.Insert(R(2)).ok());
  ASSERT_TRUE(p.Insert(R(9)).ok());
  ASSERT_TRUE(p.Insert(R(7)).ok());
  ASSERT_EQ(p.size(), 4);
  EXPECT_EQ(p.records()[0].key, 2u);
  EXPECT_EQ(p.records()[1].key, 5u);
  EXPECT_EQ(p.records()[2].key, 7u);
  EXPECT_EQ(p.records()[3].key, 9u);
  EXPECT_TRUE(p.WellFormed());
}

TEST(Page, InsertRejectsDuplicates) {
  Page p(4);
  ASSERT_TRUE(p.Insert(R(3)).ok());
  const Status s = p.Insert(Record{3, 999});
  EXPECT_TRUE(s.IsAlreadyExists());
  EXPECT_EQ(p.size(), 1);
}

TEST(Page, InsertRejectsWhenFull) {
  Page p(2);
  ASSERT_TRUE(p.Insert(R(1)).ok());
  ASSERT_TRUE(p.Insert(R(2)).ok());
  EXPECT_TRUE(p.Insert(R(3)).IsCapacityExceeded());
}

TEST(Page, EraseRemovesAndReportsMissing) {
  Page p(4);
  ASSERT_TRUE(p.Insert(R(1)).ok());
  ASSERT_TRUE(p.Insert(R(2)).ok());
  EXPECT_TRUE(p.Erase(1).ok());
  EXPECT_EQ(p.size(), 1);
  EXPECT_TRUE(p.Erase(1).IsNotFound());
  EXPECT_TRUE(p.Erase(99).IsNotFound());
}

TEST(Page, FindReturnsStoredValue) {
  Page p(4);
  ASSERT_TRUE(p.Insert(Record{6, 60}).ok());
  StatusOr<Record> r = p.Find(6);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->value, 60u);
  EXPECT_TRUE(p.Find(7).status().IsNotFound());
  EXPECT_TRUE(p.Contains(6));
  EXPECT_FALSE(p.Contains(7));
}

TEST(Page, MinMaxKeys) {
  Page p(4);
  ASSERT_TRUE(p.Insert(R(4)).ok());
  ASSERT_TRUE(p.Insert(R(8)).ok());
  ASSERT_TRUE(p.Insert(R(6)).ok());
  EXPECT_EQ(p.MinKey(), 4u);
  EXPECT_EQ(p.MaxKey(), 8u);
}

TEST(Page, TakeLowestRemovesPrefix) {
  Page p(8);
  for (Key k = 1; k <= 5; ++k) ASSERT_TRUE(p.Insert(R(k)).ok());
  const std::vector<Record> taken = p.TakeLowest(2);
  ASSERT_EQ(taken.size(), 2u);
  EXPECT_EQ(taken[0].key, 1u);
  EXPECT_EQ(taken[1].key, 2u);
  EXPECT_EQ(p.size(), 3);
  EXPECT_EQ(p.MinKey(), 3u);
}

TEST(Page, TakeHighestRemovesSuffixInAscendingOrder) {
  Page p(8);
  for (Key k = 1; k <= 5; ++k) ASSERT_TRUE(p.Insert(R(k)).ok());
  const std::vector<Record> taken = p.TakeHighest(3);
  ASSERT_EQ(taken.size(), 3u);
  EXPECT_EQ(taken[0].key, 3u);
  EXPECT_EQ(taken[2].key, 5u);
  EXPECT_EQ(p.size(), 2);
  EXPECT_EQ(p.MaxKey(), 2u);
}

TEST(Page, TakeAllEmptiesPage) {
  Page p(4);
  ASSERT_TRUE(p.Insert(R(1)).ok());
  ASSERT_TRUE(p.Insert(R(2)).ok());
  const std::vector<Record> all = p.TakeAll();
  EXPECT_EQ(all.size(), 2u);
  EXPECT_TRUE(p.empty());
}

TEST(Page, AppendHighAndPrependLowPreserveOrder) {
  Page p(8);
  ASSERT_TRUE(p.Insert(R(10)).ok());
  ASSERT_TRUE(p.Insert(R(11)).ok());
  p.AppendHigh({R(20), R(21)});
  p.PrependLow({R(1), R(2)});
  ASSERT_EQ(p.size(), 6);
  EXPECT_EQ(p.MinKey(), 1u);
  EXPECT_EQ(p.MaxKey(), 21u);
  EXPECT_TRUE(p.WellFormed());
}

TEST(Page, DebugStringListsKeys) {
  Page p(4);
  ASSERT_TRUE(p.Insert(R(3)).ok());
  ASSERT_TRUE(p.Insert(R(1)).ok());
  EXPECT_EQ(p.DebugString(), "[1 3]");
}

}  // namespace
}  // namespace dsf
