// FaultPolicy schedules, the fallible PageFile accessors, the accounting
// fixes that rode along (AccessTracker first-access, IoStats clamp), and
// the LearnSplitters boundary regressions.

#include "storage/fault_injection.h"

#include <limits>
#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "shard/sharded_dense_file.h"
#include "storage/io_stats.h"
#include "storage/page_file.h"
#include "storage/record.h"
#include "util/status.h"
#include "workload/workload.h"

namespace dsf {
namespace {

TEST(FaultPolicy, FailNthAccessFailsExactlyOnce) {
  FaultPolicy policy;
  policy.FailNthAccess(3);
  EXPECT_TRUE(policy.OnAccess(1, false).ok());
  EXPECT_TRUE(policy.OnAccess(2, false).ok());
  EXPECT_TRUE(policy.OnAccess(3, false).IsIoError());
  EXPECT_TRUE(policy.OnAccess(3, false).ok());  // one-shot: retry succeeds
  EXPECT_EQ(policy.accesses_seen(), 4);
  EXPECT_EQ(policy.faults_injected(), 1);
}

TEST(FaultPolicy, FailNthAccessIsRelativeToInstallPoint) {
  FaultPolicy policy;
  EXPECT_TRUE(policy.OnAccess(1, false).ok());
  EXPECT_TRUE(policy.OnAccess(2, false).ok());
  policy.FailNthAccess(1);  // the very next access
  EXPECT_TRUE(policy.OnAccess(3, false).IsIoError());
  EXPECT_TRUE(policy.OnAccess(4, false).ok());
}

TEST(FaultPolicy, FailAddressRangePersistsAcrossHits) {
  FaultPolicy policy;
  policy.FailAddressRange(5, 7);
  EXPECT_TRUE(policy.OnAccess(4, false).ok());
  EXPECT_TRUE(policy.OnAccess(5, false).IsIoError());
  EXPECT_TRUE(policy.OnAccess(6, true).IsIoError());
  EXPECT_TRUE(policy.OnAccess(7, false).IsIoError());  // not transient
  EXPECT_TRUE(policy.OnAccess(8, false).ok());
  EXPECT_EQ(policy.faults_injected(), 3);
}

TEST(FaultPolicy, WritesOnlyRangeLetsReadsThrough) {
  FaultPolicy policy;
  policy.FailAddressRange(2, 2, /*writes_only=*/true);
  EXPECT_TRUE(policy.OnAccess(2, false).ok());
  EXPECT_TRUE(policy.OnAccess(2, true).IsIoError());
}

TEST(FaultPolicy, TransientRangeDisarmsAfterFirstHit) {
  FaultPolicy policy;
  policy.FailAddressRange(3, 3, /*writes_only=*/false, /*transient=*/true);
  EXPECT_TRUE(policy.OnAccess(3, false).IsIoError());
  EXPECT_TRUE(policy.OnAccess(3, false).ok());
  EXPECT_EQ(policy.faults_injected(), 1);
}

TEST(FaultPolicy, CrashAfterAccessesFailsEverythingUntilCleared) {
  FaultPolicy policy;
  policy.CrashAfterAccesses(2);
  EXPECT_FALSE(policy.crashed());
  EXPECT_TRUE(policy.OnAccess(1, false).ok());
  EXPECT_TRUE(policy.OnAccess(2, true).ok());
  EXPECT_TRUE(policy.OnAccess(3, false).IsIoError());
  EXPECT_TRUE(policy.OnAccess(9, true).IsIoError());
  EXPECT_TRUE(policy.crashed());
  policy.ClearCrash();  // simulated restart
  EXPECT_FALSE(policy.crashed());
  EXPECT_TRUE(policy.OnAccess(9, true).ok());
}

TEST(FaultPolicy, CrashAfterZeroFailsImmediately) {
  FaultPolicy policy;
  policy.CrashAfterAccesses(0);
  EXPECT_TRUE(policy.OnAccess(1, false).IsIoError());
  EXPECT_TRUE(policy.crashed());
}

TEST(FaultPolicy, ResetForgetsEverything) {
  FaultPolicy policy;
  policy.FailNthAccess(1);
  policy.FailAddressRange(1, 100);
  policy.CrashAfterAccesses(0);
  policy.Reset();
  EXPECT_TRUE(policy.OnAccess(1, true).ok());
  EXPECT_EQ(policy.accesses_seen(), 1);
  EXPECT_EQ(policy.faults_injected(), 0);
}

TEST(PageFileFaults, TryReadSurfacesInjectedFault) {
  PageFile file(4, 4);
  auto policy = std::make_shared<FaultPolicy>();
  policy->FailNthAccess(1);
  file.set_fault_policy(policy);
  StatusOr<const Page*> page = file.TryRead(2);
  EXPECT_TRUE(page.status().IsIoError());
  // The faulted access was still charged — attempted work is real work.
  EXPECT_EQ(file.stats().TotalAccesses(), 1);
  // The schedule is exhausted; the retry succeeds.
  EXPECT_TRUE(file.TryRead(2).ok());
  EXPECT_EQ(file.stats().TotalAccesses(), 2);
}

TEST(PageFileFaults, TryWriteLeavesPageUntouchedOnFault) {
  PageFile file(4, 4);
  file.RawPage(1).AppendHigh({Record{10, 10}});
  auto policy = std::make_shared<FaultPolicy>();
  policy->FailAddressRange(1, 1, /*writes_only=*/true);
  file.set_fault_policy(policy);
  EXPECT_TRUE(file.TryWrite(1).status().IsIoError());
  EXPECT_EQ(file.Peek(1).size(), 1u);
  EXPECT_EQ(file.Peek(1).MinKey(), 10u);
}

TEST(PageFileFaults, BadAddressIsOutOfRangeNotAbort) {
  PageFile file(4, 4);
  EXPECT_EQ(file.TryRead(0).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(file.TryRead(5).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(file.TryWrite(0).status().code(), StatusCode::kOutOfRange);
}

TEST(PageFileFaults, PeekAndRawPageAreFaultImmune) {
  PageFile file(4, 4);
  auto policy = std::make_shared<FaultPolicy>();
  policy->CrashAfterAccesses(0);
  file.set_fault_policy(policy);
  // Unaccounted accessors bypass both accounting and the fault schedule:
  // they model offline recovery inspecting the device.
  file.RawPage(3).AppendHigh({Record{7, 7}});
  EXPECT_EQ(file.Peek(3).size(), 1u);
  EXPECT_EQ(policy->accesses_seen(), 0);
}

TEST(AccessTracker, FirstAccessAfterResetIsASeek) {
  AccessTracker tracker;
  tracker.OnAccess(10, false);
  EXPECT_EQ(tracker.stats().seeks, 1);
  EXPECT_EQ(tracker.stats().sequential_accesses, 0);
  // Same and adjacent addresses are sequential.
  tracker.OnAccess(10, true);
  tracker.OnAccess(11, false);
  tracker.OnAccess(10, false);
  EXPECT_EQ(tracker.stats().sequential_accesses, 3);
  // A jump seeks again, and Reset forgets the arm position.
  tracker.OnAccess(50, false);
  EXPECT_EQ(tracker.stats().seeks, 2);
  tracker.Reset();
  tracker.OnAccess(51, false);
  EXPECT_EQ(tracker.stats().seeks, 1);
}

TEST(IoStats, SubtractionClampsAtZero) {
  IoStats before;
  before.page_reads = 10;
  before.page_writes = 4;
  before.seeks = 3;
  before.sequential_accesses = 11;
  IoStats after;  // as if Reset() happened between the snapshots
  after.page_reads = 2;
  const IoStats delta = after - before;
  EXPECT_EQ(delta.page_reads, 0);
  EXPECT_EQ(delta.page_writes, 0);
  EXPECT_EQ(delta.seeks, 0);
  EXPECT_EQ(delta.sequential_accesses, 0);
  const IoStats forward = before - after;
  EXPECT_EQ(forward.page_reads, 8);
  EXPECT_EQ(forward.page_writes, 4);
}

TEST(LearnSplitters, DuplicateHeavySampleCollapsesInsteadOfFabricating) {
  // All sample keys identical: only the first quantile strictly ascends,
  // so the learner collapses to a single boundary at the duplicated key
  // (two effective shards) instead of manufacturing back+1 boundaries.
  std::vector<Record> sample(100, Record{42, 0});
  const std::vector<Key> splitters =
      ShardedDenseFile::LearnSplitters(sample, 8);
  ASSERT_EQ(splitters.size(), 1u);
  EXPECT_EQ(splitters[0], 42u);
}

TEST(LearnSplitters, MaxKeySampleDoesNotOverflow) {
  // Quantiles pinned at kMaxKey used to trigger back+1 wraparound to 0,
  // producing a non-ascending splitter vector that Create() rejects.
  constexpr Key kMax = std::numeric_limits<Key>::max();
  std::vector<Record> sample;
  sample.push_back(Record{1, 0});
  for (int i = 0; i < 99; ++i) sample.push_back(Record{kMax, 0});
  const std::vector<Key> splitters =
      ShardedDenseFile::LearnSplitters(sample, 8);
  for (size_t i = 1; i < splitters.size(); ++i) {
    EXPECT_LT(splitters[i - 1], splitters[i]);
  }
  for (const Key s : splitters) EXPECT_NE(s, 0u);
}

TEST(LearnSplitters, SkewedSampleKeepsStrictAscent) {
  // A usable result must always satisfy Create()'s splitter contract.
  std::vector<Record> sample;
  for (int i = 0; i < 50; ++i) sample.push_back(Record{5, 0});
  for (int i = 0; i < 50; ++i) {
    sample.push_back(Record{static_cast<Key>(1000 + i), 0});
  }
  const std::vector<Key> splitters =
      ShardedDenseFile::LearnSplitters(sample, 4);
  ASSERT_FALSE(splitters.empty());
  for (size_t i = 1; i < splitters.size(); ++i) {
    EXPECT_LT(splitters[i - 1], splitters[i]);
  }
  ShardedDenseFile::Options options;
  options.num_shards = static_cast<int>(splitters.size()) + 1;
  options.splitters = splitters;
  options.shard.num_pages = 16;
  options.shard.d = 2;
  options.shard.D = 8;
  EXPECT_TRUE(ShardedDenseFile::Create(options).ok());
}

}  // namespace
}  // namespace dsf
