#include "baseline/naive_sequential.h"

#include <gtest/gtest.h>

#include "workload/reference_model.h"
#include "workload/workload.h"

namespace dsf {
namespace {

std::unique_ptr<NaiveSequentialFile> Make(int64_t pages = 16,
                                          int64_t capacity = 8) {
  NaiveSequentialFile::Options options;
  options.num_pages = pages;
  options.page_capacity = capacity;
  StatusOr<std::unique_ptr<NaiveSequentialFile>> f =
      NaiveSequentialFile::Create(options);
  EXPECT_TRUE(f.ok()) << f.status();
  return std::move(*f);
}

TEST(NaiveSequential, BasicLifecycle) {
  std::unique_ptr<NaiveSequentialFile> f = Make();
  EXPECT_EQ(f->size(), 0);
  EXPECT_TRUE(f->Get(1).status().IsNotFound());
  EXPECT_TRUE(f->Delete(1).IsNotFound());
  ASSERT_TRUE(f->Insert(Record{5, 50}).ok());
  ASSERT_TRUE(f->Insert(Record{3, 30}).ok());
  StatusOr<Record> r = f->Get(3);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->value, 30u);
  EXPECT_TRUE(f->Insert(Record{3, 1}).IsAlreadyExists());
  EXPECT_TRUE(f->Delete(3).ok());
  EXPECT_EQ(f->size(), 1);
  EXPECT_TRUE(f->ValidateInvariants().ok());
}

TEST(NaiveSequential, MaintainsFullPackingUnderChurn) {
  std::unique_ptr<NaiveSequentialFile> f = Make(8, 4);
  ReferenceModel model(8 * 4);
  Rng rng(19);
  const Trace trace = UniformMix(1500, 0.55, 0.35, 60, rng);
  for (const Op& op : trace) {
    switch (op.kind) {
      case Op::Kind::kInsert:
        ASSERT_EQ(f->Insert(op.record).code(),
                  model.Insert(op.record).code());
        break;
      case Op::Kind::kDelete:
        ASSERT_EQ(f->Delete(op.record.key).code(),
                  model.Delete(op.record.key).code());
        break;
      default:
        ASSERT_EQ(f->Contains(op.record.key), model.Contains(op.record.key));
        break;
    }
    ASSERT_TRUE(f->ValidateInvariants().ok());
  }
  EXPECT_EQ(*f->ScanAll(), model.ScanAll());
}

TEST(NaiveSequential, CapacityIsMTimesD) {
  std::unique_ptr<NaiveSequentialFile> f = Make(2, 3);
  for (Key k = 1; k <= 6; ++k) {
    ASSERT_TRUE(f->Insert(Record{k, k}).ok());
  }
  EXPECT_TRUE(f->Insert(Record{7, 7}).IsCapacityExceeded());
}

TEST(NaiveSequential, FrontInsertRipplesAcrossWholeFile) {
  std::unique_ptr<NaiveSequentialFile> f = Make(16, 8);
  ASSERT_TRUE(f->BulkLoad(MakeAscendingRecords(100, 10, 1)).ok());
  f->ResetStats();
  // Inserting below every existing key rewrites the entire packed prefix.
  ASSERT_TRUE(f->Insert(Record{1, 1}).ok());
  const int64_t used_pages = (101 + 7) / 8;
  EXPECT_GE(f->stats().page_writes, used_pages);
  EXPECT_TRUE(f->ValidateInvariants().ok());
}

TEST(NaiveSequential, BackInsertIsCheap) {
  std::unique_ptr<NaiveSequentialFile> f = Make(16, 8);
  ASSERT_TRUE(f->BulkLoad(MakeAscendingRecords(100)).ok());
  f->ResetStats();
  ASSERT_TRUE(f->Insert(Record{1000, 0}).ok());
  EXPECT_LE(f->stats().page_writes, 2);
}

TEST(NaiveSequential, ScanIsPerfectlySequential) {
  std::unique_ptr<NaiveSequentialFile> f = Make(16, 8);
  ASSERT_TRUE(f->BulkLoad(MakeAscendingRecords(128)).ok());
  f->ResetStats();
  std::vector<Record> out;
  ASSERT_TRUE(f->Scan(1, 128, &out).ok());
  EXPECT_EQ(out.size(), 128u);
  EXPECT_LE(f->stats().seeks, 1);
}

TEST(NaiveSequential, BulkLoadValidation) {
  std::unique_ptr<NaiveSequentialFile> f = Make(2, 2);
  EXPECT_TRUE(f->BulkLoad(MakeAscendingRecords(5)).IsCapacityExceeded());
  EXPECT_TRUE(f->BulkLoad({Record{2, 0}, Record{1, 0}}).IsInvalidArgument());
}

TEST(NaiveSequential, DeleteFromFrontPullsRecordsLeft) {
  std::unique_ptr<NaiveSequentialFile> f = Make(4, 2);
  ASSERT_TRUE(f->BulkLoad(MakeAscendingRecords(8)).ok());
  ASSERT_TRUE(f->Delete(1).ok());
  EXPECT_TRUE(f->ValidateInvariants().ok());
  const std::vector<Record> all = *f->ScanAll();
  ASSERT_EQ(all.size(), 7u);
  EXPECT_EQ(all.front().key, 2u);
  EXPECT_EQ(all.back().key, 8u);
}

}  // namespace
}  // namespace dsf
