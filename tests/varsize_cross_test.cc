// Cross-validation of the two variable-size maintainers: the amortized
// VarFile and the worst-case VarControl2 must hold identical logical
// contents after any shared operation sequence, and VarControl2 must
// additionally respect its per-command access bound.

#include <gtest/gtest.h>

#include "util/random.h"
#include "varsize/var_control2.h"
#include "varsize/var_file.h"

namespace dsf {
namespace {

constexpr int64_t kPages = 64;  // L = 6
constexpr int64_t kMaxSize = 3;

std::unique_ptr<VarFile> MakeAmortized() {
  VarFile::Options options;
  options.num_pages = kPages;
  options.d = 12;
  options.D = 12 + (2 + kMaxSize) * 6 + 7;  // widened gap for VarFile
  options.max_record_size = kMaxSize;
  StatusOr<std::unique_ptr<VarFile>> f = VarFile::Create(options);
  EXPECT_TRUE(f.ok()) << f.status();
  return std::move(*f);
}

std::unique_ptr<VarControl2> MakeWorstCase() {
  VarControl2::Options options;
  options.num_pages = kPages;
  options.d = 12;
  options.D = 12 + 3 * kMaxSize * 6 + 7;  // (D-d) > 3*S*L
  options.max_record_size = kMaxSize;
  StatusOr<std::unique_ptr<VarControl2>> f = VarControl2::Create(options);
  EXPECT_TRUE(f.ok()) << f.status();
  return std::move(*f);
}

TEST(VarsizeCross, IdenticalContentsUnderSharedChurn) {
  std::unique_ptr<VarFile> amortized = MakeAmortized();
  std::unique_ptr<VarControl2> worst_case = MakeWorstCase();
  // Capacities differ (different D); churn keys are bounded so neither
  // file ever hits its cap and status codes stay comparable.
  Rng rng(123);
  for (int step = 0; step < 4000; ++step) {
    const Key k = rng.Uniform(300) + 1;
    if (rng.Bernoulli(0.55)) {
      const VarRecord r{k, static_cast<int64_t>(rng.Uniform(kMaxSize)) + 1,
                        k * 7};
      const Status a = amortized->Insert(r);
      const Status b = worst_case->Insert(r);
      ASSERT_EQ(a.code(), b.code()) << "step " << step;
    } else {
      const Status a = amortized->Delete(k);
      const Status b = worst_case->Delete(k);
      ASSERT_EQ(a.code(), b.code()) << "step " << step;
    }
    if (step % 200 == 0) {
      ASSERT_TRUE(amortized->ValidateInvariants().ok()) << step;
      ASSERT_TRUE(worst_case->ValidateInvariants().ok()) << step;
    }
  }
  EXPECT_EQ(amortized->ScanAll(), worst_case->ScanAll());
  EXPECT_EQ(amortized->record_count(), worst_case->record_count());
  EXPECT_EQ(amortized->total_units(), worst_case->total_units());
}

TEST(VarsizeCross, HotspotContentsAgreeAndBoundHolds) {
  std::unique_ptr<VarFile> amortized = MakeAmortized();
  std::unique_ptr<VarControl2> worst_case = MakeWorstCase();
  Rng rng(7);
  Key key = 1 << 20;
  for (int i = 0; i < 250; ++i) {
    const VarRecord r{key--, static_cast<int64_t>(rng.Uniform(kMaxSize)) + 1,
                      0};
    ASSERT_TRUE(amortized->Insert(r).ok());
    ASSERT_TRUE(worst_case->Insert(r).ok());
  }
  EXPECT_EQ(amortized->ScanAll(), worst_case->ScanAll());
  EXPECT_LE(worst_case->command_cost().max_accesses,
            4 * (worst_case->J() + 1) + 2);
  EXPECT_TRUE(amortized->ValidateInvariants().ok());
  EXPECT_TRUE(worst_case->ValidateInvariants().ok());
}

}  // namespace
}  // namespace dsf
