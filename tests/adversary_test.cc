// Tests for the adversarial workload generators (src/workload/adversary.*):
// determinism under a fixed seed, the structural properties each
// generator promises, and the motivating end-to-end fact — the bucket
// adversary measurably degrades a statically mis-provisioned
// configuration relative to an evenly provisioned one.

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "gtest/gtest.h"
#include "shard/sharded_dense_file.h"
#include "util/random.h"
#include "workload/adversary.h"
#include "workload/workload.h"

namespace dsf {
namespace {

bool SameTrace(const Trace& a, const Trace& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].kind != b[i].kind || a[i].record.key != b[i].record.key ||
        a[i].record.value != b[i].record.value ||
        a[i].scan_hi != b[i].scan_hi) {
      return false;
    }
  }
  return true;
}

TEST(AdversaryTest, DeterministicUnderFixedSeed) {
  Rng a(42), b(42), c(43);
  const Trace bucket_a = BucketAdversary(300, 1000, 2000, 3, a);
  const Trace bucket_b = BucketAdversary(300, 1000, 2000, 3, b);
  const Trace bucket_c = BucketAdversary(300, 1000, 2000, 3, c);
  EXPECT_TRUE(SameTrace(bucket_a, bucket_b));
  EXPECT_FALSE(SameTrace(bucket_a, bucket_c));

  Rng d(42), e(42), f(43);
  const Trace drift_d = DriftRamp(400, 4000, 200, 0.3, 4, d);
  const Trace drift_e = DriftRamp(400, 4000, 200, 0.3, 4, e);
  const Trace drift_f = DriftRamp(400, 4000, 200, 0.3, 4, f);
  EXPECT_TRUE(SameTrace(drift_d, drift_e));
  EXPECT_FALSE(SameTrace(drift_d, drift_f));

  Rng g(42), h(42), i(43);
  const Trace mig_g = HotspotMigration(400, 4000, 4, 0.3, 4, g);
  const Trace mig_h = HotspotMigration(400, 4000, 4, 0.3, 4, h);
  const Trace mig_i = HotspotMigration(400, 4000, 4, 0.3, 4, i);
  EXPECT_TRUE(SameTrace(mig_g, mig_h));
  EXPECT_FALSE(SameTrace(mig_g, mig_i));
}

// The BKS-style adversary keeps every key strictly inside (lo, hi),
// never re-inserts a live key, and only deletes keys it inserted that
// are still live — so any replay driver sees a legal trace.
TEST(AdversaryTest, BucketAdversaryStructure) {
  Rng rng(7);
  const Key lo = 1000, hi = 2000;
  const Trace trace = BucketAdversary(600, lo, hi, 3, rng);
  ASSERT_FALSE(trace.empty());

  std::set<Key> live;
  int64_t inserts = 0, deletes = 0;
  for (const Op& op : trace) {
    ASSERT_TRUE(op.kind == Op::Kind::kInsert || op.kind == Op::Kind::kDelete);
    EXPECT_GT(op.record.key, lo);
    EXPECT_LT(op.record.key, hi);
    if (op.kind == Op::Kind::kInsert) {
      ++inserts;
      EXPECT_EQ(live.count(op.record.key), 0u) << "re-inserted live key";
      live.insert(op.record.key);
    } else {
      ++deletes;
      EXPECT_EQ(live.count(op.record.key), 1u) << "deleted a dead key";
      live.erase(op.record.key);
    }
  }
  EXPECT_GT(inserts, 0);
  EXPECT_GT(deletes, 0);
  // delete_every = 3: roughly a third of ops are deletes.
  EXPECT_NEAR(static_cast<double>(deletes) / trace.size(), 1.0 / 3.0, 0.1);
}

// The adversary splits the current minimum gap, so inserted keys pack
// ever more tightly: the smallest adjacent live-key gap shrinks to the
// floor the range permits.
TEST(AdversaryTest, BucketAdversaryTightensGaps) {
  Rng rng(11);
  const Trace trace = BucketAdversary(400, 0, 1 << 14, /*delete_every=*/0, rng);
  std::set<Key> live;
  for (const Op& op : trace) {
    if (op.kind == Op::Kind::kInsert) live.insert(op.record.key);
  }
  ASSERT_GE(live.size(), 100u);
  Key min_gap = 1 << 14;
  Key prev = *live.begin();
  for (auto it = std::next(live.begin()); it != live.end(); ++it) {
    min_gap = std::min(min_gap, *it - prev);
    prev = *it;
  }
  // 400 splits into a 2^14 range force adjacent keys within a few units.
  EXPECT_LE(min_gap, 4);
}

TEST(AdversaryTest, DriftRampCoversTheKeySpace) {
  Rng rng(5);
  const Key key_space = 4000, window = 300;
  const Trace trace = DriftRamp(2000, key_space, window, 0.3, 3, rng);
  Key first_insert = 0, last_insert = 0;
  for (const Op& op : trace) {
    if (op.kind != Op::Kind::kInsert) continue;
    EXPECT_GE(op.record.key, 1);
    EXPECT_LE(op.record.key, key_space);
    if (first_insert == 0) first_insert = op.record.key;
    last_insert = op.record.key;
  }
  // The window slid: late inserts land far from early ones.
  EXPECT_LT(first_insert, window + 1);
  EXPECT_GT(last_insert, key_space - window - 1);
}

TEST(AdversaryTest, HotspotMigrationVisitsEveryPhaseSlice) {
  Rng rng(5);
  const Key key_space = 4000;
  const int phases = 4;
  const Trace trace = HotspotMigration(2000, key_space, phases, 0.3, 3, rng);
  // Count inserts per phase-sized slice of the key space; the 90%
  // in-phase mass puts substantial weight in each slice.
  std::vector<int64_t> per_slice(phases, 0);
  int64_t inserts = 0;
  for (const Op& op : trace) {
    if (op.kind != Op::Kind::kInsert) continue;
    ++inserts;
    const int slice = static_cast<int>(
        std::min<Key>(phases - 1, (op.record.key - 1) * phases / key_space));
    ++per_slice[static_cast<size_t>(slice)];
  }
  ASSERT_GT(inserts, 0);
  for (int s = 0; s < phases; ++s) {
    EXPECT_GT(per_slice[static_cast<size_t>(s)], inserts / (4 * phases))
        << "slice " << s << " starved";
  }
}

// The end-to-end motivation for the controller: against the bucket
// adversary concentrated on one shard, a static config whose frames sit
// on the WRONG shard pays measurably more physical I/O than an even
// split. (The adaptive sweep bench then shows the tuner closing the
// gap; here we only pin down that the adversary creates one.)
TEST(AdversaryTest, BucketAdversaryDegradesMisprovisionedStatic) {
  const auto run = [](bool misprovisioned) -> int64_t {
    ShardedDenseFile::Options options;
    options.num_shards = 2;
    options.key_space = 4000;
    options.shard.num_pages = 64;
    options.shard.d = 4;
    options.shard.D = 20;
    options.shard.policy = DenseFile::Policy::kControl2;
    options.shard.cache_frames = 6;
    auto file = std::move(*ShardedDenseFile::Create(options));
    if (misprovisioned) {
      // All the spare frames on shard 0; the adversary hits shard 1.
      EXPECT_TRUE(file->ResizeShardCache(1, 1).ok());
      EXPECT_TRUE(file->ResizeShardCache(0, 11).ok());
    }
    Rng rng(77);
    const Trace trace = BucketAdversary(500, 2100, 2900, 3, rng);
    file->ResetStats();
    for (const Op& op : trace) {
      if (op.kind == Op::Kind::kInsert) {
        EXPECT_TRUE(file->Insert(op.record).ok());
      } else {
        EXPECT_TRUE(file->Delete(op.record.key).ok());
      }
    }
    EXPECT_TRUE(file->Flush().ok());
    return file->io_stats().TotalAccesses();
  };

  const int64_t even = run(false);
  const int64_t wrong = run(true);
  EXPECT_GT(wrong, even);
}

}  // namespace
}  // namespace dsf
