#include "core/snapshot.h"

#include <fstream>

#include <gtest/gtest.h>

#include "workload/workload.h"

namespace dsf {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

DenseFile::Options SmallOptions() {
  DenseFile::Options options;
  options.num_pages = 64;
  options.d = 4;
  options.D = 44;
  return options;
}

TEST(Snapshot, RoundTripPreservesContentsAndConfig) {
  std::unique_ptr<DenseFile> file =
      std::move(*DenseFile::Create(SmallOptions()));
  Rng rng(5);
  for (const Record& r : MakeUniformRecords(150, 5000, rng)) {
    ASSERT_TRUE(file->Insert(r).ok());
  }
  const std::vector<Record> before = *file->ScanAll();
  const std::string path = TempPath("dsf_snapshot_roundtrip.bin");
  ASSERT_TRUE(SaveSnapshot(*file, path).ok());

  StatusOr<std::unique_ptr<DenseFile>> reopened = OpenSnapshot(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(*(*reopened)->ScanAll(), before);
  EXPECT_EQ((*reopened)->num_pages(), 64);
  EXPECT_EQ((*reopened)->capacity(), file->capacity());
  EXPECT_EQ((*reopened)->PolicyName(), "CONTROL2");
  EXPECT_TRUE((*reopened)->ValidateInvariants().ok());
  // The reopened file accepts further updates.
  ASSERT_TRUE((*reopened)->Insert(Record{999999, 1}).ok());
}

TEST(Snapshot, RoundTripEmptyFile) {
  std::unique_ptr<DenseFile> file =
      std::move(*DenseFile::Create(SmallOptions()));
  const std::string path = TempPath("dsf_snapshot_empty.bin");
  ASSERT_TRUE(SaveSnapshot(*file, path).ok());
  StatusOr<std::unique_ptr<DenseFile>> reopened = OpenSnapshot(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->size(), 0);
}

TEST(Snapshot, PreservesPolicyAndBlockSize) {
  DenseFile::Options options;
  options.num_pages = 64;
  options.d = 4;
  options.D = 6;  // forces macro-blocks
  options.policy = DenseFile::Policy::kControl1;
  std::unique_ptr<DenseFile> file =
      std::move(*DenseFile::Create(options));
  ASSERT_TRUE(file->Insert(7, 70).ok());
  const std::string path = TempPath("dsf_snapshot_policy.bin");
  ASSERT_TRUE(SaveSnapshot(*file, path).ok());
  StatusOr<std::unique_ptr<DenseFile>> reopened = OpenSnapshot(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->PolicyName(), "CONTROL1");
  EXPECT_EQ((*reopened)->block_size(), file->block_size());
  StatusOr<Value> v = (*reopened)->Get(7);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 70u);
}

TEST(Snapshot, RejectsMissingFile) {
  EXPECT_FALSE(OpenSnapshot("/nonexistent/dir/snap.bin").ok());
}

TEST(Snapshot, RejectsForeignFile) {
  const std::string path = TempPath("dsf_snapshot_foreign.bin");
  std::ofstream(path) << "definitely not a snapshot, but long enough to "
                         "pass the size check........";
  const Status s = OpenSnapshot(path).status();
  EXPECT_FALSE(s.ok());
}

TEST(Snapshot, RejectsTruncation) {
  std::unique_ptr<DenseFile> file =
      std::move(*DenseFile::Create(SmallOptions()));
  for (Key k = 1; k <= 50; ++k) ASSERT_TRUE(file->Insert(k, k).ok());
  const std::string path = TempPath("dsf_snapshot_trunc.bin");
  ASSERT_TRUE(SaveSnapshot(*file, path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  out.close();
  EXPECT_EQ(OpenSnapshot(path).status().code(), StatusCode::kCorruption);
}

TEST(Snapshot, RejectsBitFlip) {
  std::unique_ptr<DenseFile> file =
      std::move(*DenseFile::Create(SmallOptions()));
  for (Key k = 1; k <= 50; ++k) ASSERT_TRUE(file->Insert(k, k).ok());
  const std::string path = TempPath("dsf_snapshot_flip.bin");
  ASSERT_TRUE(SaveSnapshot(*file, path).ok());
  std::fstream io(path,
                  std::ios::binary | std::ios::in | std::ios::out);
  io.seekp(64);
  char byte;
  io.seekg(64);
  io.get(byte);
  io.seekp(64);
  io.put(static_cast<char>(byte ^ 0x40));
  io.close();
  EXPECT_EQ(OpenSnapshot(path).status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace dsf
