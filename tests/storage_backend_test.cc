// StorageBackend / FileBackend coverage: CRC32C vectors, differential
// replay parity between the in-memory simulation and the durable file
// backend, reopen round-trips through DenseFile::Open, superblock
// version rejection, and torn-page (CRC) handling.

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "analysis/auditor.h"
#include "core/dense_file.h"
#include "gtest/gtest.h"
#include "shard/sharded_dense_file.h"
#include "storage/file_backend.h"
#include "storage/storage_backend.h"
#include "util/crc32c.h"
#include "util/random.h"
#include "util/status.h"
#include "util/temp_dir.h"
#include "workload/reference_model.h"
#include "workload/workload.h"

namespace dsf {
namespace {

// ---------------------------------------------------------------------
// CRC32C

TEST(Crc32c, KnownVectors) {
  // The canonical check value for CRC-32C: "123456789".
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  // Empty input is the identity.
  EXPECT_EQ(Crc32c("", 0), 0u);
  // 32 zero bytes (iSCSI test vector).
  unsigned char zeros[32] = {0};
  EXPECT_EQ(Crc32c(zeros, sizeof(zeros)), 0x8A9136AAu);
}

TEST(Crc32c, ExtendComposes) {
  const char* data = "deadbeefcafe";
  const uint32_t whole = Crc32c(data, 12);
  uint32_t split = Crc32cExtend(0, data, 5);
  split = Crc32cExtend(split, data + 5, 7);
  EXPECT_EQ(split, whole);
}

// ---------------------------------------------------------------------
// ScopedTempDir

TEST(ScopedTempDir, CreatesAndRemovesRecursively) {
  std::string path;
  {
    ScopedTempDir dir("dsf-test");
    path = dir.path();
    struct stat st;
    ASSERT_EQ(::stat(path.c_str(), &st), 0);
    ASSERT_TRUE(S_ISDIR(st.st_mode));
    // Populate a nested tree to prove removal recurses.
    ASSERT_EQ(::mkdir((path + "/sub").c_str(), 0755), 0);
    FILE* f = ::fopen((path + "/sub/file").c_str(), "w");
    ASSERT_NE(f, nullptr);
    ::fputs("x", f);
    ::fclose(f);
  }
  struct stat st;
  EXPECT_NE(::stat(path.c_str(), &st), 0) << path << " leaked";
}

// ---------------------------------------------------------------------
// Shared workload

DenseFile::Options BaseOptions(int64_t cache_frames = 0) {
  DenseFile::Options options;
  options.num_pages = 32;
  options.d = 4;
  options.D = 20;
  options.cache_frames = cache_frames;
  options.audit_every_command = true;
  return options;
}

struct Workload {
  std::vector<Record> initial;
  Trace trace;
};

Workload MakeWorkload() {
  Workload w;
  Rng rng(20260808);
  w.initial = MakeAscendingRecords(80, 30, 30);
  w.trace = AscendingInserts(24, 601, 1);
  const Trace tail = UniformMix(120, 0.35, 0.55, 2700, rng);
  w.trace.insert(w.trace.end(), tail.begin(), tail.end());
  return w;
}

Status Apply(DenseFile& file, const Op& op) {
  switch (op.kind) {
    case Op::Kind::kInsert:
      return file.Insert(op.record);
    case Op::Kind::kDelete:
      return file.Delete(op.record.key);
    case Op::Kind::kGet:
      return file.Get(op.record.key).status();
    case Op::Kind::kScan: {
      std::vector<Record> out;
      return file.Scan(op.record.key, op.scan_hi, &out);
    }
  }
  return Status::OK();
}

void Replay(DenseFile& file, const Workload& w) {
  ASSERT_TRUE(file.BulkLoad(w.initial).ok());
  for (const Op& op : w.trace) IgnoreStatus(Apply(file, op));
}

// ---------------------------------------------------------------------
// Differential replay parity: the same trace against the pure in-memory
// simulation, a MemoryBackend-attached file, and a FileBackend-attached
// file must agree on the final contents, the audit verdict, AND the
// accounted I/O (the backend must not perturb the paper's cost model).

struct ParityRun {
  IoStats stats;
  std::vector<Record> contents;
  bool audit_ok = false;
};

ParityRun RunParity(const Workload& w, DenseFile::Options options) {
  ParityRun out;
  std::unique_ptr<DenseFile> file = *DenseFile::Create(options);
  Replay(*file, w);
  out.stats = file->io_stats();
  out.contents = *file->ScanAll();
  out.audit_ok = file->Audit().ok();
  return out;
}

void ExpectSameAccounting(const IoStats& a, const IoStats& b) {
  EXPECT_EQ(a.page_reads, b.page_reads);
  EXPECT_EQ(a.page_writes, b.page_writes);
  EXPECT_EQ(a.logical_reads, b.logical_reads);
  EXPECT_EQ(a.logical_writes, b.logical_writes);
  EXPECT_EQ(a.seeks, b.seeks);
  EXPECT_EQ(a.sequential_accesses, b.sequential_accesses);
}

class BackendParity : public ::testing::TestWithParam<DenseFile::Policy> {};

TEST_P(BackendParity, SimulatedVsMemoryVsFile) {
  const Workload w = MakeWorkload();

  DenseFile::Options simulated = BaseOptions();
  simulated.policy = GetParam();

  DenseFile::Options with_memory = simulated;
  with_memory.backend_factory = [](int64_t num_pages, int64_t page_capacity)
      -> StatusOr<std::unique_ptr<StorageBackend>> {
    return std::unique_ptr<StorageBackend>(
        std::make_unique<MemoryBackend>(num_pages, page_capacity));
  };

  ScopedTempDir dir("dsf-parity");
  DenseFile::Options with_file = simulated;
  FileBackend::Options fb;
  fb.directory = dir.path();
  with_file.backend_factory = FileBackend::CreateFactory(fb);

  const ParityRun base = RunParity(w, simulated);
  const ParityRun mem = RunParity(w, with_memory);
  const ParityRun file = RunParity(w, with_file);

  EXPECT_TRUE(base.audit_ok);
  EXPECT_TRUE(mem.audit_ok);
  EXPECT_TRUE(file.audit_ok);
  EXPECT_EQ(base.contents, mem.contents);
  EXPECT_EQ(base.contents, file.contents);
  ExpectSameAccounting(base.stats, mem.stats);
  ExpectSameAccounting(base.stats, file.stats);
}

INSTANTIATE_TEST_SUITE_P(Policies, BackendParity,
                         ::testing::Values(DenseFile::Policy::kControl2,
                                           DenseFile::Policy::kControl1,
                                           DenseFile::Policy::kLocalShift),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case DenseFile::Policy::kControl2:
                               return std::string("Control2");
                             case DenseFile::Policy::kControl1:
                               return std::string("Control1");
                             case DenseFile::Policy::kLocalShift:
                               return std::string("LocalShift");
                           }
                           return std::string("Unknown");
                         });

// Pooled configuration: physical traffic goes through FlushAll's
// dirty-order write-back; the backend must see it unchanged.
TEST(BackendParity, PooledSimulatedVsFile) {
  const Workload w = MakeWorkload();
  DenseFile::Options simulated = BaseOptions(/*cache_frames=*/4);

  ScopedTempDir dir("dsf-parity-pool");
  DenseFile::Options with_file = simulated;
  FileBackend::Options fb;
  fb.directory = dir.path();
  with_file.backend_factory = FileBackend::CreateFactory(fb);

  const ParityRun base = RunParity(w, simulated);
  const ParityRun file = RunParity(w, with_file);
  EXPECT_TRUE(base.audit_ok);
  EXPECT_TRUE(file.audit_ok);
  EXPECT_EQ(base.contents, file.contents);
  ExpectSameAccounting(base.stats, file.stats);
}

// ---------------------------------------------------------------------
// Reopen round-trip

TEST(FileBackendReopen, RoundTripsThroughOpen) {
  const Workload w = MakeWorkload();
  ScopedTempDir dir("dsf-reopen");
  FileBackend::Options fb;
  fb.directory = dir.path();

  std::vector<Record> expected;
  {
    DenseFile::Options options = BaseOptions();
    options.backend_factory = FileBackend::CreateFactory(fb);
    std::unique_ptr<DenseFile> file = *DenseFile::Create(options);
    Replay(*file, w);
    expected = *file->ScanAll();
    FileBackend* backend = static_cast<FileBackend*>(file->storage_backend());
    ASSERT_NE(backend, nullptr);
    EXPECT_GT(backend->stats().pwrites, 0);
    EXPECT_GT(backend->stats().syncs, 0);
  }  // destructor closes the file pair; commands already synced

  DenseFile::Options options = BaseOptions();
  options.backend_factory = FileBackend::OpenFactory(fb);
  StatusOr<std::unique_ptr<DenseFile>> reopened = DenseFile::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  DenseFile& file = **reopened;
  EXPECT_TRUE(file.corrupt_pages_at_open().empty());
  // A clean close needs no content repair — at most calibrator resync
  // (the in-memory index always dies with the process).
  EXPECT_FALSE(file.open_repair_report().rewrote_file);
  EXPECT_EQ(file.open_repair_report().duplicate_records_dropped, 0);
  EXPECT_EQ(*file.ScanAll(), expected);
  EXPECT_TRUE(file.Audit().ok());

  // The reopened file must keep working: run the tail of the trace again
  // (keys shifted so inserts hit fresh ranges are unnecessary — a replay
  // of the same ops exercises both hit and miss paths).
  for (const Op& op : w.trace) IgnoreStatus(Apply(file, op));
  EXPECT_TRUE(file.Audit().ok());
}

TEST(FileBackendReopen, OpenNeedsFactory) {
  DenseFile::Options options = BaseOptions();
  EXPECT_TRUE(DenseFile::Open(options).status().IsInvalidArgument());
}

TEST(FileBackendReopen, RejectsVersionMismatch) {
  ScopedTempDir dir("dsf-version");
  FileBackend::Options fb;
  fb.directory = dir.path();
  { ASSERT_TRUE(FileBackend::Create(fb, 32, 21).ok()); }
  ASSERT_TRUE(
      FileBackend::OverwriteSuperblockVersionForTesting(dir.path(), 99).ok());
  const Status open = FileBackend::Open(fb).status();
  EXPECT_TRUE(open.code() == StatusCode::kFailedPrecondition) << open;
  // Through the DenseFile::Open plumbing as well.
  DenseFile::Options options = BaseOptions();
  options.backend_factory = FileBackend::OpenFactory(fb);
  EXPECT_TRUE(DenseFile::Open(options).status().code() == StatusCode::kFailedPrecondition);
}

TEST(FileBackendReopen, RejectsGeometryMismatch) {
  ScopedTempDir dir("dsf-geometry");
  FileBackend::Options fb;
  fb.directory = dir.path();
  { ASSERT_TRUE(FileBackend::Create(fb, 64, 21).ok()); }
  // The on-disk pair holds 64 pages; a 32-page file must refuse it.
  DenseFile::Options options = BaseOptions();
  options.backend_factory = FileBackend::OpenFactory(fb);
  EXPECT_TRUE(DenseFile::Open(options).status().code() == StatusCode::kFailedPrecondition);
}

TEST(FileBackendReopen, RejectsBadMagic) {
  ScopedTempDir dir("dsf-magic");
  FileBackend::Options fb;
  fb.directory = dir.path();
  { ASSERT_TRUE(FileBackend::Create(fb, 32, 21).ok()); }
  FILE* f = ::fopen((dir.path() + "/dsf.idx").c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ::fputs("NOTDSF00", f);
  ::fclose(f);
  EXPECT_TRUE(FileBackend::Open(fb).status().IsInvalidArgument());
}

// ---------------------------------------------------------------------
// Torn / corrupt pages

TEST(FileBackendCorruption, ReadPageReturnsTypedIoError) {
  ScopedTempDir dir("dsf-crc");
  FileBackend::Options fb;
  fb.directory = dir.path();
  std::unique_ptr<FileBackend> backend = *FileBackend::Create(fb, 8, 21);
  Page page(21);
  ASSERT_TRUE(page.Insert(Record{10, 100}).ok());
  ASSERT_TRUE(page.Insert(Record{20, 200}).ok());
  ASSERT_TRUE(backend->WritePage(3, page).ok());
  ASSERT_TRUE(backend->SyncBarrier().ok());

  Page out(21);
  ASSERT_TRUE(backend->ReadPage(3, &out).ok());
  EXPECT_EQ(out.records(), page.records());

  ASSERT_TRUE(backend->CorruptPageForTesting(3).ok());
  const Status corrupt = backend->ReadPage(3, &out);
  EXPECT_TRUE(corrupt.IsIoError()) << corrupt;
  EXPECT_TRUE(out.empty());  // a corrupt slot never leaks partial records
  EXPECT_GE(backend->stats().crc_failures, 1);
  // Untouched pages still read fine; an empty (hole) slot is valid.
  EXPECT_TRUE(backend->ReadPage(4, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(FileBackendCorruption, OpenRepairsAroundCorruptPage) {
  const Workload w = MakeWorkload();
  ScopedTempDir dir("dsf-corrupt-open");
  FileBackend::Options fb;
  fb.directory = dir.path();

  std::vector<Record> expected;
  Address victim = 0;
  {
    DenseFile::Options options = BaseOptions();
    options.backend_factory = FileBackend::CreateFactory(fb);
    std::unique_ptr<DenseFile> file = *DenseFile::Create(options);
    Replay(*file, w);
    expected = *file->ScanAll();
    // Pick a populated page to corrupt.
    for (Address a = 1; a <= file->num_pages(); ++a) {
      if (!file->control().file().Peek(a).empty()) {
        victim = a;
        break;
      }
    }
    ASSERT_NE(victim, 0);
  }
  {
    std::unique_ptr<FileBackend> raw = *FileBackend::Open(fb);
    ASSERT_TRUE(raw->CorruptPageForTesting(victim).ok());
  }

  DenseFile::Options options = BaseOptions();
  options.backend_factory = FileBackend::OpenFactory(fb);
  StatusOr<std::unique_ptr<DenseFile>> reopened = DenseFile::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  DenseFile& file = **reopened;
  // The torn page was detected, dropped, and reported...
  ASSERT_EQ(file.corrupt_pages_at_open().size(), 1u);
  EXPECT_EQ(file.corrupt_pages_at_open()[0], victim);
  // ...the repaired file is structurally sound...
  EXPECT_TRUE(file.Audit().ok()) << file.Audit().ToString();
  // ...and exactly the surviving records remain: the reopened contents
  // are the expected set minus the victim page's records (which are a
  // contiguous key run, so verify by subset + count arithmetic).
  const std::vector<Record> survivors = *file.ScanAll();
  std::set<Key> surviving_keys;
  for (const Record& r : survivors) surviving_keys.insert(r.key);
  int64_t lost = 0;
  for (const Record& r : expected) {
    if (surviving_keys.count(r.key) == 0) ++lost;
  }
  EXPECT_EQ(static_cast<int64_t>(expected.size()) - lost,
            static_cast<int64_t>(survivors.size()));
  EXPECT_GT(lost, 0);  // the victim page really held records
  // The durable image now matches the repaired state: a second reopen
  // is clean.
  {
    StatusOr<std::unique_ptr<DenseFile>> again = DenseFile::Open(options);
    ASSERT_TRUE(again.ok()) << again.status();
    EXPECT_TRUE((*again)->corrupt_pages_at_open().empty());
    EXPECT_EQ(*(*again)->ScanAll(), survivors);
  }
}

// ---------------------------------------------------------------------
// Sharded plumbing

TEST(ShardedBackend, RejectsOrdinalBlindFactory) {
  // Exercised through the compile-time surface only lightly here: the
  // dedicated error path, because an ordinal-blind factory would hand
  // every shard the same file pair.
  ScopedTempDir dir("dsf-shard-reject");
  FileBackend::Options fb;
  fb.directory = dir.path();
  ShardedDenseFile::Options options;
  options.num_shards = 2;
  options.shard = BaseOptions();
  options.key_space = 10000;
  options.shard.backend_factory = FileBackend::CreateFactory(fb);
  EXPECT_TRUE(ShardedDenseFile::Create(options).status().IsInvalidArgument());
}

TEST(ShardedBackend, PerShardDirectoriesRoundTrip) {
  ScopedTempDir dir("dsf-shard");
  auto shard_factory = [&dir](bool create) {
    return [&dir, create](int shard, int64_t num_pages,
                          int64_t page_capacity)
               -> StatusOr<std::unique_ptr<StorageBackend>> {
      FileBackend::Options fb;
      fb.directory = dir.path() + "/shard" + std::to_string(shard);
      if (create) {
        ::mkdir(fb.directory.c_str(), 0755);
        return FileBackend::CreateFactory(fb)(num_pages, page_capacity);
      }
      return FileBackend::OpenFactory(fb)(num_pages, page_capacity);
    };
  };

  std::vector<Record> expected;
  {
    ShardedDenseFile::Options options;
    options.num_shards = 2;
    options.shard = BaseOptions();
    options.key_space = 10000;
    options.shard_backend_factory = shard_factory(/*create=*/true);
    StatusOr<std::unique_ptr<ShardedDenseFile>> created =
        ShardedDenseFile::Create(options);
    ASSERT_TRUE(created.ok()) << created.status();
    ShardedDenseFile& file = **created;
    for (Key k = 100; k <= 9000; k += 73) {
      ASSERT_TRUE(file.Insert(k, k * 10).ok());
    }
    expected = *file.ScanAll();
  }
  // Reopen each shard from its own directory and verify the union.
  ShardedDenseFile::Options options;
  options.num_shards = 2;
  options.shard = BaseOptions();
  options.key_space = 10000;
  options.shard_backend_factory = shard_factory(/*create=*/false);
  StatusOr<std::unique_ptr<ShardedDenseFile>> reopened =
      ShardedDenseFile::Create(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  ShardedDenseFile& file = **reopened;
  StatusOr<RepairReport> report = file.CheckAndRepair();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(*file.ScanAll(), expected);
}

}  // namespace
}  // namespace dsf
