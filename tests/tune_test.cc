// Tests for the self-tuning subsystem (src/tune/) and its actuators:
// histogram quantile helpers, BufferPool::Resize, Memtable::SetCapacity,
// the DenseFile tuning knobs (J floor, certifier recalibration, drain
// batch, staging capacity), the AdaptiveController's hysteresis-damped
// decisions over synthetic signals, and the ShardedDenseFile wiring
// (frame moves with exact conservation, the publish cadence).

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/dense_file.h"
#include "gtest/gtest.h"
#include "ingest/memtable.h"
#include "obs/bound_certifier.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "shard/sharded_dense_file.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"
#include "tune/controller.h"
#include "tune/tune_options.h"
#include "util/random.h"
#include "workload/workload.h"

namespace dsf {
namespace {

// ---------------------------------------------------------------------------
// Histogram quantiles (the controller's windowed-p99 signal).

TEST(QuantileTest, EmptyAndClamping) {
  std::array<int64_t, kHistogramBuckets> buckets{};
  EXPECT_EQ(Histogram::QuantileFromBuckets(buckets, 0.99), 0);

  buckets[3] = 10;  // values in [8, 16), upper edge 15
  // q is clamped into [0, 1]; any quantile of a single-bucket
  // distribution is that bucket's upper edge.
  EXPECT_EQ(Histogram::QuantileFromBuckets(buckets, -0.5), 15);
  EXPECT_EQ(Histogram::QuantileFromBuckets(buckets, 0.0), 15);
  EXPECT_EQ(Histogram::QuantileFromBuckets(buckets, 0.5), 15);
  EXPECT_EQ(Histogram::QuantileFromBuckets(buckets, 1.0), 15);
  EXPECT_EQ(Histogram::QuantileFromBuckets(buckets, 7.0), 15);
}

TEST(QuantileTest, RankWalksBucketBoundaries) {
  std::array<int64_t, kHistogramBuckets> buckets{};
  buckets[0] = 98;  // [0, 2)
  buckets[5] = 1;   // [32, 64)
  buckets[9] = 1;   // [512, 1024)
  // 100 observations: ranks 1..98 in bucket 0, 99 in bucket 5, 100 in
  // bucket 9.
  EXPECT_EQ(Histogram::QuantileFromBuckets(buckets, 0.50), 1);
  EXPECT_EQ(Histogram::QuantileFromBuckets(buckets, 0.98), 1);
  EXPECT_EQ(Histogram::QuantileFromBuckets(buckets, 0.99), 63);
  EXPECT_EQ(Histogram::QuantileFromBuckets(buckets, 1.0), 1023);
}

TEST(QuantileTest, UpperEdgeNeverUnderstates) {
  Histogram h;
  h.Observe(100);  // bucket 6: [64, 128), upper edge 127
  h.Observe(100);
  h.Observe(1000);  // bucket 9: [512, 1024), upper edge 1023
  // Estimates sit at or above the true quantile, within 2x.
  EXPECT_EQ(h.ApproxQuantile(0.5), 127);
  EXPECT_EQ(h.ApproxQuantile(0.99), 1023);
  EXPECT_GE(h.ApproxQuantile(0.99), 1000);
  EXPECT_LE(h.ApproxQuantile(0.99), 2 * 1000);
}

TEST(QuantileTest, TopBucketSaturates) {
  std::array<int64_t, kHistogramBuckets> buckets{};
  buckets[kHistogramBuckets - 1] = 1;
  EXPECT_EQ(Histogram::QuantileFromBuckets(buckets, 0.99),
            std::numeric_limits<int64_t>::max());
}

TEST(QuantileTest, WindowDiffIsExact) {
  // The controller diffs two cumulative snapshots; bucket counts merge
  // and diff exactly, so the window quantile sees only the new
  // observations.
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Observe(1);  // old regime: tiny
  const std::array<int64_t, kHistogramBuckets> before = h.BucketCounts();
  for (int i = 0; i < 50; ++i) h.Observe(500);  // new regime: bucket 8
  const std::array<int64_t, kHistogramBuckets> after = h.BucketCounts();

  std::array<int64_t, kHistogramBuckets> window{};
  for (int b = 0; b < kHistogramBuckets; ++b) {
    window[static_cast<size_t>(b)] = after[static_cast<size_t>(b)] -
                                     before[static_cast<size_t>(b)];
  }
  // Cumulative p99 is polluted by the old observations' mass; the
  // window p99 is purely the new regime.
  EXPECT_EQ(Histogram::QuantileFromBuckets(window, 0.5), 511);
  EXPECT_EQ(Histogram::QuantileFromBuckets(window, 0.99), 511);
}

// ---------------------------------------------------------------------------
// BufferPool::Resize (the frame-donation actuator).

class PoolResizeTest : public ::testing::Test {
 protected:
  PoolResizeTest() : file_(/*num_pages=*/64, /*page_capacity=*/8) {}

  std::unique_ptr<BufferPool> MakePool(int64_t frames) {
    BufferPool::Options options;
    options.num_frames = frames;
    return std::make_unique<BufferPool>(&file_, options);
  }

  PageFile file_;
};

TEST_F(PoolResizeTest, GrowAddsFreeFrames) {
  auto pool = MakePool(2);
  ASSERT_TRUE(pool->PinRead(1).ok());
  ASSERT_TRUE(pool->PinRead(2).ok());
  EXPECT_TRUE(pool->Resize(5).ok());
  EXPECT_EQ(pool->num_frames(), 5);
  // Old residents survive a grow.
  ASSERT_TRUE(pool->PinRead(1).ok());
  EXPECT_EQ(pool->stats().hits, 1);
}

TEST_F(PoolResizeTest, ShrinkFlushesDirtyVictims) {
  auto pool = MakePool(4);
  // Dirty every frame so the departing tail frames are dirty victims.
  for (Address a = 5; a <= 8; ++a) {
    StatusOr<PageGuard> g = pool->PinWrite(a);
    ASSERT_TRUE(g.ok());
    ASSERT_TRUE(
        g->mutable_page()->Insert(Record{Key{10 * a}, Key{10 * a}}).ok());
  }
  EXPECT_EQ(file_.stats().page_writes, 0);  // write-back still deferred
  EXPECT_TRUE(pool->Resize(1).ok());
  EXPECT_EQ(pool->num_frames(), 1);
  // Dirty victims forced the safe-order flush: everything landed on the
  // device before the tail frames were dropped.
  EXPECT_GE(file_.stats().page_writes, 4);
  for (Address a = 5; a <= 8; ++a) {
    EXPECT_EQ(file_.RawPage(a).MinKey(), Key{10 * a});
  }
}

TEST_F(PoolResizeTest, RefusesWhileGuardsLive) {
  auto pool = MakePool(4);
  StatusOr<PageGuard> g = pool->PinRead(3);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(pool->Resize(2).code() == StatusCode::kFailedPrecondition);
  EXPECT_TRUE(pool->Resize(8).code() == StatusCode::kFailedPrecondition);
  g->Release();
  EXPECT_TRUE(pool->Resize(2).ok());
  EXPECT_EQ(pool->num_frames(), 2);
}

TEST_F(PoolResizeTest, RejectsNonPositive) {
  auto pool = MakePool(4);
  EXPECT_TRUE(pool->Resize(0).IsInvalidArgument());
  EXPECT_TRUE(pool->Resize(-3).IsInvalidArgument());
  EXPECT_EQ(pool->num_frames(), 4);
}

// ---------------------------------------------------------------------------
// Memtable::SetCapacity clamps (staged entries are never dropped).

TEST(MemtableCapacityTest, ClampsToFloorAndFill) {
  Memtable::Options options;
  options.max_entries = 16;
  Memtable table(options);
  EXPECT_EQ(table.SetCapacity(8), 8);
  EXPECT_EQ(table.SetCapacity(0), 1);   // floor: at least one entry
  EXPECT_EQ(table.SetCapacity(-5), 1);
  EXPECT_EQ(table.SetCapacity(16), 16);
  for (Key k = 1; k <= 6; ++k) {
    ASSERT_TRUE(table.Add(Record{k, k}, StagedEntry::Kind::kInsert).ok());
  }
  // A shrink below the current fill lands AT the fill — the auditor's
  // size <= capacity invariant holds and nothing staged is dropped.
  EXPECT_EQ(table.SetCapacity(2), 6);
  EXPECT_EQ(table.size(), 6);
}

// ---------------------------------------------------------------------------
// DenseFile actuators: J floor, certifier recalibration, drain knobs.

DenseFile::Options SmallControl2(bool certify) {
  DenseFile::Options options;
  options.num_pages = 32;
  options.d = 4;
  options.D = 20;
  options.policy = DenseFile::Policy::kControl2;
  options.certify_bound = certify;
  return options;
}

TEST(DenseFileTuneTest, MaintenanceJFloorIsTheOpenTimeDefault) {
  auto file = std::move(*DenseFile::Create(SmallControl2(true)));
  const int64_t default_j = file->maintenance_j();
  EXPECT_EQ(file->maintenance_j_floor(), default_j);
  // Theorem 5.5's floor: never below the resolved default.
  EXPECT_TRUE(file->SetMaintenanceJ(default_j - 1).IsInvalidArgument());
  EXPECT_TRUE(file->SetMaintenanceJ(1).IsInvalidArgument());
  EXPECT_TRUE(file->SetMaintenanceJ(default_j).ok());
  EXPECT_TRUE(file->SetMaintenanceJ(2 * default_j).ok());
  EXPECT_EQ(file->maintenance_j(), 2 * default_j);
  EXPECT_EQ(file->maintenance_j_floor(), default_j);
}

TEST(DenseFileTuneTest, MaintenanceJRejectedOffControl2) {
  DenseFile::Options options = SmallControl2(false);
  options.policy = DenseFile::Policy::kControl1;
  auto file = std::move(*DenseFile::Create(options));
  EXPECT_TRUE(file->SetMaintenanceJ(100).IsInvalidArgument());
}

// The satellite-2 regression: after a J retune, subsequent commands are
// checked against the NEW budget (one unbroken watch, switch on the
// record) — not the stale open-time envelope.
TEST(DenseFileTuneTest, PostTuneCommandsCheckedAgainstNewBudget) {
  auto file = std::move(*DenseFile::Create(SmallControl2(true)));
  const int64_t k = file->block_size();
  const int64_t default_j = file->maintenance_j();
  const int64_t old_budget = file->bound_budget();
  EXPECT_EQ(old_budget, BoundCertifier::BudgetFor(k, default_j));

  ASSERT_TRUE(file->Insert(100, 1).ok());
  const BoundReport* report = file->bound_report();
  ASSERT_NE(report, nullptr);
  const int64_t checked_before = report->commands_checked;
  EXPECT_EQ(report->recalibrations, 0);

  const int64_t new_j = default_j + 5;
  ASSERT_TRUE(file->SetMaintenanceJ(new_j).ok());
  // The envelope moved with (K, J), coverage counters kept running.
  EXPECT_EQ(file->bound_budget(), BoundCertifier::BudgetFor(k, new_j));
  EXPECT_EQ(report->budget, BoundCertifier::BudgetFor(k, new_j));
  EXPECT_EQ(report->J, new_j);
  EXPECT_GE(report->recalibrations, 1);

  ASSERT_TRUE(file->Insert(200, 2).ok());
  EXPECT_EQ(report->commands_checked, checked_before + 1);
  EXPECT_TRUE(report->ok());
}

TEST(DenseFileTuneTest, CompactRecalibratesTheEnvelope) {
  auto file = std::move(*DenseFile::Create(SmallControl2(true)));
  for (Key k = 1; k <= 20; ++k) ASSERT_TRUE(file->Insert(k, k).ok());
  const BoundReport* report = file->bound_report();
  ASSERT_NE(report, nullptr);
  ASSERT_TRUE(file->Compact().ok());
  EXPECT_GE(report->recalibrations, 1);
  EXPECT_TRUE(report->ok());
}

TEST(DenseFileTuneTest, DrainBatchOverrideAndRestore) {
  DenseFile::Options options = SmallControl2(false);
  options.staging_entries = 16;
  auto file = std::move(*DenseFile::Create(options));
  const int64_t auto_batch = file->drain_batch();
  ASSERT_GE(auto_batch, 4);

  file->SetDrainBatch(2 * auto_batch);
  EXPECT_EQ(file->drain_batch(), 2 * auto_batch);
  // The trigger follows the batch: max(batch, capacity / 2).
  EXPECT_EQ(file->drain_trigger(),
            std::max<int64_t>(2 * auto_batch, 16 / 2));
  file->SetDrainBatch(0);  // restore the auto default
  EXPECT_EQ(file->drain_batch(), auto_batch);
}

TEST(DenseFileTuneTest, StagingCapacityRetarget) {
  DenseFile::Options options = SmallControl2(false);
  options.staging_entries = 16;
  auto file = std::move(*DenseFile::Create(options));
  EXPECT_EQ(file->SetStagingCapacity(32), 32);
  EXPECT_EQ(file->SetStagingCapacity(8), 8);
  // Staging off: the knob reports 0 and stays a no-op.
  auto plain = std::move(*DenseFile::Create(SmallControl2(false)));
  EXPECT_EQ(plain->SetStagingCapacity(32), 0);
  EXPECT_TRUE(plain->ResizeCache(4).code() == StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// AdaptiveController decisions over synthetic signals.

TuneOptions FastTuning() {
  TuneOptions options;
  options.enabled = true;
  options.consecutive_ticks = 2;
  options.cooldown_ticks = 2;
  options.min_miss_signal = 8;
  options.min_frames_per_shard = 1;
  options.min_staging_entries = 8;
  return options;
}

std::vector<TuneShardSignals> TwoShards() {
  std::vector<TuneShardSignals> signals(2);
  for (auto& s : signals) {
    s.pool_frames = 8;
    s.staging_capacity = 32;
    s.drain_batch = 8;
    s.j = 13;
    s.default_j = 13;
  }
  return signals;
}

TEST(ControllerTest, FirstTickOnlySeeds) {
  AdaptiveController controller(FastTuning(), 2, nullptr);
  EXPECT_TRUE(controller.Tick(TwoShards()).empty());
  EXPECT_EQ(controller.stats().ticks, 1);
}

TEST(ControllerTest, PoolMoveNeedsConsecutiveAgreeingTicks) {
  AdaptiveController controller(FastTuning(), 2, nullptr);
  std::vector<TuneShardSignals> signals = TwoShards();
  controller.Tick(signals);  // seed

  signals[0].pool_misses += 100;
  EXPECT_TRUE(controller.Tick(signals).empty());  // streak 1 of 2

  signals[0].pool_misses += 100;
  const TuneDecision decision = controller.Tick(signals);  // streak 2: fire
  ASSERT_EQ(decision.frame_moves.size(), 1u);
  EXPECT_EQ(decision.frame_moves[0].from, 1);
  EXPECT_EQ(decision.frame_moves[0].to, 0);
  // A quarter of the donor's 8 frames.
  EXPECT_EQ(decision.frame_moves[0].frames, 2);

  // Cooldown: the same imbalance does not fire again immediately.
  signals[0].pool_misses += 100;
  EXPECT_TRUE(controller.Tick(signals).frame_moves.empty());
}

TEST(ControllerTest, PoolMoveRespectsDonorFloor) {
  TuneOptions options = FastTuning();
  options.consecutive_ticks = 1;
  options.cooldown_ticks = 0;
  AdaptiveController controller(options, 2, nullptr);
  std::vector<TuneShardSignals> signals = TwoShards();
  signals[1].pool_frames = 1;  // donor already at the floor
  controller.Tick(signals);
  signals[0].pool_misses += 100;
  // No donor above min_frames_per_shard: nothing to move.
  EXPECT_TRUE(controller.Tick(signals).frame_moves.empty());
}

TEST(ControllerTest, NoisyWindowBelowMissFloorNeverFires) {
  TuneOptions options = FastTuning();
  options.consecutive_ticks = 1;
  options.cooldown_ticks = 0;
  AdaptiveController controller(options, 2, nullptr);
  std::vector<TuneShardSignals> signals = TwoShards();
  controller.Tick(signals);
  for (int i = 0; i < 5; ++i) {
    signals[0].pool_misses += options.min_miss_signal - 1;
    EXPECT_TRUE(controller.Tick(signals).frame_moves.empty());
  }
}

TEST(ControllerTest, RegretfulMoveSuspendsTheBalancer) {
  TuneOptions options = FastTuning();
  AdaptiveController controller(options, 2, nullptr);
  std::vector<TuneShardSignals> signals = TwoShards();
  controller.Tick(signals);  // seed
  signals[0].pool_misses += 100;
  controller.Tick(signals);
  signals[0].pool_misses += 100;
  ASSERT_EQ(controller.Tick(signals).frame_moves.size(), 1u);

  // The recipient's misses never improve (its working set dwarfs any
  // pool): once judged, the balancer suspends moves well past the
  // plain cooldown, then must re-arm a full streak before firing.
  for (int i = 0; i < options.pool_regret_backoff_ticks + 2; ++i) {
    signals[0].pool_misses += 100;
    EXPECT_TRUE(controller.Tick(signals).frame_moves.empty()) << i;
  }
  signals[0].pool_misses += 100;
  EXPECT_EQ(controller.Tick(signals).frame_moves.size(), 1u);
}

TEST(ControllerTest, AbsorptionShrinksDrainBatch) {
  AdaptiveController controller(FastTuning(), 2, nullptr);
  std::vector<TuneShardSignals> signals = TwoShards();
  controller.Tick(signals);  // seed

  // Staged inserts keep dying to later deletes in memory while the
  // buffer sits well under pressure: the batch jumps straight to the
  // floor so the buffer stays fuller and absorbs more.
  for (int tick = 0; tick < 2; ++tick) {
    signals[0].staging_entries = 10;
    signals[0].staging_puts += 20;
    signals[0].staging_annihilations += 5;
    const TuneDecision decision = controller.Tick(signals);
    if (tick == 0) {
      EXPECT_TRUE(decision.drain_changes.empty());  // streak 1 of 2
      continue;
    }
    ASSERT_EQ(decision.drain_changes.size(), 1u);
    EXPECT_EQ(decision.drain_changes[0].shard, 0);
    EXPECT_EQ(decision.drain_changes[0].batch, 2);  // min_drain_batch
  }
}

TEST(ControllerTest, DrainRaiseOnPressureThenRestoreWhenIdle) {
  AdaptiveController controller(FastTuning(), 2, nullptr);
  std::vector<TuneShardSignals> signals = TwoShards();
  controller.Tick(signals);  // seed

  // Shard 0 under pressure: >= 3/4 full, arrivals outpacing drains.
  signals[0].staging_entries = 30;
  signals[0].staging_puts += 100;
  signals[0].drained_entries += 10;
  EXPECT_TRUE(controller.Tick(signals).drain_changes.empty());
  signals[0].staging_puts += 100;
  signals[0].drained_entries += 10;
  TuneDecision decision = controller.Tick(signals);
  ASSERT_EQ(decision.drain_changes.size(), 1u);
  EXPECT_EQ(decision.drain_changes[0].shard, 0);
  EXPECT_EQ(decision.drain_changes[0].batch, 16);  // doubled
  // Shard 1 idles near-empty with spare capacity: donation proposed.
  ASSERT_EQ(decision.staging_moves.size(), 1u);
  EXPECT_EQ(decision.staging_moves[0].from, 1);
  EXPECT_EQ(decision.staging_moves[0].to, 0);
  EXPECT_EQ(decision.staging_moves[0].entries, (32 - 8) / 2);

  // Pressure clears: after consecutive idle ticks (and cooldown), the
  // batch restores to the auto default.
  signals[0].staging_entries = 2;
  TuneDecision restore;
  for (int i = 0; i < 6 && restore.drain_changes.empty(); ++i) {
    restore = controller.Tick(signals);
  }
  ASSERT_EQ(restore.drain_changes.size(), 1u);
  EXPECT_EQ(restore.drain_changes[0].shard, 0);
  EXPECT_EQ(restore.drain_changes[0].batch, 0);  // 0 = auto default
}

TEST(ControllerTest, HeadroomCollapseOrdersRecalibration) {
  AdaptiveController controller(FastTuning(), 2, nullptr);
  std::vector<TuneShardSignals> signals = TwoShards();
  signals[0].budget = 54;  // K=1, J=13: 4J+2
  signals[1].budget = 54;
  controller.Tick(signals);  // seed

  // Window p99 estimate 63 (bucket [32,64)) >= 0.85 * 54: collapse.
  signals[0].access_buckets[5] += 100;
  EXPECT_TRUE(controller.Tick(signals).recalibrations.empty());
  signals[0].access_buckets[5] += 100;
  const TuneDecision decision = controller.Tick(signals);
  ASSERT_EQ(decision.recalibrations.size(), 1u);
  EXPECT_EQ(decision.recalibrations[0].shard, 0);
  EXPECT_TRUE(decision.recalibrations[0].compact);
  // First response is Compact alone; the J raise waits for a repeat.
  EXPECT_EQ(decision.recalibrations[0].set_j, 0);
}

TEST(ControllerTest, RepeatedCollapseRaisesJThenCalmRestores) {
  TuneOptions options = FastTuning();
  options.consecutive_ticks = 1;
  options.cooldown_ticks = 1;
  AdaptiveController controller(options, 1, nullptr);
  std::vector<TuneShardSignals> signals(1);
  signals[0].pool_frames = 8;
  signals[0].j = 13;
  signals[0].default_j = 13;
  signals[0].budget = 54;
  controller.Tick(signals);  // seed

  // First collapse: Compact only.
  signals[0].access_buckets[5] += 100;
  TuneDecision first = controller.Tick(signals);
  ASSERT_EQ(first.recalibrations.size(), 1u);
  EXPECT_EQ(first.recalibrations[0].set_j, 0);

  // Sustained collapse: the second firing escalates to a J raise
  // (doubled, still under default * j_max_multiplier).
  TuneDecision second;
  for (int i = 0; i < 4 && second.recalibrations.empty(); ++i) {
    signals[0].access_buckets[5] += 100;
    second = controller.Tick(signals);
  }
  ASSERT_EQ(second.recalibrations.size(), 1u);
  EXPECT_EQ(second.recalibrations[0].set_j, 26);
  EXPECT_LE(second.recalibrations[0].set_j,
            13 * options.j_max_multiplier);

  // Calm windows with J above the default: restore to the floor, no
  // Compact needed to narrow an envelope.
  signals[0].j = 26;
  TuneDecision restore;
  for (int i = 0; i < 8 && restore.recalibrations.empty(); ++i) {
    restore = controller.Tick(signals);
  }
  ASSERT_EQ(restore.recalibrations.size(), 1u);
  EXPECT_EQ(restore.recalibrations[0].set_j, 13);
  EXPECT_FALSE(restore.recalibrations[0].compact);
}

TEST(ControllerTest, UncertifiedShardsNeverTriggerHeadroom) {
  TuneOptions options = FastTuning();
  options.consecutive_ticks = 1;
  options.cooldown_ticks = 0;
  AdaptiveController controller(options, 1, nullptr);
  std::vector<TuneShardSignals> signals(1);
  signals[0].pool_frames = 8;
  signals[0].budget = 0;  // certification off
  controller.Tick(signals);
  signals[0].access_buckets[10] += 1000;
  EXPECT_TRUE(controller.Tick(signals).recalibrations.empty());
}

TEST(ControllerTest, GaugesPublishedIntoRegistry) {
  MetricsRegistry registry;
  AdaptiveController controller(FastTuning(), 2, &registry);
  controller.Tick(TwoShards());
  controller.RecordApplied(/*actuations=*/3, /*frames_moved=*/2,
                           /*recalibrations=*/1);

  const MetricsSnapshot snapshot = registry.Snapshot();
  bool saw_ticks = false;
  bool saw_actuations = false;
  for (const auto& counter : snapshot.counters) {
    if (counter.name == kMetricTuneTicks) {
      saw_ticks = true;
      EXPECT_EQ(counter.value, 1);
    }
    if (counter.name == kMetricTuneActuations) {
      saw_actuations = true;
      EXPECT_EQ(counter.value, 3);
    }
  }
  EXPECT_TRUE(saw_ticks);
  EXPECT_TRUE(saw_actuations);
  bool saw_frames = false;
  for (const auto& gauge : snapshot.gauges) {
    if (gauge.name == std::string(kMetricTunePoolFrames) +
                          "{shard=\"0\"}") {
      saw_frames = true;
      EXPECT_EQ(gauge.value, 8);
    }
  }
  EXPECT_TRUE(saw_frames);
}

// ---------------------------------------------------------------------------
// ShardedDenseFile wiring: frame moves with conservation, cadence.

ShardedDenseFile::Options TwoShardOptions() {
  ShardedDenseFile::Options options;
  options.num_shards = 2;
  options.key_space = 2000;
  options.shard.num_pages = 48;
  options.shard.d = 4;
  options.shard.D = 20;
  options.shard.policy = DenseFile::Policy::kControl2;
  options.shard.cache_frames = 4;
  return options;
}

TEST(ShardedTuneTest, ForceTickMovesFramesTowardTheHotShard) {
  ShardedDenseFile::Options options = TwoShardOptions();
  options.tuning.enabled = true;
  options.tuning.tick_every_commands = 1 << 30;  // manual ticks only
  options.tuning.consecutive_ticks = 1;
  options.tuning.cooldown_ticks = 0;
  options.tuning.min_miss_signal = 4;
  auto file = std::move(*ShardedDenseFile::Create(options));
  ASSERT_NE(file->tuner(), nullptr);

  file->ForceTuneTick();  // seed the window
  // All traffic into shard 1 (keys > 1001): spread inserts miss the
  // 4-frame pool constantly while shard 0 stays silent.
  for (Key k = 0; k < 120; ++k) {
    ASSERT_TRUE(file->Insert(1010 + 8 * k, 1).ok());
  }
  file->ForceTuneTick();

  EXPECT_GT(file->shard_cache_frames(1), 4);
  EXPECT_LT(file->shard_cache_frames(0), 4);
  // Conservation: every frame the donor gave, the recipient got.
  EXPECT_EQ(file->shard_cache_frames(0) + file->shard_cache_frames(1), 8);
  EXPECT_GT(file->tuner()->stats().applied_actuations, 0);
  EXPECT_GT(file->tuner()->stats().applied_frames_moved, 0);
}

TEST(ShardedTuneTest, TickCadencePiggybacksOnCommands) {
  ShardedDenseFile::Options options = TwoShardOptions();
  options.tuning.enabled = true;
  options.tuning.tick_every_commands = 16;
  auto file = std::move(*ShardedDenseFile::Create(options));
  for (Key k = 1; k <= 40; ++k) {
    ASSERT_TRUE(file->Insert(10 * k, 1).ok());
  }
  // 40 commands at one tick per 16: the boundary-crossing commands
  // ticked the controller (2 ticks), nobody else did.
  EXPECT_EQ(file->tuner()->stats().ticks, 2);
}

TEST(ShardedTuneTest, ManualShardResizeActuator) {
  auto file = std::move(*ShardedDenseFile::Create(TwoShardOptions()));
  ASSERT_TRUE(file->ResizeShardCache(0, 1).ok());
  ASSERT_TRUE(file->ResizeShardCache(1, 7).ok());
  EXPECT_EQ(file->shard_cache_frames(0), 1);
  EXPECT_EQ(file->shard_cache_frames(1), 7);
}

// Satellite 3: PublishMetrics on a command cadence instead of manual
// calls, with bounded staleness.
TEST(ShardedTuneTest, PublishCadenceAndStaleness) {
  MetricsRegistry registry;
  ShardedDenseFile::Options options = TwoShardOptions();
  options.shard.metrics = &registry;
  options.publish_metrics_every = 4;
  auto file = std::move(*ShardedDenseFile::Create(options));

  const auto shard_records = [&](int shard) -> int64_t {
    const std::string name = std::string(kMetricShardRecords) +
                             "{shard=\"" + std::to_string(shard) + "\"}";
    for (const auto& gauge : registry.Snapshot().gauges) {
      if (gauge.name == name) return gauge.value;
    }
    return -1;  // not yet published
  };

  ASSERT_TRUE(file->Insert(10, 1).ok());
  ASSERT_TRUE(file->Insert(20, 1).ok());
  ASSERT_TRUE(file->Insert(30, 1).ok());
  // Three commands: below the cadence, nothing published yet.
  EXPECT_EQ(shard_records(0), -1);

  ASSERT_TRUE(file->Insert(40, 1).ok());
  // The fourth command crossed the boundary and published.
  EXPECT_EQ(shard_records(0), 4);

  ASSERT_TRUE(file->Insert(50, 1).ok());
  ASSERT_TRUE(file->Insert(60, 1).ok());
  // Staleness is bounded by the cadence: the gauge still shows the
  // publish-time value until the next boundary...
  EXPECT_EQ(shard_records(0), 4);
  ASSERT_TRUE(file->Insert(70, 1).ok());
  ASSERT_TRUE(file->Insert(80, 1).ok());
  // ...which refreshes it.
  EXPECT_EQ(shard_records(0), 8);
}

TEST(ShardedTuneTest, NoTunerWithoutOptIn) {
  auto file = std::move(*ShardedDenseFile::Create(TwoShardOptions()));
  EXPECT_EQ(file->tuner(), nullptr);
  file->ForceTuneTick();  // no-op, no crash
  for (Key k = 1; k <= 20; ++k) {
    ASSERT_TRUE(file->Insert(10 * k, 1).ok());
  }
}

// End-to-end safety: a tuning storm (tight cadence, aggressive knobs,
// certified, audited) never breaches the envelope or corrupts state.
TEST(ShardedTuneTest, CertifiedAuditedRetuningStaysClean) {
  MetricsRegistry registry;
  ShardedDenseFile::Options options = TwoShardOptions();
  options.shard.metrics = &registry;
  options.shard.certify_bound = true;
  options.shard.audit_every_command = true;
  options.shard.staging_entries = 16;
  options.tuning.enabled = true;
  options.tuning.tick_every_commands = 8;
  options.tuning.consecutive_ticks = 1;
  options.tuning.cooldown_ticks = 1;
  options.tuning.min_miss_signal = 1;
  auto file = std::move(*ShardedDenseFile::Create(options));

  Rng rng(7);
  const Trace trace = UniformMix(400, 0.5, 0.2, 2000, rng);
  for (const Op& op : trace) {
    switch (op.kind) {
      case Op::Kind::kInsert:
        IgnoreStatus(file->Insert(op.record));
        break;
      case Op::Kind::kDelete:
        IgnoreStatus(file->Delete(op.record.key));
        break;
      default:
        IgnoreStatus(file->Get(op.record.key));
        break;
    }
  }
  ASSERT_TRUE(file->FlushStaging().ok());
  EXPECT_TRUE(file->ValidateInvariants().ok());
  // Zero certified-bound violations across all shards while retuning.
  for (const auto& counter : registry.Snapshot().counters) {
    if (counter.name.rfind(kMetricBoundViolations, 0) == 0) {
      EXPECT_EQ(counter.value, 0) << counter.name;
    }
  }
  // Frames conserved through however many moves the storm made.
  EXPECT_EQ(file->shard_cache_frames(0) + file->shard_cache_frames(1), 8);
}

// The TSan storm: concurrent writers and readers while the controller
// ticks on a tight cadence and an outside thread forces extra ticks.
// Exercises every actuator path (pool resize, drain batch, staging
// capacity, publish) against live commands; run under
// -DDSF_SANITIZE=thread this is the tuning data-race detector.
TEST(ShardedTuneTest, ConcurrentCommandsDuringRetuning) {
  MetricsRegistry registry;
  ShardedDenseFile::Options options = TwoShardOptions();
  options.shard.metrics = &registry;
  options.shard.certify_bound = true;
  options.shard.staging_entries = 16;
  options.publish_metrics_every = 16;
  options.tuning.enabled = true;
  options.tuning.tick_every_commands = 32;
  options.tuning.consecutive_ticks = 1;
  options.tuning.cooldown_ticks = 0;
  options.tuning.min_miss_signal = 1;
  auto file = std::move(*ShardedDenseFile::Create(options));

  std::atomic<bool> stop{false};
  std::thread writer_low([&] {
    for (Key k = 1; k <= 150; ++k) {
      IgnoreStatus(file->Insert(6 * k, 1));  // shard 0 keys
    }
  });
  std::thread writer_high([&] {
    for (Key k = 1; k <= 150; ++k) {
      IgnoreStatus(file->Insert(1001 + 6 * k, 1));  // shard 1 keys
    }
  });
  std::thread reader([&] {
    Rng rng(3);
    while (!stop.load(std::memory_order_acquire)) {
      IgnoreStatus(file->Get(static_cast<Key>(1 + rng.Uniform(2000))));
    }
  });
  for (int i = 0; i < 50; ++i) {
    file->ForceTuneTick();
    std::this_thread::yield();
  }
  writer_low.join();
  writer_high.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  ASSERT_TRUE(file->FlushStaging().ok());
  EXPECT_TRUE(file->ValidateInvariants().ok());
  EXPECT_EQ(file->shard_cache_frames(0) + file->shard_cache_frames(1), 8);
  for (const auto& counter : registry.Snapshot().counters) {
    if (counter.name.rfind(kMetricBoundViolations, 0) == 0) {
      EXPECT_EQ(counter.value, 0) << counter.name;
    }
  }
}

}  // namespace
}  // namespace dsf
