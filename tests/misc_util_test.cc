// Coverage for the supporting utilities: logging levels, fatal check
// macros (death tests), the smart-placement spill rule, and small
// diagnostics that the larger suites exercise only incidentally.

#include <gtest/gtest.h>

#include "core/control2.h"
#include "storage/disk_model.h"
#include "util/check.h"
#include "util/logging.h"
#include "workload/workload.h"

namespace dsf {
namespace {

TEST(Logging, LevelGatesEmission) {
  const LogLevel previous = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  testing::internal::CaptureStderr();
  DSF_LOG(kInfo) << "hidden";
  DSF_LOG(kWarning) << "also hidden";
  DSF_LOG(kError) << "visible";
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("hidden"), std::string::npos);
  EXPECT_NE(err.find("visible"), std::string::npos);
  EXPECT_NE(err.find("ERROR"), std::string::npos);
  SetLogLevel(previous);
}

TEST(Logging, DebugLevelEmitsEverything) {
  const LogLevel previous = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  testing::internal::CaptureStderr();
  DSF_LOG(kDebug) << "dbg " << 42;
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("dbg 42"), std::string::npos);
  SetLogLevel(previous);
}

using CheckDeathTest = ::testing::Test;

TEST(CheckDeathTest, CheckAbortsWithMessage) {
  EXPECT_DEATH({ DSF_CHECK(1 == 2) << "custom context " << 7; },
               "DSF_CHECK failed: 1 == 2.*custom context 7");
}

TEST(CheckDeathTest, CheckPassesSilently) {
  DSF_CHECK(2 + 2 == 4) << "never printed";
  SUCCEED();
}

TEST(CheckDeathTest, PageMisuseAborts) {
  EXPECT_DEATH(
      {
        Page p(4);
        (void)p.MinKey();  // empty page
      },
      "MinKey on empty page");
}

TEST(CheckDeathTest, PageFileRangeAborts) {
  EXPECT_DEATH(
      {
        PageFile f(4, 4);
        f.Read(5);
      },
      "outside");
}

TEST(DiskModel, ToStringMentionsParameters) {
  DiskModel disk{12.5, 0.5};
  const std::string s = disk.ToString();
  EXPECT_NE(s.find("12.5"), std::string::npos);
  EXPECT_NE(s.find("0.5"), std::string::npos);
}

TEST(SmartPlacement, SpillsPastSaturatedBlockIntoEmptyNeighbor) {
  Control2::Options options;
  options.config.num_pages = 8;
  options.config.d = 9;
  options.config.D = 18;
  options.config.smart_placement = true;
  options.J = 3;
  options.allow_gap_violation_for_testing = true;
  std::unique_ptr<Control2> c = std::move(*Control2::Create(options));
  // Page 3 one short of the warning band (g(leaf,2/3) = 17); page 4
  // empty; everything else calm. An append-after-page-3 key must spill
  // into page 4 instead of activating page 3.
  std::vector<std::vector<Record>> layout(8);
  for (int64_t i = 0; i < 16; ++i) {
    layout[2].push_back(Record{static_cast<Key>(3000 + i), 0});
  }
  layout[5].push_back(Record{6000, 0});
  ASSERT_TRUE(c->LoadLayout(layout).ok());
  ASSERT_TRUE(c->Insert(Record{3500, 0}).ok());
  const Calibrator& cal = c->calibrator();
  EXPECT_EQ(cal.Count(cal.LeafOf(4)), 1);   // spilled
  EXPECT_EQ(cal.Count(cal.LeafOf(3)), 16);  // untouched
  EXPECT_EQ(c->stats().activations, 0);
  EXPECT_TRUE(c->ValidateInvariants().ok());
}

TEST(SmartPlacement, DoesNotSpillWhenTargetHasHeadroom) {
  Control2::Options options;
  options.config.num_pages = 8;
  options.config.d = 9;
  options.config.D = 18;
  options.config.smart_placement = true;
  options.allow_gap_violation_for_testing = true;
  std::unique_ptr<Control2> c = std::move(*Control2::Create(options));
  std::vector<std::vector<Record>> layout(8);
  for (int64_t i = 0; i < 5; ++i) {
    layout[2].push_back(Record{static_cast<Key>(3000 + i), 0});
  }
  ASSERT_TRUE(c->LoadLayout(layout).ok());
  ASSERT_TRUE(c->Insert(Record{3500, 0}).ok());
  const Calibrator& cal = c->calibrator();
  EXPECT_EQ(cal.Count(cal.LeafOf(3)), 6);  // went into the target page
}

TEST(SmartPlacement, NeverSpillsPastTheSuccessorBlock) {
  Control2::Options options;
  options.config.num_pages = 8;
  options.config.d = 9;
  options.config.D = 18;
  options.config.smart_placement = true;
  options.J = 3;
  options.allow_gap_violation_for_testing = true;
  std::unique_ptr<Control2> c = std::move(*Control2::Create(options));
  // Saturated page 3 followed directly by the successor's page 4: no
  // empty block exists between predecessor and successor, so the insert
  // must go to page 3 (and may overflow transiently).
  std::vector<std::vector<Record>> layout(8);
  for (int64_t i = 0; i < 17; ++i) {
    layout[2].push_back(Record{static_cast<Key>(3000 + i), 0});
  }
  layout[3].push_back(Record{4000, 0});
  ASSERT_TRUE(c->LoadLayout(layout).ok());
  ASSERT_TRUE(c->Insert(Record{3500, 0}).ok());
  EXPECT_TRUE(c->ValidateInvariants().ok());
  EXPECT_TRUE(c->Contains(3500));
}

}  // namespace
}  // namespace dsf
