// Edge-case coverage for ControlBase's range/bulk commands:
//
//   * InsertBatch error paths — non-ascending input, a batch that would
//     exceed capacity (rejected up front, file untouched), and a
//     mid-batch failure (duplicate key), after which the already-applied
//     prefix must stand and every invariant must still hold;
//   * DeleteRange spanning empty leading/trailing blocks — a deliberately
//     clustered layout leaves most blocks empty, and ranges reaching far
//     past the populated region on both sides must still delete exactly
//     the stored keys in range.

#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <vector>

#include "core/dense_file.h"
#include "workload/workload.h"

namespace dsf {
namespace {

std::unique_ptr<DenseFile> MakeFile(int64_t num_pages = 64) {
  DenseFile::Options options;
  options.num_pages = num_pages;
  options.d = 8;
  options.D = 8 + 4 * 6 + 1;
  StatusOr<std::unique_ptr<DenseFile>> file = DenseFile::Create(options);
  EXPECT_TRUE(file.ok()) << file.status();
  return std::move(*file);
}

TEST(InsertBatchEdgeTest, RejectsNonAscendingBatchUntouched) {
  std::unique_ptr<DenseFile> file = MakeFile();
  ASSERT_TRUE(file->Insert(500, 500).ok());

  // Strictly ascending is required: equal keys and descending pairs both
  // fail, and nothing from the batch may have been applied.
  EXPECT_TRUE(
      file->InsertBatch({{10, 1}, {10, 2}, {30, 3}}).IsInvalidArgument());
  EXPECT_TRUE(
      file->InsertBatch({{40, 1}, {20, 2}, {60, 3}}).IsInvalidArgument());
  EXPECT_EQ(file->size(), 1);
  EXPECT_FALSE(file->Contains(10));
  EXPECT_FALSE(file->Contains(40));
  EXPECT_TRUE(file->ValidateInvariants().ok());
}

TEST(InsertBatchEdgeTest, RejectsOverCapacityBatchUpFront) {
  std::unique_ptr<DenseFile> file = MakeFile();
  const int64_t capacity = file->capacity();
  ASSERT_TRUE(
      file->BulkLoad(MakeAscendingRecords(capacity - 2, 1000, 10)).ok());

  // Three more records would exceed N = d*M; the check fires before any
  // insert, so the file is untouched.
  const Status status = file->InsertBatch({{1, 1}, {2, 2}, {3, 3}});
  EXPECT_TRUE(status.IsCapacityExceeded());
  EXPECT_EQ(file->size(), capacity - 2);
  EXPECT_FALSE(file->Contains(1));
  EXPECT_TRUE(file->ValidateInvariants().ok());

  // A batch that exactly fills the file is fine.
  EXPECT_TRUE(file->InsertBatch({{1, 1}, {2, 2}}).ok());
  EXPECT_EQ(file->size(), capacity);
}

TEST(InsertBatchEdgeTest, MidBatchFailureLeavesConsistentPrefix) {
  std::unique_ptr<DenseFile> file = MakeFile();
  ASSERT_TRUE(file->Insert(30, 300).ok());

  // The batch trips over the preexisting key 30 after two successful
  // inserts. The prefix stays applied; the suffix is never attempted.
  const Status status =
      file->InsertBatch({{10, 1}, {20, 2}, {30, 3}, {40, 4}});
  EXPECT_TRUE(status.IsAlreadyExists());
  EXPECT_TRUE(file->Contains(10));
  EXPECT_TRUE(file->Contains(20));
  EXPECT_FALSE(file->Contains(40));
  StatusOr<Value> kept = file->Get(30);
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(*kept, 300u);  // original record untouched
  EXPECT_EQ(file->size(), 3);
  EXPECT_TRUE(file->ValidateInvariants().ok());
}

// Builds a file whose records sit in a narrow band of middle blocks, with
// empty blocks before and after — the layout that exercises DeleteRange's
// search for the first populated block and its stop condition.
std::unique_ptr<DenseFile> MakeClusteredFile() {
  std::unique_ptr<DenseFile> file = MakeFile(64);
  const int64_t num_blocks = 64 / file->block_size();
  std::vector<std::vector<Record>> layout(
      static_cast<size_t>(num_blocks));
  // Records 1000..1049 in five middle blocks, ten per block.
  const int64_t mid = num_blocks / 2;
  for (int64_t b = 0; b < 5; ++b) {
    for (int64_t i = 0; i < 10; ++i) {
      const Key k = 1000 + static_cast<Key>(b * 10 + i);
      layout[static_cast<size_t>(mid - 2 + b)].push_back(Record{k, k});
    }
  }
  EXPECT_TRUE(file->control().LoadLayout(layout).ok());
  return file;
}

TEST(DeleteRangeEdgeTest, RangeSpanningEmptyLeadingBlocks) {
  std::unique_ptr<DenseFile> file = MakeClusteredFile();
  // The range starts far below every stored key (in empty leading
  // blocks) and ends inside the populated band.
  StatusOr<int64_t> removed = file->DeleteRange(1, 1019);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 20);
  EXPECT_EQ(file->size(), 30);
  EXPECT_FALSE(file->Contains(1019));
  EXPECT_TRUE(file->Contains(1020));
  EXPECT_TRUE(file->ValidateInvariants().ok());
}

TEST(DeleteRangeEdgeTest, RangeSpanningEmptyTrailingBlocks) {
  std::unique_ptr<DenseFile> file = MakeClusteredFile();
  // The range starts inside the band and reaches far past the last
  // stored key, across the empty trailing blocks.
  StatusOr<int64_t> removed =
      file->DeleteRange(1030, std::numeric_limits<Key>::max());
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 20);
  EXPECT_EQ(file->size(), 30);
  EXPECT_TRUE(file->Contains(1029));
  EXPECT_FALSE(file->Contains(1030));
  EXPECT_TRUE(file->ValidateInvariants().ok());
}

TEST(DeleteRangeEdgeTest, RangeEntirelyInEmptyRegionsRemovesNothing) {
  std::unique_ptr<DenseFile> file = MakeClusteredFile();
  StatusOr<int64_t> below = file->DeleteRange(1, 999);
  ASSERT_TRUE(below.ok());
  EXPECT_EQ(*below, 0);
  StatusOr<int64_t> above = file->DeleteRange(1050, 1u << 20);
  ASSERT_TRUE(above.ok());
  EXPECT_EQ(*above, 0);
  EXPECT_EQ(file->size(), 50);
  EXPECT_TRUE(file->ValidateInvariants().ok());
}

TEST(DeleteRangeEdgeTest, FullSpanAcrossAllEmptyBlocks) {
  std::unique_ptr<DenseFile> file = MakeClusteredFile();
  StatusOr<int64_t> removed =
      file->DeleteRange(0, std::numeric_limits<Key>::max());
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 50);
  EXPECT_EQ(file->size(), 0);
  EXPECT_TRUE(file->ValidateInvariants().ok());
  // And deleting again from the now-empty file is a clean no-op.
  removed = file->DeleteRange(0, std::numeric_limits<Key>::max());
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 0);
}

}  // namespace
}  // namespace dsf
