// Experiment E11 — measuring the proof's internal quantities.
//
// Theorem 5.5's proof sketch argues: a BALANCE violation at node v would
// require at least B_v = J*floor(M_v(D-d)/(3 ceil(log M))) SHIFT calls
// *related* to v (Corollary 5.4) between the last calm moment t* and the
// violation, and that many related SHIFTs necessarily drive p(v) back
// below g(v,2/3) first — a contradiction.
//
// This bench instruments CONTROL 2 to record every warning episode
// (ACTIVATE -> flag lowering) with its related-SHIFT count, and reports,
// per node depth, how close any episode came to exhausting its budget
// B_v. The margin (max related/B_v << 1) is the empirical slack in
// Theorem 5.5 under the harshest workload we have — and explains why E5
// finds tiny safe J values compared to the proof's constant.

#include <algorithm>
#include <map>

#include "bench_common.h"
#include "core/control2.h"
#include "util/check.h"
#include "workload/workload.h"

namespace dsf {
namespace {

struct DepthAggregate {
  int64_t episodes = 0;
  int64_t max_related = 0;
  int64_t total_related = 0;
  int64_t max_commands = 0;
  int64_t total_records = 0;
  int64_t pages = 0;  // M_v (same for all nodes at a depth, pow-2 M)
};

void RunWorkload(const std::string& label, const Trace& trace,
                 int64_t num_pages, int64_t d, int64_t gap) {
  Control2::Options options;
  options.config.num_pages = num_pages;
  options.config.d = d;
  options.config.D = d + gap;
  options.track_episodes = true;
  std::unique_ptr<Control2> control = std::move(*Control2::Create(options));

  for (const Op& op : trace) {
    Status s;
    if (op.kind == Op::Kind::kInsert) {
      s = control->Insert(op.record);
    } else {
      s = control->Delete(op.record.key);
    }
    DSF_CHECK(s.ok() || s.IsCapacityExceeded() || s.IsNotFound()) << s;
  }
  DSF_CHECK(control->ValidateInvariants().ok());

  std::map<int64_t, DepthAggregate> by_depth;
  for (const Control2::WarningEpisode& e : control->episodes()) {
    DepthAggregate& agg = by_depth[e.depth];
    ++agg.episodes;
    agg.max_related = std::max(agg.max_related, e.related_shifts);
    agg.total_related += e.related_shifts;
    agg.max_commands = std::max(agg.max_commands, e.commands);
    agg.total_records += e.records_moved;
    agg.pages = e.pages;
  }

  bench::Note("\n" + label + " — J = " + std::to_string(control->J()) +
              ", completed episodes = " +
              std::to_string(control->episodes().size()));
  bench::Table table({"depth", "M_v", "episodes", "mean related",
                      "max related", "budget B_v", "max/B_v",
                      "max cmds", "records moved"});
  for (const auto& [depth, agg] : by_depth) {
    const int64_t budget = control->ViolationBudget(agg.pages);
    table.Row(depth, agg.pages, agg.episodes,
              static_cast<double>(agg.total_related) /
                  static_cast<double>(agg.episodes),
              agg.max_related, budget,
              budget == 0 ? 0.0
                          : static_cast<double>(agg.max_related) /
                                static_cast<double>(budget),
              agg.max_commands, agg.total_records);
  }
  table.Print();
}

}  // namespace
}  // namespace dsf

int main() {
  dsf::bench::Section(
      "E11: empirical margins of Theorem 5.5's proof — related-SHIFT "
      "counts per warning episode vs. Corollary 5.4's violation budget "
      "(M = 1024, d = 4, D-d = 41)");

  {
    const dsf::Trace fill = dsf::DescendingInserts(4 * 1024, 1ull << 40);
    dsf::RunWorkload("Descending hotspot fill to capacity", fill, 1024, 4,
                     41);
  }
  {
    dsf::Trace churn;
    const dsf::Trace inserts = dsf::DescendingInserts(2 * 1024, 1ull << 40);
    // Insert a hotspot batch, then churn it: delete/reinsert waves keep
    // episodes opening and closing across depths.
    churn.insert(churn.end(), inserts.begin(), inserts.end());
    for (int wave = 0; wave < 3; ++wave) {
      for (size_t i = wave; i < inserts.size(); i += 2) {
        dsf::Op del = inserts[i];
        del.kind = dsf::Op::Kind::kDelete;
        churn.push_back(del);
      }
      for (size_t i = wave; i < inserts.size(); i += 2) {
        churn.push_back(inserts[i]);
      }
    }
    dsf::RunWorkload("Hotspot churn waves", churn, 1024, 4, 41);
  }

  dsf::bench::Note(
      "\nReading: 'max/B_v' is how close any warning episode came to the "
      "related-\nSHIFT count a BALANCE violation would require. Values far "
      "below 1 are the\nempirical slack behind Theorem 5.5 — and why E5's "
      "minimal safe J is orders\nof magnitude under the proof's "
      "90*L^2/(D-d).");
  return 0;
}
