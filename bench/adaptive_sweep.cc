// E20: closed-loop self-tuning vs. a grid of static configurations.
//
// Replays an adversarial workload suite (src/workload/adversary.h) —
// the BKS bucket adversary, a drifting hotspot ramp, phase-migrating
// hotspots, a static hotspot read storm, and a mixed concatenation —
// against one sharded geometry under five configurations: the adaptive
// controller (tune/controller.h) and four static picks (even frame
// split with auto / small / large drain batches, plus the worst-pick
// "all frames on shard 0" concentration). Score = physical page
// accesses for the identical trace (bulk load excluded, staging flushed
// before reading, so no config can defer work past the finish line).
//
// Acceptance, enforced by DSF_CHECK:
//   - tuned <= best static on EVERY workload;
//   - tuned < every static on the drift and mixed suites (strictly);
//   - zero BoundCertifier violations in every tuned run;
//   - pool frames conserved exactly across all retuning;
//   - a safety replay of the mixed suite with audit_every_command on:
//     clean auditor report, zero violations, while the controller was
//     demonstrably actuating.
//
// Usage: adaptive_sweep [--out=PATH]   (default "-": stdout)

#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analysis/auditor.h"
#include "bench_common.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "shard/sharded_dense_file.h"
#include "tune/controller.h"
#include "util/check.h"
#include "util/random.h"
#include "workload/adversary.h"
#include "workload/workload.h"

namespace dsf {
namespace {

constexpr int kShards = 4;
constexpr Key kKeySpace = 4000;          // splitters at 1001/2001/3001
constexpr int64_t kFramesPerShard = 8;   // even split of the pool budget
constexpr int64_t kStagingPerShard = 32;
constexpr uint64_t kSeed = 20260808;

// A configuration = a name plus the per-run option tweaks.
struct BenchConfig {
  std::string name;
  bool tuned = false;
  bool concentrated = false;  // worst pick: all spare frames on shard 0
  int64_t drain_batch = 0;    // 0 = auto
};

std::vector<BenchConfig> Grid() {
  return {
      {"tuned", /*tuned=*/true, false, 0},
      {"static_even", false, false, 0},
      {"static_concentrated", false, true, 0},
      {"static_small_drain", false, false, 2},
      {"static_large_drain", false, false, 64},
  };
}

// The adversarial suite. Every trace is rebuilt from the same seed per
// run, so all configurations replay identical operation streams.
std::vector<std::pair<std::string, Trace>> BuildSuite() {
  std::vector<std::pair<std::string, Trace>> suite;
  {
    // BKS bucket adversary packing shard 2's range (2001..3000): the
    // min-gap midpoint pattern behind the Omega(log^2 n) lower bound.
    Rng rng(kSeed);
    suite.emplace_back(
        "bucket", BucketAdversary(600, 2100, 2900, /*delete_every=*/3, rng));
  }
  {
    // Hotspot window sliding across all four shards.
    Rng rng(kSeed + 1);
    suite.emplace_back("drift",
                       DriftRamp(2400, kKeySpace, /*window=*/300,
                                 /*read_fraction=*/0.35,
                                 /*delete_every=*/3, rng));
  }
  {
    // Phase-migrating hotspot: one shard-sized slice per phase.
    Rng rng(kSeed + 2);
    suite.emplace_back("migration",
                       HotspotMigration(2400, kKeySpace, /*num_phases=*/4,
                                        /*read_fraction=*/0.35,
                                        /*delete_every=*/3, rng));
  }
  {
    // Static hotspot in shard 3: a surge of inserts, then a read storm
    // over the same narrow range — the pure frame-allocation testcase.
    Rng rng(kSeed + 3);
    Trace trace = HotspotSurge(200, 3100, 3900, rng);
    for (int64_t i = 0; i < 1600; ++i) {
      Op op;
      op.kind = Op::Kind::kGet;
      op.record.key =
          3100 + static_cast<Key>(rng.Uniform(801));
      trace.push_back(op);
    }
    suite.emplace_back("hotspot", std::move(trace));
  }
  {
    // Mixed: segments of all of the above, back to back — no single
    // static pick fits more than one segment.
    Rng rng(kSeed + 4);
    Trace mixed =
        BucketAdversary(300, 1100, 1900, /*delete_every=*/3, rng);
    const Trace drift = DriftRamp(1200, kKeySpace, 300, 0.35, 3, rng);
    mixed.insert(mixed.end(), drift.begin(), drift.end());
    const Trace migration =
        HotspotMigration(1200, kKeySpace, 4, 0.35, 3, rng);
    mixed.insert(mixed.end(), migration.begin(), migration.end());
    const Trace surge = HotspotSurge(100, 3050, 3450, rng);
    mixed.insert(mixed.end(), surge.begin(), surge.end());
    for (int64_t i = 0; i < 800; ++i) {
      Op op;
      op.kind = Op::Kind::kGet;
      op.record.key = 3050 + static_cast<Key>(rng.Uniform(401));
      mixed.push_back(op);
    }
    suite.emplace_back("mixed", std::move(mixed));
  }
  return suite;
}

ShardedDenseFile::Options MakeOptions(const BenchConfig& config,
                                      MetricsRegistry* registry,
                                      bool audit_every_command) {
  ShardedDenseFile::Options options;
  options.num_shards = kShards;
  options.key_space = kKeySpace;
  options.shard.num_pages = 96;
  options.shard.d = 4;
  options.shard.D = 20;
  options.shard.policy = DenseFile::Policy::kControl2;
  options.shard.cache_frames = kFramesPerShard;
  options.shard.staging_entries = kStagingPerShard;
  options.shard.drain_batch = config.drain_batch;
  options.shard.certify_bound = true;
  options.shard.metrics = registry;
  options.shard.audit_every_command = audit_every_command;
  if (config.tuned) {
    options.tuning.enabled = true;
    options.tuning.tick_every_commands = 32;
    options.tuning.consecutive_ticks = 2;
    options.tuning.cooldown_ticks = 2;
    options.tuning.min_miss_signal = 8;
    options.tuning.min_drain_batch = 1;
    // The headroom guard's p99 estimate is an upper edge — on these
    // small geometries a handful of legitimately-expensive commands
    // per window reads as collapse, and the mid-replay Compacts it
    // orders are pure overhead in an access-count sweep. The scored
    // runs measure the perf actuators; the safety replay below keeps
    // the guard on and proves retuning stays certified and audited.
    options.tuning.tune_headroom = audit_every_command;
  }
  return options;
}

struct RunResult {
  int64_t physical_accesses = 0;
  int64_t bound_violations = 0;
  int64_t tune_actuations = 0;
  int64_t frames_total = 0;  // post-run, for the conservation check
};

int64_t SumViolations(const MetricsRegistry& registry) {
  int64_t total = 0;
  const MetricsSnapshot snapshot = registry.Snapshot();
  for (const auto& counter : snapshot.counters) {
    if (counter.name.rfind(kMetricBoundViolations, 0) == 0) {
      total += counter.value;
    }
  }
  return total;
}

RunResult RunOne(const BenchConfig& config, const Trace& trace,
                 bool audit_every_command = false) {
  MetricsRegistry registry;
  const ShardedDenseFile::Options options =
      MakeOptions(config, &registry, audit_every_command);
  std::unique_ptr<ShardedDenseFile> file =
      std::move(*ShardedDenseFile::Create(options));

  // Identical starting contents for every configuration.
  Rng load_rng(kSeed + 99);
  DSF_CHECK(
      file->BulkLoad(MakeUniformRecords(600, kKeySpace, load_rng)).ok());
  DSF_CHECK(file->Flush().ok());
  if (config.concentrated) {
    // Worst pick: shards 1..3 down to one frame each, the spares piled
    // on shard 0 — "fit the config to the first thing you saw".
    const int64_t spare = (kFramesPerShard - 1) * (kShards - 1);
    for (int i = 1; i < kShards; ++i) {
      DSF_CHECK(file->ResizeShardCache(i, 1).ok());
    }
    DSF_CHECK(
        file->ResizeShardCache(0, kFramesPerShard + spare).ok());
  }
  file->ResetStats();

  for (const Op& op : trace) {
    switch (op.kind) {
      case Op::Kind::kInsert:
        IgnoreStatus(file->Insert(op.record));
        break;
      case Op::Kind::kDelete:
        IgnoreStatus(file->Delete(op.record.key));
        break;
      case Op::Kind::kGet:
        IgnoreStatus(file->Get(op.record.key));
        break;
      case Op::Kind::kScan: {
        std::vector<Record> out;
        IgnoreStatus(file->Scan(op.record.key, op.scan_hi, &out));
        break;
      }
    }
  }
  // Land everything before scoring: a config must not look cheap by
  // leaving staged entries or dirty frames beyond the finish line.
  DSF_CHECK(file->FlushStaging().ok());
  DSF_CHECK(file->Flush().ok());

  RunResult result;
  result.physical_accesses = file->io_stats().TotalAccesses();
  result.bound_violations = SumViolations(registry);
  if (file->tuner() != nullptr) {
    result.tune_actuations = file->tuner()->stats().applied_actuations;
    if (std::getenv("DSF_ADAPTIVE_DEBUG") != nullptr) {
      std::cerr << "  [debug] ticks=" << file->tuner()->stats().ticks
                << " frames_moved="
                << file->tuner()->stats().applied_frames_moved << " knobs:";
      for (int i = 0; i < kShards; ++i) {
        std::cerr << " s" << i << "(f=" << file->shard_cache_frames(i)
                  << ",b=" << file->shard_drain_batch(i)
                  << ",c=" << file->shard_staging_capacity(i) << ")";
      }
      std::cerr << "\n";
    }
  }
  for (int i = 0; i < kShards; ++i) {
    result.frames_total += file->shard_cache_frames(i);
  }
  if (audit_every_command) {
    const AuditReport report = file->Audit();
    DSF_CHECK(report.violations.empty())
        << "auditor found " << report.violations.size()
        << " violations under retuning";
  }
  return result;
}

void WriteJson(std::ostream& os,
               const std::vector<std::pair<std::string, Trace>>& suite,
               const std::map<std::string, std::map<std::string, RunResult>>&
                   results) {
  os << "{\n  \"benchmark\": \"adaptive_sweep\",\n";
  os << "  \"geometry\": {\"num_shards\": " << kShards
     << ", \"num_pages\": 96, \"d\": 4, \"D\": 20, \"frames_per_shard\": "
     << kFramesPerShard << ", \"staging_per_shard\": " << kStagingPerShard
     << "},\n";
  os << "  \"score\": \"physical page accesses (lower is better)\",\n";
  os << "  \"workloads\": [\n";
  for (size_t w = 0; w < suite.size(); ++w) {
    const std::string& workload = suite[w].first;
    os << "    {\n      \"workload\": \"" << workload << "\",\n";
    os << "      \"ops\": " << suite[w].second.size() << ",\n";
    os << "      \"configs\": [\n";
    const auto& per_config = results.at(workload);
    size_t c = 0;
    for (const auto& [name, result] : per_config) {
      os << "        {\"config\": \"" << name
         << "\", \"physical_accesses\": " << result.physical_accesses
         << ", \"bound_violations\": " << result.bound_violations
         << ", \"tune_actuations\": " << result.tune_actuations << "}"
         << (++c < per_config.size() ? "," : "") << "\n";
    }
    os << "      ]\n    }" << (w + 1 < suite.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

int Main(int argc, char** argv) {
  std::string out = "-";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out = arg.substr(6);
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return 1;
    }
  }

  bench::Section(
      "E20: self-tuning controller vs. static configs (4 shards, M=96 "
      "d=4 D=20, 8 frames + 32 staged entries per shard)");

  const std::vector<std::pair<std::string, Trace>> suite = BuildSuite();
  const std::vector<BenchConfig> grid = Grid();
  std::map<std::string, std::map<std::string, RunResult>> results;

  bench::Table table({"workload", "config", "phys accesses", "violations",
                      "actuations"});
  for (const auto& [workload, trace] : suite) {
    for (const BenchConfig& config : grid) {
      const RunResult result = RunOne(config, trace);
      results[workload][config.name] = result;
      table.Row(workload, config.name, result.physical_accesses,
                result.bound_violations, result.tune_actuations);
      if (config.tuned) {
        DSF_CHECK(result.bound_violations == 0)
            << workload << ": tuned run breached the certified envelope";
        DSF_CHECK(result.frames_total == kShards * kFramesPerShard)
            << workload << ": pool frames not conserved ("
            << result.frames_total << " != " << kShards * kFramesPerShard
            << ")";
      }
    }
  }
  table.Print();

  // The adaptivity claim, enforced.
  for (const auto& [workload, trace] : suite) {
    const auto& per_config = results.at(workload);
    const RunResult& tuned = per_config.at("tuned");
    const bool strict = workload == "drift" || workload == "mixed";
    for (const auto& [name, result] : per_config) {
      if (name == "tuned") continue;
      if (strict) {
        DSF_CHECK(tuned.physical_accesses < result.physical_accesses)
            << workload << ": tuned (" << tuned.physical_accesses
            << ") does not strictly beat " << name << " ("
            << result.physical_accesses << ")";
      } else {
        DSF_CHECK(tuned.physical_accesses <= result.physical_accesses)
            << workload << ": tuned (" << tuned.physical_accesses
            << ") worse than " << name << " (" << result.physical_accesses
            << ")";
      }
    }
    if (strict) {
      DSF_CHECK(tuned.tune_actuations > 0)
          << workload << ": tuned won without actuating — noise, not "
          << "adaptation";
    }
  }
  bench::Note("tuned <= best static everywhere; strictly better on "
              "drift and mixed");

  // Safety replay: the mixed suite under audit_every_command with the
  // controller live — the auditor and certifier watch every command
  // while frames move, drain batches change and J recalibrates.
  const RunResult safety =
      RunOne(grid[0], suite.back().second, /*audit_every_command=*/true);
  DSF_CHECK(safety.bound_violations == 0)
      << "audited tuned replay breached the certified envelope";
  bench::Note("audited mixed replay: clean auditor, 0 violations, " +
              std::to_string(safety.tune_actuations) + " actuations");

  if (out == "-") {
    WriteJson(std::cout, suite, results);
  } else {
    std::ofstream f(out);
    DSF_CHECK(f.good()) << "cannot open " << out;
    WriteJson(f, suite, results);
    bench::Note("JSON written to " + out);
  }
  return 0;
}

}  // namespace
}  // namespace dsf

int main(int argc, char** argv) { return dsf::Main(argc, argv); }
