// Experiment E4 — Section 3's amortized claim.
//
// Same sweep as E3 but reporting the *mean* page accesses per command:
// both CONTROL 1 (directly) and CONTROL 2 (by construction, J cycles per
// command) amortize to O(log^2 M/(D-d)). The normalized columns divide
// the mean by L^2/(D-d); the paper's claim holds if they stay roughly
// flat as M grows. Uniform fill is included as the non-adversarial
// comparison point.

#include "bench_common.h"
#include "sweep_util.h"

namespace dsf {
namespace {

void RunKind(bench::FillKind kind, const std::string& label) {
  bench::Section("E4 (" + label +
                 "): mean page accesses per insert, fill to N = d*M");
  bench::Table table({"M", "L", "D-d", "theory L^2/(D-d)", "C1 mean",
                      "C1 norm", "C2 mean", "C2 norm", "C2/C1"});
  for (const int64_t m : {64, 256, 1024, 4096}) {
    const int64_t d = 4;
    int64_t l = 1;
    while ((1ll << l) < m) ++l;
    const int64_t gap = 4 * l + 1;
    const double theory =
        static_cast<double>(l * l) / static_cast<double>(gap);
    const bench::FillResult c1 =
        bench::RunFill(DenseFile::Policy::kControl1, m, d, gap, kind, 2);
    const bench::FillResult c2 =
        bench::RunFill(DenseFile::Policy::kControl2, m, d, gap, kind, 2);
    table.Row(m, c2.L, gap, theory, c1.mean_command_accesses,
              c1.mean_command_accesses / theory, c2.mean_command_accesses,
              c2.mean_command_accesses / theory,
              c2.mean_command_accesses / c1.mean_command_accesses);
  }
  table.Print();
}

}  // namespace
}  // namespace dsf

int main() {
  dsf::RunKind(dsf::bench::FillKind::kDescending, "descending hotspot");
  dsf::RunKind(dsf::bench::FillKind::kUniform, "uniform random");
  dsf::bench::Note(
      "\nPaper claim: both algorithms amortize to O(log^2 M/(D-d)) accesses "
      "per\ncommand; CONTROL 2 pays a constant-factor premium (its J cycles "
      "run every\ncommand). Expected shape: normalized columns roughly flat "
      "in M.");
  return 0;
}
