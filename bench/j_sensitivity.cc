// Experiment E5 — how large must J really be?
//
// Equation (5.2) requires J = Omega(log^2 M/(D-d)); the paper's full
// version proves J = 90*ceil(log M)^2/(D-d) adequate, remarks that a
// better proof gains "at least one order of magnitude", and says
// "typically J should ~ 18". This bench measures the true threshold: the
// smallest J for which a descending-hotspot fill to capacity (the worst
// pattern we know) never violates a single invariant at any command end.
// The shape to check: the threshold scales like L^2/(D-d) and sits far
// below the 90x proof constant, consistent with the paper's remarks.

#include "bench_common.h"
#include "core/control2.h"
#include "util/check.h"
#include "workload/workload.h"

namespace dsf {
namespace {

// Returns true when a fill to capacity with this J keeps every invariant
// (including BALANCE) at every command end.
bool Survives(int64_t num_pages, int64_t d, int64_t gap, int64_t j) {
  Control2::Options options;
  options.config.num_pages = num_pages;
  options.config.d = d;
  options.config.D = d + gap;
  options.J = j;
  std::unique_ptr<Control2> control = std::move(*Control2::Create(options));
  const Trace trace = DescendingInserts(control->MaxRecords(), 1ull << 40);
  for (const Op& op : trace) {
    const Status s = control->Insert(op.record);
    DSF_CHECK(s.ok()) << s;
    if (!control->ValidateInvariants().ok()) return false;
  }
  return true;
}

int64_t MinimalSafeJ(int64_t num_pages, int64_t d, int64_t gap) {
  // The threshold is tiny in practice; scan upward.
  for (int64_t j = 1;; ++j) {
    if (Survives(num_pages, d, gap, j)) return j;
  }
}

void Run() {
  bench::Section(
      "E5: smallest J with zero violations (descending hotspot fill)");

  bench::Table table({"M", "L", "D-d", "theory L^2/(D-d)", "min safe J",
                      "minJ*(D-d)/L^2", "default J", "paper-proved J (90x)"});
  const int64_t d = 4;
  struct Point {
    int64_t m;
    int64_t gap_factor;  // gap = factor*L + 1
  };
  for (const Point p : {Point{64, 4}, Point{256, 4}, Point{1024, 4},
                        Point{256, 8}, Point{1024, 8}, Point{1024, 16}}) {
    int64_t l = 1;
    while ((1ll << l) < p.m) ++l;
    const int64_t gap = p.gap_factor * l + 1;
    const double theory =
        static_cast<double>(l * l) / static_cast<double>(gap);
    const int64_t min_j = MinimalSafeJ(p.m, d, gap);
    const DensitySpec spec = *DensitySpec::Create(p.m, d, d + gap);
    table.Row(p.m, l, gap, theory, min_j,
              static_cast<double>(min_j) / theory,
              spec.RecommendedJ(Control2::kDefaultJSafety),
              spec.RecommendedJ(90.0));
  }
  table.Print();
  bench::Note(
      "\nPaper claims: J = Omega(L^2/(D-d)) is necessary in general; "
      "J = 90*L^2/(D-d)\nis provably safe; practice needs far less "
      "(\"typically J ~ 18\"). Expected\nshape: 'min safe J' scales with "
      "L^2/(D-d) (roughly constant normalized\ncolumn) and sits 1-2 orders "
      "of magnitude below the 90x column.");
}

}  // namespace
}  // namespace dsf

int main() {
  dsf::Run();
  return 0;
}
