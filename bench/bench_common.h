// Shared helpers for the experiment binaries: aligned table printing and
// small driver utilities. Each bench prints the rows the corresponding
// paper artifact (table/figure/theorem) reports, in paper-vs-measured
// form where applicable; EXPERIMENTS.md captures representative output.

#ifndef DSF_BENCH_BENCH_COMMON_H_
#define DSF_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace dsf::bench {

// Fixed-width table printer:
//   Table t({"M", "max cost", "bound"});
//   t.Row(64, 18, 20.5);  t.Print();
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  template <typename... Ts>
  void Row(const Ts&... cells) {
    std::vector<std::string> row;
    (row.push_back(ToCell(cells)), ...);
    rows_.push_back(std::move(row));
  }

  void Print(std::ostream& os = std::cout) const {
    std::vector<size_t> widths(headers_.size());
    for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
    for (const auto& row : rows_) {
      for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], row[i].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (size_t i = 0; i < row.size(); ++i) {
        os << "  " << std::setw(static_cast<int>(widths[i])) << row[i];
      }
      os << "\n";
    };
    print_row(headers_);
    std::string rule;
    for (const size_t w : widths) rule += "  " + std::string(w, '-');
    os << rule << "\n";
    for (const auto& row : rows_) print_row(row);
  }

 private:
  template <typename T>
  static std::string ToCell(const T& value) {
    if constexpr (std::is_floating_point_v<T>) {
      std::ostringstream os;
      os << std::fixed << std::setprecision(2) << value;
      return os.str();
    } else if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(value);
    } else {
      return std::to_string(value);
    }
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline void Section(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n\n";
}

inline void Note(const std::string& text) { std::cout << text << "\n"; }

}  // namespace dsf::bench

#endif  // DSF_BENCH_BENCH_COMMON_H_
