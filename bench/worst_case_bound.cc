// Experiment E3 — Theorem 5.5 / Corollary 5.6: the worst-case bound.
//
// Fills files of growing M (with D-d = 4*ceil(log M)+1, so the theory
// cost log^2 M/(D-d) ~ L/4) to capacity under the adversarial descending
// hotspot, and reports the *maximum* page accesses any single command
// paid. CONTROL 1's worst command grows linearly with M (a full-file
// redistribution); CONTROL 2's stays pinned at ~4J, matching the paper's
// O(log^2 M/(D-d)) worst-case claim. The shape to check: the CONTROL 1
// column explodes, the CONTROL 2 column tracks J.

#include "bench_common.h"
#include "sweep_util.h"

namespace dsf {
namespace {

void Run() {
  bench::Section(
      "E3: worst-case page accesses per command (descending hotspot fill "
      "to N = d*M; d = 4, D - d = 4*ceil(log M) + 1)");

  bench::Table table({"M", "L", "D-d", "J", "C1 max", "C2 max", "C2 bound",
                      "C1max/C2max"});
  for (const int64_t m : {64, 256, 1024, 4096, 16384}) {
    const int64_t d = 4;
    int64_t l = 1;
    while ((1ll << l) < m) ++l;
    const int64_t gap = 4 * l + 1;
    const bench::FillResult c1 = bench::RunFill(
        DenseFile::Policy::kControl1, m, d, gap,
        bench::FillKind::kDescending, 1);
    const bench::FillResult c2 = bench::RunFill(
        DenseFile::Policy::kControl2, m, d, gap,
        bench::FillKind::kDescending, 1);
    const int64_t bound = 4 * (c2.J + 1) + 2;
    table.Row(m, c2.L, gap, c2.J, c1.max_command_accesses,
              c2.max_command_accesses, bound,
              static_cast<double>(c1.max_command_accesses) /
                  static_cast<double>(c2.max_command_accesses));
  }
  table.Print();
  bench::Note(
      "\nPaper claim: CONTROL 2's worst command costs O(log^2 M/(D-d)) "
      "page\naccesses (= O(J)); CONTROL 1's worst command redistributes "
      "O(M) pages.\nExpected shape: 'C2 max' ~ 'C2 bound' and flat in M; "
      "'C1 max' grows ~ M.");
}

}  // namespace
}  // namespace dsf

int main() {
  dsf::Run();
  return 0;
}
