// Experiment E10 — the paper's closing remark: "Hofri-Konheim-Willard
// [HKW86] show that an expected time O(1) is possible under similar
// procedures."
//
// LocalShift (padded-list nearest-gap shifting, no calibrator) is
// compared against CONTROL 1 and CONTROL 2 in the two regimes the
// literature distinguishes:
//
//  * the *stationary uniform* regime of [Fr79]/[IKR80]/[HKW86]: a file
//    bulk-loaded at uniform density, then churned with uniformly placed
//    insert/delete pairs — LocalShift's displacement is expected O(1),
//    independent of M;
//  * the *surge* regime of this paper: a burst into a narrow key band —
//    LocalShift's region goes solid and a single insert shifts across
//    it (worst case grows with the surge), while CONTROL 2 stays at its
//    O(log^2 M/(D-d)) budget.
//
// Together they show exactly what the worst-case machinery buys.

#include <memory>

#include "bench_common.h"
#include "core/dense_file.h"
#include "util/check.h"
#include "workload/workload.h"

namespace dsf {
namespace {

struct PolicyRun {
  double mean = 0;
  int64_t max = 0;
};

PolicyRun RunPolicy(DenseFile::Policy policy, int64_t m, int64_t d,
                    int64_t gap, bool surge, uint64_t seed) {
  DenseFile::Options options;
  options.num_pages = m;
  options.d = d;
  options.D = d + gap;
  options.policy = policy;
  std::unique_ptr<DenseFile> file = std::move(*DenseFile::Create(options));

  Rng rng(seed);
  // Base: uniform spread at 75% of capacity, even keys.
  const int64_t base_n = file->capacity() * 3 / 4;
  std::vector<Record> base =
      MakeUniformRecords(base_n, static_cast<Key>(4 * file->capacity()), rng);
  for (Record& r : base) {
    r.key *= 2;
    r.value = r.key;
  }
  DSF_CHECK(file->BulkLoad(base).ok());

  if (!surge) {
    // Stationary churn: insert a fresh uniform odd key, delete a random
    // live odd key; the population stays at base_n + O(1).
    std::vector<Key> live;
    const int64_t ops = file->capacity();
    for (int64_t i = 0; i < ops; ++i) {
      const Key k = 2 * rng.Uniform(4 * file->capacity()) + 1;
      if (file->Insert(k, k).ok()) live.push_back(k);
      if (!live.empty() && static_cast<int64_t>(live.size()) > 4) {
        const size_t victim = rng.Uniform(live.size());
        if (file->Delete(live[victim]).ok()) {
          live[victim] = live.back();
          live.pop_back();
        }
      }
    }
  } else {
    // Surge: 20% of capacity as distinct odd keys in a band just wide
    // enough to hold them — a genuinely narrow hotspot.
    const int64_t surge_n = file->capacity() / 5;
    const Key band_lo = static_cast<Key>(2 * file->capacity());
    Trace t = HotspotSurge(surge_n, band_lo, band_lo + 2 * surge_n, rng);
    for (Op& op : t) op.record.key = 2 * op.record.key + 1;
    for (const Op& op : t) {
      const Status s = file->Insert(op.record);
      DSF_CHECK(s.ok()) << s;
    }
  }
  const Status invariants = file->ValidateInvariants();
  DSF_CHECK(invariants.ok()) << invariants;
  PolicyRun run;
  run.mean = file->command_stats().MeanAccessesPerCommand();
  run.max = file->command_stats().max_command_accesses;
  return run;
}

void RunRegime(bool surge, const std::string& label) {
  bench::Note(label);
  bench::Table table({"M", "LS mean", "LS max", "C1 mean", "C1 max",
                      "C2 mean", "C2 max"});
  for (const int64_t m : {256, 1024, 4096}) {
    // Tight geometry (pages half full at base load): the regime where the
    // policies actually differ. D - d = 4 is below the gap condition, so
    // CONTROL 1/2 run on auto-selected macro-blocks (Theorem 5.7);
    // LocalShift needs no such machinery.
    const int64_t d = 8;
    const int64_t gap = 4;
    const PolicyRun ls =
        RunPolicy(DenseFile::Policy::kLocalShift, m, d, gap, surge, 9);
    const PolicyRun c1 =
        RunPolicy(DenseFile::Policy::kControl1, m, d, gap, surge, 9);
    const PolicyRun c2 =
        RunPolicy(DenseFile::Policy::kControl2, m, d, gap, surge, 9);
    table.Row(m, ls.mean, ls.max, c1.mean, c1.max, c2.mean, c2.max);
  }
  table.Print();
}

}  // namespace
}  // namespace dsf

int main() {
  dsf::bench::Section(
      "E10: expected vs. worst-case time — LocalShift [Fr79/HKW86 style] "
      "vs. CONTROL 1 vs. CONTROL 2 (uniform base at 75% of N = d*M)");
  dsf::RunRegime(false,
                 "\nStationary uniform churn (the [HKW86] regime):");
  dsf::RunRegime(true,
                 "\nInsertion surge into a narrow band (this paper's "
                 "adversary):");
  dsf::bench::Note(
      "\nPaper context: [HKW86] gets expected O(1) with neighbor shifting "
      "under\nstationary uniform updates; this paper buys a worst-case "
      "guarantee instead.\nExpected shape: stationary churn — LocalShift "
      "mean is small and flat in M;\nsurge — LocalShift max grows with the "
      "hotspot while CONTROL 2's stays ~4J.");
  return 0;
}
