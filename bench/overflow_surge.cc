// Experiment E7 — Section 1's motivation: overflow chaining is
// "overwhelmed" by a surge of insertions into a small key range, while
// CONTROL 2 keeps the file dense and the costs bounded.
//
// Both structures are loaded with the same uniform base and then hit with
// surges of growing size confined to one primary page's key range. After
// each surge we measure: the overflow file's longest chain, the cost of a
// point lookup inside the surged range, and the seeks paid by a full
// stream retrieval — against the dense file's same numbers. The shape to
// check: every overflow metric grows linearly with the surge; every dense
// file metric stays flat.

#include <array>

#include "baseline/overflow_file.h"
#include "bench_common.h"
#include "core/dense_file.h"
#include "util/check.h"
#include "workload/workload.h"

namespace dsf {
namespace {

constexpr int64_t kNumPages = 256;
constexpr int64_t kD = 8;
constexpr int64_t kPageCap = 33;  // gap 25 > 3*8: K = 1, pages = blocks
constexpr int64_t kBase = 512;    // base records (capacity d*M = 2048)

void Run() {
  bench::Section(
      "E7: insertion surge into a narrow key range — overflow chaining vs. "
      "CONTROL 2 (M = 256 pages, D = 32, base = 512 uniform records)");

  bench::Table table({"surge", "chain max", "ovfl lookup", "dense lookup",
                      "ovfl scan seeks", "dense scan seeks",
                      "ovfl worst insert", "dense worst insert"});

  for (const int64_t surge_size : {0ll, 128ll, 256ll, 512ll, 1024ll}) {
    Rng rng(7);
    // Base keys are even, surge keys odd: the surge never collides with
    // the base no matter how the ranges overlap.
    std::vector<Record> base = MakeUniformRecords(kBase, 1 << 20, rng);
    for (Record& r : base) {
      r.key *= 2;
      r.value = r.key;
    }

    OverflowFile::Options ovfl_options;
    ovfl_options.num_primary_pages = kNumPages;
    ovfl_options.page_capacity = kPageCap;
    std::unique_ptr<OverflowFile> ovfl =
        std::move(*OverflowFile::Create(ovfl_options));
    DSF_CHECK(ovfl->BulkLoad(base).ok());

    DenseFile::Options dense_options;
    dense_options.num_pages = kNumPages;
    dense_options.d = kD;
    dense_options.D = kPageCap;
    std::unique_ptr<DenseFile> dense =
        std::move(*DenseFile::Create(dense_options));
    DSF_CHECK(dense->BulkLoad(base).ok());

    // Surge into four narrow slices, interleaved round-robin, so the
    // overflow chains of the hit buckets interleave in the overflow area
    // (as any multi-hotspot workload produces).
    const Key surge_lo = (1 << 20);
    int64_t ovfl_worst_insert = 0;
    int64_t dense_worst_insert = 0;
    if (surge_size > 0) {
      constexpr int kHotspots = 4;
      std::array<Trace, kHotspots> spots;
      for (int h = 0; h < kHotspots; ++h) {
        const Key lo = (surge_lo + static_cast<Key>(h) * (1 << 18)) / 2;
        spots[h] = HotspotSurge(surge_size / kHotspots, lo, lo + 8192, rng);
        for (Op& op : spots[h]) {
          op.record.key = 2 * op.record.key + 1;  // odd: disjoint from base
          op.record.value = op.record.key;
        }
      }
      Trace surge;
      for (int64_t i = 0; i < surge_size / kHotspots; ++i) {
        for (int h = 0; h < kHotspots; ++h) {
          surge.push_back(spots[h][static_cast<size_t>(i)]);
        }
      }
      for (const Op& op : surge) {
        ovfl->ResetStats();
        DSF_CHECK(ovfl->Insert(op.record).ok());
        ovfl_worst_insert =
            std::max(ovfl_worst_insert, ovfl->stats().TotalAccesses());
        DSF_CHECK(dense->Insert(op.record).ok());
      }
      dense_worst_insert = dense->command_stats().max_command_accesses;
    }

    // Point lookup inside the surged range.
    const Key probe = surge_lo + 2048;
    ovfl->ResetStats();
    (void)ovfl->Contains(probe);
    const int64_t ovfl_lookup = ovfl->stats().TotalAccesses();
    dense->ResetIoStats();
    (void)dense->Contains(probe);
    const int64_t dense_lookup = dense->io_stats().TotalAccesses();

    // Full stream retrieval.
    std::vector<Record> out;
    ovfl->ResetStats();
    DSF_CHECK(ovfl->Scan(1, 1 << 21, &out).ok());
    const int64_t ovfl_seeks = ovfl->stats().seeks;
    out.clear();
    dense->ResetIoStats();
    DSF_CHECK(dense->Scan(1, 1 << 21, &out).ok());
    const int64_t dense_seeks = dense->io_stats().seeks;

    table.Row(surge_size, ovfl->chain_stats().max_chain_length, ovfl_lookup,
              dense_lookup, ovfl_seeks, dense_seeks, ovfl_worst_insert,
              dense_worst_insert);
  }
  table.Print();
  bench::Note(
      "\nPaper claim (after Wiederhold): bursts of inserts into a small "
      "region\noverwhelm overflow heuristics — chains, lookups and scan "
      "seeks degrade\nlinearly with the surge — while shifting among "
      "adjacent pages (CONTROL 2)\nkeeps all costs bounded. Expected shape: "
      "'ovfl *' columns grow with the\nsurge; 'dense *' columns stay flat.");
}

}  // namespace
}  // namespace dsf

int main() {
  dsf::Run();
  return 0;
}
