// Experiment E6 — the paper's positioning claim (Sections 1, 4, 5):
// dense sequential files beat B-trees at stream retrieval because
// consecutive keys sit at consecutive page addresses, while B-trees pay a
// disk-arm movement (a seek) for almost every leaf; B-trees in turn win
// somewhat on update cost.
//
// Both structures are built by inserting the same N records in the same
// random order (so the B-tree's leaves scatter, as in any dynamically
// grown tree). We then time range scans of increasing length under the
// 1980s disk model (30 ms seek, 1 ms page transfer) and compare update
// costs. The shape to check: B-tree cheaper per update; dense file faster
// on long scans by roughly the seek/transfer ratio; crossover at short
// scans.

#include "baseline/btree.h"
#include "bench_common.h"
#include "core/control2.h"
#include "core/dense_file.h"
#include "storage/disk_model.h"
#include "util/check.h"
#include "workload/workload.h"

namespace dsf {
namespace {

constexpr int64_t kNumPages = 4096;
constexpr int64_t kD = 32;        // density floor
constexpr int64_t kPageCap = 82;  // D; gap 50 > 3*12
constexpr int64_t kRecords = 100000;

std::vector<Record> ShuffledDenseKeys(Rng& rng) {
  std::vector<Record> records = MakeAscendingRecords(kRecords);
  for (size_t i = records.size(); i > 1; --i) {
    std::swap(records[i - 1], records[rng.Uniform(i)]);
  }
  return records;
}

void Run() {
  bench::Section("E6: stream retrieval vs. B-tree (N = 100k records, "
                 "random insertion order, disk: seek 30 ms / transfer 1 ms)");

  Rng rng(42);
  const std::vector<Record> records = ShuffledDenseKeys(rng);

  DenseFile::Options dense_options;
  dense_options.num_pages = kNumPages;
  dense_options.d = kD;
  dense_options.D = kPageCap;
  std::unique_ptr<DenseFile> dense =
      std::move(*DenseFile::Create(dense_options));

  BTree::Options btree_options;
  btree_options.leaf_capacity = kPageCap;
  btree_options.internal_fanout = 64;
  std::unique_ptr<BTree> btree = std::move(*BTree::Create(btree_options));

  for (const Record& r : records) {
    DSF_CHECK(dense->Insert(r).ok());
    DSF_CHECK(btree->Insert(r).ok());
  }

  // --- Update cost (page accesses per insert over the whole build) ---
  bench::Note("Update cost over the build of all 100k records:");
  bench::Table updates({"structure", "mean accesses/insert",
                        "worst accesses/insert"});
  updates.Row("dense file (CONTROL 2)",
              dense->command_stats().MeanAccessesPerCommand(),
              dense->command_stats().max_command_accesses);
  updates.Row("B+-tree",
              static_cast<double>(btree->stats().TotalAccesses()) /
                  static_cast<double>(kRecords),
              "~height");
  updates.Print();

  // --- Stream retrieval ---
  const DiskModel disk{30.0, 1.0};
  bench::Note("\nStream retrieval of s consecutive keys (mean of 20 random "
              "starts):");
  bench::Table scans({"s", "dense seeks", "dense pages", "dense ms",
                      "btree seeks", "btree pages", "btree ms",
                      "btree/dense"});
  for (const int64_t s : {10ll, 100ll, 1000ll, 10000ll, 100000ll}) {
    IoStats dense_io;
    IoStats btree_io;
    const int kTrials = 20;
    for (int t = 0; t < kTrials; ++t) {
      const Key lo = rng.Uniform(kRecords - s + 1) + 1;
      const Key hi = lo + static_cast<Key>(s) - 1;
      std::vector<Record> out;
      dense->ResetIoStats();
      DSF_CHECK(dense->Scan(lo, hi, &out).ok());
      DSF_CHECK(static_cast<int64_t>(out.size()) == s)
          << out.size() << " != " << s;
      dense_io += dense->io_stats();
      out.clear();
      btree->ResetStats();
      DSF_CHECK(btree->Scan(lo, hi, &out).ok());
      DSF_CHECK(static_cast<int64_t>(out.size()) == s);
      btree_io += btree->stats();
    }
    const double dense_ms = disk.LatencyMs(dense_io) / kTrials;
    const double btree_ms = disk.LatencyMs(btree_io) / kTrials;
    scans.Row(s, dense_io.seeks / kTrials,
              dense_io.TotalAccesses() / kTrials, dense_ms,
              btree_io.seeks / kTrials, btree_io.TotalAccesses() / kTrials,
              btree_ms, btree_ms / dense_ms);
  }
  scans.Print();
  bench::Note(
      "\nPaper claim: the dense file retrieves streams with ~1 seek plus "
      "sequential\ntransfers, while the B-tree pays ~1 seek per leaf; "
      "updates cost somewhat\nmore under CONTROL 2. Expected shape: "
      "'btree/dense' grows toward the\nseek/transfer ratio as s grows; the "
      "update table favors the B-tree.");
}

}  // namespace
}  // namespace dsf

int main() {
  dsf::Run();
  return 0;
}
