// Experiment E13 — the summary capability matrix.
//
// Every structure in the repository on the same three workloads, one row
// per structure: mean and worst page accesses per update, plus the
// stream-retrieval latency of a 10%-of-keyspace scan under the 1986 disk
// model. This is the "which structure when" table the paper's
// introduction argues informally; E3/E6/E7/E10 drill into each cell's
// mechanism.

#include <functional>
#include <memory>

#include "baseline/btree.h"
#include "baseline/naive_sequential.h"
#include "baseline/overflow_file.h"
#include "bench_common.h"
#include "core/dense_file.h"
#include "storage/disk_model.h"
#include "util/check.h"
#include "workload/workload.h"

namespace dsf {
namespace {

constexpr int64_t kPages = 512;
constexpr int64_t kDLow = 8;
constexpr int64_t kDHigh = 8 + 37;  // gap 37 > 27
constexpr Key kKeySpace = 1 << 22;

struct Cell {
  double mean = 0;
  int64_t worst = 0;
};

struct RowResult {
  std::string name;
  Cell churn;
  Cell surge;
  double scan_ms = 0;
};

// A structure-agnostic driver facade.
struct Driver {
  std::function<Status(const Record&)> insert;
  std::function<Status(Key)> del;
  std::function<Status(Key, Key, std::vector<Record>*)> scan;
  std::function<Status(const std::vector<Record>&)> load;
  std::function<IoStats()> stats;
  std::function<void()> reset_stats;
};

Cell RunOps(Driver& driver, const Trace& trace) {
  Cell cell;
  int64_t ops = 0;
  int64_t total = 0;
  for (const Op& op : trace) {
    driver.reset_stats();
    Status s;
    if (op.kind == Op::Kind::kInsert) {
      s = driver.insert(op.record);
    } else {
      s = driver.del(op.record.key);
    }
    DSF_CHECK(s.ok() || s.IsAlreadyExists() || s.IsNotFound() ||
              s.IsCapacityExceeded())
        << s;
    const int64_t cost = driver.stats().TotalAccesses();
    total += cost;
    cell.worst = std::max(cell.worst, cost);
    ++ops;
  }
  cell.mean = static_cast<double>(total) / static_cast<double>(ops);
  return cell;
}

RowResult RunStructure(const std::string& name, Driver driver) {
  Rng rng(12);
  // Base: 40% of the dense file's capacity, even keys.
  std::vector<Record> base =
      MakeUniformRecords(kPages * kDLow * 4 / 10, kKeySpace / 2, rng);
  for (Record& r : base) {
    r.key *= 2;
    r.value = r.key;
  }
  DSF_CHECK(driver.load(base).ok());

  RowResult row;
  row.name = name;

  // Workload 1: uniform churn (odd keys in/out).
  Trace churn;
  std::vector<Key> live;
  for (int64_t i = 0; i < 2000; ++i) {
    const Key k = 2 * rng.Uniform(kKeySpace / 2) + 1;
    churn.push_back(Op{Op::Kind::kInsert, Record{k, k}, 0});
    live.push_back(k);
    if (live.size() > 8) {
      churn.push_back(Op{Op::Kind::kDelete, Record{live.front(), 0}, 0});
      live.erase(live.begin());
    }
  }
  row.churn = RunOps(driver, churn);

  // Workload 2: narrow surge (capacity/2 inserts into a tight band).
  Trace surge = HotspotSurge(kPages * kDLow / 2, kKeySpace,
                             kKeySpace + 2 * kPages * kDLow, rng);
  for (Op& op : surge) op.record.key = 2 * op.record.key + 1;
  row.surge = RunOps(driver, surge);

  // Stream retrieval: 10% of the key space, mid-file.
  const DiskModel disk{30.0, 1.0};
  driver.reset_stats();
  std::vector<Record> out;
  DSF_CHECK(driver.scan(kKeySpace / 4, kKeySpace / 4 + kKeySpace / 10, &out)
                .ok());
  row.scan_ms = disk.LatencyMs(driver.stats());
  return row;
}

Driver DenseDriver(DenseFile& file) {
  return Driver{
      [&](const Record& r) { return file.Insert(r); },
      [&](Key k) { return file.Delete(k); },
      [&](Key lo, Key hi, std::vector<Record>* out) {
        return file.Scan(lo, hi, out);
      },
      [&](const std::vector<Record>& records) {
        return file.BulkLoad(records);
      },
      [&]() { return file.io_stats(); },
      [&]() { file.ResetIoStats(); },
  };
}

}  // namespace
}  // namespace dsf

int main() {
  using namespace dsf;
  bench::Section(
      "E13: capability matrix — all structures, same workloads (M = 512, "
      "d = 8, D = 45; base 40% full; disk 30 ms seek / 1 ms transfer)");

  std::vector<RowResult> rows;

  for (const auto& [policy, name] :
       std::vector<std::pair<DenseFile::Policy, std::string>>{
           {DenseFile::Policy::kControl2, "dense CONTROL2"},
           {DenseFile::Policy::kControl1, "dense CONTROL1"},
           {DenseFile::Policy::kLocalShift, "dense LocalShift"}}) {
    DenseFile::Options options;
    options.num_pages = kPages;
    options.d = kDLow;
    options.D = kDHigh;
    options.policy = policy;
    std::unique_ptr<DenseFile> file = std::move(*DenseFile::Create(options));
    rows.push_back(RunStructure(name, DenseDriver(*file)));
  }
  {
    BTree::Options options;
    options.leaf_capacity = kDHigh;
    options.internal_fanout = 32;
    std::unique_ptr<BTree> tree = std::move(*BTree::Create(options));
    rows.push_back(RunStructure(
        "B+-tree",
        Driver{[&](const Record& r) { return tree->Insert(r); },
               [&](Key k) { return tree->Delete(k); },
               [&](Key lo, Key hi, std::vector<Record>* out) {
                 return tree->Scan(lo, hi, out);
               },
               [&](const std::vector<Record>& records) {
                 return tree->BulkLoad(records);
               },
               [&]() { return tree->stats(); },
               [&]() { tree->ResetStats(); }}));
  }
  {
    OverflowFile::Options options;
    options.num_primary_pages = kPages;
    options.page_capacity = kDHigh;
    std::unique_ptr<OverflowFile> file =
        std::move(*OverflowFile::Create(options));
    rows.push_back(RunStructure(
        "overflow chains",
        Driver{[&](const Record& r) { return file->Insert(r); },
               [&](Key k) { return file->Delete(k); },
               [&](Key lo, Key hi, std::vector<Record>* out) {
                 return file->Scan(lo, hi, out);
               },
               [&](const std::vector<Record>& records) {
                 return file->BulkLoad(records);
               },
               [&]() { return file->stats(); },
               [&]() { file->ResetStats(); }}));
  }
  {
    NaiveSequentialFile::Options options;
    options.num_pages = kPages;
    options.page_capacity = kDHigh;
    std::unique_ptr<NaiveSequentialFile> file =
        std::move(*NaiveSequentialFile::Create(options));
    rows.push_back(RunStructure(
        "naive sequential",
        Driver{[&](const Record& r) { return file->Insert(r); },
               [&](Key k) { return file->Delete(k); },
               [&](Key lo, Key hi, std::vector<Record>* out) {
                 return file->Scan(lo, hi, out);
               },
               [&](const std::vector<Record>& records) {
                 return file->BulkLoad(records);
               },
               [&]() { return file->stats(); },
               [&]() { file->ResetStats(); }}));
  }

  bench::Table table({"structure", "churn mean", "churn worst",
                      "surge mean", "surge worst", "scan ms"});
  for (const RowResult& row : rows) {
    table.Row(row.name, row.churn.mean, row.churn.worst, row.surge.mean,
              row.surge.worst, row.scan_ms);
  }
  table.Print();
  bench::Note(
      "\nReading guide: CONTROL 2 is the only row with bounded worst-case "
      "updates\nAND sequential scans. The B-tree wins update means but "
      "loses scans by the\nseek factor; overflow/naive decay under the "
      "surge; LocalShift is cheap until\nthe surge makes its region "
      "solid.");
  return 0;
}
