// Shard/thread scaling sweep for ShardedDenseFile + ParallelReplayer.
//
// Runs a fixed mixed workload (insert/delete/get/scan) through every
// (threads x shards) configuration in the sweep, holding the total page
// budget, (d, D) and the total op count constant, and reports aggregate
// throughput per configuration as JSON — the perf trajectory artifact
// tracked in BENCH_shard.json.
//
// The file is measured as a *device-resident* structure: every accounted
// page access sleeps for --page_latency_us (default 100us, SATA-SSD
// class; the paper's cost metric is page accesses, and on real hardware
// they dominate command time). Each shard models its own device, so two
// effects compose:
//   * algorithmic: a shard serves M/S pages, so its per-command bound
//     O(log^2 (M/S) / (D-d)) and its recommended J shrink with S;
//   * parallel I/O: clients working different shards overlap their
//     device waits (and, on multi-core hardware, their compute). The
//     workload is the partitioned-client shape of sharded-system
//     benchmarks: thread t draws a mixed op stream over its own
//     contiguous slice of the key space.
// Pass --page_latency_us=0 for the pure in-memory variant; only the
// first effect remains, and extra threads only add contention.
//
// Usage: shard_scaling [--ops=N] [--total_pages=M] [--fill_percent=F]
//                      [--page_latency_us=U] [--staging_bytes=B]
//                      [--mode=mixed|rwlock] [--out=PATH]
//
// --staging_bytes > 0 mounts write-burst staging (docs/INGEST.md): the
// budget splits near-evenly into per-shard memtables (remainder to the
// first shards) and the replayer flushes staging inside the measured
// wall time, so throughput stays honest. Per-shard staging hit/drain
// counters land in the JSON rows.
//
// --mode=rwlock swaps the workload for a 90% get / 10% insert+delete
// mix over the shared key space (threads are NOT partitioned by range,
// so readers collide on shards) and runs every configuration twice:
// once with Options::exclusive_reads (the pre-reader-writer baseline,
// every Get takes the shard mutex exclusively) and once on the shared
// read path (docs/CONCURRENCY.md). The JSON — tracked in
// BENCH_rwlock.json — reports per-config read throughput for both runs
// and the shared/exclusive speedup. With a device latency installed,
// shared readers overlap their page-access sleeps on the same shard
// while the exclusive baseline serializes them, so the speedup
// approaches the thread count even on a single core.

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "shard/sharded_dense_file.h"
#include "util/check.h"
#include "util/math.h"
#include "workload/parallel_replayer.h"
#include "workload/workload.h"

namespace dsf {
namespace {

struct Config {
  int threads;
  int shards;
};

struct Row {
  Config config;
  double wall_seconds = 0;
  double ops_per_second = 0;
  double get_ops_per_second = 0;
  double insert_delete_ops_per_second = 0;
  double mean_op_ns = 0;
  int64_t max_op_ns = 0;
  int64_t rejected = 0;
  IoStats io;
  // Each side of the logical/physical split reported on its own —
  // logical accesses are the paper's cost metric, physical page traffic
  // is what the device model charges for; never divide one by the other.
  double logical_accesses_per_op = 0;
  double physical_accesses_per_op = 0;
  StagingStats staging;
  std::vector<StagingStats> per_shard_staging;
};

Row RunConfig(const Config& config, int64_t total_pages, int64_t total_ops,
              Key key_space, int64_t fill_percent, int64_t page_latency_us,
              int64_t staging_bytes, bool read_mostly = false,
              bool exclusive_reads = false) {
  ShardedDenseFile::Options options;
  options.num_shards = config.shards;
  options.key_space = key_space;
  options.staging_bytes = staging_bytes;
  options.exclusive_reads = exclusive_reads;
  // Same page geometry everywhere: d = 8, D = 36, so D - d = 28. The
  // unsharded 4096-page file misses Theorem 5.7's gap condition
  // (28 <= 3*ceil(log 4096) = 36) and runs on auto-selected K = 2
  // macro-blocks; a 512-page shard satisfies it (28 > 27) and keeps
  // K = 1 — the gap condition *easing* as M shrinks is one of the
  // structural wins sharding buys (here it costs the big file little,
  // since partially filled blocks pack into their prefix pages).
  options.shard.num_pages = total_pages / config.shards;
  options.shard.d = 8;
  options.shard.D = 36;
  StatusOr<std::unique_ptr<ShardedDenseFile>> file =
      ShardedDenseFile::Create(options);
  DSF_CHECK(file.ok()) << file.status();

  // Warm start at fill_percent of capacity: every (100/(100-f))-th key
  // left out, approximately evenly over the key space.
  std::vector<Record> initial;
  initial.reserve(static_cast<size_t>(key_space));
  const int64_t skip = std::max<int64_t>(2, 100 / (100 - fill_percent));
  for (Key k = 1; k <= key_space; ++k) {
    if (static_cast<int64_t>(k % skip) != 0) initial.push_back(Record{k, k});
  }
  DSF_CHECK((*file)->BulkLoad(initial).ok());
  (*file)->ResetStats();
  // The device model applies to the measured traffic only, not the load.
  (*file)->SetAccessLatency(std::chrono::microseconds(page_latency_us));

  // The mixed sweep partitions threads by key range (each client owns a
  // shard-aligned slice); the rwlock mode deliberately does NOT — its
  // readers draw modular-disjoint keys over the whole space so they
  // collide on shards, which is exactly the contention the shared read
  // path is meant to absorb.
  const std::vector<Trace> traces =
      read_mostly
          ? ParallelReplayer::DisjointUniformMixes(
                config.threads, total_ops / config.threads,
                /*insert_fraction=*/0.05, /*delete_fraction=*/0.05,
                /*scan_fraction=*/0.0, key_space, /*scan_span=*/64,
                /*seed=*/99)
          : ParallelReplayer::DisjointRangeMixes(
                config.threads, total_ops / config.threads,
                /*insert_fraction=*/0.40, /*delete_fraction=*/0.40,
                /*scan_fraction=*/0.05, key_space, /*scan_span=*/64,
                /*seed=*/99);

  ParallelReplayer replayer({config.threads});
  const ReplayResult result = replayer.Replay(**file, traces);
  DSF_CHECK(result.ok()) << result.first_unexpected_error.ToString();
  DSF_CHECK((*file)->ValidateInvariants().ok());

  const ReplayThreadStats agg = result.Aggregate();
  Row row;
  row.config = config;
  row.wall_seconds = result.wall_seconds;
  row.ops_per_second = result.OpsPerSecond();
  row.get_ops_per_second =
      static_cast<double>(agg.gets) / result.wall_seconds;
  row.insert_delete_ops_per_second =
      static_cast<double>(agg.inserts + agg.deletes) / result.wall_seconds;
  row.mean_op_ns = agg.ops == 0
                       ? 0.0
                       : static_cast<double>(agg.total_ns) /
                             static_cast<double>(agg.ops);
  row.max_op_ns = agg.max_op_ns;
  row.rejected = agg.rejected;
  // The replay's own IoStats delta (not the file's lifetime totals), so
  // the logical and physical columns describe exactly the measured ops.
  row.io = result.io;
  row.logical_accesses_per_op = result.LogicalAccessesPerOp();
  row.physical_accesses_per_op = result.PhysicalAccessesPerOp();
  row.staging = (*file)->staging_stats();
  for (int s = 0; s < config.shards; ++s) {
    row.per_shard_staging.push_back((*file)->shard_staging_stats(s));
  }
  return row;
}

void WriteJson(std::ostream& os, const std::vector<Row>& rows,
               int64_t total_pages, int64_t total_ops, Key key_space,
               int64_t fill_percent, int64_t page_latency_us,
               int64_t staging_bytes) {
  const double base = rows.front().insert_delete_ops_per_second;
  os << "{\n";
  os << "  \"benchmark\": \"shard_scaling\",\n";
  os << "  \"total_pages\": " << total_pages << ",\n";
  os << "  \"total_ops\": " << total_ops << ",\n";
  os << "  \"key_space\": " << key_space << ",\n";
  os << "  \"fill_percent\": " << fill_percent << ",\n";
  os << "  \"page_latency_us\": " << page_latency_us << ",\n";
  os << "  \"staging_bytes\": " << staging_bytes << ",\n";
  os << "  \"workload\": {\"insert\": 0.40, \"delete\": 0.40, "
        "\"get\": 0.15, \"scan\": 0.05},\n";
  os << "  \"configs\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    os << "    {\"threads\": " << r.config.threads
       << ", \"shards\": " << r.config.shards
       << ", \"wall_seconds\": " << r.wall_seconds
       << ", \"ops_per_second\": " << r.ops_per_second
       << ", \"insert_delete_ops_per_second\": "
       << r.insert_delete_ops_per_second
       << ", \"speedup_vs_1x1\": " << r.insert_delete_ops_per_second / base
       << ", \"mean_op_ns\": " << r.mean_op_ns
       << ", \"max_op_ns\": " << r.max_op_ns
       << ", \"rejected\": " << r.rejected
       << ", \"page_reads\": " << r.io.page_reads
       << ", \"page_writes\": " << r.io.page_writes
       << ", \"logical_reads\": " << r.io.logical_reads
       << ", \"logical_writes\": " << r.io.logical_writes
       << ", \"logical_accesses_per_op\": " << r.logical_accesses_per_op
       << ", \"physical_accesses_per_op\": " << r.physical_accesses_per_op
       << ", \"staging_puts\": " << r.staging.puts
       << ", \"staging_hits\": " << r.staging.hits
       << ", \"staging_drain_steps\": " << r.staging.drain_steps
       << ", \"staging_drained_entries\": " << r.staging.drained_entries
       << ", \"per_shard_staging\": [";
    for (size_t s = 0; s < r.per_shard_staging.size(); ++s) {
      const StagingStats& ss = r.per_shard_staging[s];
      os << (s == 0 ? "" : ", ") << "{\"hits\": " << ss.hits
         << ", \"puts\": " << ss.puts
         << ", \"drain_steps\": " << ss.drain_steps
         << ", \"drained_entries\": " << ss.drained_entries << "}";
    }
    os << "]}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

void WriteRwlockJson(std::ostream& os, const std::vector<Row>& exclusive,
                     const std::vector<Row>& shared, int64_t total_pages,
                     int64_t total_ops, Key key_space, int64_t fill_percent,
                     int64_t page_latency_us, int64_t staging_bytes) {
  os << "{\n";
  os << "  \"benchmark\": \"shard_rwlock\",\n";
  os << "  \"total_pages\": " << total_pages << ",\n";
  os << "  \"total_ops\": " << total_ops << ",\n";
  os << "  \"key_space\": " << key_space << ",\n";
  os << "  \"fill_percent\": " << fill_percent << ",\n";
  os << "  \"page_latency_us\": " << page_latency_us << ",\n";
  os << "  \"staging_bytes\": " << staging_bytes << ",\n";
  os << "  \"workload\": {\"insert\": 0.05, \"delete\": 0.05, "
        "\"get\": 0.90, \"scan\": 0.00},\n";
  os << "  \"configs\": [\n";
  for (size_t i = 0; i < shared.size(); ++i) {
    const Row& ex = exclusive[i];
    const Row& sh = shared[i];
    os << "    {\"threads\": " << sh.config.threads
       << ", \"shards\": " << sh.config.shards
       << ", \"exclusive\": {\"wall_seconds\": " << ex.wall_seconds
       << ", \"ops_per_second\": " << ex.ops_per_second
       << ", \"get_ops_per_second\": " << ex.get_ops_per_second
       << ", \"rejected\": " << ex.rejected << "}"
       << ", \"shared\": {\"wall_seconds\": " << sh.wall_seconds
       << ", \"ops_per_second\": " << sh.ops_per_second
       << ", \"get_ops_per_second\": " << sh.get_ops_per_second
       << ", \"rejected\": " << sh.rejected << "}"
       << ", \"read_speedup_vs_exclusive\": "
       << sh.get_ops_per_second / ex.get_ops_per_second << "}"
       << (i + 1 < shared.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

// --mode=rwlock: run each configuration twice (exclusive baseline, then
// the shared read path) on the 90/10 read-mostly mix and report the
// read-throughput ratio. Both runs share the workload, seed, geometry
// and staging budget; the ONLY delta is Options::exclusive_reads, so
// the ratio isolates the locking protocol.
int RwlockMain(int64_t total_ops, int64_t total_pages, Key key_space,
               int64_t fill_percent, int64_t page_latency_us,
               int64_t staging_bytes, const std::string& out) {
  const std::vector<Config> sweep = {
      {1, 1}, {2, 1}, {4, 1}, {8, 1}, {8, 8},
  };
  bench::Section(
      "E19: reader-writer shard locks, 90/10 read-mostly mix (page "
      "latency " +
      std::to_string(page_latency_us) + "us, staging " +
      std::to_string(staging_bytes) + "B)");
  bench::Table table({"threads", "shards", "excl Kget/s", "shared Kget/s",
                      "read speedup", "excl wall s", "shared wall s"});
  std::vector<Row> exclusive;
  std::vector<Row> shared;
  for (const Config& config : sweep) {
    DSF_CHECK(total_pages % config.shards == 0)
        << "total_pages must divide evenly into shards";
    DSF_CHECK(total_ops % config.threads == 0)
        << "total_ops must divide evenly into threads";
    exclusive.push_back(RunConfig(config, total_pages, total_ops, key_space,
                                  fill_percent, page_latency_us,
                                  staging_bytes, /*read_mostly=*/true,
                                  /*exclusive_reads=*/true));
    shared.push_back(RunConfig(config, total_pages, total_ops, key_space,
                               fill_percent, page_latency_us, staging_bytes,
                               /*read_mostly=*/true,
                               /*exclusive_reads=*/false));
    const Row& ex = exclusive.back();
    const Row& sh = shared.back();
    table.Row(config.threads, config.shards, ex.get_ops_per_second * 1e-3,
              sh.get_ops_per_second * 1e-3,
              sh.get_ops_per_second / ex.get_ops_per_second,
              ex.wall_seconds, sh.wall_seconds);
  }
  table.Print();

  if (out == "-") {
    WriteRwlockJson(std::cout, exclusive, shared, total_pages, total_ops,
                    key_space, fill_percent, page_latency_us, staging_bytes);
  } else {
    std::ofstream f(out);
    DSF_CHECK(f.good()) << "cannot open " << out;
    WriteRwlockJson(f, exclusive, shared, total_pages, total_ops, key_space,
                    fill_percent, page_latency_us, staging_bytes);
    bench::Note("JSON written to " + out);
  }
  return 0;
}

int Main(int argc, char** argv) {
  int64_t total_ops = 24000;
  int64_t total_pages = 4096;
  int64_t fill_percent = 50;
  int64_t page_latency_us = 100;
  int64_t staging_bytes = 0;
  std::string mode = "mixed";
  std::string out = "-";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--ops=", 0) == 0) {
      total_ops = std::stoll(arg.substr(6));
    } else if (arg.rfind("--total_pages=", 0) == 0) {
      total_pages = std::stoll(arg.substr(14));
    } else if (arg.rfind("--fill_percent=", 0) == 0) {
      fill_percent = std::stoll(arg.substr(15));
      DSF_CHECK(fill_percent >= 1 && fill_percent <= 99);
    } else if (arg.rfind("--page_latency_us=", 0) == 0) {
      page_latency_us = std::stoll(arg.substr(18));
      DSF_CHECK(page_latency_us >= 0);
    } else if (arg.rfind("--staging_bytes=", 0) == 0) {
      staging_bytes = std::stoll(arg.substr(16));
      DSF_CHECK(staging_bytes >= 0);
    } else if (arg.rfind("--mode=", 0) == 0) {
      mode = arg.substr(7);
      DSF_CHECK(mode == "mixed" || mode == "rwlock")
          << "mode must be mixed or rwlock";
    } else if (arg.rfind("--out=", 0) == 0) {
      out = arg.substr(6);
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return 1;
    }
  }
  const Key key_space = static_cast<Key>(total_pages) * 8;  // = capacity

  if (mode == "rwlock") {
    return RwlockMain(total_ops, total_pages, key_space, fill_percent,
                      page_latency_us, staging_bytes, out);
  }

  const std::vector<Config> sweep = {
      {1, 1}, {1, 2}, {1, 4}, {1, 8}, {2, 4}, {2, 8}, {4, 8}, {8, 8},
  };

  bench::Section(
      "E14: shard x thread scaling, mixed workload (page latency " +
      std::to_string(page_latency_us) + "us, staging " +
      std::to_string(staging_bytes) + "B)");
  bench::Table table({"threads", "shards", "wall s", "Mops/s",
                      "ins+del Mops/s", "speedup", "mean ns", "max us"});
  std::vector<Row> rows;
  for (const Config& config : sweep) {
    DSF_CHECK(total_pages % config.shards == 0)
        << "total_pages must divide evenly into shards";
    DSF_CHECK(total_ops % config.threads == 0)
        << "total_ops must divide evenly into threads";
    rows.push_back(RunConfig(config, total_pages, total_ops, key_space,
                             fill_percent, page_latency_us, staging_bytes));
    const Row& r = rows.back();
    table.Row(r.config.threads, r.config.shards, r.wall_seconds,
              r.ops_per_second * 1e-6,
              r.insert_delete_ops_per_second * 1e-6,
              r.insert_delete_ops_per_second /
                  rows.front().insert_delete_ops_per_second,
              r.mean_op_ns, static_cast<double>(r.max_op_ns) * 1e-3);
  }
  table.Print();

  if (out == "-") {
    WriteJson(std::cout, rows, total_pages, total_ops, key_space,
              fill_percent, page_latency_us, staging_bytes);
  } else {
    std::ofstream f(out);
    DSF_CHECK(f.good()) << "cannot open " << out;
    WriteJson(f, rows, total_pages, total_ops, key_space, fill_percent,
              page_latency_us, staging_bytes);
    bench::Note("JSON written to " + out);
  }
  return 0;
}

}  // namespace
}  // namespace dsf

int main(int argc, char** argv) { return dsf::Main(argc, argv); }
