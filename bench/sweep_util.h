// Shared sweep driver for experiments E3/E4: fill a dense file to
// capacity under a chosen workload and collect per-command page-access
// statistics for either maintenance policy.

#ifndef DSF_BENCH_SWEEP_UTIL_H_
#define DSF_BENCH_SWEEP_UTIL_H_

#include <memory>

#include "core/control2.h"
#include "core/dense_file.h"
#include "util/check.h"
#include "workload/workload.h"

namespace dsf::bench {

enum class FillKind {
  kDescending,  // adversarial single-page hotspot
  kUniform,     // random distinct keys
};

struct FillResult {
  int64_t M = 0;
  int64_t L = 0;
  int64_t gap = 0;  // D - d
  int64_t J = 0;    // 0 for CONTROL 1
  int64_t commands = 0;
  int64_t max_command_accesses = 0;
  double mean_command_accesses = 0.0;
  int64_t total_accesses = 0;
};

// Builds a DenseFile (M pages, d, D = d + gap) and inserts d*M records
// under `kind`, returning the command statistics.
inline FillResult RunFill(DenseFile::Policy policy, int64_t num_pages,
                          int64_t d, int64_t gap, FillKind kind,
                          uint64_t seed) {
  DenseFile::Options options;
  options.num_pages = num_pages;
  options.d = d;
  options.D = d + gap;
  options.policy = policy;
  std::unique_ptr<DenseFile> file = std::move(*DenseFile::Create(options));

  Trace trace;
  if (kind == FillKind::kDescending) {
    trace = DescendingInserts(file->capacity(), 1ull << 40);
  } else {
    Rng rng(seed);
    const std::vector<Record> records = MakeUniformRecords(
        file->capacity(), static_cast<Key>(8 * file->capacity()), rng);
    // Shuffle so the insertion order (not just the key set) is random.
    std::vector<Record> shuffled = records;
    for (size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[rng.Uniform(i)]);
    }
    for (const Record& r : shuffled) {
      trace.push_back(Op{Op::Kind::kInsert, r, 0});
    }
  }
  for (const Op& op : trace) {
    const Status s = file->Insert(op.record);
    DSF_CHECK(s.ok()) << s;
  }
  const Status invariants = file->ValidateInvariants();
  DSF_CHECK(invariants.ok()) << invariants;

  FillResult result;
  result.M = num_pages;
  result.L = file->control().logical_spec().L();
  result.gap = gap;
  if (policy == DenseFile::Policy::kControl2) {
    result.J = static_cast<const Control2&>(file->control()).J();
  }
  const CommandStats& cs = file->command_stats();
  result.commands = cs.commands;
  result.max_command_accesses = cs.max_command_accesses;
  result.mean_command_accesses = cs.MeanAccessesPerCommand();
  result.total_accesses = cs.total_accesses;
  return result;
}

}  // namespace dsf::bench

#endif  // DSF_BENCH_SWEEP_UTIL_H_
