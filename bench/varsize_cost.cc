// Experiment E12 — variable-size records ([BCW85], the paper's Section 2
// reference on variable record sizes).
//
// The amortized O(log^2 M/(D-d)) claim, re-measured when densities are
// counted in units and records occupy 1..S units each. Sweeps the maximum
// record size at fixed geometry and the file size at fixed S, reporting
// mean accesses per insert and redistribution counts. Expected shape: the
// normalized mean stays flat in M (same amortized rate as fixed-size
// CONTROL 1), and grows only mildly with S (the widened thresholds absorb
// record atomicity).

#include <memory>

#include "bench_common.h"
#include "util/check.h"
#include "util/random.h"
#include "varsize/var_control2.h"
#include "varsize/var_file.h"

namespace dsf {
namespace {

struct RunResult {
  double mean_accesses = 0;
  int64_t rebalances = 0;
  int64_t records = 0;
};

RunResult FillDescending(int64_t num_pages, int64_t d, int64_t gap,
                         int64_t max_size, uint64_t seed) {
  VarFile::Options options;
  options.num_pages = num_pages;
  options.d = d;
  options.D = d + gap;
  options.max_record_size = max_size;
  std::unique_ptr<VarFile> file = std::move(*VarFile::Create(options));

  Rng rng(seed);
  Key key = 1ull << 40;
  int64_t inserted = 0;
  for (;;) {
    const int64_t size = static_cast<int64_t>(rng.Uniform(max_size)) + 1;
    const Status s = file->Insert(VarRecord{key--, size, 0});
    if (s.IsCapacityExceeded()) break;
    DSF_CHECK(s.ok()) << s;
    ++inserted;
  }
  const Status invariants = file->ValidateInvariants();
  DSF_CHECK(invariants.ok()) << invariants;

  RunResult result;
  result.mean_accesses = static_cast<double>(file->stats().TotalAccesses()) /
                         static_cast<double>(inserted);
  result.rebalances = file->maintenance_stats().rebalances;
  result.records = inserted;
  return result;
}

void Run() {
  bench::Section(
      "E12: variable-size records (amortized, units-based thresholds) — "
      "descending fill with uniform sizes 1..S");

  bench::Note("Sweep S at M = 256, d = 24:");
  bench::Table by_size({"S", "D-d", "records", "mean acc/insert",
                        "rebalances"});
  for (const int64_t s : {1ll, 2ll, 4ll, 8ll}) {
    int64_t l = 8;
    const int64_t gap = (2 + s) * l + 9;
    const RunResult r = FillDescending(256, 24, gap, s, 4);
    by_size.Row(s, gap, r.records, r.mean_accesses, r.rebalances);
  }
  by_size.Print();

  bench::Note("\nSweep M at S = 4, d = 24 (normalized by L^2/(D-d)):");
  bench::Table by_m({"M", "L", "D-d", "records", "mean acc/insert",
                     "mean normalized", "rebalances"});
  for (const int64_t m : {64, 256, 1024}) {
    int64_t l = 1;
    while ((1ll << l) < m) ++l;
    const int64_t gap = 6 * l + 9;
    const double theory =
        static_cast<double>(l * l) / static_cast<double>(gap);
    const RunResult r = FillDescending(m, 24, gap, 4, 4);
    by_m.Row(m, l, gap, r.records, r.mean_accesses,
             r.mean_accesses / theory, r.rebalances);
  }
  by_m.Print();

  // Deamortization also generalizes: the worst single command under the
  // amortized VarFile (a redistribution spanning O(M) pages) vs. the
  // worst-case VarControl2 (bounded by its J SHIFT cycles). This goes
  // beyond both the paper (unit records) and [BCW85] (amortized only).
  bench::Note("\nWorst single command, amortized vs. worst-case variable-"
              "size maintenance\n(descending fill, S = 4, d = 24):");
  bench::Table worst({"M", "L", "D-d", "VarFile worst", "VarControl2 worst",
                      "VC2 J", "VC2 bound"});
  for (const int64_t m : {64, 256, 1024}) {
    int64_t l = 1;
    while ((1ll << l) < m) ++l;
    const int64_t gap = 12 * l + 9;  // > 3*S*L for S = 4

    // Amortized: track per-insert worst manually.
    VarFile::Options vf_options;
    vf_options.num_pages = m;
    vf_options.d = 24;
    vf_options.D = 24 + gap;
    vf_options.max_record_size = 4;
    std::unique_ptr<VarFile> vf = std::move(*VarFile::Create(vf_options));
    Rng rng_a(4);
    Key key = 1ull << 40;
    int64_t vf_worst = 0;
    for (;;) {
      const int64_t size = static_cast<int64_t>(rng_a.Uniform(4)) + 1;
      const int64_t before = vf->stats().TotalAccesses();
      const Status s = vf->Insert(VarRecord{key--, size, 0});
      if (s.IsCapacityExceeded()) break;
      DSF_CHECK(s.ok()) << s;
      vf_worst = std::max(vf_worst, vf->stats().TotalAccesses() - before);
    }

    VarControl2::Options vc_options;
    vc_options.num_pages = m;
    vc_options.d = 24;
    vc_options.D = 24 + gap;
    vc_options.max_record_size = 4;
    std::unique_ptr<VarControl2> vc =
        std::move(*VarControl2::Create(vc_options));
    Rng rng_b(4);
    key = 1ull << 40;
    for (;;) {
      const int64_t size = static_cast<int64_t>(rng_b.Uniform(4)) + 1;
      const Status s = vc->Insert(VarRecord{key--, size, 0});
      if (s.IsCapacityExceeded()) break;
      DSF_CHECK(s.ok()) << s;
    }
    DSF_CHECK(vc->ValidateInvariants().ok());
    worst.Row(m, l, gap, vf_worst, vc->command_cost().max_accesses,
              vc->J(), 4 * (vc->J() + 1) + 2);
  }
  worst.Print();
  bench::Note(
      "\n[BCW85] context: variable sizes keep the amortized rate; the "
      "price is the\nwidened gap condition. Expected shapes: the "
      "normalized mean stays flat in M\nand grows mildly with S; the "
      "amortized worst command grows ~M while the\nworst-case variant "
      "stays within its O(J) bound.");
}

}  // namespace
}  // namespace dsf

int main() {
  dsf::Run();
  return 0;
}
