// Durable-backend sweep: what the real device costs.
//
// Replays one uniform mixed trace against the same DenseFile geometry
// under five storage configurations — the pure in-memory simulation
// (seed behavior, no backend), the MemoryBackend (pending-slot plumbing
// without an OS file), and the FileBackend buffered with and without
// read-verification plus O_DIRECT — and reports throughput alongside
// the physical syscall counts (pread/pwrite/fdatasync). The logical
// accounting (page reads/writes, seeks) must be identical across every
// row: the backend is a durability layer UNDER the cost model, not a
// change to it — the differential parity tests enforce the same
// invariant; here it is printed so a regression is visible in the
// artifact. Tracked in BENCH_durable.json.
//
// O_DIRECT is attempted, not demanded: on filesystems without support
// (notably tmpfs, which CI points TMPDIR at) the backend falls back to
// buffered I/O and says so via direct_active — the row is still
// reported, tagged with what actually ran.
//
// Usage: durable_sweep [--ops=N] [--num_pages=M] [--fill_percent=F]
//                      [--dir=PATH] [--out=PATH]

#include <sys/stat.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/dense_file.h"
#include "storage/file_backend.h"
#include "storage/storage_backend.h"
#include "util/check.h"
#include "util/temp_dir.h"
#include "workload/workload.h"

namespace dsf {
namespace {

constexpr double kInsertFraction = 0.25;
constexpr double kDeleteFraction = 0.25;

struct Config {
  std::string label;
  bool use_file = false;
  bool use_memory_backend = false;
  bool direct_io = false;
  bool verify_reads = true;
};

struct Row {
  std::string label;
  std::string backend_name;  // what actually ran (O_DIRECT may fall back)
  double wall_seconds = 0;
  double ops_per_second = 0;
  double slowdown_vs_simulated = 1.0;
  IoStats io;
  FileBackend::Stats file_stats;  // zero for non-file rows
  bool has_file_stats = false;
};

Status Apply(DenseFile& file, const Op& op) {
  switch (op.kind) {
    case Op::Kind::kInsert:
      return file.Insert(op.record);
    case Op::Kind::kDelete:
      return file.Delete(op.record.key);
    case Op::Kind::kGet:
      return file.Get(op.record.key).status();
    case Op::Kind::kScan: {
      std::vector<Record> out;
      return file.Scan(op.record.key, op.scan_hi, &out);
    }
  }
  return Status::OK();
}

Row RunConfig(const Config& config, const Trace& trace, int64_t num_pages,
              int64_t fill_percent, const std::string& base_dir) {
  DenseFile::Options options;
  options.num_pages = num_pages;
  options.d = 8;
  options.D = 36;  // same geometry as the cache sweep (E16)

  std::string dir;
  if (config.use_file) {
    dir = base_dir + "/" + config.label;
    DSF_CHECK(::mkdir(dir.c_str(), 0755) == 0) << "mkdir " << dir;
    FileBackend::Options fb;
    fb.directory = dir;
    fb.direct_io = config.direct_io;
    fb.verify_reads = config.verify_reads;
    options.backend_factory = FileBackend::CreateFactory(fb);
  } else if (config.use_memory_backend) {
    options.backend_factory = [](int64_t pages, int64_t page_capacity)
        -> StatusOr<std::unique_ptr<StorageBackend>> {
      return std::unique_ptr<StorageBackend>(
          std::make_unique<MemoryBackend>(pages, page_capacity));
    };
  }

  StatusOr<std::unique_ptr<DenseFile>> created = DenseFile::Create(options);
  DSF_CHECK(created.ok()) << created.status();
  DenseFile& file = **created;

  const Key key_space = static_cast<Key>(file.capacity());
  std::vector<Record> initial;
  const int64_t skip = std::max<int64_t>(2, 100 / (100 - fill_percent));
  for (Key k = 1; k <= key_space; ++k) {
    if (static_cast<int64_t>(k % skip) != 0) initial.push_back(Record{k, k});
  }
  DSF_CHECK(file.BulkLoad(initial).ok());
  file.ResetIoStats();

  const auto start = std::chrono::steady_clock::now();
  for (const Op& op : trace) {
    const Status s = Apply(file, op);
    DSF_CHECK(s.ok() || s.IsAlreadyExists() || s.IsNotFound()) << s;
  }
  const auto end = std::chrono::steady_clock::now();
  DSF_CHECK(file.ValidateInvariants().ok());

  Row row;
  row.label = config.label;
  row.backend_name =
      file.storage_backend() == nullptr ? "simulated"
                                        : file.storage_backend()->Name();
  row.wall_seconds = std::chrono::duration<double>(end - start).count();
  row.ops_per_second = static_cast<double>(trace.size()) / row.wall_seconds;
  row.io = file.io_stats();
  if (config.use_file) {
    row.file_stats =
        static_cast<FileBackend*>(file.storage_backend())->stats();
    row.has_file_stats = true;
  }
  return row;
}

void WriteJson(std::ostream& os, const std::vector<Row>& rows,
               int64_t num_pages, int64_t total_ops, int64_t fill_percent) {
  os << "{\n";
  os << "  \"benchmark\": \"durable_sweep\",\n";
  os << "  \"num_pages\": " << num_pages << ",\n";
  os << "  \"total_ops\": " << total_ops << ",\n";
  os << "  \"fill_percent\": " << fill_percent << ",\n";
  os << "  \"workload_mix\": {\"insert\": " << kInsertFraction
     << ", \"delete\": " << kDeleteFraction << ", \"get\": "
     << 1.0 - kInsertFraction - kDeleteFraction << "},\n";
  os << "  \"configs\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    os << "    {\"label\": \"" << r.label << "\""
       << ", \"backend\": \"" << r.backend_name << "\""
       << ", \"wall_seconds\": " << r.wall_seconds
       << ", \"ops_per_second\": " << r.ops_per_second
       << ", \"slowdown_vs_simulated\": " << r.slowdown_vs_simulated
       << ", \"logical_reads\": " << r.io.logical_reads
       << ", \"physical_reads\": " << r.io.page_reads
       << ", \"logical_writes\": " << r.io.logical_writes
       << ", \"physical_writes\": " << r.io.page_writes
       << ", \"seeks\": " << r.io.seeks
       << ", \"preads\": " << (r.has_file_stats ? r.file_stats.preads : 0)
       << ", \"pwrites\": " << (r.has_file_stats ? r.file_stats.pwrites : 0)
       << ", \"syncs\": " << (r.has_file_stats ? r.file_stats.syncs : 0)
       << ", \"direct_active\": "
       << (r.has_file_stats && r.file_stats.direct_active ? "true" : "false")
       << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

int Main(int argc, char** argv) {
  int64_t total_ops = 20000;
  int64_t num_pages = 1024;
  int64_t fill_percent = 80;
  std::string dir;  // empty: fresh temp dir
  std::string out = "-";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--ops=", 0) == 0) {
      total_ops = std::stoll(arg.substr(6));
    } else if (arg.rfind("--num_pages=", 0) == 0) {
      num_pages = std::stoll(arg.substr(12));
    } else if (arg.rfind("--fill_percent=", 0) == 0) {
      fill_percent = std::stoll(arg.substr(15));
      DSF_CHECK(fill_percent >= 1 && fill_percent <= 99);
    } else if (arg.rfind("--dir=", 0) == 0) {
      dir = arg.substr(6);
    } else if (arg.rfind("--out=", 0) == 0) {
      out = arg.substr(6);
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return 1;
    }
  }

  std::unique_ptr<ScopedTempDir> temp;
  if (dir.empty()) {
    temp = std::make_unique<ScopedTempDir>("dsf-durable-sweep");
    dir = temp->path();
  }

  const Key key_space = static_cast<Key>(num_pages) * 8;
  Rng rng(20260807);
  const Trace trace = UniformMix(total_ops, kInsertFraction, kDeleteFraction,
                                 key_space, rng);

  const std::vector<Config> configs = {
      {"simulated", false, false, false, true},
      {"memory-backend", false, true, false, true},
      {"file-buffered", true, false, false, true},
      {"file-buffered-noverify", true, false, false, false},
      {"file-odirect", true, false, true, true},
  };

  bench::Section("E21: storage backend cost (simulated vs durable file)");
  bench::Table table({"config", "backend", "wall s", "Kops/s", "slowdown",
                      "preads", "pwrites", "syncs"});
  std::vector<Row> rows;
  double simulated_ops_per_second = 0;
  for (const Config& config : configs) {
    Row row = RunConfig(config, trace, num_pages, fill_percent, dir);
    if (config.label == "simulated") {
      simulated_ops_per_second = row.ops_per_second;
    }
    row.slowdown_vs_simulated =
        simulated_ops_per_second / row.ops_per_second;
    table.Row(row.label, row.backend_name, row.wall_seconds,
              row.ops_per_second * 1e-3, row.slowdown_vs_simulated,
              row.has_file_stats ? row.file_stats.preads : 0,
              row.has_file_stats ? row.file_stats.pwrites : 0,
              row.has_file_stats ? row.file_stats.syncs : 0);
    rows.push_back(std::move(row));
  }
  table.Print();

  // The accounting-parity invariant, asserted on the artifact itself.
  for (const Row& row : rows) {
    DSF_CHECK(row.io.page_reads == rows[0].io.page_reads &&
              row.io.page_writes == rows[0].io.page_writes)
        << row.label << ": backend perturbed the accounted I/O";
  }

  if (out == "-") {
    WriteJson(std::cout, rows, num_pages, total_ops, fill_percent);
  } else {
    std::ofstream f(out);
    DSF_CHECK(f.good()) << "cannot open " << out;
    WriteJson(f, rows, num_pages, total_ops, fill_percent);
    bench::Note("JSON written to " + out);
  }
  return 0;
}

}  // namespace
}  // namespace dsf

int main(int argc, char** argv) { return dsf::Main(argc, argv); }
