// Experiment E2 — Example 5.2 / Figures 3 and 4.
//
// Replays the paper's worked example through the real CONTROL 2
// implementation (8 pages, d=9, D=18, J=3; insert into page 8, then into
// page 1) and prints the paper's Figure 4 table next to the measured
// occupancies at every flag-stable moment t0..t8, flagging mismatches.

#include "bench_common.h"
#include "repro/example52.h"
#include "util/check.h"

namespace dsf {
namespace {

void Run() {
  bench::Section("E2: Example 5.2 / Figure 4 — step-for-step replay");

  StatusOr<repro::Example52Result> run = repro::RunExample52();
  DSF_CHECK(run.ok()) << run.status();
  const auto& expected = repro::Figure4Expected();

  bench::Table table({"moment", "paper (L1..L8)", "measured (L1..L8)",
                      "match", "warn L1/L8/v3", "DEST(v3)"});
  bool all_match = true;
  for (size_t t = 0; t < expected.size(); ++t) {
    const repro::Example52Snapshot& snap = run->moments[t];
    auto render = [](const std::array<int64_t, 8>& row) {
      std::string s;
      for (size_t i = 0; i < row.size(); ++i) {
        if (i > 0) s += " ";
        s += std::to_string(row[i]);
      }
      return s;
    };
    const bool match = snap.occupancy == expected[t];
    all_match &= match;
    std::string warns;
    warns += snap.warn_l1 ? "1/" : "0/";
    warns += snap.warn_l8 ? "1/" : "0/";
    warns += snap.warn_v3 ? "1" : "0";
    table.Row("t" + std::to_string(t), render(expected[t]),
              render(snap.occupancy), match ? "yes" : "NO", warns,
              snap.warn_v3 ? std::to_string(snap.dest_v3) : "-");
  }
  table.Print();
  bench::Note(all_match
                  ? "\nAll 9 flag-stable moments reproduce Figure 4 exactly,"
                    "\nincluding the roll-back of DEST(v3) at t5 (rule 1) and"
                    "\nthe all-calm state at t8."
                  : "\nMISMATCH with Figure 4 — investigate!");
}

}  // namespace
}  // namespace dsf

int main() {
  dsf::Run();
  return 0;
}
