// Ingest staging sweep: memtable size x workload under device latency.
//
// Replays write-heavy traces against a device-resident DenseFile (the
// seek-aware DiskModel with real sleeps: a seek costs --seek_us, a
// sequential page transfer --transfer_us; fixed 256-frame pool) at
// staging buffer sizes 0 (staging disabled — the baseline), 64, 256 and
// 1024 entries, and reports throughput, physical traffic and
// drain-scheduler counters per configuration as JSON — the perf
// trajectory artifact tracked in BENCH_ingest.json.
//
// Workloads:
//   ascending_burst  The headline ingest shape: the file starts 50% full
//                    (bulk-loaded low key range) and a burst of strictly
//                    ascending new keys streams in. Unstaged, every
//                    insert is a full CONTROL 2 command ending in a pool
//                    flush, and each flush scatters the arm across the
//                    target block and the advancing SHIFT frontier —
//                    roughly two seeks per command. Staged, writes land
//                    in the memtable for zero page accesses and the
//                    drain scheduler applies a whole batch under one
//                    deferred flush: the window's dirty pages (the same
//                    target block plus a consecutive stretch of frontier
//                    pages) flush as one mostly-sequential run, so the
//                    per-op seek count collapses. Target: >= 3x ops/s
//                    over staging disabled at the same pool config.
//   uniform_mix      60% inserts / 20% deletes / 20% gets over the whole
//                    key space — exercises the merged read view and
//                    tombstone staging under no locality (honest case).
//
// Every configuration runs with certify_bound: each drained entry is an
// ordinary certified command, so the sweep doubles as evidence that the
// drain scheduler never breaches the K*(4J+2) per-command envelope —
// the run aborts on any bound violation, audit failure or invariant
// break. The final Flush() (staged drains + pool write-back) is inside
// the measured wall time, so staged configurations pay for durability
// before the clock stops.
//
// A second sweep replays a 4-thread disjoint-range mix against a
// 4-shard file with a shared staging_bytes budget (split per shard,
// drain-on-rotate active) via ParallelReplayer, staging on vs off.
//
// Usage: ingest_sweep [--ops=N] [--num_pages=M] [--seek_us=S]
//                     [--transfer_us=U] [--threads=T] [--out=PATH]

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/auditor.h"
#include "bench_common.h"
#include "core/dense_file.h"
#include "shard/sharded_dense_file.h"
#include "util/check.h"
#include "workload/parallel_replayer.h"
#include "workload/workload.h"

namespace dsf {
namespace {

constexpr int64_t kPoolFrames = 256;
constexpr double kMixInsertFraction = 0.60;
constexpr double kMixDeleteFraction = 0.20;

struct Row {
  std::string workload;
  int64_t staging_entries = 0;
  int64_t drain_batch = 0;
  int64_t drain_access_budget = 0;
  double wall_seconds = 0;
  double ops_per_second = 0;
  double speedup_vs_disabled = 1.0;
  double logical_per_op = 0;
  double physical_per_op = 0;
  IoStats io;
  BufferPool::Stats cache;
  StagingStats staging;
  int64_t bound_budget = 0;
  int64_t bound_max_accesses = 0;
  int64_t bound_violations = 0;
};

struct ShardRow {
  bool staging = false;
  int64_t staging_bytes = 0;
  double wall_seconds = 0;
  double ops_per_second = 0;
  double speedup_vs_disabled = 1.0;
  int64_t physical_writes = 0;
  int64_t seeks = 0;
  int64_t staging_puts = 0;
  int64_t staging_drain_steps = 0;
  int64_t staging_drained = 0;
};

Status Apply(DenseFile& file, const Op& op) {
  switch (op.kind) {
    case Op::Kind::kInsert:
      return file.Insert(op.record);
    case Op::Kind::kDelete:
      return file.Delete(op.record.key);
    case Op::Kind::kGet:
      return file.Get(op.record.key).status();
    case Op::Kind::kScan: {
      std::vector<Record> out;
      return file.Scan(op.record.key, op.scan_hi, &out);
    }
  }
  return Status::OK();
}

// The burst trace: strictly ascending brand-new keys, starting just past
// the pre-loaded range.
Trace AscendingBurst(int64_t ops, Key first_key) {
  Trace trace;
  trace.reserve(static_cast<size_t>(ops));
  for (int64_t i = 0; i < ops; ++i) {
    Op op;
    op.kind = Op::Kind::kInsert;
    const Key k = first_key + static_cast<Key>(i);
    op.record = Record{k, k * 3};
    trace.push_back(op);
  }
  return trace;
}

Row RunConfig(const std::string& workload, const Trace& trace,
              int64_t num_pages, int64_t staging_entries,
              int64_t load_records, const DiskModel& disk) {
  DenseFile::Options options;
  options.num_pages = num_pages;
  options.d = 8;
  options.D = 36;  // same geometry as the cache sweep (E16)
  options.cache_frames = kPoolFrames;
  options.staging_entries = staging_entries;
  options.certify_bound = true;
  StatusOr<std::unique_ptr<DenseFile>> created = DenseFile::Create(options);
  DSF_CHECK(created.ok()) << created.status();
  DenseFile& file = **created;

  // Warm start: load_records consecutive keys from 1 up, uniform density.
  std::vector<Record> initial;
  initial.reserve(static_cast<size_t>(load_records));
  for (Key k = 1; k <= static_cast<Key>(load_records); ++k) {
    initial.push_back(Record{k, k});
  }
  DSF_CHECK(file.BulkLoad(initial).ok());
  file.ResetIoStats();
  file.ResetCacheStats();
  // The device model applies to the measured traffic only, not the load.
  file.control().file().set_disk_model(disk, /*sleep=*/true);

  const auto start = std::chrono::steady_clock::now();
  for (const Op& op : trace) {
    const Status s = Apply(file, op);
    DSF_CHECK(s.ok() || s.IsAlreadyExists() || s.IsNotFound()) << s;
  }
  // Durability point inside the measured window: staged configurations
  // pay for their deferred writes before the clock stops.
  DSF_CHECK(file.Flush().ok());
  const auto end = std::chrono::steady_clock::now();

  file.control().file().set_access_latency(std::chrono::nanoseconds(0));
  DSF_CHECK(file.ValidateInvariants().ok());
  const AuditReport audit = file.Audit();
  DSF_CHECK(audit.ok()) << audit.ToString();
  const BoundReport* bound = file.bound_report();
  DSF_CHECK(bound != nullptr);
  DSF_CHECK(bound->ok()) << bound->ToString();

  Row row;
  row.workload = workload;
  row.staging_entries = staging_entries;
  row.drain_batch = file.drain_batch();
  row.drain_access_budget = file.drain_access_budget();
  row.wall_seconds = std::chrono::duration<double>(end - start).count();
  row.ops_per_second = static_cast<double>(trace.size()) / row.wall_seconds;
  row.io = file.io_stats();
  row.cache = file.cache_stats();
  row.staging = file.staging_stats();
  const double ops = static_cast<double>(trace.size());
  row.logical_per_op = static_cast<double>(row.io.TotalLogical()) / ops;
  row.physical_per_op = static_cast<double>(row.io.TotalAccesses()) / ops;
  row.bound_budget = bound->budget;
  row.bound_max_accesses = bound->max_accesses;
  row.bound_violations = static_cast<int64_t>(bound->violations.size());
  return row;
}

ShardRow RunShardedConfig(int num_threads, int64_t ops_per_thread,
                          int64_t num_pages, int64_t staging_bytes,
                          const DiskModel& disk) {
  ShardedDenseFile::Options options;
  options.num_shards = num_threads;
  // Each shard keeps E18's full single-file geometry (per-shard M is NOT
  // divided by S): E18b then isolates what sharding + concurrency do to
  // the staging win, instead of also shrinking per-shard J — at M/S the
  // burst's maintenance is already cheap and staging has nothing to save.
  options.shard.num_pages = num_pages;
  options.shard.d = 8;
  options.shard.D = 36;
  options.shard.certify_bound = true;
  // E18's pool budget for every shard (cache_bytes splits across shards).
  options.cache_bytes = static_cast<int64_t>(num_threads) * kPoolFrames *
                        (options.shard.D + 1) *
                        static_cast<int64_t>(sizeof(Record));
  options.staging_bytes = staging_bytes;
  const Key key_space =
      static_cast<Key>(num_pages) * 8 * static_cast<Key>(num_threads);
  options.key_space = key_space;
  StatusOr<std::unique_ptr<ShardedDenseFile>> created =
      ShardedDenseFile::Create(options);
  DSF_CHECK(created.ok()) << created.status();
  ShardedDenseFile& file = **created;

  // Per-shard mirror of E18's ascending_burst: each shard's low half is
  // pre-loaded with consecutive keys, then thread t streams an ascending
  // burst just past its own shard's loaded prefix — thread ranges align
  // with the uniform splitters, so each burst hits exactly one shard's
  // staging buffer and device.
  const Key range = key_space / num_threads;
  const int64_t shard_capacity = options.shard.num_pages * options.shard.d;
  const int64_t load_per_shard = shard_capacity / 2;
  DSF_CHECK(ops_per_thread <= shard_capacity - load_per_shard)
      << "per-shard burst would exceed shard capacity";
  std::vector<Record> initial;
  initial.reserve(static_cast<size_t>(load_per_shard) *
                  static_cast<size_t>(num_threads));
  std::vector<Trace> traces;
  traces.reserve(static_cast<size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    const Key lo = static_cast<Key>(t) * range + 1;
    for (int64_t i = 0; i < load_per_shard; ++i) {
      const Key k = lo + static_cast<Key>(i);
      initial.push_back(Record{k, k});
    }
    traces.push_back(
        AscendingBurst(ops_per_thread, lo + static_cast<Key>(load_per_shard)));
  }
  DSF_CHECK(file.BulkLoad(initial).ok());
  file.ResetStats();
  // The device model applies to the measured traffic only, not the load.
  file.SetDiskModel(disk, /*sleep=*/true);
  ParallelReplayer::Options replay_options;
  replay_options.num_threads = num_threads;
  replay_options.flush_staging_at_end = true;
  ParallelReplayer replayer(replay_options);
  const ReplayResult result = replayer.Replay(file, traces);
  DSF_CHECK(result.ok()) << result.first_unexpected_error;
  file.SetAccessLatency(std::chrono::nanoseconds(0));
  // Capture the replay's device traffic before the verification scans
  // add theirs.
  const IoStats io = file.io_stats();
  DSF_CHECK(file.ValidateInvariants().ok());
  const AuditReport audit = file.Audit();
  DSF_CHECK(audit.ok()) << audit.ToString();

  ShardRow row;
  row.staging = staging_bytes > 0;
  row.staging_bytes = staging_bytes;
  row.wall_seconds = result.wall_seconds;
  row.ops_per_second = result.OpsPerSecond();
  row.physical_writes = io.page_writes;
  row.seeks = io.seeks;
  const StagingStats staging = file.staging_stats();
  row.staging_puts = staging.puts;
  row.staging_drain_steps = staging.drain_steps;
  row.staging_drained = staging.drained_entries;
  return row;
}

void WriteJson(std::ostream& os, const std::vector<Row>& rows,
               const std::vector<ShardRow>& shard_rows, int64_t num_pages,
               int64_t total_ops, const DiskModel& disk,
               int num_threads) {
  os << "{\n";
  os << "  \"benchmark\": \"ingest_sweep\",\n";
  os << "  \"num_pages\": " << num_pages << ",\n";
  os << "  \"total_ops\": " << total_ops << ",\n";
  os << "  \"pool_frames\": " << kPoolFrames << ",\n";
  os << "  \"seek_us\": " << disk.seek_ms * 1000.0 << ",\n";
  os << "  \"transfer_us\": " << disk.transfer_ms * 1000.0 << ",\n";
  os << "  \"configs\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    os << "    {\"workload\": \"" << r.workload << "\""
       << ", \"staging_entries\": " << r.staging_entries
       << ", \"drain_batch\": " << r.drain_batch
       << ", \"drain_access_budget\": " << r.drain_access_budget
       << ", \"wall_seconds\": " << r.wall_seconds
       << ", \"ops_per_second\": " << r.ops_per_second
       << ", \"speedup_vs_disabled\": " << r.speedup_vs_disabled
       << ", \"logical_per_op\": " << r.logical_per_op
       << ", \"physical_per_op\": " << r.physical_per_op
       << ", \"physical_writes\": " << r.io.page_writes
       << ", \"physical_reads\": " << r.io.page_reads
       << ", \"seeks\": " << r.io.seeks
       << ", \"write_combines\": " << r.cache.write_combines
       << ", \"additive_absorbs\": " << r.cache.additive_absorbs
       << ", \"relocations\": " << r.cache.relocations
       << ", \"ordered_flushes\": " << r.cache.ordered_flushes
       << ", \"flush_runs\": " << r.cache.flush_runs
       << ", \"evictions\": " << r.cache.evictions
       << ", \"staging_puts\": " << r.staging.puts
       << ", \"staging_hits\": " << r.staging.hits
       << ", \"staging_annihilations\": " << r.staging.annihilations
       << ", \"staging_drain_steps\": " << r.staging.drain_steps
       << ", \"staging_drained_entries\": " << r.staging.drained_entries
       << ", \"bound_budget\": " << r.bound_budget
       << ", \"bound_max_accesses\": " << r.bound_max_accesses
       << ", \"bound_violations\": " << r.bound_violations << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"sharded\": {\"threads\": " << num_threads
     << ", \"shards\": " << num_threads << ", \"configs\": [\n";
  for (size_t i = 0; i < shard_rows.size(); ++i) {
    const ShardRow& r = shard_rows[i];
    os << "    {\"staging\": " << (r.staging ? "true" : "false")
       << ", \"staging_bytes\": " << r.staging_bytes
       << ", \"wall_seconds\": " << r.wall_seconds
       << ", \"ops_per_second\": " << r.ops_per_second
       << ", \"speedup_vs_disabled\": " << r.speedup_vs_disabled
       << ", \"physical_writes\": " << r.physical_writes
       << ", \"seeks\": " << r.seeks
       << ", \"staging_puts\": " << r.staging_puts
       << ", \"staging_drain_steps\": " << r.staging_drain_steps
       << ", \"staging_drained_entries\": " << r.staging_drained << "}"
       << (i + 1 < shard_rows.size() ? "," : "") << "\n";
  }
  os << "  ]}\n}\n";
}

int Main(int argc, char** argv) {
  int64_t total_ops = 5000;
  int64_t num_pages = 4096;
  int64_t seek_us = 300;
  int64_t transfer_us = 15;
  int num_threads = 4;
  std::string out = "-";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--ops=", 0) == 0) {
      total_ops = std::stoll(arg.substr(6));
    } else if (arg.rfind("--num_pages=", 0) == 0) {
      num_pages = std::stoll(arg.substr(12));
    } else if (arg.rfind("--seek_us=", 0) == 0) {
      seek_us = std::stoll(arg.substr(10));
      DSF_CHECK(seek_us >= 0);
    } else if (arg.rfind("--transfer_us=", 0) == 0) {
      transfer_us = std::stoll(arg.substr(14));
      DSF_CHECK(transfer_us >= 0);
    } else if (arg.rfind("--threads=", 0) == 0) {
      num_threads = static_cast<int>(std::stoll(arg.substr(10)));
      DSF_CHECK(num_threads >= 1);
    } else if (arg.rfind("--out=", 0) == 0) {
      out = arg.substr(6);
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return 1;
    }
  }

  const int64_t capacity = num_pages * 8;  // d * M
  const int64_t load_records = capacity / 2;
  DSF_CHECK(total_ops <= capacity - load_records)
      << "burst would exceed file capacity";
  const Key key_space = static_cast<Key>(capacity);
  DiskModel disk;
  disk.seek_ms = static_cast<double>(seek_us) * 1e-3;
  disk.transfer_ms = static_cast<double>(transfer_us) * 1e-3;

  Rng mix_rng(20260808);
  const std::vector<std::pair<std::string, Trace>> workloads = {
      {"ascending_burst",
       AscendingBurst(total_ops, static_cast<Key>(load_records) + 1)},
      {"uniform_mix",
       UniformMix(total_ops, kMixInsertFraction, kMixDeleteFraction,
                  key_space, mix_rng)},
  };
  const std::vector<int64_t> staging_sizes = {0, 64, 256, 1024};

  bench::Section("E18: ingest staging size x workload (seek " +
                 std::to_string(seek_us) + "us, transfer " +
                 std::to_string(transfer_us) + "us)");
  bench::Table table({"workload", "staging", "batch", "wall s", "Kops/s",
                      "speedup", "phys W", "seeks", "drains", "max acc",
                      "budget"});
  std::vector<Row> rows;
  for (const auto& [name, trace] : workloads) {
    double base_ops_per_second = 0;
    for (const int64_t staging : staging_sizes) {
      Row row = RunConfig(name, trace, num_pages, staging, load_records,
                          disk);
      if (staging == 0) base_ops_per_second = row.ops_per_second;
      row.speedup_vs_disabled = row.ops_per_second / base_ops_per_second;
      table.Row(row.workload, row.staging_entries, row.drain_batch,
                row.wall_seconds, row.ops_per_second * 1e-3,
                row.speedup_vs_disabled, row.io.page_writes, row.io.seeks,
                row.staging.drain_steps, row.bound_max_accesses,
                row.bound_budget);
      rows.push_back(std::move(row));
    }
  }
  table.Print();

  bench::Section("E18b: sharded staging via parallel replay (" +
                 std::to_string(num_threads) + " threads x " +
                 std::to_string(num_threads) + " shards)");
  bench::Table shard_table({"staging B", "wall s", "Kops/s", "speedup",
                            "phys W", "seeks", "puts", "drains"});
  std::vector<ShardRow> shard_rows;
  const int64_t shard_staging_bytes =
      static_cast<int64_t>(num_threads) * 256 *
      static_cast<int64_t>(sizeof(StagedEntry));
  double shard_base = 0;
  for (const int64_t staging_bytes : {int64_t{0}, shard_staging_bytes}) {
    // Every thread replays the full-length burst into its own shard:
    // per-shard work matches E18's ascending_burst exactly (burst cost is
    // superlinear in burst length, so splitting one burst S ways would
    // compare against a much cheaper workload).
    ShardRow row =
        RunShardedConfig(num_threads, total_ops, num_pages, staging_bytes,
                         disk);
    if (staging_bytes == 0) shard_base = row.ops_per_second;
    row.speedup_vs_disabled = row.ops_per_second / shard_base;
    shard_table.Row(row.staging_bytes, row.wall_seconds,
                    row.ops_per_second * 1e-3, row.speedup_vs_disabled,
                    row.physical_writes, row.seeks, row.staging_puts,
                    row.staging_drain_steps);
    shard_rows.push_back(row);
  }
  shard_table.Print();

  if (out == "-") {
    WriteJson(std::cout, rows, shard_rows, num_pages, total_ops, disk,
              num_threads);
  } else {
    std::ofstream f(out);
    DSF_CHECK(f.good()) << "cannot open " << out;
    WriteJson(f, rows, shard_rows, num_pages, total_ops, disk,
              num_threads);
    bench::Note("JSON written to " + out);
  }
  return 0;
}

}  // namespace
}  // namespace dsf

int main(int argc, char** argv) { return dsf::Main(argc, argv); }
