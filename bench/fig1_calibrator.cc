// Experiment E1 — Figures 1a/1b.
//
// The paper's first figure shows a 4-page dense file with d=2, D=3 holding
// {3,2,1,2} records per page, and its calibrator annotated with the node
// densities p(v). This bench rebuilds that file, prints the calibrator
// with measured densities next to the figure's values, and verifies the
// BALANCE(2,3) condition the figure illustrates.

#include <array>

#include "bench_common.h"
#include "core/control2.h"
#include "util/check.h"

namespace dsf {
namespace {

void Run() {
  bench::Section("E1: Figure 1a/1b — 4-page file, d=2, D=3, pages {3,2,1,2}");

  Control2::Options options;
  options.config.num_pages = 4;
  options.config.d = 2;
  options.config.D = 3;
  options.config.block_size = 1;
  // D-d = 1 <= 3*ceil(log 4): the figure is a static illustration, not a
  // regime the maintenance theorem covers.
  options.allow_gap_violation_for_testing = true;
  std::unique_ptr<Control2> control = std::move(*Control2::Create(options));

  const std::array<int64_t, 4> occupancy = {3, 2, 1, 2};
  std::vector<std::vector<Record>> layout(4);
  Key key = 1;
  for (size_t p = 0; p < 4; ++p) {
    for (int64_t i = 0; i < occupancy[p]; ++i) {
      layout[p].push_back(Record{key++, 0});
    }
  }
  DSF_CHECK(control->LoadLayout(layout).ok()) << "layout load failed";

  const Calibrator& cal = control->calibrator();
  const DensitySpec& spec = control->logical_spec();

  // Figure 1b's densities, top-down left-to-right: root 2, internal 2.5
  // and 1.5, leaves 3 2 1 2.
  const std::array<double, 7> figure = {2.0, 2.5, 1.5, 3.0, 2.0, 1.0, 2.0};
  std::vector<int> order = {cal.root(), cal.Left(cal.root()),
                            cal.Right(cal.root())};
  for (Address p = 1; p <= 4; ++p) order.push_back(cal.LeafOf(p));

  bench::Table table({"node", "range", "depth", "p(v) paper", "p(v) measured",
                      "g(v,1)", "p(v)<=g(v,1)"});
  bool balanced = true;
  for (size_t i = 0; i < order.size(); ++i) {
    const int v = order[i];
    const double p = static_cast<double>(cal.Count(v)) /
                     static_cast<double>(cal.PagesIn(v));
    const bool ok = spec.DensityAtMost(cal.Count(v), cal.PagesIn(v),
                                       cal.Depth(v), kThirds1);
    balanced &= ok;
    table.Row("v" + std::to_string(i + 1),
              "[" + std::to_string(cal.RangeLo(v)) + "," +
                  std::to_string(cal.RangeHi(v)) + "]",
              cal.Depth(v), figure[i], p, spec.G(cal.Depth(v), 1.0),
              ok ? "yes" : "NO");
    DSF_CHECK(p == figure[i]) << "density diverges from Figure 1b";
  }
  table.Print();
  bench::Note(balanced
                  ? "\nBALANCE(2,3) holds at every node, as Figure 1 shows."
                  : "\nBALANCE violated — MISMATCH with the paper!");
}

}  // namespace
}  // namespace dsf

int main() {
  dsf::Run();
  return 0;
}
