// Experiment E8 — Theorem 5.7: maintaining (d,D)-density when the gap
// D-d is at or below 3*ceil(log M), via macro-blocks of K pages run with
// thresholds (Kd, KD).
//
// For shrinking gaps on a fixed file we let AutoBlockSize pick K, fill to
// capacity under the descending hotspot, and report the worst-case and
// mean page accesses per command. The shape to check: the worst case
// tracks O(log^2 M/(D-d)) — i.e. the 'max * (D-d)/L^2' column stays
// roughly flat as the gap shrinks (while K grows), which is exactly the
// theorem's claim that macro-blocks preserve the unit-page cost bound.

#include "bench_common.h"
#include "core/control2.h"
#include "core/dense_file.h"
#include "util/check.h"
#include "workload/workload.h"

namespace dsf {
namespace {

void Run() {
  bench::Section(
      "E8: Theorem 5.7 macro-blocks — descending fill, M = 1024 pages, "
      "d = 8, shrinking gap D-d");

  const int64_t m = 1024;
  const int64_t d = 8;
  int64_t l = 10;  // ceil(log2 1024)

  bench::Table table({"D-d", "K", "blocks", "J", "max/insert",
                      "mean/insert", "max*(D-d)/L^2", "gap>3L?"});
  for (const int64_t gap : {41ll, 16ll, 8ll, 4ll, 2ll, 1ll}) {
    DenseFile::Options options;
    options.num_pages = m;
    options.d = d;
    options.D = d + gap;
    std::unique_ptr<DenseFile> file =
        std::move(*DenseFile::Create(options));
    const Trace trace = DescendingInserts(file->capacity(), 1ull << 40);
    for (const Op& op : trace) {
      const Status s = file->Insert(op.record);
      DSF_CHECK(s.ok()) << s;
    }
    const Status invariants = file->ValidateInvariants();
    DSF_CHECK(invariants.ok()) << invariants;
    const auto& control = static_cast<const Control2&>(file->control());
    const CommandStats& cs = file->command_stats();
    table.Row(gap, file->block_size(),
              m / file->block_size(), control.J(),
              cs.max_command_accesses, cs.MeanAccessesPerCommand(),
              static_cast<double>(cs.max_command_accesses * gap) /
                  static_cast<double>(l * l),
              gap > 3 * l ? "yes" : "no (macro)");
  }
  table.Print();
  bench::Note(
      "\nPaper claim (Theorem 5.7): for every d < D, worst-case time "
      "O(log^2 M/(D-d))\nholds — below the gap condition by shifting "
      "between macro-blocks of K pages,\nwith K(D-d) > 3*ceil(log(M/K)). "
      "Expected shape: 'max*(D-d)/L^2' roughly flat\nacross the whole "
      "table, i.e. cost ~ 1/(D-d) even in the macro regime.");
}

}  // namespace
}  // namespace dsf

int main() {
  dsf::Run();
  return 0;
}
