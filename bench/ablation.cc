// Experiment E9 — ablations of CONTROL 2's design choices.
//
//  (a) ACTIVATE's roll-back rules (the anti-thrashing correction): we
//      replay the paper's own Example 5.2 — where roll-back rule 1
//      demonstrably fires at t5 — with the rules disabled, and diff the
//      resulting evolution against Figure 4: without the roll-back the
//      file diverges from the paper from t6 onward and ends the command
//      with residual warning state (deferred maintenance debt).
//  (b) Warning hysteresis (the 1/3 vs 2/3 thresholds): collapsing the
//      band makes flags flap — every re-activation resets DEST to the far
//      end of the father's range, discarding pointer progress — which
//      shows up as more activations and more shifted records for the same
//      workload.
//  (c) Insert placement: paper-faithful predecessor-page placement vs. a
//      spill heuristic that diverts an insert into an adjacent empty page
//      when it would push its target into the warning band.

#include "bench_common.h"
#include "core/control2.h"
#include "repro/example52.h"
#include "util/check.h"
#include "workload/workload.h"

namespace dsf {
namespace {

// ----- E9a ---------------------------------------------------------------

struct RollbackRun {
  int64_t rollbacks = 0;
  int64_t figure4_mismatches = 0;  // flag-stable moments diverging
  int64_t residual_warnings = 0;   // warning nodes after the last command
  int64_t records_shifted = 0;
};

RollbackRun RunExample52Variant(bool disable_rollback) {
  Control2::Options options;
  options.config.num_pages = 8;
  options.config.d = 9;
  options.config.D = 18;
  options.J = 3;
  options.allow_gap_violation_for_testing = true;
  options.disable_rollback_for_testing = disable_rollback;
  std::unique_ptr<Control2> control = std::move(*Control2::Create(options));

  // Figure 4's t0 layout.
  const auto& expected = repro::Figure4Expected();
  std::vector<std::vector<Record>> layout(8);
  for (Address p = 1; p <= 8; ++p) {
    for (int64_t i = 0; i < expected[0][static_cast<size_t>(p - 1)]; ++i) {
      layout[static_cast<size_t>(p - 1)].push_back(
          Record{static_cast<Key>(p * 1000 + i), 0});
    }
  }
  DSF_CHECK(control->LoadLayout(layout).ok());

  RollbackRun run;
  size_t moment = 1;
  control->SetStepCallback([&](Control2::StablePoint, int64_t) {
    if (moment < expected.size()) {
      const Calibrator& cal = control->calibrator();
      for (Address p = 1; p <= 8; ++p) {
        if (cal.Count(cal.LeafOf(p)) !=
            expected[moment][static_cast<size_t>(p - 1)]) {
          ++run.figure4_mismatches;
          break;
        }
      }
    }
    ++moment;
  });
  DSF_CHECK(control->Insert(Record{8999, 0}).ok());  // Z1
  DSF_CHECK(control->Insert(Record{1, 0}).ok());     // Z2
  control->SetStepCallback(nullptr);

  run.rollbacks = control->stats().rollbacks;
  run.records_shifted = control->stats().records_shifted;
  for (int v = 0; v < control->calibrator().node_count(); ++v) {
    if (control->warning(v)) ++run.residual_warnings;
  }
  return run;
}

void RunRollbackAblation() {
  bench::Section(
      "E9a: ACTIVATE roll-back rules — Example 5.2 (M=8, d=9, D=18, J=3), "
      "commands Z1 and Z2");
  bench::Table table({"variant", "rollbacks fired", "moments diverging from "
                      "Figure 4", "residual warnings after Z2",
                      "records shifted"});
  const RollbackRun paper = RunExample52Variant(false);
  const RollbackRun ablated = RunExample52Variant(true);
  table.Row("paper (roll-back on)", paper.rollbacks,
            paper.figure4_mismatches, paper.residual_warnings,
            paper.records_shifted);
  table.Row("roll-back disabled", ablated.rollbacks,
            ablated.figure4_mismatches, ablated.residual_warnings,
            ablated.records_shifted);
  table.Print();
  bench::Note(
      "\nWithout the roll-back, DEST(v3) stays at 2 when L1 activates, so "
      "SHIFT(v3)\nwastes its next cycle re-discovering the region SHIFT(L1) "
      "re-densified: the\nevolution diverges from Figure 4 from t6 onward "
      "and the same two commands\naccomplish less densifying work (fewer "
      "records shifted), leaving the hotspot\nregion denser — exactly the "
      "thrashing debt ACTIVATE's step 3 repays eagerly.");
}

// ----- E9b ---------------------------------------------------------------

// Alternating bursts of descending inserts at three pivots with deletes
// of half of each batch: keeps many nodes cycling through the warning
// band, which is where the hysteresis width matters.
Trace BurstChurnTrace(int64_t rounds) {
  Trace trace;
  const Key far_left = 1ull << 20;
  const Key mid_left = far_left + (1ull << 18);
  const Key right = far_left + (1ull << 22);
  Key next = 0;
  for (int64_t r = 0; r < rounds; ++r) {
    std::vector<Key> batch;
    auto burst = [&](Key pivot, int64_t n) {
      for (int64_t i = 0; i < n; ++i) {
        const Key k = pivot - next - 1;
        batch.push_back(k);
        trace.push_back(Op{Op::Kind::kInsert, Record{k, k}, 0});
        ++next;
      }
    };
    burst(right, 40);
    burst(far_left, 40);
    burst(mid_left, 40);
    for (size_t i = 0; i < batch.size(); i += 2) {
      trace.push_back(Op{Op::Kind::kDelete, Record{batch[i], 0}, 0});
    }
  }
  return trace;
}

void RunHysteresisAblation() {
  bench::Section(
      "E9b: warning hysteresis (lower at g(1/3)) vs. collapsed band "
      "(lower at g(2/3)) — burst churn, M=256, d=4, D-d=33");
  const Trace trace = BurstChurnTrace(60);

  bench::Table table({"variant", "violations", "activations", "shifts",
                      "records shifted", "mean/insert"});
  for (const bool collapsed : {false, true}) {
    Control2::Options options;
    options.config.num_pages = 256;
    options.config.d = 4;
    options.config.D = 4 + 33;
    if (collapsed) options.lower_threshold_thirds = kThirds2Of3;
    std::unique_ptr<Control2> control =
        std::move(*Control2::Create(options));
    int64_t violations = 0;
    for (const Op& op : trace) {
      Status s;
      if (op.kind == Op::Kind::kInsert) {
        s = control->Insert(op.record);
      } else {
        s = control->Delete(op.record.key);
      }
      DSF_CHECK(s.ok() || s.IsCapacityExceeded() || s.IsNotFound()) << s;
      if (!control->ValidateInvariants().ok()) ++violations;
    }
    table.Row(collapsed ? "collapsed band" : "paper (hysteresis)",
              violations, control->stats().activations,
              control->stats().shifts, control->stats().records_shifted,
              control->command_stats().MeanAccessesPerCommand());
  }
  table.Print();
}

// ----- E9c ---------------------------------------------------------------

void RunPlacementAblation() {
  bench::Section("E9c: insert placement — predecessor page (paper) vs. "
                 "spill-to-empty-neighbor, ascending fill to capacity");
  bench::Table table({"variant", "activations", "shifts", "records shifted",
                      "mean/insert", "max/insert"});
  for (const bool smart : {false, true}) {
    Control2::Options options;
    options.config.num_pages = 256;
    options.config.d = 4;
    options.config.D = 4 + 33;
    options.config.smart_placement = smart;
    std::unique_ptr<Control2> control =
        std::move(*Control2::Create(options));
    const Trace trace = AscendingInserts(control->MaxRecords());
    for (const Op& op : trace) {
      DSF_CHECK(control->Insert(op.record).ok());
    }
    DSF_CHECK(control->ValidateInvariants().ok());
    table.Row(smart ? "smart placement" : "paper placement",
              control->stats().activations, control->stats().shifts,
              control->stats().records_shifted,
              control->command_stats().MeanAccessesPerCommand(),
              control->command_stats().max_command_accesses);
  }
  table.Print();
}

}  // namespace
}  // namespace dsf

int main() {
  dsf::RunRollbackAblation();
  dsf::RunHysteresisAblation();
  dsf::RunPlacementAblation();
  dsf::bench::Note(
      "\nReading: the roll-back repairs cross-region interference within "
      "the same\ncommand; hysteresis damps flag flapping and its pointer "
      "resets; smart\nplacement trades paper fidelity for fewer "
      "activations on append-heavy loads.");
  return 0;
}
