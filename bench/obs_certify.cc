// E17: live bound certification — the deamortization claim demonstrated,
// not just asserted.
//
// Replays the crash-recovery fuzz workload shape (wide-stride initial
// load, an ascending burst into one block, then a uniform mixed tail;
// faults off, audit_every_command on) against the same (M, d, D)
// geometry under CONTROL 2 and CONTROL 1, each with a BoundCertifier and
// a CommandTracer attached. The certifier checks every point command
// against the Theorem-5.7 logical-access budget K*(4J+2); the tracer's
// kCommand spans yield the full per-command access series.
//
// Expected outcome, checked by this binary: CONTROL 2 finishes with ZERO
// violations — its per-command series stays flat under the envelope —
// while CONTROL 1's occasional whole-range redistributions breach the
// same envelope at least once. BENCH_obs.json records both series
// (max-per-command trajectory, violation counts, the budget) plus each
// run's metrics snapshot, and is the tracked perf artifact refreshed by
// run_all_experiments.sh --bench.
//
// Usage: obs_certify [--out=PATH]   (default "-": stdout)

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/dense_file.h"
#include "obs/bound_certifier.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/random.h"
#include "workload/workload.h"

namespace dsf {
namespace {

// One policy's replay outcome: the certifier's report plus the
// per-command logical-access series recovered from the command spans.
struct PolicyRun {
  std::string name;
  BoundReport report;
  std::vector<int64_t> per_command_accesses;
  // Running maximum over the series — the "max per command" trajectory
  // whose flatness (CONTROL 2) vs. spikes (CONTROL 1) is the artifact.
  std::vector<int64_t> max_series;
  std::string metrics_json;
};

PolicyRun RunPolicy(DenseFile::Policy policy, const std::string& name) {
  MetricsRegistry registry;
  CommandTracer tracer(/*capacity=*/8192);

  // The crash_recovery_fuzz_test geometry and workload shape, faults off.
  DenseFile::Options options;
  options.num_pages = 32;
  options.d = 4;
  options.D = 20;
  options.policy = policy;
  options.audit_every_command = true;
  options.metrics = &registry;
  options.tracer = &tracer;
  options.certify_bound = true;
  std::unique_ptr<DenseFile> file = std::move(*DenseFile::Create(options));

  // The crash_recovery_fuzz_test shape — wide-stride initial load,
  // ascending burst into one spot, uniform mixed tail — with the burst
  // scaled up until it matters: 112 ascending keys below every initial
  // key pile the whole burst into the low half of the address space.
  // CONTROL 1 answers with redistributions that climb the calibrator
  // (2, 4, 8, 16 pages...) and finally, when the half holds >= 116
  // records (g(1,1) = 7.2 records/page over 16 pages), a root
  // redistribution over all 32 pages — the amortized O(M) spike the
  // certifier must catch above the 54-access CONTROL 2 envelope.
  // CONTROL 2 absorbs the same stream within budget on every command.
  Rng rng(20260807);
  const std::vector<Record> initial = MakeAscendingRecords(8, 400, 400);
  DSF_CHECK(file->BulkLoad(initial).ok());
  Trace trace = AscendingInserts(112, 1, 1);
  const Trace tail = UniformMix(60, 0.35, 0.55, 2700, rng);
  trace.insert(trace.end(), tail.begin(), tail.end());

  for (const Op& op : trace) {
    switch (op.kind) {
      case Op::Kind::kInsert:
        IgnoreStatus(file->Insert(op.record));
        break;
      case Op::Kind::kDelete:
        IgnoreStatus(file->Delete(op.record.key));
        break;
      case Op::Kind::kGet:
        IgnoreStatus(file->Get(op.record.key));
        break;
      case Op::Kind::kScan: {
        std::vector<Record> out;
        IgnoreStatus(file->Scan(op.record.key, op.scan_hi, &out));
        break;
      }
    }
  }

  PolicyRun run;
  run.name = name;
  DSF_CHECK(file->bound_report() != nullptr);
  run.report = *file->bound_report();
  DSF_CHECK(tracer.dropped() == 0)
      << "trace ring too small for the command series";
  int64_t running_max = 0;
  for (const SpanEvent& event : tracer.Events()) {
    if (event.kind != SpanKind::kCommand) continue;
    const int64_t logical = event.io.TotalLogical();
    run.per_command_accesses.push_back(logical);
    running_max = std::max(running_max, logical);
    run.max_series.push_back(running_max);
  }
  run.metrics_json = ToJsonSnapshot(registry.Snapshot());
  return run;
}

void AppendSeries(std::ostream& os, const char* key,
                  const std::vector<int64_t>& series) {
  os << "      \"" << key << "\": [";
  for (size_t i = 0; i < series.size(); ++i) {
    if (i > 0) os << ", ";
    os << series[i];
  }
  os << "]";
}

void WriteJson(std::ostream& os, const std::vector<PolicyRun>& runs) {
  os << "{\n";
  os << "  \"benchmark\": \"obs_certify\",\n";
  os << "  \"geometry\": {\"num_pages\": 32, \"d\": 4, \"D\": 20},\n";
  os << "  \"workload\": \"crash_recovery_fuzz shape: 8 wide-stride "
        "initial, 112 ascending burst, 60 uniform mix\",\n";
  os << "  \"policies\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    const PolicyRun& run = runs[i];
    const BoundReport& r = run.report;
    os << "    {\n";
    os << "      \"policy\": \"" << run.name << "\",\n";
    os << "      \"budget\": " << r.budget << ",\n";
    os << "      \"J\": " << r.J << ",\n";
    os << "      \"block_size\": " << r.block_size << ",\n";
    os << "      \"commands_checked\": " << r.commands_checked << ",\n";
    os << "      \"commands_exempt\": " << r.commands_exempt << ",\n";
    os << "      \"max_accesses\": " << r.max_accesses << ",\n";
    os << "      \"violations\": " << r.violations.size() << ",\n";
    AppendSeries(os, "per_command_accesses", run.per_command_accesses);
    os << ",\n";
    AppendSeries(os, "max_per_command_series", run.max_series);
    os << ",\n";
    os << "      \"metrics\": " << run.metrics_json << "\n";
    os << "    }" << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

int Main(int argc, char** argv) {
  std::string out = "-";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out = arg.substr(6);
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return 1;
    }
  }

  bench::Section("E17: live worst-case-bound certification (M=32 d=4 D=20)");
  std::vector<PolicyRun> runs;
  runs.push_back(RunPolicy(DenseFile::Policy::kControl2, "control2"));
  runs.push_back(RunPolicy(DenseFile::Policy::kControl1, "control1"));

  bench::Table table({"policy", "budget", "J", "checked", "exempt",
                      "max/command", "violations"});
  for (const PolicyRun& run : runs) {
    table.Row(run.name, run.report.budget, run.report.J,
              run.report.commands_checked, run.report.commands_exempt,
              run.report.max_accesses,
              static_cast<int64_t>(run.report.violations.size()));
  }
  table.Print();

  // The deamortization claim, enforced: CONTROL 2 certified clean,
  // CONTROL 1 caught above the same envelope.
  const PolicyRun& c2 = runs[0];
  const PolicyRun& c1 = runs[1];
  DSF_CHECK(c2.report.ok())
      << "CONTROL 2 violated its own bound: " << c2.report.ToString();
  DSF_CHECK(!c1.report.ok())
      << "CONTROL 1 never breached the CONTROL 2 envelope — workload too "
         "gentle to demonstrate the deamortization gap";
  bench::Note("CONTROL 2: " + std::to_string(c2.report.commands_checked) +
              " commands certified <= budget " +
              std::to_string(c2.report.budget) + " (max " +
              std::to_string(c2.report.max_accesses) + ")");
  bench::Note("CONTROL 1: " + c1.report.violations.front().ToString());

  if (out == "-") {
    WriteJson(std::cout, runs);
  } else {
    std::ofstream f(out);
    DSF_CHECK(f.good()) << "cannot open " << out;
    WriteJson(f, runs);
    bench::Note("JSON written to " + out);
  }
  return 0;
}

}  // namespace
}  // namespace dsf

int main(int argc, char** argv) { return dsf::Main(argc, argv); }
