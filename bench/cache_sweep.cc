// Buffer-pool sweep: pool size x workload skew under device latency.
//
// Replays three single-client point-operation traces (Zipf-skewed,
// uniform, fully sequential) against a device-resident DenseFile at pool
// sizes 0 (direct to device), 1%, 5% and 20% of the file's pages, and
// reports replayed-trace throughput, hit rate and write amplification per
// configuration as JSON — the perf trajectory artifact tracked in
// BENCH_cache.json.
//
// The file is measured as a *device-resident* structure: every physical
// page access sleeps for --page_latency_us (default 25us, NVMe class).
// The pool converts the logical accesses the algorithms request into
// fewer physical transfers — read hits are served from frames, repeated
// writes combine at the tail of the dirty-order list — so throughput
// scales with the miss traffic, not the request traffic. Zipf ranks map
// to keys directly, making the hot set a contiguous low-key range whose
// pages fit in a small pool: the headline configuration (5% pool, Zipf
// reads/writes) targets >= 2x over the unpooled baseline. Uniform traffic
// shows the honest worst case (little locality to cache), sequential
// lookups the best (each page serves ~d consecutive gets).
//
// Usage: cache_sweep [--ops=N] [--num_pages=M] [--fill_percent=F]
//                    [--theta=T] [--page_latency_us=U] [--out=PATH]

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/dense_file.h"
#include "util/check.h"
#include "workload/workload.h"

namespace dsf {
namespace {

constexpr double kInsertFraction = 0.20;
constexpr double kDeleteFraction = 0.20;

struct Row {
  std::string workload;
  int64_t pool_frames = 0;
  double pool_percent = 0;
  double wall_seconds = 0;
  double ops_per_second = 0;
  double speedup_vs_nopool = 1.0;
  double hit_rate = 0;
  double write_amplification = 0;
  IoStats io;
  BufferPool::Stats cache;
};

Status Apply(DenseFile& file, const Op& op) {
  switch (op.kind) {
    case Op::Kind::kInsert:
      return file.Insert(op.record);
    case Op::Kind::kDelete:
      return file.Delete(op.record.key);
    case Op::Kind::kGet:
      return file.Get(op.record.key).status();
    case Op::Kind::kScan: {
      std::vector<Record> out;
      return file.Scan(op.record.key, op.scan_hi, &out);
    }
  }
  return Status::OK();
}

Row RunConfig(const std::string& workload, const Trace& trace,
              int64_t num_pages, int64_t pool_frames, int64_t fill_percent,
              int64_t page_latency_us) {
  DenseFile::Options options;
  options.num_pages = num_pages;
  options.d = 8;
  options.D = 36;  // same geometry as the sharding sweep (E14)
  options.cache_frames = pool_frames;
  StatusOr<std::unique_ptr<DenseFile>> created = DenseFile::Create(options);
  DSF_CHECK(created.ok()) << created.status();
  DenseFile& file = **created;

  // Warm start at fill_percent of capacity, approximately even over the
  // key space (key space = capacity, so Zipf rank r maps to key r + 1).
  const Key key_space = static_cast<Key>(file.capacity());
  std::vector<Record> initial;
  const int64_t skip = std::max<int64_t>(2, 100 / (100 - fill_percent));
  for (Key k = 1; k <= key_space; ++k) {
    if (static_cast<int64_t>(k % skip) != 0) initial.push_back(Record{k, k});
  }
  DSF_CHECK(file.BulkLoad(initial).ok());
  file.ResetIoStats();
  file.ResetCacheStats();
  // The device model applies to the measured traffic only, not the load.
  file.control().file().set_access_latency(
      std::chrono::microseconds(page_latency_us));

  const auto start = std::chrono::steady_clock::now();
  for (const Op& op : trace) {
    const Status s = Apply(file, op);
    DSF_CHECK(s.ok() || s.IsAlreadyExists() || s.IsNotFound()) << s;
  }
  const auto end = std::chrono::steady_clock::now();

  file.control().file().set_access_latency(std::chrono::nanoseconds(0));
  DSF_CHECK(file.ValidateInvariants().ok());

  Row row;
  row.workload = workload;
  row.pool_frames = pool_frames;
  row.pool_percent = 100.0 * static_cast<double>(pool_frames) /
                     static_cast<double>(num_pages);
  row.wall_seconds = std::chrono::duration<double>(end - start).count();
  row.ops_per_second =
      static_cast<double>(trace.size()) / row.wall_seconds;
  row.io = file.io_stats();
  row.cache = file.cache_stats();
  row.hit_rate =
      row.io.logical_reads == 0
          ? 0.0
          : 1.0 - static_cast<double>(row.io.page_reads) /
                      static_cast<double>(row.io.logical_reads);
  row.write_amplification =
      row.io.logical_writes == 0
          ? 0.0
          : static_cast<double>(row.io.page_writes) /
                static_cast<double>(row.io.logical_writes);
  return row;
}

void WriteJson(std::ostream& os, const std::vector<Row>& rows,
               int64_t num_pages, int64_t total_ops, int64_t fill_percent,
               double theta, int64_t page_latency_us) {
  os << "{\n";
  os << "  \"benchmark\": \"cache_sweep\",\n";
  os << "  \"num_pages\": " << num_pages << ",\n";
  os << "  \"total_ops\": " << total_ops << ",\n";
  os << "  \"fill_percent\": " << fill_percent << ",\n";
  os << "  \"zipf_theta\": " << theta << ",\n";
  os << "  \"page_latency_us\": " << page_latency_us << ",\n";
  os << "  \"workload_mix\": {\"insert\": " << kInsertFraction
     << ", \"delete\": " << kDeleteFraction << ", \"get\": "
     << 1.0 - kInsertFraction - kDeleteFraction << "},\n";
  os << "  \"configs\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    os << "    {\"workload\": \"" << r.workload << "\""
       << ", \"pool_frames\": " << r.pool_frames
       << ", \"pool_percent\": " << r.pool_percent
       << ", \"wall_seconds\": " << r.wall_seconds
       << ", \"ops_per_second\": " << r.ops_per_second
       << ", \"speedup_vs_nopool\": " << r.speedup_vs_nopool
       << ", \"hit_rate\": " << r.hit_rate
       << ", \"write_amplification\": " << r.write_amplification
       << ", \"logical_reads\": " << r.io.logical_reads
       << ", \"physical_reads\": " << r.io.page_reads
       << ", \"logical_writes\": " << r.io.logical_writes
       << ", \"physical_writes\": " << r.io.page_writes
       << ", \"seeks\": " << r.io.seeks
       << ", \"write_combines\": " << r.cache.write_combines
       << ", \"flush_runs\": " << r.cache.flush_runs
       << ", \"evictions\": " << r.cache.evictions << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

int Main(int argc, char** argv) {
  int64_t total_ops = 20000;
  int64_t num_pages = 4096;
  int64_t fill_percent = 80;
  double theta = 1.1;
  int64_t page_latency_us = 25;
  std::string out = "-";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--ops=", 0) == 0) {
      total_ops = std::stoll(arg.substr(6));
    } else if (arg.rfind("--num_pages=", 0) == 0) {
      num_pages = std::stoll(arg.substr(12));
    } else if (arg.rfind("--fill_percent=", 0) == 0) {
      fill_percent = std::stoll(arg.substr(15));
      DSF_CHECK(fill_percent >= 1 && fill_percent <= 99);
    } else if (arg.rfind("--theta=", 0) == 0) {
      theta = std::stod(arg.substr(8));
    } else if (arg.rfind("--page_latency_us=", 0) == 0) {
      page_latency_us = std::stoll(arg.substr(18));
      DSF_CHECK(page_latency_us >= 0);
    } else if (arg.rfind("--out=", 0) == 0) {
      out = arg.substr(6);
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return 1;
    }
  }

  const Key key_space = static_cast<Key>(num_pages) * 8;  // = capacity
  Rng zipf_rng(20260807);
  Rng uniform_rng(20260807);
  const std::vector<std::pair<std::string, Trace>> workloads = {
      {"zipf", ZipfMix(total_ops, kInsertFraction, kDeleteFraction,
                       key_space, theta, zipf_rng)},
      {"uniform", UniformMix(total_ops, kInsertFraction, kDeleteFraction,
                             key_space, uniform_rng)},
      {"sequential", SequentialGets(total_ops, key_space)},
  };
  // Pool sizes as a fraction of the file's pages.
  const std::vector<int64_t> pool_frames = {0, num_pages / 100,
                                            num_pages / 20, num_pages / 5};

  bench::Section("E16: buffer-pool size x workload skew (page latency " +
                 std::to_string(page_latency_us) + "us)");
  bench::Table table({"workload", "pool", "pool %", "wall s", "Kops/s",
                      "speedup", "hit rate", "write amp", "combines",
                      "flush runs"});
  std::vector<Row> rows;
  for (const auto& [name, trace] : workloads) {
    double base_ops_per_second = 0;
    for (const int64_t frames : pool_frames) {
      Row row = RunConfig(name, trace, num_pages, frames, fill_percent,
                          page_latency_us);
      if (frames == 0) base_ops_per_second = row.ops_per_second;
      row.speedup_vs_nopool = row.ops_per_second / base_ops_per_second;
      table.Row(row.workload, row.pool_frames, row.pool_percent,
                row.wall_seconds, row.ops_per_second * 1e-3,
                row.speedup_vs_nopool, row.hit_rate,
                row.write_amplification,
                row.cache.write_combines, row.cache.flush_runs);
      rows.push_back(std::move(row));
    }
  }
  table.Print();

  if (out == "-") {
    WriteJson(std::cout, rows, num_pages, total_ops, fill_percent, theta,
              page_latency_us);
  } else {
    std::ofstream f(out);
    DSF_CHECK(f.good()) << "cannot open " << out;
    WriteJson(f, rows, num_pages, total_ops, fill_percent, theta,
              page_latency_us);
    bench::Note("JSON written to " + out);
  }
  return 0;
}

}  // namespace
}  // namespace dsf

int main(int argc, char** argv) { return dsf::Main(argc, argv); }
