// CPU-time microbenchmarks (google-benchmark) for the core operations.
// These complement the page-access experiments E1-E9: the paper's cost
// model counts I/O, but a library user also cares that the in-memory
// bookkeeping (calibrator updates, SHIFT bookkeeping, searches) is cheap.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "baseline/btree.h"
#include "core/calibrator.h"
#include "core/control2.h"
#include "core/dense_file.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/page.h"
#include "storage/page_file.h"
#include "util/check.h"
#include "util/deadlock.h"
#include "workload/workload.h"

namespace dsf {
namespace {

DenseFile::Options FileOptions(int64_t num_pages) {
  DenseFile::Options options;
  options.num_pages = num_pages;
  options.d = 8;
  int64_t l = 1;
  while ((1ll << l) < num_pages) ++l;
  options.D = options.d + 4 * l + 1;
  return options;
}

// In-page key search at page size D (the innermost loop of every
// command). Page::Find runs the branchless half-interval LowerBoundRecord
// (storage/record.h): the interval-shrink step compiles to a conditional
// move, so random keys cause no branch mispredictions. The win over the
// std::lower_bound baseline below grows with D — at D >= 64 the
// mispredicted-branch cost of the classic search dominates.
void BM_PageSearch(benchmark::State& state) {
  const int64_t D = state.range(0);
  std::vector<Record> records;
  for (int64_t i = 0; i < D; ++i) {
    records.push_back(Record{static_cast<Key>(2 * i + 2), 0});
  }
  Rng rng(11);
  for (auto _ : state) {
    // Odd keys miss, even keys hit: both paths share the same search.
    const Key k = rng.Uniform(static_cast<uint64_t>(2 * D) + 2) + 1;
    benchmark::DoNotOptimize(
        LowerBoundRecord(records.data(), D, k));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PageSearch)->Arg(8)->Arg(16)->Arg(64)->Arg(128)->Arg(256);

// Baseline for BM_PageSearch: the classic branching lower_bound over the
// same records.
void BM_PageSearchStdLowerBound(benchmark::State& state) {
  const int64_t D = state.range(0);
  std::vector<Record> records;
  for (int64_t i = 0; i < D; ++i) {
    records.push_back(Record{static_cast<Key>(2 * i + 2), 0});
  }
  Rng rng(11);
  for (auto _ : state) {
    const Key k = rng.Uniform(static_cast<uint64_t>(2 * D) + 2) + 1;
    auto it = std::lower_bound(
        records.begin(), records.end(), k,
        [](const Record& r, Key key) { return r.key < key; });
    benchmark::DoNotOptimize(it);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PageSearchStdLowerBound)->Arg(8)->Arg(16)->Arg(64)->Arg(128)->Arg(256);

// Raw accounted page access. Arg 0: fast path (no fault policy, no
// latency) — the hot configuration every experiment without fault
// injection runs in, reduced to one predicted-not-taken branch by the
// precomputed slow-path flag. Arg 1: an installed (empty) FaultPolicy
// forces the slow path, showing what the hoist saves.
void BM_PageFileAccess(benchmark::State& state) {
  PageFile file(4096, 8);
  if (state.range(0) != 0) {
    file.set_fault_policy(std::make_shared<FaultPolicy>());
  }
  Rng rng(12);
  for (auto _ : state) {
    const Address a = static_cast<Address>(rng.Uniform(4096)) + 1;
    benchmark::DoNotOptimize(file.TryRead(a));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PageFileAccess)->Arg(0)->Arg(1);

// Insert/delete pairs at random keys against a half-full file.
void BM_DenseFileInsertDelete(benchmark::State& state) {
  const int64_t num_pages = state.range(0);
  std::unique_ptr<DenseFile> file =
      std::move(*DenseFile::Create(FileOptions(num_pages)));
  Rng rng(1);
  DSF_CHECK(
      file->BulkLoad(MakeAscendingRecords(file->capacity() / 2, 2, 2)).ok());
  for (auto _ : state) {
    const Key k = 2 * rng.Uniform(file->capacity()) + 1;  // odd: absent
    benchmark::DoNotOptimize(file->Insert(k, k));
    benchmark::DoNotOptimize(file->Delete(k));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_DenseFileInsertDelete)->Arg(256)->Arg(1024)->Arg(4096);

void BM_DenseFileGet(benchmark::State& state) {
  std::unique_ptr<DenseFile> file =
      std::move(*DenseFile::Create(FileOptions(1024)));
  DSF_CHECK(file->BulkLoad(MakeAscendingRecords(file->capacity())).ok());
  Rng rng(2);
  for (auto _ : state) {
    const Key k = rng.Uniform(file->capacity()) + 1;
    benchmark::DoNotOptimize(file->Get(k));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DenseFileGet);

void BM_DenseFileScan(benchmark::State& state) {
  const int64_t span = state.range(0);
  std::unique_ptr<DenseFile> file =
      std::move(*DenseFile::Create(FileOptions(1024)));
  DSF_CHECK(file->BulkLoad(MakeAscendingRecords(file->capacity())).ok());
  DSF_CHECK(span < file->capacity()) << "scan span exceeds file population";
  Rng rng(3);
  // Edge blocks may hold records outside [lo, hi]; the calibrator
  // reserve may overshoot by at most two blocks of slack.
  const size_t reserve_slack = 2 * static_cast<size_t>(FileOptions(1024).D);
  for (auto _ : state) {
    const Key lo = rng.Uniform(file->capacity() - span + 1) + 1;
    std::vector<Record> out;
    benchmark::DoNotOptimize(
        file->Scan(lo, lo + static_cast<Key>(span) - 1, &out));
    // The single calibrator-aggregate reserve must cover the whole
    // result: growth-by-doubling from empty would overshoot far more.
    DSF_CHECK(out.capacity() <= out.size() + reserve_slack);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * span);
}
BENCHMARK(BM_DenseFileScan)->Arg(100)->Arg(4000);

// The pre-sorted batch fast path against the general batch path. Both
// ingest the same absent odd keys; InsertBatch pays a defensive copy,
// sort, and duplicate validation that InsertBatchSorted skips.
void BM_InsertBatch(benchmark::State& state) {
  const int64_t batch = state.range(0);
  std::unique_ptr<DenseFile> file =
      std::move(*DenseFile::Create(FileOptions(4096)));
  DSF_CHECK(
      file->BulkLoad(MakeAscendingRecords(file->capacity() / 2, 2, 2)).ok());
  std::vector<Record> records;
  for (int64_t i = 0; i < batch; ++i) {
    records.push_back(
        Record{static_cast<Key>(2 * i + 1), static_cast<Value>(i)});
  }
  for (auto _ : state) {
    DSF_CHECK(file->InsertBatch(records).ok());
    state.PauseTiming();
    for (const Record& r : records) DSF_CHECK(file->Delete(r.key).ok());
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_InsertBatch)->Arg(64)->Arg(512);

void BM_InsertBatchSorted(benchmark::State& state) {
  const int64_t batch = state.range(0);
  std::unique_ptr<DenseFile> file =
      std::move(*DenseFile::Create(FileOptions(4096)));
  DSF_CHECK(
      file->BulkLoad(MakeAscendingRecords(file->capacity() / 2, 2, 2)).ok());
  std::vector<Record> records;
  for (int64_t i = 0; i < batch; ++i) {
    records.push_back(
        Record{static_cast<Key>(2 * i + 1), static_cast<Value>(i)});
  }
  for (auto _ : state) {
    DSF_CHECK(
        file->InsertBatchSorted(records.data(), records.data() + batch).ok());
    state.PauseTiming();
    for (const Record& r : records) DSF_CHECK(file->Delete(r.key).ok());
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_InsertBatchSorted)->Arg(64)->Arg(512);

void BM_BTreeInsertDelete(benchmark::State& state) {
  BTree::Options options;
  options.leaf_capacity = 41;
  options.internal_fanout = 32;
  std::unique_ptr<BTree> tree = std::move(*BTree::Create(options));
  DSF_CHECK(tree->BulkLoad(MakeAscendingRecords(100000, 2, 2)).ok());
  Rng rng(4);
  for (auto _ : state) {
    const Key k = 2 * rng.Uniform(100000) + 1;
    benchmark::DoNotOptimize(tree->Insert(Record{k, k}));
    benchmark::DoNotOptimize(tree->Delete(k));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_BTreeInsertDelete);

void BM_CalibratorSyncLeaf(benchmark::State& state) {
  Calibrator cal(state.range(0));
  Rng rng(5);
  for (auto _ : state) {
    const Address page = rng.Uniform(cal.num_pages()) + 1;
    cal.SyncLeaf(page, static_cast<int64_t>(rng.Uniform(16)), 1, 2);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CalibratorSyncLeaf)->Arg(1024)->Arg(65536);

// The BulkLoad/Compact refresh pattern: every leaf resynced in address
// order. Per-leaf SyncLeaf re-aggregates the full root path each time
// (O(M log M) total); the batched SyncLeaves below does one bottom-up
// pass (O(M)).
void BM_CalibratorSyncLeafLoop(benchmark::State& state) {
  Calibrator cal(state.range(0));
  for (auto _ : state) {
    for (Address p = 1; p <= cal.num_pages(); ++p) {
      cal.SyncLeaf(p, 4, static_cast<Key>(p) * 10,
                   static_cast<Key>(p) * 10 + 3);
    }
  }
  state.SetItemsProcessed(state.iterations() * cal.num_pages());
}
BENCHMARK(BM_CalibratorSyncLeafLoop)->Arg(1024)->Arg(65536);

void BM_CalibratorSyncLeaves(benchmark::State& state) {
  Calibrator cal(state.range(0));
  std::vector<Calibrator::LeafUpdate> updates(
      static_cast<size_t>(cal.num_pages()));
  for (Address p = 1; p <= cal.num_pages(); ++p) {
    updates[static_cast<size_t>(p - 1)] = {4, static_cast<Key>(p) * 10,
                                           static_cast<Key>(p) * 10 + 3};
  }
  for (auto _ : state) {
    cal.SyncLeaves(1, updates);
  }
  state.SetItemsProcessed(state.iterations() * cal.num_pages());
}
BENCHMARK(BM_CalibratorSyncLeaves)->Arg(1024)->Arg(65536);

void BM_CalibratorSearch(benchmark::State& state) {
  Calibrator cal(65536);
  Rng rng(6);
  for (Address p = 1; p <= cal.num_pages(); p += 2) {
    cal.SyncLeaf(p, 4, static_cast<Key>(p) * 10, static_cast<Key>(p) * 10 + 3);
  }
  for (auto _ : state) {
    const Key k = rng.Uniform(655360) + 1;
    benchmark::DoNotOptimize(cal.FirstNonEmptyPageWithMaxGE(k));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CalibratorSearch);

// The adversarial command: descending inserts keep the hotspot leaf in a
// warning state, so every command runs J real SHIFT cycles.
void BM_Control2WorstCaseCommand(benchmark::State& state) {
  Control2::Options options;
  options.config.num_pages = 1024;
  options.config.d = 8;
  options.config.D = 8 + 41;
  std::unique_ptr<Control2> control = std::move(*Control2::Create(options));
  Key next = 1ull << 40;
  for (auto _ : state) {
    if (control->size() >= control->MaxRecords()) {
      state.PauseTiming();
      std::unique_ptr<Control2> fresh =
          std::move(*Control2::Create(options));
      control.swap(fresh);
      next = 1ull << 40;
      state.ResumeTiming();
    }
    DSF_CHECK(control->Insert(Record{next--, 0}).ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Control2WorstCaseCommand);

// Observability overhead on the insert/delete hot path. Arg 0: null
// registry — the instrumentation must compile down to cached null-handle
// checks (the zero-overhead contract obs_test pins on IoStats). Arg 1:
// full instrumentation (registry + tracer + bound certifier), whose
// striped relaxed-atomic updates are gated at <5% throughput delta vs.
// Arg 0 (compare the two items_per_second series in BENCH_core.json).
void BM_MetricsOverhead(benchmark::State& state) {
  MetricsRegistry registry;
  CommandTracer tracer;
  DenseFile::Options options = FileOptions(1024);
  if (state.range(0) != 0) {
    options.metrics = &registry;
    options.tracer = &tracer;
    options.certify_bound = true;
  }
  std::unique_ptr<DenseFile> file = std::move(*DenseFile::Create(options));
  Rng rng(8);
  DSF_CHECK(
      file->BulkLoad(MakeAscendingRecords(file->capacity() / 2, 2, 2)).ok());
  for (auto _ : state) {
    const Key k = 2 * rng.Uniform(file->capacity()) + 1;  // odd: absent
    benchmark::DoNotOptimize(file->Insert(k, k));
    benchmark::DoNotOptimize(file->Delete(k));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_MetricsOverhead)->Arg(0)->Arg(1);

// The runtime lock-order detector's overhead gate (docs/ANALYSIS.md):
// Arg(0) runs the pooled+traced command path with detection off (one
// relaxed load per Lock/Unlock), Arg(1) with detection on, where every
// pool/metrics acquisition under the command's hold records an edge
// (cached thread-locally after the first sighting). CI compares the two
// items_per_second and fails above a 5% delta.
void BM_DeadlockDetectOverhead(benchmark::State& state) {
  MetricsRegistry registry;
  CommandTracer tracer;
  DenseFile::Options options = FileOptions(1024);
  options.metrics = &registry;
  options.tracer = &tracer;
  options.cache_frames = 8;  // nested shard -> pool acquisitions
  std::unique_ptr<DenseFile> file = std::move(*DenseFile::Create(options));
  Rng rng(8);
  DSF_CHECK(
      file->BulkLoad(MakeAscendingRecords(file->capacity() / 2, 2, 2)).ok());
  deadlock::Enable(state.range(0) != 0);
  for (auto _ : state) {
    const Key k = 2 * rng.Uniform(file->capacity()) + 1;  // odd: absent
    benchmark::DoNotOptimize(file->Insert(k, k));
    benchmark::DoNotOptimize(file->Delete(k));
  }
  if (state.range(0) != 0) {
    const deadlock::LockOrderReport report = deadlock::Report();
    DSF_CHECK(report.ok());
    deadlock::Enable(false);
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_DeadlockDetectOverhead)->Arg(0)->Arg(1);

void BM_LocalShiftStationaryChurn(benchmark::State& state) {
  DenseFile::Options options = FileOptions(1024);
  options.policy = DenseFile::Policy::kLocalShift;
  std::unique_ptr<DenseFile> file =
      std::move(*DenseFile::Create(options));
  DSF_CHECK(
      file->BulkLoad(MakeAscendingRecords(file->capacity() / 2, 2, 2)).ok());
  Rng rng(7);
  for (auto _ : state) {
    const Key k = 2 * rng.Uniform(file->capacity()) + 1;
    benchmark::DoNotOptimize(file->Insert(k, k));
    benchmark::DoNotOptimize(file->Delete(k));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_LocalShiftStationaryChurn);

void BM_CursorFullWalk(benchmark::State& state) {
  std::unique_ptr<DenseFile> file =
      std::move(*DenseFile::Create(FileOptions(1024)));
  DSF_CHECK(file->BulkLoad(MakeAscendingRecords(file->capacity())).ok());
  for (auto _ : state) {
    int64_t seen = 0;
    for (Cursor cur = file->NewCursor(); cur.Valid(); cur.Next()) {
      benchmark::DoNotOptimize(cur.record());
      ++seen;
    }
    DSF_CHECK(seen == file->size());
  }
  state.SetItemsProcessed(state.iterations() * file->size());
}
BENCHMARK(BM_CursorFullWalk);

// Full-file reorganization: reads every record and rewrites every block
// at uniform density. Sensitive to per-block/per-page allocation churn in
// the write path.
void BM_Compact(benchmark::State& state) {
  const int64_t num_pages = state.range(0);
  std::unique_ptr<DenseFile> file =
      std::move(*DenseFile::Create(FileOptions(num_pages)));
  DSF_CHECK(
      file->BulkLoad(MakeAscendingRecords(file->capacity() / 2, 2, 2)).ok());
  for (auto _ : state) {
    DSF_CHECK(file->Compact().ok());
  }
  state.SetItemsProcessed(state.iterations() * file->size());
}
BENCHMARK(BM_Compact)->Arg(1024)->Arg(4096);

void BM_DeleteRangeTenth(benchmark::State& state) {
  std::unique_ptr<DenseFile> file =
      std::move(*DenseFile::Create(FileOptions(1024)));
  const std::vector<Record> records =
      MakeAscendingRecords(file->capacity());
  const int64_t slice = file->capacity() / 10;
  Key lo = 1;
  for (auto _ : state) {
    state.PauseTiming();
    DSF_CHECK(file->BulkLoad(records).ok());
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        file->DeleteRange(lo, lo + static_cast<Key>(slice) - 1));
  }
  state.SetItemsProcessed(state.iterations() * slice);
}
BENCHMARK(BM_DeleteRangeTenth);

}  // namespace
}  // namespace dsf

BENCHMARK_MAIN();
