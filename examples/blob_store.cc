// Blob store: variable-size records in a dense sequential file.
//
// A document store keeps compressed articles keyed by id; sizes vary from
// 1 to 8 "units" (think KB). The example runs the same ingest through the
// amortized maintainer (VarFile, [BCW85]'s setting) and the worst-case
// generalization (VarControl2), showing identical contents but very
// different tail behavior — the variable-size analogue of the
// account_ledger example.
//
//   ./build/examples/blob_store

#include <algorithm>
#include <iostream>
#include <memory>
#include <vector>

#include "util/random.h"
#include "varsize/var_control2.h"
#include "varsize/var_file.h"

namespace {

constexpr int64_t kPages = 512;  // M
constexpr int64_t kDLow = 32;    // units per page, floor
constexpr int64_t kMaxSize = 8;  // largest article

// Articles arrive in bursts per topic: consecutive ids from one topic
// land in one key region — the hotspot pattern that separates the two
// maintainers.
std::vector<dsf::VarRecord> TopicBurst(dsf::Key topic_base, int64_t n,
                                       dsf::Rng& rng) {
  std::vector<dsf::VarRecord> burst;
  for (int64_t i = 0; i < n; ++i) {
    burst.push_back(dsf::VarRecord{
        topic_base + static_cast<dsf::Key>(i),
        static_cast<int64_t>(rng.Uniform(kMaxSize)) + 1,
        topic_base});
  }
  return burst;
}

template <typename File>
void Ingest(File& file, const char* name) {
  dsf::Rng rng(5);
  int64_t stored = 0;
  int64_t worst = 0;
  int64_t total_accesses = 0;
  for (int topic = 0; topic < 40; ++topic) {
    const dsf::Key base = (static_cast<dsf::Key>(topic) + 1) << 20;
    for (const dsf::VarRecord& r : TopicBurst(base, 100, rng)) {
      const int64_t before = file.stats().TotalAccesses();
      const dsf::Status s = file.Insert(r);
      if (s.IsCapacityExceeded()) break;
      if (!s.ok()) {
        std::cerr << "insert failed: " << s << "\n";
        std::exit(1);
      }
      const int64_t cost = file.stats().TotalAccesses() - before;
      worst = std::max(worst, cost);
      total_accesses += cost;
      ++stored;
    }
  }
  std::printf("%-12s stored %5lld articles (%lld units), mean %.2f, "
              "worst %lld page accesses/insert\n",
              name, static_cast<long long>(stored),
              static_cast<long long>(file.total_units()),
              static_cast<double>(total_accesses) /
                  static_cast<double>(stored),
              static_cast<long long>(worst));
  if (!file.ValidateInvariants().ok()) {
    std::cerr << "invariants violated!\n";
    std::exit(1);
  }
}

}  // namespace

int main() {
  std::cout << "blob store: 40 topic bursts of 100 variable-size articles "
               "(1..8 units)\n\n";

  dsf::VarFile::Options amortized;
  amortized.num_pages = kPages;
  amortized.d = kDLow;
  amortized.D = kDLow + (2 + kMaxSize) * 9 + 9;  // widened gap, L = 9
  amortized.max_record_size = kMaxSize;
  auto var_file = std::move(*dsf::VarFile::Create(amortized));
  Ingest(*var_file, "amortized");

  dsf::VarControl2::Options worst_case;
  worst_case.num_pages = kPages;
  worst_case.d = kDLow;
  worst_case.D = kDLow + 3 * kMaxSize * 9 + 9;  // (D-d) > 3*S*L
  worst_case.max_record_size = kMaxSize;
  auto var_c2 = std::move(*dsf::VarControl2::Create(worst_case));
  Ingest(*var_c2, "worst-case");

  // Both stores answer the same queries.
  std::vector<dsf::VarRecord> a;
  std::vector<dsf::VarRecord> b;
  const dsf::Key lo = 5u << 20;
  const dsf::Key hi = lo + 50;
  if (!var_file->Scan(lo, hi, &a).ok() || !var_c2->Scan(lo, hi, &b).ok()) {
    return 1;
  }
  std::cout << "\ntopic-5 window: " << a.size() << " articles from each "
            << (a == b ? "(identical)" : "(DIVERGED!)") << "\n";
  std::cout << "\nThe worst-case maintainer pins its tail at ~4(J+1)+2 "
               "accesses; the\namortized one occasionally redistributes "
               "hundreds of pages mid-burst.\n";
  return a == b ? 0 : 1;
}
