// Time-series archive: the stream-retrieval workload that motivates dense
// sequential files.
//
// A metering system appends timestamped readings (mostly ascending keys,
// with some late arrivals) and periodically runs windowed batch queries
// ("all readings from the last hour"). The example maintains the same
// data in a dense file and a B+-tree and reports, for each batch query,
// the simulated disk latency under a 1986-style disk — demonstrating the
// paper's claim that sequential placement wins when streams of
// consecutive keys are read.
//
//   ./build/examples/time_series_archive

#include <iostream>
#include <memory>

#include "baseline/btree.h"
#include "core/dense_file.h"
#include "storage/disk_model.h"
#include "util/random.h"

namespace {

constexpr int64_t kReadings = 40000;
constexpr dsf::Key kTickMs = 250;  // one reading every 250 ms

}  // namespace

int main() {
  dsf::DenseFile::Options options;
  options.num_pages = 1024;
  options.d = 40;       // capacity 40960 readings, ~96% full at the end
  options.D = 40 + 37;  // gap 37 > 3*ceil(log 1024) = 30
  std::unique_ptr<dsf::DenseFile> archive =
      std::move(*dsf::DenseFile::Create(options));

  dsf::BTree::Options btree_options;
  btree_options.leaf_capacity = 64;
  btree_options.internal_fanout = 64;
  std::unique_ptr<dsf::BTree> btree =
      std::move(*dsf::BTree::Create(btree_options));

  // Ingest: 64 sensors sample in lock-step but upload sensor-by-sensor in
  // batches (each sensor flushes its buffer for the whole batch window at
  // once). Timestamps therefore interleave across the key space within
  // every batch — the arrival order any real collector sees — and the
  // B+-tree's leaves for each window get built out of order.
  dsf::Rng rng(11);
  constexpr int64_t kSensors = 64;
  constexpr int64_t kPerFlush = 64;  // readings per sensor per batch
  constexpr int64_t kBatch = kSensors * kPerFlush;
  int64_t ingested = 0;
  for (int64_t batch = 0; batch * kBatch < kReadings; ++batch) {
    const dsf::Key base = static_cast<dsf::Key>(batch) * kBatch * kTickMs;
    for (int64_t sensor = 0; sensor < kSensors; ++sensor) {
      for (int64_t k = 0; k < kPerFlush; ++k) {
        const dsf::Key ts =
            base + (static_cast<dsf::Key>(k) * kSensors +
                    static_cast<dsf::Key>(sensor) + 1) *
                       kTickMs;
        const dsf::Value reading = rng.Uniform(1000);
        if (archive->Insert(ts, reading).ok() &&
            btree->Insert(dsf::Record{ts, reading}).ok()) {
          ++ingested;
        }
      }
    }
  }
  std::cout << "ingested " << ingested << " readings\n";
  std::cout << "dense file worst ingest command: "
            << archive->command_stats().max_command_accesses
            << " page accesses (mean "
            << archive->command_stats().MeanAccessesPerCommand() << ")\n\n";

  // Batch windows: "give me the last W minutes of readings", W growing.
  const dsf::DiskModel disk{30.0, 1.0};
  std::cout << "window      records   dense ms   btree ms   speedup\n";
  const dsf::Key end = kReadings * kTickMs;
  for (const dsf::Key minutes : {1ull, 10ull, 60ull, 160ull}) {
    const dsf::Key window = minutes * 60 * 1000;
    const dsf::Key lo = window >= end ? 1 : end - window;

    std::vector<dsf::Record> dense_out;
    archive->ResetIoStats();
    if (!archive->Scan(lo, end, &dense_out).ok()) return 1;
    const double dense_ms = disk.LatencyMs(archive->io_stats());

    std::vector<dsf::Record> btree_out;
    btree->ResetStats();
    if (!btree->Scan(lo, end, &btree_out).ok()) return 1;
    const double btree_ms = disk.LatencyMs(btree->stats());

    if (dense_out.size() != btree_out.size()) {
      std::cerr << "scan results diverge!\n";
      return 1;
    }
    std::printf("%4llu min   %7zu   %8.1f   %8.1f   %6.2fx\n",
                static_cast<unsigned long long>(minutes), dense_out.size(),
                dense_ms, btree_ms, btree_ms / dense_ms);
  }

  std::cout << "\nThe dense file reads each window as one sequential run "
               "of pages; the\nB+-tree hops between scattered leaves, "
               "paying a seek almost every page.\n";
  return archive->ValidateInvariants().ok() ? 0 : 1;
}
