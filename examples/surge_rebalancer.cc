// Surge rebalancer: watching CONTROL 2 absorb an insertion surge.
//
// A mail spool keyed by (sender, sequence) suddenly receives a burst of
// messages from one sender — thousands of inserts into a narrow key
// range. The example prints a page-occupancy histogram of the file before
// the surge, right after it, and again after a cool-down of unrelated
// traffic, showing how the evolutionary SHIFT process spreads the spike
// back out while every single command stays within its worst-case page
// budget. Also demonstrates macro-block mode for tightly packed files.
//
//   ./build/examples/surge_rebalancer

#include <iostream>
#include <memory>
#include <string>

#include "core/control2.h"
#include "core/dense_file.h"
#include "util/random.h"
#include "workload/workload.h"

namespace {

// A coarse histogram: one character per group of pages (.:+*#@ by fill).
std::string OccupancySketch(const dsf::DenseFile& file) {
  const dsf::Calibrator& cal = file.control().calibrator();
  const int64_t blocks = file.control().num_blocks();
  const int64_t groups = 64;
  std::string sketch;
  for (int64_t g = 0; g < groups; ++g) {
    const int64_t lo = g * blocks / groups + 1;
    const int64_t hi = (g + 1) * blocks / groups;
    int64_t count = 0;
    int64_t capacity = 0;
    for (int64_t b = lo; b <= hi; ++b) {
      count += cal.Count(cal.LeafOf(b));
      // Normalize by d, the density floor: '@' marks a region at or above
      // the file-wide average a full file would have.
      capacity += file.block_size() * 8;
    }
    const double fill =
        capacity == 0 ? 0 : static_cast<double>(count) /
                                static_cast<double>(capacity);
    const char* levels = " .:+*#@";
    const int idx = std::min(6, static_cast<int>(fill * 7));
    sketch += levels[idx];
  }
  return sketch;
}

}  // namespace

int main() {
  dsf::DenseFile::Options options;
  options.num_pages = 1024;
  options.d = 8;
  options.D = 49;  // gap 41 > 30
  std::unique_ptr<dsf::DenseFile> spool =
      std::move(*dsf::DenseFile::Create(options));

  // Steady state: 4096 messages spread over the sender space.
  dsf::Rng rng(3);
  std::vector<dsf::Record> base;
  for (const dsf::Record& r :
       dsf::MakeUniformRecords(4096, 1u << 22, rng)) {
    base.push_back(dsf::Record{r.key * 2, r.key});
  }
  if (!spool->BulkLoad(base).ok()) return 1;
  std::cout << "before surge  [" << OccupancySketch(*spool) << "]\n";

  // The surge: 3000 messages from one sender, keys in a narrow band.
  const dsf::Key band_lo = (1u << 21);
  dsf::Trace surge = dsf::HotspotSurge(3000, band_lo, band_lo + (1u << 16),
                                       rng);
  for (dsf::Op& op : surge) op.record.key = op.record.key * 2 + 1;  // odd
  int64_t worst = 0;
  for (const dsf::Op& op : surge) {
    if (!spool->Insert(op.record).ok()) return 1;
    worst = std::max(worst, spool->command_stats().last_command_accesses);
  }
  std::cout << "after surge   [" << OccupancySketch(*spool) << "]\n";

  // Cool-down: ordinary scattered traffic; the warning machinery keeps
  // smoothing as a side effect of each command's J cycles.
  for (int64_t i = 0; i < 4000; ++i) {
    const dsf::Key k = (rng.Uniform(1u << 22) * 2 + 1) | (1u << 23);
    (void)spool->Insert(k, 0);
    if (i % 2 == 0) (void)spool->Delete(k);
  }
  std::cout << "after cooldown[" << OccupancySketch(*spool) << "]\n\n";

  const auto& control = static_cast<const dsf::Control2&>(spool->control());
  std::cout << "worst command during surge: " << worst
            << " page accesses (J = " << control.J()
            << ", bound 4(J+1)+2 = " << 4 * (control.J() + 1) + 2 << ")\n";
  std::cout << "records shifted in total:   "
            << control.stats().records_shifted << "\n";
  std::cout << "invariants: " << spool->ValidateInvariants() << "\n";

  // The same file squeezed to a 1-record gap still works via Theorem
  // 5.7's macro-blocks, picked automatically.
  dsf::DenseFile::Options tight;
  tight.num_pages = 1024;
  tight.d = 8;
  tight.D = 9;
  std::unique_ptr<dsf::DenseFile> packed =
      std::move(*dsf::DenseFile::Create(tight));
  std::cout << "\ntight file (d=8, D=9): auto macro-block K = "
            << packed->block_size() << " (Theorem 5.7)\n";
  for (dsf::Key k = 1; k <= 2000; ++k) {
    if (!packed->Insert(k, k).ok()) return 1;
  }
  std::cout << "inserted 2000 records; invariants: "
            << packed->ValidateInvariants() << "\n";
  return 0;
}
