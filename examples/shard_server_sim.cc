// Shard server simulation: a key-range-sharded dense file serving
// concurrent clients.
//
// A storage node keeps one big ordered record file, split into S
// key-range shards (one DenseFile each). This example walks through the
// operational story end to end:
//
//   1. The incoming dataset is *skewed* — most keys crowd a low band —
//      so uniform splitters would overload the first shards. Splitters
//      are learned from a sample (equi-depth quantiles) instead, and the
//      example prints the per-shard record counts both ways.
//   2. Four clients then drive the learned-splitter file concurrently
//      with a mixed insert/delete/get/scan stream, each client serving
//      its own key partition (the usual sharded-system client shape).
//   3. The run ends with per-shard load and I/O counters and the exact
//      aggregate — per-shard trackers are single-writer under the shard
//      mutex, so the summation loses nothing — plus the invariant sweep
//      every shard must pass. The traffic is uniform while the data is
//      skewed, so the wide sparse shards absorb net insert growth until
//      they reach N = d*M and reject further inserts cleanly
//      (CapacityExceeded) — watch the final per-shard counts pin at
//      4096 while the hot shards stay in steady state.
//
//   ./build/examples/shard_server_sim

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "shard/sharded_dense_file.h"
#include "util/check.h"
#include "util/random.h"
#include "workload/parallel_replayer.h"
#include "workload/workload.h"

namespace {

constexpr int kShards = 8;
constexpr int kClients = 4;
constexpr dsf::Key kKeySpace = 1 << 20;

// Skewed dataset: ~70% of records in the lowest 1/16th of the key
// space, the rest spread over the remainder.
std::vector<dsf::Record> MakeSkewedRecords(int64_t n, dsf::Rng& rng) {
  std::vector<dsf::Record> records;
  records.reserve(static_cast<size_t>(n));
  while (static_cast<int64_t>(records.size()) < n) {
    const bool hot = rng.NextDouble() < 0.7;
    const dsf::Key k = hot ? 1 + rng.Uniform(kKeySpace / 16)
                           : 1 + rng.Uniform(kKeySpace);
    records.push_back(dsf::Record{k, k});
  }
  std::sort(records.begin(), records.end(),
            [](const dsf::Record& a, const dsf::Record& b) {
              return a.key < b.key;
            });
  records.erase(std::unique(records.begin(), records.end(),
                            [](const dsf::Record& a, const dsf::Record& b) {
                              return a.key == b.key;
                            }),
                records.end());
  return records;
}

std::unique_ptr<dsf::ShardedDenseFile> MakeServer(
    const std::vector<dsf::Key>& splitters) {
  dsf::ShardedDenseFile::Options options;
  options.num_shards = kShards;
  options.shard.num_pages = 512;
  options.shard.d = 8;
  options.shard.D = 36;  // gap 28 > 3*ceil(log 512) = 27: plain pages
  options.splitters = splitters;
  options.key_space = kKeySpace;
  return std::move(*dsf::ShardedDenseFile::Create(options));
}

void PrintShardSizes(const char* label, dsf::ShardedDenseFile& server) {
  std::printf("%-18s", label);
  for (int s = 0; s < server.num_shards(); ++s) {
    std::printf(" %6lld", static_cast<long long>(server.shard_size(s)));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  dsf::Rng rng(20260807);
  const std::vector<dsf::Record> dataset = MakeSkewedRecords(24000, rng);
  std::printf("dataset: %lld records, 70%% inside the lowest 1/16th of "
              "the key space\n\n",
              static_cast<long long>(dataset.size()));

  // --- 1. Uniform vs learned splitters on the skewed dataset ---------
  std::unique_ptr<dsf::ShardedDenseFile> uniform = MakeServer({});
  const dsf::Status uniform_load = uniform->BulkLoad(dataset);
  std::printf("uniform splitters:  BulkLoad %s\n",
              uniform_load.ok() ? "ok" : uniform_load.ToString().c_str());
  if (uniform_load.ok()) PrintShardSizes("  records/shard", *uniform);

  const std::vector<dsf::Key> learned =
      dsf::ShardedDenseFile::LearnSplitters(dataset, kShards);
  std::unique_ptr<dsf::ShardedDenseFile> server = MakeServer(learned);
  DSF_CHECK(server->BulkLoad(dataset).ok());
  std::printf("learned splitters:  BulkLoad ok (equi-depth quantiles)\n");
  PrintShardSizes("  records/shard", *server);

  // --- 2. Concurrent mixed traffic over the learned-splitter file ----
  server->ResetStats();
  const std::vector<dsf::Trace> traces =
      dsf::ParallelReplayer::DisjointRangeMixes(
          kClients, /*ops_per_thread=*/6000, /*insert_fraction=*/0.35,
          /*delete_fraction=*/0.30, /*scan_fraction=*/0.05, kKeySpace,
          /*scan_span=*/256, /*seed=*/7);
  dsf::ParallelReplayer replayer({kClients});
  const dsf::ReplayResult result = replayer.Replay(*server, traces);
  DSF_CHECK(result.ok()) << result.first_unexpected_error.ToString();
  const dsf::ReplayThreadStats agg = result.Aggregate();

  std::printf("\n%d clients x 6000 ops (35/30/30/5 ins/del/get/scan): "
              "%.2f s wall, %.0f ops/s\n",
              kClients, result.wall_seconds, result.OpsPerSecond());
  std::printf("applied: %lld inserts+deletes, %lld gets, %lld scans "
              "(%lld records), %lld rejected\n",
              static_cast<long long>(agg.inserts + agg.deletes),
              static_cast<long long>(agg.gets),
              static_cast<long long>(agg.scans),
              static_cast<long long>(agg.scan_records),
              static_cast<long long>(agg.rejected));

  // --- 3. Per-shard accounting and the invariant sweep ---------------
  PrintShardSizes("final records", *server);
  std::printf("%-18s", "page accesses");
  for (int s = 0; s < server->num_shards(); ++s) {
    const dsf::IoStats io = server->shard_io_stats(s);
    std::printf(" %6lld", static_cast<long long>(io.page_reads +
                                                 io.page_writes));
  }
  // Keep the two sides of the I/O split on their own lines: logical
  // accesses are the algorithm's cost (the paper's metric), physical
  // counters are what reached the simulated devices — dividing logical
  // ops by physical seeks would mix incompatible units.
  std::printf("\nlogical:  %.2f accesses/op (%lld reads + %lld writes)\n",
              result.LogicalAccessesPerOp(),
              static_cast<long long>(result.io.logical_reads),
              static_cast<long long>(result.io.logical_writes));
  std::printf("physical: %.2f accesses/op (%lld reads + %lld writes, "
              "%lld seeks); worst command %lld accesses\n",
              result.PhysicalAccessesPerOp(),
              static_cast<long long>(result.io.page_reads),
              static_cast<long long>(result.io.page_writes),
              static_cast<long long>(result.io.seeks),
              static_cast<long long>(
                  server->command_stats().max_command_accesses));

  const dsf::Status invariants = server->ValidateInvariants();
  std::printf("ValidateInvariants: %s\n",
              invariants.ok() ? "ok on every shard" : "FAILED");
  return invariants.ok() ? 0 : 1;
}
