// trace_runner: replay an operation trace file against a chosen policy
// and report cost statistics — the repository's workbench for ad-hoc
// experiments and for replaying saved fuzz regressions.
//
// Usage:
//   trace_runner [trace_file] [control2|control1|localshift] [M d D J]
//
// With no arguments it generates, saves and replays a demo trace so the
// binary is self-contained for `for b in examples/*; do $b; done` runs.
// Trace format (see src/workload/trace.h): one op per line —
//   I <key> <value> | D <key> | G <key> | S <lo> <hi>

#include <iostream>
#include <memory>
#include <string>

#include "core/dense_file.h"
#include "core/snapshot.h"
#include "util/random.h"
#include "workload/trace.h"
#include "workload/workload.h"

namespace {

dsf::StatusOr<dsf::DenseFile::Policy> ParsePolicy(const std::string& name) {
  if (name == "control2") return dsf::DenseFile::Policy::kControl2;
  if (name == "control1") return dsf::DenseFile::Policy::kControl1;
  if (name == "localshift") return dsf::DenseFile::Policy::kLocalShift;
  return dsf::Status::InvalidArgument("unknown policy: " + name);
}

int Run(const std::string& trace_path, const std::string& policy_name,
        const dsf::DenseFile::Options& base_options) {
  dsf::StatusOr<dsf::Trace> trace = dsf::ReadTraceFile(trace_path);
  if (!trace.ok()) {
    std::cerr << "cannot read trace: " << trace.status() << "\n";
    return 1;
  }
  dsf::StatusOr<dsf::DenseFile::Policy> policy = ParsePolicy(policy_name);
  if (!policy.ok()) {
    std::cerr << policy.status() << "\n";
    return 1;
  }
  dsf::DenseFile::Options options = base_options;
  options.policy = *policy;
  auto file_or = dsf::DenseFile::Create(options);
  if (!file_or.ok()) {
    std::cerr << "create failed: " << file_or.status() << "\n";
    return 1;
  }
  std::unique_ptr<dsf::DenseFile> file = std::move(*file_or);

  int64_t ok = 0;
  int64_t benign = 0;  // duplicate inserts, missing deletes/gets
  int64_t scanned = 0;
  for (const dsf::Op& op : *trace) {
    dsf::Status s;
    switch (op.kind) {
      case dsf::Op::Kind::kInsert:
        s = file->Insert(op.record);
        break;
      case dsf::Op::Kind::kDelete:
        s = file->Delete(op.record.key);
        break;
      case dsf::Op::Kind::kGet:
        s = file->Get(op.record.key).status();
        break;
      case dsf::Op::Kind::kScan: {
        std::vector<dsf::Record> out;
        s = file->Scan(op.record.key, op.scan_hi, &out);
        scanned += static_cast<int64_t>(out.size());
        break;
      }
    }
    if (s.ok()) {
      ++ok;
    } else if (s.IsAlreadyExists() || s.IsNotFound() ||
               s.IsCapacityExceeded()) {
      ++benign;
    } else {
      std::cerr << "trace op failed hard: " << s << "\n";
      return 1;
    }
  }

  std::cout << "policy " << file->PolicyName() << ": " << trace->size()
            << " ops (" << ok << " ok, " << benign
            << " benign rejections), " << scanned << " records scanned\n";
  std::cout << "  population " << file->size() << "/" << file->capacity()
            << ", packing " << file->ScanEfficiency() << " records/page\n";
  std::cout << "  I/O " << file->io_stats().ToString() << "\n";
  std::cout << "  per command: mean "
            << file->command_stats().MeanAccessesPerCommand() << ", worst "
            << file->command_stats().max_command_accesses
            << " page accesses\n";
  const dsf::Status invariants = file->ValidateInvariants();
  std::cout << "  invariants: " << invariants << "\n";
  return invariants.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  dsf::DenseFile::Options options;
  options.num_pages = 256;
  options.d = 8;
  options.D = 8 + 33;

  if (argc >= 3) {
    if (argc >= 7) {
      options.num_pages = std::stoll(argv[3]);
      options.d = std::stoll(argv[4]);
      options.D = std::stoll(argv[5]);
      options.J = std::stoll(argv[6]);
    }
    return Run(argv[1], argv[2], options);
  }

  // Demo mode: synthesize a mixed trace, save it, replay on every policy.
  dsf::Rng rng(20260707);
  dsf::Trace demo = dsf::UniformMix(4000, 0.5, 0.3, 1500, rng);
  dsf::Trace surge = dsf::HotspotSurge(300, 5000, 6000, rng);
  demo.insert(demo.end(), surge.begin(), surge.end());
  demo.push_back(dsf::Op{dsf::Op::Kind::kScan, dsf::Record{1, 0}, 10000});
  const std::string path = "/tmp/dsf_demo_trace.txt";
  if (!dsf::WriteTraceFile(demo, path).ok()) return 1;
  std::cout << "demo trace: " << demo.size() << " ops -> " << path
            << "\n\n";
  for (const char* policy : {"control2", "control1", "localshift"}) {
    if (const int rc = Run(path, policy, options); rc != 0) return rc;
    std::cout << "\n";
  }
  return 0;
}
