// dsf_shell: a tiny interactive console for exploring a dense file.
//
//   ./build/examples/dsf_shell [M d D]
//
// Commands (one per line on stdin):
//   ins <key> [value]    insert a record
//   del <key>            delete a record
//   get <key>            point lookup
//   scan <lo> <hi>       stream retrieval
//   fill <n>             insert n random records
//   viz                  page-occupancy sketch + warning states
//   stats                I/O and command statistics
//   check                run the full invariant battery
//   compact              reorganize to uniform density
//   save <path>          write a snapshot
//   help                 this text
//   quit                 exit
//
// Piping a script works too:  echo "fill 500
// viz" | ./build/examples/dsf_shell

#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "core/control2.h"
#include "core/dense_file.h"
#include "core/snapshot.h"
#include "util/random.h"

namespace {

void PrintHelp() {
  std::cout << "commands: ins del get scan fill viz stats check compact "
               "save help quit\n";
}

// One character per page group: ' .:+*#@' by occupancy against d.
void Visualize(dsf::DenseFile& file) {
  const dsf::Calibrator& cal = file.control().calibrator();
  const int64_t blocks = file.control().num_blocks();
  const int64_t groups = std::min<int64_t>(64, blocks);
  std::string occupancy;
  std::string warnings;
  const dsf::Control2* c2 =
      file.PolicyName() == "CONTROL2"
          ? static_cast<const dsf::Control2*>(&file.control())
          : nullptr;
  for (int64_t g = 0; g < groups; ++g) {
    const int64_t lo = g * blocks / groups + 1;
    const int64_t hi = (g + 1) * blocks / groups;
    int64_t count = 0;
    bool warn = false;
    for (int64_t b = lo; b <= hi; ++b) {
      const int leaf = cal.LeafOf(b);
      count += cal.Count(leaf);
      if (c2 != nullptr) warn |= c2->warning(leaf);
    }
    const double fill =
        static_cast<double>(count) /
        (static_cast<double>(hi - lo + 1) *
         static_cast<double>(file.capacity()) /
         static_cast<double>(blocks));
    const char* levels = " .:+*#@";
    occupancy += levels[std::min<int64_t>(6, static_cast<int64_t>(fill * 7))];
    warnings += warn ? '!' : ' ';
  }
  std::cout << "occupancy [" << occupancy << "]\n";
  if (c2 != nullptr) {
    std::cout << "warnings  [" << warnings << "]  (leaf level)\n";
  }
  std::cout << "records " << file.size() << "/" << file.capacity()
            << ", packing " << file.ScanEfficiency() << " per page\n";
}

}  // namespace

int main(int argc, char** argv) {
  dsf::DenseFile::Options options;
  options.num_pages = argc > 3 ? std::stoll(argv[1]) : 256;
  options.d = argc > 3 ? std::stoll(argv[2]) : 8;
  options.D = argc > 3 ? std::stoll(argv[3]) : 8 + 33;
  auto file_or = dsf::DenseFile::Create(options);
  if (!file_or.ok()) {
    std::cerr << "create failed: " << file_or.status() << "\n";
    return 1;
  }
  std::unique_ptr<dsf::DenseFile> file = std::move(*file_or);
  std::cout << "dsf shell — M=" << file->num_pages() << " d=" << options.d
            << " D=" << options.D << " policy=" << file->PolicyName()
            << " (type 'help')\n";

  dsf::Rng rng(1);
  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd)) continue;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      PrintHelp();
    } else if (cmd == "ins") {
      dsf::Key k;
      dsf::Value v = 0;
      if (!(in >> k)) { PrintHelp(); continue; }
      in >> v;
      std::cout << file->Insert(k, v) << "\n";
    } else if (cmd == "del") {
      dsf::Key k;
      if (!(in >> k)) { PrintHelp(); continue; }
      std::cout << file->Delete(k) << "\n";
    } else if (cmd == "get") {
      dsf::Key k;
      if (!(in >> k)) { PrintHelp(); continue; }
      auto v = file->Get(k);
      if (v.ok()) {
        std::cout << "value " << *v << "\n";
      } else {
        std::cout << v.status() << "\n";
      }
    } else if (cmd == "scan") {
      dsf::Key lo, hi;
      if (!(in >> lo >> hi)) { PrintHelp(); continue; }
      std::vector<dsf::Record> out;
      const dsf::Status s = file->Scan(lo, hi, &out);
      if (!s.ok()) { std::cout << s << "\n"; continue; }
      std::cout << out.size() << " records:";
      for (size_t i = 0; i < out.size() && i < 20; ++i) {
        std::cout << " " << out[i].key;
      }
      if (out.size() > 20) std::cout << " ...";
      std::cout << "\n";
    } else if (cmd == "fill") {
      int64_t n = 0;
      if (!(in >> n)) { PrintHelp(); continue; }
      int64_t done = 0;
      while (done < n && file->size() < file->capacity()) {
        const dsf::Key k = rng.Uniform(1u << 30) + 1;
        if (file->Insert(k, k).ok()) ++done;
      }
      std::cout << "inserted " << done << "\n";
    } else if (cmd == "viz") {
      Visualize(*file);
    } else if (cmd == "stats") {
      std::cout << "io: " << file->io_stats().ToString() << "\n";
      std::cout << "commands: " << file->command_stats().commands
                << ", mean "
                << file->command_stats().MeanAccessesPerCommand()
                << ", worst "
                << file->command_stats().max_command_accesses << "\n";
    } else if (cmd == "check") {
      std::cout << file->ValidateInvariants() << "\n";
    } else if (cmd == "compact") {
      std::cout << file->Compact() << "\n";
    } else if (cmd == "save") {
      std::string path;
      if (!(in >> path)) { PrintHelp(); continue; }
      std::cout << dsf::SaveSnapshot(*file, path) << "\n";
    } else {
      PrintHelp();
    }
  }
  return 0;
}
