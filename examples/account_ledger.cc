// Account ledger: tail latency under online updates.
//
// A bank keeps its account master file sorted by account number for the
// nightly batch sweep (the classic sequential-file workload the paper
// cites Wiederhold for). During the day, accounts open and close online.
// With CONTROL 1 (amortized maintenance), an unlucky account opening
// occasionally triggers a redistribution spanning a large part of the
// file — a latency spike exactly when a customer is waiting. CONTROL 2
// (this paper) pins the worst case near the mean.
//
//   ./build/examples/account_ledger

#include <algorithm>
#include <iostream>
#include <memory>
#include <vector>

#include "core/dense_file.h"
#include "util/random.h"
#include "workload/workload.h"

namespace {

constexpr int64_t kPages = 4096;    // capacity d*M = 32768 accounts
constexpr int64_t kDLow = 8;
constexpr int64_t kDHigh = 8 + 49;  // gap 49 > 3*12

// One business day: 6000 openings (a hot branch allocates consecutive
// account numbers — a burst into one key region) and 2000 closings.
dsf::Trace BusinessDay(dsf::Rng& rng, dsf::Key hot_branch_base) {
  dsf::Trace day;
  dsf::Key next_hot = hot_branch_base;
  for (int64_t i = 0; i < 6000; ++i) {
    if (rng.Bernoulli(0.7)) {
      day.push_back(dsf::Op{dsf::Op::Kind::kInsert,
                            dsf::Record{next_hot++, 100}, 0});
    } else {
      const dsf::Key k = rng.Uniform(1u << 22) * 4 + 3;  // scattered branch
      day.push_back(dsf::Op{dsf::Op::Kind::kInsert, dsf::Record{k, 100}, 0});
    }
    if (i % 3 == 0) {
      const dsf::Key k = rng.Uniform(1u << 22) * 2;  // maybe-loaded account
      day.push_back(dsf::Op{dsf::Op::Kind::kDelete, dsf::Record{k, 0}, 0});
    }
  }
  return day;
}

struct DayReport {
  double mean = 0;
  int64_t p999 = 0;
  int64_t worst = 0;
};

DayReport RunDay(dsf::DenseFile& ledger, const dsf::Trace& day) {
  std::vector<int64_t> costs;
  for (const dsf::Op& op : day) {
    dsf::Status s;
    if (op.kind == dsf::Op::Kind::kInsert) {
      s = ledger.Insert(op.record);
    } else {
      s = ledger.Delete(op.record.key);
    }
    if (!s.ok() && !s.IsAlreadyExists() && !s.IsNotFound()) {
      std::cerr << "ledger op failed: " << s << "\n";
      std::exit(1);
    }
    costs.push_back(ledger.command_stats().last_command_accesses);
  }
  DayReport report;
  int64_t total = 0;
  for (const int64_t c : costs) total += c;
  report.mean = static_cast<double>(total) / static_cast<double>(costs.size());
  std::sort(costs.begin(), costs.end());
  report.p999 = costs[costs.size() * 999 / 1000];
  report.worst = costs.back();
  return report;
}

}  // namespace

int main() {
  // 16k existing accounts, even numbers, spread over the key space.
  dsf::Rng rng(2026);
  std::vector<dsf::Record> accounts;
  for (const dsf::Record& r : dsf::MakeUniformRecords(16000, 1u << 22, rng)) {
    accounts.push_back(dsf::Record{r.key * 2, 100});
  }

  std::cout << "account ledger: 16000 accounts, one business day of "
               "openings/closings\nper policy (same operations for "
               "both)\n\n";
  std::cout << "policy     mean/op   p99.9/op   worst op (page accesses)\n";
  for (const auto policy : {dsf::DenseFile::Policy::kControl1,
                            dsf::DenseFile::Policy::kControl2}) {
    dsf::DenseFile::Options options;
    options.num_pages = kPages;
    options.d = kDLow;
    options.D = kDHigh;
    options.policy = policy;
    std::unique_ptr<dsf::DenseFile> ledger =
        std::move(*dsf::DenseFile::Create(options));
    if (!ledger->BulkLoad(accounts).ok()) return 1;

    dsf::Rng day_rng(7);
    const dsf::Trace day = BusinessDay(day_rng, (1u << 23) + 1);
    const DayReport report = RunDay(*ledger, day);
    std::printf("%-9s %7.2f   %8lld   %8lld\n",
                ledger->PolicyName().c_str(), report.mean,
                static_cast<long long>(report.p999),
                static_cast<long long>(report.worst));
    if (!ledger->ValidateInvariants().ok()) return 1;
  }
  std::cout << "\nCONTROL 2 trades a slightly higher mean for a worst case "
               "hundreds of times\nsmaller: no customer waits for a "
               "file-wide redistribution.\n";
  return 0;
}
