// Quickstart: create a (d,D)-dense sequential file, insert, look up,
// stream-retrieve, delete, and inspect the page-access accounting.
//
//   ./build/examples/quickstart

#include <iostream>

#include "core/dense_file.h"

int main() {
  // A file of M = 256 pages. It will hold at most d*M = 2048 records, no
  // page will ever hold more than D = 40, and records stay in ascending
  // key order across consecutive pages — maintained by Willard's
  // CONTROL 2 in worst-case O(log^2 M / (D-d)) page accesses per update.
  dsf::DenseFile::Options options;
  options.num_pages = 256;
  options.d = 8;
  options.D = 40;
  auto file_or = dsf::DenseFile::Create(options);
  if (!file_or.ok()) {
    std::cerr << "create failed: " << file_or.status() << "\n";
    return 1;
  }
  std::unique_ptr<dsf::DenseFile> file = std::move(*file_or);
  std::cout << "created: M=" << file->num_pages()
            << " pages, capacity=" << file->capacity()
            << " records, policy=" << file->PolicyName() << "\n";

  // Point updates.
  for (dsf::Key k = 10; k <= 1000; k += 10) {
    const dsf::Status s = file->Insert(k, /*value=*/k * k);
    if (!s.ok()) {
      std::cerr << "insert " << k << " failed: " << s << "\n";
      return 1;
    }
  }
  std::cout << "inserted " << file->size() << " records\n";

  // Duplicate keys are rejected, missing keys are reported.
  std::cout << "insert duplicate 500 -> " << file->Insert(500, 0) << "\n";
  std::cout << "delete missing 501  -> " << file->Delete(501) << "\n";

  // Point lookup.
  if (auto v = file->Get(500); v.ok()) {
    std::cout << "Get(500) = " << *v << "\n";
  }

  // Stream retrieval: records arrive in key order from consecutive pages.
  std::vector<dsf::Record> stream;
  if (const dsf::Status s = file->Scan(100, 200, &stream); !s.ok()) {
    std::cerr << "scan failed: " << s << "\n";
    return 1;
  }
  std::cout << "Scan(100,200) -> " << stream.size() << " records:";
  for (const dsf::Record& r : stream) std::cout << " " << r.key;
  std::cout << "\n";

  // Deletes shrink the file; density maintenance runs automatically.
  for (dsf::Key k = 10; k <= 500; k += 10) {
    if (const dsf::Status s = file->Delete(k); !s.ok()) {
      std::cerr << "delete failed: " << s << "\n";
      return 1;
    }
  }
  std::cout << "after deletes: " << file->size() << " records\n";

  // The simulated page store accounts every access; the command stats
  // expose the worst single update — the paper's headline quantity.
  std::cout << "I/O: " << file->io_stats().ToString() << "\n";
  std::cout << "worst command: "
            << file->command_stats().max_command_accesses
            << " page accesses; mean "
            << file->command_stats().MeanAccessesPerCommand() << "\n";

  // The full invariant battery is available at any time.
  std::cout << "invariants: " << file->ValidateInvariants() << "\n";
  return 0;
}
