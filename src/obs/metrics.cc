#include "obs/metrics.h"

#include <limits>

#include "util/check.h"

namespace dsf {

namespace internal {

int ThisThreadStripe() {
  static std::atomic<int> next{0};
  thread_local const int stripe =
      next.fetch_add(1, std::memory_order_relaxed) % kStripesPerMetric;
  return stripe;
}

}  // namespace internal

int64_t Counter::Value() const {
  int64_t total = 0;
  for (const Stripe& s : stripes_) {
    total += s.v.load(std::memory_order_relaxed);
  }
  return total;
}

int Histogram::BucketOf(int64_t value) {
  if (value < 2) return 0;
  int bucket = 0;
  for (uint64_t v = static_cast<uint64_t>(value); v > 1; v >>= 1) ++bucket;
  return bucket < kHistogramBuckets ? bucket : kHistogramBuckets - 1;
}

int64_t Histogram::BucketUpperEdge(int bucket) {
  DSF_CHECK(bucket >= 0 && bucket < kHistogramBuckets)
      << "bucket " << bucket << " out of range";
  if (bucket >= 62) return std::numeric_limits<int64_t>::max();
  return (static_cast<int64_t>(1) << (bucket + 1)) - 1;
}

void Histogram::Observe(int64_t value) {
  Stripe& s = stripes_[internal::ThisThreadStripe()];
  s.buckets[static_cast<size_t>(BucketOf(value))].fetch_add(
      1, std::memory_order_relaxed);
  s.sum.fetch_add(value, std::memory_order_relaxed);
  // Per-stripe running max; merged maxima are exact because max is
  // associative. The CAS loop races only within one stripe, i.e. only
  // when stripes are oversubscribed.
  int64_t seen = s.max.load(std::memory_order_relaxed);
  while (value > seen &&
         !s.max.compare_exchange_weak(seen, value,
                                      std::memory_order_relaxed)) {
  }
}

int64_t Histogram::TotalCount() const {
  int64_t total = 0;
  for (const Stripe& s : stripes_) {
    for (const auto& b : s.buckets) {
      total += b.load(std::memory_order_relaxed);
    }
  }
  return total;
}

int64_t Histogram::Sum() const {
  int64_t total = 0;
  for (const Stripe& s : stripes_) {
    total += s.sum.load(std::memory_order_relaxed);
  }
  return total;
}

int64_t Histogram::Max() const {
  int64_t max = 0;
  for (const Stripe& s : stripes_) {
    const int64_t v = s.max.load(std::memory_order_relaxed);
    if (v > max) max = v;
  }
  return max;
}

int64_t Histogram::QuantileFromBuckets(
    const std::array<int64_t, kHistogramBuckets>& buckets, double q) {
  int64_t total = 0;
  for (const int64_t c : buckets) total += c;
  if (total <= 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the quantile observation, 1-based; ceil without drifting
  // through floating point at the top end.
  int64_t rank = static_cast<int64_t>(q * static_cast<double>(total));
  if (static_cast<double>(rank) < q * static_cast<double>(total)) ++rank;
  if (rank < 1) rank = 1;
  if (rank > total) rank = total;
  int64_t seen = 0;
  for (int i = 0; i < kHistogramBuckets; ++i) {
    seen += buckets[static_cast<size_t>(i)];
    if (seen >= rank) return BucketUpperEdge(i);
  }
  return BucketUpperEdge(kHistogramBuckets - 1);
}

int64_t Histogram::ApproxQuantile(double q) const {
  return QuantileFromBuckets(BucketCounts(), q);
}

std::array<int64_t, kHistogramBuckets> Histogram::BucketCounts() const {
  std::array<int64_t, kHistogramBuckets> out{};
  for (const Stripe& s : stripes_) {
    for (int i = 0; i < kHistogramBuckets; ++i) {
      out[static_cast<size_t>(i)] +=
          s.buckets[static_cast<size_t>(i)].load(std::memory_order_relaxed);
    }
  }
  return out;
}

namespace {

std::string RenderKey(const std::string& name, const std::string& label) {
  if (label.empty()) return name;
  return name + "{" + label + "}";
}

}  // namespace

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(
    const std::string& name, const std::string& label, Kind kind) {
  const std::string key = RenderKey(name, label);
  MutexLock lock(mu_);
  auto it = metrics_.find(key);
  if (it == metrics_.end()) {
    Entry entry;
    entry.kind = kind;
    switch (kind) {
      case Kind::kCounter:
        entry.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        entry.histogram = std::make_unique<Histogram>();
        break;
    }
    it = metrics_.emplace(key, std::move(entry)).first;
  }
  DSF_CHECK(it->second.kind == kind)
      << "metric '" << key << "' registered under two different types";
  return &it->second;
}

Counter* MetricsRegistry::FindOrCreateCounter(const std::string& name,
                                              const std::string& label) {
  return FindOrCreate(name, label, Kind::kCounter)->counter.get();
}

Gauge* MetricsRegistry::FindOrCreateGauge(const std::string& name,
                                          const std::string& label) {
  return FindOrCreate(name, label, Kind::kGauge)->gauge.get();
}

Histogram* MetricsRegistry::FindOrCreateHistogram(const std::string& name,
                                                  const std::string& label) {
  return FindOrCreate(name, label, Kind::kHistogram)->histogram.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  MutexLock lock(mu_);
  for (const auto& [key, entry] : metrics_) {
    switch (entry.kind) {
      case Kind::kCounter:
        snapshot.counters.push_back({key, entry.counter->Value()});
        break;
      case Kind::kGauge:
        snapshot.gauges.push_back({key, entry.gauge->Value()});
        break;
      case Kind::kHistogram: {
        MetricsSnapshot::HistogramValue h;
        h.name = key;
        h.buckets = entry.histogram->BucketCounts();
        for (const int64_t c : h.buckets) h.count += c;
        h.sum = entry.histogram->Sum();
        h.max = entry.histogram->Max();
        snapshot.histograms.push_back(std::move(h));
        break;
      }
    }
  }
  return snapshot;
}

}  // namespace dsf
