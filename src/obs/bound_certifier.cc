#include "obs/bound_certifier.h"

#include <algorithm>
#include <sstream>

#include "obs/metrics.h"
#include "util/check.h"

namespace dsf {

const char* CommandKindToString(CommandKind kind) {
  switch (kind) {
    case CommandKind::kInsert:
      return "INSERT";
    case CommandKind::kDelete:
      return "DELETE";
    case CommandKind::kRange:
      return "RANGE";
    case CommandKind::kCompact:
      return "COMPACT";
  }
  return "UNKNOWN";
}

std::string BoundViolation::ToString() const {
  std::ostringstream os;
  os << CommandKindToString(kind) << " command #" << command_index
     << " used " << accesses << " logical accesses, budget " << budget;
  return os.str();
}

Status BoundReport::ToStatus() const {
  if (ok()) return Status::OK();
  return Status::FailedPrecondition(
      "worst-case bound violated: " + violations.front().ToString() +
      (violations.size() > 1
           ? " (+" + std::to_string(violations.size() - 1) + " more)"
           : ""));
}

std::string BoundReport::ToString() const {
  std::ostringstream os;
  os << "BoundReport(M=" << num_pages << " K=" << block_size << " d=" << d
     << " D=" << D << " J=" << J << " budget=" << budget
     << " checked=" << commands_checked << " exempt=" << commands_exempt
     << " max=" << max_accesses << " recalibrations=" << recalibrations
     << " violations=" << violations.size() << ")";
  for (const BoundViolation& v : violations) {
    os << "\n  " << v.ToString();
  }
  return os.str();
}

BoundCertifier::BoundCertifier(int64_t num_pages, int64_t d, int64_t D,
                               int64_t block_size, int64_t j) {
  DSF_CHECK(num_pages >= 1 && block_size >= 1 && j >= 0 && d >= 1 && D > d)
      << "certifier geometry invalid";
  report_.num_pages = num_pages;
  report_.block_size = block_size;
  report_.d = d;
  report_.D = D;
  report_.J = j;
  report_.budget = BudgetFor(block_size, j);
}

void BoundCertifier::Recalibrate(int64_t block_size, int64_t j) {
  DSF_CHECK(block_size >= 1 && j >= 0)
      << "certifier recalibration invalid: K=" << block_size << " J=" << j;
  report_.block_size = block_size;
  report_.J = j;
  report_.budget = BudgetFor(block_size, j);
  ++report_.recalibrations;
}

void BoundCertifier::Observe(CommandKind kind, int64_t logical_accesses) {
  if (kind == CommandKind::kRange || kind == CommandKind::kCompact) {
    ++report_.commands_exempt;
    return;
  }
  const int64_t index = report_.commands_checked++;
  report_.max_accesses = std::max(report_.max_accesses, logical_accesses);
  if (logical_accesses > report_.budget) {
    BoundViolation violation;
    violation.command_index = index;
    violation.kind = kind;
    violation.accesses = logical_accesses;
    violation.budget = report_.budget;
    report_.violations.push_back(violation);
    if (violations_counter_ != nullptr) violations_counter_->Increment();
  }
}

}  // namespace dsf
