// CommandTracer — a bounded ring buffer of typed span events.
//
// Where the metrics registry answers "how much, overall", the tracer
// answers "what did command #4217 actually do": each mutating command
// emits a kCommand span, and the phases inside it — CONTROL 2's SHIFT /
// SELECT / ACTIVATE cycles, CONTROL 1's redistributions, the buffer
// pool's end-of-command flush — emit nested spans, every one carrying
// the logical/physical IoStats delta measured across the phase. The
// per-command cost profile is the object the lower-bound literature
// studies (bursts vs. smoothness), and a trace is the only artifact
// that shows *where inside a command* the accesses went.
//
// The buffer is a fixed-capacity ring: recording is O(1), memory is
// bounded, and when the ring wraps the oldest events are dropped (the
// dropped count is kept, so a dump is honest about truncation). All
// methods are thread-safe behind one mutex — tracing is for diagnosis
// runs, not the metrics hot path, so a lock per event is acceptable;
// install a tracer only on the files you are inspecting.
//
// DumpJsonLines() renders one JSON object per line (JSONL), fields:
//   {"seq":N,"kind":"SHIFT","a":...,"b":...,
//    "logical_reads":...,"logical_writes":...,
//    "page_reads":...,"page_writes":...,"seeks":...,"sim_ns":...}
// `a` and `b` are span-kind-specific details documented on SpanKind.

#ifndef DSF_OBS_TRACE_H_
#define DSF_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/io_stats.h"
#include "util/thread_annotations.h"

namespace dsf {

enum class SpanKind {
  kCommand,         // a = CommandKind as int, b = end-of-command flush ok
  kShift,           // a = calibrator node v, b = records moved
  kSelect,          // a = selected node (or -1), b = cycle index
  kActivate,        // a = activated node w, b = DEST assigned
  kRedistribution,  // a = first block, b = last block of the range
  kFlush,           // a = pages flushed, b = flush runs
  kDrain,           // a = staged entries drained, b = entries remaining
  kSharedRead,      // a = branch (0 shared lock, 1 epoch hit, 2 epoch
                    //     miss blocking), b = shard index
  kTune,            // a = TuneActuator as int, b = actuator-specific
                    //     detail (frames moved, new drain batch, new J)
};

const char* SpanKindToString(SpanKind kind);

struct SpanEvent {
  SpanKind kind = SpanKind::kCommand;
  // Ordinal of the enclosing command (CommandStats::commands at the time
  // the command began); phase spans share their command's seq.
  int64_t seq = 0;
  int64_t a = 0;  // see SpanKind
  int64_t b = 0;  // see SpanKind
  // IoStats delta across the span: logical vs. physical accesses, seek /
  // sequential split and simulated elapsed time, all from one tracker.
  IoStats io;

  std::string ToJson() const;
};

class CommandTracer {
 public:
  // Keeps the most recent `capacity` events.
  explicit CommandTracer(int64_t capacity = 4096);

  CommandTracer(const CommandTracer&) = delete;
  CommandTracer& operator=(const CommandTracer&) = delete;

  void Record(const SpanEvent& event) DSF_EXCLUDES(mu_);

  // Retained events, oldest first.
  std::vector<SpanEvent> Events() const DSF_EXCLUDES(mu_);
  // Events evicted by the ring since construction (or the last Clear).
  int64_t dropped() const DSF_EXCLUDES(mu_);
  int64_t capacity() const { return capacity_; }
  void Clear() DSF_EXCLUDES(mu_);

  // JSONL dump of Events(), one event per line, plus a trailing
  // {"dropped":N} line when the ring wrapped.
  std::string DumpJsonLines() const DSF_EXCLUDES(mu_);

 private:
  const int64_t capacity_;
  mutable Mutex mu_;
  std::vector<SpanEvent> ring_ DSF_GUARDED_BY(mu_);
  int64_t next_ DSF_GUARDED_BY(mu_) = 0;  // ring slot for the next event
  int64_t dropped_ DSF_GUARDED_BY(mu_) = 0;
};

}  // namespace dsf

#endif  // DSF_OBS_TRACE_H_
