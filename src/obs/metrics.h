// MetricsRegistry — low-overhead named counters, gauges and power-of-two
// histograms for live observation of a running file.
//
// Design constraints, in order:
//
//   1. Zero overhead when disabled. Instrumented code holds a raw handle
//      pointer (Counter*, Gauge*, Histogram*) that is nullptr when no
//      registry is installed, and every instrumentation site is one
//      predicted-not-taken branch: `if (h) h->Increment();`. No registry,
//      no atomics, no cache traffic — the null-registry path must leave
//      IoStats byte-identical to an uninstrumented build
//      (tests/obs_test.cc pins this).
//
//   2. Thread-sharded hot path. A counter or histogram may be hit from
//      every replay thread at once (workload/parallel_replayer.h). Each
//      metric is striped over kStripesPerMetric cache-line-aligned slots;
//      a thread picks its stripe once (thread-local, round-robin
//      assignment) and then only ever does relaxed atomic adds on its
//      own line. Reads merge the stripes on demand — reads are rare
//      (snapshots), writes are the hot path.
//
//   3. Exact merges. Relaxed atomic adds never lose increments; a
//      Snapshot() taken after the writing threads joined is exact, and
//      one taken mid-run is a momentary view (each stripe internally
//      consistent).
//
// Histograms use fixed power-of-two buckets: bucket 0 holds values in
// [0, 2) (negatives clamp to 0), bucket i >= 1 holds [2^i, 2^(i+1)).
// 63 buckets cover the full non-negative int64 range, so no observation
// is ever dropped and bucket edges are identical across every metric —
// distributions are comparable without rebinning.
//
// Handles are created once (FindOrCreate* under the registry mutex,
// typically at file-open) and live as long as the registry; the hot path
// never touches the registry again. Labels distinguish per-shard /
// per-thread instances of one catalog name (src/obs/metric_names.h):
// FindOrCreateCounter(kMetricShardRecords, "shard=\"3\"").

#ifndef DSF_OBS_METRICS_H_
#define DSF_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/thread_annotations.h"

namespace dsf {

inline constexpr int kStripesPerMetric = 8;
inline constexpr int kHistogramBuckets = 63;

namespace internal {
// The stripe this thread writes: assigned round-robin on first use, so
// up to kStripesPerMetric concurrent writers get private cache lines.
// Striping (vs. true thread-local storage) bounds memory, survives
// thread churn, and needs no at-exit merging.
int ThisThreadStripe();
}  // namespace internal

// Monotonic counter. Increment is one relaxed fetch_add on the calling
// thread's stripe.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    stripes_[internal::ThisThreadStripe()].v.fetch_add(
        delta, std::memory_order_relaxed);
  }
  int64_t Value() const;

 private:
  struct alignas(64) Stripe {
    std::atomic<int64_t> v{0};
  };
  std::array<Stripe, kStripesPerMetric> stripes_;
};

// Last-writer-wins instantaneous value (fill level, imbalance ratio).
// Gauges are set rarely and by one logical owner, so a single atomic
// suffices; no striping.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Fixed power-of-two-bucket histogram; see the header comment for the
// bucket edges. Observe is two relaxed adds (bucket + sum) plus a
// relaxed max update on the thread's stripe.
class Histogram {
 public:
  // floor(log2(value)) clamped into [0, kHistogramBuckets - 1];
  // values below 2 (including negatives) land in bucket 0.
  static int BucketOf(int64_t value);
  // Inclusive upper edge of `bucket`: 2^(bucket+1) - 1, saturating to
  // int64 max for the last bucket.
  static int64_t BucketUpperEdge(int bucket);

  void Observe(int64_t value);

  int64_t TotalCount() const;
  int64_t Sum() const;
  int64_t Max() const;  // 0 when empty
  // Merged per-bucket counts, index = bucket.
  std::array<int64_t, kHistogramBuckets> BucketCounts() const;

  // Upper-edge quantile estimate over a merged bucket array: the
  // inclusive upper edge of the bucket holding the rank-ceil(q*count)
  // observation (rank clamped into [1, count]). Because buckets are
  // power-of-two ranges the estimate is exact to within 2x and, being
  // an upper edge, never understates — the right polarity for headroom
  // checks against a hard budget. Returns 0 on an empty array; q is
  // clamped into [0, 1]. Static so callers can diff two snapshots'
  // bucket arrays and take the quantile of the *window* between them
  // (merges and diffs of per-bucket counts are exact).
  static int64_t QuantileFromBuckets(
      const std::array<int64_t, kHistogramBuckets>& buckets, double q);
  // QuantileFromBuckets over this histogram's live merged counts.
  int64_t ApproxQuantile(double q) const;

 private:
  // One stripe row: the full bucket array plus sum/max, padded so
  // distinct stripes never share a cache line.
  struct alignas(64) Stripe {
    std::array<std::atomic<int64_t>, kHistogramBuckets> buckets{};
    std::atomic<int64_t> sum{0};
    std::atomic<int64_t> max{0};
  };
  std::array<Stripe, kStripesPerMetric> stripes_;
};

// One exported metric value; `name` includes the label when present
// (Prometheus form: `dsf_shard_records{shard="3"}`).
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    int64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    int64_t value = 0;
  };
  struct HistogramValue {
    std::string name;
    int64_t count = 0;
    int64_t sum = 0;
    int64_t max = 0;
    std::array<int64_t, kHistogramBuckets> buckets{};
  };

  // Each sorted by name (std::map iteration order of the registry).
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Returns the metric registered under (name, label), creating it on
  // first use. `name` should be a catalog constant from metric_names.h
  // (the linter enforces this outside src/obs/); `label` an optional
  // `key="value"` qualifier. The returned handle is valid for the
  // registry's lifetime and safe to use from any thread. Registering
  // one (name, label) under two different metric types is a programming
  // error and aborts.
  Counter* FindOrCreateCounter(const std::string& name,
                               const std::string& label = "")
      DSF_EXCLUDES(mu_);
  Gauge* FindOrCreateGauge(const std::string& name,
                           const std::string& label = "")
      DSF_EXCLUDES(mu_);
  Histogram* FindOrCreateHistogram(const std::string& name,
                                   const std::string& label = "")
      DSF_EXCLUDES(mu_);

  // Merged point-in-time view of every registered metric. Exact when no
  // writer is concurrently active (e.g. after threads joined).
  MetricsSnapshot Snapshot() const DSF_EXCLUDES(mu_);

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrCreate(const std::string& name, const std::string& label,
                      Kind kind) DSF_EXCLUDES(mu_);

  mutable Mutex mu_;
  // Keyed by rendered name (`name` or `name{label}`); std::map so
  // snapshots and exports come out name-sorted without a sort pass.
  std::map<std::string, Entry> metrics_ DSF_GUARDED_BY(mu_);
};

}  // namespace dsf

#endif  // DSF_OBS_METRICS_H_
