// The metric catalog — every metric name the library registers.
//
// Instrumented code outside src/obs/ must name metrics through these
// constants, never through inline string literals: the static-analysis
// linter's `unregistered-metric-name` rule (scripts/run_static_analysis.sh)
// flags any FindOrCreate* call that passes a raw literal. One catalog
// keeps the namespace collision-free, makes exporters and dashboards
// greppable, and ties each name to its documentation entry in
// docs/OBSERVABILITY.md.
//
// Naming convention (Prometheus style): `dsf_` prefix, `_total` suffix
// for monotonic counters, no suffix for gauges and histograms. Per-shard
// and per-thread instances reuse one name and differ by label
// (`dsf_shard_records{shard="3"}`), so the catalog stays closed under
// scaling.

#ifndef DSF_OBS_METRIC_NAMES_H_
#define DSF_OBS_METRIC_NAMES_H_

namespace dsf {

// --- Command layer (ControlBase) ---
// Mutating commands completed (Insert/Delete/DeleteRange/Compact).
inline constexpr char kMetricCommands[] = "dsf_commands_total";
// Histogram: logical page accesses per command — the paper's cost metric.
inline constexpr char kMetricCommandAccesses[] = "dsf_command_accesses";
// Histogram: simulated device time per command, in nanoseconds, from the
// unified DiskModel charge (storage/io_stats.h sim_elapsed_ns).
inline constexpr char kMetricCommandSimNs[] = "dsf_command_sim_ns";

// --- CONTROL 2 maintenance (core/control2.cc) ---
inline constexpr char kMetricShifts[] = "dsf_shifts_total";
inline constexpr char kMetricShiftRecords[] = "dsf_shift_records_total";
inline constexpr char kMetricActivations[] = "dsf_activations_total";
inline constexpr char kMetricWarningsLowered[] =
    "dsf_warnings_lowered_total";

// --- Redistribution (CONTROL 1 step B, Compact) ---
inline constexpr char kMetricRedistributions[] = "dsf_redistributions_total";
// Histogram: blocks covered by each redistribution.
inline constexpr char kMetricRedistributionBlocks[] =
    "dsf_redistribution_blocks";

// --- Bound certifier (obs/bound_certifier.h) ---
inline constexpr char kMetricBoundViolations[] =
    "dsf_bound_violations_total";

// --- Buffer pool (storage/buffer_pool.cc) ---
inline constexpr char kMetricPoolHits[] = "dsf_pool_hits_total";
inline constexpr char kMetricPoolMisses[] = "dsf_pool_misses_total";
inline constexpr char kMetricPoolWritebacks[] = "dsf_pool_writebacks_total";
// Histogram: pages per maximal consecutive-address flush run (the write
// coalescing docs/CACHING.md measures; 1 = an isolated seek).
inline constexpr char kMetricPoolFlushRunLength[] =
    "dsf_pool_flush_run_length";

// --- Sharding (shard/sharded_dense_file.cc) ---
// Read-path branch counters (docs/CONCURRENCY.md): point reads that
// took the shard lock shared without waiting ...
inline constexpr char kMetricReadLockShared[] = "dsf_read_lock_shared_total";
// ... that were answered by an epoch-validated buffer-pool read while a
// writer held the shard ...
inline constexpr char kMetricReadLockEpochHits[] =
    "dsf_read_lock_epoch_hits_total";
// ... and that missed the epoch read and blocked on the shared lock.
inline constexpr char kMetricReadLockEpochFallbacks[] =
    "dsf_read_lock_epoch_fallbacks_total";
// Gauge, per-shard label: records currently held by the shard.
inline constexpr char kMetricShardRecords[] = "dsf_shard_records";
// Gauge: 1000 * (most loaded shard / mean shard load); 1000 = balanced.
inline constexpr char kMetricShardImbalance[] = "dsf_shard_imbalance_x1000";

// --- Self-tuning controller (tune/controller.cc; see docs/TUNING.md) ---
// Controller ticks that ran (signal collection + decision, even no-ops).
inline constexpr char kMetricTuneTicks[] = "dsf_tune_ticks_total";
// Actuations actually applied (any actuator; no-op ticks don't count).
inline constexpr char kMetricTuneActuations[] = "dsf_tune_actuations_total";
// Buffer-pool frames moved between shards by the frame-balance actuator.
inline constexpr char kMetricTuneFramesMoved[] =
    "dsf_tune_frames_moved_total";
// Bounded re-calibrations (per-shard Compact + envelope recompute)
// triggered by the J-headroom advisory.
inline constexpr char kMetricTuneRecalibrations[] =
    "dsf_tune_recalibrations_total";
// Gauge, per-shard label: buffer-pool frames currently allocated.
inline constexpr char kMetricTunePoolFrames[] = "dsf_tune_pool_frames";
// Gauge, per-shard label: current drain batch (entries per drain step).
inline constexpr char kMetricTuneDrainBatch[] = "dsf_tune_drain_batch";
// Gauge, per-shard label: current staging-memtable capacity (entries).
inline constexpr char kMetricTuneStagingCapacity[] =
    "dsf_tune_staging_capacity";
// Gauge, per-shard label: current maintenance J (CONTROL 2 SHIFT cycles
// per command).
inline constexpr char kMetricTuneJ[] = "dsf_tune_j";
// Gauge: worst (minimum) per-shard access headroom over the last tick
// window, as 1000 * (budget - windowed p99) / budget; 1000 = idle,
// <= 0 = the p99 touched the certifier budget.
inline constexpr char kMetricTuneHeadroomX1000[] =
    "dsf_tune_headroom_x1000";

// --- Workload replay (workload/parallel_replayer.cc) ---
// Histogram, per-thread label: wall-clock latency per operation, ns.
inline constexpr char kMetricReplayOpNs[] = "dsf_replay_op_ns";

// --- Ingest staging (core/dense_file.cc; see docs/INGEST.md) ---
// Mutations absorbed into the staging memtable (inserts, updates,
// tombstones) instead of going straight to the file.
inline constexpr char kMetricStagingPuts[] = "dsf_staging_puts_total";
// Point reads (Get/Contains) answered by a staged entry.
inline constexpr char kMetricStagingHits[] = "dsf_staging_hits_total";
// Staged inserts cancelled in place by a later delete — mutations that
// never cost a single page access.
inline constexpr char kMetricStagingAnnihilations[] =
    "dsf_staging_annihilations_total";
// Bounded drain steps executed (each one kDrain tracer span).
inline constexpr char kMetricStagingDrainSteps[] =
    "dsf_staging_drain_steps_total";
// Entries moved from staging into the file by drain steps.
inline constexpr char kMetricStagingDrainedEntries[] =
    "dsf_staging_drained_entries_total";
// Gauge, per-file label: entries currently staged (volatile until
// drained).
inline constexpr char kMetricStagingEntries[] = "dsf_staging_entries";

}  // namespace dsf

#endif  // DSF_OBS_METRIC_NAMES_H_
