#include "obs/trace.h"

#include <sstream>

#include "util/check.h"

namespace dsf {

const char* SpanKindToString(SpanKind kind) {
  switch (kind) {
    case SpanKind::kCommand:
      return "COMMAND";
    case SpanKind::kShift:
      return "SHIFT";
    case SpanKind::kSelect:
      return "SELECT";
    case SpanKind::kActivate:
      return "ACTIVATE";
    case SpanKind::kRedistribution:
      return "REDISTRIBUTION";
    case SpanKind::kFlush:
      return "FLUSH";
    case SpanKind::kDrain:
      return "DRAIN";
    case SpanKind::kSharedRead:
      return "SHARED_READ";
    case SpanKind::kTune:
      return "TUNE";
  }
  return "UNKNOWN";
}

std::string SpanEvent::ToJson() const {
  std::ostringstream os;
  os << "{\"seq\":" << seq << ",\"kind\":\"" << SpanKindToString(kind)
     << "\",\"a\":" << a << ",\"b\":" << b
     << ",\"logical_reads\":" << io.logical_reads
     << ",\"logical_writes\":" << io.logical_writes
     << ",\"page_reads\":" << io.page_reads
     << ",\"page_writes\":" << io.page_writes << ",\"seeks\":" << io.seeks
     << ",\"sequential\":" << io.sequential_accesses
     << ",\"sim_ns\":" << io.sim_elapsed_ns << "}";
  return os.str();
}

CommandTracer::CommandTracer(int64_t capacity) : capacity_(capacity) {
  DSF_CHECK(capacity >= 1) << "tracer needs a positive ring capacity";
  MutexLock lock(mu_);
  ring_.reserve(static_cast<size_t>(capacity));
}

void CommandTracer::Record(const SpanEvent& event) {
  MutexLock lock(mu_);
  if (static_cast<int64_t>(ring_.size()) < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[static_cast<size_t>(next_)] = event;
    ++dropped_;
  }
  next_ = (next_ + 1) % capacity_;
}

std::vector<SpanEvent> CommandTracer::Events() const {
  MutexLock lock(mu_);
  std::vector<SpanEvent> out;
  out.reserve(ring_.size());
  if (static_cast<int64_t>(ring_.size()) < capacity_) {
    out = ring_;
  } else {
    // Full ring: `next_` is the oldest slot.
    for (int64_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[static_cast<size_t>((next_ + i) % capacity_)]);
    }
  }
  return out;
}

int64_t CommandTracer::dropped() const {
  MutexLock lock(mu_);
  return dropped_;
}

void CommandTracer::Clear() {
  MutexLock lock(mu_);
  ring_.clear();
  next_ = 0;
  dropped_ = 0;
}

std::string CommandTracer::DumpJsonLines() const {
  const std::vector<SpanEvent> events = Events();
  const int64_t dropped_count = dropped();
  std::ostringstream os;
  for (const SpanEvent& e : events) {
    os << e.ToJson() << "\n";
  }
  if (dropped_count > 0) {
    os << "{\"dropped\":" << dropped_count << "}\n";
  }
  return os.str();
}

}  // namespace dsf
