// BoundCertifier — live certification of the paper's worst-case bound.
//
// Theorems 5.5 and 5.7 promise that every CONTROL 2 insert/delete costs
// O(log^2 M / (D-d)) page accesses. The repo's tests assert the
// mechanism; the certifier *watches an actual run* and certifies that no
// single command ever exceeded the exact per-command access budget the
// algorithm's structure implies. The budget is computed once at
// file-open time from (M, d, D, J) and the resolved macro-block size K:
//
//   A CONTROL 2 command performs, in logical page accesses,
//     step 1:  read + write of the target block       <= 2K pages
//     step 4:  J SHIFT cycles, each reading DEST and SOURCE and writing
//              both back                               <= 4K pages each
//   budget = K * (4J + 2)
//
// (SELECT, ACTIVATE and the warning bookkeeping live in the in-memory
// calibrator and cost nothing; a SHIFT that finds no populated SOURCE
// accesses nothing, so the budget is an upper envelope, and with
// J = Theta(ceil(log M#)^2 / (K(D-d))) it is O(log^2 M / (D-d)).)
//
// Counted are *logical* accesses (IoStats logical_reads +
// logical_writes): they measure what the algorithm requested,
// independent of whether a buffer pool absorbed the traffic, so the
// certificate is device-configuration-independent. Range commands
// (DeleteRange) and Compact are exempt — the paper's bound covers point
// updates only; their observations are tallied but never flagged.
//
// Attached to CONTROL 1 or LocalShift (DenseFile::Options::certify_bound
// with those policies), the certifier keeps the CONTROL 2 envelope at
// the same geometry, with J = DensitySpec::RecommendedJ at CONTROL 2's
// default safety. That is the deamortization claim made operational:
// CONTROL 2 stays under the envelope on every command, while CONTROL 1's
// occasional O(M)-block redistributions must breach it (bench/obs_certify
// records both series into BENCH_obs.json).
//
// Reporting follows the typed-report pattern of analysis/auditor.h: a
// BoundReport accumulates one BoundViolation per flagged command, is
// ok() when empty, and collapses to a Status for callers that only
// gate. The certifier is owned by the DenseFile and fed by
// ControlBase::EndCommand; with a shard mutex above it (sharding,
// parallel replay) observation is single-threaded per file.

#ifndef DSF_OBS_BOUND_CERTIFIER_H_
#define DSF_OBS_BOUND_CERTIFIER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace dsf {

class Counter;

// What kind of command a cost observation belongs to. Declared here (not
// in core/) so the storage-to-core layering stays acyclic: obs/ depends
// only on util/ and storage/, and core/ depends on obs/.
enum class CommandKind {
  kInsert,
  kDelete,
  kRange,    // DeleteRange: outside the per-command bound, exempt
  kCompact,  // explicit O(M) reorganization, exempt
};

const char* CommandKindToString(CommandKind kind);

// One command that exceeded the budget.
struct BoundViolation {
  int64_t command_index = 0;  // ordinal among *checked* commands, 0-based
  CommandKind kind = CommandKind::kInsert;
  int64_t accesses = 0;  // measured logical page accesses
  int64_t budget = 0;    // the envelope it exceeded

  std::string ToString() const;
};

// The certificate: parameters, coverage counters (a clean report proves
// it watched), the observed worst case, and every violation.
struct BoundReport {
  // Geometry and envelope, fixed at file-open.
  int64_t num_pages = 0;   // physical M
  int64_t block_size = 0;  // K
  int64_t d = 0;
  int64_t D = 0;
  int64_t J = 0;
  int64_t budget = 0;  // K * (4J + 2)

  int64_t commands_checked = 0;  // point commands measured
  int64_t commands_exempt = 0;   // range/compact commands seen
  int64_t max_accesses = 0;      // worst checked command
  int64_t recalibrations = 0;    // times the envelope was recomputed
  std::vector<BoundViolation> violations;

  bool ok() const { return violations.empty(); }
  // OK when clean; otherwise FailedPrecondition carrying the first
  // violation and the total count (the bound is a performance contract,
  // not data corruption).
  Status ToStatus() const;
  std::string ToString() const;
};

class BoundCertifier {
 public:
  // The exact per-command logical-access budget for the geometry.
  static int64_t BudgetFor(int64_t block_size, int64_t j) {
    return block_size * (4 * j + 2);
  }

  // `j`: CONTROL 2's resolved J for the file, or the recommended J at
  // the same geometry when certifying a non-CONTROL-2 policy.
  BoundCertifier(int64_t num_pages, int64_t d, int64_t D,
                 int64_t block_size, int64_t j);

  // Feeds one completed command's logical access count. Exempt kinds are
  // tallied but never flagged. `violations_counter` (when instrumented)
  // is bumped on each flagged command.
  void Observe(CommandKind kind, int64_t logical_accesses);

  // Recomputes the envelope after an operation that changed K or J
  // (maintenance-J retuning, Compact's whole-file redistribution, a
  // re-learned calibrator). Coverage counters, the observed max and any
  // recorded violations are preserved — the certificate stays one
  // unbroken watch over the file's life; only *subsequent* commands are
  // checked against the new budget. Recorded in report().recalibrations
  // so a clean report proves which envelope each era ran under.
  void Recalibrate(int64_t block_size, int64_t j);

  // Optional metrics hook: bumped once per flagged command.
  void set_violations_counter(Counter* counter) {
    violations_counter_ = counter;
  }

  int64_t budget() const { return report_.budget; }
  const BoundReport& report() const { return report_; }

 private:
  BoundReport report_;
  Counter* violations_counter_ = nullptr;
};

}  // namespace dsf

#endif  // DSF_OBS_BOUND_CERTIFIER_H_
