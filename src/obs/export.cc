#include "obs/export.h"

#include <limits>
#include <sstream>
#include <utility>
#include <vector>

namespace dsf {

namespace {

// Splits a rendered metric key into (bare name, label body):
// `dsf_replay_op_ns{thread="3"}` -> ("dsf_replay_op_ns", `thread="3"`).
void SplitKey(const std::string& key, std::string* name,
              std::string* label) {
  const size_t brace = key.find('{');
  if (brace == std::string::npos) {
    *name = key;
    label->clear();
    return;
  }
  *name = key.substr(0, brace);
  *label = key.substr(brace + 1, key.size() - brace - 2);
}

// `name_suffix{label,le="edge"}` with any of the three parts optional.
std::string HistogramSeries(const std::string& name,
                            const std::string& label,
                            const std::string& suffix,
                            const std::string& le) {
  std::string out = name + suffix;
  if (label.empty() && le.empty()) return out;
  out += "{";
  if (!label.empty()) out += label;
  if (!le.empty()) {
    if (!label.empty()) out += ",";
    out += "le=\"" + le + "\"";
  }
  out += "}";
  return out;
}

// Labelled metric names carry literal quotes (`name{thread="0"}`), which
// must be escaped when the name becomes a JSON object key.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

void AppendJsonMap(std::ostringstream& os, const char* section,
                   const std::vector<std::pair<std::string, int64_t>>& kv,
                   bool trailing_comma) {
  os << "\"" << section << "\":{";
  bool first = true;
  for (const auto& [name, value] : kv) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(name) << "\":" << value;
  }
  os << "}";
  if (trailing_comma) os << ",";
}

}  // namespace

std::string ToPrometheusText(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  for (const auto& c : snapshot.counters) {
    os << c.name << " " << c.value << "\n";
  }
  for (const auto& g : snapshot.gauges) {
    os << g.name << " " << g.value << "\n";
  }
  for (const auto& h : snapshot.histograms) {
    std::string name;
    std::string label;
    SplitKey(h.name, &name, &label);
    // Cumulative buckets, Prometheus-style; empty buckets elided except
    // the mandatory +Inf. The top bucket is the saturated catch-all
    // (everything >= 2^(kHistogramBuckets-1) lands there), so it has no
    // finite upper edge: a `le="<int64 max>"` line would duplicate the
    // +Inf cumulative count while claiming a finite bound the bucket
    // does not enforce. Fold it into +Inf instead of emitting it.
    int64_t cumulative = 0;
    for (int i = 0; i < kHistogramBuckets - 1; ++i) {
      const int64_t count = h.buckets[static_cast<size_t>(i)];
      if (count == 0) continue;
      cumulative += count;
      os << HistogramSeries(name, label, "_bucket",
                            std::to_string(Histogram::BucketUpperEdge(i)))
         << " " << cumulative << "\n";
    }
    os << HistogramSeries(name, label, "_bucket", "+Inf") << " " << h.count
       << "\n";
    os << HistogramSeries(name, label, "_sum", "") << " " << h.sum << "\n";
    os << HistogramSeries(name, label, "_count", "") << " " << h.count
       << "\n";
  }
  return os.str();
}

std::string ToJsonSnapshot(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os << "{";

  std::vector<std::pair<std::string, int64_t>> kv;
  for (const auto& c : snapshot.counters) kv.emplace_back(c.name, c.value);
  AppendJsonMap(os, "counters", kv, /*trailing_comma=*/true);

  kv.clear();
  for (const auto& g : snapshot.gauges) kv.emplace_back(g.name, g.value);
  AppendJsonMap(os, "gauges", kv, /*trailing_comma=*/true);

  os << "\"histograms\":{";
  bool first_h = true;
  for (const auto& h : snapshot.histograms) {
    if (!first_h) os << ",";
    first_h = false;
    os << "\"" << JsonEscape(h.name) << "\":{\"count\":" << h.count
       << ",\"sum\":" << h.sum << ",\"max\":" << h.max
       << ",\"p50\":" << Histogram::QuantileFromBuckets(h.buckets, 0.50)
       << ",\"p99\":" << Histogram::QuantileFromBuckets(h.buckets, 0.99)
       << ",\"buckets\":{";
    bool first_b = true;
    for (int i = 0; i < kHistogramBuckets; ++i) {
      const int64_t count = h.buckets[static_cast<size_t>(i)];
      if (count == 0) continue;
      if (!first_b) os << ",";
      first_b = false;
      os << "\"" << Histogram::BucketUpperEdge(i) << "\":" << count;
    }
    os << "}}";
  }
  os << "}}";
  return os.str();
}

}  // namespace dsf
