// Text exporters for MetricsSnapshot — the read side of the
// observability layer.
//
// Two formats, both built from the same merged snapshot so they can
// never disagree:
//
//   ToPrometheusText   the Prometheus exposition format (text/plain
//                      version 0.0.4): counters and gauges as single
//                      samples, histograms as cumulative `_bucket{le=}`
//                      series plus `_sum` and `_count`. Bucket edges are
//                      the power-of-two edges of obs/metrics.h; only
//                      non-empty buckets (plus the +Inf catch-all) are
//                      emitted, keeping 63-bucket histograms compact.
//
//   ToJsonSnapshot     a self-contained JSON object for artifacts and
//                      tests: {"counters":{name:value},
//                      "gauges":{name:value},
//                      "histograms":{name:{"count","sum","max",
//                      "buckets":{upper_edge:count}}}}. This is the
//                      format the integration test uploads as a CI
//                      artifact and bench/obs_certify embeds in
//                      BENCH_obs.json.
//
// Both render a snapshot, not the live registry — take the snapshot at
// a quiescent point (threads joined) for exact values.

#ifndef DSF_OBS_EXPORT_H_
#define DSF_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"

namespace dsf {

std::string ToPrometheusText(const MetricsSnapshot& snapshot);
std::string ToJsonSnapshot(const MetricsSnapshot& snapshot);

}  // namespace dsf

#endif  // DSF_OBS_EXPORT_H_
