#include "core/density.h"

#include <cmath>
#include <sstream>

#include "util/check.h"
#include "util/math.h"

namespace dsf {

StatusOr<DensitySpec> DensitySpec::Create(int64_t num_pages, int64_t d,
                                          int64_t D) {
  if (num_pages < 1) {
    return Status::InvalidArgument("num_pages must be >= 1");
  }
  if (d < 1) {
    return Status::InvalidArgument("d must be >= 1");
  }
  if (D <= d) {
    return Status::InvalidArgument("D must exceed d");
  }
  const int64_t L = std::max<int64_t>(1, CeilLog2(num_pages));
  return DensitySpec(num_pages, d, D, L);
}

int64_t DensitySpec::Lhs(int64_t count) const { return 3 * L_ * count; }

int64_t DensitySpec::Rhs(int64_t pages, int64_t depth, int r3) const {
  DSF_DCHECK(r3 >= 0 && r3 <= 3) << "r3 out of range";
  return (3 * L_ * d_ + (3 * depth + r3 - 3) * (D_ - d_)) * pages;
}

bool DensitySpec::DensityAtLeast(int64_t count, int64_t pages, int64_t depth,
                                 int r3) const {
  return Lhs(count) >= Rhs(pages, depth, r3);
}

bool DensitySpec::DensityAtMost(int64_t count, int64_t pages, int64_t depth,
                                int r3) const {
  return Lhs(count) <= Rhs(pages, depth, r3);
}

int64_t DensitySpec::MovesUntilAtLeast(int64_t count, int64_t pages,
                                       int64_t depth, int r3) const {
  const int64_t deficit = Rhs(pages, depth, r3) - Lhs(count);
  if (deficit <= 0) return 0;
  return DivCeil(deficit, 3 * L_);
}

double DensitySpec::G(int64_t depth, double r) const {
  return static_cast<double>(d_) +
         (static_cast<double>(depth) + r - 1.0) /
             static_cast<double>(L_) * static_cast<double>(D_ - d_);
}

int64_t DensitySpec::RecommendedJ(double safety) const {
  const double j = safety * static_cast<double>(L_ * L_) /
                   static_cast<double>(D_ - d_);
  return std::max<int64_t>(1, static_cast<int64_t>(std::ceil(j)));
}

std::string DensitySpec::ToString() const {
  std::ostringstream os;
  os << "DensitySpec(M=" << num_pages_ << ", d=" << d_ << ", D=" << D_
     << ", L=" << L_ << ")";
  return os.str();
}

}  // namespace dsf
