#include "core/control_base.h"

#include <algorithm>
#include <limits>
#include <sstream>

#include "obs/metric_names.h"
#include "util/check.h"
#include "util/math.h"

namespace dsf {

std::string RepairReport::ToString() const {
  std::ostringstream os;
  os << "scanned=" << blocks_scanned << " resyncs=" << calibrator_resyncs
     << " dup_dropped=" << duplicate_records_dropped
     << " misordered=" << misordered_blocks << " overfull=" << overfull_pages
     << " packing=" << packing_violations
     << " rewrote=" << (rewrote_file ? "yes" : "no")
     << " flags_rebuilt=" << (warning_state_rebuilt ? "yes" : "no");
  return os.str();
}

namespace {

Calibrator::LeafUpdate MakeLeafUpdate(const Record* begin, const Record* end) {
  Calibrator::LeafUpdate u;
  if (begin != end) {
    u.count = end - begin;
    u.min_key = begin->key;
    u.max_key = (end - 1)->key;
  }
  return u;
}

}  // namespace

StatusOr<DensitySpec> ControlBase::MakeLogicalSpec(const Config& config) {
  if (config.num_pages < 1) {
    return Status::InvalidArgument("num_pages must be >= 1");
  }
  if (config.block_size < 1) {
    return Status::InvalidArgument("block_size must be >= 1");
  }
  if (config.num_pages % config.block_size != 0) {
    return Status::InvalidArgument(
        "num_pages must be a multiple of block_size");
  }
  if (config.d < 1 || config.D <= config.d) {
    return Status::InvalidArgument("need 1 <= d < D");
  }
  return DensitySpec::Create(config.num_pages / config.block_size,
                             config.block_size * config.d,
                             config.block_size * config.D);
}

ControlBase::ControlBase(const Config& config, DensitySpec logical_spec)
    : logical_spec_(logical_spec),
      smart_placement_(config.smart_placement),
      block_size_(config.block_size),
      num_blocks_(config.num_pages / config.block_size),
      page_d_(config.d),
      page_D_(config.D),
      // Physical capacity D+1: one record may transiently exceed D inside
      // a command before the maintenance steps drain it.
      file_(config.num_pages, config.D + 1),
      calibrator_(num_blocks_) {
  if (config.cache_frames > 0) {
    BufferPool::Options pool_options;
    pool_options.num_frames = config.cache_frames;
    pool_options.eviction = config.cache_eviction;
    pool_ = std::make_unique<BufferPool>(&file_, pool_options);
  }
}

const Page& ControlBase::PeekLogical(Address page) const {
  if (pool_ != nullptr) {
    const Page* frame = pool_->PeekFrame(page);
    if (frame != nullptr) return *frame;
  }
  return file_.Peek(page);
}

bool ControlBase::LogicallyOrdered() const {
  bool have_previous = false;
  Key previous_max = 0;
  for (Address p = 1; p <= file_.num_pages(); ++p) {
    const Page& page = PeekLogical(p);
    if (!page.WellFormed()) return false;
    if (page.empty()) continue;
    if (have_previous && page.MinKey() <= previous_max) return false;
    previous_max = page.MaxKey();
    have_previous = true;
  }
  return true;
}

Status ControlBase::Flush() {
  if (pool_ != nullptr) DSF_RETURN_IF_ERROR(pool_->FlushAll());
  return file_.SyncBarrier();
}

Status ControlBase::AttachStorageBackend(
    std::unique_ptr<StorageBackend> backend) {
  return file_.AttachBackend(std::move(backend));
}

void ControlBase::DiscardCache() {
  if (pool_ != nullptr) pool_->DropAll();
  // A dropped cache ends any open drain window: there is nothing left
  // to defer, and post-crash commands must flush per command again.
  defer_flush_ = false;
}

int64_t ControlBase::PagesUsed(int64_t count) const {
  if (count == 0) return 0;
  return std::min(block_size_, DivCeil(count, page_D_));
}

StatusOr<std::vector<Record>> ControlBase::ReadBlock(Address block) {
  std::vector<Record> out;
  out.reserve(
      static_cast<size_t>(calibrator_.Count(calibrator_.LeafOf(block))));
  DSF_RETURN_IF_ERROR(ReadBlockInto(block, &out));
  return out;
}

Status ControlBase::ReadBlockInto(Address block, std::vector<Record>* out) {
  const int64_t count = calibrator_.Count(calibrator_.LeafOf(block));
  const int64_t used = PagesUsed(count);
  const int64_t before = static_cast<int64_t>(out->size());
  const Address first = FirstPhysicalPage(block);
  for (int64_t i = 0; i < used; ++i) {
    if (pool_ != nullptr) {
      StatusOr<PageGuard> guard = pool_->PinRead(first + i, "ControlBase::ReadBlockInto");
      DSF_RETURN_IF_ERROR(guard.status());
      const std::vector<Record>& records = guard->page().records();
      out->insert(out->end(), records.begin(), records.end());
    } else {
      StatusOr<const Page*> p = file_.TryRead(first + i);
      DSF_RETURN_IF_ERROR(p.status());
      out->insert(out->end(), (*p)->records().begin(), (*p)->records().end());
    }
  }
  (void)before;
  DSF_DCHECK(static_cast<int64_t>(out->size()) - before == count)
      << "block " << block << " layout out of sync";
  return Status::OK();
}

Status ControlBase::WriteBlock(Address block,
                               const std::vector<Record>& records,
                               BlockWriteOrder order) {
  return WriteBlock(block, records.data(), records.data() + records.size(),
                    order);
}

Status ControlBase::WriteBlock(Address block, const Record* begin,
                               const Record* end, BlockWriteOrder order) {
  const Status s = WriteBlockPages(block, begin, end, order);
  if (!s.ok()) {
    // The device holds a mix of old and new pages; make the calibrator
    // tell the truth about it before surfacing the error.
    ResyncLeafFromRaw(block);
    return s;
  }
  const Calibrator::LeafUpdate u = MakeLeafUpdate(begin, end);
  calibrator_.SyncLeaf(block, u.count, u.min_key, u.max_key);
  return Status::OK();
}

Status ControlBase::WriteBlockPages(Address block, const Record* begin,
                                    const Record* end, BlockWriteOrder order) {
  const int64_t old_count = calibrator_.Count(calibrator_.LeafOf(block));
  const int64_t old_used = PagesUsed(old_count);
  const int64_t n = end - begin;
  const int64_t used = PagesUsed(n);
  DSF_CHECK(n <= block_size_ * page_D_ + 1)
      << "block overfull beyond the one-record transient";

  // Slice the buffer into pages first: pages before the last take exactly
  // D, the last takes the remainder (up to D+1 in the transient case).
  // Then write the slices in crash-safe order (see BlockWriteOrder): a
  // growing block's content shifts toward higher pages, so writing
  // right-to-left guarantees a record is duplicated into its new page
  // before the page holding its old copy is overwritten; shrinking is the
  // mirror image. The slices are independent, so order only matters for
  // what a crash between two page writes leaves behind.
  const Address first = FirstPhysicalPage(block);
  const bool backward = order == BlockWriteOrder::kBackward ||
                        (order == BlockWriteOrder::kAuto && n >= old_count);
  Status fault = Status::OK();
  for (int64_t step = 0; step < used; ++step) {
    const int64_t i = backward ? used - 1 - step : step;
    const int64_t offset = i * page_D_;
    const int64_t take = (i + 1 < used) ? page_D_ : n - offset;
    if (pool_ != nullptr) {
      if (defer_flush_) {
        // Inside a drain window, a byte-identical page rewrite is
        // skipped outright: the device (or the frame's pending flush at
        // an order-correct earlier slot) already holds these bytes, so
        // the write would only churn the pool's dirty-order list.
        const Page* cached = pool_->PeekFrame(first + i);
        if (cached != nullptr &&
            static_cast<int64_t>(cached->records().size()) == take &&
            std::equal(cached->records().begin(), cached->records().end(),
                       begin + offset)) {
          continue;
        }
      }
      // Full-page overwrite: the pool skips the miss read and hands out
      // a cleared dirty frame. The pool's dirty-order list preserves the
      // crash-safe order chosen here — frames reach the device in the
      // order they were dirtied, not in address order. Drain windows use
      // the content-aware path so the pool can absorb additive rewrites
      // and relocate dependency-free ones (buffer_pool.h rules 2'/3†)
      // instead of force-flushing the prefix on every re-dirty.
      StatusOr<PageGuard> guard =
          defer_flush_
              ? pool_->PinForRewrite(first + i, begin + offset,
                                     begin + offset + take,
                                     "ControlBase::WriteBlockPages")
              : pool_->PinForOverwrite(first + i,
                                       "ControlBase::WriteBlockPages");
      if (!guard.ok()) {
        fault = guard.status();
        break;
      }
      guard->mutable_page()->AppendHigh(begin + offset, begin + offset + take);
    } else {
      StatusOr<Page*> p = file_.TryWrite(first + i);
      if (!p.ok()) {
        fault = p.status();
        break;
      }
      (*p)->Clear();
      (*p)->AppendHigh(begin + offset, begin + offset + take);
    }
  }
  if (!fault.ok()) return fault;
  // Pages that fall out of the used prefix become free. A real system
  // records this in metadata; clearing them here is bookkeeping, not I/O.
  // Pooled, the clear must ride the dirty order (it may not overtake the
  // in-cache writes that moved these records into the used prefix).
  for (int64_t i = used; i < old_used; ++i) {
    if (pool_ != nullptr) {
      DSF_RETURN_IF_ERROR(pool_->MarkFree(first + i));
    } else {
      // lint:allow(raw-page-io): freed-tail clear is unaccounted device
      // maintenance per the accounting rule in storage/page_file.h.
      file_.RawPage(first + i).Clear();
    }
  }
  return Status::OK();
}

void ControlBase::ResyncLeafFromRaw(Address block) {
  const Address first = FirstPhysicalPage(block);
  int64_t count = 0;
  Key min_key = 0;
  Key max_key = 0;
  for (int64_t i = 0; i < block_size_; ++i) {
    const Page& page = PeekLogical(first + i);
    if (page.empty()) continue;
    // A torn block may interleave old and new pages, so the true extrema
    // need a full scan of every record, not just the first/last page.
    for (const Record& r : page.records()) {
      if (count == 0 || r.key < min_key) min_key = r.key;
      if (count == 0 || r.key > max_key) max_key = r.key;
      ++count;
    }
  }
  calibrator_.SyncLeaf(block, count, min_key, max_key);
}

void ControlBase::ResyncRangeFromRaw(Address lo, Address hi) {
  std::vector<Calibrator::LeafUpdate> leaves;
  leaves.reserve(static_cast<size_t>(hi - lo + 1));
  for (Address block = lo; block <= hi; ++block) {
    const Address first = FirstPhysicalPage(block);
    Calibrator::LeafUpdate u;
    for (int64_t i = 0; i < block_size_; ++i) {
      const Page& page = PeekLogical(first + i);
      for (const Record& r : page.records()) {
        if (u.count == 0 || r.key < u.min_key) u.min_key = r.key;
        if (u.count == 0 || r.key > u.max_key) u.max_key = r.key;
        ++u.count;
      }
    }
    leaves.push_back(u);
  }
  calibrator_.SyncLeaves(lo, leaves);
}

void ControlBase::SyncBlock(Address block,
                            const std::vector<Record>& records) {
  if (records.empty()) {
    calibrator_.SyncLeaf(block, 0, 0, 0);
  } else {
    calibrator_.SyncLeaf(block, static_cast<int64_t>(records.size()),
                         records.front().key, records.back().key);
  }
}

Address ControlBase::BlockPossiblyContaining(Key key) const {
  return calibrator_.FirstNonEmptyPageWithMaxGE(key);
}

Address ControlBase::TargetBlockForInsert(Key key) const {
  const Address successor_block = calibrator_.FirstNonEmptyPageWithMaxGE(key);
  if (successor_block == 0) {
    // Larger than every stored key: extend the last non-empty block, or
    // start in the middle of an empty file.
    const Address last = calibrator_.LastNonEmptyPageIn(1, num_blocks_);
    if (last == 0) return (num_blocks_ + 1) / 2;
    return MaybeSpillAfter(last, num_blocks_);
  }
  const int leaf = calibrator_.LeafOf(successor_block);
  if (calibrator_.MinKeyOf(leaf) <= key) return successor_block;
  // The key precedes everything in successor_block: it belongs with its
  // predecessor record's block when one exists.
  const Address predecessor_block =
      calibrator_.LastNonEmptyPageIn(1, successor_block - 1);
  if (predecessor_block == 0) return successor_block;
  return MaybeSpillAfter(predecessor_block, successor_block - 1);
}

Address ControlBase::MaybeSpillAfter(Address block, Address limit) const {
  if (!smart_placement_) return block;
  // The new key follows every record in `block`; an empty block right
  // after it (but before `limit`) is an equally legal home. Taking it
  // whenever the insert would push `block` into the warning band g(v,2/3)
  // spares the maintenance machinery an activation.
  const int leaf = calibrator_.LeafOf(block);
  if (!logical_spec_.DensityAtLeast(calibrator_.Count(leaf) + 1,
                                    calibrator_.PagesIn(leaf),
                                    calibrator_.Depth(leaf), kThirds2Of3)) {
    return block;
  }
  if (block + 1 <= limit &&
      calibrator_.Count(calibrator_.LeafOf(block + 1)) == 0) {
    return block + 1;
  }
  return block;
}

StatusOr<Record> ControlBase::Get(Key key) {
  const Address block = BlockPossiblyContaining(key);
  if (block == 0) return Status::NotFound("key absent");
  StatusOr<std::vector<Record>> records = ReadBlock(block);
  DSF_RETURN_IF_ERROR(records.status());
  const auto it =
      std::lower_bound(records->begin(), records->end(), Record{key, 0},
                       RecordKeyLess);
  if (it == records->end() || it->key != key) {
    return Status::NotFound("key absent");
  }
  return *it;
}

bool ControlBase::Contains(Key key) { return Get(key).ok(); }

bool ControlBase::PeekContains(Key key, Value* value) const {
  const Address block = BlockPossiblyContaining(key);
  if (block == 0) return false;
  const int leaf = calibrator_.LeafOf(block);
  const int64_t used = PagesUsed(calibrator_.Count(leaf));
  const Address first = FirstPhysicalPage(block);
  for (int64_t i = 0; i < used; ++i) {
    const Page& page = PeekLogical(first + i);
    if (page.empty() || page.MaxKey() < key) continue;
    if (page.MinKey() > key) return false;
    StatusOr<Record> r = page.Find(key);
    if (!r.ok()) return false;
    if (value != nullptr) *value = r->value;
    return true;
  }
  return false;
}

Status ControlBase::Scan(Key lo, Key hi, std::vector<Record>* out) {
  DSF_CHECK(out != nullptr) << "Scan output vector is null";
  if (lo > hi) return Status::OK();
  Address block = calibrator_.FirstNonEmptyPageWithMaxGE(lo);
  if (block == 0) return Status::OK();
  // Reserve once from the calibrator's aggregates instead of growing the
  // vector by doubling while appending. The touched blocks are [block,
  // last]: `last` is the first block whose max key reaches hi (blocks
  // after it hold only keys > hi), or the end of the file when hi is
  // beyond every stored key. CountInRange over that span is an upper
  // bound on the result size — exact except for the boundary records
  // below lo / above hi in the two edge blocks.
  Address last = calibrator_.FirstNonEmptyPageWithMaxGE(hi);
  if (last == 0) last = num_blocks_;
  out->reserve(out->size() +
               static_cast<size_t>(calibrator_.CountInRange(block, last)));
  for (; block <= num_blocks_; ++block) {
    const int leaf = calibrator_.LeafOf(block);
    if (calibrator_.Count(leaf) == 0) continue;
    if (calibrator_.MinKeyOf(leaf) > hi) break;
    StatusOr<std::vector<Record>> records = ReadBlock(block);
    DSF_RETURN_IF_ERROR(records.status());
    for (const Record& r : *records) {
      if (r.key < lo) continue;
      if (r.key > hi) return Status::OK();
      out->push_back(r);
    }
  }
  return Status::OK();
}

StatusOr<std::vector<Record>> ControlBase::ScanAll() {
  std::vector<Record> out;
  DSF_RETURN_IF_ERROR(Scan(0, std::numeric_limits<Key>::max(), &out));
  return out;
}

Cursor ControlBase::NewCursor(Key start) { return Cursor(this, start); }

StatusOr<int64_t> ControlBase::DeleteRange(Key lo, Key hi) {
  if (lo > hi) return static_cast<int64_t>(0);
  BeginCommand(CommandKind::kRange);
  int64_t removed = 0;
  Address first_touched = 0;
  Address last_touched = 0;
  Address block = calibrator_.FirstNonEmptyPageWithMaxGE(lo);
  while (block != 0 && block <= num_blocks_) {
    const int leaf = calibrator_.LeafOf(block);
    if (calibrator_.Count(leaf) == 0 || calibrator_.MinKeyOf(leaf) > hi) {
      break;
    }
    StatusOr<std::vector<Record>> read = ReadBlock(block);
    if (!read.ok()) {
      if (removed > 0) AfterRangeDeletion(first_touched, last_touched);
      return EndCommand(read.status());
    }
    std::vector<Record>& records = *read;
    const auto begin = std::lower_bound(records.begin(), records.end(),
                                        Record{lo, 0}, RecordKeyLess);
    const auto end = std::upper_bound(records.begin(), records.end(),
                                      Record{hi, 0}, RecordKeyLess);
    if (begin != end) {
      removed += end - begin;
      records.erase(begin, end);
      const Status s = WriteBlock(block, records);
      if (first_touched == 0) first_touched = block;
      last_touched = block;
      if (!s.ok()) {
        AfterRangeDeletion(first_touched, last_touched);
        return EndCommand(s);
      }
    }
    block = calibrator_.FirstNonEmptyPageIn(block + 1, num_blocks_);
  }
  if (removed > 0) AfterRangeDeletion(first_touched, last_touched);
  DSF_RETURN_IF_ERROR(EndCommand());
  return removed;
}

Status ControlBase::InsertBatch(const std::vector<Record>& records) {
  for (size_t i = 1; i < records.size(); ++i) {
    if (records[i - 1].key >= records[i].key) {
      return Status::InvalidArgument(
          "batch records must be strictly ascending by key");
    }
  }
  return InsertBatchSorted(records.data(), records.data() + records.size());
}

Status ControlBase::InsertBatchSorted(const Record* begin, const Record* end) {
  if (size() + (end - begin) > MaxRecords()) {
    return Status::CapacityExceeded("batch would exceed N = d*M records");
  }
  for (const Record* r = begin; r != end; ++r) {
    DSF_DCHECK(r == begin || (r - 1)->key < r->key)
        << "InsertBatchSorted caller broke the ascending contract at key "
        << r->key;
    DSF_RETURN_IF_ERROR(Insert(*r));
  }
  return Status::OK();
}

Status ControlBase::RedistributeRangeCrashSafe(Address lo, Address hi) {
  DSF_DCHECK(lo >= 1 && hi <= num_blocks_ && lo <= hi)
      << "redistribution range [" << lo << "," << hi << "] invalid";
  const int64_t range_blocks = hi - lo + 1;
  if (m_redistributions_ != nullptr) m_redistributions_->Increment();
  if (m_redistribution_blocks_ != nullptr) {
    m_redistribution_blocks_->Observe(range_blocks);
  }
  const IoStats span_start = file_.stats();

  // One scratch buffer for the whole reorganization: the read pass
  // appends into it, both write passes hand page-sized slices straight
  // to the pages, and batched SyncLeaves refresh the calibrator.
  std::vector<Record> all;
  for (Address b = calibrator_.FirstNonEmptyPageIn(lo, hi); b != 0;
       b = calibrator_.FirstNonEmptyPageIn(b + 1, hi)) {
    const Status s = ReadBlockInto(b, &all);
    if (!s.ok()) {  // nothing written yet: clean abort
      RecordSpan(SpanKind::kRedistribution, lo, hi,
                 file_.stats() - span_start);
      return s;
    }
  }
  const int64_t n = static_cast<int64_t>(all.size());
  const int64_t capacity = block_size_ * page_D_;

  // Pass 1 — pack left. Block lo takes the first D# records, lo+1 the
  // next D#, and so on. For every block the packed layout ends at or
  // after the old layout's end (records only move left across blocks),
  // so writing blocks left-to-right — with pages inside each block
  // left-to-right, since intra-block content also moves left — never
  // overwrites a record whose new home has not been written yet.
  {
    std::vector<Calibrator::LeafUpdate> leaves;
    leaves.reserve(static_cast<size_t>(range_blocks));
    Status fault = Status::OK();
    int64_t offset = 0;
    for (Address block = lo; block <= hi; ++block) {
      const int64_t end = std::min(n, offset + capacity);
      const Record* b = all.data() + offset;
      const Record* e = all.data() + end;
      fault = WriteBlockPages(block, b, e, BlockWriteOrder::kForward);
      if (!fault.ok()) break;
      leaves.push_back(MakeLeafUpdate(b, e));
      offset = end;
    }
    if (!fault.ok()) {
      ResyncRangeFromRaw(lo, hi);
      RecordSpan(SpanKind::kRedistribution, lo, hi,
                 file_.stats() - span_start);
      return fault;
    }
    calibrator_.SyncLeaves(lo, leaves);
  }

  // Durability point between the passes: every record's packed copy is
  // on the device before the spread starts destroying packed positions.
  // (A no-op without a storage backend, and under a pool mid-command —
  // nothing has reached the device since the last flush.)
  {
    const Status sync = file_.SyncBarrier();
    if (!sync.ok()) {
      RecordSpan(SpanKind::kRedistribution, lo, hi,
                 file_.stats() - span_start);
      return sync;
    }
  }

  // Pass 2 — spread right. The uniform layout never places a record to
  // the left of its packed position, so writing blocks right-to-left —
  // pages inside each block right-to-left, intra-block content moving
  // right as well — duplicates each record into its final home before
  // its packed copy is destroyed.
  {
    std::vector<Calibrator::LeafUpdate> leaves(
        static_cast<size_t>(range_blocks));
    Status fault = Status::OK();
    for (Address block = hi; block >= lo; --block) {
      const int64_t idx = block - lo;
      const Record* b = all.data() + idx * n / range_blocks;
      const Record* e = all.data() + (idx + 1) * n / range_blocks;
      fault = WriteBlockPages(block, b, e, BlockWriteOrder::kBackward);
      if (!fault.ok()) break;
      leaves[static_cast<size_t>(idx)] = MakeLeafUpdate(b, e);
    }
    if (!fault.ok()) {
      ResyncRangeFromRaw(lo, hi);
      RecordSpan(SpanKind::kRedistribution, lo, hi,
                 file_.stats() - span_start);
      return fault;
    }
    calibrator_.SyncLeaves(lo, leaves);
  }
  RecordSpan(SpanKind::kRedistribution, lo, hi, file_.stats() - span_start);
  return Status::OK();
}

Status ControlBase::Compact() {
  BeginCommand(CommandKind::kCompact);
  const Status s = RedistributeRangeCrashSafe(1, num_blocks_);
  if (!s.ok()) {
    return EndCommand(s);
  }
  AfterWholesaleReorganization();
  return EndCommand();
}

StatusOr<RepairReport> ControlBase::CheckAndRepair() {
  RepairReport report;

  // Recovery works from device truth. A live pooled file first tries to
  // land its dirty frames (best effort — with an active fault the writes
  // may be refused), then drops the cache entirely: whatever could not
  // be flushed is treated exactly like RAM lost in a crash. Post-crash
  // callers have already called DiscardCache(), making this a no-op.
  if (pool_ != nullptr) {
    (void)pool_->FlushAll();
    pool_->DropAll();
  }
  // Recovery re-establishes per-command durability; any drain window
  // that was open when the fault hit is over.
  defer_flush_ = false;

  // Phase 1 — CHECK. One unaccounted pass over the raw pages (recovery
  // is an offline scan of the device, outside the per-command cost
  // model). Gather per-block truth and look for crash damage: overfull
  // pages, blocks not packed into a page prefix, broken global order or
  // torn-shift duplicates, stale calibrator leaves.
  std::vector<Calibrator::LeafUpdate> leaves(
      static_cast<size_t>(num_blocks_));
  bool content_clean = true;
  bool have_prev = false;
  Key prev_max = 0;
  for (Address block = 1; block <= num_blocks_; ++block) {
    ++report.blocks_scanned;
    Calibrator::LeafUpdate& u = leaves[static_cast<size_t>(block - 1)];
    const Address first = FirstPhysicalPage(block);
    bool saw_empty = false;
    bool block_ordered = true;
    for (int64_t i = 0; i < block_size_; ++i) {
      const Page& page = file_.Peek(first + i);
      if (page.empty()) {
        saw_empty = true;
        continue;
      }
      if (saw_empty) {
        ++report.packing_violations;
        content_clean = false;
        saw_empty = false;
      }
      if (page.size() > page_D_) {
        ++report.overfull_pages;
        content_clean = false;
      }
      if (!page.WellFormed()) block_ordered = false;
      for (const Record& r : page.records()) {
        if (have_prev && r.key <= prev_max) block_ordered = false;
        prev_max = r.key;
        have_prev = true;
        if (u.count == 0 || r.key < u.min_key) u.min_key = r.key;
        if (u.count == 0 || r.key > u.max_key) u.max_key = r.key;
        ++u.count;
      }
    }
    if (!block_ordered) {
      ++report.misordered_blocks;
      content_clean = false;
    }
    const int leaf = calibrator_.LeafOf(block);
    if (calibrator_.Count(leaf) != u.count ||
        (u.count > 0 && (calibrator_.MinKeyOf(leaf) != u.min_key ||
                         calibrator_.MaxKeyOf(leaf) != u.max_key))) {
      ++report.calibrator_resyncs;
    }
  }

  if (content_clean) {
    // Cheap path: the records on the device are intact; only in-memory
    // state (rank counters, fence keys, warning flags) needs rebuilding.
    calibrator_.SyncLeaves(1, leaves);
    AfterWholesaleReorganization();
    report.warning_state_rebuilt = true;
    // Nothing was rewritten, but a reopen may have left pending device
    // state (e.g. the attach-time load found nothing to fix); the
    // barrier is a cheap no-op then.
    if (ValidateInvariants().ok()) {
      DSF_RETURN_IF_ERROR(file_.SyncBarrier());
      return report;
    }
    // Ordered and duplicate-free but structurally unacceptable (e.g. a
    // crash mid-redistribution left a packed prefix that breaches
    // BALANCE(d,D)): fall through to the wholesale rewrite.
  }

  // Phase 2 — wholesale REPAIR. Gather every surviving record in address
  // order, sort stably by key and drop adjacent duplicates, keeping the
  // first copy. The write-ordering invariants (dest-before-source shifts,
  // pack-then-spread redistribution; docs/FAULTS.md) guarantee duplicate
  // copies of a key carry identical payloads, so which copy survives is
  // immaterial. Then rewrite at uniform density — Theorem 5.5's initial
  // condition — via RawPage: recovery I/O is offline and unaccounted.
  std::vector<Record> all;
  for (Address p = 1; p <= file_.num_pages(); ++p) {
    const Page& page = file_.Peek(p);
    all.insert(all.end(), page.records().begin(), page.records().end());
  }
  std::stable_sort(all.begin(), all.end(), RecordKeyLess);
  const auto unique_end =
      std::unique(all.begin(), all.end(), [](const Record& a, const Record& b) {
        return a.key == b.key;
      });
  report.duplicate_records_dropped = all.end() - unique_end;
  all.erase(unique_end, all.end());

  const int64_t n = static_cast<int64_t>(all.size());
  int64_t offset = 0;
  for (Address block = 1; block <= num_blocks_; ++block) {
    const int64_t end = block * n / num_blocks_;
    const Record* blo = all.data() + offset;
    const Record* bhi = all.data() + end;
    const Address first = FirstPhysicalPage(block);
    int64_t written = 0;
    for (int64_t i = 0; i < block_size_; ++i) {
      // lint:allow(raw-page-io): recovery rewrite is offline, unaccounted.
      Page& page = file_.RawPage(first + i);
      page.Clear();
      const int64_t take = std::min(page_D_, (bhi - blo) - written);
      if (take > 0) {
        page.AppendHigh(blo + written, blo + written + take);
        written += take;
      }
    }
    leaves[static_cast<size_t>(block - 1)] = MakeLeafUpdate(blo, bhi);
    offset = end;
  }
  calibrator_.SyncLeaves(1, leaves);
  AfterWholesaleReorganization();
  report.rewrote_file = true;
  report.warning_state_rebuilt = true;
  DSF_RETURN_IF_ERROR(ValidateInvariants());
  // The repaired image must be durable before the file serves commands
  // again — a second crash must reopen to the repaired state, not to
  // the damage this pass just fixed.
  DSF_RETURN_IF_ERROR(file_.SyncBarrier());
  return report;
}

double ControlBase::ScanEfficiency() const {
  int64_t pages_touched = 0;
  for (Address b = 1; b <= num_blocks_; ++b) {
    pages_touched += PagesUsed(calibrator_.Count(calibrator_.LeafOf(b)));
  }
  if (pages_touched == 0) return 0.0;
  return static_cast<double>(size()) / static_cast<double>(pages_touched);
}

void ControlBase::SetObservability(MetricsRegistry* metrics,
                                   CommandTracer* tracer,
                                   BoundCertifier* certifier,
                                   const std::string& label) {
  metrics_ = metrics;
  tracer_ = tracer;
  certifier_ = certifier;
  metrics_label_ = label;
  m_commands_ = nullptr;
  m_command_accesses_ = nullptr;
  m_command_sim_ns_ = nullptr;
  m_redistributions_ = nullptr;
  m_redistribution_blocks_ = nullptr;
  if (metrics != nullptr) {
    m_commands_ = metrics->FindOrCreateCounter(kMetricCommands, label);
    m_command_accesses_ =
        metrics->FindOrCreateHistogram(kMetricCommandAccesses, label);
    m_command_sim_ns_ =
        metrics->FindOrCreateHistogram(kMetricCommandSimNs, label);
    m_redistributions_ =
        metrics->FindOrCreateCounter(kMetricRedistributions, label);
    m_redistribution_blocks_ =
        metrics->FindOrCreateHistogram(kMetricRedistributionBlocks, label);
  }
  if (certifier != nullptr) {
    certifier->set_violations_counter(
        metrics == nullptr
            ? nullptr
            : metrics->FindOrCreateCounter(kMetricBoundViolations, label));
  }
  if (pool_ != nullptr) {
    if (metrics == nullptr) {
      pool_->SetMetrics(nullptr, nullptr, nullptr, nullptr);
    } else {
      pool_->SetMetrics(
          metrics->FindOrCreateCounter(kMetricPoolHits, label),
          metrics->FindOrCreateCounter(kMetricPoolMisses, label),
          metrics->FindOrCreateCounter(kMetricPoolWritebacks, label),
          metrics->FindOrCreateHistogram(kMetricPoolFlushRunLength, label));
    }
  }
}

void ControlBase::RecordSpan(SpanKind kind, int64_t a, int64_t b,
                             const IoStats& io) {
  if (tracer_ == nullptr) return;
  SpanEvent event;
  event.kind = kind;
  event.seq = command_seq_;
  event.a = a;
  event.b = b;
  event.io = io;
  tracer_->Record(event);
}

void ControlBase::BeginCommand(CommandKind kind) {
  DSF_DCHECK(!in_command_) << "nested command";
  in_command_ = true;
  command_kind_ = kind;
  command_seq_ = command_stats_.commands;
  command_start_stats_ = file_.stats();
}

Status ControlBase::EndCommand() {
  DSF_DCHECK(in_command_) << "EndCommand without BeginCommand";
  in_command_ = false;
  // Flush before the cost snapshot so write-back I/O is charged to the
  // command that dirtied the frames. Command-granularity durability: on
  // return from a successful command, the device holds it in full, so a
  // crash leaves at most the in-flight command unflushed.
  Status flush = Status::OK();
  if (pool_ != nullptr && !defer_flush_) {
    const IoStats pre_flush = file_.stats();
    const BufferPool::Stats pre_pool = pool_->stats();
    flush = pool_->FlushAll();
    if (tracer_ != nullptr) {
      const BufferPool::Stats post_pool = pool_->stats();
      RecordSpan(SpanKind::kFlush,
                 post_pool.flushed_pages - pre_pool.flushed_pages,
                 post_pool.flush_runs - pre_pool.flush_runs,
                 file_.stats() - pre_flush);
    }
  }
  // Command-granularity durability extends to the storage backend: the
  // device write-back above (or the command's direct writes) must be
  // persistent before the command reports success. During a deferred
  // window the barrier moves to EndFlushDeferral with the flush.
  if (!defer_flush_) {
    const Status sync = file_.SyncBarrier();
    if (flush.ok()) flush = sync;
  }
  const IoStats delta = file_.stats() - command_start_stats_;
  const int64_t used = delta.TotalAccesses();
  ++command_stats_.commands;
  command_stats_.last_command_accesses = used;
  command_stats_.max_command_accesses =
      std::max(command_stats_.max_command_accesses, used);
  command_stats_.total_accesses += used;
  if (m_commands_ != nullptr) m_commands_->Increment();
  if (m_command_accesses_ != nullptr) m_command_accesses_->Observe(used);
  if (m_command_sim_ns_ != nullptr) {
    m_command_sim_ns_->Observe(delta.sim_elapsed_ns);
  }
  // The certifier watches *logical* accesses: what the algorithm asked
  // for, independent of cache absorption (see obs/bound_certifier.h).
  if (certifier_ != nullptr) {
    certifier_->Observe(command_kind_, delta.TotalLogical());
  }
  RecordSpan(SpanKind::kCommand, static_cast<int64_t>(command_kind_),
             flush.ok() ? 1 : 0, delta);
  return flush;
}

Status ControlBase::EndCommand(const Status& command_status) {
  const Status flush = EndCommand();
  if (!command_status.ok()) return command_status;
  return flush;
}

Status ControlBase::EndFlushDeferral() {
  defer_flush_ = false;
  if (pool_ == nullptr) return file_.SyncBarrier();
  // Same flush-and-trace shape as EndCommand's per-command flush, run
  // once for the whole deferred window.
  const IoStats pre_flush = file_.stats();
  const BufferPool::Stats pre_pool = pool_->stats();
  Status flush = pool_->FlushAll();
  if (tracer_ != nullptr) {
    const BufferPool::Stats post_pool = pool_->stats();
    RecordSpan(SpanKind::kFlush,
               post_pool.flushed_pages - pre_pool.flushed_pages,
               post_pool.flush_runs - pre_pool.flush_runs,
               file_.stats() - pre_flush);
  }
  const Status sync = file_.SyncBarrier();
  if (flush.ok()) flush = sync;
  return flush;
}

void ControlBase::ResetCommandStats() { command_stats_ = CommandStats(); }

Status ControlBase::ValidateBalance() const {
  for (int v = 0; v < calibrator_.node_count(); ++v) {
    if (!logical_spec_.DensityAtMost(calibrator_.Count(v),
                                     calibrator_.PagesIn(v),
                                     calibrator_.Depth(v), kThirds1)) {
      return Status::Corruption(
          "BALANCE(d,D) violated at node " + std::to_string(v) + ": N=" +
          std::to_string(calibrator_.Count(v)) + " over " +
          std::to_string(calibrator_.PagesIn(v)) + " blocks at depth " +
          std::to_string(calibrator_.Depth(v)));
    }
  }
  return Status::OK();
}

Status ControlBase::ValidateInvariants() const {
  // I1: cardinality bound.
  if (calibrator_.TotalRecords() > MaxRecords()) {
    return Status::Corruption("file exceeds N = d*M records");
  }
  // I2: no physical page above D records (outside a command). Pooled,
  // the logical view (dirty frames over device pages) is what must hold;
  // the device may lag by the unflushed tail of the in-flight command.
  for (Address p = 1; p <= file_.num_pages(); ++p) {
    if (PeekLogical(p).size() > page_D_) {
      return Status::Corruption("page " + std::to_string(p) +
                                " holds more than D records");
    }
  }
  // I3: global key order.
  if (!LogicallyOrdered()) {
    return Status::Corruption("records out of sequential order");
  }
  // I5: calibrator leaves mirror the true block contents, and each block
  // is packed into a prefix of its pages.
  for (Address block = 1; block <= num_blocks_; ++block) {
    const Address first = FirstPhysicalPage(block);
    int64_t count = 0;
    Key min_key = 0;
    Key max_key = 0;
    bool saw_empty = false;
    for (int64_t i = 0; i < block_size_; ++i) {
      const Page& page = PeekLogical(first + i);
      if (page.empty()) {
        saw_empty = true;
        continue;
      }
      if (saw_empty) {
        return Status::Corruption("block " + std::to_string(block) +
                                  " is not prefix-packed");
      }
      if (count == 0) min_key = page.MinKey();
      max_key = page.MaxKey();
      count += page.size();
    }
    const int leaf = calibrator_.LeafOf(block);
    if (calibrator_.Count(leaf) != count) {
      return Status::Corruption("rank counter stale for block " +
                                std::to_string(block));
    }
    if (count > 0 && (calibrator_.MinKeyOf(leaf) != min_key ||
                      calibrator_.MaxKeyOf(leaf) != max_key)) {
      return Status::Corruption("fence keys stale for block " +
                                std::to_string(block));
    }
  }
  return calibrator_.ValidateAggregates();
}

Status ControlBase::BulkLoad(const std::vector<Record>& records) {
  const int64_t n = static_cast<int64_t>(records.size());
  if (n > MaxRecords()) {
    return Status::CapacityExceeded("bulk load exceeds N = d*M records");
  }
  for (size_t i = 1; i < records.size(); ++i) {
    if (records[i - 1].key >= records[i].key) {
      return Status::InvalidArgument(
          "bulk load records must be strictly ascending by key");
    }
  }
  // The load writes the device directly; stale cached frames would
  // shadow it.
  DiscardCache();
  // Uniform-density spread (Theorem 5.5's initial condition): block j of
  // B gets floor((j+1)n/B) - floor(jn/B) records, so any aligned range is
  // within one record per block of the global average.
  std::vector<Calibrator::LeafUpdate> leaves;
  leaves.reserve(static_cast<size_t>(num_blocks_));
  int64_t offset = 0;
  for (Address block = 1; block <= num_blocks_; ++block) {
    const int64_t end = block * n / num_blocks_;
    const Record* lo = records.data() + offset;
    const Record* hi = records.data() + end;
    // Lay out unaccounted: loading is setup, not a measured command.
    const Address first = FirstPhysicalPage(block);
    int64_t written = 0;
    for (int64_t i = 0; i < block_size_; ++i) {
      // lint:allow(raw-page-io): bulk-load layout is setup, unaccounted.
      Page& page = file_.RawPage(first + i);
      page.Clear();
      const int64_t take = std::min(page_D_, (hi - lo) - written);
      if (take > 0) {
        page.AppendHigh(lo + written, lo + written + take);
        written += take;
      }
    }
    leaves.push_back(MakeLeafUpdate(lo, hi));
    offset = end;
  }
  calibrator_.SyncLeaves(1, leaves);
  // Make the load durable before handing the file to commands; the
  // stats reset below keeps setup I/O out of the measured counters.
  DSF_RETURN_IF_ERROR(file_.SyncBarrier());
  file_.ResetStats();
  ResetCommandStats();
  AfterBulkLoad();
  return Status::OK();
}

Status ControlBase::LoadLayout(const std::vector<std::vector<Record>>& per_block) {
  if (static_cast<int64_t>(per_block.size()) != num_blocks_) {
    return Status::InvalidArgument("LoadLayout needs one entry per block");
  }
  int64_t total = 0;
  bool have_prev = false;
  Key prev = 0;
  for (const auto& block : per_block) {
    if (static_cast<int64_t>(block.size()) > block_size_ * page_D_) {
      return Status::InvalidArgument("block exceeds D# records");
    }
    total += static_cast<int64_t>(block.size());
    for (const Record& r : block) {
      if (have_prev && r.key <= prev) {
        return Status::InvalidArgument("LoadLayout keys must ascend");
      }
      prev = r.key;
      have_prev = true;
    }
  }
  if (total > MaxRecords()) {
    return Status::CapacityExceeded("LoadLayout exceeds N = d*M records");
  }
  DiscardCache();
  std::vector<Calibrator::LeafUpdate> leaves;
  leaves.reserve(static_cast<size_t>(num_blocks_));
  for (Address block = 1; block <= num_blocks_; ++block) {
    const std::vector<Record>& slice =
        per_block[static_cast<size_t>(block - 1)];
    const Record* lo = slice.data();
    const Record* hi = slice.data() + slice.size();
    const Address first = FirstPhysicalPage(block);
    int64_t written = 0;
    for (int64_t i = 0; i < block_size_; ++i) {
      // lint:allow(raw-page-io): layout loading is setup, unaccounted.
      Page& page = file_.RawPage(first + i);
      page.Clear();
      const int64_t take = std::min(page_D_, (hi - lo) - written);
      if (take > 0) {
        page.AppendHigh(lo + written, lo + written + take);
        written += take;
      }
    }
    leaves.push_back(MakeLeafUpdate(lo, hi));
  }
  calibrator_.SyncLeaves(1, leaves);
  // Make the load durable before handing the file to commands; the
  // stats reset below keeps setup I/O out of the measured counters.
  DSF_RETURN_IF_ERROR(file_.SyncBarrier());
  file_.ResetStats();
  ResetCommandStats();
  AfterBulkLoad();
  return Status::OK();
}

}  // namespace dsf
