// The calibrator tree — Section 3.
//
// A binary tree over page addresses [1, M]: the root's range is the whole
// file, an internal node with range [lo, hi] splits at mid = (lo+hi)/2
// into [lo, mid] and [mid+1, hi], and leaves cover single pages. Each node
// carries its rank counter N_v (the number of records addressed inside
// RANGE(v)) plus min/max fence keys so key search costs zero page I/O
// (the paper keeps the calibrator in main memory).
//
// The calibrator is shared by CONTROL 1 and CONTROL 2; algorithm-specific
// per-node state (warning flags, DEST pointers) lives with the algorithms,
// indexed by the node ids exposed here.

#ifndef DSF_CORE_CALIBRATOR_H_
#define DSF_CORE_CALIBRATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/record.h"
#include "util/status.h"

namespace dsf {

class Calibrator {
 public:
  // Node ids are dense ints in [0, node_count()); kNoNode marks absence.
  static constexpr int kNoNode = -1;

  explicit Calibrator(int64_t num_pages);

  int64_t num_pages() const { return num_pages_; }
  int node_count() const { return static_cast<int>(nodes_.size()); }
  int root() const { return 0; }

  bool IsLeaf(int v) const { return nodes_[v].left == kNoNode; }
  int Parent(int v) const { return nodes_[v].parent; }
  int Left(int v) const { return nodes_[v].left; }
  int Right(int v) const { return nodes_[v].right; }
  Address RangeLo(int v) const { return nodes_[v].lo; }
  Address RangeHi(int v) const { return nodes_[v].hi; }
  int64_t PagesIn(int v) const { return nodes_[v].hi - nodes_[v].lo + 1; }
  int64_t Depth(int v) const { return nodes_[v].depth; }
  int64_t Count(int v) const { return nodes_[v].count; }
  int64_t TotalRecords() const { return nodes_[0].count; }
  // Fence keys; valid only when Count(v) > 0.
  Key MinKeyOf(int v) const { return nodes_[v].min_key; }
  Key MaxKeyOf(int v) const { return nodes_[v].max_key; }

  // DIR(v): true iff v is the right son of its father. Root is neither;
  // calling this on the root is an error.
  bool IsRightChild(int v) const;

  // The leaf whose range is exactly [page, page].
  int LeafOf(Address page) const;

  // Deepest node whose range contains both a and b (their LCA's id).
  int LowestCommonAncestor(Address a, Address b) const;

  // Refreshes a leaf's counter and fence keys after its page changed, and
  // re-aggregates every ancestor. O(log M), zero page I/O.
  void SyncLeaf(Address page, int64_t count, Key min_key, Key max_key);

  // One leaf's refreshed summary, for SyncLeaves.
  struct LeafUpdate {
    int64_t count = 0;
    Key min_key = 0;
    Key max_key = 0;
  };

  // Batched SyncLeaf over the contiguous pages [first, first+updates.size()):
  // writes every leaf, then re-aggregates each affected ancestor exactly
  // once in a single bottom-up pass — O(range + log M) node visits instead
  // of the O(range * log M) a per-leaf SyncLeaf loop would cost. Used by
  // wholesale rewrites (BulkLoad, LoadLayout, Compact).
  void SyncLeaves(Address first, const std::vector<LeafUpdate>& updates);

  // --- Key search (all in-memory) ---

  // First page p (smallest address) that is non-empty and whose max key is
  // >= key; 0 if no such page. This is the unique page that can contain
  // `key`.
  Address FirstNonEmptyPageWithMaxGE(Key key) const;

  // First / last non-empty page with address in [lo, hi]; 0 if none.
  // These implement SHIFT's SOURCE determination.
  Address FirstNonEmptyPageIn(Address lo, Address hi) const;
  Address LastNonEmptyPageIn(Address lo, Address hi) const;

  // Number of records addressed in [lo, hi].
  int64_t CountInRange(Address lo, Address hi) const;

  // Node ids on the path root -> leaf(page), root first.
  std::vector<int> PathToLeaf(Address page) const;

  // Internal consistency: every internal node's count/fences equal the
  // aggregate of its children.
  Status ValidateAggregates() const;

  std::string DebugString() const;

 private:
  struct Node {
    Address lo = 0;
    Address hi = 0;
    int parent = kNoNode;
    int left = kNoNode;
    int right = kNoNode;
    int64_t depth = 0;
    int64_t count = 0;
    Key min_key = 0;  // valid only when count > 0
    Key max_key = 0;  // valid only when count > 0
  };

  int Build(Address lo, Address hi, int parent, int64_t depth);
  void Reaggregate(int v);
  // Post-order re-aggregation of every internal node whose range meets
  // [lo, hi]; exactly the ancestors of the leaves in [lo, hi].
  void ReaggregateRange(int v, Address lo, Address hi);

  Address FirstNonEmptyIn(int v, Address lo, Address hi) const;
  Address LastNonEmptyIn(int v, Address lo, Address hi) const;
  int64_t CountIn(int v, Address lo, Address hi) const;

  int64_t num_pages_;
  std::vector<Node> nodes_;
  std::vector<int> leaf_of_page_;  // page-1 -> node id
};

}  // namespace dsf

#endif  // DSF_CORE_CALIBRATOR_H_
