// Density thresholds g(v,r) and the BALANCE(d,D) predicate — Section 3.
//
// The paper defines, for a calibrator node v at depth Depth(v) (root has
// depth 0) in a file of M pages with L = ceil(log2 M):
//
//     g(v,r) = d + (Depth(v) + r - 1) / L * (D - d)
//     p(v)   = N_v / M_v
//
// and BALANCE(d,D) requires p(v) <= g(v,1) for every node. CONTROL 2 also
// compares p(v) against g(v,0), g(v,1/3) and g(v,2/3). Every r used by the
// algorithms is a multiple of 1/3, so all comparisons are carried out in
// exact integer arithmetic: with r = r3/3,
//
//     p(v) >= g(v, r3/3)
//       <=>  3*L*N_v >= (3*L*d + (3*Depth(v) + r3 - 3) * (D-d)) * M_v.
//
// DensitySpec packages (M, d, D, L) and exposes these comparisons.

#ifndef DSF_CORE_DENSITY_H_
#define DSF_CORE_DENSITY_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace dsf {

// Thirds used as the r argument of g(v,r).
inline constexpr int kThirds0 = 0;       // r = 0
inline constexpr int kThirds1Of3 = 1;    // r = 1/3
inline constexpr int kThirds2Of3 = 2;    // r = 2/3
inline constexpr int kThirds1 = 3;       // r = 1

class DensitySpec {
 public:
  // M >= 1 pages, 1 <= d < D. Does not require the gap condition (5.1);
  // callers that need it check SatisfiesGapCondition().
  static StatusOr<DensitySpec> Create(int64_t num_pages, int64_t d,
                                      int64_t D);

  int64_t num_pages() const { return num_pages_; }
  int64_t d() const { return d_; }
  int64_t D() const { return D_; }
  // L = ceil(log2 M), floored at 1 so g stays defined for M = 1.
  int64_t L() const { return L_; }
  int64_t MaxRecords() const { return d_ * num_pages_; }  // N = d*M

  // Equation (5.1): D - d > 3 * ceil(log M).
  bool SatisfiesGapCondition() const { return D_ - d_ > 3 * L_; }

  // p >= g(depth, r3/3), i.e. count/pages >= g, exactly.
  bool DensityAtLeast(int64_t count, int64_t pages, int64_t depth,
                      int r3) const;

  // p <= g(depth, r3/3), exactly.
  bool DensityAtMost(int64_t count, int64_t pages, int64_t depth,
                     int r3) const;

  // The smallest k >= 0 such that (count + k) / pages >= g(depth, r3/3);
  // i.e. how many records may stream into the region before SHIFT's stop
  // condition p(x) >= g(x,0) (or any other threshold) fires.
  int64_t MovesUntilAtLeast(int64_t count, int64_t pages, int64_t depth,
                            int r3) const;

  // g(depth, r) as a double, for reporting only — never for decisions.
  double G(int64_t depth, double r) const;

  // A J satisfying (5.2): ceil(safety * L^2 / (D - d)), at least 1.
  // The paper proves safety = 90 adequate and remarks that ~18 suffices
  // in practice; benches E5 measures the true threshold.
  int64_t RecommendedJ(double safety) const;

  std::string ToString() const;

 private:
  DensitySpec(int64_t num_pages, int64_t d, int64_t D, int64_t L)
      : num_pages_(num_pages), d_(d), D_(D), L_(L) {}

  // 3*L*N on the left, (3*L*d + (3*depth + r3 - 3)*(D-d)) * pages on the
  // right; both fit easily in int64 for any laptop-scale file.
  int64_t Lhs(int64_t count) const;
  int64_t Rhs(int64_t pages, int64_t depth, int r3) const;

  int64_t num_pages_;
  int64_t d_;
  int64_t D_;
  int64_t L_;
};

}  // namespace dsf

#endif  // DSF_CORE_DENSITY_H_
