// DenseFile — the public entry point of libdsf.
//
// A (d,D)-dense sequential file over M pages: at most d*M records total,
// at most D records per page, all records in ascending key order across
// consecutive page addresses. Point updates are maintained by Willard's
// CONTROL 2 (worst-case O(log^2 M / (D-d)) page accesses per command) or,
// optionally, by the amortized CONTROL 1.
//
// Quick start:
//
//   dsf::DenseFile::Options options;
//   options.num_pages = 1024;   // M
//   options.d = 16;             // min headroom: file holds <= d*M records
//   options.D = 64;             // page capacity
//   auto file = dsf::DenseFile::Create(options).value();
//   file->Insert(42, 420).ok();
//   std::vector<dsf::Record> out;
//   file->Scan(0, 100, &out).ok();          // stream retrieval, in order
//   file->io_stats().page_reads;            // accounted page accesses
//
// When D - d <= 3*ceil(log M) the gap condition (5.1) fails; Create()
// automatically selects a macro-block size K per Theorem 5.7 (or honors an
// explicit Options::block_size).

#ifndef DSF_CORE_DENSE_FILE_H_
#define DSF_CORE_DENSE_FILE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "core/control_base.h"
#include "ingest/memtable.h"
#include "util/status.h"

namespace dsf {

struct AuditReport;

class DenseFile {
 public:
  enum class Policy {
    kControl2,    // worst-case maintenance (the paper's contribution)
    kControl1,    // amortized maintenance (Section 3 baseline)
    kLocalShift,  // padded-list neighbor shifting: expected O(1) under
                  // uniform updates ([Fr79]/[HKW86]), worst-case O(M)
  };

  struct Options {
    int64_t num_pages = 0;  // M
    int64_t d = 0;          // density floor parameter (capacity = d*M)
    int64_t D = 0;          // page capacity
    Policy policy = Policy::kControl2;
    // SHIFT cycles per command for CONTROL 2; 0 = recommended default.
    int64_t J = 0;
    // Macro-block size K; 0 = choose automatically (1 when the gap
    // condition D-d > 3*ceil(log(M/K)) already holds).
    int64_t block_size = 0;
    // Non-paper insert placement heuristic (see ControlBase::Config).
    bool smart_placement = false;
    // Buffer-pool frames between the algorithms and the device; 0 (the
    // default) disables caching entirely. With a pool, io_stats() splits
    // into logical (requested) and physical (device) accesses, reads hit
    // resident pages for free, and dirty pages are flushed in crash-safe
    // order at the end of each command. See docs/CACHING.md.
    int64_t cache_frames = 0;
    BufferPool::Eviction cache_eviction = BufferPool::Eviction::kClock;
    // Run the full invariant auditor (analysis/auditor.h) after every
    // mutating command that completed without a device fault, surfacing
    // any violation as a Corruption status. O(M) per command — a test
    // and fuzzing harness, not a production setting.
    bool audit_every_command = false;

    // --- Ingest staging (src/ingest/; see docs/INGEST.md) ---
    // Mount a sorted in-memory staging buffer (memtable) in front of the
    // file: point writes land there in zero page accesses and a bounded
    // drain scheduler moves them into the file through ordinary certified
    // commands, one deferred pool flush per step. Reads see the merged
    // view. 0 (default) disables staging entirely. Staged entries are
    // volatile until drained — call FlushStaging() for durability points.
    int64_t staging_entries = 0;
    // Byte-denominated alternative budget (entries * sizeof(StagedEntry));
    // the effective capacity is the smaller of the two set budgets.
    // ShardedDenseFile splits its staging_bytes across shards into this.
    int64_t staging_bytes = 0;
    // Max staged entries applied per drain step; 0 = auto-size so a step
    // of typical inserts stays inside the CONTROL 2 per-command budget
    // K*(4J+2) (the step also stops early when its logical accesses reach
    // that budget — see docs/INGEST.md for the math).
    int64_t drain_batch = 0;

    // --- Durable storage (src/storage/; see docs/STORAGE.md) ---
    // Factory for the durable device behind the page file, called once
    // at Create with the file's physical geometry (num_pages, page
    // capacity D+1). The backend is attached before any data lands, so
    // every device write is persisted in crash-safe order and fdatasync
    // barriers fire at the documented durability points. Null (the
    // default) keeps the file a pure in-memory simulation. Use
    // FileBackend::CreateFactory for a fresh file pair and
    // DenseFile::Open + FileBackend::OpenFactory to reopen one.
    StorageBackendFactory backend_factory;

    // --- Observability (src/obs/; see docs/OBSERVABILITY.md) ---
    // Registry the file publishes its metrics into (commands, per-command
    // access/latency histograms, SHIFT/activation counters, pool hit
    // rates). Null (default) compiles the instrumentation down to cached
    // null-handle checks: IoStats stay byte-identical to an
    // uninstrumented run. The registry must outlive the file.
    MetricsRegistry* metrics = nullptr;
    // Span tracer recording each command's internal phases (SHIFT /
    // SELECT / ACTIVATE / redistribution / flush) with per-phase IoStats
    // deltas. Null disables tracing. Must outlive the file.
    CommandTracer* tracer = nullptr;
    // Attach a live BoundCertifier checking every point command against
    // the Theorem-5.7 access budget K*(4J+2) (see obs/bound_certifier.h).
    // For CONTROL 2 the budget uses the file's resolved J; for other
    // policies the CONTROL 2 envelope at the same geometry — the
    // deamortization comparison bench/obs_certify.cc records.
    bool certify_bound = false;
    // Optional `key="value"` label distinguishing this file's metric
    // series (e.g. `shard="3"`); empty for unlabeled series.
    std::string metrics_label;
  };

  // Validates options and builds the file. All pages start empty (with a
  // backend_factory that loads existing data, the working image holds it
  // but the in-memory calibrator does not — use Open for that path).
  static StatusOr<std::unique_ptr<DenseFile>> Create(const Options& options);

  // The reopen path: Create with a data-bearing backend (e.g.
  // FileBackend::OpenFactory), then CheckAndRepair to rebuild the
  // calibrator and warning state from the loaded pages and repair any
  // crash damage (torn-shift duplicates, unreadable pages). Requires
  // options.backend_factory. What the repair pass found is kept on the
  // file: open_repair_report().
  static StatusOr<std::unique_ptr<DenseFile>> Open(const Options& options);

  // Picks the smallest K >= 1 dividing num_pages with
  // K*(D-d) > 3*ceil(log2(num_pages/K)) — Theorem 5.7's macro-block size.
  // Fails if no divisor of num_pages qualifies.
  static StatusOr<int64_t> AutoBlockSize(int64_t num_pages, int64_t d,
                                         int64_t D);

  // --- Updates ---
  Status Insert(Key key, Value value) { return Insert(Record{key, value}); }
  Status Insert(const Record& record);
  Status Delete(Key key);

  // --- Queries (staging-aware: the merged view when staging is on) ---
  // The read surface is const: logically read-only, mutating only the
  // atomic access counters and the mutex-protected buffer pool, so any
  // number of threads may read concurrently as long as no writer runs
  // (enforced by the owner's reader-writer lock — see
  // shard/sharded_dense_file.h and docs/CONCURRENCY.md).
  StatusOr<Value> Get(Key key) const;
  bool Contains(Key key) const;
  // Stream retrieval: all records with lo <= key <= hi, in key order,
  // touching consecutive page addresses. With staging, a two-way merge of
  // the staged entries and the file with tombstone suppression.
  Status Scan(Key lo, Key hi, std::vector<Record>* out) const;
  StatusOr<std::vector<Record>> ScanAll() const;
  // Streaming retrieval: records with key >= start, one block buffered at
  // a time (see core/cursor.h for the iterator contract, including the
  // staged-overlay merge). While any cursor from this file is alive, the
  // piggyback drain scheduler is suspended (MaybeDrain no-ops and
  // staging_wants_drain() reports false): a drain moves staged entries
  // into the file mid-iteration, and the SHIFTs it triggers can push
  // records forward across the cursor's block frontier — visiting them
  // twice. Explicit DrainStep()/FlushStaging() calls and the force-drain
  // of a completely full staging buffer are not suspended; callers that
  // invoke those with live cursors accept the consequences.
  Cursor NewCursor(Key start = 0) const;

  // Lock-free point-lookup attempt for the epoch read path
  // (docs/CONCURRENCY.md): answers POSITIVE hits only, served from the
  // buffer pool's stable resident frames, and only while the staging
  // buffer is observably empty (a staged tombstone or update must win
  // over the durable twin, which requires the locked merged view).
  // Callable without any external lock, concurrently with a writer.
  // Returns true and fills *value on a hit; false means "unanswerable
  // here — take the locked path", never "absent".
  bool TryEpochGet(Key key, Value* value) const;

  // --- Range / bulk operations ---
  // Removes all records in [lo, hi]; returns how many records were
  // visible in the merged view (staged inserts in range die in place,
  // staged tombstones were already hidden).
  StatusOr<int64_t> DeleteRange(Key lo, Key hi);
  // Inserts strictly-ascending records one command at a time. Batch paths
  // drain the staging buffer first so duplicate/capacity checks run
  // against the full merged state.
  Status InsertBatch(const std::vector<Record>& records);
  // Trusted fast path: records in [begin, end) must be strictly
  // ascending and duplicate-free (DCHECKed only) — skips InsertBatch's
  // O(n) validation and lets callers pass a window of a larger buffer
  // without a defensive copy. See ControlBase::InsertBatchSorted.
  Status InsertBatchSorted(const Record* begin, const Record* end);
  // Explicit O(M) reorganization to uniform density — Theorem 5.5's
  // initial condition, restoring even insert headroom after skew.
  Status Compact();
  // Packing diagnostic: mean records per scan-touched page.
  double ScanEfficiency() const { return control_->ScanEfficiency(); }

  // --- Loading ---
  // Records must ascend strictly by key; spread at uniform density.
  Status BulkLoad(const std::vector<Record>& records);

  // --- Ingest staging (src/ingest/; see docs/INGEST.md) ---
  bool staging_enabled() const { return staging_ != nullptr; }
  // Entries currently staged (volatile until drained).
  int64_t staging_size() const {
    return staging_ == nullptr ? 0 : staging_->size();
  }
  // Counters for the staging layer (puts/hits/annihilations/drains), with
  // `entries` refreshed to the current gauge value.
  StagingStats staging_stats() const;
  // The resolved per-step entry cap and logical-access budget (0 when
  // staging is off). Every drain step stops at whichever it hits first;
  // each drained entry is still an individually certified command.
  int64_t drain_batch() const { return drain_batch_; }
  int64_t drain_access_budget() const { return drain_access_budget_; }
  // Fill level at which the piggyback scheduler starts draining.
  int64_t drain_trigger() const { return drain_trigger_; }
  // True when the buffer has reached the trigger fill — the signal
  // ShardedDenseFile's drain-on-rotate uses to spend a foreign command's
  // piggyback budget here (draining below the trigger would defeat the
  // batching that makes staging pay).
  bool staging_wants_drain() const {
    return staging_ != nullptr && live_cursors() == 0 &&
           staging_->size() >= drain_trigger_;
  }
  // Cursors currently alive from NewCursor (piggyback drains are
  // suspended while nonzero — see NewCursor).
  int64_t live_cursors() const {
    return live_cursors_.load(std::memory_order_acquire);
  }

  // --- Tuning actuators (tune/controller.h; see docs/TUNING.md) ---
  // All take effect on the next command and must be called between
  // commands (the controller holds the shard writer lock). Each keeps
  // the certifier envelope and the drain budgets consistent with the
  // installed value — the safety invariant is that the budget being
  // enforced always matches the live (K, J).
  //
  // Retargets CONTROL 2's SHIFT cycles per command. Theorem 5.5 needs
  // J >= the resolved default, so j below the file's open-time J (or
  // j < 1, or a non-CONTROL-2 policy) is InvalidArgument. Recomputes
  // the certifier budget K*(4j+2) and the auto drain budgets.
  Status SetMaintenanceJ(int64_t j);
  // The J the certifier envelope is currently evaluated at (the file's
  // resolved J for CONTROL 2, the recommended J otherwise).
  int64_t maintenance_j() const { return certified_j_; }
  // The open-time resolved J — the floor below which SetMaintenanceJ
  // refuses to tune (Theorem 5.5's guarantee).
  int64_t maintenance_j_floor() const { return default_j_; }
  // Retargets the per-drain-step entry cap; 0 restores the auto default
  // max(4, budget/(4K)). No-op when staging is off. The trigger fill
  // follows (max(batch, capacity/2)).
  void SetDrainBatch(int64_t batch);
  // Retargets the staging buffer's entry capacity (Memtable::SetCapacity
  // clamping applies); returns the capacity installed, 0 when staging is
  // off. The trigger fill follows.
  int64_t SetStagingCapacity(int64_t entries);
  // Grows or shrinks the buffer pool (BufferPool::Resize contract);
  // FailedPrecondition when caching is off.
  Status ResizeCache(int64_t new_frames);
  // Lock-free staging occupancy gauge for the epoch read path: the
  // occupancy as of the last completed staging mutation. May lag the
  // true size mid-command, but only in ways an epoch read may ignore:
  // a nonzero stale value merely forces a fallback, and a zero read
  // concurrent with a writer staging its first entry linearizes the
  // lookup before that still-incomplete command (docs/CONCURRENCY.md).
  int64_t staging_size_relaxed() const {
    return staging_gauge_.load(std::memory_order_acquire);
  }
  // One bounded drain step: moves at most drain_batch() staged entries
  // into the file through ordinary commands sharing one deferred pool
  // flush, stopping early at the access budget. No-op when staging is
  // off or empty. The scheduler calls this automatically on every
  // mutating command once the buffer passes its trigger fill.
  Status DrainStep();
  // Drains everything staged (a sequence of bounded steps) — the
  // staging layer's durability point.
  Status FlushStaging();
  // Drops every staged entry without draining — the RAM-loss half of a
  // simulated crash (staging is volatile); pair with DiscardCache().
  void DiscardStaging();
  // The staging memtable, or nullptr when staging is off. Read-only; for
  // the auditor, shard boundary checks and tests.
  const Memtable* staging() const { return staging_.get(); }

  // --- Introspection ---
  // Merged record count: durable records plus staged inserts minus
  // staged tombstones.
  int64_t size() const {
    return control_->size() + (staging_ == nullptr ? 0 : staging_->net_size());
  }
  bool empty() const { return size() == 0; }
  int64_t capacity() const { return control_->MaxRecords(); }  // d*M
  int64_t num_pages() const { return control_->file().num_pages(); }
  int64_t block_size() const { return control_->block_size(); }
  // By value: the underlying tracker counters are atomics (readable
  // concurrently with writers); there is no stable IoStats to reference.
  IoStats io_stats() const { return control_->file().stats(); }
  void ResetIoStats() { control_->file().ResetStats(); }
  // Whether a buffer pool is interposed (cache_frames > 0).
  bool cache_enabled() const { return control_->pool() != nullptr; }
  // Current pool frame count (the ResizeCache actuator's gauge); 0 when
  // caching is disabled.
  int64_t cache_frames() const {
    return cache_enabled() ? control_->pool()->num_frames() : 0;
  }
  // Currently dirty pool frames (0 when no pool) — the tuning
  // controller's donor-selection signal: shrinking a dirty pool forces
  // a safe-order flush, shrinking a clean one is free.
  int64_t cache_dirty_frames() const {
    return cache_enabled() ? control_->pool()->dirty_pages() : 0;
  }
  // Pool counters (hits, misses, write combines, flush runs); zeroes
  // when caching is disabled.
  BufferPool::Stats cache_stats() const {
    return cache_enabled() ? control_->pool()->stats() : BufferPool::Stats();
  }
  void ResetCacheStats() {
    if (cache_enabled()) control_->pool()->ResetStats();
  }
  const CommandStats& command_stats() const {
    return control_->command_stats();
  }
  void ResetCommandStats() { control_->ResetCommandStats(); }
  std::string PolicyName() const { return control_->Name(); }

  // Full structural + algorithmic invariant sweep (O(M); for tests).
  // With staging, also checks the memtable's order/count invariants (the
  // staged-vs-file membership half needs page walks and lives in Audit).
  Status ValidateInvariants() const;

  // Full invariant audit with a typed report of every violation found
  // (violation kind, page address, calibrator node, expected vs. found).
  // Unaccounted, read-only; see analysis/auditor.h for the catalog.
  AuditReport Audit() const;

  // --- Fault injection & recovery ---
  // Installs (or clears) a deterministic fault schedule on the page store;
  // see storage/fault_injection.h. After any command errors with IoError,
  // run CheckAndRepair() before issuing further commands.
  void set_fault_policy(std::shared_ptr<FaultPolicy> policy) {
    control_->file().set_fault_policy(std::move(policy));
  }
  // Full durability point: drains the staging buffer, then writes all
  // dirty cached pages to the device. Commands already flush the pool at
  // their end (or at each drain step's end inside a deferral window).
  Status Flush();
  // Simulates the RAM half of a crash: every cached frame (including
  // dirty ones) is dropped without write-back, leaving only what the
  // device holds. Follow with CheckAndRepair(), exactly as after an
  // injected device crash.
  void DiscardCache() { control_->DiscardCache(); }
  // Post-crash recovery: rebuilds the calibrator and algorithm state from
  // the raw pages, repairing torn-command damage (duplicates, broken
  // order) by a wholesale uniform rewrite when needed. On success the
  // file passes ValidateInvariants() (and, with audit_every_command, a
  // full Audit()). See ControlBase::CheckAndRepair.
  StatusOr<RepairReport> CheckAndRepair();

  // --- Durable storage (null/empty without a backend_factory) ---
  // The attached backend, or nullptr for a pure in-memory file.
  StorageBackend* storage_backend() const {
    return control_->file().backend();
  }
  // What the Open-time CheckAndRepair found (all-zero for Create, or for
  // an Open of an undamaged file).
  const RepairReport& open_repair_report() const {
    return open_repair_report_;
  }
  // Pages whose device slot failed integrity checks when the backend was
  // attached (their records were dropped by the open-time repair).
  const std::vector<Address>& corrupt_pages_at_open() const {
    return control_->file().corrupt_pages_at_open();
  }

  // The options the file was created with (block_size resolved).
  const Options& options() const { return options_; }

  // The live bound certificate, or nullptr when certify_bound is off.
  // report().ok() means no command has exceeded the budget so far.
  const BoundReport* bound_report() const {
    return certifier_ == nullptr ? nullptr : &certifier_->report();
  }
  // The per-command logical-access budget being enforced; 0 when
  // certification is off.
  int64_t bound_budget() const {
    return certifier_ == nullptr ? 0 : certifier_->budget();
  }

  // Escape hatch for benches and tests needing algorithm internals.
  ControlBase& control() { return *control_; }
  const ControlBase& control() const { return *control_; }

 private:
  DenseFile(const Options& options, std::unique_ptr<ControlBase> control)
      : options_(options), control_(std::move(control)) {}

  // The audit_every_command hook: passes `s` through, and when auditing
  // is on and `s` is not a device fault (a faulted command legitimately
  // leaves the file out of invariants until CheckAndRepair), runs a full
  // audit and surfaces its verdict (the command's own error wins).
  Status MaybeAudit(Status s) const;

  // --- Staging internals (docs/INGEST.md) ---
  // The per-key state machine: classifies the key against staged entries
  // and (one accounted probe) the durable file, then stages the mutation.
  Status StageInsert(const Record& record);
  Status StageDelete(Key key);
  // The piggyback trigger: runs a drain step once the buffer holds
  // drain_trigger_ entries.
  Status MaybeDrain();
  // DrainStep/FlushStaging minus the audit hook (callers inside a
  // command path audit once, at their own exit).
  Status DrainStepInternal();
  Status FlushStagingInternal();
  // Applies one staged entry as ordinary certified command(s): kInsert →
  // Insert, kTombstone → Delete, kUpdate → Delete then Insert.
  Status ApplyStaged(const StagedEntry& entry);
  // Drains the first staged tombstone to free a durable slot when a
  // drained insert hits N = d*M (the merged-capacity accounting
  // guarantees one exists).
  Status ApplyFirstTombstone();
  // Makes room for one more staged entry, force-draining when full.
  Status EnsureStagingRoom();
  // Re-derives drain_batch_/drain_trigger_/drain_access_budget_ from the
  // current (K, J) and staging capacity, honoring an explicit batch
  // override; syncs the certifier envelope (BoundCertifier::Recalibrate)
  // when `recalibrate` and one is attached.
  void SyncTuningDerivedState(bool recalibrate);
  // Post-repair reconciliation: a drain step that died mid-apply may
  // have committed some entries (or the delete half of an update);
  // re-classify every staged entry against the repaired file so the
  // kind invariants hold again. Unaccounted (PeekContains).
  void ReconcileStagingWithFile();
  void BumpPut();
  // Const: shared-lock readers bump the hit counter concurrently, so it
  // lives in an atomic (staging_hits_) merged into staging_stats().
  void BumpHit(int64_t n = 1) const;
  void SyncStagingGauge();

  Options options_;
  std::unique_ptr<ControlBase> control_;
  // Filled by Open (zero for Create): the open-time repair verdict.
  RepairReport open_repair_report_;
  // Owned certifier (certify_bound only); fed by ControlBase::EndCommand
  // through the raw pointer installed via SetObservability.
  std::unique_ptr<BoundCertifier> certifier_;

  // Ingest staging (null when staging_entries == 0). drain_trigger_ is
  // the fill level at which MaybeDrain runs a step: max(drain_batch,
  // capacity/2), leaving headroom so forced whole-buffer drains are rare.
  std::unique_ptr<Memtable> staging_;
  int64_t drain_batch_ = 0;
  int64_t drain_trigger_ = 0;
  int64_t drain_access_budget_ = 0;
  // The J the Theorem-5.7 envelope is evaluated at (see Create and
  // SetMaintenanceJ); drives the certifier budget and drain budgets.
  int64_t certified_j_ = 0;
  // Open-time resolved J — the floor SetMaintenanceJ may never tune
  // below (Theorem 5.5's guarantee needs at least the recommended J).
  int64_t default_j_ = 0;
  // Nonzero = an explicit drain-batch override (Options::drain_batch or
  // SetDrainBatch); 0 = auto-derive from the access budget.
  int64_t drain_batch_override_ = 0;
  mutable StagingStats staging_stats_;
  // Staging read hits, split out of staging_stats_ because shared-lock
  // readers increment it concurrently (staging_stats() merges it back).
  mutable std::atomic<int64_t> staging_hits_{0};
  // Published staging occupancy (see staging_size_relaxed).
  std::atomic<int64_t> staging_gauge_{0};
  // Cursors alive from NewCursor; piggyback drains suspend while > 0.
  // Mutable: opening a cursor is a logically-const read operation.
  mutable std::atomic<int64_t> live_cursors_{0};

  // Cached staging metric handles (null without a registry).
  Counter* m_staging_puts_ = nullptr;
  Counter* m_staging_hits_ = nullptr;
  Counter* m_staging_annihilations_ = nullptr;
  Counter* m_staging_drain_steps_ = nullptr;
  Counter* m_staging_drained_ = nullptr;
  Gauge* m_staging_entries_ = nullptr;
};

}  // namespace dsf

#endif  // DSF_CORE_DENSE_FILE_H_
