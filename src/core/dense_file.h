// DenseFile — the public entry point of libdsf.
//
// A (d,D)-dense sequential file over M pages: at most d*M records total,
// at most D records per page, all records in ascending key order across
// consecutive page addresses. Point updates are maintained by Willard's
// CONTROL 2 (worst-case O(log^2 M / (D-d)) page accesses per command) or,
// optionally, by the amortized CONTROL 1.
//
// Quick start:
//
//   dsf::DenseFile::Options options;
//   options.num_pages = 1024;   // M
//   options.d = 16;             // min headroom: file holds <= d*M records
//   options.D = 64;             // page capacity
//   auto file = dsf::DenseFile::Create(options).value();
//   file->Insert(42, 420).ok();
//   std::vector<dsf::Record> out;
//   file->Scan(0, 100, &out).ok();          // stream retrieval, in order
//   file->io_stats().page_reads;            // accounted page accesses
//
// When D - d <= 3*ceil(log M) the gap condition (5.1) fails; Create()
// automatically selects a macro-block size K per Theorem 5.7 (or honors an
// explicit Options::block_size).

#ifndef DSF_CORE_DENSE_FILE_H_
#define DSF_CORE_DENSE_FILE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/control_base.h"
#include "util/status.h"

namespace dsf {

struct AuditReport;

class DenseFile {
 public:
  enum class Policy {
    kControl2,    // worst-case maintenance (the paper's contribution)
    kControl1,    // amortized maintenance (Section 3 baseline)
    kLocalShift,  // padded-list neighbor shifting: expected O(1) under
                  // uniform updates ([Fr79]/[HKW86]), worst-case O(M)
  };

  struct Options {
    int64_t num_pages = 0;  // M
    int64_t d = 0;          // density floor parameter (capacity = d*M)
    int64_t D = 0;          // page capacity
    Policy policy = Policy::kControl2;
    // SHIFT cycles per command for CONTROL 2; 0 = recommended default.
    int64_t J = 0;
    // Macro-block size K; 0 = choose automatically (1 when the gap
    // condition D-d > 3*ceil(log(M/K)) already holds).
    int64_t block_size = 0;
    // Non-paper insert placement heuristic (see ControlBase::Config).
    bool smart_placement = false;
    // Buffer-pool frames between the algorithms and the device; 0 (the
    // default) disables caching entirely. With a pool, io_stats() splits
    // into logical (requested) and physical (device) accesses, reads hit
    // resident pages for free, and dirty pages are flushed in crash-safe
    // order at the end of each command. See docs/CACHING.md.
    int64_t cache_frames = 0;
    BufferPool::Eviction cache_eviction = BufferPool::Eviction::kClock;
    // Run the full invariant auditor (analysis/auditor.h) after every
    // mutating command that completed without a device fault, surfacing
    // any violation as a Corruption status. O(M) per command — a test
    // and fuzzing harness, not a production setting.
    bool audit_every_command = false;

    // --- Observability (src/obs/; see docs/OBSERVABILITY.md) ---
    // Registry the file publishes its metrics into (commands, per-command
    // access/latency histograms, SHIFT/activation counters, pool hit
    // rates). Null (default) compiles the instrumentation down to cached
    // null-handle checks: IoStats stay byte-identical to an
    // uninstrumented run. The registry must outlive the file.
    MetricsRegistry* metrics = nullptr;
    // Span tracer recording each command's internal phases (SHIFT /
    // SELECT / ACTIVATE / redistribution / flush) with per-phase IoStats
    // deltas. Null disables tracing. Must outlive the file.
    CommandTracer* tracer = nullptr;
    // Attach a live BoundCertifier checking every point command against
    // the Theorem-5.7 access budget K*(4J+2) (see obs/bound_certifier.h).
    // For CONTROL 2 the budget uses the file's resolved J; for other
    // policies the CONTROL 2 envelope at the same geometry — the
    // deamortization comparison bench/obs_certify.cc records.
    bool certify_bound = false;
    // Optional `key="value"` label distinguishing this file's metric
    // series (e.g. `shard="3"`); empty for unlabeled series.
    std::string metrics_label;
  };

  // Validates options and builds the file. All pages start empty.
  static StatusOr<std::unique_ptr<DenseFile>> Create(const Options& options);

  // Picks the smallest K >= 1 dividing num_pages with
  // K*(D-d) > 3*ceil(log2(num_pages/K)) — Theorem 5.7's macro-block size.
  // Fails if no divisor of num_pages qualifies.
  static StatusOr<int64_t> AutoBlockSize(int64_t num_pages, int64_t d,
                                         int64_t D);

  // --- Updates ---
  Status Insert(Key key, Value value) { return Insert(Record{key, value}); }
  Status Insert(const Record& record);
  Status Delete(Key key);

  // --- Queries ---
  StatusOr<Value> Get(Key key);
  bool Contains(Key key) { return control_->Contains(key); }
  // Stream retrieval: all records with lo <= key <= hi, in key order,
  // touching consecutive page addresses.
  Status Scan(Key lo, Key hi, std::vector<Record>* out) {
    return control_->Scan(lo, hi, out);
  }
  StatusOr<std::vector<Record>> ScanAll() { return control_->ScanAll(); }
  // Streaming retrieval: records with key >= start, one block buffered at
  // a time (see core/cursor.h for the iterator contract).
  Cursor NewCursor(Key start = 0) { return control_->NewCursor(start); }

  // --- Range / bulk operations ---
  // Removes all records in [lo, hi]; returns how many. One command, cost
  // proportional to the blocks touched.
  StatusOr<int64_t> DeleteRange(Key lo, Key hi);
  // Inserts strictly-ascending records one command at a time.
  Status InsertBatch(const std::vector<Record>& records);
  // Explicit O(M) reorganization to uniform density — Theorem 5.5's
  // initial condition, restoring even insert headroom after skew.
  Status Compact();
  // Packing diagnostic: mean records per scan-touched page.
  double ScanEfficiency() const { return control_->ScanEfficiency(); }

  // --- Loading ---
  // Records must ascend strictly by key; spread at uniform density.
  Status BulkLoad(const std::vector<Record>& records);

  // --- Introspection ---
  int64_t size() const { return control_->size(); }
  bool empty() const { return size() == 0; }
  int64_t capacity() const { return control_->MaxRecords(); }  // d*M
  int64_t num_pages() const { return control_->file().num_pages(); }
  int64_t block_size() const { return control_->block_size(); }
  const IoStats& io_stats() const { return control_->file().stats(); }
  void ResetIoStats() { control_->file().ResetStats(); }
  // Whether a buffer pool is interposed (cache_frames > 0).
  bool cache_enabled() const { return control_->pool() != nullptr; }
  // Pool counters (hits, misses, write combines, flush runs); zeroes
  // when caching is disabled.
  BufferPool::Stats cache_stats() const {
    return cache_enabled() ? control_->pool()->stats() : BufferPool::Stats();
  }
  void ResetCacheStats() {
    if (cache_enabled()) control_->pool()->ResetStats();
  }
  const CommandStats& command_stats() const {
    return control_->command_stats();
  }
  void ResetCommandStats() { control_->ResetCommandStats(); }
  std::string PolicyName() const { return control_->Name(); }

  // Full structural + algorithmic invariant sweep (O(M); for tests).
  Status ValidateInvariants() const { return control_->ValidateInvariants(); }

  // Full invariant audit with a typed report of every violation found
  // (violation kind, page address, calibrator node, expected vs. found).
  // Unaccounted, read-only; see analysis/auditor.h for the catalog.
  AuditReport Audit() const;

  // --- Fault injection & recovery ---
  // Installs (or clears) a deterministic fault schedule on the page store;
  // see storage/fault_injection.h. After any command errors with IoError,
  // run CheckAndRepair() before issuing further commands.
  void set_fault_policy(std::shared_ptr<FaultPolicy> policy) {
    control_->file().set_fault_policy(std::move(policy));
  }
  // Writes all dirty cached pages to the device (no-op without a pool).
  // Commands already flush at their end; this is for explicit durability
  // points.
  Status Flush() { return control_->Flush(); }
  // Simulates the RAM half of a crash: every cached frame (including
  // dirty ones) is dropped without write-back, leaving only what the
  // device holds. Follow with CheckAndRepair(), exactly as after an
  // injected device crash.
  void DiscardCache() { control_->DiscardCache(); }
  // Post-crash recovery: rebuilds the calibrator and algorithm state from
  // the raw pages, repairing torn-command damage (duplicates, broken
  // order) by a wholesale uniform rewrite when needed. On success the
  // file passes ValidateInvariants() (and, with audit_every_command, a
  // full Audit()). See ControlBase::CheckAndRepair.
  StatusOr<RepairReport> CheckAndRepair();

  // The options the file was created with (block_size resolved).
  const Options& options() const { return options_; }

  // The live bound certificate, or nullptr when certify_bound is off.
  // report().ok() means no command has exceeded the budget so far.
  const BoundReport* bound_report() const {
    return certifier_ == nullptr ? nullptr : &certifier_->report();
  }
  // The per-command logical-access budget being enforced; 0 when
  // certification is off.
  int64_t bound_budget() const {
    return certifier_ == nullptr ? 0 : certifier_->budget();
  }

  // Escape hatch for benches and tests needing algorithm internals.
  ControlBase& control() { return *control_; }
  const ControlBase& control() const { return *control_; }

 private:
  DenseFile(const Options& options, std::unique_ptr<ControlBase> control)
      : options_(options), control_(std::move(control)) {}

  // The audit_every_command hook: passes `s` through, and when auditing
  // is on and `s` is not a device fault (a faulted command legitimately
  // leaves the file out of invariants until CheckAndRepair), runs a full
  // audit and surfaces its verdict (the command's own error wins).
  Status MaybeAudit(Status s) const;

  Options options_;
  std::unique_ptr<ControlBase> control_;
  // Owned certifier (certify_bound only); fed by ControlBase::EndCommand
  // through the raw pointer installed via SetObservability.
  std::unique_ptr<BoundCertifier> certifier_;
};

}  // namespace dsf

#endif  // DSF_CORE_DENSE_FILE_H_
