#include "core/control2.h"

#include <algorithm>
#include <limits>

#include "obs/metric_names.h"
#include "util/check.h"

namespace dsf {

StatusOr<std::unique_ptr<Control2>> Control2::Create(const Options& options) {
  StatusOr<DensitySpec> spec = MakeLogicalSpec(options.config);
  if (!spec.ok()) return spec.status();
  if (!spec->SatisfiesGapCondition() &&
      !options.allow_gap_violation_for_testing) {
    return Status::InvalidArgument(
        "CONTROL 2 requires D - d > 3*ceil(log M); raise block_size "
        "(Theorem 5.7) to lift a small gap above the threshold");
  }
  if (options.J < 0) {
    return Status::InvalidArgument("J must be non-negative");
  }
  if (options.lower_threshold_thirds != kThirds1Of3 &&
      options.lower_threshold_thirds != kThirds2Of3) {
    return Status::InvalidArgument(
        "lower_threshold_thirds must be 1/3 or 2/3");
  }
  const int64_t j =
      options.J > 0 ? options.J : spec->RecommendedJ(kDefaultJSafety);
  return std::unique_ptr<Control2>(new Control2(options, *spec, j));
}

Control2::Control2(const Options& options, DensitySpec logical_spec,
                   int64_t j)
    : ControlBase(options.config, logical_spec), options_(options), j_(j) {
  const size_t n = static_cast<size_t>(calibrator_.node_count());
  warning_.assign(n, 0);
  dest_.assign(n, 0);
  warn_count_subtree_.assign(n, 0);
  warn_max_depth_subtree_.assign(n, -1);
  if (options_.track_episodes) {
    open_by_node_.assign(n, WarningEpisode{});
    open_flag_.assign(n, 0);
  }
}

void Control2::SetObservability(MetricsRegistry* metrics,
                                CommandTracer* tracer,
                                BoundCertifier* certifier,
                                const std::string& label) {
  ControlBase::SetObservability(metrics, tracer, certifier, label);
  m_shifts_ = nullptr;
  m_shift_records_ = nullptr;
  m_activations_ = nullptr;
  m_warnings_lowered_ = nullptr;
  if (metrics != nullptr) {
    m_shifts_ = metrics->FindOrCreateCounter(kMetricShifts, label);
    m_shift_records_ =
        metrics->FindOrCreateCounter(kMetricShiftRecords, label);
    m_activations_ = metrics->FindOrCreateCounter(kMetricActivations, label);
    m_warnings_lowered_ =
        metrics->FindOrCreateCounter(kMetricWarningsLowered, label);
  }
}

void Control2::SetMaintenanceJ(int64_t j) {
  DSF_CHECK(j >= 1) << "CONTROL 2 needs at least one SHIFT cycle, got " << j;
  j_ = j;
}

int64_t Control2::ViolationBudget(int64_t pages) const {
  return j_ * (pages * (logical_spec_.D() - logical_spec_.d()) /
               (3 * logical_spec_.L()));
}

void Control2::NotifyStable(StablePoint point, int64_t cycle) {
  if (step_callback_) step_callback_(point, cycle);
}

void Control2::SetWarning(int v, bool on) {
  if ((warning_[v] != 0) == on) return;
  warning_[v] = on ? 1 : 0;
  if (options_.track_episodes) {
    if (on) {
      WarningEpisode episode;
      episode.node = v;
      episode.depth = calibrator_.Depth(v);
      episode.pages = calibrator_.PagesIn(v);
      open_by_node_[static_cast<size_t>(v)] = episode;
      open_flag_[static_cast<size_t>(v)] = 1;
    } else if (open_flag_[static_cast<size_t>(v)] != 0) {
      episodes_.push_back(open_by_node_[static_cast<size_t>(v)]);
      open_flag_[static_cast<size_t>(v)] = 0;
    }
  }
  // Re-aggregate v and its ancestors.
  for (int a = v; a != Calibrator::kNoNode; a = calibrator_.Parent(a)) {
    int64_t count = warning_[a] ? 1 : 0;
    int64_t max_depth = warning_[a] ? calibrator_.Depth(a) : -1;
    if (!calibrator_.IsLeaf(a)) {
      const int l = calibrator_.Left(a);
      const int r = calibrator_.Right(a);
      count += warn_count_subtree_[l] + warn_count_subtree_[r];
      max_depth = std::max({max_depth, warn_max_depth_subtree_[l],
                            warn_max_depth_subtree_[r]});
    }
    warn_count_subtree_[a] = count;
    warn_max_depth_subtree_[a] = max_depth;
  }
}

void Control2::LowerIfCalm(int v) {
  if (warning_[v] == 0) return;
  if (logical_spec_.DensityAtMost(calibrator_.Count(v),
                                  calibrator_.PagesIn(v),
                                  calibrator_.Depth(v),
                                  options_.lower_threshold_thirds)) {
    SetWarning(v, false);
    ++stats_.warnings_lowered;
    if (m_warnings_lowered_ != nullptr) m_warnings_lowered_->Increment();
  }
}

void Control2::CheckLowerOnPath(Address block) {
  for (const int v : calibrator_.PathToLeaf(block)) LowerIfCalm(v);
}

void Control2::CheckRaiseOnPath(Address block) {
  for (const int v : calibrator_.PathToLeaf(block)) {
    if (v == calibrator_.root()) continue;  // the root never warns
    if (warning_[v] == 0 &&
        logical_spec_.DensityAtLeast(calibrator_.Count(v),
                                     calibrator_.PagesIn(v),
                                     calibrator_.Depth(v), kThirds2Of3)) {
      Activate(v);
    }
  }
}

void Control2::Activate(int w) {
  DSF_DCHECK(w != calibrator_.root()) << "root must not be activated";
  ++stats_.activations;
  if (m_activations_ != nullptr) m_activations_->Increment();
  // Step 1: raise w.
  SetWarning(w, true);
  const int fw = calibrator_.Parent(w);
  const Address fw_lo = calibrator_.RangeLo(fw);
  const Address fw_hi = calibrator_.RangeHi(fw);
  // Step 2: DEST(w) starts at the far end of the father's range, so the
  // whole sibling region can absorb (or yield) records.
  dest_[w] = calibrator_.IsRightChild(w) ? fw_lo : fw_hi;
  // ACTIVATE is pure calibrator bookkeeping: no page accesses to report.
  RecordSpan(SpanKind::kActivate, w, dest_[w], IoStats());

  if (options_.disable_rollback_for_testing) return;

  // Step 3: roll-back. Any warning node y whose father's range strictly
  // contains RANGE(f_w) and whose DEST sits inside RANGE(f_w) may have its
  // past work undone by future SHIFT(w) calls; rewind DEST(y) to the
  // furthest position the conflict can reach.
  for (int fy = calibrator_.Parent(fw); fy != Calibrator::kNoNode;
       fy = calibrator_.Parent(fy)) {
    const int children[2] = {calibrator_.Left(fy), calibrator_.Right(fy)};
    for (const int y : children) {
      if (y == Calibrator::kNoNode || warning_[y] == 0) continue;
      if (calibrator_.IsRightChild(y)) {
        // Roll-back rule 1: DIR(y)=1, DEST(y) in [lo+1, hi] -> lo.
        if (dest_[y] >= fw_lo + 1 && dest_[y] <= fw_hi) {
          dest_[y] = fw_lo;
          ++stats_.rollbacks;
        }
      } else {
        // Roll-back rule 0: DIR(y)=0, DEST(y) in [lo, hi-1] -> hi.
        if (dest_[y] >= fw_lo && dest_[y] <= fw_hi - 1) {
          dest_[y] = fw_hi;
          ++stats_.rollbacks;
        }
      }
    }
  }
}

int Control2::SelectNode(Address leaf_block) const {
  // Step 1 of SELECT: lowest ancestor alpha of the leaf with a warning
  // *proper* descendant.
  const int leaf = calibrator_.LeafOf(leaf_block);
  int alpha = Calibrator::kNoNode;
  for (int a = calibrator_.Parent(leaf); a != Calibrator::kNoNode;
       a = calibrator_.Parent(a)) {
    const int64_t proper = warn_count_subtree_[a] - (warning_[a] ? 1 : 0);
    if (proper > 0) {
      alpha = a;
      break;
    }
  }
  if (alpha == Calibrator::kNoNode) return Calibrator::kNoNode;

  // Step 2: a deepest warning descendant of alpha.
  const int64_t target_depth = warn_max_depth_subtree_[alpha];
  DSF_DCHECK(target_depth > calibrator_.Depth(alpha))
      << "alpha's deepest warning must be a proper descendant";
  int v = alpha;
  while (!(warning_[v] != 0 && calibrator_.Depth(v) == target_depth)) {
    const int l = calibrator_.Left(v);
    const int r = calibrator_.Right(v);
    DSF_DCHECK(l != Calibrator::kNoNode) << "descent fell off the tree";
    if (warn_max_depth_subtree_[l] == target_depth) {
      v = l;
    } else {
      DSF_DCHECK(warn_max_depth_subtree_[r] == target_depth)
          << "neither child reaches the target depth";
      v = r;
    }
  }
  return v;
}

Status Control2::Shift(int v) {
  ++stats_.shifts;
  if (m_shifts_ != nullptr) m_shifts_->Increment();
  const int f = calibrator_.Parent(v);
  DSF_DCHECK(f != Calibrator::kNoNode) << "SHIFT on the root";
  const bool moves_left = calibrator_.IsRightChild(v);  // DIR(v) == 1
  const Address dest = dest_[v];

  // Step 1: SOURCE is the nearest populated page beyond DEST, within the
  // father's range.
  Address source;
  if (moves_left) {
    source =
        calibrator_.FirstNonEmptyPageIn(dest + 1, calibrator_.RangeHi(f));
  } else {
    source =
        calibrator_.LastNonEmptyPageIn(calibrator_.RangeLo(f), dest - 1);
  }
  if (source == 0) {
    // No populated page beyond DEST. The paper's analysis shows this state
    // is unreachable while v genuinely needs shifting; tolerate it as a
    // no-op so a mis-parameterized run degrades instead of crashing.
    ++stats_.shift_noops;
    return Status::OK();
  }

  // UP(v): nodes containing DEST but not SOURCE — the path below the
  // DEST/SOURCE LCA on DEST's side. Their densities rise as records land.
  std::vector<int> up;
  for (const int x : calibrator_.PathToLeaf(dest)) {
    if (source < calibrator_.RangeLo(x) || source > calibrator_.RangeHi(x)) {
      up.push_back(x);  // path order => ascending depth
    }
  }
  DSF_DCHECK(!up.empty()) << "DEST and SOURCE in the same leaf";

  // Step 2: move until SOURCE empties or some x in UP(v) saturates at
  // g(x,0). The stopping count is computable upfront because each moved
  // record raises every x in UP(v) by exactly one.
  int64_t budget = std::numeric_limits<int64_t>::max();
  for (const int x : up) {
    budget = std::min(
        budget, logical_spec_.MovesUntilAtLeast(
                    calibrator_.Count(x), calibrator_.PagesIn(x),
                    calibrator_.Depth(x), kThirds0));
  }
  const int64_t source_count =
      calibrator_.Count(calibrator_.LeafOf(source));
  const int64_t moves = std::min(budget, source_count);

  if (moves > 0) {
    StatusOr<std::vector<Record>> src_read = ReadBlock(source);
    DSF_RETURN_IF_ERROR(src_read.status());
    StatusOr<std::vector<Record>> dest_read = ReadBlock(dest);
    DSF_RETURN_IF_ERROR(dest_read.status());
    std::vector<Record>& src_records = *src_read;
    std::vector<Record>& dest_records = *dest_read;
    if (moves_left) {
      // DEST < SOURCE: the lowest keys of SOURCE extend DEST from above.
      dest_records.insert(dest_records.end(), src_records.begin(),
                          src_records.begin() + moves);
      src_records.erase(src_records.begin(), src_records.begin() + moves);
    } else {
      // DEST > SOURCE: the highest keys of SOURCE slide under DEST.
      dest_records.insert(dest_records.begin(), src_records.end() - moves,
                          src_records.end());
      src_records.erase(src_records.end() - moves, src_records.end());
    }
    // DEST before SOURCE: until the source write lands, the moved records
    // exist in both blocks, so a crash between the writes duplicates them
    // (CheckAndRepair dedupes) rather than losing them. The sync barrier
    // extends the guarantee to durable storage: the duplicate copy is on
    // the device before the delete can be — power loss cannot persist the
    // delete alone. (No-op without a backend; under a pool the dirty-order
    // flush at EndCommand enforces the same ordering.)
    DSF_RETURN_IF_ERROR(WriteBlock(dest, dest_records));
    DSF_RETURN_IF_ERROR(file_.SyncBarrier());
    DSF_RETURN_IF_ERROR(WriteBlock(source, src_records));
    stats_.records_shifted += moves;
    if (m_shift_records_ != nullptr) m_shift_records_->Increment(moves);
  }

  // Step 3: hop DEST past the shallowest saturated UP node.
  for (const int x : up) {
    if (logical_spec_.DensityAtLeast(calibrator_.Count(x),
                                     calibrator_.PagesIn(x),
                                     calibrator_.Depth(x), kThirds0)) {
      dest_[v] = moves_left ? calibrator_.RangeHi(x) + 1
                            : calibrator_.RangeLo(x) - 1;
      ++stats_.dest_advances;
      break;
    }
  }

  // Mainline step 4c: densities fell along the path to SOURCE; lower any
  // warning that has calmed down.
  if (moves > 0) CheckLowerOnPath(source);
  return Status::OK();
}

Status Control2::RunMaintenance(Address leaf_block) {
  for (int64_t cycle = 0; cycle < j_; ++cycle) {
    const int v = SelectNode(leaf_block);  // step 4a
    if (tracing()) {
      // SELECT is an in-memory tree walk: no page accesses to report.
      RecordSpan(SpanKind::kSelect, v == Calibrator::kNoNode ? -1 : v,
                 cycle, IoStats());
    }
    if (v == Calibrator::kNoNode) {
      stats_.idle_cycles += j_ - cycle;
      break;  // nothing warns; the remaining cycles would be no-ops
    }
    if (options_.track_episodes && command_inserted_block_ != 0) {
      // Corollary 5.4: this SHIFT is *related* to every node that is in a
      // warning state while step 1 inserted into its range — exactly the
      // warning ancestors of the inserted block.
      for (const int x : calibrator_.PathToLeaf(command_inserted_block_)) {
        if (open_flag_[static_cast<size_t>(x)] != 0) {
          ++open_by_node_[static_cast<size_t>(x)].related_shifts;
        }
      }
      if (open_flag_[static_cast<size_t>(v)] != 0) {
        ++open_by_node_[static_cast<size_t>(v)].own_shifts;
      }
    }
    const int64_t moved_before = stats_.records_shifted;
    const IoStats shift_start = file_.stats();
    const Status s = Shift(v);  // step 4b (4c runs inside)
    RecordSpan(SpanKind::kShift, v, stats_.records_shifted - moved_before,
               file_.stats() - shift_start);
    if (options_.track_episodes &&
        open_flag_[static_cast<size_t>(v)] != 0) {
      open_by_node_[static_cast<size_t>(v)].records_moved +=
          stats_.records_shifted - moved_before;
    }
    DSF_RETURN_IF_ERROR(s);
    NotifyStable(StablePoint::kAfterCycle, cycle);
  }
  if (options_.track_episodes) {
    for (size_t v = 0; v < open_flag_.size(); ++v) {
      if (open_flag_[v] != 0) ++open_by_node_[v].commands;
    }
  }
  return Status::OK();
}

Status Control2::Insert(const Record& record) {
  if (size() >= MaxRecords()) {
    return Status::CapacityExceeded("file already holds N = d*M records");
  }
  BeginCommand(CommandKind::kInsert);
  // Step 1: place the record. A duplicate would live in the target block.
  const Address target = TargetBlockForInsert(record.key);
  StatusOr<std::vector<Record>> read = ReadBlock(target);
  if (!read.ok()) {
    // Clean abort: no write happened, flags and file are untouched, so
    // the command leaves the file (d,D)-dense with consistent warnings.
    return EndCommand(read.status());
  }
  std::vector<Record>& records = *read;
  const auto pos = std::lower_bound(records.begin(), records.end(), record,
                                    RecordKeyLess);
  if (pos != records.end() && pos->key == record.key) {
    return EndCommand(Status::AlreadyExists("key already present"));
  }
  records.insert(pos, record);
  const Status write = WriteBlock(target, records);
  if (!write.ok()) {
    return EndCommand(write);
  }
  command_inserted_block_ = target;

  CheckLowerOnPath(target);  // step 2 (vacuous after an insert)
  CheckRaiseOnPath(target);  // step 3
  NotifyStable(StablePoint::kAfterStep3, -1);
  // Step 4. A fault here errors the command with the record already
  // durably placed — the caller runs CheckAndRepair, which rebuilds the
  // warning state the aborted maintenance left behind.
  const Status maintenance = RunMaintenance(target);
  return EndCommand(maintenance);
}

Status Control2::Delete(Key key) {
  const Address block = BlockPossiblyContaining(key);
  if (block == 0) return Status::NotFound("key absent");
  BeginCommand(CommandKind::kDelete);
  StatusOr<std::vector<Record>> read = ReadBlock(block);
  if (!read.ok()) {
    return EndCommand(read.status());
  }
  std::vector<Record>& records = *read;
  const auto it = std::lower_bound(records.begin(), records.end(),
                                   Record{key, 0}, RecordKeyLess);
  if (it == records.end() || it->key != key) {
    return EndCommand(Status::NotFound("key absent"));
  }
  records.erase(it);
  const Status write = WriteBlock(block, records);
  if (!write.ok()) {
    return EndCommand(write);
  }
  command_inserted_block_ = 0;  // deletions relate no SHIFTs

  CheckLowerOnPath(block);  // step 2
  // Step 3 is vacuous: a deletion raises no density.
  NotifyStable(StablePoint::kAfterStep3, -1);
  const Status maintenance = RunMaintenance(block);  // step 4
  return EndCommand(maintenance);
}

Status Control2::ValidateInvariants() const {
  DSF_RETURN_IF_ERROR(ControlBase::ValidateInvariants());
  // I4: BALANCE(d,D) at command end (Theorem 5.5).
  DSF_RETURN_IF_ERROR(ValidateBalance());

  const bool paper_faithful = !options_.disable_rollback_for_testing &&
                              options_.lower_threshold_thirds == kThirds1Of3;
  for (int v = 0; v < calibrator_.node_count(); ++v) {
    const int64_t count = calibrator_.Count(v);
    const int64_t pages = calibrator_.PagesIn(v);
    const int64_t depth = calibrator_.Depth(v);
    if (paper_faithful) {
      // Fact 5.1 at a flag-stable moment.
      if (warning_[v] != 0 &&
          logical_spec_.DensityAtMost(count, pages, depth, kThirds1Of3)) {
        return Status::Corruption("Fact 5.1a violated: calm node " +
                                  std::to_string(v) + " still warns");
      }
      if (v != calibrator_.root() && warning_[v] == 0 &&
          logical_spec_.DensityAtLeast(count, pages, depth, kThirds2Of3)) {
        return Status::Corruption("Fact 5.1b violated: dense node " +
                                  std::to_string(v) + " not warning");
      }
    }
    if (warning_[v] != 0) {
      const int f = calibrator_.Parent(v);
      if (f == Calibrator::kNoNode) {
        return Status::Corruption("root is in a warning state");
      }
      if (dest_[v] < calibrator_.RangeLo(f) ||
          dest_[v] > calibrator_.RangeHi(f)) {
        return Status::Corruption("DEST outside RANGE(father) at node " +
                                  std::to_string(v));
      }
    }
  }

  // SELECT's aggregates must mirror the flags.
  for (int v = calibrator_.node_count() - 1; v >= 0; --v) {
    int64_t count = warning_[v] ? 1 : 0;
    int64_t max_depth = warning_[v] ? calibrator_.Depth(v) : -1;
    if (!calibrator_.IsLeaf(v)) {
      count += warn_count_subtree_[calibrator_.Left(v)] +
               warn_count_subtree_[calibrator_.Right(v)];
      max_depth = std::max({max_depth,
                            warn_max_depth_subtree_[calibrator_.Left(v)],
                            warn_max_depth_subtree_[calibrator_.Right(v)]});
    }
    if (warn_count_subtree_[v] != count ||
        warn_max_depth_subtree_[v] != max_depth) {
      return Status::Corruption("stale SELECT aggregates at node " +
                                std::to_string(v));
    }
  }
  return Status::OK();
}

void Control2::RebuildWarningState() {
  std::fill(warning_.begin(), warning_.end(), 0);
  std::fill(dest_.begin(), dest_.end(), 0);
  std::fill(open_flag_.begin(), open_flag_.end(), 0);
  std::fill(warn_count_subtree_.begin(), warn_count_subtree_.end(), 0);
  std::fill(warn_max_depth_subtree_.begin(), warn_max_depth_subtree_.end(),
            -1);
  // A uniform layout keeps every node below g(v,2/3), but LoadLayout may
  // not; activate whatever the fresh contents demand, parents before
  // children (node ids are preorder).
  for (int v = 1; v < calibrator_.node_count(); ++v) {
    if (logical_spec_.DensityAtLeast(calibrator_.Count(v),
                                     calibrator_.PagesIn(v),
                                     calibrator_.Depth(v), kThirds2Of3)) {
      Activate(v);
    }
  }
}

void Control2::AfterBulkLoad() {
  RebuildWarningState();
  stats_ = Stats();  // loading is setup, not measured work
}

void Control2::AfterWholesaleReorganization() { RebuildWarningState(); }

void Control2::AfterRangeDeletion(Address lo_block, Address hi_block) {
  for (Address b = lo_block; b <= hi_block; ++b) CheckLowerOnPath(b);
}

}  // namespace dsf
