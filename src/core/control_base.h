// Shared machinery for the density-control algorithms.
//
// ControlBase owns the physical page file and the calibrator and provides
// everything CONTROL 1 and CONTROL 2 have in common: key search through
// the in-memory calibrator, block (macro-page) reads/writes with honest
// page-access accounting, stream retrieval, per-command cost tracking and
// the structural (d,D)-density validators.
//
// Blocks. To support Theorem 5.7's macro-block extension with one code
// path, the algorithms operate on *logical pages* ("blocks") of
// `block_size` = K consecutive physical pages (K = 1 in the ordinary
// case). The calibrator and the density spec cover the M# = M/K blocks
// with thresholds d# = K*d, D# = K*D. Within a block, records are packed
// into a prefix of its physical pages, at most D per page, so physical
// (d,D)-density conditions (ii) and (iii) hold whenever the logical file
// is (d#,D#)-dense.

#ifndef DSF_CORE_CONTROL_BASE_H_
#define DSF_CORE_CONTROL_BASE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/calibrator.h"
#include "core/cursor.h"
#include "core/density.h"
#include "obs/bound_certifier.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"
#include "storage/record.h"
#include "util/status.h"

namespace dsf {

// What CheckAndRepair found and fixed. All counters are zero for a file
// that came through a crash with its invariants intact.
struct RepairReport {
  int64_t blocks_scanned = 0;
  int64_t calibrator_resyncs = 0;    // leaves whose count/fences were stale
  int64_t duplicate_records_dropped = 0;  // torn-shift duplicates removed
  int64_t misordered_blocks = 0;     // blocks breaking global key order
  int64_t overfull_pages = 0;        // pages holding more than D records
  int64_t packing_violations = 0;    // blocks not prefix-packed
  bool rewrote_file = false;         // wholesale uniform rewrite performed
  bool warning_state_rebuilt = false;  // algorithm flags rebuilt from scratch

  bool AnythingRepaired() const {
    return calibrator_resyncs > 0 || duplicate_records_dropped > 0 ||
           misordered_blocks > 0 || overfull_pages > 0 ||
           packing_violations > 0 || rewrote_file;
  }
  std::string ToString() const;
};

// Per-command page-access bookkeeping.
struct CommandStats {
  int64_t commands = 0;
  int64_t last_command_accesses = 0;
  int64_t max_command_accesses = 0;
  int64_t total_accesses = 0;

  double MeanAccessesPerCommand() const {
    return commands == 0
               ? 0.0
               : static_cast<double>(total_accesses) /
                     static_cast<double>(commands);
  }
};

class ControlBase {
 public:
  struct Config {
    int64_t num_pages = 0;   // physical M; must be a multiple of block_size
    int64_t d = 0;           // per-page lower density parameter
    int64_t D = 0;           // per-page upper density parameter (page cap)
    int64_t block_size = 1;  // K; 1 = ordinary pages, >1 = macro-blocks

    // Ablation E9c. The paper's step 1 inserts into the page holding the
    // record's predecessor. With smart placement, a key that follows
    // everything in a saturated predecessor block is placed into the
    // empty block just after it instead (when one exists before the
    // successor block), trading paper fidelity for less SHIFT pressure.
    bool smart_placement = false;

    // Buffer pool between the algorithms and the device. 0 (default)
    // means no pool: every logical access is a physical access, exactly
    // the pre-pool behavior. With frames, reads hit resident pages for
    // free and writes are held dirty until the end of the command, when
    // EndCommand flushes them in crash-safe dirty-order (so command
    // durability and the one-in-flight-command crash semantics are
    // unchanged — see docs/CACHING.md).
    int64_t cache_frames = 0;
    BufferPool::Eviction cache_eviction = BufferPool::Eviction::kClock;
  };

  virtual ~ControlBase() = default;

  ControlBase(const ControlBase&) = delete;
  ControlBase& operator=(const ControlBase&) = delete;

  // --- The update commands (implemented by CONTROL 1 / CONTROL 2) ---
  virtual Status Insert(const Record& record) = 0;
  virtual Status Delete(Key key) = 0;
  virtual std::string Name() const = 0;

  // --- Queries (shared) ---
  StatusOr<Record> Get(Key key);
  bool Contains(Key key);

  // Stream retrieval: appends all records with lo <= key <= hi in key
  // order. This is the access pattern the paper argues sequential files
  // win at: the touched pages are consecutive addresses.
  Status Scan(Key lo, Key hi, std::vector<Record>* out);

  // All records in key order (O(N) accounted reads).
  StatusOr<std::vector<Record>> ScanAll();

  // Streaming alternative to Scan: yields records with key >= start one
  // at a time, buffering a block per step. See core/cursor.h.
  Cursor NewCursor(Key start = 0);

  // Removes every record with lo <= key <= hi; returns how many. Counted
  // as a single command; its cost is proportional to the blocks touched
  // (range commands are outside the paper's per-command bound).
  StatusOr<int64_t> DeleteRange(Key lo, Key hi);

  // Inserts a batch of strictly-ascending records one command at a time
  // (each insert keeps the worst-case bound). Stops at the first error.
  Status InsertBatch(const std::vector<Record>& records);

  // Trusted fast path of InsertBatch: the caller guarantees [begin, end)
  // is strictly ascending and duplicate-free (DCHECKed, not validated),
  // so the O(n) pre-scan and any defensive slice copy are skipped. Takes
  // a raw pointer range so callers holding a larger sorted buffer (the
  // staging drain, ShardedDenseFile's per-shard slices) pass a window of
  // it without materializing a vector.
  Status InsertBatchSorted(const Record* begin, const Record* end);

  // Rewrites the whole file at uniform density, with accounted I/O — an
  // explicit O(M) reorganization restoring Theorem 5.5's initial
  // condition: insert headroom spread evenly, so no region is primed to
  // trigger maintenance storms after skewed deletions. Crash-safe: runs
  // as pack-then-spread, so a fault mid-compaction duplicates records but
  // never loses one (CheckAndRepair finishes the job).
  Status Compact();

  // Post-crash recovery. Inspects the raw pages (unaccounted — recovery
  // is an offline pass over the device, outside the paper's per-command
  // cost model), rebuilds the calibrator's N_v rank counters and fence
  // keys bottom-up, and clears stale algorithm state (WARNING flags,
  // DEST/SOURCE pointers) via AfterWholesaleReorganization.
  //
  // Cheap path: if the page contents are still globally ordered,
  // duplicate-free, prefix-packed and within page capacity, only the
  // in-memory calibrator and flags are rebuilt. Otherwise the wholesale
  // path gathers every surviving record, sorts, drops torn-write
  // duplicates (keeping the first copy in address order; duplicate copies
  // carry identical payloads by the write-ordering invariants, see
  // docs/FAULTS.md), and rewrites the file at uniform density. On return
  // the file satisfies ValidateInvariants(); the report says what was
  // fixed.
  StatusOr<RepairReport> CheckAndRepair();

  // Mean records per page over the pages a full scan touches (a packing
  // diagnostic: D would be a fully packed file; clustering raises it,
  // uniform spreading lowers it). 0 for an empty file.
  double ScanEfficiency() const;

  // --- Introspection ---
  int64_t size() const { return calibrator_.TotalRecords(); }
  int64_t MaxRecords() const { return logical_spec_.MaxRecords(); }
  const DensitySpec& logical_spec() const { return logical_spec_; }
  int64_t block_size() const { return block_size_; }
  int64_t num_blocks() const { return num_blocks_; }
  PageFile& file() { return file_; }
  const PageFile& file() const { return file_; }
  // The buffer pool, or nullptr when cache_frames == 0.
  BufferPool* pool() { return pool_.get(); }
  const BufferPool* pool() const { return pool_.get(); }
  // Writes every dirty frame to the device (no-op without a pool).
  // Commands flush themselves at EndCommand; this is for callers that
  // want durability at an arbitrary point (e.g. before a snapshot).
  Status Flush();
  // Drops every cached frame *without* write-back — the cache-loss half
  // of a simulated crash. The device is left as the last flush left it;
  // callers must follow with CheckAndRepair to re-sync in-memory state.
  void DiscardCache();
  // Attaches a durable storage backend behind the page file and loads
  // its device image as the working image (see PageFile::AttachBackend).
  // When the backend held existing data — a reopen — the caller must
  // follow with CheckAndRepair: the calibrator and warning state are
  // in-memory structures that died with the previous process, and any
  // unreadable device pages (file().corrupt_pages_at_open()) need the
  // repair pass. Attach before loading or mutating data, so every write
  // reaches the device.
  Status AttachStorageBackend(std::unique_ptr<StorageBackend> backend);
  const Calibrator& calibrator() const { return calibrator_; }
  int64_t page_d() const { return page_d_; }
  int64_t page_D() const { return page_D_; }
  const CommandStats& command_stats() const { return command_stats_; }
  void ResetCommandStats();

  // Installs observability sinks, any of which may be null: a metrics
  // registry (handles are resolved once, here — the command hot path
  // then only tests cached pointers), a span tracer, and a bound
  // certifier fed each command's logical access count. `label` is an
  // optional `key="value"` metric qualifier distinguishing this file's
  // series (e.g. per-shard). Virtual so subclasses cache handles for
  // their own phase metrics. Call before issuing commands; calling with
  // nulls detaches. Also attaches the buffer pool's counters when a
  // pool is configured.
  virtual void SetObservability(MetricsRegistry* metrics,
                                CommandTracer* tracer,
                                BoundCertifier* certifier,
                                const std::string& label = "");

  // The page as the algorithms see it: the resident dirty/clean frame
  // when pooled, the device page otherwise. Unaccounted; for validators,
  // the invariant auditor (analysis/auditor.h) and resync.
  const Page& PeekLogical(Address page) const;

  // Unaccounted point lookup over the logical view (resident frames
  // first, device pages otherwise). Outside the paper's cost model — for
  // the staging layer's membership checks during crash reconciliation and
  // the invariant auditor, never for serving reads. Fills *value when the
  // key is present and value is non-null.
  bool PeekContains(Key key, Value* value = nullptr) const;

  // --- Ingest drain support (core/dense_file.cc; docs/INGEST.md) ---
  // Between BeginFlushDeferral and EndFlushDeferral, EndCommand skips its
  // end-of-command pool flush: the commands of one drain step share a
  // single FlushAll, so a hot page dirtied by several staged inserts is
  // written once per step instead of once per command. Crash order stays
  // safe — the pool's eviction path flushes the dirty-order prefix, so
  // DEST-before-SOURCE write ordering holds even when a frame leaves the
  // pool mid-window. Costs wider crash ambiguity (a whole step, not one
  // command, may be unflushed), which the staging layer's volatile-until-
  // drained contract already covers. No-ops without a pool.
  void BeginFlushDeferral() { defer_flush_ = true; }
  // Ends the window: flushes everything deferred (recording the usual
  // kFlush span) and returns the flush status.
  Status EndFlushDeferral();
  bool flush_deferred() const { return defer_flush_; }
  // DenseFile's hook for the kDrain span: `a` = entries drained, `b` =
  // entries still staged, `io` the step's accesses (RecordSpan itself is
  // protected; the drain scheduler sits outside the class).
  void RecordDrainSpan(int64_t entries_drained, int64_t entries_remaining,
                       const IoStats& io) {
    RecordSpan(SpanKind::kDrain, entries_drained, entries_remaining, io);
  }

  // Corruption hook for auditor tests: mutable calibrator access, used
  // to seed stale N_v counters that Audit() must catch. Never called
  // outside tests/auditor_test.cc.
  Calibrator& mutable_calibrator_for_testing() { return calibrator_; }

  // Structural invariants I1-I3 and I5. Subclasses extend with their
  // algorithm-specific checks — BALANCE(d,D) for CONTROL 1/2 (Theorem
  // 5.5), flag/pointer sanity for CONTROL 2. O(M); for tests/debugging.
  virtual Status ValidateInvariants() const;

  // Loads `records` (strictly ascending keys, size <= d*M) spread with
  // uniform density over the whole file — the initial condition of
  // Theorem 5.5. Unaccounted; resets I/O and command statistics.
  Status BulkLoad(const std::vector<Record>& records);

  // Loads an explicit per-block distribution (per_block[i] goes to block
  // i+1; keys must ascend across the concatenation and each block must
  // fit in D# records). Unaccounted. Used by tests and by the Example 5.2
  // replay, whose initial state is deliberately non-uniform.
  Status LoadLayout(const std::vector<std::vector<Record>>& per_block);

 protected:
  explicit ControlBase(const Config& config, DensitySpec logical_spec);

  // Factory-time validation shared by subclasses.
  static StatusOr<DensitySpec> MakeLogicalSpec(const Config& config);

  // Hook for subclasses to reset algorithm state after BulkLoad replaced
  // the file contents (e.g. CONTROL 2 clears its warning flags — valid
  // because a uniform-density load leaves every node below g(v,2/3)).
  virtual void AfterBulkLoad() {}

  // Hook after an in-place wholesale reorganization (Compact): state tied
  // to the old layout (warning flags, DEST pointers) must be rebuilt.
  virtual void AfterWholesaleReorganization() {}

  // Hook after DeleteRange lowered densities in [lo_block, hi_block]
  // (e.g. CONTROL 2 lowers calmed warning flags on the affected paths).
  virtual void AfterRangeDeletion(Address lo_block, Address hi_block) {
    (void)lo_block;
    (void)hi_block;
  }

  // Per-page write order inside a block. A crash between two page writes
  // must never lose a record, so the direction depends on how the block's
  // content moves: when records shift right (the block grows, or an
  // equal-count rewrite pushes records to higher ranks) pages must be
  // written right-to-left, so a record's new home exists before its old
  // home is overwritten; when records shift left, left-to-right. kAuto
  // picks by comparing new and old counts — callers whose rewrite shifts
  // content against the count change must pass the direction explicitly.
  enum class BlockWriteOrder { kAuto, kForward, kBackward };

  // --- Block I/O (accounted, fallible) ---
  // All records of block b (address in [1, num_blocks]) in key order.
  StatusOr<std::vector<Record>> ReadBlock(Address block);
  // Appends block b's records to *out (same accounting as ReadBlock).
  // On error *out may hold a partial suffix of the block's records.
  Status ReadBlockInto(Address block, std::vector<Record>* out);
  // Replaces block b's contents; packs D per physical page. The iterator
  // form writes a slice of a larger buffer without copying it first.
  // On a write fault the calibrator leaf is resynced from the raw pages
  // before the error returns, so in-memory state never lies about the
  // device; content-level damage (a torn block) is CheckAndRepair's job.
  Status WriteBlock(Address block, const std::vector<Record>& records,
                    BlockWriteOrder order = BlockWriteOrder::kAuto);
  Status WriteBlock(Address block, const Record* begin, const Record* end,
                    BlockWriteOrder order = BlockWriteOrder::kAuto);

  // --- Key -> block mapping (in-memory, free) ---
  // The unique block that can contain `key`; 0 if none.
  Address BlockPossiblyContaining(Key key) const;
  // Where an insert of `key` should land: the predecessor's block, else
  // the successor's block, else the middle block of an empty file.
  Address TargetBlockForInsert(Key key) const;
  // smart_placement helper: spill past a saturated block into an empty
  // successor when the key order allows it (no-op otherwise).
  Address MaybeSpillAfter(Address block, Address limit) const;

  // Wraps a user command for cost accounting; call at entry/exit of
  // Insert/Delete implementations. `kind` drives the bound certifier's
  // exemption rules and is recorded on the command span. EndCommand
  // flushes the buffer pool first (command-granularity durability: at
  // most the in-flight command is unflushed at a crash) and returns the
  // flush status — OK without a pool. The one-argument form folds a
  // command's own status with the flush status (the command's error
  // wins; flush errors surface when the command itself succeeded), so
  // implementations can write `return EndCommand(s);` at every exit.
  void BeginCommand(CommandKind kind);
  Status EndCommand();
  Status EndCommand(const Status& command_status);

  // --- Observability helpers for subclasses ---
  // Records a phase span (no-op without a tracer), stamped with the
  // enclosing command's ordinal. `io` is the IoStats delta measured
  // across the phase by the caller.
  void RecordSpan(SpanKind kind, int64_t a, int64_t b, const IoStats& io);
  // The enclosing command's ordinal (CommandStats::commands at
  // BeginCommand time); what span seq fields carry.
  int64_t current_command_seq() const { return command_seq_; }
  bool tracing() const { return tracer_ != nullptr; }

  // BALANCE(d,D) over the calibrator (every node p(v) <= g(v,1)).
  Status ValidateBalance() const;

  DensitySpec logical_spec_;  // over blocks: (M#, K*d, K*D)
  bool smart_placement_;
  int64_t block_size_;
  int64_t num_blocks_;
  int64_t page_d_;  // physical per-page d
  int64_t page_D_;  // physical per-page D
  PageFile file_;
  std::unique_ptr<BufferPool> pool_;  // null when cache_frames == 0
  Calibrator calibrator_;
  CommandStats command_stats_;

  // Observability sinks (all optional; see SetObservability). Subclasses
  // read metrics_ / metrics_label_ to resolve their own handles.
  MetricsRegistry* metrics_ = nullptr;
  CommandTracer* tracer_ = nullptr;
  BoundCertifier* certifier_ = nullptr;
  std::string metrics_label_;

  // Crash-safe range redistribution: rewrites blocks [lo, hi] at uniform
  // density in two passes — pack every record into the leftmost blocks
  // (left-to-right), then spread from the packed prefix to the uniform
  // layout (right-to-left). Each pass preserves the duplicate-before-
  // destroy invariant, so a fault at any page boundary leaves every
  // committed record present somewhere in [lo, hi] (possibly duplicated).
  // Costs 2x the writes of a one-pass rewrite; same asymptotics.
  Status RedistributeRangeCrashSafe(Address lo, Address hi);

  // Rebuilds the calibrator leaf of `block` from the logical page
  // contents — cached frame if resident, device page otherwise
  // (unaccounted). Called after a failed block write so the in-memory
  // tree matches whatever the store actually holds.
  void ResyncLeafFromRaw(Address block);
  // Same for every block in [lo, hi], with one batched SyncLeaves.
  void ResyncRangeFromRaw(Address lo, Address hi);

  // PageFile::GloballyOrdered over the logical view.
  bool LogicallyOrdered() const;

 private:
  friend class Cursor;
  // Cursor's accounted block read (same as ReadBlock; narrow interface).
  StatusOr<std::vector<Record>> ReadBlockForCursor(Address block) {
    return ReadBlock(block);
  }

  // Physical pages used by a block holding `count` records.
  int64_t PagesUsed(int64_t count) const;
  Address FirstPhysicalPage(Address block) const {
    return (block - 1) * block_size_ + 1;
  }
  void SyncBlock(Address block, const std::vector<Record>& records);
  // Writes the pages of `block` without syncing the calibrator. Callers
  // must follow up with SyncBlock or one batched Calibrator::SyncLeaves
  // covering every block written this way, before the next read. On a
  // fault, already-written pages keep their new content, the rest keep
  // their old content, and the error returns; the caller resyncs leaves.
  Status WriteBlockPages(Address block, const Record* begin,
                         const Record* end,
                         BlockWriteOrder order = BlockWriteOrder::kAuto);

  // Full IoStats at BeginCommand, so EndCommand can split the delta into
  // physical accesses (CommandStats), logical accesses (certifier) and
  // simulated time (histogram) from one snapshot.
  IoStats command_start_stats_;
  CommandKind command_kind_ = CommandKind::kInsert;
  int64_t command_seq_ = 0;
  bool in_command_ = false;
  bool defer_flush_ = false;  // see BeginFlushDeferral

  // Cached metric handles, null until SetObservability installs a
  // registry (constraint 1 in obs/metrics.h: one branch per site).
  Counter* m_commands_ = nullptr;
  Histogram* m_command_accesses_ = nullptr;
  Histogram* m_command_sim_ns_ = nullptr;
  Counter* m_redistributions_ = nullptr;
  Histogram* m_redistribution_blocks_ = nullptr;
};

}  // namespace dsf

#endif  // DSF_CORE_CONTROL_BASE_H_
