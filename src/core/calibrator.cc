#include "core/calibrator.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace dsf {

Calibrator::Calibrator(int64_t num_pages) : num_pages_(num_pages) {
  DSF_CHECK(num_pages >= 1) << "calibrator needs at least one page";
  nodes_.reserve(static_cast<size_t>(2 * num_pages - 1));
  leaf_of_page_.assign(static_cast<size_t>(num_pages), kNoNode);
  Build(1, num_pages, kNoNode, 0);
}

int Calibrator::Build(Address lo, Address hi, int parent, int64_t depth) {
  const int id = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});
  Node& n = nodes_.back();
  n.lo = lo;
  n.hi = hi;
  n.parent = parent;
  n.depth = depth;
  if (lo == hi) {
    leaf_of_page_[static_cast<size_t>(lo - 1)] = id;
    return id;
  }
  const Address mid = (lo + hi) / 2;
  const int left = Build(lo, mid, id, depth + 1);
  const int right = Build(mid + 1, hi, id, depth + 1);
  nodes_[id].left = left;
  nodes_[id].right = right;
  return id;
}

bool Calibrator::IsRightChild(int v) const {
  const int parent = nodes_[v].parent;
  DSF_CHECK(parent != kNoNode) << "IsRightChild called on root";
  return nodes_[parent].right == v;
}

int Calibrator::LeafOf(Address page) const {
  DSF_CHECK(page >= 1 && page <= num_pages_) << "LeafOf page " << page;
  return leaf_of_page_[static_cast<size_t>(page - 1)];
}

int Calibrator::LowestCommonAncestor(Address a, Address b) const {
  DSF_CHECK(a >= 1 && a <= num_pages_ && b >= 1 && b <= num_pages_)
      << "LCA addresses out of range";
  int v = root();
  for (;;) {
    const Node& n = nodes_[v];
    if (n.left == kNoNode) return v;
    const Address mid = nodes_[n.left].hi;
    if (a <= mid && b <= mid) {
      v = n.left;
    } else if (a > mid && b > mid) {
      v = n.right;
    } else {
      return v;
    }
  }
}

void Calibrator::SyncLeaf(Address page, int64_t count, Key min_key,
                          Key max_key) {
  DSF_CHECK(count >= 0) << "negative leaf count";
  int v = LeafOf(page);
  Node& leaf = nodes_[v];
  leaf.count = count;
  leaf.min_key = min_key;
  leaf.max_key = max_key;
  for (int p = leaf.parent; p != kNoNode; p = nodes_[p].parent) {
    Reaggregate(p);
  }
}

void Calibrator::SyncLeaves(Address first,
                            const std::vector<LeafUpdate>& updates) {
  if (updates.empty()) return;
  const Address last = first + static_cast<Address>(updates.size()) - 1;
  DSF_CHECK(first >= 1 && last <= num_pages_)
      << "SyncLeaves range [" << first << "," << last << "] out of bounds";
  for (size_t i = 0; i < updates.size(); ++i) {
    const LeafUpdate& u = updates[i];
    DSF_CHECK(u.count >= 0) << "negative leaf count";
    Node& leaf = nodes_[LeafOf(first + static_cast<Address>(i))];
    leaf.count = u.count;
    leaf.min_key = u.min_key;
    leaf.max_key = u.max_key;
  }
  ReaggregateRange(root(), first, last);
}

void Calibrator::ReaggregateRange(int v, Address lo, Address hi) {
  const Node& n = nodes_[v];
  if (n.hi < lo || n.lo > hi || n.left == kNoNode) return;
  ReaggregateRange(n.left, lo, hi);
  ReaggregateRange(n.right, lo, hi);
  Reaggregate(v);
}

void Calibrator::Reaggregate(int v) {
  Node& n = nodes_[v];
  const Node& l = nodes_[n.left];
  const Node& r = nodes_[n.right];
  n.count = l.count + r.count;
  if (l.count > 0 && r.count > 0) {
    n.min_key = l.min_key;
    n.max_key = r.max_key;
  } else if (l.count > 0) {
    n.min_key = l.min_key;
    n.max_key = l.max_key;
  } else if (r.count > 0) {
    n.min_key = r.min_key;
    n.max_key = r.max_key;
  } else {
    n.min_key = 0;
    n.max_key = 0;
  }
}

Address Calibrator::FirstNonEmptyPageWithMaxGE(Key key) const {
  int v = root();
  if (nodes_[v].count == 0 || nodes_[v].max_key < key) return 0;
  while (nodes_[v].left != kNoNode) {
    const Node& l = nodes_[nodes_[v].left];
    if (l.count > 0 && l.max_key >= key) {
      v = nodes_[v].left;
    } else {
      v = nodes_[v].right;
    }
  }
  return nodes_[v].lo;
}

Address Calibrator::FirstNonEmptyPageIn(Address lo, Address hi) const {
  if (lo > hi) return 0;
  return FirstNonEmptyIn(root(), std::max<Address>(lo, 1),
                         std::min(hi, num_pages_));
}

Address Calibrator::LastNonEmptyPageIn(Address lo, Address hi) const {
  if (lo > hi) return 0;
  return LastNonEmptyIn(root(), std::max<Address>(lo, 1),
                        std::min(hi, num_pages_));
}

Address Calibrator::FirstNonEmptyIn(int v, Address lo, Address hi) const {
  const Node& n = nodes_[v];
  if (n.count == 0 || n.hi < lo || n.lo > hi) return 0;
  if (n.left == kNoNode) return n.lo;
  const Address in_left = FirstNonEmptyIn(n.left, lo, hi);
  if (in_left != 0) return in_left;
  return FirstNonEmptyIn(n.right, lo, hi);
}

Address Calibrator::LastNonEmptyIn(int v, Address lo, Address hi) const {
  const Node& n = nodes_[v];
  if (n.count == 0 || n.hi < lo || n.lo > hi) return 0;
  if (n.left == kNoNode) return n.lo;
  const Address in_right = LastNonEmptyIn(n.right, lo, hi);
  if (in_right != 0) return in_right;
  return LastNonEmptyIn(n.left, lo, hi);
}

int64_t Calibrator::CountInRange(Address lo, Address hi) const {
  if (lo > hi) return 0;
  return CountIn(root(), std::max<Address>(lo, 1), std::min(hi, num_pages_));
}

int64_t Calibrator::CountIn(int v, Address lo, Address hi) const {
  const Node& n = nodes_[v];
  if (n.count == 0 || n.hi < lo || n.lo > hi) return 0;
  if (lo <= n.lo && n.hi <= hi) return n.count;
  return CountIn(n.left, lo, hi) + CountIn(n.right, lo, hi);
}

std::vector<int> Calibrator::PathToLeaf(Address page) const {
  DSF_CHECK(page >= 1 && page <= num_pages_) << "PathToLeaf page " << page;
  std::vector<int> path;
  int v = root();
  for (;;) {
    path.push_back(v);
    const Node& n = nodes_[v];
    if (n.left == kNoNode) break;
    if (page <= nodes_[n.left].hi) {
      v = n.left;
    } else {
      v = n.right;
    }
  }
  return path;
}

Status Calibrator::ValidateAggregates() const {
  for (int v = 0; v < node_count(); ++v) {
    const Node& n = nodes_[v];
    if (n.left == kNoNode) continue;
    const Node& l = nodes_[n.left];
    const Node& r = nodes_[n.right];
    if (n.count != l.count + r.count) {
      return Status::Corruption("rank counter mismatch at node " +
                                std::to_string(v));
    }
    Key expect_min = 0;
    Key expect_max = 0;
    if (l.count > 0 && r.count > 0) {
      expect_min = l.min_key;
      expect_max = r.max_key;
    } else if (l.count > 0) {
      expect_min = l.min_key;
      expect_max = l.max_key;
    } else if (r.count > 0) {
      expect_min = r.min_key;
      expect_max = r.max_key;
    }
    if (n.count > 0 && (n.min_key != expect_min || n.max_key != expect_max)) {
      return Status::Corruption("fence key mismatch at node " +
                                std::to_string(v));
    }
  }
  return Status::OK();
}

std::string Calibrator::DebugString() const {
  std::ostringstream os;
  for (int v = 0; v < node_count(); ++v) {
    const Node& n = nodes_[v];
    os << "node " << v << " depth=" << n.depth << " range=[" << n.lo << ","
       << n.hi << "] N=" << n.count;
    if (n.count > 0) os << " keys=[" << n.min_key << "," << n.max_key << "]";
    os << "\n";
  }
  return os.str();
}

}  // namespace dsf
