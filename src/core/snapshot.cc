#include "core/snapshot.h"

#include <cstring>
#include <fstream>
#include <vector>

namespace dsf {

namespace {

constexpr char kMagic[4] = {'D', 'S', 'F', '\1'};
constexpr uint32_t kVersion = 1;

// FNV-1a over a byte buffer.
uint64_t Fnv1a(const std::string& bytes) {
  uint64_t hash = 1469598103934665603ull;
  for (const char c : bytes) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

void PutU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}
void PutI64(std::string& out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}
void PutU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

// Borrows the byte buffer; the caller keeps it alive.
class Reader {
 public:
  explicit Reader(const std::string& bytes) : bytes_(bytes) {}

  bool Take(void* out, size_t n) {
    if (pos_ + n > bytes_.size()) return false;
    std::memcpy(out, bytes_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  bool TakeU64(uint64_t* v) {
    uint8_t raw[8] = {0};
    if (!Take(raw, 8)) return false;
    *v = 0;
    for (int i = 7; i >= 0; --i) *v = (*v << 8) | raw[i];
    return true;
  }
  bool TakeI64(int64_t* v) {
    uint64_t u;
    if (!TakeU64(&u)) return false;
    *v = static_cast<int64_t>(u);
    return true;
  }
  bool TakeU32(uint32_t* v) {
    uint8_t raw[4] = {0};
    if (!Take(raw, 4)) return false;
    *v = 0;
    for (int i = 3; i >= 0; --i) *v = (*v << 8) | raw[i];
    return true;
  }

  size_t position() const { return pos_; }
  const std::string& bytes() const { return bytes_; }

 private:
  const std::string& bytes_;
  size_t pos_ = 0;
};

uint8_t PolicyTag(DenseFile::Policy policy) {
  switch (policy) {
    case DenseFile::Policy::kControl2: return 0;
    case DenseFile::Policy::kControl1: return 1;
    case DenseFile::Policy::kLocalShift: return 2;
  }
  return 255;
}

StatusOr<DenseFile::Policy> PolicyFromTag(uint8_t tag) {
  switch (tag) {
    case 0: return DenseFile::Policy::kControl2;
    case 1: return DenseFile::Policy::kControl1;
    case 2: return DenseFile::Policy::kLocalShift;
    default:
      return Status::Corruption("unknown policy tag in snapshot");
  }
}

}  // namespace

Status SaveSnapshot(DenseFile& file, const std::string& path) {
  const DenseFile::Options& options = file.options();
  std::string payload;
  payload.append(kMagic, sizeof(kMagic));
  PutU32(payload, kVersion);
  PutI64(payload, options.num_pages);
  PutI64(payload, options.d);
  PutI64(payload, options.D);
  PutI64(payload, options.J);
  PutI64(payload, options.block_size);
  payload.push_back(static_cast<char>(PolicyTag(options.policy)));
  payload.push_back(options.smart_placement ? 1 : 0);

  StatusOr<std::vector<Record>> scan = file.ScanAll();
  if (!scan.ok()) return scan.status();
  const std::vector<Record>& records = *scan;
  PutI64(payload, static_cast<int64_t>(records.size()));
  for (const Record& r : records) {
    PutU64(payload, r.key);
    PutU64(payload, r.value);
  }
  PutU64(payload, Fnv1a(payload));

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::InvalidArgument("cannot open " + path);
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!out) return Status::Internal("short write to " + path);
  return Status::OK();
}

StatusOr<std::unique_ptr<DenseFile>> OpenSnapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::InvalidArgument("cannot open " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (bytes.size() < sizeof(kMagic) + 4 + 8) {
    return Status::Corruption("snapshot truncated");
  }
  // Verify the trailing checksum over everything before it.
  uint64_t stored_hash = 0;
  for (int i = 7; i >= 0; --i) {
    stored_hash = (stored_hash << 8) |
                  static_cast<uint8_t>(bytes[bytes.size() - 8 +
                                             static_cast<size_t>(i)]);
  }
  if (stored_hash != Fnv1a(bytes.substr(0, bytes.size() - 8))) {
    return Status::Corruption("snapshot checksum mismatch");
  }

  Reader reader(bytes);
  char magic[4];
  if (!reader.Take(magic, 4) || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::InvalidArgument("not a dsf snapshot");
  }
  uint32_t version = 0;
  if (!reader.TakeU32(&version)) return Status::Corruption("truncated");
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported snapshot version " +
                                   std::to_string(version));
  }
  DenseFile::Options options;
  uint8_t policy_tag = 0;
  uint8_t smart = 0;
  int64_t record_count = 0;
  if (!reader.TakeI64(&options.num_pages) || !reader.TakeI64(&options.d) ||
      !reader.TakeI64(&options.D) || !reader.TakeI64(&options.J) ||
      !reader.TakeI64(&options.block_size) ||
      !reader.Take(&policy_tag, 1) || !reader.Take(&smart, 1) ||
      !reader.TakeI64(&record_count)) {
    return Status::Corruption("snapshot header truncated");
  }
  StatusOr<DenseFile::Policy> policy = PolicyFromTag(policy_tag);
  if (!policy.ok()) return policy.status();
  options.policy = *policy;
  options.smart_placement = smart != 0;
  if (record_count < 0) return Status::Corruption("negative record count");

  std::vector<Record> records;
  records.reserve(static_cast<size_t>(record_count));
  for (int64_t i = 0; i < record_count; ++i) {
    Record r;
    if (!reader.TakeU64(&r.key) || !reader.TakeU64(&r.value)) {
      return Status::Corruption("snapshot records truncated");
    }
    records.push_back(r);
  }

  StatusOr<std::unique_ptr<DenseFile>> file = DenseFile::Create(options);
  if (!file.ok()) return file.status();
  DSF_RETURN_IF_ERROR((*file)->BulkLoad(records));
  return std::move(*file);
}

}  // namespace dsf
