#include "core/control1.h"

#include <algorithm>

#include "util/check.h"

namespace dsf {

StatusOr<std::unique_ptr<Control1>> Control1::Create(const Config& config) {
  StatusOr<DensitySpec> spec = MakeLogicalSpec(config);
  if (!spec.ok()) return spec.status();
  if (!spec->SatisfiesGapCondition()) {
    return Status::InvalidArgument(
        "CONTROL 1 requires D - d > 3*ceil(log M); raise block_size "
        "(Theorem 5.7) to lift a small gap above the threshold");
  }
  return std::unique_ptr<Control1>(new Control1(config, *spec));
}

Status Control1::Insert(const Record& record) {
  if (size() >= MaxRecords()) {
    return Status::CapacityExceeded("file already holds N = d*M records");
  }
  BeginCommand(CommandKind::kInsert);
  // Step A: locate the target block and insert. If the key is already
  // present it necessarily lives in the target block (the block whose key
  // interval covers it), so one read doubles as the duplicate probe.
  const Address target = TargetBlockForInsert(record.key);
  StatusOr<std::vector<Record>> read = ReadBlock(target);
  if (!read.ok()) {
    // Clean abort: nothing was written, the file is untouched.
    return EndCommand(read.status());
  }
  std::vector<Record>& records = *read;
  const auto pos = std::lower_bound(records.begin(), records.end(), record,
                                    RecordKeyLess);
  if (pos != records.end() && pos->key == record.key) {
    return EndCommand(Status::AlreadyExists("key already present"));
  }
  records.insert(pos, record);
  const Status write = WriteBlock(target, records);
  if (!write.ok()) {
    return EndCommand(write);
  }

  // Step B: fix the highest BALANCE violation, if the insert caused one.
  // A fault here leaves the record durably inserted but the file possibly
  // unbalanced; the caller runs CheckAndRepair before continuing.
  const int violator = HighestViolatorOnPath(target);
  if (violator != Calibrator::kNoNode) {
    const int father = calibrator_.Parent(violator);
    DSF_CHECK(father != Calibrator::kNoNode)
        << "root violated BALANCE despite the capacity check";
    const Status s = Redistribute(father);
    if (!s.ok()) {
      return EndCommand(s);
    }
  }
  return EndCommand();
}

Status Control1::Delete(Key key) {
  const Address block = BlockPossiblyContaining(key);
  if (block == 0) return Status::NotFound("key absent");
  BeginCommand(CommandKind::kDelete);
  StatusOr<std::vector<Record>> read = ReadBlock(block);
  if (!read.ok()) {
    return EndCommand(read.status());
  }
  std::vector<Record>& records = *read;
  const auto it = std::lower_bound(records.begin(), records.end(),
                                   Record{key, 0}, RecordKeyLess);
  if (it == records.end() || it->key != key) {
    return EndCommand(Status::NotFound("key absent"));
  }
  records.erase(it);
  const Status write = WriteBlock(block, records);
  // Deletions only lower densities; BALANCE cannot newly fail.
  return EndCommand(write);
}

Status Control1::ValidateInvariants() const {
  DSF_RETURN_IF_ERROR(ControlBase::ValidateInvariants());
  return ValidateBalance();
}

int Control1::HighestViolatorOnPath(Address block) const {
  for (const int v : calibrator_.PathToLeaf(block)) {
    if (!logical_spec_.DensityAtMost(calibrator_.Count(v),
                                     calibrator_.PagesIn(v),
                                     calibrator_.Depth(v), kThirds1)) {
      return v;
    }
  }
  return Calibrator::kNoNode;
}

Status Control1::Redistribute(int f) {
  const Address lo = calibrator_.RangeLo(f);
  const Address hi = calibrator_.RangeHi(f);
  ++stats_.rebalances;
  stats_.pages_redistributed += calibrator_.PagesIn(f);
  // The even spread (block j of the m in range gets floor((j+1)n/m) -
  // floor(jn/m) records, so every aligned subrange sits within one record
  // per block of the average and p(w) <= p(f) + 1) runs as the crash-safe
  // pack-then-spread pass so a fault mid-redistribution cannot lose
  // records.
  return RedistributeRangeCrashSafe(lo, hi);
}

}  // namespace dsf
