#include "core/dense_file.h"

#include "core/control1.h"
#include "core/control2.h"
#include "core/local_shift.h"
#include "util/math.h"

namespace dsf {

StatusOr<int64_t> DenseFile::AutoBlockSize(int64_t num_pages, int64_t d,
                                           int64_t D) {
  if (num_pages < 1 || d < 1 || D <= d) {
    return Status::InvalidArgument("need num_pages >= 1 and 1 <= d < D");
  }
  for (int64_t k = 1; k <= num_pages; ++k) {
    if (num_pages % k != 0) continue;
    const int64_t blocks = num_pages / k;
    const int64_t L = std::max<int64_t>(1, CeilLog2(blocks));
    if (k * (D - d) > 3 * L) return k;
  }
  return Status::InvalidArgument(
      "no divisor of num_pages satisfies K*(D-d) > 3*ceil(log(M/K))");
}

StatusOr<std::unique_ptr<DenseFile>> DenseFile::Create(
    const Options& options) {
  int64_t block_size = options.block_size;
  if (block_size == 0) {
    if (options.policy == Policy::kLocalShift) {
      block_size = 1;  // needs no gap condition, hence no macro-blocks
    } else {
      StatusOr<int64_t> k =
          AutoBlockSize(options.num_pages, options.d, options.D);
      if (!k.ok()) return k.status();
      block_size = *k;
    }
  }
  ControlBase::Config config;
  config.num_pages = options.num_pages;
  config.d = options.d;
  config.D = options.D;
  config.block_size = block_size;
  config.smart_placement = options.smart_placement;
  if (options.cache_frames < 0) {
    return Status::InvalidArgument("cache_frames must be >= 0");
  }
  config.cache_frames = options.cache_frames;
  config.cache_eviction = options.cache_eviction;

  std::unique_ptr<ControlBase> control;
  switch (options.policy) {
    case Policy::kControl1: {
      StatusOr<std::unique_ptr<Control1>> c = Control1::Create(config);
      if (!c.ok()) return c.status();
      control = std::move(*c);
      break;
    }
    case Policy::kControl2: {
      Control2::Options c2;
      c2.config = config;
      c2.J = options.J;
      StatusOr<std::unique_ptr<Control2>> c = Control2::Create(c2);
      if (!c.ok()) return c.status();
      control = std::move(*c);
      break;
    }
    case Policy::kLocalShift: {
      StatusOr<std::unique_ptr<LocalShift>> c = LocalShift::Create(config);
      if (!c.ok()) return c.status();
      control = std::move(*c);
      break;
    }
  }
  Options resolved = options;
  resolved.block_size = block_size;
  return std::unique_ptr<DenseFile>(
      new DenseFile(resolved, std::move(control)));
}

StatusOr<Value> DenseFile::Get(Key key) {
  StatusOr<Record> r = control_->Get(key);
  if (!r.ok()) return r.status();
  return r->value;
}

}  // namespace dsf
