#include "core/dense_file.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "analysis/auditor.h"
#include "core/control1.h"
#include "core/control2.h"
#include "core/local_shift.h"
#include "obs/metric_names.h"
#include "util/math.h"

namespace dsf {

StatusOr<int64_t> DenseFile::AutoBlockSize(int64_t num_pages, int64_t d,
                                           int64_t D) {
  if (num_pages < 1 || d < 1 || D <= d) {
    return Status::InvalidArgument("need num_pages >= 1 and 1 <= d < D");
  }
  for (int64_t k = 1; k <= num_pages; ++k) {
    if (num_pages % k != 0) continue;
    const int64_t blocks = num_pages / k;
    const int64_t L = std::max<int64_t>(1, CeilLog2(blocks));
    if (k * (D - d) > 3 * L) return k;
  }
  return Status::InvalidArgument(
      "no divisor of num_pages satisfies K*(D-d) > 3*ceil(log(M/K))");
}

StatusOr<std::unique_ptr<DenseFile>> DenseFile::Create(
    const Options& options) {
  int64_t block_size = options.block_size;
  if (block_size == 0) {
    if (options.policy == Policy::kLocalShift) {
      block_size = 1;  // needs no gap condition, hence no macro-blocks
    } else {
      StatusOr<int64_t> k =
          AutoBlockSize(options.num_pages, options.d, options.D);
      if (!k.ok()) return k.status();
      block_size = *k;
    }
  }
  ControlBase::Config config;
  config.num_pages = options.num_pages;
  config.d = options.d;
  config.D = options.D;
  config.block_size = block_size;
  config.smart_placement = options.smart_placement;
  if (options.cache_frames < 0) {
    return Status::InvalidArgument("cache_frames must be >= 0");
  }
  config.cache_frames = options.cache_frames;
  config.cache_eviction = options.cache_eviction;
  if (options.staging_entries < 0 || options.staging_bytes < 0 ||
      options.drain_batch < 0) {
    return Status::InvalidArgument(
        "staging_entries / staging_bytes / drain_batch must be >= 0");
  }

  std::unique_ptr<ControlBase> control;
  // CONTROL 2's resolved J, captured for the bound certifier; 0 for the
  // other policies (they are certified against the CONTROL 2 envelope at
  // the recommended J for the same geometry).
  int64_t control2_j = 0;
  switch (options.policy) {
    case Policy::kControl1: {
      StatusOr<std::unique_ptr<Control1>> c = Control1::Create(config);
      if (!c.ok()) return c.status();
      control = std::move(*c);
      break;
    }
    case Policy::kControl2: {
      Control2::Options c2;
      c2.config = config;
      c2.J = options.J;
      StatusOr<std::unique_ptr<Control2>> c = Control2::Create(c2);
      if (!c.ok()) return c.status();
      control2_j = (*c)->J();
      control = std::move(*c);
      break;
    }
    case Policy::kLocalShift: {
      StatusOr<std::unique_ptr<LocalShift>> c = LocalShift::Create(config);
      if (!c.ok()) return c.status();
      control = std::move(*c);
      break;
    }
  }
  Options resolved = options;
  resolved.block_size = block_size;
  std::unique_ptr<DenseFile> file(
      new DenseFile(resolved, std::move(control)));
  if (options.backend_factory != nullptr) {
    // Attach the durable device before anything can land in the pages:
    // from here on every device write is persisted in issue order.
    PageFile& pf = file->control_->file();
    StatusOr<std::unique_ptr<StorageBackend>> backend =
        options.backend_factory(pf.num_pages(), pf.page_capacity());
    DSF_RETURN_IF_ERROR(backend.status());
    DSF_RETURN_IF_ERROR(
        file->control_->AttachStorageBackend(std::move(*backend)));
  }
  // The J the Theorem-5.7 envelope is evaluated at — shared by the bound
  // certifier and the drain scheduler's step budget, and retunable later
  // through SetMaintenanceJ (never below this resolved default).
  file->certified_j_ =
      control2_j > 0 ? control2_j
                     : file->control_->logical_spec().RecommendedJ(
                           Control2::kDefaultJSafety);
  file->default_j_ = file->certified_j_;
  if (options.certify_bound) {
    file->certifier_ = std::make_unique<BoundCertifier>(
        options.num_pages, options.d, options.D, block_size,
        file->certified_j_);
  }
  if (options.staging_entries > 0 || options.staging_bytes > 0) {
    Memtable::Options staging;
    staging.max_entries = options.staging_entries;
    staging.max_bytes = options.staging_bytes;
    file->staging_ = std::make_unique<Memtable>(staging);
    file->drain_batch_override_ = options.drain_batch;
  }
  file->SyncTuningDerivedState(/*recalibrate=*/false);
  if (options.metrics != nullptr || options.tracer != nullptr ||
      file->certifier_ != nullptr) {
    file->control_->SetObservability(options.metrics, options.tracer,
                                     file->certifier_.get(),
                                     options.metrics_label);
  }
  if (options.metrics != nullptr && file->staging_ != nullptr) {
    MetricsRegistry& reg = *options.metrics;
    const std::string& label = options.metrics_label;
    file->m_staging_puts_ = reg.FindOrCreateCounter(kMetricStagingPuts, label);
    file->m_staging_hits_ = reg.FindOrCreateCounter(kMetricStagingHits, label);
    file->m_staging_annihilations_ =
        reg.FindOrCreateCounter(kMetricStagingAnnihilations, label);
    file->m_staging_drain_steps_ =
        reg.FindOrCreateCounter(kMetricStagingDrainSteps, label);
    file->m_staging_drained_ =
        reg.FindOrCreateCounter(kMetricStagingDrainedEntries, label);
    file->m_staging_entries_ =
        reg.FindOrCreateGauge(kMetricStagingEntries, label);
  }
  return file;
}

StatusOr<Value> DenseFile::Get(Key key) const {
  if (staging_ != nullptr) {
    const StagedEntry* entry = staging_->Find(key);
    if (entry != nullptr) {
      BumpHit();
      if (entry->kind == StagedEntry::Kind::kTombstone) {
        return Status::NotFound("key absent");
      }
      return entry->record.value;
    }
  }
  StatusOr<Record> r = control_->Get(key);
  if (!r.ok()) return r.status();
  return r->value;
}

bool DenseFile::Contains(Key key) const {
  if (staging_ != nullptr) {
    const StagedEntry* entry = staging_->Find(key);
    if (entry != nullptr) {
      BumpHit();
      return entry->kind != StagedEntry::Kind::kTombstone;
    }
  }
  return control_->Contains(key);
}

Status DenseFile::Scan(Key lo, Key hi, std::vector<Record>* out) const {
  if (staging_ == nullptr || staging_->empty()) {
    return control_->Scan(lo, hi, out);
  }
  if (lo > hi) return Status::OK();
  std::vector<Record> file_part;
  DSF_RETURN_IF_ERROR(control_->Scan(lo, hi, &file_part));
  const std::vector<StagedEntry>& entries = staging_->entries();
  size_t oi = static_cast<size_t>(staging_->LowerBound(lo));
  size_t fi = 0;
  int64_t consulted = 0;
  out->reserve(out->size() + file_part.size() +
               (entries.size() - oi));  // inserts can only add
  while (true) {
    const bool overlay_ok =
        oi < entries.size() && entries[oi].record.key <= hi;
    const bool file_ok = fi < file_part.size();
    if (!overlay_ok && !file_ok) break;
    if (!overlay_ok ||
        (file_ok && file_part[fi].key < entries[oi].record.key)) {
      out->push_back(file_part[fi++]);
      continue;
    }
    const StagedEntry& entry = entries[oi++];
    ++consulted;
    if (file_ok && file_part[fi].key == entry.record.key) ++fi;
    if (entry.kind == StagedEntry::Kind::kTombstone) continue;
    out->push_back(entry.record);
  }
  BumpHit(consulted);
  return Status::OK();
}

StatusOr<std::vector<Record>> DenseFile::ScanAll() const {
  if (staging_ == nullptr || staging_->empty()) return control_->ScanAll();
  std::vector<Record> out;
  DSF_RETURN_IF_ERROR(Scan(0, std::numeric_limits<Key>::max(), &out));
  return out;
}

Cursor DenseFile::NewCursor(Key start) const {
  Cursor cursor = [&]() -> Cursor {
    if (staging_ == nullptr || staging_->empty()) {
      return control_->NewCursor(start);
    }
    const std::vector<StagedEntry>& entries = staging_->entries();
    std::vector<StagedEntry> overlay(
        entries.begin() + staging_->LowerBound(start), entries.end());
    return Cursor(control_.get(), start, std::move(overlay));
  }();
  // Register the cursor so piggyback drains suspend until it dies — a
  // drain's SHIFTs can push records forward across the cursor's block
  // frontier, double-visiting them (see the NewCursor contract in
  // dense_file.h and the regression in tests/cursor_range_test.cc).
  live_cursors_.fetch_add(1, std::memory_order_acq_rel);
  cursor.live_counter_ = &live_cursors_;
  return cursor;
}

bool DenseFile::TryEpochGet(Key key, Value* value) const {
  BufferPool* pool = control_->pool();
  if (pool == nullptr) return false;
  // A staged tombstone/update must shadow the durable twin; that merge
  // needs the locked view, so any observable staging occupancy forces
  // the fallback (zero concurrent with a writer's very first stage is
  // fine — the lookup linearizes before that incomplete command).
  if (staging_size_relaxed() != 0) return false;
  Record r{0, 0};
  if (!pool->TryEpochGet(key, &r)) return false;
  *value = r.value;
  return true;
}

AuditReport DenseFile::Audit() const {
  AuditReport report = Auditor::AuditControl(*control_);
  if (staging_ != nullptr) {
    report.Merge(Auditor::AuditStaging(*staging_, *control_), -1);
  }
  return report;
}

Status DenseFile::ValidateInvariants() const {
  DSF_RETURN_IF_ERROR(control_->ValidateInvariants());
  if (staging_ != nullptr) {
    DSF_RETURN_IF_ERROR(staging_->ValidateOrder());
  }
  return Status::OK();
}

StatusOr<std::unique_ptr<DenseFile>> DenseFile::Open(const Options& options) {
  if (options.backend_factory == nullptr) {
    return Status::InvalidArgument(
        "DenseFile::Open needs a backend_factory (use Create for a pure "
        "in-memory file)");
  }
  StatusOr<std::unique_ptr<DenseFile>> file_or = Create(options);
  DSF_RETURN_IF_ERROR(file_or.status());
  std::unique_ptr<DenseFile> file = std::move(file_or).value();
  // Create attached the backend and loaded the device image into the
  // working pages; the calibrator and warning state are still empty.
  // The repair pass rebuilds them and fixes crash damage — including
  // dropping records from slots that failed their checksum (recorded in
  // corrupt_pages_at_open()).
  StatusOr<RepairReport> report = file->CheckAndRepair();
  DSF_RETURN_IF_ERROR(report.status());
  file->open_repair_report_ = *report;
  return file;
}

Status DenseFile::MaybeAudit(Status s) const {
  if (!options_.audit_every_command) return s;
  // A command that died on a device fault (or ran out of pool frames
  // mid-flight) leaves the file legitimately out of invariants until
  // CheckAndRepair; auditing that state would report the fault's damage
  // as corruption. Every other outcome — success or a user-level
  // rejection — must leave a fully consistent file.
  if (s.IsIoError() || s.IsResourceExhausted()) return s;
  const Status audit = Audit().ToStatus();
  if (!audit.ok() && s.ok()) return audit;
  return s;
}

Status DenseFile::Insert(const Record& record) {
  if (staging_ == nullptr) return MaybeAudit(control_->Insert(record));
  Status s = StageInsert(record);
  if (!s.IsIoError()) {
    // Piggyback: every command pays a slice of the drain debt (a
    // rejected stage still triggers it — the buffer is just as full).
    const Status drain = MaybeDrain();
    if (s.ok() && !drain.ok()) s = drain;
  }
  return MaybeAudit(s);
}

Status DenseFile::Delete(Key key) {
  if (staging_ == nullptr) return MaybeAudit(control_->Delete(key));
  Status s = StageDelete(key);
  if (!s.IsIoError()) {
    const Status drain = MaybeDrain();
    if (s.ok() && !drain.ok()) s = drain;
  }
  return MaybeAudit(s);
}

Status DenseFile::StageInsert(const Record& record) {
  // Same rejection order as the un-staged command (and ReferenceModel):
  // capacity first, then duplicate — against the *merged* view.
  if (size() >= capacity()) {
    return Status::CapacityExceeded("file already holds N = d*M records");
  }
  const StagedEntry* entry = staging_->Find(record.key);
  if (entry != nullptr) {
    if (entry->kind == StagedEntry::Kind::kTombstone) {
      // Insert over a pending delete of a durable record: the net effect
      // is a value replacement — an update of the durable twin.
      staging_->Reassign(record.key, record, StagedEntry::Kind::kUpdate);
      BumpPut();
      return Status::OK();
    }
    return Status::AlreadyExists("key already present");
  }
  // One accounted probe classifies the key against the durable file —
  // what keeps the entry-kind invariants honest (kInsert ⇔ absent).
  StatusOr<Record> durable = control_->Get(record.key);
  if (!durable.ok() && !durable.status().IsNotFound()) {
    return durable.status();  // device fault mid-probe
  }
  if (durable.ok()) return Status::AlreadyExists("key already present");
  DSF_RETURN_IF_ERROR(EnsureStagingRoom());
  DSF_RETURN_IF_ERROR(staging_->Add(record, StagedEntry::Kind::kInsert));
  BumpPut();
  return Status::OK();
}

Status DenseFile::StageDelete(Key key) {
  const StagedEntry* entry = staging_->Find(key);
  if (entry != nullptr) {
    switch (entry->kind) {
      case StagedEntry::Kind::kTombstone:
        return Status::NotFound("key absent");
      case StagedEntry::Kind::kInsert:
        // Annihilation: the staged insert dies in place — this pair of
        // mutations never costs a page access.
        staging_->Erase(key);
        ++staging_stats_.annihilations;
        if (m_staging_annihilations_ != nullptr) {
          m_staging_annihilations_->Increment();
        }
        SyncStagingGauge();
        return Status::OK();
      case StagedEntry::Kind::kUpdate:
        staging_->Reassign(key, Record{key, 0},
                           StagedEntry::Kind::kTombstone);
        BumpPut();
        return Status::OK();
    }
  }
  StatusOr<Record> durable = control_->Get(key);
  if (!durable.ok()) return durable.status();  // NotFound or device fault
  DSF_RETURN_IF_ERROR(EnsureStagingRoom());
  DSF_RETURN_IF_ERROR(
      staging_->Add(Record{key, 0}, StagedEntry::Kind::kTombstone));
  BumpPut();
  return Status::OK();
}

Status DenseFile::MaybeDrain() {
  if (staging_ == nullptr || staging_->size() < drain_trigger_) {
    return Status::OK();
  }
  // Piggyback drains suspend while a cursor is live: draining moves
  // staged entries into the file mid-iteration, and the SHIFTs that
  // placement triggers can push records forward across the cursor's
  // block frontier — the cursor would visit them twice. The buffer
  // simply runs hotter until the cursor dies (EnsureStagingRoom's
  // force drain, on a completely full buffer, still fires).
  if (live_cursors() > 0) return Status::OK();
  return DrainStepInternal();
}

Status DenseFile::EnsureStagingRoom() {
  if (!staging_->full()) return Status::OK();
  DSF_RETURN_IF_ERROR(DrainStepInternal());
  if (staging_->full()) {
    return Status::ResourceExhausted("staging drain freed no room");
  }
  return Status::OK();
}

Status DenseFile::DrainStep() { return MaybeAudit(DrainStepInternal()); }

Status DenseFile::FlushStaging() {
  if (staging_ == nullptr || staging_->empty()) return Status::OK();
  return MaybeAudit(FlushStagingInternal());
}

Status DenseFile::FlushStagingInternal() {
  while (staging_ != nullptr && !staging_->empty()) {
    DSF_RETURN_IF_ERROR(DrainStepInternal());
  }
  // The staging durability point: close the drain window (if one is
  // open) so every drained record actually reaches the device.
  if (control_->flush_deferred()) return control_->EndFlushDeferral();
  return Status::OK();
}

Status DenseFile::DrainStepInternal() {
  if (staging_ == nullptr || staging_->empty()) return Status::OK();
  const IoStats step_start = control_->file().stats();
  // Drain steps run inside one long-lived flush-deferral window: N
  // inserts into the same hot block cost one physical write-back
  // instead of N, and the window spans *across* steps — with staging
  // enabled the durability point is Flush()/FlushStaging(), not the
  // individual step, so closing the window per step would only buy
  // device traffic, not safety. The window closes at
  // FlushStagingInternal (and on cache discard / repair). Each command
  // is still individually certified (EndCommand feeds the certifier
  // the logical delta regardless of deferral).
  if (!control_->flush_deferred()) control_->BeginFlushDeferral();
  Status apply = Status::OK();
  int64_t drained = 0;
  while (drained < drain_batch_ && !staging_->empty()) {
    apply = ApplyStaged(staging_->front());
    if (!apply.ok()) break;  // entry stays staged; retried after repair
    staging_->PopFront();
    ++drained;
    const IoStats so_far = control_->file().stats() - step_start;
    if (so_far.TotalLogical() >= drain_access_budget_) break;
  }
  ++staging_stats_.drain_steps;
  staging_stats_.drained_entries += drained;
  if (m_staging_drain_steps_ != nullptr) m_staging_drain_steps_->Increment();
  if (m_staging_drained_ != nullptr && drained > 0) {
    m_staging_drained_->Increment(drained);
  }
  SyncStagingGauge();
  control_->RecordDrainSpan(drained, staging_->size(),
                            control_->file().stats() - step_start);
  return apply;
}

Status DenseFile::ApplyStaged(const StagedEntry& entry) {
  switch (entry.kind) {
    case StagedEntry::Kind::kInsert: {
      Status s = control_->Insert(entry.record);
      if (s.IsCapacityExceeded()) {
        // The merged-capacity accounting admits file_size + inserts >
        // N = d*M only when tombstones cover the overshoot: apply one to
        // free a durable slot, then retry.
        DSF_RETURN_IF_ERROR(ApplyFirstTombstone());
        s = control_->Insert(entry.record);
      }
      // Already durable: a drain step interrupted after the write but
      // before the pop (transient fault) re-applies on retry.
      if (s.IsAlreadyExists()) return Status::OK();
      // A freshly drained insert was never durability-promised (the
      // point is Flush/FlushStaging): tell the pool so in-window shifts
      // of this record don't pin the write-back order.
      if (s.ok() && control_->pool() != nullptr && control_->flush_deferred()) {
        control_->pool()->NoteVolatile(entry.record.key);
      }
      return s;
    }
    case StagedEntry::Kind::kUpdate: {
      Status s = control_->Delete(entry.record.key);
      if (!s.ok() && !s.IsNotFound()) return s;
      return control_->Insert(entry.record);
    }
    case StagedEntry::Kind::kTombstone: {
      const Status s = control_->Delete(entry.record.key);
      if (s.IsNotFound()) return Status::OK();  // interrupted-step replay
      return s;
    }
  }
  return Status::OK();
}

Status DenseFile::ApplyFirstTombstone() {
  for (const StagedEntry& entry : staging_->entries()) {
    if (entry.kind != StagedEntry::Kind::kTombstone) continue;
    const Key key = entry.record.key;
    const Status s = control_->Delete(key);
    if (!s.ok() && !s.IsNotFound()) return s;
    staging_->Erase(key);
    ++staging_stats_.drained_entries;
    if (m_staging_drained_ != nullptr) m_staging_drained_->Increment();
    return Status::OK();
  }
  return Status::Corruption(
      "file at capacity during drain with no staged tombstone");
}

void DenseFile::DiscardStaging() {
  if (staging_ == nullptr) return;
  staging_->Clear();
  SyncStagingGauge();
}

void DenseFile::ReconcileStagingWithFile() {
  std::vector<Key> drop;
  std::vector<Key> demote;  // kUpdate whose delete half committed
  for (const StagedEntry& entry : staging_->entries()) {
    const bool durable = control_->PeekContains(entry.record.key);
    switch (entry.kind) {
      case StagedEntry::Kind::kInsert:
        // The interrupted step committed it (staged and durable values
        // are the same write).
        if (durable) drop.push_back(entry.record.key);
        break;
      case StagedEntry::Kind::kUpdate:
        if (!durable) demote.push_back(entry.record.key);
        break;
      case StagedEntry::Kind::kTombstone:
        if (!durable) drop.push_back(entry.record.key);
        break;
    }
  }
  for (const Key key : drop) staging_->Erase(key);
  for (const Key key : demote) {
    const StagedEntry* entry = staging_->Find(key);
    staging_->Reassign(key, entry->record, StagedEntry::Kind::kInsert);
  }
  SyncStagingGauge();
}

StagingStats DenseFile::staging_stats() const {
  StagingStats stats = staging_stats_;
  stats.hits = staging_hits_.load(std::memory_order_relaxed);
  stats.entries = staging_size();
  if (staging_ != nullptr) stats.capacity = staging_->capacity();
  return stats;
}

void DenseFile::BumpPut() {
  ++staging_stats_.puts;
  if (m_staging_puts_ != nullptr) m_staging_puts_->Increment();
  SyncStagingGauge();
}

void DenseFile::BumpHit(int64_t n) const {
  if (n <= 0) return;
  // Relaxed atomic: concurrent shared-lock readers hit the staging
  // buffer simultaneously; each increment stays exact.
  staging_hits_.fetch_add(n, std::memory_order_relaxed);
  if (m_staging_hits_ != nullptr) m_staging_hits_->Increment(n);
}

void DenseFile::SyncStagingGauge() {
  staging_stats_.entries = staging_ == nullptr ? 0 : staging_->size();
  // Release-publish the occupancy for lock-free epoch-read gating
  // (staging_size_relaxed); every staging mutation path ends here.
  staging_gauge_.store(staging_stats_.entries, std::memory_order_release);
  if (m_staging_entries_ != nullptr) {
    m_staging_entries_->Set(staging_stats_.entries);
  }
}

StatusOr<int64_t> DenseFile::DeleteRange(Key lo, Key hi) {
  if (staging_ == nullptr) {
    StatusOr<int64_t> n = control_->DeleteRange(lo, hi);
    const Status audited = MaybeAudit(n.ok() ? Status::OK() : n.status());
    if (!audited.ok()) return audited;
    return n;
  }
  if (lo > hi) return static_cast<int64_t>(0);
  // Resolve the staged side first: inserts in range die in place without
  // a page access, updates collapse into the durable deletion below, and
  // tombstoned records were never visible (the durable delete of their
  // twin must not be counted).
  int64_t staged_inserts = 0;
  int64_t staged_tombstones = 0;
  std::vector<Key> doomed;
  const std::vector<StagedEntry>& entries = staging_->entries();
  for (int64_t i = staging_->LowerBound(lo);
       i < staging_->size() &&
       entries[static_cast<size_t>(i)].record.key <= hi;
       ++i) {
    const StagedEntry& entry = entries[static_cast<size_t>(i)];
    doomed.push_back(entry.record.key);
    if (entry.kind == StagedEntry::Kind::kInsert) ++staged_inserts;
    if (entry.kind == StagedEntry::Kind::kTombstone) ++staged_tombstones;
  }
  for (const Key key : doomed) staging_->Erase(key);
  if (!doomed.empty()) SyncStagingGauge();
  StatusOr<int64_t> n = control_->DeleteRange(lo, hi);
  Status s = n.ok() ? Status::OK() : n.status();
  if (s.ok()) {
    const Status drain = MaybeDrain();
    if (!drain.ok()) s = drain;
  }
  const Status audited = MaybeAudit(s);
  if (!audited.ok()) return audited;
  return *n + staged_inserts - staged_tombstones;
}

Status DenseFile::InsertBatch(const std::vector<Record>& records) {
  if (staging_ != nullptr) DSF_RETURN_IF_ERROR(FlushStagingInternal());
  return MaybeAudit(control_->InsertBatch(records));
}

Status DenseFile::InsertBatchSorted(const Record* begin, const Record* end) {
  if (staging_ != nullptr) DSF_RETURN_IF_ERROR(FlushStagingInternal());
  return MaybeAudit(control_->InsertBatchSorted(begin, end));
}

Status DenseFile::Compact() {
  Status s = MaybeAudit(control_->Compact());
  // A wholesale reorganization is a (re-)calibration point: recompute
  // the certifier envelope from the live (K, J) rather than trusting the
  // open-time values — the invariant is that the budget being enforced
  // always matches the state the commands actually run against.
  if (s.ok()) SyncTuningDerivedState(/*recalibrate=*/true);
  return s;
}

void DenseFile::SyncTuningDerivedState(bool recalibrate) {
  const int64_t k = control_->block_size();
  // Per-step drain budget = the per-command envelope K*(4J+2): a step
  // never asks for more logical accesses than the worst single command
  // is allowed (soft cap: the command that crosses the line completes
  // and is still individually certified). The auto batch divides the
  // budget by 4K — roughly J typical inserts (read + write + a SHIFT
  // cycle's traffic each) per step.
  drain_access_budget_ = BoundCertifier::BudgetFor(k, certified_j_);
  if (staging_ != nullptr) {
    drain_batch_ = drain_batch_override_ > 0
                       ? drain_batch_override_
                       : std::max<int64_t>(4, drain_access_budget_ / (4 * k));
    drain_trigger_ = std::max(drain_batch_, staging_->capacity() / 2);
  }
  if (recalibrate && certifier_ != nullptr) {
    certifier_->Recalibrate(k, certified_j_);
  }
}

Status DenseFile::SetMaintenanceJ(int64_t j) {
  if (options_.policy != Policy::kControl2) {
    return Status::InvalidArgument("maintenance J is a CONTROL 2 knob; " +
                                   control_->Name() + " has no J");
  }
  if (j < default_j_) {
    return Status::InvalidArgument(
        "J=" + std::to_string(j) + " below the resolved default " +
        std::to_string(default_j_) + " (Theorem 5.5's floor)");
  }
  static_cast<Control2*>(control_.get())->SetMaintenanceJ(j);
  certified_j_ = j;
  SyncTuningDerivedState(/*recalibrate=*/true);
  return Status::OK();
}

void DenseFile::SetDrainBatch(int64_t batch) {
  if (staging_ == nullptr) return;
  drain_batch_override_ = batch > 0 ? batch : 0;
  SyncTuningDerivedState(/*recalibrate=*/false);
}

int64_t DenseFile::SetStagingCapacity(int64_t entries) {
  if (staging_ == nullptr) return 0;
  const int64_t installed = staging_->SetCapacity(entries);
  SyncTuningDerivedState(/*recalibrate=*/false);
  return installed;
}

Status DenseFile::ResizeCache(int64_t new_frames) {
  if (control_->pool() == nullptr) {
    return Status::FailedPrecondition(
        "cache resize on a file opened without a buffer pool");
  }
  return control_->pool()->Resize(new_frames);
}

Status DenseFile::BulkLoad(const std::vector<Record>& records) {
  // A load replaces the file's contents wholesale; staged mutations
  // against the old contents are meaningless afterwards.
  DiscardStaging();
  return MaybeAudit(control_->BulkLoad(records));
}

Status DenseFile::Flush() {
  if (staging_ != nullptr) DSF_RETURN_IF_ERROR(FlushStagingInternal());
  return control_->Flush();
}

StatusOr<RepairReport> DenseFile::CheckAndRepair() {
  StatusOr<RepairReport> report = control_->CheckAndRepair();
  if (!report.ok()) return report;
  // An interrupted drain step may have committed a staged prefix (or the
  // delete half of an update); re-classify what is still staged against
  // the repaired file so the kind invariants hold before the audit.
  if (staging_ != nullptr) ReconcileStagingWithFile();
  // Post-repair state must be auditor-certified, not merely
  // ValidateInvariants-clean (the repair path already guarantees the
  // latter).
  const Status audited = MaybeAudit(Status::OK());
  if (!audited.ok()) return audited;
  return report;
}

}  // namespace dsf
