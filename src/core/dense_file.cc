#include "core/dense_file.h"

#include "analysis/auditor.h"
#include "core/control1.h"
#include "core/control2.h"
#include "core/local_shift.h"
#include "util/math.h"

namespace dsf {

StatusOr<int64_t> DenseFile::AutoBlockSize(int64_t num_pages, int64_t d,
                                           int64_t D) {
  if (num_pages < 1 || d < 1 || D <= d) {
    return Status::InvalidArgument("need num_pages >= 1 and 1 <= d < D");
  }
  for (int64_t k = 1; k <= num_pages; ++k) {
    if (num_pages % k != 0) continue;
    const int64_t blocks = num_pages / k;
    const int64_t L = std::max<int64_t>(1, CeilLog2(blocks));
    if (k * (D - d) > 3 * L) return k;
  }
  return Status::InvalidArgument(
      "no divisor of num_pages satisfies K*(D-d) > 3*ceil(log(M/K))");
}

StatusOr<std::unique_ptr<DenseFile>> DenseFile::Create(
    const Options& options) {
  int64_t block_size = options.block_size;
  if (block_size == 0) {
    if (options.policy == Policy::kLocalShift) {
      block_size = 1;  // needs no gap condition, hence no macro-blocks
    } else {
      StatusOr<int64_t> k =
          AutoBlockSize(options.num_pages, options.d, options.D);
      if (!k.ok()) return k.status();
      block_size = *k;
    }
  }
  ControlBase::Config config;
  config.num_pages = options.num_pages;
  config.d = options.d;
  config.D = options.D;
  config.block_size = block_size;
  config.smart_placement = options.smart_placement;
  if (options.cache_frames < 0) {
    return Status::InvalidArgument("cache_frames must be >= 0");
  }
  config.cache_frames = options.cache_frames;
  config.cache_eviction = options.cache_eviction;

  std::unique_ptr<ControlBase> control;
  // CONTROL 2's resolved J, captured for the bound certifier; 0 for the
  // other policies (they are certified against the CONTROL 2 envelope at
  // the recommended J for the same geometry).
  int64_t control2_j = 0;
  switch (options.policy) {
    case Policy::kControl1: {
      StatusOr<std::unique_ptr<Control1>> c = Control1::Create(config);
      if (!c.ok()) return c.status();
      control = std::move(*c);
      break;
    }
    case Policy::kControl2: {
      Control2::Options c2;
      c2.config = config;
      c2.J = options.J;
      StatusOr<std::unique_ptr<Control2>> c = Control2::Create(c2);
      if (!c.ok()) return c.status();
      control2_j = (*c)->J();
      control = std::move(*c);
      break;
    }
    case Policy::kLocalShift: {
      StatusOr<std::unique_ptr<LocalShift>> c = LocalShift::Create(config);
      if (!c.ok()) return c.status();
      control = std::move(*c);
      break;
    }
  }
  Options resolved = options;
  resolved.block_size = block_size;
  std::unique_ptr<DenseFile> file(
      new DenseFile(resolved, std::move(control)));
  if (options.certify_bound) {
    const int64_t j =
        control2_j > 0
            ? control2_j
            : file->control_->logical_spec().RecommendedJ(
                  Control2::kDefaultJSafety);
    file->certifier_ = std::make_unique<BoundCertifier>(
        options.num_pages, options.d, options.D, block_size, j);
  }
  if (options.metrics != nullptr || options.tracer != nullptr ||
      file->certifier_ != nullptr) {
    file->control_->SetObservability(options.metrics, options.tracer,
                                     file->certifier_.get(),
                                     options.metrics_label);
  }
  return file;
}

StatusOr<Value> DenseFile::Get(Key key) {
  StatusOr<Record> r = control_->Get(key);
  if (!r.ok()) return r.status();
  return r->value;
}

AuditReport DenseFile::Audit() const {
  return Auditor::AuditControl(*control_);
}

Status DenseFile::MaybeAudit(Status s) const {
  if (!options_.audit_every_command) return s;
  // A command that died on a device fault (or ran out of pool frames
  // mid-flight) leaves the file legitimately out of invariants until
  // CheckAndRepair; auditing that state would report the fault's damage
  // as corruption. Every other outcome — success or a user-level
  // rejection — must leave a fully consistent file.
  if (s.IsIoError() || s.IsResourceExhausted()) return s;
  const Status audit = Audit().ToStatus();
  if (!audit.ok() && s.ok()) return audit;
  return s;
}

Status DenseFile::Insert(const Record& record) {
  return MaybeAudit(control_->Insert(record));
}

Status DenseFile::Delete(Key key) { return MaybeAudit(control_->Delete(key)); }

StatusOr<int64_t> DenseFile::DeleteRange(Key lo, Key hi) {
  StatusOr<int64_t> n = control_->DeleteRange(lo, hi);
  const Status audited = MaybeAudit(n.ok() ? Status::OK() : n.status());
  if (!audited.ok()) return audited;
  return n;
}

Status DenseFile::InsertBatch(const std::vector<Record>& records) {
  return MaybeAudit(control_->InsertBatch(records));
}

Status DenseFile::Compact() { return MaybeAudit(control_->Compact()); }

Status DenseFile::BulkLoad(const std::vector<Record>& records) {
  return MaybeAudit(control_->BulkLoad(records));
}

StatusOr<RepairReport> DenseFile::CheckAndRepair() {
  StatusOr<RepairReport> report = control_->CheckAndRepair();
  if (!report.ok()) return report;
  // Post-repair state must be auditor-certified, not merely
  // ValidateInvariants-clean (the repair path already guarantees the
  // latter).
  const Status audited = MaybeAudit(Status::OK());
  if (!audited.ok()) return audited;
  return report;
}

}  // namespace dsf
