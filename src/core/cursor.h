// Cursor: incremental stream retrieval without materializing the result.
//
// A cursor buffers one block at a time (accounted reads, sequential
// addresses) and yields records in ascending key order. It is a read
// snapshot of each block at the moment the block is loaded; mutating the
// file while a cursor is open invalidates it (no crash, but records may
// be skipped or repeated — the usual database iterator contract without
// MVCC).
//
//   for (dsf::Cursor cur = file.NewCursor(1000); cur.Valid(); cur.Next())
//     Use(cur.record());

#ifndef DSF_CORE_CURSOR_H_
#define DSF_CORE_CURSOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "storage/record.h"
#include "util/status.h"

namespace dsf {

class ControlBase;

class Cursor {
 public:
  // True while the cursor points at a record. A cursor that hit a read
  // fault becomes invalid with a non-OK status(); callers distinguish
  // exhaustion from failure by checking status() once Valid() is false.
  bool Valid() const { return index_ < buffer_.size(); }

  // OK unless a block read faulted while (re)filling the buffer.
  const Status& status() const { return status_; }

  // The current record; cursor must be Valid().
  const Record& record() const;

  // Advances to the next record in key order (loading the next non-empty
  // block when the buffer is exhausted).
  void Next();

 private:
  friend class ControlBase;
  Cursor(ControlBase* control, Key start);

  // Loads the first non-empty block at or after `block` whose records
  // reach `min_key`, filling buffer_ from min_key on.
  void LoadFrom(Address block, Key min_key);

  ControlBase* control_;
  Address block_ = 0;  // block currently buffered
  std::vector<Record> buffer_;
  size_t index_ = 0;
  Status status_;
};

}  // namespace dsf

#endif  // DSF_CORE_CURSOR_H_
