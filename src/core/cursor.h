// Cursor: incremental stream retrieval without materializing the result.
//
// A cursor buffers one block at a time (accounted reads, sequential
// addresses) and yields records in ascending key order. It is a read
// snapshot of each block at the moment the block is loaded; mutating the
// file while a cursor is open invalidates it (no crash, but records may
// be skipped or repeated — the usual database iterator contract without
// MVCC).
//
//   for (dsf::Cursor cur = file.NewCursor(1000); cur.Valid(); cur.Next())
//     Use(cur.record());

#ifndef DSF_CORE_CURSOR_H_
#define DSF_CORE_CURSOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "storage/record.h"

namespace dsf {

class ControlBase;

class Cursor {
 public:
  // True while the cursor points at a record.
  bool Valid() const { return index_ < buffer_.size(); }

  // The current record; cursor must be Valid().
  const Record& record() const;

  // Advances to the next record in key order (loading the next non-empty
  // block when the buffer is exhausted).
  void Next();

 private:
  friend class ControlBase;
  Cursor(ControlBase* control, Key start);

  // Loads the first non-empty block at or after `block` whose records
  // reach `min_key`, filling buffer_ from min_key on.
  void LoadFrom(Address block, Key min_key);

  ControlBase* control_;
  Address block_ = 0;  // block currently buffered
  std::vector<Record> buffer_;
  size_t index_ = 0;
};

}  // namespace dsf

#endif  // DSF_CORE_CURSOR_H_
