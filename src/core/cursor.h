// Cursor: incremental stream retrieval without materializing the result.
//
// A cursor buffers one block at a time (accounted reads, sequential
// addresses) and yields records in ascending key order. It is a read
// snapshot of each block at the moment the block is loaded; mutating the
// file while a cursor is open invalidates it (no crash, but records may
// be skipped or repeated — the usual database iterator contract without
// MVCC).
//
//   for (dsf::Cursor cur = file.NewCursor(1000); cur.Valid(); cur.Next())
//     Use(cur.record());
//
// With ingest staging enabled (docs/INGEST.md), DenseFile::NewCursor
// hands the cursor a snapshot of the staged entries at or after `start`
// and the cursor runs a two-way merge: staged inserts and updates appear
// at their key position (an update's record shadows the file's), staged
// tombstones suppress the file record they cover. The overlay is a copy
// taken at cursor creation, so it follows the same no-MVCC contract as
// the block snapshots.

#ifndef DSF_CORE_CURSOR_H_
#define DSF_CORE_CURSOR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "ingest/memtable.h"
#include "storage/record.h"
#include "util/status.h"

namespace dsf {

class ControlBase;
class DenseFile;

class Cursor {
 public:
  // Move-only: the cursor registers itself with its owning DenseFile so
  // piggyback drains are suspended while it lives (see
  // DenseFile::NewCursor); the registration travels with moves and is
  // dropped exactly once at destruction.
  Cursor(Cursor&& other) noexcept
      : control_(other.control_),
        block_(other.block_),
        buffer_(std::move(other.buffer_)),
        index_(other.index_),
        status_(std::move(other.status_)),
        merged_(other.merged_),
        overlay_(std::move(other.overlay_)),
        overlay_index_(other.overlay_index_),
        current_(other.current_),
        current_valid_(other.current_valid_),
        live_counter_(other.live_counter_) {
    other.live_counter_ = nullptr;
  }
  Cursor& operator=(Cursor&& other) noexcept {
    if (this != &other) {
      Unregister();
      control_ = other.control_;
      block_ = other.block_;
      buffer_ = std::move(other.buffer_);
      index_ = other.index_;
      status_ = std::move(other.status_);
      merged_ = other.merged_;
      overlay_ = std::move(other.overlay_);
      overlay_index_ = other.overlay_index_;
      current_ = other.current_;
      current_valid_ = other.current_valid_;
      live_counter_ = other.live_counter_;
      other.live_counter_ = nullptr;
    }
    return *this;
  }
  Cursor(const Cursor&) = delete;
  Cursor& operator=(const Cursor&) = delete;
  ~Cursor() { Unregister(); }

  // True while the cursor points at a record. A cursor that hit a read
  // fault becomes invalid with a non-OK status(); callers distinguish
  // exhaustion from failure by checking status() once Valid() is false.
  bool Valid() const {
    return merged_ ? current_valid_ : index_ < buffer_.size();
  }

  // OK unless a block read faulted while (re)filling the buffer.
  const Status& status() const { return status_; }

  // The current record; cursor must be Valid().
  const Record& record() const;

  // Advances to the next record in key order (loading the next non-empty
  // block when the buffer is exhausted).
  void Next();

 private:
  friend class ControlBase;
  friend class DenseFile;
  Cursor(ControlBase* control, Key start);
  // The merged form: `overlay` is the staged-entry snapshot, already
  // sliced to keys >= start and in strict key order.
  Cursor(ControlBase* control, Key start, std::vector<StagedEntry> overlay);

  // Loads the first non-empty block at or after `block` whose records
  // reach `min_key`, filling buffer_ from min_key on.
  void LoadFrom(Address block, Key min_key);

  // Steps the file side to its next record, loading the next non-empty
  // block when the buffer runs out (shared by both cursor forms).
  void AdvanceFile();

  // Merge step: consumes overlay/file entries until one visible record is
  // found (copied into current_) or both sides are exhausted.
  void Settle();

  // DenseFile::NewCursor points the cursor at the file's live-cursor
  // count (already incremented by the caller); destruction decrements.
  void Unregister() {
    if (live_counter_ != nullptr) {
      live_counter_->fetch_sub(1, std::memory_order_acq_rel);
      live_counter_ = nullptr;
    }
  }

  ControlBase* control_;
  Address block_ = 0;  // block currently buffered
  std::vector<Record> buffer_;
  size_t index_ = 0;
  Status status_;

  // Two-way merge state (merged_ cursors only).
  bool merged_ = false;
  std::vector<StagedEntry> overlay_;
  size_t overlay_index_ = 0;
  Record current_{0, 0};
  bool current_valid_ = false;
  std::atomic<int64_t>* live_counter_ = nullptr;
};

}  // namespace dsf

#endif  // DSF_CORE_CURSOR_H_
