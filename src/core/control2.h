// CONTROL 2 — Section 4's worst-case maintenance algorithm, the paper's
// primary contribution.
//
// Instead of CONTROL 1's occasional full redistribution, CONTROL 2 runs an
// evolutionary record-shifting process: every insertion/deletion command
// executes exactly J small SHIFT steps, each moving at most a handful of
// records between two nearby pages. Per-node state:
//
//   WARNING(v)  raised (with hysteresis) when p(v) >= g(v,2/3), lowered
//               when p(v) <= g(v,1/3); signals v is close to violating
//               BALANCE(d,D).
//   DIR(v)      1 if v is its father's right son (records flow left),
//               0 if left son (records flow right). Immutable.
//   DEST(v), SOURCE(v)   the pages between which SHIFT(v) moves records;
//               both lie in RANGE(father(v)); defined only while v warns.
//
// Subroutines (Section 4, implemented verbatim):
//   SHIFT(v)    pick SOURCE as the nearest populated page beyond DEST,
//               move records SOURCE -> DEST until SOURCE empties or some
//               node x with DEST in range but SOURCE not (the set UP(v))
//               reaches p(x) >= g(x,0); then advance DEST past the
//               shallowest saturated x*.
//   SELECT(L)   from the command's leaf L, find the lowest ancestor with a
//               warning proper descendant and return its deepest warning
//               descendant — the next SHIFT target.
//   ACTIVATE(w) raise w, point DEST(w) at the far end of RANGE(father(w)),
//               and roll back the DEST of any enclosing warning node whose
//               pointer sits inside RANGE(father(w)) (the anti-thrashing
//               roll-back rules 0 and 1).
//
// Theorem 5.5: with D - d > 3*ceil(log M) and J = Omega(log^2 M/(D-d)),
// BALANCE(d,D) — hence (d,D)-density — holds at the end of every command,
// at a worst-case cost of O(J) = O(log^2 M/(D-d)) page accesses each.
// Theorem 5.7: block_size K > 3*ceil(log M)/(D-d) lifts the gap condition
// for small D-d (macro-blocks); supported here via Config::block_size.

#ifndef DSF_CORE_CONTROL2_H_
#define DSF_CORE_CONTROL2_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/control_base.h"

namespace dsf {

class Control2 : public ControlBase {
 public:
  struct Options {
    Config config;

    // SHIFT cycles per command. 0 selects RecommendedJ(kDefaultJSafety).
    // The paper proves 90*ceil(log M)^2/(D-d) adequate and observes ~18
    // typically suffices; bench E5 maps the real threshold.
    int64_t J = 0;

    // Accept D - d == or below 3*ceil(log M) without a macro-block size.
    // The paper's own Example 5.2 sits exactly on the boundary (D-d = 9 =
    // 3*ceil(log 8)); the replay needs this. Theorem 5.5 is not guaranteed
    // in this regime.
    bool allow_gap_violation_for_testing = false;

    // --- Ablation knobs (E9). Defaults are the paper's algorithm. ---
    // Skip ACTIVATE's roll-back rules (the anti-thrashing correction).
    bool disable_rollback_for_testing = false;
    // Threshold below which a warning is lowered, in thirds of (D-d)/L.
    // kThirds1Of3 is the paper's hysteresis; kThirds2Of3 collapses the
    // hysteresis band to a single threshold.
    int lower_threshold_thirds = kThirds1Of3;

    // Record per-node warning episodes (activation -> lowering) with the
    // bookkeeping of Corollary 5.4: how many *related* SHIFT calls — SHIFT
    // invocations in commands that inserted into RANGE(v) while v warned —
    // each episode consumed, against the corollary's violation budget
    // J*floor(M_v(D-d)/(3 ceil(log M))). Off by default (bench E11 only).
    bool track_episodes = false;
  };

  struct Stats {
    int64_t activations = 0;       // ACTIVATE calls
    int64_t rollbacks = 0;         // DEST roll-backs applied
    int64_t warnings_lowered = 0;
    int64_t shifts = 0;            // SHIFT calls
    int64_t shift_noops = 0;       // SHIFT found no populated source
    int64_t records_shifted = 0;   // records moved by SHIFT
    int64_t dest_advances = 0;     // SHIFT step 3 pointer moves
    int64_t idle_cycles = 0;       // step-4 cycles with nothing warning
  };

  // One completed warning episode of a node (track_episodes only): from
  // ACTIVATE to the flag lowering.
  struct WarningEpisode {
    int node = 0;
    int64_t depth = 0;
    int64_t pages = 0;           // M_v
    int64_t commands = 0;        // commands while the warning was up
    int64_t related_shifts = 0;  // Corollary 5.4's counted SHIFTs
    int64_t own_shifts = 0;      // SHIFT(v) invocations
    int64_t records_moved = 0;   // records SHIFT(v) moved
  };

  // Observation points for replaying Example 5.2: the flag-stable moments.
  enum class StablePoint {
    kAfterStep3,  // user op applied, flags settled (t1, t5 in the paper)
    kAfterCycle,  // one SELECT/SHIFT/lower cycle finished (t2..t4, t6..t8)
  };
  using StepCallback = std::function<void(StablePoint, int64_t cycle)>;

  static constexpr double kDefaultJSafety = 8.0;

  static StatusOr<std::unique_ptr<Control2>> Create(const Options& options);

  Status Insert(const Record& record) override;
  Status Delete(Key key) override;
  std::string Name() const override { return "CONTROL2"; }

  // Base checks plus Fact 5.1 flag consistency and DEST pointer sanity.
  Status ValidateInvariants() const override;

  int64_t J() const { return j_; }
  const Stats& stats() const { return stats_; }
  const Options& options() const { return options_; }

  // Retargets the SHIFT cycles per command — the J actuator behind the
  // self-tuning controller (tune/). Raising J buys maintenance headroom
  // at a higher per-command ceiling; Theorem 5.5's guarantee needs
  // J = Omega(log^2 M/(D-d)), so callers must never go below the
  // resolved default (DensitySpec::RecommendedJ at kDefaultJSafety) —
  // DSF_CHECKed here against j >= 1 only, since tests legitimately
  // explore the sub-recommended regime. Takes effect on the next
  // command; the caller owns recomputing any certifier envelope
  // (BoundCertifier::Recalibrate).
  void SetMaintenanceJ(int64_t j);

  // Per-node introspection for tests and the Example 5.2 replay.
  bool warning(int node) const { return warning_[node] != 0; }
  Address dest(int node) const { return dest_[node]; }

  // SELECT's subtree aggregates, exposed read-only for the invariant
  // auditor (analysis/auditor.cc) which recomputes them from the flags.
  int64_t warn_count_subtree(int node) const {
    return warn_count_subtree_[static_cast<size_t>(node)];
  }
  int64_t warn_max_depth_subtree(int node) const {
    return warn_max_depth_subtree_[static_cast<size_t>(node)];
  }

  // Corruption hooks for auditor tests: flip a flag through the real
  // SetWarning path (keeping SELECT aggregates consistent, so only the
  // Fact 5.1 checks fire) or dangle a DEST pointer outside its father's
  // range. Never used outside tests/auditor_test.cc.
  void CorruptWarningForTesting(int node, bool on) { SetWarning(node, on); }
  void CorruptDestForTesting(int node, Address dest) {
    dest_[static_cast<size_t>(node)] = dest;
  }

  // Completed episodes (empty unless Options::track_episodes).
  const std::vector<WarningEpisode>& episodes() const { return episodes_; }
  // Corollary 5.4's budget for a node with M_v = pages: the related-SHIFT
  // count a BALANCE violation would require.
  int64_t ViolationBudget(int64_t pages) const;

  // Invoked at every flag-stable moment inside a command (see StablePoint).
  void SetStepCallback(StepCallback callback) {
    step_callback_ = std::move(callback);
  }

  // Extends the base hook with CONTROL 2's maintenance metrics (SHIFT
  // counts, records moved, activations, warnings lowered) and per-phase
  // span recording.
  void SetObservability(MetricsRegistry* metrics, CommandTracer* tracer,
                        BoundCertifier* certifier,
                        const std::string& label = "") override;

 protected:
  void AfterBulkLoad() override;
  void AfterWholesaleReorganization() override;
  void AfterRangeDeletion(Address lo_block, Address hi_block) override;

 private:
  Control2(const Options& options, DensitySpec logical_spec, int64_t j);

  // Step 4 of the mainline: J cycles of SELECT/SHIFT/lower. Stops at the
  // first faulted SHIFT; the command's record is already durably placed,
  // so an error here means "committed but maintenance incomplete".
  Status RunMaintenance(Address leaf_block);
  // SELECT(L); kNoNode when nothing warns.
  int SelectNode(Address leaf_block) const;
  // One SHIFT(v) cycle. Writes DEST before SOURCE, so a crash between
  // the two duplicates the moved records instead of losing them.
  Status Shift(int v);
  void Activate(int w);
  void SetWarning(int v, bool on);

  // Lower v's warning if p(v) has fallen to the lower threshold.
  void LowerIfCalm(int v);
  // Clears all flags/pointers and re-activates what the current contents
  // demand (parents before children).
  void RebuildWarningState();
  // Steps 2 and 3 of the mainline along the path to `block`.
  void CheckLowerOnPath(Address block);
  void CheckRaiseOnPath(Address block);

  void NotifyStable(StablePoint point, int64_t cycle);

  Options options_;
  int64_t j_;
  Stats stats_;

  // Indexed by calibrator node id.
  std::vector<char> warning_;
  std::vector<Address> dest_;
  // Subtree aggregates driving SELECT in O(log M).
  std::vector<int64_t> warn_count_subtree_;
  std::vector<int64_t> warn_max_depth_subtree_;  // -1 when none

  // Episode tracking (track_episodes only).
  std::vector<WarningEpisode> episodes_;  // completed
  std::vector<WarningEpisode> open_by_node_;
  std::vector<char> open_flag_;
  Address command_inserted_block_ = 0;  // 0 if no insert this command

  // Cached metric handles (null without a registry; see obs/metrics.h).
  Counter* m_shifts_ = nullptr;
  Counter* m_shift_records_ = nullptr;
  Counter* m_activations_ = nullptr;
  Counter* m_warnings_lowered_ = nullptr;

  StepCallback step_callback_;
};

}  // namespace dsf

#endif  // DSF_CORE_CONTROL2_H_
