#include "core/local_shift.h"

#include <algorithm>
#include <cstdlib>

#include "util/check.h"

namespace dsf {

StatusOr<std::unique_ptr<LocalShift>> LocalShift::Create(
    const Config& config) {
  StatusOr<DensitySpec> spec = MakeLogicalSpec(config);
  if (!spec.ok()) return spec.status();
  return std::unique_ptr<LocalShift>(new LocalShift(config, *spec));
}

Address LocalShift::NearestBlockWithSpace(Address from) const {
  const int64_t full = block_size_ * page_D_;
  for (int64_t dist = 0; dist < num_blocks_; ++dist) {
    const Address left = from - dist;
    if (left >= 1 && calibrator_.Count(calibrator_.LeafOf(left)) < full) {
      return left;
    }
    const Address right = from + dist;
    if (right <= num_blocks_ &&
        calibrator_.Count(calibrator_.LeafOf(right)) < full) {
      return right;
    }
  }
  return 0;
}

void LocalShift::ShiftTowards(Address target, Address gap,
                              std::vector<Record> overfull) {
  // `overfull` is the target block's contents including the new record
  // (one above capacity). Ripple the extreme record block-by-block toward
  // the gap: every intermediate block sheds one boundary record and
  // absorbs the carry, preserving global key order throughout.
  if (gap < target) {
    Record carry = overfull.front();
    overfull.erase(overfull.begin());
    WriteBlock(target, overfull);
    for (Address b = target - 1; b >= gap; --b) {
      std::vector<Record> records = ReadBlock(b);
      records.push_back(carry);
      if (b > gap) {
        carry = records.front();
        records.erase(records.begin());
      }
      WriteBlock(b, records);
    }
  } else {
    Record carry = overfull.back();
    overfull.pop_back();
    WriteBlock(target, overfull);
    for (Address b = target + 1; b <= gap; ++b) {
      std::vector<Record> records = ReadBlock(b);
      records.insert(records.begin(), carry);
      if (b < gap) {
        carry = records.back();
        records.pop_back();
      }
      WriteBlock(b, records);
    }
  }
}

Status LocalShift::Insert(const Record& record) {
  if (size() >= MaxRecords()) {
    return Status::CapacityExceeded("file already holds N = d*M records");
  }
  BeginCommand();
  const Address target = TargetBlockForInsert(record.key);
  std::vector<Record> records = ReadBlock(target);
  const auto pos = std::lower_bound(records.begin(), records.end(), record,
                                    RecordKeyLess);
  if (pos != records.end() && pos->key == record.key) {
    EndCommand();
    return Status::AlreadyExists("key already present");
  }
  const int64_t full = block_size_ * page_D_;
  if (static_cast<int64_t>(records.size()) < full) {
    records.insert(pos, record);
    WriteBlock(target, records);
    EndCommand();
    return Status::OK();
  }
  // Target is solid: place the record anyway (one-over-capacity, within
  // the page store's transient slack) and ripple the boundary record to
  // the nearest gap. The capacity check above guarantees a gap exists.
  const Address gap = NearestBlockWithSpace(target);
  DSF_CHECK(gap != 0) << "no free slot despite N < d*M";
  ++stats_.displaced_inserts;
  const int64_t distance = std::abs(gap - target);
  stats_.blocks_traversed += distance;
  stats_.max_distance = std::max(stats_.max_distance, distance);
  records.insert(pos, record);
  ShiftTowards(target, gap, std::move(records));
  EndCommand();
  return Status::OK();
}

Status LocalShift::Delete(Key key) {
  const Address block = BlockPossiblyContaining(key);
  if (block == 0) return Status::NotFound("key absent");
  BeginCommand();
  std::vector<Record> records = ReadBlock(block);
  const auto it = std::lower_bound(records.begin(), records.end(),
                                   Record{key, 0}, RecordKeyLess);
  if (it == records.end() || it->key != key) {
    EndCommand();
    return Status::NotFound("key absent");
  }
  records.erase(it);
  WriteBlock(block, records);
  EndCommand();
  return Status::OK();
}

}  // namespace dsf
