#include "core/local_shift.h"

#include <algorithm>
#include <cstdlib>

#include "util/check.h"

namespace dsf {

StatusOr<std::unique_ptr<LocalShift>> LocalShift::Create(
    const Config& config) {
  StatusOr<DensitySpec> spec = MakeLogicalSpec(config);
  if (!spec.ok()) return spec.status();
  return std::unique_ptr<LocalShift>(new LocalShift(config, *spec));
}

Address LocalShift::NearestBlockWithSpace(Address from) const {
  const int64_t full = block_size_ * page_D_;
  for (int64_t dist = 0; dist < num_blocks_; ++dist) {
    const Address left = from - dist;
    if (left >= 1 && calibrator_.Count(calibrator_.LeafOf(left)) < full) {
      return left;
    }
    const Address right = from + dist;
    if (right <= num_blocks_ &&
        calibrator_.Count(calibrator_.LeafOf(right)) < full) {
      return right;
    }
  }
  return 0;
}

Status LocalShift::ShiftTowards(Address target, Address gap,
                                std::vector<Record> overfull) {
  // `overfull` is the target block's contents including the new record
  // (one above capacity). Ripple the extreme record block-by-block toward
  // the gap: every intermediate block sheds one boundary record and
  // absorbs the carry, preserving global key order throughout.
  //
  // Crash safety: all chain blocks are read before anything is written
  // (a read fault aborts with the device untouched), then the chain is
  // written from the absorbing gap end back toward the target. Records
  // ripple toward the gap, so each boundary record's new home is written
  // before the block shedding it is overwritten — a crash mid-chain
  // duplicates a boundary record but loses only the in-flight insert.
  if (gap < target) {
    std::vector<std::vector<Record>> contents(
        static_cast<size_t>(target - gap + 1));
    Record carry = overfull.front();
    overfull.erase(overfull.begin());
    contents[static_cast<size_t>(target - gap)] = std::move(overfull);
    for (Address b = target - 1; b >= gap; --b) {
      StatusOr<std::vector<Record>> read = ReadBlock(b);
      DSF_RETURN_IF_ERROR(read.status());
      std::vector<Record>& records = *read;
      records.push_back(carry);
      if (b > gap) {
        carry = records.front();
        records.erase(records.begin());
      }
      contents[static_cast<size_t>(b - gap)] = *std::move(read);
    }
    // Records ripple left, both across blocks and inside each block
    // (intermediate blocks shed the front rank and absorb at the back,
    // an equal-count rewrite kAuto would mishandle): write ascending
    // with forward page order.
    for (Address b = gap; b <= target; ++b) {
      DSF_RETURN_IF_ERROR(WriteBlock(b, contents[static_cast<size_t>(b - gap)],
                                     BlockWriteOrder::kForward));
    }
  } else {
    std::vector<std::vector<Record>> contents(
        static_cast<size_t>(gap - target + 1));
    Record carry = overfull.back();
    overfull.pop_back();
    contents[0] = std::move(overfull);
    for (Address b = target + 1; b <= gap; ++b) {
      StatusOr<std::vector<Record>> read = ReadBlock(b);
      DSF_RETURN_IF_ERROR(read.status());
      std::vector<Record>& records = *read;
      records.insert(records.begin(), carry);
      if (b < gap) {
        carry = records.back();
        records.pop_back();
      }
      contents[static_cast<size_t>(b - target)] = *std::move(read);
    }
    // Mirror image: records ripple right; write descending with backward
    // page order.
    for (Address b = gap; b >= target; --b) {
      DSF_RETURN_IF_ERROR(WriteBlock(b,
                                     contents[static_cast<size_t>(b - target)],
                                     BlockWriteOrder::kBackward));
    }
  }
  return Status::OK();
}

Status LocalShift::Insert(const Record& record) {
  if (size() >= MaxRecords()) {
    return Status::CapacityExceeded("file already holds N = d*M records");
  }
  BeginCommand(CommandKind::kInsert);
  const Address target = TargetBlockForInsert(record.key);
  StatusOr<std::vector<Record>> read = ReadBlock(target);
  if (!read.ok()) {
    return EndCommand(read.status());
  }
  std::vector<Record>& records = *read;
  const auto pos = std::lower_bound(records.begin(), records.end(), record,
                                    RecordKeyLess);
  if (pos != records.end() && pos->key == record.key) {
    return EndCommand(Status::AlreadyExists("key already present"));
  }
  const int64_t full = block_size_ * page_D_;
  if (static_cast<int64_t>(records.size()) < full) {
    records.insert(pos, record);
    const Status s = WriteBlock(target, records);
    return EndCommand(s);
  }
  // Target is solid: place the record anyway (one-over-capacity, within
  // the page store's transient slack) and ripple the boundary record to
  // the nearest gap. The capacity check above guarantees a gap exists.
  const Address gap = NearestBlockWithSpace(target);
  DSF_CHECK(gap != 0) << "no free slot despite N < d*M";
  ++stats_.displaced_inserts;
  const int64_t distance = std::abs(gap - target);
  stats_.blocks_traversed += distance;
  stats_.max_distance = std::max(stats_.max_distance, distance);
  records.insert(pos, record);
  const Status s = ShiftTowards(target, gap, std::move(records));
  return EndCommand(s);
}

Status LocalShift::Delete(Key key) {
  const Address block = BlockPossiblyContaining(key);
  if (block == 0) return Status::NotFound("key absent");
  BeginCommand(CommandKind::kDelete);
  StatusOr<std::vector<Record>> read = ReadBlock(block);
  if (!read.ok()) {
    return EndCommand(read.status());
  }
  std::vector<Record>& records = *read;
  const auto it = std::lower_bound(records.begin(), records.end(),
                                   Record{key, 0}, RecordKeyLess);
  if (it == records.end() || it->key != key) {
    return EndCommand(Status::NotFound("key absent"));
  }
  records.erase(it);
  const Status s = WriteBlock(block, records);
  return EndCommand(s);
}

}  // namespace dsf
