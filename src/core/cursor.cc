#include "core/cursor.h"

#include <algorithm>
#include <utility>

#include "core/control_base.h"
#include "util/check.h"

namespace dsf {

Cursor::Cursor(ControlBase* control, Key start) : control_(control) {
  const Address first = control_->calibrator().FirstNonEmptyPageWithMaxGE(start);
  if (first != 0) LoadFrom(first, start);
}

Cursor::Cursor(ControlBase* control, Key start,
               std::vector<StagedEntry> overlay)
    : control_(control), merged_(true), overlay_(std::move(overlay)) {
  const Address first = control_->calibrator().FirstNonEmptyPageWithMaxGE(start);
  if (first != 0) LoadFrom(first, start);
  Settle();
}

const Record& Cursor::record() const {
  DSF_CHECK(Valid()) << "record() on exhausted cursor";
  return merged_ ? current_ : buffer_[index_];
}

void Cursor::Next() {
  DSF_CHECK(Valid()) << "Next() on exhausted cursor";
  if (merged_) {
    Settle();
    return;
  }
  AdvanceFile();
}

void Cursor::AdvanceFile() {
  ++index_;
  if (index_ < buffer_.size()) return;
  // Buffer exhausted: move to the next non-empty block.
  const Address next = control_->calibrator().FirstNonEmptyPageIn(
      block_ + 1, control_->num_blocks());
  buffer_.clear();
  index_ = 0;
  if (next != 0) LoadFrom(next, 0);
}

void Cursor::Settle() {
  current_valid_ = false;
  while (true) {
    // A block-read fault ends the stream even with overlay entries left:
    // yielding staged records past the fault would silently skip the
    // durable records interleaved with them.
    if (!status_.ok()) return;
    const bool file_ok = index_ < buffer_.size();
    const bool overlay_ok = overlay_index_ < overlay_.size();
    if (!file_ok && !overlay_ok) return;
    if (!overlay_ok ||
        (file_ok &&
         buffer_[index_].key < overlay_[overlay_index_].record.key)) {
      // File side strictly first: no staged entry covers this key.
      current_ = buffer_[index_];
      current_valid_ = true;
      AdvanceFile();
      return;
    }
    const StagedEntry& entry = overlay_[overlay_index_];
    ++overlay_index_;
    if (file_ok && buffer_[index_].key == entry.record.key) {
      // Both sides hold the key: the staged entry decides visibility — a
      // tombstone hides the file record, an update's record shadows it.
      AdvanceFile();
      if (entry.kind == StagedEntry::Kind::kTombstone) continue;
      current_ = entry.record;
      current_valid_ = true;
      return;
    }
    // Overlay strictly first: a staged insert at a key the file lacks.
    // (A tombstone or update without a file twin would mean the staging
    // invariants are broken; skip tombstones defensively.)
    if (entry.kind == StagedEntry::Kind::kTombstone) continue;
    current_ = entry.record;
    current_valid_ = true;
    return;
  }
}

void Cursor::LoadFrom(Address block, Key min_key) {
  block_ = block;
  StatusOr<std::vector<Record>> read = control_->ReadBlockForCursor(block);
  if (!read.ok()) {
    buffer_.clear();
    index_ = 0;
    status_ = read.status();
    return;
  }
  buffer_ = *std::move(read);
  const auto it = std::lower_bound(buffer_.begin(), buffer_.end(),
                                   Record{min_key, 0}, RecordKeyLess);
  index_ = static_cast<size_t>(it - buffer_.begin());
  DSF_DCHECK(index_ < buffer_.size())
      << "cursor landed on a block without qualifying records";
}

}  // namespace dsf
