#include "core/cursor.h"

#include <algorithm>

#include "core/control_base.h"
#include "util/check.h"

namespace dsf {

Cursor::Cursor(ControlBase* control, Key start) : control_(control) {
  const Address first = control_->calibrator().FirstNonEmptyPageWithMaxGE(start);
  if (first != 0) LoadFrom(first, start);
}

const Record& Cursor::record() const {
  DSF_CHECK(Valid()) << "record() on exhausted cursor";
  return buffer_[index_];
}

void Cursor::Next() {
  DSF_CHECK(Valid()) << "Next() on exhausted cursor";
  ++index_;
  if (index_ < buffer_.size()) return;
  // Buffer exhausted: move to the next non-empty block.
  const Address next = control_->calibrator().FirstNonEmptyPageIn(
      block_ + 1, control_->num_blocks());
  buffer_.clear();
  index_ = 0;
  if (next != 0) LoadFrom(next, 0);
}

void Cursor::LoadFrom(Address block, Key min_key) {
  block_ = block;
  StatusOr<std::vector<Record>> read = control_->ReadBlockForCursor(block);
  if (!read.ok()) {
    buffer_.clear();
    index_ = 0;
    status_ = read.status();
    return;
  }
  buffer_ = *std::move(read);
  const auto it = std::lower_bound(buffer_.begin(), buffer_.end(),
                                   Record{min_key, 0}, RecordKeyLess);
  index_ = static_cast<size_t>(it - buffer_.begin());
  DSF_DCHECK(index_ < buffer_.size())
      << "cursor landed on a block without qualifying records";
}

}  // namespace dsf
