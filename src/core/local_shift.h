// LocalShift — padded-list maintenance in the style of Franklin [Fr79]
// and Hofri-Konheim-Willard [HKW86], the paper's expected-time relatives.
//
// No calibrator thresholds, no warning machinery: an insert whose target
// page is full walks outward to the nearest page with free space and
// shifts one boundary record per intervening page to open a slot; a
// delete simply removes its record. Under uniformly distributed updates
// the displacement distance — hence the cost — is expected O(1) (the
// closing remark of the paper cites [HKW86] for exactly this). The price
// is the worst case: a hotspot packs a solid run of full pages and a
// single insert can shift across O(M) of them. Bench E10 measures both
// sides against CONTROL 1 and CONTROL 2.
//
// LocalShift maintains conditions (i)-(iii) of (d,D)-density (capacity,
// page bound, global order) but not BALANCE(d,D).

#ifndef DSF_CORE_LOCAL_SHIFT_H_
#define DSF_CORE_LOCAL_SHIFT_H_

#include <memory>
#include <string>

#include "core/control_base.h"

namespace dsf {

class LocalShift : public ControlBase {
 public:
  struct Stats {
    int64_t displaced_inserts = 0;  // inserts whose target was full
    int64_t blocks_traversed = 0;   // total shift distance, in blocks
    int64_t max_distance = 0;       // worst single displacement
  };

  // No gap condition: any 1 <= d < D works (block_size is honored but
  // rarely useful here).
  static StatusOr<std::unique_ptr<LocalShift>> Create(const Config& config);

  Status Insert(const Record& record) override;
  Status Delete(Key key) override;
  std::string Name() const override { return "LOCALSHIFT"; }

  const Stats& stats() const { return stats_; }

 private:
  LocalShift(const Config& config, DensitySpec logical_spec)
      : ControlBase(config, logical_spec) {}

  // Nearest block with free space, scanning outward from `from`
  // (in-memory counter reads only); 0 if the file is solid.
  Address NearestBlockWithSpace(Address from) const;

  // Writes `overfull` (the target block's records plus the new one, one
  // above capacity) and ripples the excess boundary record to `gap`.
  // Reads the whole chain before writing it gap-end first, so a fault
  // duplicates boundary records rather than losing committed ones.
  Status ShiftTowards(Address target, Address gap,
                      std::vector<Record> overfull);

  Stats stats_;
};

}  // namespace dsf

#endif  // DSF_CORE_LOCAL_SHIFT_H_
