// Snapshot persistence for dense files.
//
// SaveSnapshot serializes a file's configuration and logical contents
// (not its physical layout) to a single binary image; OpenSnapshot
// reconstructs the file and bulk-loads the records at uniform density —
// the freshly compacted state, which is also Theorem 5.5's initial
// condition. An FNV-1a checksum over the payload catches truncation and
// bit rot; OpenSnapshot rejects damaged or foreign files with Corruption
// / InvalidArgument rather than loading garbage.
//
// Format (little-endian, fixed width):
//   magic "DSF\1" | u32 version | i64 num_pages, d, D, J, block_size |
//   u8 policy | u8 smart_placement | i64 record_count |
//   record_count * (u64 key, u64 value) | u64 fnv1a(payload)

#ifndef DSF_CORE_SNAPSHOT_H_
#define DSF_CORE_SNAPSHOT_H_

#include <memory>
#include <string>

#include "core/dense_file.h"
#include "util/status.h"

namespace dsf {

// Writes `file`'s configuration and records to `path` (overwrites).
Status SaveSnapshot(DenseFile& file, const std::string& path);

// Reconstructs a dense file from a snapshot written by SaveSnapshot.
StatusOr<std::unique_ptr<DenseFile>> OpenSnapshot(const std::string& path);

}  // namespace dsf

#endif  // DSF_CORE_SNAPSHOT_H_
