// CONTROL 1 — Section 3's amortized-time maintenance algorithm.
//
// After each insertion (step A), if some calibrator node violates
// BALANCE(d,D), step B takes the *highest* violating node v and evenly
// redistributes all records below v's father f_v, so that every node w
// under f_v ends with p(w) <= p(f_v) + 1. A single command can therefore
// cost O(M_{f_v}) page accesses — up to the whole file — but the amortized
// cost is O(log^2 M / (D-d)) (Itai-Konheim-Rodeh's argument). This is the
// baseline CONTROL 2 deamortizes.

#ifndef DSF_CORE_CONTROL1_H_
#define DSF_CORE_CONTROL1_H_

#include <memory>
#include <string>

#include "core/control_base.h"

namespace dsf {

class Control1 : public ControlBase {
 public:
  struct Stats {
    int64_t rebalances = 0;           // step B invocations
    int64_t pages_redistributed = 0;  // sum of M_{f_v} over those
  };

  // Requires the gap condition (5.1): D - d > 3*ceil(log M#) for the
  // logical spec (use block_size > 1 to lift small D-d above it).
  static StatusOr<std::unique_ptr<Control1>> Create(const Config& config);

  Status Insert(const Record& record) override;
  Status Delete(Key key) override;
  std::string Name() const override { return "CONTROL1"; }

  // Structural checks plus BALANCE(d,D), which step B maintains.
  Status ValidateInvariants() const override;

  const Stats& stats() const { return stats_; }

 private:
  Control1(const Config& config, DensitySpec logical_spec)
      : ControlBase(config, logical_spec) {}

  // Highest (least-depth) node on the path to `block` violating
  // p(v) > g(v,1); kNoNode if none. Only path nodes can have changed.
  int HighestViolatorOnPath(Address block) const;

  // Step B: evenly redistribute all records in RANGE(f) across its blocks
  // (crash-safe pack-then-spread; see ControlBase).
  Status Redistribute(int f);

  Stats stats_;
};

}  // namespace dsf

#endif  // DSF_CORE_CONTROL1_H_
