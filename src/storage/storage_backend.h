// StorageBackend: the pluggable durable device behind PageFile.
//
// PageFile keeps the *working image* of every page in memory (that is
// what makes Peek/RawPage free and lets the simulation run at RAM
// speed). A StorageBackend, when attached, is the *device*: the state
// that survives a process death. The split mirrors a real DBMS — the
// working image is the OS page cache + heap, the backend is the
// platters — and it is what converts the repo's crash-ordering proofs
// from simulation into durable-storage evidence:
//
//   - every accounted device write (TryDeviceWrite, and the unaccounted
//     RawPage bookkeeping mutations) is persisted through WritePage, in
//     exactly the order the crash-safe maintenance issued it
//     (docs/FAULTS.md: DEST-before-SOURCE, directional block rewrites);
//   - SyncBarrier() is called at the points the write-ordering argument
//     already assumes a persistence boundary (end of each
//     duplicate-then-delete phase, the EndCommand flush boundary, bulk
//     load, repair) — for a file backend this is fdatasync;
//   - ReadPage loads a page image back, verifying integrity (CRC32C for
//     the file backend); a torn or corrupt page surfaces as a typed
//     kIoError that CheckAndRepair treats like an injected fault.
//
// Two implementations ship: MemoryBackend (below) keeps the device
// image in a second in-memory page vector — the existing simulation,
// now holding the same contract as real storage — and FileBackend
// (storage/file_backend.h) keeps it in a real index/data file pair with
// page-aligned pread/pwrite and fdatasync. Fault injection composes
// unchanged: the FaultPolicy is consulted by PageFile *before* the
// backend is touched, so an injected write fault suppresses the
// persistent write exactly as it suppresses the simulated one.

#ifndef DSF_STORAGE_STORAGE_BACKEND_H_
#define DSF_STORAGE_STORAGE_BACKEND_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "storage/page.h"
#include "storage/record.h"
#include "util/status.h"

namespace dsf {

class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  // Geometry the backend was created with (PageFile::AttachBackend
  // rejects a mismatch against the live file).
  virtual int64_t num_pages() const = 0;
  virtual int64_t page_capacity() const = 0;

  // Durably records `page` as the content of `address` (1-based). The
  // write must be atomic at page granularity from the caller's
  // perspective: after a crash the slot holds either the old image or
  // the new one, or fails ReadPage with kIoError (a torn write) — never
  // silently mixes the two.
  virtual Status WritePage(Address address, const Page& page) = 0;

  // Loads the device image of `address` into *out (replacing its
  // contents; *out keeps its capacity). Integrity-checked: a corrupt
  // slot returns kIoError and leaves *out empty.
  virtual Status ReadPage(Address address, Page* out) = 0;

  // Persistence barrier: on return, every WritePage issued before the
  // call is durable. fdatasync for the file backend; a no-op when the
  // device image cannot outlive the process anyway.
  virtual Status SyncBarrier() = 0;

  // When true, PageFile verifies every accounted device read against
  // the backend image (CRC + record-level equality with the working
  // image), making divergence between the two surface at the access
  // that would have observed it instead of at the next reopen.
  virtual bool VerifyOnRead() const { return true; }

  virtual std::string Name() const = 0;
};

// Deferred backend construction for option structs: called once with
// the file's physical geometry when the owning file is built. Lets one
// Options value describe "a file pair under this directory" without
// knowing M or the page capacity up front, and gives sharded files a
// natural seam for per-shard directories.
using StorageBackendFactory =
    std::function<StatusOr<std::unique_ptr<StorageBackend>>(
        int64_t num_pages, int64_t page_capacity)>;

// The in-memory device: a second page vector standing in for the
// platters. Same write-through and read-back contract as the file
// backend, RAM speed, nothing survives the process — the simulation
// configuration every pre-backend test and experiment ran against,
// expressed as a StorageBackend so the two are interchangeable behind
// PageFile (and differentially comparable: see
// tests/storage_backend_test.cc parity sweeps).
class MemoryBackend : public StorageBackend {
 public:
  MemoryBackend(int64_t num_pages, int64_t page_capacity);

  int64_t num_pages() const override { return num_pages_; }
  int64_t page_capacity() const override { return page_capacity_; }
  Status WritePage(Address address, const Page& page) override;
  Status ReadPage(Address address, Page* out) override;
  Status SyncBarrier() override { return Status::OK(); }
  std::string Name() const override { return "memory"; }

  // Test hook: device-image access for divergence assertions.
  const Page& DevicePage(Address address) const {
    return image_[static_cast<size_t>(address - 1)];
  }

 private:
  int64_t num_pages_;
  int64_t page_capacity_;
  std::vector<Page> image_;
};

}  // namespace dsf

#endif  // DSF_STORAGE_STORAGE_BACKEND_H_
