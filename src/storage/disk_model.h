// A parametric rotating-disk latency model.
//
// Converts IoStats (seeks vs. sequential page accesses) into simulated
// milliseconds. This is what turns the paper's qualitative claim — stream
// retrieval from a sequential file beats a B-tree because consecutive keys
// live in adjacent pages — into a measurable number. Defaults approximate
// a mid-1980s disk (the paper's era): 30 ms average seek, 1 ms sequential
// page transfer.

#ifndef DSF_STORAGE_DISK_MODEL_H_
#define DSF_STORAGE_DISK_MODEL_H_

#include <cstdint>
#include <string>

#include "storage/io_stats.h"

namespace dsf {

struct DiskModel {
  double seek_ms = 30.0;      // arm movement + rotational latency
  double transfer_ms = 1.0;   // reading/writing one page once positioned

  // Latency for an access pattern: every access pays the transfer cost,
  // non-sequential accesses additionally pay a seek.
  double LatencyMs(const IoStats& stats) const;
  double LatencyMs(int64_t seeks, int64_t total_accesses) const;

  // Per-access charges for AccessTracker::SetChargeNs: an access that
  // moved the arm pays seek + transfer, a sequential one transfer only.
  // With these installed, IoStats::sim_elapsed_ns accumulates exactly
  // LatencyMs worth of nanoseconds access by access — one source of
  // truth shared by elapsed-time totals, latency histograms and the
  // optional real sleep (PageFile::set_disk_model).
  int64_t SeekChargeNs() const {
    return static_cast<int64_t>((seek_ms + transfer_ms) * 1e6);
  }
  int64_t SequentialChargeNs() const {
    return static_cast<int64_t>(transfer_ms * 1e6);
  }

  std::string ToString() const;
};

}  // namespace dsf

#endif  // DSF_STORAGE_DISK_MODEL_H_
