#include "storage/page_file.h"

#include <sstream>
#include <thread>

#include "util/check.h"

#if defined(__GNUC__) || defined(__clang__)
#define DSF_PREDICT_FALSE(x) (__builtin_expect(!!(x), 0))
#else
#define DSF_PREDICT_FALSE(x) (x)
#endif

namespace dsf {

PageFile::PageFile(int64_t num_pages, int64_t page_capacity)
    : num_pages_(num_pages), page_capacity_(page_capacity) {
  DSF_CHECK(num_pages >= 1) << "PageFile needs at least one page";
  DSF_CHECK(page_capacity >= 1) << "PageFile needs positive page capacity";
  pages_.reserve(static_cast<size_t>(num_pages));
  for (int64_t i = 0; i < num_pages; ++i) pages_.emplace_back(page_capacity);
}

// Fault charging and latency sleeping, in the order the fast path used to
// interleave them: the access is already charged to the tracker by the
// caller (counters AND sim_elapsed_ns both follow the charged-before-
// consult rule), the policy is consulted, and only a surviving access
// pays the real sleep — for exactly the nanoseconds the tracker charged,
// so wall time and sim_elapsed_ns derive from one classification.
Status PageFile::SlowPathAccess(Address address, bool is_write,
                                int64_t charge_ns) {
  if (fault_policy_ != nullptr) {
    DSF_RETURN_IF_ERROR(fault_policy_->OnAccess(address, is_write));
  }
  if (sleep_on_access_ && charge_ns > 0) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(charge_ns));
  }
  return Status::OK();
}

StatusOr<const Page*> PageFile::TryDeviceRead(Address address) {
  if (address < 1 || address > num_pages_) {
    return Status::OutOfRange("read address " + std::to_string(address) +
                              " outside [1," + std::to_string(num_pages_) +
                              "]");
  }
  const int64_t charge_ns = tracker_.OnAccess(address, /*is_write=*/false);
  if (DSF_PREDICT_FALSE(slow_path_)) {
    DSF_RETURN_IF_ERROR(
        SlowPathAccess(address, /*is_write=*/false, charge_ns));
  }
  return const_cast<const Page*>(&pages_[static_cast<size_t>(address - 1)]);
}

StatusOr<Page*> PageFile::TryDeviceWrite(Address address) {
  if (address < 1 || address > num_pages_) {
    return Status::OutOfRange("write address " + std::to_string(address) +
                              " outside [1," + std::to_string(num_pages_) +
                              "]");
  }
  const int64_t charge_ns = tracker_.OnAccess(address, /*is_write=*/true);
  if (DSF_PREDICT_FALSE(slow_path_)) {
    DSF_RETURN_IF_ERROR(
        SlowPathAccess(address, /*is_write=*/true, charge_ns));
  }
  return &pages_[static_cast<size_t>(address - 1)];
}

StatusOr<const Page*> PageFile::TryRead(Address address) {
  tracker_.OnLogical(/*is_write=*/false);
  return TryDeviceRead(address);
}

StatusOr<Page*> PageFile::TryWrite(Address address) {
  tracker_.OnLogical(/*is_write=*/true);
  return TryDeviceWrite(address);
}

const Page& PageFile::Read(Address address) {
  StatusOr<const Page*> page = TryRead(address);
  // lint:allow(check-on-fault-path): Read IS the documented abort-on-fault
  // wrapper; fault-tolerant callers use TryRead.
  DSF_CHECK(page.ok()) << "infallible Read failed: "
                       << page.status().ToString();
  return **page;
}

Page& PageFile::Write(Address address) {
  StatusOr<Page*> page = TryWrite(address);
  // lint:allow(check-on-fault-path): Write IS the documented abort-on-fault
  // wrapper; fault-tolerant callers use TryWrite.
  DSF_CHECK(page.ok()) << "infallible Write failed: "
                       << page.status().ToString();
  return **page;
}

Page& PageFile::RawPage(Address address) {
  DSF_CHECK(address >= 1 && address <= num_pages_)
      << "RawPage address " << address << " outside [1," << num_pages_
      << "]";
  return pages_[static_cast<size_t>(address - 1)];
}

const Page& PageFile::Peek(Address address) const {
  DSF_CHECK(address >= 1 && address <= num_pages_)
      << "Peek address " << address << " outside [1," << num_pages_ << "]";
  return pages_[static_cast<size_t>(address - 1)];
}

void PageFile::ResetStats() { tracker_.Reset(); }

int64_t PageFile::TotalRecords() const {
  int64_t total = 0;
  for (const Page& p : pages_) total += p.size();
  return total;
}

bool PageFile::GloballyOrdered() const {
  bool have_previous = false;
  Key previous_max = 0;
  for (const Page& p : pages_) {
    if (!p.WellFormed()) return false;
    if (p.empty()) continue;
    if (have_previous && p.MinKey() <= previous_max) return false;
    previous_max = p.MaxKey();
    have_previous = true;
  }
  return true;
}

std::string PageFile::DebugString() const {
  std::ostringstream os;
  for (int64_t i = 0; i < num_pages_; ++i) {
    os << (i + 1) << ": " << pages_[static_cast<size_t>(i)].DebugString()
       << "\n";
  }
  return os.str();
}

}  // namespace dsf
