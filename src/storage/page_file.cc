#include "storage/page_file.h"

#include <sstream>
#include <thread>

#include "util/check.h"

#if defined(__GNUC__) || defined(__clang__)
#define DSF_PREDICT_FALSE(x) (__builtin_expect(!!(x), 0))
#else
#define DSF_PREDICT_FALSE(x) (x)
#endif

namespace dsf {

PageFile::PageFile(int64_t num_pages, int64_t page_capacity)
    : num_pages_(num_pages), page_capacity_(page_capacity) {
  DSF_CHECK(num_pages >= 1) << "PageFile needs at least one page";
  DSF_CHECK(page_capacity >= 1) << "PageFile needs positive page capacity";
  pages_.reserve(static_cast<size_t>(num_pages));
  for (int64_t i = 0; i < num_pages; ++i) pages_.emplace_back(page_capacity);
}

// Fault charging and latency sleeping, in the order the fast path used to
// interleave them: the access is already charged to the tracker by the
// caller (counters AND sim_elapsed_ns both follow the charged-before-
// consult rule), the policy is consulted, and only a surviving access
// pays the real sleep — for exactly the nanoseconds the tracker charged,
// so wall time and sim_elapsed_ns derive from one classification.
Status PageFile::SlowPathAccess(Address address, bool is_write,
                                int64_t charge_ns) {
  if (fault_policy_ != nullptr) {
    DSF_RETURN_IF_ERROR(fault_policy_->OnAccess(address, is_write));
  }
  if (sleep_on_access_ && charge_ns > 0) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(charge_ns));
  }
  return Status::OK();
}

StatusOr<const Page*> PageFile::TryDeviceRead(Address address) {
  if (address < 1 || address > num_pages_) {
    return Status::OutOfRange("read address " + std::to_string(address) +
                              " outside [1," + std::to_string(num_pages_) +
                              "]");
  }
  const int64_t charge_ns = tracker_.OnAccess(address, /*is_write=*/false);
  if (DSF_PREDICT_FALSE(slow_path_)) {
    DSF_RETURN_IF_ERROR(
        SlowPathAccess(address, /*is_write=*/false, charge_ns));
    if (backend_ != nullptr) {
      // A device read is an ordering point: the pending write (if any)
      // reaches the backend first. During concurrent shared-lock reads
      // the pending slot is empty (EndCommand flushed it), so this is
      // a race-free no-op there.
      DSF_RETURN_IF_ERROR(FlushPending());
      if (backend_->VerifyOnRead()) {
        DSF_RETURN_IF_ERROR(VerifyDeviceRead(address));
      }
    }
  }
  return const_cast<const Page*>(&pages_[static_cast<size_t>(address - 1)]);
}

StatusOr<Page*> PageFile::TryDeviceWrite(Address address) {
  if (address < 1 || address > num_pages_) {
    return Status::OutOfRange("write address " + std::to_string(address) +
                              " outside [1," + std::to_string(num_pages_) +
                              "]");
  }
  const int64_t charge_ns = tracker_.OnAccess(address, /*is_write=*/true);
  if (DSF_PREDICT_FALSE(slow_path_)) {
    DSF_RETURN_IF_ERROR(
        SlowPathAccess(address, /*is_write=*/true, charge_ns));
    // After the fault consult: an injected write fault must suppress the
    // durable write too (the simulated device did not accept it).
    if (backend_ != nullptr) DSF_RETURN_IF_ERROR(ArmPending(address));
  }
  return &pages_[static_cast<size_t>(address - 1)];
}

StatusOr<const Page*> PageFile::TryRead(Address address) {
  tracker_.OnLogical(/*is_write=*/false);
  return TryDeviceRead(address);
}

StatusOr<Page*> PageFile::TryWrite(Address address) {
  tracker_.OnLogical(/*is_write=*/true);
  return TryDeviceWrite(address);
}

const Page& PageFile::Read(Address address) {
  StatusOr<const Page*> page = TryRead(address);
  // lint:allow(check-on-fault-path): Read IS the documented abort-on-fault
  // wrapper; fault-tolerant callers use TryRead.
  DSF_CHECK(page.ok()) << "infallible Read failed: "
                       << page.status().ToString();
  return **page;
}

Page& PageFile::Write(Address address) {
  StatusOr<Page*> page = TryWrite(address);
  // lint:allow(check-on-fault-path): Write IS the documented abort-on-fault
  // wrapper; fault-tolerant callers use TryWrite.
  DSF_CHECK(page.ok()) << "infallible Write failed: "
                       << page.status().ToString();
  return **page;
}

Page& PageFile::RawPage(Address address) {
  DSF_CHECK(address >= 1 && address <= num_pages_)
      << "RawPage address " << address << " outside [1," << num_pages_
      << "]";
  if (DSF_PREDICT_FALSE(backend_ != nullptr)) {
    // Unaccounted bookkeeping mutations (bulk load, freed-tail clears,
    // recovery rewrites) still must reach the device, so they ride the
    // same pending slot. RawPage has no error channel; a flush failure
    // here is a real device failure, not an injected fault (the policy
    // never fires on this path), so aborting is the honest outcome.
    const Status s = ArmPending(address);
    // lint:allow(check-on-fault-path): see above — real I/O failure only.
    DSF_CHECK(s.ok()) << "backend flush failed in RawPage: " << s.ToString();
  }
  return pages_[static_cast<size_t>(address - 1)];
}

const Page& PageFile::Peek(Address address) const {
  DSF_CHECK(address >= 1 && address <= num_pages_)
      << "Peek address " << address << " outside [1," << num_pages_ << "]";
  return pages_[static_cast<size_t>(address - 1)];
}

Status PageFile::AttachBackend(std::unique_ptr<StorageBackend> backend) {
  DSF_CHECK(backend != nullptr) << "AttachBackend needs a backend";
  if (backend_ != nullptr) {
    return Status::FailedPrecondition("a storage backend is already attached");
  }
  if (backend->num_pages() != num_pages_ ||
      backend->page_capacity() != page_capacity_) {
    return Status::FailedPrecondition(
        "backend geometry (" + std::to_string(backend->num_pages()) +
        " pages, capacity " + std::to_string(backend->page_capacity()) +
        ") does not match the file (" + std::to_string(num_pages_) +
        ", " + std::to_string(page_capacity_) + ")");
  }
  // Load the device image into the working image. A fresh backend reads
  // as all-empty pages; an existing one is the reopen path. Torn or
  // corrupt slots (kIoError) become empty working pages and are recorded
  // for CheckAndRepair; any other error is a real device failure.
  corrupt_pages_at_open_.clear();
  Page scratch(page_capacity_);
  for (Address a = 1; a <= num_pages_; ++a) {
    const Status s = backend->ReadPage(a, &scratch);
    if (s.ok()) {
      pages_[static_cast<size_t>(a - 1)] = scratch;
    } else if (s.IsIoError()) {
      corrupt_pages_at_open_.push_back(a);
      pages_[static_cast<size_t>(a - 1)].Clear();
    } else {
      return s;
    }
  }
  // Quarantine corrupt slots durably: overwrite each with its emptied
  // working page so the next open reads a valid (empty) slot instead of
  // tripping on the same torn CRC again — CheckAndRepair's cheap path
  // never rewrites pages, so detection itself must persist the verdict.
  for (const Address a : corrupt_pages_at_open_) {
    DSF_RETURN_IF_ERROR(
        backend->WritePage(a, pages_[static_cast<size_t>(a - 1)]));
  }
  if (!corrupt_pages_at_open_.empty()) {
    DSF_RETURN_IF_ERROR(backend->SyncBarrier());
  }
  backend_ = std::move(backend);
  pending_ = 0;
  dirty_since_sync_ = false;
  UpdateSlowPath();
  return Status::OK();
}

Status PageFile::ArmPending(Address address) {
  if (pending_ == address) return Status::OK();  // write combining
  DSF_RETURN_IF_ERROR(FlushPending());
  pending_ = address;
  return Status::OK();
}

Status PageFile::FlushPending() {
  if (pending_ == 0) return Status::OK();
  const Address a = pending_;
  pending_ = 0;
  DSF_RETURN_IF_ERROR(
      backend_->WritePage(a, pages_[static_cast<size_t>(a - 1)]));
  dirty_since_sync_ = true;
  return Status::OK();
}

Status PageFile::VerifyDeviceRead(Address address) {
  Page device_image(page_capacity_);
  DSF_RETURN_IF_ERROR(backend_->ReadPage(address, &device_image));
  const Page& working = pages_[static_cast<size_t>(address - 1)];
  if (!(device_image.records() == working.records())) {
    return Status::IoError(
        "page " + std::to_string(address) +
        ": device image diverges from the working image (" +
        std::to_string(device_image.size()) + " vs " +
        std::to_string(working.size()) + " records)");
  }
  return Status::OK();
}

Status PageFile::SyncBarrier() {
  if (backend_ == nullptr) return Status::OK();
  DSF_RETURN_IF_ERROR(FlushPending());
  if (!dirty_since_sync_) return Status::OK();  // nothing written since last
  DSF_RETURN_IF_ERROR(backend_->SyncBarrier());
  dirty_since_sync_ = false;
  return Status::OK();
}

void PageFile::ResetStats() { tracker_.Reset(); }

int64_t PageFile::TotalRecords() const {
  int64_t total = 0;
  for (const Page& p : pages_) total += p.size();
  return total;
}

bool PageFile::GloballyOrdered() const {
  bool have_previous = false;
  Key previous_max = 0;
  for (const Page& p : pages_) {
    if (!p.WellFormed()) return false;
    if (p.empty()) continue;
    if (have_previous && p.MinKey() <= previous_max) return false;
    previous_max = p.MaxKey();
    have_previous = true;
  }
  return true;
}

std::string PageFile::DebugString() const {
  std::ostringstream os;
  for (int64_t i = 0; i < num_pages_; ++i) {
    os << (i + 1) << ": " << pages_[static_cast<size_t>(i)].DebugString()
       << "\n";
  }
  return os.str();
}

}  // namespace dsf
