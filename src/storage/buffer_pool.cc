#include "storage/buffer_pool.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "obs/metrics.h"
#include "util/check.h"
#include "util/logging.h"

namespace dsf {

const Page& PageGuard::page() const {
  DSF_CHECK(pool_ != nullptr) << "page() on released PageGuard";
  return pool_->frames_[static_cast<size_t>(frame_)].page;
}

Page* PageGuard::mutable_page() {
  DSF_CHECK(pool_ != nullptr) << "mutable_page() on released PageGuard";
  return &pool_->frames_[static_cast<size_t>(frame_)].page;
}

Address PageGuard::address() const {
  DSF_CHECK(pool_ != nullptr) << "address() on released PageGuard";
  return pool_->frames_[static_cast<size_t>(frame_)].address;
}

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_, write_);
    pool_ = nullptr;
  }
}

BufferPool::Stats& BufferPool::Stats::operator+=(const Stats& other) {
  hits += other.hits;
  misses += other.misses;
  evictions += other.evictions;
  writebacks += other.writebacks;
  write_combines += other.write_combines;
  ordered_flushes += other.ordered_flushes;
  additive_absorbs += other.additive_absorbs;
  relocations += other.relocations;
  flush_runs += other.flush_runs;
  flushed_pages += other.flushed_pages;
  free_writes += other.free_writes;
  return *this;
}

std::string BufferPool::Stats::ToString() const {
  std::ostringstream os;
  os << "hits=" << hits << " misses=" << misses << " evictions=" << evictions
     << " writebacks=" << writebacks << " combines=" << write_combines
     << " ordered_flushes=" << ordered_flushes
     << " additive_absorbs=" << additive_absorbs
     << " relocations=" << relocations
     << " flush_runs=" << flush_runs << " flushed_pages=" << flushed_pages;
  return os.str();
}

BufferPool::BufferPool(PageFile* file, const Options& options)
    : file_(file), options_(options) {
  DSF_CHECK(file_ != nullptr) << "BufferPool needs a PageFile";
  DSF_CHECK(options_.num_frames >= 1) << "BufferPool needs >= 1 frame";
  MutexLock lock(mu_);
  frames_.reserve(static_cast<size_t>(options_.num_frames));
  free_frames_.reserve(static_cast<size_t>(options_.num_frames));
  for (int64_t i = 0; i < options_.num_frames; ++i) {
    frames_.emplace_back(file_->page_capacity());
  }
  // Hand out low indices first (purely cosmetic for tests/debugging).
  for (int64_t i = options_.num_frames - 1; i >= 0; --i) {
    free_frames_.push_back(i);
  }
}

BufferPool::~BufferPool() {
#ifndef NDEBUG
  const std::string leaks = PinLeakReport();
  if (!leaks.empty()) {
    DSF_LOG(kError) << "BufferPool destroyed with pinned frames (PageGuards "
                       "outliving the pool):\n"
                    << leaks;
  }
#endif
}

void BufferPool::Touch(Frame& f) {
  f.ref = true;
  f.lru_tick = ++tick_;
}

StatusOr<int64_t> BufferPool::AcquireFrame(Address address, bool load) {
  if (address < 1 || address > file_->num_pages()) {
    return Status::OutOfRange("pool address " + std::to_string(address) +
                              " outside [1," +
                              std::to_string(file_->num_pages()) + "]");
  }
  auto it = resident_.find(address);
  if (it != resident_.end()) {
    ++stats_.hits;
    if (m_hits_ != nullptr) m_hits_->Increment();
    Touch(frames_[static_cast<size_t>(it->second)]);
    return it->second;
  }
  ++stats_.misses;
  int64_t index;
  if (!free_frames_.empty()) {
    index = free_frames_.back();
    free_frames_.pop_back();
  } else {
    StatusOr<int64_t> victim = EvictFrame();
    if (!victim.ok()) {
      // Undo the miss charge: the request did not take a frame after all,
      // so a retry (after guards are released) counts afresh.
      --stats_.misses;
      return victim.status();
    }
    index = *victim;
  }
  // The metric is bumped only once the miss actually took a frame (the
  // registry counter is monotonic and cannot be undone like stats_).
  if (m_misses_ != nullptr) m_misses_->Increment();
  Frame& f = frames_[static_cast<size_t>(index)];
  DSF_DCHECK(f.address == 0 && !f.dirty && f.pins == 0);
  if (load) {
    StatusOr<const Page*> device = file_->TryDeviceRead(address);
    if (!device.ok()) {
      free_frames_.push_back(index);
      return device.status();
    }
    f.page = **device;
  } else {
    f.page.Clear();
  }
  f.address = address;
  f.free_write = false;
  f.removed_keys.clear();
  f.removed_unknown = false;
  Touch(f);
  resident_.emplace(address, index);
  return index;
}

StatusOr<int64_t> BufferPool::EvictFrame() {
  const int64_t n = static_cast<int64_t>(frames_.size());
  int64_t victim = -1;
  if (options_.eviction == Eviction::kClock) {
    // Second chance: up to two sweeps — the first clears ref bits, the
    // second must find an unpinned frame unless all are pinned.
    for (int64_t step = 0; step < 2 * n && victim < 0; ++step) {
      Frame& f = frames_[static_cast<size_t>(clock_hand_)];
      clock_hand_ = (clock_hand_ + 1) % n;
      if (f.address == 0 || f.pins > 0) continue;
      if (f.ref) {
        f.ref = false;
        continue;
      }
      victim = (&f - frames_.data());
    }
  } else {
    int64_t best_tick = 0;
    for (int64_t i = 0; i < n; ++i) {
      const Frame& f = frames_[static_cast<size_t>(i)];
      if (f.address == 0 || f.pins > 0) continue;
      if (victim < 0 || f.lru_tick < best_tick) {
        victim = i;
        best_tick = f.lru_tick;
      }
    }
  }
  if (victim < 0) {
    return Status::ResourceExhausted(
        "all " + std::to_string(n) + " buffer-pool frames are pinned");
  }
  if (frames_[static_cast<size_t>(victim)].dirty) {
    // Evicting a dirty frame must not reorder writes: flush the dirty
    // prefix through the victim so its content lands in order.
    Status flushed = FlushPrefixThrough(victim);
    if (flushed.code() == StatusCode::kFailedPrecondition) {
      // A concurrent shared reader holds a pin on some frame in the
      // dirty prefix (legal under docs/CONCURRENCY.md — read pins on
      // dirty frames are ordinary when readers share the shard lock).
      // The write order must not bend around it, so fall back to a
      // clean unpinned victim instead of failing the read; only when
      // every unpinned frame is dirty-and-blocked does the error
      // propagate.
      int64_t clean = -1;
      int64_t best_tick = 0;
      for (int64_t i = 0; i < n; ++i) {
        const Frame& g = frames_[static_cast<size_t>(i)];
        if (g.address == 0 || g.pins > 0 || g.dirty) continue;
        if (clean < 0 || g.lru_tick < best_tick) {
          clean = i;
          best_tick = g.lru_tick;
        }
      }
      if (clean < 0) return flushed;
      victim = clean;
    } else {
      DSF_RETURN_IF_ERROR(flushed);
    }
  }
  Frame& f = frames_[static_cast<size_t>(victim)];
  resident_.erase(f.address);
  f.address = 0;
  f.ref = false;
  f.free_write = false;
  ++stats_.evictions;
  return victim;
}

Status BufferPool::MarkDirty(int64_t frame) {
  Frame& f = frames_[static_cast<size_t>(frame)];
  // This path never sees the replacement content, so the dirty lifetime
  // must conservatively block rule-3† relocations past this frame.
  f.removed_unknown = true;
  if (f.dirty) {
    if (f.dirty_it == std::prev(dirty_order_.end())) {
      // Tail of L: the newer version simply replaces the older one.
      ++stats_.write_combines;
      return Status::OK();
    }
    // Re-dirtying out of order: flush the old version (and everything
    // dirtied before it) first, then re-enter at the tail.
    ++stats_.ordered_flushes;
    DSF_RETURN_IF_ERROR(FlushPrefixThrough(frame));
    f.removed_unknown = true;  // FlushFrame reset it; this write hides content
  }
  f.dirty = true;
  f.dirty_seq = ++next_dirty_seq_;
  dirty_order_.push_back(frame);
  f.dirty_it = std::prev(dirty_order_.end());
  return Status::OK();
}

void BufferPool::RecordPin(int64_t frame, const char* owner, bool write) {
  Frame& f = frames_[static_cast<size_t>(frame)];
  ++f.pins;
  f.owner = owner != nullptr ? owner : "untagged";
  ++live_guards_;
  // Destabilize the epoch version: the guard holder may now mutate the
  // page contents outside mu_, so epoch readers must skip this frame
  // until the guard releases (see the header note).
  if (write) ++f.version;
}

Status BufferPool::FlushFrame(int64_t frame) {
  Frame& f = frames_[static_cast<size_t>(frame)];
  DSF_DCHECK(f.dirty) << "FlushFrame on clean frame";
  if (f.pins > 0) {
    // Never write back a pinned frame (the holder may be mid-mutation).
    // Reached only on API misuse (two overlapping write guards forcing a
    // prefix flush through each other); fail soft rather than abort.
    return Status::FailedPrecondition("flush of pinned frame " +
                                      std::to_string(f.address));
  }
  if (f.free_write) {
    // Unaccounted layout bookkeeping, matching the unpooled path where
    // freed tail pages are cleared via RawPage.
    file_->RawPage(f.address).Clear();
    ++stats_.free_writes;
  } else {
    StatusOr<Page*> device = file_->TryDeviceWrite(f.address);
    if (!device.ok()) return device.status();
    **device = f.page;
    ++stats_.writebacks;
    if (m_writebacks_ != nullptr) m_writebacks_->Increment();
  }
  f.dirty = false;
  f.removed_keys.clear();
  f.removed_unknown = false;
  dirty_order_.erase(f.dirty_it);
  return Status::OK();
}

Status BufferPool::FlushFramesInSafeOrder(std::vector<int64_t> to_flush) {
  // Partition into pure-addition frames (empty removal ledger: their
  // pending image is a superset of every image the device may hold for
  // that page, so landing them at ANY point loses nothing) and removal
  // frames. Additions flush first in address order — one sequential
  // sweep instead of an L-order scatter — then removals in L order, by
  // which point every frame that duplicated their removed records has
  // already landed. Every intermediate crash point keeps the no-lost-
  // record guarantee that plain L-order flushing provides.
  std::vector<int64_t> adds;
  std::vector<int64_t> removals;
  for (const int64_t frame : to_flush) {
    const Frame& f = frames_[static_cast<size_t>(frame)];
    if (OrderFree(f)) {
      adds.push_back(frame);
    } else {
      removals.push_back(frame);
    }
  }
  std::sort(adds.begin(), adds.end(), [this](int64_t a, int64_t b) {
    return frames_[static_cast<size_t>(a)].address <
           frames_[static_cast<size_t>(b)].address;
  });
  for (const int64_t frame : adds) DSF_RETURN_IF_ERROR(FlushFrame(frame));
  for (const int64_t frame : removals) DSF_RETURN_IF_ERROR(FlushFrame(frame));
  return Status::OK();
}

Status BufferPool::FlushPrefixThrough(int64_t frame) {
  std::vector<int64_t> prefix;
  for (const int64_t dirty : dirty_order_) {
    prefix.push_back(dirty);
    if (dirty == frame) break;
  }
  return FlushFramesInSafeOrder(std::move(prefix));
}

bool BufferPool::TryEpochGet(Key key, Record* out) {
  MutexLock lock(mu_);
  for (const Frame& f : frames_) {
    if (f.address == 0 || f.free_write) continue;
    // Odd version: a write guard may be mutating the bytes outside mu_.
    if ((f.version & 1) != 0) continue;
    const std::vector<Record>& records = f.page.records();
    if (records.empty() || key < records.front().key ||
        records.back().key < key) {
      continue;
    }
    const auto it =
        std::lower_bound(records.begin(), records.end(), key,
                         [](const Record& r, Key k) { return r.key < k; });
    if (it == records.end() || it->key != key) continue;
    // Positive hit from a stable resident frame — the current logical
    // image of its page. Negative answers are never derived here: a
    // frame covering `key` without holding it may be a stale snapshot
    // of a reorganization in flight (see docs/CONCURRENCY.md).
    *out = *it;
    file_->CountLogical(/*is_write=*/false);
    return true;
  }
  return false;
}

StatusOr<PageGuard> BufferPool::PinRead(Address address, const char* owner) {
  file_->CountLogical(/*is_write=*/false);
  MutexLock lock(mu_);
  StatusOr<int64_t> frame = AcquireFrame(address, /*load=*/true);
  if (!frame.ok()) return frame.status();
  RecordPin(*frame, owner, /*write=*/false);
  return PageGuard(this, *frame, /*write=*/false);
}

StatusOr<PageGuard> BufferPool::PinWrite(Address address, const char* owner) {
  file_->CountLogical(/*is_write=*/true);
  MutexLock lock(mu_);
  StatusOr<int64_t> frame = AcquireFrame(address, /*load=*/true);
  if (!frame.ok()) return frame.status();
  DSF_RETURN_IF_ERROR(MarkDirty(*frame));
  RecordPin(*frame, owner, /*write=*/true);
  return PageGuard(this, *frame, /*write=*/true);
}

StatusOr<PageGuard> BufferPool::PinForOverwrite(Address address,
                                                const char* owner) {
  file_->CountLogical(/*is_write=*/true);
  MutexLock lock(mu_);
  StatusOr<int64_t> frame = AcquireFrame(address, /*load=*/false);
  if (!frame.ok()) return frame.status();
  Frame& f = frames_[static_cast<size_t>(*frame)];
  // Order matters: MarkDirty may flush the frame's *old* version (rule
  // 3) — only then may the content be discarded for the overwrite.
  DSF_RETURN_IF_ERROR(MarkDirty(*frame));
  f.page.Clear();
  f.free_write = false;
  RecordPin(*frame, owner, /*write=*/true);
  return PageGuard(this, *frame, /*write=*/true);
}

namespace {

// True when every record of `page` (key AND value) appears in the sorted
// range [begin, end) — the rewrite only adds records. A value change
// counts as a removal of the old record.
bool IsSortedSuperset(const Page& page, const Record* begin,
                      const Record* end) {
  const Record* it = begin;
  for (const Record& old : page.records()) {
    while (it != end && it->key < old.key) ++it;
    if (it == end || !(*it == old)) return false;
    ++it;
  }
  return true;
}

}  // namespace

void BufferPool::AccumulateRemoved(Frame* f, const Record* begin,
                                   const Record* end) {
  if (f->removed_unknown) return;  // already maximally conservative
  const Record* it = begin;
  for (const Record& old : f->page.records()) {
    while (it != end && it->key < old.key) ++it;
    if (it == end || !(*it == old)) f->removed_keys.push_back(old.key);
  }
  // Appended batches are each ascending but may interleave with earlier
  // ones; RelocationSafe binary-searches the pending page instead, so
  // only dedup growth matters — keep the vector sorted and unique.
  std::sort(f->removed_keys.begin(), f->removed_keys.end());
  f->removed_keys.erase(
      std::unique(f->removed_keys.begin(), f->removed_keys.end()),
      f->removed_keys.end());
}

bool BufferPool::RelocationSafe(const Frame& f) const {
  // Frames dirtied after f, in L order. Any of them whose flush removes
  // a key that f's pending image still carries is (or may be, for the
  // content-blind removed_unknown case) relying on f flushing first —
  // f must then take the rule-3 prefix flush instead of relocating.
  const std::vector<Record>& pending = f.page.records();
  for (auto it = std::next(f.dirty_it); it != dirty_order_.end(); ++it) {
    const Frame& g = frames_[static_cast<size_t>(*it)];
    if (g.removed_unknown) return false;
    for (const Key key : g.removed_keys) {
      // A volatile key was never durability-promised; losing it on a
      // crash is within the recovery contract, so its removal does not
      // pin f's flush position.
      if (volatile_keys_.count(key) != 0) continue;
      const auto pos =
          std::lower_bound(pending.begin(), pending.end(), key,
                           [](const Record& r, Key k) { return r.key < k; });
      if (pos != pending.end() && pos->key == key) return false;
    }
  }
  return true;
}

bool BufferPool::OrderFree(const Frame& f) const {
  if (f.removed_unknown) return false;
  for (const Key key : f.removed_keys) {
    if (volatile_keys_.count(key) == 0) return false;
  }
  return true;
}

void BufferPool::NoteVolatile(Key key) {
  MutexLock lock(mu_);
  volatile_keys_.insert(key);
}

Status BufferPool::MarkDirtyWithContent(int64_t frame, bool was_resident,
                                        const Record* begin,
                                        const Record* end) {
  Frame& f = frames_[static_cast<size_t>(frame)];
  if (!f.dirty) {
    DSF_RETURN_IF_ERROR(MarkDirty(frame));
    if (was_resident) {
      // Clean resident frame: pending == device, so this rewrite's
      // removals are exactly old content minus new — record them
      // instead of MarkDirty's content-blind removed_unknown.
      f.removed_unknown = false;
      AccumulateRemoved(&f, begin, end);
    }
  } else if (f.dirty_it == std::prev(dirty_order_.end())) {
    // Rule 2: tail combine, with the removal ledger kept accurate.
    ++stats_.write_combines;
    AccumulateRemoved(&f, begin, end);
  } else if (IsSortedSuperset(f.page, begin, end)) {
    // Rule 2': pure addition absorbs at the frame's original slot.
    ++stats_.additive_absorbs;
  } else if (RelocationSafe(f)) {
    // Rule 3†: nothing after f depends on its pending image, so the
    // merged rewrite moves to the tail without touching the device.
    AccumulateRemoved(&f, begin, end);
    dirty_order_.erase(f.dirty_it);
    f.dirty_seq = ++next_dirty_seq_;
    dirty_order_.push_back(frame);
    f.dirty_it = std::prev(dirty_order_.end());
    ++stats_.relocations;
  } else if (OrderFree(f)) {
    // Rule 3 (minimal form): the old image adds or only removes
    // volatile keys versus the device, so it may land alone and out of
    // order — nothing durable can be lost at any crash point. No
    // prefix flush.
    ++stats_.ordered_flushes;
    DSF_RETURN_IF_ERROR(FlushFrame(frame));
    DSF_RETURN_IF_ERROR(MarkDirty(frame));
    f.removed_unknown = false;
    AccumulateRemoved(&f, begin, end);
  } else {
    // Rule 3: flush the old image (and everything before it) in order,
    // then re-enter at the tail. The device now holds the old pending
    // image, so the fresh lifetime's removals are old minus new.
    ++stats_.ordered_flushes;
    DSF_RETURN_IF_ERROR(FlushPrefixThrough(frame));
    DSF_RETURN_IF_ERROR(MarkDirty(frame));
    f.removed_unknown = false;
    AccumulateRemoved(&f, begin, end);
  }
  return Status::OK();
}

StatusOr<PageGuard> BufferPool::PinForRewrite(Address address,
                                              const Record* begin,
                                              const Record* end,
                                              const char* owner) {
  file_->CountLogical(/*is_write=*/true);
  MutexLock lock(mu_);
  const bool was_resident = resident_.find(address) != resident_.end();
  StatusOr<int64_t> frame = AcquireFrame(address, /*load=*/false);
  if (!frame.ok()) return frame.status();
  DSF_RETURN_IF_ERROR(MarkDirtyWithContent(*frame, was_resident, begin, end));
  Frame& f = frames_[static_cast<size_t>(*frame)];
  f.page.Clear();
  f.free_write = false;
  RecordPin(*frame, owner, /*write=*/true);
  return PageGuard(this, *frame, /*write=*/true);
}

Status BufferPool::MarkFree(Address address) {
  // Unaccounted (parity with the unpooled RawPage clear), but ordered:
  // the clear rides L so it cannot overtake the in-cache writes that
  // moved this page's records elsewhere.
  MutexLock lock(mu_);
  const bool was_resident = resident_.find(address) != resident_.end();
  StatusOr<int64_t> frame = AcquireFrame(address, /*load=*/false);
  if (!frame.ok()) return frame.status();
  // A clear is a rewrite with empty content: the same placement rules
  // apply, and the removal ledger stays exact (everything the pending
  // image held is removed) instead of poisoning later relocations with
  // removed_unknown.
  DSF_RETURN_IF_ERROR(
      MarkDirtyWithContent(*frame, was_resident, nullptr, nullptr));
  Frame& f = frames_[static_cast<size_t>(*frame)];
  f.page.Clear();
  f.free_write = true;
  return Status::OK();
}

Status BufferPool::FlushAll() {
  MutexLock lock(mu_);
  return FlushAllLocked();
}

Status BufferPool::FlushAllLocked() {
  // Safe-order schedule (see FlushFramesInSafeOrder): address-sorted
  // additions, then removals in L order.
  std::vector<int64_t> adds;
  std::vector<int64_t> removals;
  for (const int64_t frame : dirty_order_) {
    const Frame& f = frames_[static_cast<size_t>(frame)];
    if (OrderFree(f)) {
      adds.push_back(frame);
    } else {
      removals.push_back(frame);
    }
  }
  std::sort(adds.begin(), adds.end(), [this](int64_t a, int64_t b) {
    return frames_[static_cast<size_t>(a)].address <
           frames_[static_cast<size_t>(b)].address;
  });
  adds.insert(adds.end(), removals.begin(), removals.end());
  Address previous = -1;
  int64_t run_length = 0;
  for (const int64_t frame : adds) {
    const Address address = frames_[static_cast<size_t>(frame)].address;
    if (previous < 0 ||
        (address != previous && address != previous + 1 &&
         address != previous - 1)) {
      ++stats_.flush_runs;
      // A completed run's length goes to the coalescing histogram; a
      // faulted partial run is simply not observed (FlushAll retries).
      if (m_flush_run_length_ != nullptr && run_length > 0) {
        m_flush_run_length_->Observe(run_length);
      }
      run_length = 0;
    }
    DSF_RETURN_IF_ERROR(FlushFrame(frame));
    ++stats_.flushed_pages;
    ++run_length;
    previous = address;
  }
  if (m_flush_run_length_ != nullptr && run_length > 0) {
    m_flush_run_length_->Observe(run_length);
  }
  // Everything pending has landed: this is the durability point, so no
  // key is volatile any more.
  volatile_keys_.clear();
  return Status::OK();
}

Status BufferPool::Resize(int64_t new_frames) {
  if (new_frames < 1) {
    return Status::InvalidArgument("pool must keep >= 1 frame, asked for " +
                                   std::to_string(new_frames));
  }
  MutexLock lock(mu_);
  if (live_guards_ != 0) {
    return Status::FailedPrecondition(
        "pool resize with " + std::to_string(live_guards_) +
        " live page guards");
  }
  const int64_t old_frames = static_cast<int64_t>(frames_.size());
  if (new_frames == old_frames) return Status::OK();
  if (new_frames > old_frames) {
    frames_.reserve(static_cast<size_t>(new_frames));
    for (int64_t i = old_frames; i < new_frames; ++i) {
      frames_.emplace_back(file_->page_capacity());
      free_frames_.push_back(i);
    }
    return Status::OK();
  }
  // Shrink. Only the tail frames [new_frames, old_frames) leave, so
  // every surviving frame keeps its index (PageGuards hold indices).
  // If any departing frame is dirty, land *everything* through the
  // safe-order flush first: flushing just the victims would reorder
  // writes around the surviving dirty frames. On a flush fault the pool
  // is left intact at its old size (FlushAll's retry contract).
  bool victim_dirty = false;
  for (int64_t i = new_frames; i < old_frames; ++i) {
    if (frames_[static_cast<size_t>(i)].dirty) victim_dirty = true;
  }
  if (victim_dirty) {
    DSF_RETURN_IF_ERROR(FlushAllLocked());
  }
  for (int64_t i = new_frames; i < old_frames; ++i) {
    Frame& f = frames_[static_cast<size_t>(i)];
    DSF_CHECK(f.pins == 0) << "resize victim pinned without a live guard";
    if (f.address != 0) {
      resident_.erase(f.address);
      ++stats_.evictions;
    }
  }
  frames_.erase(frames_.begin() + new_frames, frames_.end());
  free_frames_.erase(
      std::remove_if(free_frames_.begin(), free_frames_.end(),
                     [new_frames](int64_t i) { return i >= new_frames; }),
      free_frames_.end());
  if (clock_hand_ >= new_frames) clock_hand_ = 0;
  return Status::OK();
}

void BufferPool::DropAll() {
  MutexLock lock(mu_);
  volatile_keys_.clear();
  dirty_order_.clear();
  resident_.clear();
  free_frames_.clear();
  for (int64_t i = static_cast<int64_t>(frames_.size()) - 1; i >= 0; --i) {
    Frame& f = frames_[static_cast<size_t>(i)];
    DSF_CHECK(f.pins == 0) << "DropAll with pinned frame " << f.address;
    f.address = 0;
    f.dirty = false;
    f.free_write = false;
    f.ref = false;
    f.removed_keys.clear();
    f.removed_unknown = false;
    f.page.Clear();
    free_frames_.push_back(i);
  }
}

const Page* BufferPool::PeekFrame(Address address) const {
  MutexLock lock(mu_);
  auto it = resident_.find(address);
  if (it == resident_.end()) return nullptr;
  return &frames_[static_cast<size_t>(it->second)].page;
}

std::vector<BufferPool::FrameInfo> BufferPool::AuditFrames() const {
  MutexLock lock(mu_);
  std::vector<FrameInfo> out;
  out.reserve(frames_.size());
  for (const Frame& f : frames_) {
    FrameInfo info;
    info.address = f.address;
    info.pins = f.pins;
    info.dirty = f.dirty;
    info.free_write = f.free_write;
    info.dirty_seq = f.dirty_seq;
    info.owner = f.owner;
    out.push_back(info);
  }
  return out;
}

std::vector<int64_t> BufferPool::DirtyOrderForAudit() const {
  MutexLock lock(mu_);
  return std::vector<int64_t>(dirty_order_.begin(), dirty_order_.end());
}

int64_t BufferPool::live_guards() const {
  MutexLock lock(mu_);
  return live_guards_;
}

std::string BufferPool::PinLeakReport() const {
  MutexLock lock(mu_);
  std::ostringstream os;
  for (size_t i = 0; i < frames_.size(); ++i) {
    const Frame& f = frames_[i];
    if (f.pins == 0) continue;
    os << "  frame " << i << " page " << f.address << " pins=" << f.pins
       << " owner=" << (f.owner != nullptr ? f.owner : "untagged") << "\n";
  }
  return os.str();
}

void BufferPool::ReorderDirtyListForTesting() {
  MutexLock lock(mu_);
  if (dirty_order_.size() < 2) return;
  auto first = dirty_order_.begin();
  auto second = std::next(first);
  std::swap(*first, *second);
  frames_[static_cast<size_t>(*first)].dirty_it = first;
  frames_[static_cast<size_t>(*second)].dirty_it = second;
}

void BufferPool::SetMetrics(Counter* hits, Counter* misses,
                            Counter* writebacks,
                            Histogram* flush_run_length) {
  MutexLock lock(mu_);
  m_hits_ = hits;
  m_misses_ = misses;
  m_writebacks_ = writebacks;
  m_flush_run_length_ = flush_run_length;
}

void BufferPool::Unpin(int64_t frame, bool write) {
  MutexLock lock(mu_);
  Frame& f = frames_[static_cast<size_t>(frame)];
  DSF_DCHECK(f.pins > 0) << "unbalanced Unpin";
  --f.pins;
  --live_guards_;
  // Write guard released: the contents are stable again (even version),
  // and the bump invalidates nothing retroactively — epoch readers never
  // copied from this frame while the version was odd.
  if (write) ++f.version;
}

}  // namespace dsf
