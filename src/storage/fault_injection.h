// Deterministic fault injection for the simulated page device.
//
// A FaultPolicy is a scripted schedule of storage faults consulted by
// PageFile::TryRead/TryWrite once per *accounted* access, before the page
// is touched. A faulted access is still charged to IoStats — the paper's
// cost metric counts attempted page accesses, and the online-labeling
// write-cost literature treats retried/aborted writes as real work — but
// the page content is left unmodified, so a failed write never tears a
// single page (tearing happens at *block* granularity, between pages).
//
// Schedules are deterministic functions of the accounted access sequence:
// replaying the same trace against the same schedule reproduces the same
// fault, which is what the crash-recovery fuzz sweep relies on.
//
// Three fault shapes cover the test matrix:
//   FailNthAccess(n)        one-shot: exactly the n-th accounted access
//                           (1-based) fails, later accesses succeed — the
//                           "transient fault, caller retries" model.
//   FailAddressRange(...)   every access (or first access, if transient)
//                           to an address in [lo, hi] fails — the "bad
//                           sector / persistent media fault" model.
//   CrashAfterAccesses(k)   the first k accounted accesses succeed, every
//                           later one fails until ClearCrash() — the
//                           "process died at access k, then restarted"
//                           model. Recovery code calls ClearCrash() (the
//                           restart) and then DenseFile::CheckAndRepair().
//
// A policy belongs to one PageFile and is not internally synchronized;
// PageFile accesses are already externally serialized per file (the
// sharded file installs one policy per shard).

#ifndef DSF_STORAGE_FAULT_INJECTION_H_
#define DSF_STORAGE_FAULT_INJECTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/record.h"
#include "util/status.h"

namespace dsf {

class FaultPolicy {
 public:
  // The n-th (1-based) accounted access from now on fails once.
  void FailNthAccess(int64_t n);

  // Accesses to addresses in [lo, hi] fail. `writes_only` restricts the
  // fault to writes; `transient` disarms the rule after its first hit.
  void FailAddressRange(Address lo, Address hi, bool writes_only = false,
                        bool transient = false);

  // Accesses beyond the k-th accounted access fail until ClearCrash().
  // k counts from the moment the schedule is installed.
  void CrashAfterAccesses(int64_t k);

  // Lifts an armed/tripped crash (simulated restart). One-shot and
  // tripped-transient rules stay consumed; persistent range rules remain.
  void ClearCrash();

  // Forgets the whole schedule and all counters.
  void Reset();

  // Consulted by PageFile once per accounted access, before the page is
  // touched. Returns OK to let the access proceed, or the injected fault
  // (kIoError) to abort it. Either way the access has been counted.
  Status OnAccess(Address address, bool is_write);

  int64_t accesses_seen() const { return accesses_seen_; }
  int64_t faults_injected() const { return faults_injected_; }
  // True once the CrashAfterAccesses point has been reached.
  bool crashed() const { return crashed_; }

  std::string DebugString() const;

 private:
  struct RangeRule {
    Address lo = 0;
    Address hi = 0;
    bool writes_only = false;
    bool transient = false;
    bool spent = false;
  };

  int64_t accesses_seen_ = 0;
  int64_t faults_injected_ = 0;
  std::vector<int64_t> fail_at_;  // absolute access indices, one-shot
  std::vector<RangeRule> ranges_;
  int64_t crash_after_ = -1;  // absolute access index; -1 = no crash armed
  bool crashed_ = false;
};

}  // namespace dsf

#endif  // DSF_STORAGE_FAULT_INJECTION_H_
