#include "storage/fault_injection.h"

#include <algorithm>
#include <sstream>

namespace dsf {

void FaultPolicy::FailNthAccess(int64_t n) {
  if (n >= 1) fail_at_.push_back(accesses_seen_ + n);
}

void FaultPolicy::FailAddressRange(Address lo, Address hi, bool writes_only,
                                   bool transient) {
  RangeRule rule;
  rule.lo = lo;
  rule.hi = hi;
  rule.writes_only = writes_only;
  rule.transient = transient;
  ranges_.push_back(rule);
}

void FaultPolicy::CrashAfterAccesses(int64_t k) {
  crash_after_ = accesses_seen_ + std::max<int64_t>(k, 0);
}

void FaultPolicy::ClearCrash() {
  crash_after_ = -1;
  crashed_ = false;
}

void FaultPolicy::Reset() { *this = FaultPolicy(); }

Status FaultPolicy::OnAccess(Address address, bool is_write) {
  ++accesses_seen_;

  if (crash_after_ >= 0 && accesses_seen_ > crash_after_) {
    crashed_ = true;
    ++faults_injected_;
    return Status::IoError("simulated crash: device down after access " +
                           std::to_string(crash_after_));
  }

  const auto it =
      std::find(fail_at_.begin(), fail_at_.end(), accesses_seen_);
  if (it != fail_at_.end()) {
    fail_at_.erase(it);
    ++faults_injected_;
    return Status::IoError("injected transient fault at access " +
                           std::to_string(accesses_seen_));
  }

  for (RangeRule& rule : ranges_) {
    if (rule.spent) continue;
    if (address < rule.lo || address > rule.hi) continue;
    if (rule.writes_only && !is_write) continue;
    if (rule.transient) rule.spent = true;
    ++faults_injected_;
    return Status::IoError(
        "injected fault on " + std::string(is_write ? "write" : "read") +
        " of page " + std::to_string(address));
  }
  return Status::OK();
}

std::string FaultPolicy::DebugString() const {
  std::ostringstream os;
  os << "accesses=" << accesses_seen_ << " faults=" << faults_injected_
     << " pending_oneshot=" << fail_at_.size() << " ranges=" << ranges_.size()
     << " crash_after=" << crash_after_ << " crashed=" << crashed_;
  return os.str();
}

}  // namespace dsf
