// FileBackend: the durable OS-file device behind PageFile.
//
// On-disk layout — a real index/data file pair under one directory:
//
//   <dir>/dsf.idx   the index file: one 4096-byte superblock. Versioned
//                   and checksummed: magic, format version, geometry
//                   (num_pages, page_capacity, slot_bytes), CRC32C over
//                   the header. Written once at Create, verified at
//                   Open; a version or geometry mismatch is rejected
//                   before any data page is touched. (The paper keeps
//                   the calibrator in main memory, so there is no
//                   persistent index tree — the index file carries only
//                   the self-description needed to reopen the data
//                   file; the calibrator is rebuilt by CheckAndRepair.)
//
//   <dir>/dsf.dat   the data file: num_pages fixed-size page slots,
//                   slot i holding page address i+1 at byte offset
//                   i*slot_bytes. slot_bytes is 16 + 16*page_capacity
//                   rounded up to 4096, so every slot is page-aligned
//                   and O_DIRECT-compatible. A slot is a 16-byte header
//                   {record_count u64, crc32c u32, reserved u32}
//                   followed by the records (key u64, value u64 each)
//                   and zero fill. The CRC covers the count and the
//                   record bytes; ReadPage rejects a mismatch with a
//                   typed kIoError (the torn-page signal CheckAndRepair
//                   treats like an injected fault). A fully zero slot is
//                   a valid empty page, so a fresh ftruncate'd file
//                   reads back as the all-empty state without writing
//                   num_pages * slot_bytes of zeros at create.
//
// I/O modes. Writes and reads are positioned full-slot pread/pwrite.
// With Options::direct_io the data file is opened O_DIRECT (buffers are
// 4096-aligned, slots are 4096 multiples); filesystems that refuse
// O_DIRECT (tmpfs) fall back to buffered I/O transparently —
// stats().direct_active says which mode is live. SyncBarrier() is
// fdatasync on the data file.
//
// Kill-testing. Options::kill_after_writes arms the backend to SIGKILL
// its own process when data-file pwrite number kill_after_writes+1 is
// requested (the first k complete, the next never starts) — the
// durable-storage analogue of FaultPolicy::CrashAfterAccesses, at
// physical-write granularity. The parent of the forked child reopens
// the files and drives recovery (tests/durable_kill_test.cc).
//
// Thread safety: WritePage and SyncBarrier are writer-side and
// externally serialized (PageFile accesses are, per shard). ReadPage
// may be called concurrently by shared-lock readers; it uses
// thread-local scratch and atomic counters.

#ifndef DSF_STORAGE_FILE_BACKEND_H_
#define DSF_STORAGE_FILE_BACKEND_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "storage/storage_backend.h"
#include "util/status.h"

namespace dsf {

class FileBackend : public StorageBackend {
 public:
  // The current on-disk format version (superblock field).
  static constexpr uint32_t kFormatVersion = 1;

  struct Options {
    // Directory holding dsf.idx / dsf.dat. Must exist.
    std::string directory;
    // Attempt O_DIRECT on the data file; falls back to buffered I/O
    // where the filesystem refuses it.
    bool direct_io = false;
    // Verify accounted device reads against the on-disk image (CRC +
    // equality with the working image). See StorageBackend::VerifyOnRead.
    bool verify_reads = true;
    // Testing: after this many completed data-file pwrites, the next
    // pwrite raises SIGKILL on the calling process instead of running.
    // -1 disarms.
    int64_t kill_after_writes = -1;
  };

  struct Stats {
    int64_t preads = 0;
    int64_t pwrites = 0;
    int64_t syncs = 0;
    int64_t crc_failures = 0;
    bool direct_active = false;  // O_DIRECT actually in effect
  };

  // Creates a fresh file pair (truncating any existing one), writes and
  // syncs the superblock, and sizes the data file.
  static StatusOr<std::unique_ptr<FileBackend>> Create(
      const Options& options, int64_t num_pages, int64_t page_capacity);

  // Opens an existing pair: verifies the superblock's magic, CRC and
  // format version, and adopts its geometry. kIoError for a short or
  // checksum-corrupt superblock, InvalidArgument for a bad magic,
  // FailedPrecondition for a format-version mismatch.
  static StatusOr<std::unique_ptr<FileBackend>> Open(const Options& options);

  ~FileBackend() override;

  FileBackend(const FileBackend&) = delete;
  FileBackend& operator=(const FileBackend&) = delete;

  // StorageBackend:
  int64_t num_pages() const override { return num_pages_; }
  int64_t page_capacity() const override { return page_capacity_; }
  Status WritePage(Address address, const Page& page) override;
  Status ReadPage(Address address, Page* out) override;
  Status SyncBarrier() override;
  bool VerifyOnRead() const override { return options_.verify_reads; }
  std::string Name() const override {
    return direct_active_ ? "file-direct" : "file-buffered";
  }

  Stats stats() const;

  // DenseFile::Options::backend_factory adapters. CreateFactory builds
  // a fresh pair at the geometry the file requests; OpenFactory opens
  // the existing pair and rejects a geometry that does not match the
  // request (the reopening DenseFile must be configured as the writer
  // was).
  using Factory = std::function<StatusOr<std::unique_ptr<StorageBackend>>(
      int64_t num_pages, int64_t page_capacity)>;
  static Factory CreateFactory(Options options);
  static Factory OpenFactory(Options options);

  // --- Testing hooks (keep raw page I/O confined to src/storage/) ---
  // Flips one byte inside the record area of `address`'s slot, directly
  // on disk — a torn/corrupt page for CRC tests.
  Status CorruptPageForTesting(Address address);
  // Rewrites the superblock with `version` (recomputing its CRC) — the
  // version-mismatch rejection fixture.
  static Status OverwriteSuperblockVersionForTesting(
      const std::string& directory, uint32_t version);

 private:
  FileBackend(Options options, int64_t num_pages, int64_t page_capacity,
              int64_t slot_bytes, int data_fd, bool direct_active);

  // Serializes `page` into the (aligned) scratch buffer; returns the
  // slot image. Buffer is zero-filled past the records.
  void SerializeSlot(const Page& page, unsigned char* slot) const;
  // Deserializes a slot image into *out; kIoError on CRC mismatch or an
  // impossible record count.
  Status DeserializeSlot(Address address, const unsigned char* slot,
                         Page* out) const;
  int64_t SlotOffset(Address address) const {
    return (address - 1) * slot_bytes_;
  }

  Options options_;
  int64_t num_pages_ = 0;
  int64_t page_capacity_ = 0;
  int64_t slot_bytes_ = 0;
  int data_fd_ = -1;
  bool direct_active_ = false;

  // Write-side scratch (writers are externally serialized); aligned for
  // O_DIRECT. Readers use thread-local scratch in the .cc.
  struct AlignedDeleter {
    void operator()(unsigned char* p) const;
  };
  std::unique_ptr<unsigned char[], AlignedDeleter> write_buf_;

  // Counters are atomics because shared-lock readers call ReadPage
  // concurrently (see header note); plain loads elsewhere.
  mutable std::atomic<int64_t> preads_{0};
  std::atomic<int64_t> pwrites_{0};
  std::atomic<int64_t> syncs_{0};
  mutable std::atomic<int64_t> crc_failures_{0};
};

}  // namespace dsf

#endif  // DSF_STORAGE_FILE_BACKEND_H_
