// Page-access accounting.
//
// The paper's cost model counts auxiliary page accesses (the calibrator is
// assumed to live in main memory). IoStats tallies page reads and writes,
// and additionally classifies each access as *sequential* (same or adjacent
// address as the previous access) or a *seek*. The seek/sequential split
// feeds the disk-arm-movement comparison against B-trees (Section 4's
// remark that CONTROL 2 "accesses consecutive pages in one fell swoop").

#ifndef DSF_STORAGE_IO_STATS_H_
#define DSF_STORAGE_IO_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace dsf {

struct IoStats {
  // Physical device traffic: pages actually transferred to or from the
  // simulated device. Without a buffer pool these equal the logical
  // counters below.
  int64_t page_reads = 0;
  int64_t page_writes = 0;
  int64_t seeks = 0;              // accesses that moved the arm
  int64_t sequential_accesses = 0;  // accesses adjacent to the previous one

  // Logical traffic: page accesses the algorithms *requested*. A buffer
  // pool absorbs some of these (cache hits, write combining), so
  // physical <= logical on reads and physical may exceed logical on
  // writes only via repair rewrites. hit rate = 1 - physical/logical
  // reads; write amplification = page_writes / logical_writes.
  int64_t logical_reads = 0;
  int64_t logical_writes = 0;

  // Simulated device time: the sum of the per-access charges the tracker
  // applied at classification time (seek accesses pay the seek charge,
  // sequential accesses the transfer charge — see SetChargeNs). This is
  // the single source of truth for elapsed simulated time: the optional
  // real sleep in PageFile and any latency histogram both consume the
  // SAME per-access charge, so coalesced flush runs (one seek + N
  // sequential transfers) can never make the two disagree. 0 until a
  // charge model is installed.
  int64_t sim_elapsed_ns = 0;

  int64_t TotalAccesses() const { return page_reads + page_writes; }
  int64_t TotalLogical() const { return logical_reads + logical_writes; }

  // Per-counter difference, clamped at zero. Snapshot deltas are taken as
  // `after - before`; if the tracker was Reset() between the snapshots the
  // naive subtraction would go negative, which no caller can interpret.
  IoStats operator-(const IoStats& other) const;
  IoStats& operator+=(const IoStats& other);

  void Reset();
  std::string ToString() const;
};

// Classifies a stream of addressed accesses into IoStats. Shared by the
// dense-file page store and the baseline structures so all experiments
// use one cost model:
//   - re-access of the same address, or of an adjacent address (previous
//     address +/- 1), counts as sequential;
//   - everything else, including the FIRST access after construction or
//     Reset(), counts as a seek (the arm position is unknown, so the
//     conservative charge is a full seek).
//
// Multi-shard guarantee: each shard owns its own PageFile, and each
// PageFile owns its own AccessTracker, so `last_address_` below is
// per-device state. Interleaved accesses to *other* shards never break a
// shard's sequential run: shard A reading 7, 8, 9 counts two sequential
// accesses even if shard B reads address 1000 between them, exactly as
// two physical disks each keep their own arm position. Only accesses to
// the same PageFile (and Reset()) affect run detection.
//
// Thread safety: the counters are relaxed atomics, so concurrent shared
// readers (docs/CONCURRENCY.md) can charge accesses without a data race
// and every individual count stays exact. The seek/sequential
// *classification* uses an atomic exchange on `last_address_`: under
// concurrent access each accessor classifies against whichever access
// globally preceded it, so the split is approximate when readers
// interleave (a reader injected between two writer accesses can turn a
// sequential pair into two seeks) but still exact for single-threaded
// runs, and seeks + sequential_accesses always equals TotalAccesses().
// Reset() is not concurrency-safe; callers quiesce first (tests do).
class AccessTracker {
 public:
  // Charges one *physical* access (device transfer + arm movement) and
  // returns the simulated nanoseconds this access cost under the
  // installed charge model (0 when none): the seek charge when the
  // access moved the arm, the sequential charge otherwise. The caller
  // (PageFile) sleeps exactly this value when real sleeping is enabled,
  // so wall-clock sleeps, sim_elapsed_ns and latency histograms all
  // derive from this one classification.
  int64_t OnAccess(int64_t address, bool is_write);

  // Charges one *logical* access (the algorithm asked for the page; a
  // buffer pool may or may not turn it into physical traffic).
  void OnLogical(bool is_write);

  // Installs the per-access time charges. Derive them from a DiskModel
  // (seek accesses pay seek + transfer, sequential ones transfer only)
  // or pass one uniform value for the legacy flat-latency device.
  void SetChargeNs(int64_t seek_ns, int64_t sequential_ns) {
    seek_charge_ns_ = seek_ns;
    sequential_charge_ns_ = sequential_ns;
  }

  // Consistent-enough snapshot of the counters (each field individually
  // exact; the set may straddle a concurrent access). By value: the
  // internal counters are atomics, not an IoStats.
  IoStats stats() const;
  void Reset();

 private:
  std::atomic<int64_t> page_reads_{0};
  std::atomic<int64_t> page_writes_{0};
  std::atomic<int64_t> seeks_{0};
  std::atomic<int64_t> sequential_accesses_{0};
  std::atomic<int64_t> logical_reads_{0};
  std::atomic<int64_t> logical_writes_{0};
  std::atomic<int64_t> sim_elapsed_ns_{0};
  std::atomic<int64_t> last_address_{-1};
  int64_t seek_charge_ns_ = 0;
  int64_t sequential_charge_ns_ = 0;
};

}  // namespace dsf

#endif  // DSF_STORAGE_IO_STATS_H_
