// Page-access accounting.
//
// The paper's cost model counts auxiliary page accesses (the calibrator is
// assumed to live in main memory). IoStats tallies page reads and writes,
// and additionally classifies each access as *sequential* (same or adjacent
// address as the previous access) or a *seek*. The seek/sequential split
// feeds the disk-arm-movement comparison against B-trees (Section 4's
// remark that CONTROL 2 "accesses consecutive pages in one fell swoop").

#ifndef DSF_STORAGE_IO_STATS_H_
#define DSF_STORAGE_IO_STATS_H_

#include <cstdint>
#include <string>

namespace dsf {

struct IoStats {
  int64_t page_reads = 0;
  int64_t page_writes = 0;
  int64_t seeks = 0;              // accesses that moved the arm
  int64_t sequential_accesses = 0;  // accesses adjacent to the previous one

  int64_t TotalAccesses() const { return page_reads + page_writes; }

  // Per-counter difference, clamped at zero. Snapshot deltas are taken as
  // `after - before`; if the tracker was Reset() between the snapshots the
  // naive subtraction would go negative, which no caller can interpret.
  IoStats operator-(const IoStats& other) const;
  IoStats& operator+=(const IoStats& other);

  void Reset();
  std::string ToString() const;
};

// Classifies a stream of addressed accesses into IoStats. Shared by the
// dense-file page store and the baseline structures so all experiments
// use one cost model:
//   - re-access of the same address, or of an adjacent address (previous
//     address +/- 1), counts as sequential;
//   - everything else, including the FIRST access after construction or
//     Reset(), counts as a seek (the arm position is unknown, so the
//     conservative charge is a full seek).
class AccessTracker {
 public:
  void OnAccess(int64_t address, bool is_write);

  const IoStats& stats() const { return stats_; }
  void Reset();

 private:
  IoStats stats_;
  int64_t last_address_ = -1;
};

}  // namespace dsf

#endif  // DSF_STORAGE_IO_STATS_H_
