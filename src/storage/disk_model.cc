#include "storage/disk_model.h"

#include <sstream>

namespace dsf {

double DiskModel::LatencyMs(const IoStats& stats) const {
  return LatencyMs(stats.seeks, stats.TotalAccesses());
}

double DiskModel::LatencyMs(int64_t seeks, int64_t total_accesses) const {
  return static_cast<double>(seeks) * seek_ms +
         static_cast<double>(total_accesses) * transfer_ms;
}

std::string DiskModel::ToString() const {
  std::ostringstream os;
  os << "DiskModel(seek=" << seek_ms << "ms, transfer=" << transfer_ms
     << "ms)";
  return os.str();
}

}  // namespace dsf
