#include "storage/io_stats.h"

#include <sstream>

namespace dsf {

namespace {
int64_t ClampedDiff(int64_t a, int64_t b) { return a > b ? a - b : 0; }
}  // namespace

IoStats IoStats::operator-(const IoStats& other) const {
  IoStats out;
  out.page_reads = ClampedDiff(page_reads, other.page_reads);
  out.page_writes = ClampedDiff(page_writes, other.page_writes);
  out.seeks = ClampedDiff(seeks, other.seeks);
  out.sequential_accesses =
      ClampedDiff(sequential_accesses, other.sequential_accesses);
  out.logical_reads = ClampedDiff(logical_reads, other.logical_reads);
  out.logical_writes = ClampedDiff(logical_writes, other.logical_writes);
  out.sim_elapsed_ns = ClampedDiff(sim_elapsed_ns, other.sim_elapsed_ns);
  return out;
}

IoStats& IoStats::operator+=(const IoStats& other) {
  page_reads += other.page_reads;
  page_writes += other.page_writes;
  seeks += other.seeks;
  sequential_accesses += other.sequential_accesses;
  logical_reads += other.logical_reads;
  logical_writes += other.logical_writes;
  sim_elapsed_ns += other.sim_elapsed_ns;
  return *this;
}

void IoStats::Reset() { *this = IoStats(); }

int64_t AccessTracker::OnAccess(int64_t address, bool is_write) {
  constexpr auto kRelaxed = std::memory_order_relaxed;
  if (is_write) {
    page_writes_.fetch_add(1, kRelaxed);
  } else {
    page_reads_.fetch_add(1, kRelaxed);
  }
  // One exchange both reads the previous arm position and claims this
  // access as the new one; each access classifies against its global
  // predecessor (see the class comment on concurrent approximation).
  const int64_t prev = last_address_.exchange(address, kRelaxed);
  int64_t charge;
  if (prev >= 0 &&
      (address == prev || address == prev + 1 || address == prev - 1)) {
    sequential_accesses_.fetch_add(1, kRelaxed);
    charge = sequential_charge_ns_;
  } else {
    seeks_.fetch_add(1, kRelaxed);
    charge = seek_charge_ns_;
  }
  sim_elapsed_ns_.fetch_add(charge, kRelaxed);
  return charge;
}

void AccessTracker::OnLogical(bool is_write) {
  constexpr auto kRelaxed = std::memory_order_relaxed;
  if (is_write) {
    logical_writes_.fetch_add(1, kRelaxed);
  } else {
    logical_reads_.fetch_add(1, kRelaxed);
  }
}

IoStats AccessTracker::stats() const {
  constexpr auto kRelaxed = std::memory_order_relaxed;
  IoStats out;
  out.page_reads = page_reads_.load(kRelaxed);
  out.page_writes = page_writes_.load(kRelaxed);
  out.seeks = seeks_.load(kRelaxed);
  out.sequential_accesses = sequential_accesses_.load(kRelaxed);
  out.logical_reads = logical_reads_.load(kRelaxed);
  out.logical_writes = logical_writes_.load(kRelaxed);
  out.sim_elapsed_ns = sim_elapsed_ns_.load(kRelaxed);
  return out;
}

void AccessTracker::Reset() {
  constexpr auto kRelaxed = std::memory_order_relaxed;
  page_reads_.store(0, kRelaxed);
  page_writes_.store(0, kRelaxed);
  seeks_.store(0, kRelaxed);
  sequential_accesses_.store(0, kRelaxed);
  logical_reads_.store(0, kRelaxed);
  logical_writes_.store(0, kRelaxed);
  sim_elapsed_ns_.store(0, kRelaxed);
  last_address_.store(-1, kRelaxed);
}

std::string IoStats::ToString() const {
  std::ostringstream os;
  os << "reads=" << page_reads << " writes=" << page_writes
     << " seeks=" << seeks << " sequential=" << sequential_accesses
     << " logical_reads=" << logical_reads
     << " logical_writes=" << logical_writes
     << " sim_elapsed_ns=" << sim_elapsed_ns;
  return os.str();
}

}  // namespace dsf
