#include "storage/io_stats.h"

#include <sstream>

namespace dsf {

namespace {
int64_t ClampedDiff(int64_t a, int64_t b) { return a > b ? a - b : 0; }
}  // namespace

IoStats IoStats::operator-(const IoStats& other) const {
  IoStats out;
  out.page_reads = ClampedDiff(page_reads, other.page_reads);
  out.page_writes = ClampedDiff(page_writes, other.page_writes);
  out.seeks = ClampedDiff(seeks, other.seeks);
  out.sequential_accesses =
      ClampedDiff(sequential_accesses, other.sequential_accesses);
  out.logical_reads = ClampedDiff(logical_reads, other.logical_reads);
  out.logical_writes = ClampedDiff(logical_writes, other.logical_writes);
  out.sim_elapsed_ns = ClampedDiff(sim_elapsed_ns, other.sim_elapsed_ns);
  return out;
}

IoStats& IoStats::operator+=(const IoStats& other) {
  page_reads += other.page_reads;
  page_writes += other.page_writes;
  seeks += other.seeks;
  sequential_accesses += other.sequential_accesses;
  logical_reads += other.logical_reads;
  logical_writes += other.logical_writes;
  sim_elapsed_ns += other.sim_elapsed_ns;
  return *this;
}

void IoStats::Reset() { *this = IoStats(); }

int64_t AccessTracker::OnAccess(int64_t address, bool is_write) {
  if (is_write) {
    ++stats_.page_writes;
  } else {
    ++stats_.page_reads;
  }
  int64_t charge;
  if (last_address_ >= 0 &&
      (address == last_address_ || address == last_address_ + 1 ||
       address == last_address_ - 1)) {
    ++stats_.sequential_accesses;
    charge = sequential_charge_ns_;
  } else {
    ++stats_.seeks;
    charge = seek_charge_ns_;
  }
  stats_.sim_elapsed_ns += charge;
  last_address_ = address;
  return charge;
}

void AccessTracker::OnLogical(bool is_write) {
  if (is_write) {
    ++stats_.logical_writes;
  } else {
    ++stats_.logical_reads;
  }
}

void AccessTracker::Reset() {
  stats_.Reset();
  last_address_ = -1;
}

std::string IoStats::ToString() const {
  std::ostringstream os;
  os << "reads=" << page_reads << " writes=" << page_writes
     << " seeks=" << seeks << " sequential=" << sequential_accesses
     << " logical_reads=" << logical_reads
     << " logical_writes=" << logical_writes
     << " sim_elapsed_ns=" << sim_elapsed_ns;
  return os.str();
}

}  // namespace dsf
