// The record type stored in dense sequential files.
//
// The paper treats records abstractly as (key, contents) pairs ordered by
// key; we fix a concrete 16-byte record: a 64-bit key and a 64-bit value.
// Keys are unique within a file (map semantics).

#ifndef DSF_STORAGE_RECORD_H_
#define DSF_STORAGE_RECORD_H_

#include <cstdint>

namespace dsf {

using Key = uint64_t;
using Value = uint64_t;

// Page addresses are 1-based, matching the paper's convention that the
// file occupies pages 1..M.
using Address = int64_t;

struct Record {
  Key key = 0;
  Value value = 0;

  friend bool operator==(const Record& a, const Record& b) {
    return a.key == b.key && a.value == b.value;
  }
};

// Records are ordered by key alone; values are payload.
inline bool RecordKeyLess(const Record& a, const Record& b) {
  return a.key < b.key;
}

// Branchless lower_bound over a sorted record range: index of the first
// record with key >= `key`, or `n` if none. The half-interval shrink uses
// a conditional move instead of the compare-branch `std::lower_bound`
// emits, so the search pipeline never stalls on the (data-dependent,
// unpredictable) key comparison — a measurable win once a page holds
// enough records for the comparisons to dominate (see BM_PageSearch).
inline int64_t LowerBoundRecord(const Record* records, int64_t n, Key key) {
  const Record* base = records;
  while (n > 1) {
    const int64_t half = n / 2;
    // Both operands of the ternary are always valid; compilers turn this
    // into cmov (no branch) because the select is side-effect free.
    base = (base[half - 1].key < key) ? base + half : base;
    n -= half;
  }
  const int64_t pos = base - records;
  return (n == 1 && base->key < key) ? pos + 1 : pos;
}

}  // namespace dsf

#endif  // DSF_STORAGE_RECORD_H_
