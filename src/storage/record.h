// The record type stored in dense sequential files.
//
// The paper treats records abstractly as (key, contents) pairs ordered by
// key; we fix a concrete 16-byte record: a 64-bit key and a 64-bit value.
// Keys are unique within a file (map semantics).

#ifndef DSF_STORAGE_RECORD_H_
#define DSF_STORAGE_RECORD_H_

#include <cstdint>

namespace dsf {

using Key = uint64_t;
using Value = uint64_t;

// Page addresses are 1-based, matching the paper's convention that the
// file occupies pages 1..M.
using Address = int64_t;

struct Record {
  Key key = 0;
  Value value = 0;

  friend bool operator==(const Record& a, const Record& b) {
    return a.key == b.key && a.value == b.value;
  }
};

// Records are ordered by key alone; values are payload.
inline bool RecordKeyLess(const Record& a, const Record& b) {
  return a.key < b.key;
}

}  // namespace dsf

#endif  // DSF_STORAGE_RECORD_H_
