// PageFile: M consecutive pages of simulated auxiliary memory with full
// page-access accounting.
//
// Every algorithm in libdsf (the dense-file controls and all baselines)
// goes through Read()/Write() so that experiments can compare page-access
// counts. Read() charges a page read, Write() charges a page write and
// returns a mutable page. Peek() is free and reserved for validators,
// tests and debug printing — never for algorithm logic.
//
// Addresses are 1-based (pages 1..M), matching the paper.

#ifndef DSF_STORAGE_PAGE_FILE_H_
#define DSF_STORAGE_PAGE_FILE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "storage/io_stats.h"
#include "storage/page.h"
#include "storage/record.h"

namespace dsf {

class PageFile {
 public:
  // Creates `num_pages` empty pages, each with `page_capacity` slots.
  PageFile(int64_t num_pages, int64_t page_capacity);

  int64_t num_pages() const { return num_pages_; }
  int64_t page_capacity() const { return page_capacity_; }

  // Accounted access. `address` in [1, num_pages].
  const Page& Read(Address address);
  Page& Write(Address address);

  // Unaccounted access for validators / tests / printing only.
  const Page& Peek(Address address) const;

  // Unaccounted mutable access. Reserved for (a) initial loading in tests
  // and benches, and (b) layout bookkeeping that a real system would do in
  // metadata (e.g. marking a tail page of a shrunken macro-block free).
  // Algorithm logic must use Read()/Write().
  Page& RawPage(Address address);

  const IoStats& stats() const { return tracker_.stats(); }
  void ResetStats();

  // Simulated device latency, charged as a real sleep on every accounted
  // Read/Write. Zero (the default) keeps the file purely in-memory.
  // Experiments use this to model disk/flash-resident files, where page
  // accesses — the paper's cost metric — dominate command time; sleeps on
  // different PageFile instances overlap, as independent devices would.
  // Peek/RawPage stay free, mirroring the accounting rule above.
  void set_access_latency(std::chrono::nanoseconds latency) {
    access_latency_ = latency;
  }
  std::chrono::nanoseconds access_latency() const { return access_latency_; }

  // Total records across all pages (O(M); for validation and loading).
  int64_t TotalRecords() const;

  // True iff every page is well-formed and keys ascend globally across
  // pages (condition (iii) of (d,D)-density).
  bool GloballyOrdered() const;

  std::string DebugString() const;

 private:
  void SimulateDevice() const {
    if (access_latency_.count() > 0) {
      std::this_thread::sleep_for(access_latency_);
    }
  }

  int64_t num_pages_;
  int64_t page_capacity_;
  std::vector<Page> pages_;
  AccessTracker tracker_;
  std::chrono::nanoseconds access_latency_{0};
};

}  // namespace dsf

#endif  // DSF_STORAGE_PAGE_FILE_H_
