// PageFile: M consecutive pages of simulated auxiliary memory with full
// page-access accounting.
//
// Every algorithm in libdsf (the dense-file controls and all baselines)
// goes through the accounted accessors so that experiments can compare
// page-access counts. TryRead()/TryWrite() charge the access, consult the
// optional FaultPolicy, and return the page or kIoError; Read()/Write()
// are infallible wrappers that abort on a fault. Peek() is free and
// reserved for validators, tests, debug printing and offline recovery —
// never for online algorithm logic.
//
// Addresses are 1-based (pages 1..M), matching the paper.

#ifndef DSF_STORAGE_PAGE_FILE_H_
#define DSF_STORAGE_PAGE_FILE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/disk_model.h"
#include "storage/fault_injection.h"
#include "storage/io_stats.h"
#include "storage/page.h"
#include "storage/record.h"
#include "storage/storage_backend.h"
#include "util/status.h"

namespace dsf {

class PageFile {
 public:
  // Creates `num_pages` empty pages, each with `page_capacity` slots.
  PageFile(int64_t num_pages, int64_t page_capacity);

  int64_t num_pages() const { return num_pages_; }
  int64_t page_capacity() const { return page_capacity_; }

  // Accounted, fallible access. `address` in [1, num_pages] (violations
  // return OutOfRange, not abort). The access is charged to IoStats and
  // then checked against the installed FaultPolicy, if any: on an injected
  // fault the page is left untouched and kIoError is returned. A failed
  // write therefore never tears an individual page.
  //
  // TryRead/TryWrite charge one *logical* and one *physical* access; an
  // unpooled caller always pays the device. A BufferPool splits the two:
  // it charges CountLogical() on every request and TryDeviceRead/
  // TryDeviceWrite only on misses and write-back, so the logical counters
  // record what the algorithm asked for and page_reads/page_writes record
  // actual device traffic.
  StatusOr<const Page*> TryRead(Address address);
  StatusOr<Page*> TryWrite(Address address);

  // Physical-only access: charges the device counters (seek/sequential
  // classification, fault consultation, simulated latency) without the
  // logical counters. Used by the buffer pool for miss fills and
  // write-back.
  StatusOr<const Page*> TryDeviceRead(Address address);
  StatusOr<Page*> TryDeviceWrite(Address address);

  // Logical-only accounting: records that the algorithm requested a page
  // access that may be absorbed by a cache.
  void CountLogical(bool is_write) { tracker_.OnLogical(is_write); }

  // Accounted, infallible access: aborts the process on a bad address or
  // an injected fault. For call sites whose layer has no error channel —
  // under fault injection they fail loudly instead of ignoring the fault.
  const Page& Read(Address address);
  Page& Write(Address address);

  // Installs (or clears, with nullptr) the fault schedule consulted by
  // TryRead/TryWrite. Shared so tests can keep steering it mid-run.
  void set_fault_policy(std::shared_ptr<FaultPolicy> policy) {
    fault_policy_ = std::move(policy);
    UpdateSlowPath();
  }
  FaultPolicy* fault_policy() const { return fault_policy_.get(); }

  // Attaches a durable device behind the file. The in-memory pages stay
  // the *working image* (what every accessor above returns); the backend
  // is the state that survives a process death. On attach the device
  // image is loaded INTO the working image — a fresh backend is all
  // empty pages, so attaching one to a fresh file is a no-op, and
  // attaching an existing file pair is the reopen path. Pages whose
  // device slot fails integrity checks (torn/corrupt, kIoError from the
  // backend) are left empty in the working image and recorded in
  // corrupt_pages_at_open(); callers must follow with CheckAndRepair.
  //
  // Persistence model — one-slot write-behind. A device write hands the
  // caller a Page* that is mutated *after* the call returns, so the
  // write cannot be persisted inside TryDeviceWrite. Instead the
  // address is parked in a pending slot and serialized to the backend
  // at the next device access or SyncBarrier(), by which time the
  // accounting discipline guarantees the mutation is complete (every
  // page mutation is preceded by its charged access). Back-to-back
  // writes to the same address combine into one backend write; distinct
  // addresses flush in exactly the order the accesses were charged, so
  // the device sees the crash-safe write ordering unchanged. RawPage
  // bookkeeping mutations ride the same pending slot (unaccounted, but
  // persisted). Fault injection composes: the FaultPolicy is consulted
  // before the pending slot is touched, so an injected fault suppresses
  // the durable write exactly as it suppresses the simulated one.
  //
  // Geometry must match the live file; a second attach is refused.
  Status AttachBackend(std::unique_ptr<StorageBackend> backend);
  StorageBackend* backend() const { return backend_.get(); }

  // Persistence barrier: flushes the pending slot and, if anything was
  // written since the last barrier, calls the backend's SyncBarrier
  // (fdatasync for a file backend). No-op without a backend. ControlBase
  // invokes this exactly at the points the crash-ordering argument
  // assumes durability (docs/STORAGE.md).
  Status SyncBarrier();

  // Pages whose device slot was unreadable when AttachBackend loaded the
  // image (empty for a clean open).
  const std::vector<Address>& corrupt_pages_at_open() const {
    return corrupt_pages_at_open_;
  }

  // Unaccounted access for validators / tests / printing only.
  const Page& Peek(Address address) const;

  // Unaccounted mutable access. Reserved for (a) initial loading in tests
  // and benches, and (b) layout bookkeeping that a real system would do in
  // metadata (e.g. marking a tail page of a shrunken macro-block free).
  // Algorithm logic must use Read()/Write().
  Page& RawPage(Address address);

  // Counter snapshot, by value: the tracker's counters are atomics so
  // concurrent shared readers (docs/CONCURRENCY.md) can charge accesses
  // race-free, and there is no stable IoStats object to reference.
  IoStats stats() const { return tracker_.stats(); }
  void ResetStats();

  // Simulated device latency: a uniform per-access charge, accumulated
  // into IoStats::sim_elapsed_ns AND paid as a real sleep on every
  // accounted access. Zero (the default) keeps the file purely
  // in-memory. Experiments use this to model disk/flash-resident files,
  // where page accesses — the paper's cost metric — dominate command
  // time; sleeps on different PageFile instances overlap, as independent
  // devices would. Peek/RawPage stay free, mirroring the accounting rule
  // above. This is the flat special case of set_disk_model (seek and
  // sequential accesses charged alike); both setters route through the
  // AccessTracker's single charge model, so elapsed-time accounting and
  // the sleep can never disagree.
  void set_access_latency(std::chrono::nanoseconds latency) {
    uniform_latency_ = latency;
    tracker_.SetChargeNs(latency.count(), latency.count());
    sleep_on_access_ = latency.count() > 0;
    UpdateSlowPath();
  }
  std::chrono::nanoseconds access_latency() const { return uniform_latency_; }

  // Seek-aware device model: a seek access charges SeekChargeNs, a
  // sequential access SequentialChargeNs — so a coalesced flush run of
  // R consecutive pages costs one seek charge plus R-1 transfer charges,
  // in sim_elapsed_ns and (when `sleep` is set) in real wall time alike.
  // Replaces any charge installed by set_access_latency.
  void set_disk_model(const DiskModel& model, bool sleep = false) {
    uniform_latency_ = std::chrono::nanoseconds(0);
    tracker_.SetChargeNs(model.SeekChargeNs(), model.SequentialChargeNs());
    sleep_on_access_ = sleep;
    UpdateSlowPath();
  }

  // Total records across all pages (O(M); for validation and loading).
  int64_t TotalRecords() const;

  // True iff every page is well-formed and keys ascend globally across
  // pages (condition (iii) of (d,D)-density).
  bool GloballyOrdered() const;

  std::string DebugString() const;

 private:
  // Fault consultation and the latency sleep both live off the hot path:
  // TryDeviceRead/TryDeviceWrite test the single precomputed `slow_path_`
  // flag (one predicted-not-taken branch per access) and only then pay
  // for the two checks. The flag is maintained by the setters above, the
  // only places the policy or latency can change.
  void UpdateSlowPath() {
    slow_path_ =
        fault_policy_ != nullptr || sleep_on_access_ || backend_ != nullptr;
  }
  Status SlowPathAccess(Address address, bool is_write, int64_t charge_ns);

  // Parks `address` in the pending slot, flushing any different pending
  // address first (write order!). Same-address re-arms combine.
  Status ArmPending(Address address);
  // Serializes the pending page to the backend, if any.
  Status FlushPending();
  // Reads `address` back from the backend and compares against the
  // working image (VerifyOnRead mode). Never mutates pages_, so it is
  // safe under concurrent shared-lock readers.
  Status VerifyDeviceRead(Address address);

  int64_t num_pages_;
  int64_t page_capacity_;
  std::vector<Page> pages_;
  AccessTracker tracker_;
  std::shared_ptr<FaultPolicy> fault_policy_;
  std::unique_ptr<StorageBackend> backend_;
  Address pending_ = 0;  // 0 = no pending device write
  bool dirty_since_sync_ = false;
  std::vector<Address> corrupt_pages_at_open_;
  std::chrono::nanoseconds uniform_latency_{0};
  bool sleep_on_access_ = false;
  bool slow_path_ = false;
};

}  // namespace dsf

#endif  // DSF_STORAGE_PAGE_FILE_H_
