// PageFile: M consecutive pages of simulated auxiliary memory with full
// page-access accounting.
//
// Every algorithm in libdsf (the dense-file controls and all baselines)
// goes through the accounted accessors so that experiments can compare
// page-access counts. TryRead()/TryWrite() charge the access, consult the
// optional FaultPolicy, and return the page or kIoError; Read()/Write()
// are infallible wrappers that abort on a fault. Peek() is free and
// reserved for validators, tests, debug printing and offline recovery —
// never for online algorithm logic.
//
// Addresses are 1-based (pages 1..M), matching the paper.

#ifndef DSF_STORAGE_PAGE_FILE_H_
#define DSF_STORAGE_PAGE_FILE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "storage/fault_injection.h"
#include "storage/io_stats.h"
#include "storage/page.h"
#include "storage/record.h"
#include "util/status.h"

namespace dsf {

class PageFile {
 public:
  // Creates `num_pages` empty pages, each with `page_capacity` slots.
  PageFile(int64_t num_pages, int64_t page_capacity);

  int64_t num_pages() const { return num_pages_; }
  int64_t page_capacity() const { return page_capacity_; }

  // Accounted, fallible access. `address` in [1, num_pages] (violations
  // return OutOfRange, not abort). The access is charged to IoStats and
  // then checked against the installed FaultPolicy, if any: on an injected
  // fault the page is left untouched and kIoError is returned. A failed
  // write therefore never tears an individual page.
  StatusOr<const Page*> TryRead(Address address);
  StatusOr<Page*> TryWrite(Address address);

  // Accounted, infallible access: aborts the process on a bad address or
  // an injected fault. For call sites whose layer has no error channel —
  // under fault injection they fail loudly instead of ignoring the fault.
  const Page& Read(Address address);
  Page& Write(Address address);

  // Installs (or clears, with nullptr) the fault schedule consulted by
  // TryRead/TryWrite. Shared so tests can keep steering it mid-run.
  void set_fault_policy(std::shared_ptr<FaultPolicy> policy) {
    fault_policy_ = std::move(policy);
  }
  FaultPolicy* fault_policy() const { return fault_policy_.get(); }

  // Unaccounted access for validators / tests / printing only.
  const Page& Peek(Address address) const;

  // Unaccounted mutable access. Reserved for (a) initial loading in tests
  // and benches, and (b) layout bookkeeping that a real system would do in
  // metadata (e.g. marking a tail page of a shrunken macro-block free).
  // Algorithm logic must use Read()/Write().
  Page& RawPage(Address address);

  const IoStats& stats() const { return tracker_.stats(); }
  void ResetStats();

  // Simulated device latency, charged as a real sleep on every accounted
  // Read/Write. Zero (the default) keeps the file purely in-memory.
  // Experiments use this to model disk/flash-resident files, where page
  // accesses — the paper's cost metric — dominate command time; sleeps on
  // different PageFile instances overlap, as independent devices would.
  // Peek/RawPage stay free, mirroring the accounting rule above.
  void set_access_latency(std::chrono::nanoseconds latency) {
    access_latency_ = latency;
  }
  std::chrono::nanoseconds access_latency() const { return access_latency_; }

  // Total records across all pages (O(M); for validation and loading).
  int64_t TotalRecords() const;

  // True iff every page is well-formed and keys ascend globally across
  // pages (condition (iii) of (d,D)-density).
  bool GloballyOrdered() const;

  std::string DebugString() const;

 private:
  void SimulateDevice() const {
    if (access_latency_.count() > 0) {
      std::this_thread::sleep_for(access_latency_);
    }
  }

  int64_t num_pages_;
  int64_t page_capacity_;
  std::vector<Page> pages_;
  AccessTracker tracker_;
  std::shared_ptr<FaultPolicy> fault_policy_;
  std::chrono::nanoseconds access_latency_{0};
};

}  // namespace dsf

#endif  // DSF_STORAGE_PAGE_FILE_H_
