// O_DIRECT is a GNU extension; request it before the first system header.
#ifndef _GNU_SOURCE
#define _GNU_SOURCE
#endif

#include "storage/file_backend.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "util/crc32c.h"
#include "util/check.h"

namespace dsf {
namespace {

constexpr int64_t kAlign = 4096;
constexpr int64_t kSlotHeaderBytes = 16;   // {count u64, crc u32, reserved u32}
constexpr int64_t kRecordBytes = 16;       // {key u64, value u64}
constexpr int64_t kSuperblockBytes = 4096;
constexpr char kMagic[8] = {'D', 'S', 'F', 'S', 'U', 'P', 'E', 'R'};

int64_t AlignUp(int64_t n, int64_t a) { return (n + a - 1) / a * a; }

std::string IdxPath(const std::string& dir) { return dir + "/dsf.idx"; }
std::string DatPath(const std::string& dir) { return dir + "/dsf.dat"; }

Status ErrnoError(const std::string& op, const std::string& path) {
  return Status::IoError(op + " " + path + ": " + std::strerror(errno));
}

// Superblock field offsets inside the 4096-byte block. Fixed-width
// little-fuss layout: values are memcpy'd host-endian (the file pair is
// not a portable interchange format; it is reopened by the process
// family that wrote it).
constexpr size_t kOffMagic = 0;
constexpr size_t kOffVersion = 8;
constexpr size_t kOffFlags = 12;
constexpr size_t kOffNumPages = 16;
constexpr size_t kOffPageCapacity = 24;
constexpr size_t kOffSlotBytes = 32;
constexpr size_t kOffRecordBytes = 40;
constexpr size_t kOffCrc = 44;
constexpr size_t kSuperblockCovered = kOffCrc;  // CRC covers [0, kOffCrc)

void PutU32(unsigned char* b, size_t off, uint32_t v) {
  std::memcpy(b + off, &v, sizeof(v));
}
void PutU64(unsigned char* b, size_t off, uint64_t v) {
  std::memcpy(b + off, &v, sizeof(v));
}
uint32_t GetU32(const unsigned char* b, size_t off) {
  uint32_t v;
  std::memcpy(&v, b + off, sizeof(v));
  return v;
}
uint64_t GetU64(const unsigned char* b, size_t off) {
  uint64_t v;
  std::memcpy(&v, b + off, sizeof(v));
  return v;
}

void FillSuperblock(unsigned char* block, uint32_t version, int64_t num_pages,
                    int64_t page_capacity, int64_t slot_bytes) {
  std::memset(block, 0, kSuperblockBytes);
  std::memcpy(block + kOffMagic, kMagic, sizeof(kMagic));
  PutU32(block, kOffVersion, version);
  PutU32(block, kOffFlags, 0);
  PutU64(block, kOffNumPages, static_cast<uint64_t>(num_pages));
  PutU64(block, kOffPageCapacity, static_cast<uint64_t>(page_capacity));
  PutU64(block, kOffSlotBytes, static_cast<uint64_t>(slot_bytes));
  PutU32(block, kOffRecordBytes, static_cast<uint32_t>(kRecordBytes));
  PutU32(block, kOffCrc, Crc32c(block, kSuperblockCovered));
}

// Full-length positioned read/write; retries short transfers and EINTR
// (regular files only short-transfer at EOF, but be strict).
Status PreadFully(int fd, unsigned char* buf, int64_t n, int64_t offset,
                  const std::string& path) {
  int64_t done = 0;
  while (done < n) {
    ssize_t r = ::pread(fd, buf + done, static_cast<size_t>(n - done),
                        static_cast<off_t>(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("pread", path);
    }
    if (r == 0) {
      return Status::IoError("pread " + path + ": short read (" +
                             std::to_string(done) + "/" + std::to_string(n) +
                             " bytes at offset " + std::to_string(offset) +
                             ")");
    }
    done += r;
  }
  return Status::OK();
}

Status PwriteFully(int fd, const unsigned char* buf, int64_t n, int64_t offset,
                   const std::string& path) {
  int64_t done = 0;
  while (done < n) {
    ssize_t r = ::pwrite(fd, buf + done, static_cast<size_t>(n - done),
                         static_cast<off_t>(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("pwrite", path);
    }
    done += r;
  }
  return Status::OK();
}

unsigned char* AllocAligned(int64_t n) {
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<size_t>(kAlign),
                     static_cast<size_t>(n)) != 0) {
    return nullptr;
  }
  return static_cast<unsigned char*>(p);
}

// Per-thread read scratch, sized on demand. ReadPage runs concurrently
// under shared-lock readers; a thread_local keeps it allocation-free on
// the steady path without a lock.
unsigned char* ThreadReadBuf(int64_t n) {
  thread_local unsigned char* buf = nullptr;
  thread_local int64_t cap = 0;
  if (cap < n) {
    std::free(buf);
    buf = AllocAligned(n);
    cap = buf != nullptr ? n : 0;
  }
  return buf;
}

// Opens the data file, attempting O_DIRECT when asked and falling back
// to buffered I/O where the filesystem refuses it (tmpfs: EINVAL).
StatusOr<std::pair<int, bool>> OpenDataFd(const std::string& path,
                                          bool want_direct, bool create) {
  int base_flags = O_RDWR | O_CLOEXEC | (create ? O_CREAT | O_TRUNC : 0);
#ifdef O_DIRECT
  if (want_direct) {
    int fd = ::open(path.c_str(), base_flags | O_DIRECT, 0644);
    if (fd >= 0) return std::make_pair(fd, true);
    if (errno != EINVAL && errno != EOPNOTSUPP) {
      return ErrnoError("open", path);
    }
  }
#else
  (void)want_direct;  // platform without O_DIRECT: always buffered
#endif
  int fd = ::open(path.c_str(), base_flags, 0644);
  if (fd < 0) return ErrnoError("open", path);
  return std::make_pair(fd, false);
}

}  // namespace

void FileBackend::AlignedDeleter::operator()(unsigned char* p) const {
  std::free(p);
}

FileBackend::FileBackend(Options options, int64_t num_pages,
                         int64_t page_capacity, int64_t slot_bytes,
                         int data_fd, bool direct_active)
    : options_(std::move(options)),
      num_pages_(num_pages),
      page_capacity_(page_capacity),
      slot_bytes_(slot_bytes),
      data_fd_(data_fd),
      direct_active_(direct_active),
      write_buf_(AllocAligned(slot_bytes)) {
  DSF_CHECK(write_buf_ != nullptr) << "slot buffer allocation failed";
}

FileBackend::~FileBackend() {
  if (data_fd_ >= 0) ::close(data_fd_);
}

StatusOr<std::unique_ptr<FileBackend>> FileBackend::Create(
    const Options& options, int64_t num_pages, int64_t page_capacity) {
  if (num_pages < 1 || page_capacity < 1) {
    return Status::InvalidArgument("FileBackend geometry must be positive");
  }
  const int64_t slot_bytes =
      AlignUp(kSlotHeaderBytes + page_capacity * kRecordBytes, kAlign);

  // Index file: superblock, written and fsynced before any data page so
  // a crash between the two leaves an openable (empty) pair.
  const std::string idx = IdxPath(options.directory);
  int idx_fd = ::open(idx.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC,
                      0644);
  if (idx_fd < 0) return ErrnoError("open", idx);
  {
    unsigned char block[kSuperblockBytes];
    FillSuperblock(block, kFormatVersion, num_pages, page_capacity,
                   slot_bytes);
    Status s = PwriteFully(idx_fd, block, kSuperblockBytes, 0, idx);
    if (s.ok() && ::fdatasync(idx_fd) != 0) s = ErrnoError("fdatasync", idx);
    ::close(idx_fd);
    DSF_RETURN_IF_ERROR(s);
  }

  const std::string dat = DatPath(options.directory);
  auto fd_or = OpenDataFd(dat, options.direct_io, /*create=*/true);
  DSF_RETURN_IF_ERROR(fd_or.status());
  auto [fd, direct] = fd_or.value();
  // Size the file up front; the hole reads back as zeros, which the
  // slot format defines as the valid empty page.
  if (::ftruncate(fd, static_cast<off_t>(num_pages * slot_bytes)) != 0) {
    Status s = ErrnoError("ftruncate", dat);
    ::close(fd);
    return s;
  }
  return std::unique_ptr<FileBackend>(new FileBackend(
      options, num_pages, page_capacity, slot_bytes, fd, direct));
}

StatusOr<std::unique_ptr<FileBackend>> FileBackend::Open(
    const Options& options) {
  const std::string idx = IdxPath(options.directory);
  int idx_fd = ::open(idx.c_str(), O_RDONLY | O_CLOEXEC);
  if (idx_fd < 0) return ErrnoError("open", idx);
  unsigned char block[kSuperblockBytes];
  Status s = PreadFully(idx_fd, block, kSuperblockBytes, 0, idx);
  ::close(idx_fd);
  DSF_RETURN_IF_ERROR(s);

  if (std::memcmp(block + kOffMagic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(idx + ": not a dsf index file (bad magic)");
  }
  const uint32_t stored_crc = GetU32(block, kOffCrc);
  const uint32_t actual_crc = Crc32c(block, kSuperblockCovered);
  if (stored_crc != actual_crc) {
    return Status::IoError(idx + ": superblock checksum mismatch");
  }
  const uint32_t version = GetU32(block, kOffVersion);
  if (version != kFormatVersion) {
    return Status::FailedPrecondition(
        idx + ": format version " + std::to_string(version) +
        " (this build reads version " + std::to_string(kFormatVersion) + ")");
  }
  const int64_t num_pages = static_cast<int64_t>(GetU64(block, kOffNumPages));
  const int64_t page_capacity =
      static_cast<int64_t>(GetU64(block, kOffPageCapacity));
  const int64_t slot_bytes = static_cast<int64_t>(GetU64(block, kOffSlotBytes));
  const int64_t record_bytes =
      static_cast<int64_t>(GetU32(block, kOffRecordBytes));
  if (num_pages < 1 || page_capacity < 1 || record_bytes != kRecordBytes ||
      slot_bytes !=
          AlignUp(kSlotHeaderBytes + page_capacity * kRecordBytes, kAlign)) {
    return Status::IoError(idx + ": superblock geometry is inconsistent");
  }

  const std::string dat = DatPath(options.directory);
  auto fd_or = OpenDataFd(dat, options.direct_io, /*create=*/false);
  DSF_RETURN_IF_ERROR(fd_or.status());
  auto [fd, direct] = fd_or.value();
  // A crash can leave the file short of its ftruncate'd size only if
  // creation itself died; re-extend so slot reads never hit EOF.
  if (::ftruncate(fd, static_cast<off_t>(num_pages * slot_bytes)) != 0) {
    Status st = ErrnoError("ftruncate", dat);
    ::close(fd);
    return st;
  }
  return std::unique_ptr<FileBackend>(new FileBackend(
      options, num_pages, page_capacity, slot_bytes, fd, direct));
}

void FileBackend::SerializeSlot(const Page& page, unsigned char* slot) const {
  std::memset(slot, 0, static_cast<size_t>(slot_bytes_));
  const auto& records = page.records();
  PutU64(slot, 0, static_cast<uint64_t>(records.size()));
  unsigned char* body = slot + kSlotHeaderBytes;
  for (size_t i = 0; i < records.size(); ++i) {
    PutU64(body, i * kRecordBytes, records[i].key);
    PutU64(body, i * kRecordBytes + 8, records[i].value);
  }
  // CRC over the count and the record bytes (the crc field itself and
  // the zero fill are excluded; a fully zero slot stays CRC-free so
  // ftruncate holes read as valid empty pages).
  uint32_t crc = Crc32cExtend(0, slot, 8);
  crc = Crc32cExtend(crc, body, records.size() * kRecordBytes);
  PutU32(slot, 8, crc);
}

Status FileBackend::DeserializeSlot(Address address,
                                    const unsigned char* slot,
                                    Page* out) const {
  out->Clear();
  const uint64_t count = GetU64(slot, 0);
  const uint32_t stored_crc = GetU32(slot, 8);
  if (count == 0 && stored_crc == 0) return Status::OK();  // hole / empty
  if (count > static_cast<uint64_t>(page_capacity_)) {
    crc_failures_.fetch_add(1, std::memory_order_relaxed);
    return Status::IoError("page " + std::to_string(address) +
                           ": slot record count " + std::to_string(count) +
                           " exceeds capacity " +
                           std::to_string(page_capacity_));
  }
  const unsigned char* body = slot + kSlotHeaderBytes;
  uint32_t crc = Crc32cExtend(0, slot, 8);
  crc = Crc32cExtend(crc, body, static_cast<size_t>(count) * kRecordBytes);
  if (crc != stored_crc) {
    crc_failures_.fetch_add(1, std::memory_order_relaxed);
    return Status::IoError("page " + std::to_string(address) +
                           ": slot checksum mismatch (torn or corrupt write)");
  }
  for (uint64_t i = 0; i < count; ++i) {
    Record r;
    r.key = GetU64(body, static_cast<size_t>(i) * kRecordBytes);
    r.value = GetU64(body, static_cast<size_t>(i) * kRecordBytes + 8);
    // The CRC matched, so a key-order violation means the slot was
    // written malformed, not torn — still kIoError, the page is unusable.
    if (i > 0 && r.key <= out->MaxKey()) {
      out->Clear();
      crc_failures_.fetch_add(1, std::memory_order_relaxed);
      return Status::IoError("page " + std::to_string(address) +
                             ": slot records are not strictly ascending");
    }
    out->AppendHigh(&r, &r + 1);
  }
  return Status::OK();
}

Status FileBackend::WritePage(Address address, const Page& page) {
  if (address < 1 || address > num_pages_) {
    return Status::OutOfRange("backend write address " +
                              std::to_string(address) + " outside [1," +
                              std::to_string(num_pages_) + "]");
  }
  if (options_.kill_after_writes >= 0 &&
      pwrites_.load(std::memory_order_relaxed) >= options_.kill_after_writes) {
    // Kill-test trigger: the first kill_after_writes pwrites completed;
    // this one must never start. SIGKILL cannot be caught, so the
    // process dies exactly between two physical writes.
    ::kill(::getpid(), SIGKILL);
    ::pause();  // not reached; SIGKILL is immediate
  }
  SerializeSlot(page, write_buf_.get());
  DSF_RETURN_IF_ERROR(PwriteFully(data_fd_, write_buf_.get(), slot_bytes_,
                                  SlotOffset(address),
                                  DatPath(options_.directory)));
  pwrites_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status FileBackend::ReadPage(Address address, Page* out) {
  if (address < 1 || address > num_pages_) {
    return Status::OutOfRange("backend read address " +
                              std::to_string(address) + " outside [1," +
                              std::to_string(num_pages_) + "]");
  }
  unsigned char* buf = ThreadReadBuf(slot_bytes_);
  if (buf == nullptr) return Status::IoError("slot buffer allocation failed");
  DSF_RETURN_IF_ERROR(PreadFully(data_fd_, buf, slot_bytes_,
                                 SlotOffset(address),
                                 DatPath(options_.directory)));
  preads_.fetch_add(1, std::memory_order_relaxed);
  return DeserializeSlot(address, buf, out);
}

Status FileBackend::SyncBarrier() {
  if (::fdatasync(data_fd_) != 0) {
    return ErrnoError("fdatasync", DatPath(options_.directory));
  }
  syncs_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

FileBackend::Stats FileBackend::stats() const {
  Stats s;
  s.preads = preads_.load(std::memory_order_relaxed);
  s.pwrites = pwrites_.load(std::memory_order_relaxed);
  s.syncs = syncs_.load(std::memory_order_relaxed);
  s.crc_failures = crc_failures_.load(std::memory_order_relaxed);
  s.direct_active = direct_active_;
  return s;
}

FileBackend::Factory FileBackend::CreateFactory(Options options) {
  return [options](int64_t num_pages, int64_t page_capacity)
             -> StatusOr<std::unique_ptr<StorageBackend>> {
    auto backend_or = Create(options, num_pages, page_capacity);
    DSF_RETURN_IF_ERROR(backend_or.status());
    return std::unique_ptr<StorageBackend>(std::move(backend_or).value());
  };
}

FileBackend::Factory FileBackend::OpenFactory(Options options) {
  return [options](int64_t num_pages, int64_t page_capacity)
             -> StatusOr<std::unique_ptr<StorageBackend>> {
    auto backend_or = Open(options);
    DSF_RETURN_IF_ERROR(backend_or.status());
    std::unique_ptr<FileBackend> backend = std::move(backend_or).value();
    if (backend->num_pages() != num_pages ||
        backend->page_capacity() != page_capacity) {
      return Status::FailedPrecondition(
          IdxPath(options.directory) + ": on-disk geometry (" +
          std::to_string(backend->num_pages()) + " pages, capacity " +
          std::to_string(backend->page_capacity()) +
          ") does not match the requested (" + std::to_string(num_pages) +
          ", " + std::to_string(page_capacity) + ")");
    }
    return std::unique_ptr<StorageBackend>(std::move(backend));
  };
}

Status FileBackend::CorruptPageForTesting(Address address) {
  if (address < 1 || address > num_pages_) {
    return Status::OutOfRange("corrupt address out of range");
  }
  unsigned char* buf = ThreadReadBuf(slot_bytes_);
  if (buf == nullptr) return Status::IoError("slot buffer allocation failed");
  const std::string dat = DatPath(options_.directory);
  DSF_RETURN_IF_ERROR(
      PreadFully(data_fd_, buf, slot_bytes_, SlotOffset(address), dat));
  // Flip a record byte; bump the count too if the slot is empty so the
  // result is not the valid all-zero page.
  buf[kSlotHeaderBytes] ^= 0xA5u;
  if (GetU64(buf, 0) == 0) PutU64(buf, 0, 1);
  return PwriteFully(data_fd_, buf, slot_bytes_, SlotOffset(address), dat);
}

Status FileBackend::OverwriteSuperblockVersionForTesting(
    const std::string& directory, uint32_t version) {
  const std::string idx = IdxPath(directory);
  int fd = ::open(idx.c_str(), O_RDWR | O_CLOEXEC);
  if (fd < 0) return ErrnoError("open", idx);
  unsigned char block[kSuperblockBytes];
  Status s = PreadFully(fd, block, kSuperblockBytes, 0, idx);
  if (s.ok()) {
    PutU32(block, kOffVersion, version);
    PutU32(block, kOffCrc, Crc32c(block, kSuperblockCovered));
    s = PwriteFully(fd, block, kSuperblockBytes, 0, idx);
  }
  ::close(fd);
  return s;
}

}  // namespace dsf
