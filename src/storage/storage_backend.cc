#include "storage/storage_backend.h"

namespace dsf {

MemoryBackend::MemoryBackend(int64_t num_pages, int64_t page_capacity)
    : num_pages_(num_pages), page_capacity_(page_capacity) {
  image_.reserve(static_cast<size_t>(num_pages));
  for (int64_t i = 0; i < num_pages; ++i) image_.emplace_back(page_capacity);
}

Status MemoryBackend::WritePage(Address address, const Page& page) {
  if (address < 1 || address > num_pages_) {
    return Status::OutOfRange("backend write address " +
                              std::to_string(address) + " outside [1," +
                              std::to_string(num_pages_) + "]");
  }
  image_[static_cast<size_t>(address - 1)] = page;
  return Status::OK();
}

Status MemoryBackend::ReadPage(Address address, Page* out) {
  if (address < 1 || address > num_pages_) {
    return Status::OutOfRange("backend read address " +
                              std::to_string(address) + " outside [1," +
                              std::to_string(num_pages_) + "]");
  }
  *out = image_[static_cast<size_t>(address - 1)];
  return Status::OK();
}

}  // namespace dsf
