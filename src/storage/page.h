// A single page: a sorted, bounded sequence of records.
//
// Pages keep records in ascending key order. `capacity` is the physical
// slot count; the (d,D)-density machinery keeps logical occupancy at or
// below D, but physical capacity is D+1 because CONTROL 2 only restores
// p(leaf) <= D at the *end* of a command (one extra record may transiently
// sit in the insertion-target page before the J SHIFT cycles drain it).

#ifndef DSF_STORAGE_PAGE_H_
#define DSF_STORAGE_PAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/record.h"
#include "util/status.h"

namespace dsf {

class Page {
 public:
  Page() = default;
  explicit Page(int64_t capacity);

  int64_t size() const { return static_cast<int64_t>(records_.size()); }
  bool empty() const { return records_.empty(); }
  int64_t capacity() const { return capacity_; }

  // Inserts keeping key order. Fails with AlreadyExists on duplicate key
  // and with CapacityExceeded when the page is physically full.
  Status Insert(const Record& record);

  // Removes the record with `key`; NotFound if absent.
  Status Erase(Key key);

  // Returns the record with `key`, or NotFound.
  StatusOr<Record> Find(Key key) const;

  bool Contains(Key key) const;

  // Smallest / largest key. Page must be non-empty.
  Key MinKey() const;
  Key MaxKey() const;

  // Removes and returns the `count` records with the smallest keys
  // (count <= size()).
  std::vector<Record> TakeLowest(int64_t count);

  // Removes and returns the `count` records with the largest keys, in
  // ascending order (count <= size()).
  std::vector<Record> TakeHighest(int64_t count);

  // Appends records that are all larger than MaxKey(). Caller guarantees
  // order and capacity; checked in debug builds. The iterator form lets
  // block writers append a slice of a larger buffer without materializing
  // a temporary vector.
  void AppendHigh(const std::vector<Record>& records);
  void AppendHigh(const Record* begin, const Record* end);

  // Prepends records that are all smaller than MinKey(). Caller guarantees
  // order and capacity; checked in debug builds.
  void PrependLow(const std::vector<Record>& records);

  // Drops every record and returns them (ascending).
  std::vector<Record> TakeAll();

  // Drops every record, keeping the underlying storage for reuse — the
  // rewrite paths clear and refill pages in place without reallocating.
  void Clear() { records_.clear(); }

  const std::vector<Record>& records() const { return records_; }

  // True iff records are strictly ascending by key and size <= capacity.
  bool WellFormed() const;

  std::string DebugString() const;

 private:
  int64_t capacity_ = 0;
  std::vector<Record> records_;  // ascending by key
};

}  // namespace dsf

#endif  // DSF_STORAGE_PAGE_H_
