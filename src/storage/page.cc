#include "storage/page.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace dsf {

Page::Page(int64_t capacity) : capacity_(capacity) {
  DSF_CHECK(capacity >= 1) << "page capacity must be positive";
  records_.reserve(static_cast<size_t>(capacity));
}

Status Page::Insert(const Record& record) {
  if (size() >= capacity_) {
    return Status::CapacityExceeded("page physically full");
  }
  const int64_t pos = LowerBoundRecord(records_.data(), size(), record.key);
  if (pos < size() && records_[static_cast<size_t>(pos)].key == record.key) {
    return Status::AlreadyExists("duplicate key in page");
  }
  records_.insert(records_.begin() + pos, record);
  return Status::OK();
}

Status Page::Erase(Key key) {
  const int64_t pos = LowerBoundRecord(records_.data(), size(), key);
  if (pos == size() || records_[static_cast<size_t>(pos)].key != key) {
    return Status::NotFound("key not in page");
  }
  records_.erase(records_.begin() + pos);
  return Status::OK();
}

StatusOr<Record> Page::Find(Key key) const {
  const int64_t pos = LowerBoundRecord(records_.data(), size(), key);
  if (pos == size() || records_[static_cast<size_t>(pos)].key != key) {
    return Status::NotFound("key not in page");
  }
  return records_[static_cast<size_t>(pos)];
}

bool Page::Contains(Key key) const { return Find(key).ok(); }

Key Page::MinKey() const {
  DSF_CHECK(!empty()) << "MinKey on empty page";
  return records_.front().key;
}

Key Page::MaxKey() const {
  DSF_CHECK(!empty()) << "MaxKey on empty page";
  return records_.back().key;
}

std::vector<Record> Page::TakeLowest(int64_t count) {
  DSF_CHECK(count >= 0 && count <= size()) << "TakeLowest count";
  std::vector<Record> out(records_.begin(), records_.begin() + count);
  records_.erase(records_.begin(), records_.begin() + count);
  return out;
}

std::vector<Record> Page::TakeHighest(int64_t count) {
  DSF_CHECK(count >= 0 && count <= size()) << "TakeHighest count";
  std::vector<Record> out(records_.end() - count, records_.end());
  records_.erase(records_.end() - count, records_.end());
  return out;
}

void Page::AppendHigh(const std::vector<Record>& records) {
  AppendHigh(records.data(), records.data() + records.size());
}

void Page::AppendHigh(const Record* begin, const Record* end) {
  DSF_CHECK(size() + (end - begin) <= capacity_)
      << "AppendHigh overflows page";
  for (const Record* r = begin; r != end; ++r) {
    DSF_DCHECK(records_.empty() || records_.back().key < r->key)
        << "AppendHigh order violation";
    records_.push_back(*r);
  }
}

void Page::PrependLow(const std::vector<Record>& records) {
  DSF_CHECK(size() + static_cast<int64_t>(records.size()) <= capacity_)
      << "PrependLow overflows page";
  if (!records.empty()) {
    DSF_DCHECK(records_.empty() || records.back().key < records_.front().key)
        << "PrependLow order violation";
    records_.insert(records_.begin(), records.begin(), records.end());
  }
}

std::vector<Record> Page::TakeAll() {
  std::vector<Record> out;
  out.swap(records_);
  return out;
}

bool Page::WellFormed() const {
  if (size() > capacity_) return false;
  for (size_t i = 1; i < records_.size(); ++i) {
    if (records_[i - 1].key >= records_[i].key) return false;
  }
  return true;
}

std::string Page::DebugString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < records_.size(); ++i) {
    if (i > 0) os << " ";
    os << records_[i].key;
  }
  os << "]";
  return os.str();
}

}  // namespace dsf
